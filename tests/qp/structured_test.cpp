// Structured-vs-dense equivalence: StructuredQp must agree with its
// materialized QpProblem on every operation (products, objectives,
// Gershgorin domination) and both solver pipelines must land on the same
// minimizer to tight tolerance across the constraint shapes the MPC emits
// (box-only, a single budget row, per-step budget rows). Also unit-tests the
// incrementally updated Cholesky factor the structured active set relies on.
#include "qp/structured.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/chol_update.hpp"
#include "qp/active_set.hpp"
#include "qp/projected_gradient.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::qp {
namespace {

enum class BudgetShape { kNone, kSingle, kPerStep };

/// Builds a random MPC-shaped structured problem: nj "jobs" x m "steps",
/// ridge + random tracking rows per step + anchor/smooth Delta-P chain.
StructuredQp random_mpc_problem(Rng& rng, std::size_t nj, std::size_t m,
                                BudgetShape shape) {
  const std::size_t nv = nj * m;
  StructuredQp sp(nv);
  const auto var = [nj](std::size_t i, std::size_t j) { return j * nj + i; };
  sp.lb.assign(nv, 0.3);
  sp.ub.assign(nv, 1.0);
  sp.add_ridge(1e-6);

  for (std::size_t j = 0; j < m; ++j) {
    // System-style row touching all jobs at steps <= j.
    std::vector<std::size_t> idx;
    std::vector<double> coef;
    for (std::size_t i = 0; i < nj; ++i) {
      for (std::size_t l = 0; l <= j; ++l) {
        idx.push_back(var(i, l));
        coef.push_back(rng.uniform(-0.5, 1.5));
      }
    }
    sp.add_residual(idx, coef, rng.uniform(-1.0, 2.0), rng.uniform(0.0, 2.0));

    for (std::size_t i = 0; i < nj; ++i) {
      // Job-style row touching one job's steps <= j.
      std::vector<std::size_t> jidx;
      std::vector<double> jcoef;
      for (std::size_t l = 0; l <= j; ++l) {
        jidx.push_back(var(i, l));
        jcoef.push_back(rng.uniform(-0.5, 1.5));
      }
      sp.add_residual(jidx, jcoef, rng.uniform(-1.0, 2.0), rng.uniform(0.0, 2.0));
      // Delta-P chain.
      if (j == 0) {
        sp.add_anchor(var(i, 0), rng.uniform(0.3, 1.0), rng.uniform(0.1, 3.0));
      } else {
        sp.add_smooth(var(i, j), var(i, j - 1), rng.uniform(0.1, 3.0));
      }
    }

    if (shape == BudgetShape::kPerStep ||
        (shape == BudgetShape::kSingle && j == 0)) {
      BudgetConstraint bc;
      for (std::size_t i = 0; i < nj; ++i) {
        bc.index.push_back(var(i, j));
        bc.weight.push_back(1.0 + static_cast<double>(i % 3));
      }
      // Tight enough to usually bind, loose enough to stay feasible.
      bc.bound = 0.45 * static_cast<double>(nj) * 2.0;
      sp.budgets.push_back(std::move(bc));
    }
  }
  return sp;
}

TEST(StructuredQp, MatrixFreeOpsMatchDense) {
  Rng rng(7);
  const auto sp = random_mpc_problem(rng, 3, 4, BudgetShape::kPerStep);
  const QpProblem dense = sp.to_dense();
  dense.validate();
  sp.validate();

  const std::size_t n = sp.size();
  for (int trial = 0; trial < 5; ++trial) {
    linalg::Vector x(n);
    for (auto& v : x) v = rng.uniform(-1.0, 2.0);
    linalg::Vector qx_s;
    sp.qx(x, qx_s);
    using linalg::operator*;
    const linalg::Vector qx_d = dense.Q * x;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(qx_s[i], qx_d[i], 1e-10);
    EXPECT_NEAR(sp.objective(x), dense.objective(x), 1e-9);
    const auto gs = sp.gradient(x);
    const auto gd = dense.gradient(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(gs[i], gd[i], 1e-10);
  }

  // Entry probes and the dense adapter agree.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(sp.q_entry(i, j), dense.Q(i, j), 1e-12);
    }
  }

  // Gershgorin dominates every dense row sum (true Lipschitz upper bound).
  double max_row = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += std::abs(dense.Q(i, j));
    max_row = std::max(max_row, s);
  }
  EXPECT_GE(sp.gershgorin_bound(), max_row - 1e-9);
}

class StructuredEquivalence : public ::testing::TestWithParam<BudgetShape> {};

TEST_P(StructuredEquivalence, SolversAgreeToTightTolerance) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nj = static_cast<std::size_t>(rng.uniform_int(2, 5));
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto sp = random_mpc_problem(rng, nj, m, GetParam());
    const QpProblem dense = sp.to_dense();

    linalg::Vector warm(sp.size());
    for (auto& v : warm) v = rng.uniform(0.3, 1.0);

    const QpResult rs = solve(sp, warm);
    const QpResult rd = solve(dense, warm);
    ASSERT_EQ(rs.status, SolveStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(rd.status, SolveStatus::kOptimal) << "trial " << trial;

    EXPECT_NEAR(rs.objective, rd.objective, 1e-8) << "trial " << trial;
    for (std::size_t i = 0; i < sp.size(); ++i) {
      EXPECT_NEAR(rs.x[i], rd.x[i], 1e-8) << "trial " << trial << " var " << i;
    }
    EXPECT_LE(sp.infeasibility(rs.x), 1e-9);
    EXPECT_LE(kkt_residual(sp, rs).max(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(BudgetShapes, StructuredEquivalence,
                         ::testing::Values(BudgetShape::kNone,
                                           BudgetShape::kSingle,
                                           BudgetShape::kPerStep));

TEST(StructuredQp, LargeProblemSolvesMatrixFree) {
  // Above the direct-factorization limit the facade must still certify a
  // solution without ever materializing Q (32 * 48 = 1536 > 1200).
  Rng rng(3);
  const auto sp = random_mpc_problem(rng, 32, 48, BudgetShape::kPerStep);
  const QpResult r = solve(sp, {});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LE(sp.infeasibility(r.x), 1e-8);
}

TEST(StructuredQp, BuilderValidation) {
  StructuredQp sp(4);
  EXPECT_THROW(sp.add_ridge(0.0), precondition_error);
  EXPECT_THROW(sp.add_residual({0, 0}, {1.0, 1.0}, 0.0, 1.0), precondition_error);
  EXPECT_THROW(sp.add_residual({5}, {1.0}, 0.0, 1.0), precondition_error);
  EXPECT_THROW(sp.add_residual({0}, {1.0, 2.0}, 0.0, 1.0), precondition_error);
  EXPECT_THROW(sp.add_anchor(9, 0.5, 1.0), precondition_error);
  EXPECT_THROW(sp.add_smooth(1, 1, 1.0), precondition_error);
  EXPECT_THROW(sp.add_smooth(0, 1, -1.0), precondition_error);
}

TEST(UpdatableCholesky, AppendMatchesFreshFactorization) {
  Rng rng(23);
  const std::size_t n = 8;
  // Random SPD matrix A = B B' + n I.
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) a(i, j) += b(i, k) * b(j, k);
    }
    a(i, i) += static_cast<double>(n);
  }

  // Grow the factor column by column; solving against the full matrix must
  // match a fresh factorization of A.
  linalg::UpdatableCholesky chol;
  for (std::size_t k = 0; k < n; ++k) {
    linalg::Vector col(k);
    for (std::size_t i = 0; i < k; ++i) col[i] = a(i, k);
    chol.append(col, a(k, k));
  }
  linalg::UpdatableCholesky fresh;
  fresh.reset(a);

  linalg::Vector rhs(n);
  for (auto& v : rhs) v = rng.uniform(-1.0, 1.0);
  const auto x1 = chol.solve(rhs);
  const auto x2 = fresh.solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(UpdatableCholesky, RemoveMatchesFactorizationOfSubmatrix) {
  Rng rng(29);
  const std::size_t n = 9;
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) a(i, j) += b(i, k) * b(j, k);
    }
    a(i, i) += static_cast<double>(n);
  }

  for (std::size_t drop : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
    linalg::UpdatableCholesky chol;
    chol.reset(a);
    chol.remove(drop);

    linalg::Matrix sub(n - 1, n - 1);
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != drop) keep.push_back(i);
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = 0; j + 1 < n; ++j) sub(i, j) = a(keep[i], keep[j]);
    }
    linalg::UpdatableCholesky fresh;
    fresh.reset(sub);

    linalg::Vector rhs(n - 1);
    for (auto& v : rhs) v = rng.uniform(-1.0, 1.0);
    const auto x1 = chol.solve(rhs);
    const auto x2 = fresh.solve(rhs);
    for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
  }
}

TEST(UpdatableCholesky, RejectsIndefiniteMatrix) {
  linalg::Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  linalg::UpdatableCholesky chol;
  EXPECT_THROW(chol.reset(a), invariant_error);
}

}  // namespace
}  // namespace perq::qp
