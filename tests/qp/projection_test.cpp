#include "qp/projection.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::qp {
namespace {

using linalg::Vector;

TEST(ProjectBox, ClipsBothSides) {
  Vector x{-1.0, 0.5, 2.0};
  project_box(x, Vector{0, 0, 0}, Vector{1, 1, 1});
  EXPECT_EQ(x, (Vector{0.0, 0.5, 1.0}));
}

TEST(ProjectBox, SizeMismatchThrows) {
  Vector x{1.0};
  EXPECT_THROW(project_box(x, Vector{0, 0}, Vector{1, 1}), precondition_error);
}

BudgetConstraint full_budget(std::size_t n, double bound) {
  BudgetConstraint bc;
  bc.bound = bound;
  for (std::size_t i = 0; i < n; ++i) {
    bc.index.push_back(i);
    bc.weight.push_back(1.0);
  }
  return bc;
}

TEST(ProjectBudget, NoopWhenSatisfied) {
  Vector x{0.2, 0.3};
  project_budget(x, full_budget(2, 1.0), Vector{0, 0}, Vector{1, 1});
  EXPECT_NEAR(x[0], 0.2, 1e-12);
  EXPECT_NEAR(x[1], 0.3, 1e-12);
}

TEST(ProjectBudget, ProjectsOntoSimplexFace) {
  // Unweighted budget: projection subtracts the same lambda from each
  // coordinate (before clipping).
  Vector x{1.0, 1.0};
  project_budget(x, full_budget(2, 1.0), Vector{0, 0}, Vector{2, 2});
  EXPECT_NEAR(x[0], 0.5, 1e-9);
  EXPECT_NEAR(x[1], 0.5, 1e-9);
}

TEST(ProjectBudget, RespectsLowerBoundsDuringProjection) {
  Vector x{1.0, 0.1};
  // lb = 0; budget 0.5. Equal shift would drive x[1] negative, so it clips
  // at 0 and x[0] absorbs the rest.
  project_budget(x, full_budget(2, 0.5), Vector{0, 0}, Vector{2, 2});
  EXPECT_NEAR(x[0] + x[1], 0.5, 1e-9);
  EXPECT_GE(x[1], 0.0);
  EXPECT_GE(x[0], x[1]);
}

TEST(ProjectBudget, WeightedProjection) {
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1.0, 3.0};
  bc.bound = 2.0;
  Vector x{2.0, 2.0};
  project_budget(x, bc, Vector{0, 0}, Vector{5, 5});
  // Feasible afterwards.
  EXPECT_LE(x[0] + 3.0 * x[1], 2.0 + 1e-9);
  // Heavier-weighted coordinate is reduced more (gradient of the constraint).
  EXPECT_LT(x[1], x[0]);
}

TEST(ProjectBudget, InfeasibleAgainstBoxThrows) {
  Vector x{1.0, 1.0};
  EXPECT_THROW(project_budget(x, full_budget(2, 0.5), Vector{1, 1}, Vector{2, 2}),
               precondition_error);
}

TEST(ProjectBudget, ProjectionIsIdempotent) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Vector x(4), lb(4, 0.0), ub(4, 1.0);
    for (auto& v : x) v = rng.uniform(-0.5, 2.0);
    auto bc = full_budget(4, 1.5);
    project_budget(x, bc, lb, ub);
    Vector y = x;
    project_budget(y, bc, lb, ub);
    EXPECT_TRUE(linalg::approx_equal(x, y, 1e-8));
  }
}

TEST(ProjectBudget, ProjectionIsNearestPoint) {
  // Verify the variational inequality <y - Px, x - Px> <= 0 for feasible y.
  Rng rng(6);
  auto bc = full_budget(3, 1.0);
  Vector lb(3, 0.0), ub(3, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    Vector x0(3);
    for (auto& v : x0) v = rng.uniform(-1.0, 2.0);
    Vector px = x0;
    project_budget(px, bc, lb, ub);
    // Random feasible y.
    Vector y(3);
    do {
      for (auto& v : y) v = rng.uniform(0.0, 1.0);
    } while (y[0] + y[1] + y[2] > 1.0);
    double inner = 0.0;
    for (int i = 0; i < 3; ++i) inner += (y[i] - px[i]) * (x0[i] - px[i]);
    EXPECT_LE(inner, 1e-7);
  }
}

QpProblem tiny_problem() {
  QpProblem p;
  p.Q = linalg::Matrix::identity(2);
  p.c = {0, 0};
  p.lb = {0, 0};
  p.ub = {1, 1};
  p.budgets.push_back(full_budget(2, 1.0));
  return p;
}

TEST(ProjectFeasible, ProducesFeasiblePoint) {
  auto p = tiny_problem();
  Vector x{5.0, 5.0};
  project_feasible(p, x);
  EXPECT_LE(p.infeasibility(x), 1e-9);
}

TEST(ProjectFeasible, EmptyFeasibleSetThrows) {
  auto p = tiny_problem();
  p.budgets[0].bound = -1.0;  // sum >= 0 always, bound -1 => empty
  Vector x{0, 0};
  EXPECT_THROW(project_feasible(p, x), precondition_error);
  EXPECT_FALSE(is_feasible_problem(p));
}

TEST(ProjectFeasible, OverlappingRowsStillFeasible) {
  QpProblem p;
  p.Q = linalg::Matrix::identity(3);
  p.c = {0, 0, 0};
  p.lb = {0, 0, 0};
  p.ub = {2, 2, 2};
  BudgetConstraint b1;  // x0 + x1 <= 1
  b1.index = {0, 1};
  b1.weight = {1, 1};
  b1.bound = 1;
  BudgetConstraint b2;  // x1 + x2 <= 1 (overlaps on x1)
  b2.index = {1, 2};
  b2.weight = {1, 1};
  b2.bound = 1;
  p.budgets = {b1, b2};
  EXPECT_FALSE(p.budgets_disjoint());
  Vector x{2, 2, 2};
  project_feasible(p, x);
  EXPECT_LE(p.infeasibility(x), 1e-8);
}

TEST(ProblemChecks, BudgetsDisjointDetection) {
  auto p = tiny_problem();
  EXPECT_TRUE(p.budgets_disjoint());
  p.budgets.push_back(full_budget(2, 3.0));
  EXPECT_FALSE(p.budgets_disjoint());
}

TEST(ProblemChecks, ValidateCatchesBadInputs) {
  auto p = tiny_problem();
  p.validate();

  auto bad = p;
  bad.lb[0] = 2.0;  // lb > ub
  EXPECT_THROW(bad.validate(), precondition_error);

  bad = p;
  bad.Q(0, 1) = 0.5;  // asymmetric
  EXPECT_THROW(bad.validate(), precondition_error);

  bad = p;
  bad.budgets[0].weight[0] = -1.0;
  EXPECT_THROW(bad.validate(), precondition_error);

  bad = p;
  bad.budgets[0].index[0] = 99;
  EXPECT_THROW(bad.validate(), precondition_error);
}

TEST(ProblemChecks, ObjectiveAndGradient) {
  auto p = tiny_problem();
  p.c = {1.0, -1.0};
  Vector x{0.5, 0.5};
  EXPECT_NEAR(p.objective(x), 0.5 * 0.5 + 0.5 * (0.5 - 0.5) - 0.0, 1e-12);
  auto g = p.gradient(x);
  EXPECT_NEAR(g[0], 1.5, 1e-12);
  EXPECT_NEAR(g[1], -0.5, 1e-12);
}

TEST(ProblemChecks, InfeasibilityMeasuresWorstViolation) {
  auto p = tiny_problem();
  EXPECT_DOUBLE_EQ(p.infeasibility({0.5, 0.5}), 0.0);
  EXPECT_NEAR(p.infeasibility({1.5, 0.0}), 0.5, 1e-12);   // ub violation
  EXPECT_NEAR(p.infeasibility({-0.3, 0.0}), 0.3, 1e-12);  // lb violation
  EXPECT_NEAR(p.infeasibility({1.0, 1.0}), 1.0, 1e-12);   // budget violation
}

}  // namespace
}  // namespace perq::qp
