#include <gtest/gtest.h>

#include "qp/active_set.hpp"
#include "qp/projected_gradient.hpp"
#include "qp/projection.hpp"
#include "util/rng.hpp"

namespace perq::qp {
namespace {

using linalg::Matrix;
using linalg::Vector;
using linalg::approx_equal;

QpProblem unconstrained_like(std::size_t n) {
  QpProblem p;
  p.Q = Matrix::identity(n);
  p.c.assign(n, 0.0);
  p.lb.assign(n, -100.0);
  p.ub.assign(n, 100.0);
  return p;
}

TEST(ActiveSet, UnconstrainedMinimum) {
  // min 1/2 x'Ix + c'x  => x = -c.
  auto p = unconstrained_like(3);
  p.c = {1.0, -2.0, 0.5};
  auto r = solve_active_set(p, {});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_TRUE(approx_equal(r.x, Vector{-1.0, 2.0, -0.5}, 1e-8));
}

TEST(ActiveSet, BoxClampsSolution) {
  auto p = unconstrained_like(2);
  p.c = {-10.0, 0.0};  // unconstrained min at (10, 0)
  p.ub = {1.0, 1.0};
  p.lb = {-1.0, -1.0};
  auto r = solve_active_set(p, {});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
  EXPECT_GT(r.bound_mult[0], 0.0);  // active upper bound has a multiplier
}

TEST(ActiveSet, BudgetBindsAndSplitsEvenly) {
  // Symmetric pull toward (2,2) with budget x0+x1 <= 2 => (1,1).
  auto p = unconstrained_like(2);
  p.c = {-2.0, -2.0};
  p.lb = {0.0, 0.0};
  p.ub = {5.0, 5.0};
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1.0, 1.0};
  bc.bound = 2.0;
  p.budgets.push_back(bc);
  auto r = solve_active_set(p, {});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
  EXPECT_NEAR(r.budget_mult[0], 1.0, 1e-6);  // nu = 2 - 1 = 1
}

TEST(ActiveSet, InactiveBudgetHasZeroMultiplier) {
  auto p = unconstrained_like(2);
  p.c = {1.0, 1.0};  // min at (-1,-1)
  p.lb = {-2.0, -2.0};
  p.ub = {2.0, 2.0};
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1.0, 1.0};
  bc.bound = 10.0;
  p.budgets.push_back(bc);
  auto r = solve_active_set(p, {});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.budget_mult[0], 0.0, 1e-10);
  EXPECT_TRUE(approx_equal(r.x, Vector{-1.0, -1.0}, 1e-8));
}

TEST(ActiveSet, InfeasibleDetected) {
  auto p = unconstrained_like(2);
  p.lb = {1.0, 1.0};
  p.ub = {2.0, 2.0};
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1.0, 1.0};
  bc.bound = 1.0;  // lb sum = 2 > 1
  p.budgets.push_back(bc);
  EXPECT_EQ(solve_active_set(p, {}).status, SolveStatus::kInfeasible);
  EXPECT_EQ(solve_projected_gradient(p, {}).status, SolveStatus::kInfeasible);
}

TEST(ActiveSet, FixedVariablesHandled) {
  auto p = unconstrained_like(3);
  p.c = {-5, -5, -5};
  p.lb[1] = p.ub[1] = 0.25;  // variable 1 pinned
  auto r = solve_active_set(p, {});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[1], 0.25, 1e-12);
  EXPECT_NEAR(r.x[0], 5.0, 1e-8);
}

TEST(ActiveSet, WarmStartReducesIterations) {
  auto p = unconstrained_like(6);
  for (std::size_t i = 0; i < 6; ++i) p.c[i] = -static_cast<double>(i + 1);
  p.lb.assign(6, 0.0);
  p.ub.assign(6, 1.5);
  BudgetConstraint bc;
  for (std::size_t i = 0; i < 6; ++i) {
    bc.index.push_back(i);
    bc.weight.push_back(1.0);
  }
  bc.bound = 4.0;
  p.budgets.push_back(bc);
  auto cold = solve_active_set(p, {});
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  auto warm = solve_active_set(p, cold.x);
  EXPECT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_TRUE(approx_equal(warm.x, cold.x, 1e-7));
}

TEST(ProjectedGradient, MatchesActiveSetOnSmallProblem) {
  auto p = unconstrained_like(2);
  p.c = {-3.0, 1.0};
  p.lb = {0.0, 0.0};
  p.ub = {2.0, 2.0};
  auto a = solve_active_set(p, {});
  auto g = solve_projected_gradient(p, {});
  EXPECT_TRUE(approx_equal(a.x, g.x, 1e-6));
}

TEST(SpectralNorm, DiagonalMatrix) {
  Matrix q = Matrix::diagonal({1.0, 7.0, 3.0});
  EXPECT_NEAR(estimate_spectral_norm(q), 7.0, 1e-6);
}

TEST(SpectralNorm, EmptyMatrixIsZero) {
  EXPECT_DOUBLE_EQ(estimate_spectral_norm(Matrix()), 0.0);
}

// ---- Randomized cross-validation: active set vs FISTA vs KKT --------------

struct RandomCase {
  std::size_t n;
  std::size_t budgets;
  std::uint64_t seed;

  friend void PrintTo(const RandomCase& rc, std::ostream* os) {
    *os << "n" << rc.n << "_b" << rc.budgets << "_s" << rc.seed;
  }
};

class RandomQp : public ::testing::TestWithParam<RandomCase> {
 protected:
  QpProblem make(const RandomCase& rc) {
    Rng rng(rc.seed);
    QpProblem p;
    // SPD Hessian: A'A + n*I.
    Matrix a(rc.n, rc.n);
    for (std::size_t r = 0; r < rc.n; ++r) {
      for (std::size_t c = 0; c < rc.n; ++c) a(r, c) = rng.uniform(-1, 1);
    }
    p.Q = a.transposed() * a;
    for (std::size_t i = 0; i < rc.n; ++i) p.Q(i, i) += 1.0;
    p.c.resize(rc.n);
    for (auto& v : p.c) v = rng.uniform(-5, 5);
    p.lb.assign(rc.n, 0.0);
    p.ub.assign(rc.n, 3.0);
    // Disjoint budgets over contiguous chunks (mirrors MPC structure).
    const std::size_t chunk = rc.budgets == 0 ? rc.n : rc.n / rc.budgets;
    for (std::size_t k = 0; k < rc.budgets; ++k) {
      BudgetConstraint bc;
      const std::size_t lo = k * chunk;
      const std::size_t hi = (k + 1 == rc.budgets) ? rc.n : lo + chunk;
      for (std::size_t i = lo; i < hi; ++i) {
        bc.index.push_back(i);
        bc.weight.push_back(rng.uniform(0.5, 2.0));
      }
      bc.bound = rng.uniform(1.0, 4.0);
      p.budgets.push_back(bc);
    }
    return p;
  }
};

TEST_P(RandomQp, ActiveSetSatisfiesKkt) {
  auto p = make(GetParam());
  auto r = solve_active_set(p, {});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  auto kkt = kkt_residual(p, r);
  EXPECT_LT(kkt.stationarity, 1e-6);
  EXPECT_LT(kkt.primal, 1e-8);
  EXPECT_LT(kkt.complementarity, 1e-6);
  EXPECT_LT(kkt.dual, 1e-8);
}

TEST_P(RandomQp, SolversAgreeOnObjective) {
  auto p = make(GetParam());
  auto a = solve_active_set(p, {});
  PgOptions opts;
  opts.max_iterations = 100000;
  opts.tolerance = 1e-11;
  auto g = solve_projected_gradient(p, {}, opts);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, g.objective, 1e-5 * (1.0 + std::abs(a.objective)));
  // Strict convexity => unique minimizer: solutions must agree too.
  EXPECT_TRUE(approx_equal(a.x, g.x, 1e-3));
}

TEST_P(RandomQp, FacadeReturnsVerifiedSolution) {
  auto p = make(GetParam());
  auto r = solve(p);
  EXPECT_LE(p.infeasibility(r.x), 1e-7);
  auto kkt = kkt_residual(p, r);
  EXPECT_LT(kkt.max(), 1e-4 * (1.0 + linalg::norm_inf(p.c)));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RandomQp,
    ::testing::Values(RandomCase{2, 1, 1}, RandomCase{3, 1, 2}, RandomCase{5, 1, 3},
                      RandomCase{8, 2, 4}, RandomCase{12, 3, 5}, RandomCase{12, 4, 6},
                      RandomCase{20, 4, 7}, RandomCase{20, 5, 8}, RandomCase{30, 5, 9},
                      RandomCase{40, 8, 10}, RandomCase{6, 0, 11},
                      RandomCase{16, 2, 12}, RandomCase{24, 6, 13},
                      RandomCase{10, 1, 14}, RandomCase{50, 10, 15}));

TEST(Facade, TightBudgetForcesLowerBounds) {
  // Budget exactly equals sum of lower bounds: unique feasible point.
  QpProblem p;
  p.Q = Matrix::identity(3);
  p.c = {-1, -1, -1};
  p.lb = {0.5, 0.5, 0.5};
  p.ub = {2, 2, 2};
  BudgetConstraint bc;
  bc.index = {0, 1, 2};
  bc.weight = {1, 1, 1};
  bc.bound = 1.5;
  p.budgets.push_back(bc);
  auto r = solve(p);
  EXPECT_TRUE(approx_equal(r.x, Vector{0.5, 0.5, 0.5}, 1e-6));
}

TEST(Facade, AsymmetricWeightsFavorCheaperVariable) {
  // Same pull on both vars, but var 1 consumes 4x budget per unit:
  // optimum allocates more to var 0.
  QpProblem p;
  p.Q = Matrix::identity(2);
  p.c = {-10, -10};
  p.lb = {0, 0};
  p.ub = {10, 10};
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1.0, 4.0};
  bc.bound = 8.0;
  p.budgets.push_back(bc);
  auto r = solve(p);
  EXPECT_GT(r.x[0], r.x[1]);
  EXPECT_LE(p.infeasibility(r.x), 1e-8);
}

}  // namespace
}  // namespace perq::qp
