// Edge paths of the QP facade and status plumbing not covered by the main
// solver suites.
#include <gtest/gtest.h>

#include "qp/active_set.hpp"
#include "qp/projected_gradient.hpp"
#include "util/require.hpp"

namespace perq::qp {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(SolveStatus, ToStringCoversAllValues) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kMaxIterations), "max-iterations");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
}

TEST(Facade, InfeasibleProblemReported) {
  QpProblem p;
  p.Q = Matrix::identity(2);
  p.c = {0, 0};
  p.lb = {1, 1};
  p.ub = {2, 2};
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1, 1};
  bc.bound = 1.0;
  p.budgets.push_back(bc);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Facade, SingleVariableDegenerateBox) {
  // lb == ub pins the variable; the solution is forced.
  QpProblem p;
  p.Q = Matrix::identity(1);
  p.c = {-3.0};
  p.lb = {0.7};
  p.ub = {0.7};
  auto r = solve(p);
  EXPECT_NEAR(r.x[0], 0.7, 1e-9);
}

TEST(Facade, WarmStartOutsideFeasibleSetIsProjected) {
  QpProblem p;
  p.Q = Matrix::identity(2);
  p.c = {-1, -1};
  p.lb = {0, 0};
  p.ub = {1, 1};
  auto r = solve(p, Vector{50.0, -50.0});
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(Facade, BudgetExactlyAtUnconstrainedOptimum) {
  // The budget passes exactly through the unconstrained minimizer (1, 1):
  // a degenerate active set (constraint active with zero multiplier).
  QpProblem p;
  p.Q = Matrix::identity(2);
  p.c = {-1, -1};
  p.lb = {0, 0};
  p.ub = {5, 5};
  BudgetConstraint bc;
  bc.index = {0, 1};
  bc.weight = {1, 1};
  bc.bound = 2.0;
  p.budgets.push_back(bc);
  auto r = solve(p);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], 1.0, 1e-6);
}

TEST(ProjectedGradient, HonorsIterationBudget) {
  QpProblem p;
  p.Q = Matrix::identity(4);
  p.c = {-1, -2, -3, -4};
  p.lb.assign(4, 0.0);
  p.ub.assign(4, 10.0);
  PgOptions opts;
  opts.max_iterations = 3;
  opts.tolerance = 1e-16;  // unreachable in 3 iterations
  auto r = solve_projected_gradient(p, {}, opts);
  EXPECT_EQ(r.status, SolveStatus::kMaxIterations);
  EXPECT_LE(r.iterations, 3u);
  EXPECT_LE(p.infeasibility(r.x), 1e-9);  // iterates stay feasible
}

TEST(KktResidual, DetectsWrongMultipliers) {
  QpProblem p;
  p.Q = Matrix::identity(1);
  p.c = {-2.0};
  p.lb = {0.0};
  p.ub = {1.0};
  auto r = solve(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LT(kkt_residual(p, r).max(), 1e-6);
  // Corrupting the bound multiplier must show up as a KKT violation.
  QpResult bad = r;
  bad.bound_mult[0] += 5.0;
  EXPECT_GT(kkt_residual(p, bad).max(), 1.0);
}

TEST(KktResidual, ValidatesShapes) {
  QpProblem p;
  p.Q = Matrix::identity(2);
  p.c = {0, 0};
  p.lb = {0, 0};
  p.ub = {1, 1};
  QpResult r;
  r.x = {0.5, 0.5};
  r.bound_mult = {0.0};  // wrong size
  r.budget_mult = {};
  EXPECT_THROW(kkt_residual(p, r), precondition_error);
}

}  // namespace
}  // namespace perq::qp
