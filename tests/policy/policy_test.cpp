#include "policy/policy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::policy {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  sched::Job* add_job(int id, std::size_t nodes, double remaining_s = 600.0,
                      double progressed_s = 0.0) {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = remaining_s + progressed_s;
    s.app_index = 0;
    jobs_.push_back(std::make_unique<sched::Job>(s, &apps::find_app("ASPA")));
    sched::Job* j = jobs_.back().get();
    std::vector<std::size_t> ids(nodes);
    for (std::size_t i = 0; i < nodes; ++i) ids[i] = next_node_++;
    j->start(0.0, std::move(ids));
    if (progressed_s > 0.0) j->record_interval(progressed_s, 1.0, 1e9, 290.0);
    running_.push_back(j);
    return j;
  }

  PolicyContext ctx(double budget_busy, double total_nodes, double budget_total = -1) {
    PolicyContext c;
    c.running = &running_;
    c.budget_for_busy_w = budget_busy;
    c.budget_total_w = budget_total < 0 ? budget_busy : budget_total;
    c.total_nodes = total_nodes;
    return c;
  }

  double committed(const std::vector<double>& caps) const {
    double s = 0.0;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      s += caps[i] * static_cast<double>(running_[i]->spec().nodes);
    }
    return s;
  }

  std::vector<std::unique_ptr<sched::Job>> jobs_;
  std::vector<sched::Job*> running_;
  std::size_t next_node_ = 0;
};

TEST_F(PolicyTest, EnforceBudgetPassesFeasibleCapsThrough) {
  add_job(0, 2);
  add_job(1, 2);
  auto caps = enforce_budget(running_, {200.0, 100.0}, 700.0);
  EXPECT_DOUBLE_EQ(caps[0], 200.0);
  EXPECT_DOUBLE_EQ(caps[1], 100.0);
}

TEST_F(PolicyTest, EnforceBudgetClampsToRange) {
  add_job(0, 1);
  auto caps = enforce_budget(running_, {500.0}, 1000.0);
  EXPECT_DOUBLE_EQ(caps[0], 290.0);
  caps = enforce_budget(running_, {10.0}, 1000.0);
  EXPECT_DOUBLE_EQ(caps[0], 90.0);
}

TEST_F(PolicyTest, EnforceBudgetScalesHeadroomUniformly) {
  add_job(0, 1);
  add_job(1, 1);
  // Requested 290+290 = 580 against budget 400: headroom above 90 scales.
  auto caps = enforce_budget(running_, {290.0, 290.0}, 400.0);
  EXPECT_NEAR(committed(caps), 400.0, 1e-9);
  EXPECT_DOUBLE_EQ(caps[0], caps[1]);
}

TEST_F(PolicyTest, EnforceBudgetPreservesRelativeHeadroom) {
  add_job(0, 1);
  add_job(1, 1);
  auto caps = enforce_budget(running_, {290.0, 190.0}, 400.0);
  EXPECT_NEAR(committed(caps), 400.0, 1e-9);
  // 290 has 200 headroom, 190 has 100: the ratio must be preserved.
  EXPECT_NEAR((caps[0] - 90.0) / (caps[1] - 90.0), 2.0, 1e-9);
}

TEST_F(PolicyTest, EnforceBudgetRejectsImpossibleFloor) {
  add_job(0, 4);
  EXPECT_THROW(enforce_budget(running_, {90.0}, 300.0), precondition_error);
}

TEST_F(PolicyTest, FopSplitsEqually) {
  add_job(0, 2);
  add_job(1, 6);
  FairShare fop;
  // Machine: 16 nodes total, budget 8*290 (f = 2).
  auto caps = fop.allocate(ctx(8 * 290.0, 16.0, 8 * 290.0));
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_NEAR(caps[0], 145.0, 1e-9);
  EXPECT_NEAR(caps[1], 145.0, 1e-9);
}

TEST_F(PolicyTest, FopAtWorstCaseGivesTdp) {
  add_job(0, 4);
  FairShare fop;
  auto caps = fop.allocate(ctx(8 * 290.0, 8.0, 8 * 290.0));
  EXPECT_DOUBLE_EQ(caps[0], 290.0);
}

TEST_F(PolicyTest, FopClampsAtExtremeOverprovisioning) {
  add_job(0, 1);
  FairShare fop;
  // f = 4: equal share would be 72.5 < cap_min.
  auto caps = fop.allocate(ctx(8 * 290.0, 32.0, 8 * 290.0));
  EXPECT_DOUBLE_EQ(caps[0], 90.0);
}

TEST_F(PolicyTest, SjsPrioritizesSmallestJob) {
  add_job(0, 6);
  add_job(1, 1);
  auto sjs = make_sjs();
  // Tight budget: 7 nodes busy, budget 7*120.
  auto caps = sjs->allocate(ctx(7 * 120.0, 7.0));
  EXPECT_GT(caps[1], caps[0]);  // the 1-node job gets the power
  EXPECT_LE(committed(caps), 7 * 120.0 + 1e-6);
}

TEST_F(PolicyTest, LjsPrioritizesLargestJob) {
  add_job(0, 6);
  add_job(1, 1);
  auto ljs = make_ljs();
  auto caps = ljs->allocate(ctx(7 * 120.0, 7.0));
  EXPECT_GT(caps[0], caps[1]);
}

TEST_F(PolicyTest, SrnPrioritizesLeastRemainingWork) {
  add_job(0, 2, 3600.0);        // lots of work left
  add_job(1, 2, 60.0, 3540.0);  // nearly done
  auto srn = make_srn();
  auto caps = srn->allocate(ctx(4 * 120.0, 4.0));
  EXPECT_GT(caps[1], caps[0]);
}

TEST_F(PolicyTest, GreedyGivesTdpWhenBudgetAmple) {
  add_job(0, 1);
  add_job(1, 1);
  auto sjs = make_sjs();
  auto caps = sjs->allocate(ctx(2 * 290.0, 2.0));
  EXPECT_DOUBLE_EQ(caps[0], 290.0);
  EXPECT_DOUBLE_EQ(caps[1], 290.0);
}

TEST_F(PolicyTest, GreedyKeepsReserveForNonPriorityJobs) {
  // Budget only slightly above the floor: priority job takes the surplus
  // but the other job keeps at least 60% of the equal share.
  add_job(0, 1, 60.0);   // nearly done - SRN priority
  add_job(1, 1, 3600.0);
  auto srn = make_srn();
  const double budget = 2 * 150.0;
  auto caps = srn->allocate(ctx(budget, 2.0));
  EXPECT_LE(committed(caps), budget + 1e-6);
  EXPECT_GE(caps[1], 0.6 * 150.0 - 1e-6);
  EXPECT_GT(caps[0], caps[1]);
}

TEST_F(PolicyTest, GreedyDeterministicTieBreakById) {
  add_job(0, 2);
  add_job(1, 2);
  auto sjs = make_sjs();
  auto caps = sjs->allocate(ctx(4 * 140.0, 4.0));
  EXPECT_GE(caps[0], caps[1]);  // equal size: lower id wins
}

TEST_F(PolicyTest, PolicyNames) {
  EXPECT_EQ(make_fop()->name(), "FOP");
  EXPECT_EQ(make_sjs()->name(), "SJS");
  EXPECT_EQ(make_ljs()->name(), "LJS");
  EXPECT_EQ(make_srn()->name(), "SRN");
}

TEST_F(PolicyTest, BaselinesReportNoTargets) {
  EXPECT_DOUBLE_EQ(make_fop()->target_ips(7), 0.0);
  EXPECT_DOUBLE_EQ(make_srn()->target_ips(7), 0.0);
}

TEST_F(PolicyTest, MissingContextRejected) {
  FairShare fop;
  PolicyContext empty;
  EXPECT_THROW(fop.allocate(empty), precondition_error);
}

class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, AllPoliciesRespectBudget) {
  const double per_node_budget = GetParam();
  std::vector<std::unique_ptr<sched::Job>> jobs;
  std::vector<sched::Job*> running;
  std::size_t node = 0;
  for (int i = 0; i < 5; ++i) {
    trace::JobSpec s;
    s.id = i;
    s.nodes = static_cast<std::size_t>(1 + i % 3);
    s.runtime_ref_s = 600.0 * (i + 1);
    s.app_index = 0;
    jobs.push_back(std::make_unique<sched::Job>(s, &apps::find_app("ASPA")));
    std::vector<std::size_t> ids(s.nodes);
    for (auto& id : ids) id = node++;
    jobs.back()->start(0.0, std::move(ids));
    running.push_back(jobs.back().get());
  }
  double total_nodes = static_cast<double>(node);
  PolicyContext c;
  c.running = &running;
  c.budget_for_busy_w = per_node_budget * total_nodes;
  c.budget_total_w = c.budget_for_busy_w;
  c.total_nodes = total_nodes;

  std::vector<std::unique_ptr<PowerPolicy>> policies;
  policies.push_back(make_fop());
  policies.push_back(make_sjs());
  policies.push_back(make_ljs());
  policies.push_back(make_srn());
  for (const auto& policy : policies) {
    auto caps = policy->allocate(c);
    ASSERT_EQ(caps.size(), running.size());
    double committed = 0.0;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      EXPECT_GE(caps[i], 90.0 - 1e-9) << policy->name();
      EXPECT_LE(caps[i], 290.0 + 1e-9) << policy->name();
      committed += caps[i] * static_cast<double>(running[i]->spec().nodes);
    }
    EXPECT_LE(committed, c.budget_for_busy_w + 1e-6) << policy->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(95.0, 120.0, 145.0, 200.0, 290.0));

}  // namespace
}  // namespace perq::policy
