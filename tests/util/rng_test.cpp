#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace perq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(123);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = r.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntRejectsBadBounds) {
  Rng r(1);
  EXPECT_THROW(r.uniform_int(3, 2), precondition_error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(77);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = r.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng r(78);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = r.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng r(1);
  EXPECT_THROW(r.normal(0.0, -1.0), precondition_error);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng r(5);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = r.lognormal(1.0, 0.8);
  EXPECT_NEAR(median(xs), std::exp(1.0), 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r(6);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = r.exponential(0.25);
  EXPECT_NEAR(mean(xs), 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), precondition_error);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng r(13);
  std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng r(13);
  std::vector<double> w{0.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(r.weighted_index(w), 1u);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng r(1);
  EXPECT_THROW(r.weighted_index({}), precondition_error);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), precondition_error);
  EXPECT_THROW(r.weighted_index({-1.0, 2.0}), precondition_error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // Child stream should not reproduce the parent's continuation.
  Rng parent_copy(21);
  (void)parent_copy();  // advance like the split did
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child() == parent_copy()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace perq
