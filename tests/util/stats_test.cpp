#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace perq {
namespace {

TEST(Stats, MeanBasic) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0); }

TEST(Stats, MeanSingleton) { EXPECT_DOUBLE_EQ(mean({5.0}), 5.0); }

TEST(Stats, MeanRejectsEmpty) { EXPECT_THROW(mean({}), precondition_error); }

TEST(Stats, VarianceKnownValue) {
  // Sample variance of {2,4,4,4,5,5,7,9} = 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceSingletonIsZero) { EXPECT_DOUBLE_EQ(variance({3.0}), 0.0); }

TEST(Stats, StddevIsSqrtVariance) {
  EXPECT_NEAR(stddev({1, 2, 3, 4}), std::sqrt(variance({1, 2, 3, 4})), 1e-12);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75), 7.5);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, PercentileRejectsBadQ) {
  EXPECT_THROW(percentile({1.0}, -1), precondition_error);
  EXPECT_THROW(percentile({1.0}, 101), precondition_error);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(max_of({3, 9, 1}), 9.0);
  EXPECT_DOUBLE_EQ(min_of({3, 9, 1}), 1.0);
}

TEST(Stats, FractionAbove) {
  EXPECT_DOUBLE_EQ(fraction_above({1, 2, 3, 4}, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above({1, 2}, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above({1, 2}, 0.0), 1.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  auto cdf = empirical_cdf({4.0, 1.0, 3.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative, cdf[i].cumulative);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().cumulative, 0.25);
}

TEST(Stats, EmpiricalCdfDownsampled) {
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  auto cdf = empirical_cdf(xs, 11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 999.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(Stats, EmpiricalCdfSmallSamplePassThrough) {
  auto cdf = empirical_cdf({1.0, 2.0}, 10);
  EXPECT_EQ(cdf.size(), 2u);
}

TEST(Stats, RunningStatsMatchesBatch) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatsEmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), precondition_error);
  EXPECT_THROW(rs.min(), precondition_error);
  EXPECT_THROW(rs.max(), precondition_error);
}

TEST(Stats, RunningStatsSingleSample) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace perq
