#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace perq {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "perq_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndNumericRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<double>{1.0, 2.5});
    w.row(std::vector<double>{3.0, 4.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2.5\n3,4\n");
}

TEST_F(CsvTest, QuotesCellsWithCommas) {
  {
    CsvWriter w(path_, {"name"});
    w.row(std::vector<std::string>{"hello, world"});
  }
  EXPECT_EQ(slurp(path_), "name\n\"hello, world\"\n");
}

TEST_F(CsvTest, EscapesEmbeddedQuotes) {
  {
    CsvWriter w(path_, {"name"});
    w.row(std::vector<std::string>{"say \"hi\""});
  }
  EXPECT_EQ(slurp(path_), "name\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, FlushPushesRowsToDisk) {
  CsvWriter w(path_, {"a"});
  w.row(std::vector<double>{1.0});
  w.flush();
  EXPECT_EQ(slurp(path_), "a\n1\n");
}

TEST(Csv, FlushThrowsWhenStreamWentBad) {
  // /dev/full accepts the open but fails every write with ENOSPC, so the
  // flush must surface the failure instead of leaving a torn file behind.
  if (!std::ifstream("/dev/full").good()) GTEST_SKIP() << "no /dev/full";
  CsvWriter w("/dev/full", {"a"});
  w.row(std::vector<double>{1.0});
  EXPECT_THROW(w.flush(), precondition_error);
}

TEST_F(CsvTest, RejectsArityMismatch) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), precondition_error);
}

TEST_F(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), precondition_error);
}

TEST(Csv, RejectsUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), precondition_error);
}

TEST(Csv, FormatDoubleCompact) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(-3.25), "-3.25");
}

TEST(Csv, FormatDoubleSpecials) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace perq
