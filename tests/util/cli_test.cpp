#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace perq::cli {
namespace {

TEST(CliParse, DoubleAcceptsPlainDecimals) {
  EXPECT_DOUBLE_EQ(parse_double("--f", "2.0"), 2.0);
  EXPECT_DOUBLE_EQ(parse_double("--f", "-1.25"), -1.25);
  EXPECT_DOUBLE_EQ(parse_double("--f", ".5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_double("--f", "+3"), 3.0);
  EXPECT_DOUBLE_EQ(parse_double("--f", "1e3"), 1000.0);
}

TEST(CliParse, DoubleRejectsGarbage) {
  EXPECT_THROW(parse_double("--f", ""), precondition_error);
  EXPECT_THROW(parse_double("--f", "1.5x"), precondition_error);
  EXPECT_THROW(parse_double("--f", "x1.5"), precondition_error);
  EXPECT_THROW(parse_double("--f", "1.5 "), precondition_error);
  EXPECT_THROW(parse_double("--f", " 1.5"), precondition_error);
  EXPECT_THROW(parse_double("--f", "nan"), precondition_error);
  EXPECT_THROW(parse_double("--f", "inf"), precondition_error);
  EXPECT_THROW(parse_double("--f", "0x10"), precondition_error);
  EXPECT_THROW(parse_double("--f", "1e999"), precondition_error);
}

TEST(CliParse, DoubleRangeChecked) {
  EXPECT_DOUBLE_EQ(parse_double_in("--f", "1.5", 1.0, 4.0), 1.5);
  EXPECT_DOUBLE_EQ(parse_double_in("--f", "1.0", 1.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_double_in("--f", "4.0", 1.0, 4.0), 4.0);
  EXPECT_THROW(parse_double_in("--f", "0.9", 1.0, 4.0), precondition_error);
  EXPECT_THROW(parse_double_in("--f", "4.1", 1.0, 4.0), precondition_error);
  EXPECT_THROW(parse_double_in("--f", "5", 4.0, 1.0), precondition_error);
}

TEST(CliParse, U64AcceptsPlainIntegers) {
  EXPECT_EQ(parse_u64("--jobs", "0"), 0u);
  EXPECT_EQ(parse_u64("--jobs", "1000000"), 1000000u);
  EXPECT_EQ(parse_u64("--jobs", "18446744073709551615"),
            18446744073709551615ull);
}

TEST(CliParse, U64RejectsGarbage) {
  EXPECT_THROW(parse_u64("--jobs", ""), precondition_error);
  EXPECT_THROW(parse_u64("--jobs", "-1"), precondition_error);
  EXPECT_THROW(parse_u64("--jobs", "+1"), precondition_error);
  EXPECT_THROW(parse_u64("--jobs", "1.5"), precondition_error);
  EXPECT_THROW(parse_u64("--jobs", "12abc"), precondition_error);
  EXPECT_THROW(parse_u64("--jobs", "abc"), precondition_error);
  EXPECT_THROW(parse_u64("--jobs", "18446744073709551616"),  // 2^64
               precondition_error);
}

TEST(CliParse, U64RangeChecked) {
  EXPECT_EQ(parse_u64_in("--shards", "4", 1, 64), 4u);
  EXPECT_THROW(parse_u64_in("--shards", "0", 1, 64), precondition_error);
  EXPECT_THROW(parse_u64_in("--shards", "65", 1, 64), precondition_error);
}

TEST(CliParse, ErrorMessagesNameTheFlag) {
  try {
    parse_double("--interval", "ten");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("--interval"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ten"), std::string::npos);
  }
}

}  // namespace
}  // namespace perq::cli
