#include "sysid/arx.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::sysid {
namespace {

using linalg::Vector;

ArxModel known_model() {
  ArxModel m;
  m.a = {0.5, 0.2};
  m.b = {0.3, 0.1};
  m.b0 = 0.4;
  return m;
}

TEST(ArxModel, PredictMatchesHandComputation) {
  auto m = known_model();
  // y(k) = 0.4*u(k) + 0.5*y(k-1) + 0.2*y(k-2) + 0.3*u(k-1) + 0.1*u(k-2)
  const double y = m.predict(1.0, Vector{2.0, 3.0}, Vector{0.5, 0.25});
  EXPECT_NEAR(y, 0.4 + 1.0 + 0.6 + 0.15 + 0.025, 1e-12);
}

TEST(ArxModel, PredictRejectsShortHistory) {
  auto m = known_model();
  EXPECT_THROW(m.predict(1.0, Vector{1.0}, Vector{1.0, 1.0}), precondition_error);
  EXPECT_THROW(m.predict(1.0, Vector{1.0, 1.0}, Vector{1.0}), precondition_error);
}

TEST(ArxModel, SimulateStepResponseConvergesToDcGain) {
  auto m = known_model();
  Vector u(200, 1.0);
  Vector y = m.simulate(u);
  EXPECT_NEAR(y.back(), m.dc_gain(), 1e-9);
}

TEST(ArxModel, SimulateZeroInputStaysZero) {
  auto m = known_model();
  Vector y = m.simulate(Vector(50, 0.0));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ArxModel, SimulateWithSeedDecaysFromInitialCondition) {
  ArxModel m;
  m.a = {0.5};
  m.b = {0.0};
  // y(k) = 0.5 y(k-1): geometric decay from the seed.
  Vector y = m.simulate(Vector(4, 0.0), Vector{2.0});
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[2], 0.25, 1e-12);
}

TEST(ArxModel, DcGainKnownValue) {
  auto m = known_model();
  // (0.4 + 0.3 + 0.1) / (1 - 0.7)
  EXPECT_NEAR(m.dc_gain(), 0.8 / 0.3, 1e-12);
}

TEST(ArxModel, DcGainRejectsUnitPole) {
  ArxModel m;
  m.a = {1.0};
  m.b = {0.5};
  EXPECT_THROW(m.dc_gain(), precondition_error);
}

TEST(ArxModel, StabilityFirstOrder) {
  ArxModel m;
  m.b = {1.0};
  m.a = {0.5};
  EXPECT_TRUE(m.is_stable());
  m.a = {1.5};
  EXPECT_FALSE(m.is_stable());
  m.a = {-0.99};
  EXPECT_TRUE(m.is_stable());
  m.a = {-1.01};
  EXPECT_FALSE(m.is_stable());
}

TEST(ArxModel, StabilitySecondOrder) {
  ArxModel m;
  m.b = {1.0};
  m.a = {0.5, 0.4};  // roots 0.93, -0.43
  EXPECT_TRUE(m.is_stable());
  m.a = {1.0, 0.1};  // root > 1
  EXPECT_FALSE(m.is_stable());
  m.a = {0.0, -0.5};  // complex roots, |z| = sqrt(0.5)
  EXPECT_TRUE(m.is_stable());
  m.a = {0.0, -1.1};  // complex roots outside
  EXPECT_FALSE(m.is_stable());
}

TEST(ArxModel, StabilityMarginalIsRejected) {
  ArxModel m;
  m.b = {1.0};
  m.a = {1.0};  // pole exactly at 1
  EXPECT_FALSE(m.is_stable());
}

TEST(FitArx, RecoversKnownModelExactly) {
  auto truth = known_model();
  Rng rng(3);
  Vector u(600);
  for (auto& v : u) v = rng.uniform(-1, 1);
  Vector y = truth.simulate(u);
  auto fit = fit_arx(u, y, 2, 2);
  // Tolerance reflects the tiny identification ridge, not noise.
  EXPECT_NEAR(fit.a[0], truth.a[0], 1e-4);
  EXPECT_NEAR(fit.a[1], truth.a[1], 1e-4);
  EXPECT_NEAR(fit.b0, truth.b0, 1e-4);
  EXPECT_NEAR(fit.b[0], truth.b[0], 1e-4);
  EXPECT_NEAR(fit.b[1], truth.b[1], 1e-4);
}

TEST(FitArx, RobustToModestNoise) {
  auto truth = known_model();
  Rng rng(4);
  Vector u(4000);
  for (auto& v : u) v = rng.uniform(-1, 1);
  Vector y = truth.simulate(u);
  for (auto& v : y) v += rng.normal(0.0, 0.01);
  auto fit = fit_arx(u, y, 2, 2);
  EXPECT_NEAR(fit.dc_gain(), truth.dc_gain(), 0.15);
  EXPECT_TRUE(fit.is_stable());
}

TEST(FitArx, OverparameterizedStillPredictsWell) {
  auto truth = known_model();
  Rng rng(5);
  Vector u(2000);
  for (auto& v : u) v = rng.uniform(-1, 1);
  Vector y = truth.simulate(u);
  auto fit = fit_arx(u, y, 3, 3);  // higher order than the truth
  Vector y_hat = fit.simulate(u);
  EXPECT_GT(nrmse_fit(y, y_hat), 99.0);
}

TEST(FitArx, RejectsBadInputs) {
  Vector u(100, 1.0), y(99, 1.0);
  EXPECT_THROW(fit_arx(u, y, 2, 2), precondition_error);
  EXPECT_THROW(fit_arx(Vector(5, 1.0), Vector(5, 1.0), 2, 2), precondition_error);
  EXPECT_THROW(fit_arx(Vector(100, 1.0), Vector(100, 1.0), 0, 2), precondition_error);
}

TEST(FitArx, ConstantInputHandledGracefully) {
  // With u identically constant and y constant, the regression cannot
  // separate gain from autoregression; the identification ridge resolves
  // the ambiguity to *a* consistent model instead of failing.
  Vector u(100, 1.0), y(100, 2.0);
  ArxModel fit;
  EXPECT_NO_THROW(fit = fit_arx(u, y, 2, 2));
  // The fitted model must still reproduce the constant record.
  EXPECT_NEAR(fit.predict(1.0, Vector{2.0, 2.0}, Vector{1.0, 1.0}), 2.0, 1e-3);
}

TEST(Nrmse, PerfectFitIs100) {
  Vector y{1, 2, 3};
  EXPECT_DOUBLE_EQ(nrmse_fit(y, y), 100.0);
}

TEST(Nrmse, MeanPredictorIsZero) {
  Vector y{1, 2, 3};
  Vector mean_pred(3, 2.0);
  EXPECT_NEAR(nrmse_fit(y, mean_pred), 0.0, 1e-12);
}

TEST(Nrmse, ConstantSeriesEdgeCases) {
  Vector y(5, 3.0);
  EXPECT_DOUBLE_EQ(nrmse_fit(y, y), 100.0);
  Vector off(5, 4.0);
  EXPECT_DOUBLE_EQ(nrmse_fit(y, off), 0.0);
}

TEST(Nrmse, RejectsMismatchedSizes) {
  EXPECT_THROW(nrmse_fit(Vector{1.0}, Vector{1.0, 2.0}), precondition_error);
  EXPECT_THROW(nrmse_fit(Vector{}, Vector{}), precondition_error);
}

class FitOrderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FitOrderSweep, StableFitOnStablePlant) {
  const std::size_t order = GetParam();
  ArxModel truth;
  truth.a.assign(order, 0.0);
  truth.a[0] = 0.6;
  truth.b.assign(order, 0.1);
  truth.b0 = 0.2;
  Rng rng(10 + order);
  Vector u(3000);
  for (auto& v : u) v = rng.uniform(-1, 1);
  Vector y = truth.simulate(u);
  for (auto& v : y) v += rng.normal(0.0, 0.005);
  auto fit = fit_arx(u, y, order, order);
  EXPECT_TRUE(fit.is_stable());
  EXPECT_NEAR(fit.dc_gain(), truth.dc_gain(), 0.2 * std::abs(truth.dc_gain()) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Orders, FitOrderSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace perq::sysid
