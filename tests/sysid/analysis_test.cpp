#include "sysid/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/node_model.hpp"
#include "linalg/eigen.hpp"
#include "util/require.hpp"

namespace perq::sysid {
namespace {

using linalg::Matrix;

ArxModel example_arx() {
  ArxModel m;
  m.a = {0.6, 0.1, -0.05};
  m.b = {0.2, 0.05, 0.01};
  m.b0 = 0.3;
  return m;
}

TEST(Analysis, PolesMatchCharacteristicRoots) {
  const auto ss = StateSpaceModel::from_arx(example_arx());
  const auto ps = poles(ss);
  ASSERT_EQ(ps.size(), 3u);
  // Each pole satisfies z^3 = a1 z^2 + a2 z + a3.
  for (const auto& z : ps) {
    const auto lhs = z * z * z;
    const auto rhs = 0.6 * z * z + 0.1 * z - 0.05;
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8);
  }
}

TEST(Analysis, StabilityMarginPositiveForStableModel) {
  const auto ss = StateSpaceModel::from_arx(example_arx());
  EXPECT_GT(stability_margin(ss), 0.0);
  ArxModel unstable;
  unstable.a = {1.2};
  unstable.b = {1.0};
  EXPECT_LT(stability_margin(StateSpaceModel::from_arx(unstable)), 0.0);
}

TEST(Analysis, ObservableCanonicalFormIsObservable) {
  // The observable canonical realization is observable by construction.
  const auto ss = StateSpaceModel::from_arx(example_arx());
  EXPECT_TRUE(is_observable(ss));
}

TEST(Analysis, ControllabilityMatrixStructure) {
  const auto ss = StateSpaceModel::from_arx(example_arx());
  const auto ctrb = controllability_matrix(ss);
  ASSERT_EQ(ctrb.rows(), 3u);
  // First column is B; second is A*B.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(ctrb(i, 0), ss.B()(i, 0));
  }
  const auto ab = ss.A() * ss.B();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(ctrb(i, 1), ab(i, 0), 1e-12);
  }
}

TEST(Analysis, UncontrollableModeDetected) {
  // A diagonal system whose second mode has zero input coupling.
  const Matrix a = Matrix::diagonal({0.5, 0.3});
  Matrix b(2, 1);
  b(0, 0) = 1.0;  // mode 2 unreachable
  Matrix c(1, 2, 1.0);
  const StateSpaceModel ss(a, b, c);
  EXPECT_FALSE(is_controllable(ss));
  EXPECT_TRUE(is_observable(ss));
}

TEST(Analysis, UnobservableModeDetected) {
  const Matrix a = Matrix::diagonal({0.5, 0.3});
  const Matrix b(2, 1, 1.0);
  Matrix c(1, 2);
  c(0, 0) = 1.0;  // mode 2 invisible
  const StateSpaceModel ss(a, b, c);
  EXPECT_TRUE(is_controllable(ss));
  EXPECT_FALSE(is_observable(ss));
}

TEST(Analysis, GramiansSolveTheirLyapunovEquations) {
  const auto ss = StateSpaceModel::from_arx(example_arx());
  const auto wc = controllability_gramian(ss);
  const auto wo = observability_gramian(ss);
  EXPECT_TRUE(linalg::approx_equal(
      ss.A() * wc * ss.A().transposed() + ss.B() * ss.B().transposed(), wc, 1e-9));
  EXPECT_TRUE(linalg::approx_equal(
      ss.A().transposed() * wo * ss.A() + ss.C().transposed() * ss.C(), wo, 1e-9));
}

TEST(Analysis, CanonicalNodeModelIsControllableAndObservable) {
  // The paper's claim for its identified model, checked on ours.
  const auto& model = core::canonical_node_model();
  EXPECT_TRUE(is_controllable(model.ss(), 1e-12));
  EXPECT_TRUE(is_observable(model.ss(), 1e-12));
  EXPECT_GT(stability_margin(model.ss()), 0.0);
}

TEST(Analysis, OrderSweepScoresAllOrders) {
  const auto segments = core::collect_training_segments(5, 300, 10.0);
  const auto candidates = sweep_model_order(segments, 5);
  ASSERT_EQ(candidates.size(), 5u);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].order, i + 1);
  }
  // At least one stable candidate, and selection picks a stable one.
  const std::size_t chosen = select_model_order(candidates);
  EXPECT_GE(chosen, 1u);
  EXPECT_LE(chosen, 5u);
  EXPECT_TRUE(candidates[chosen - 1].stable);
}

TEST(Analysis, HigherOrderDoesNotBeatOrderThreeByMuch) {
  // Justifies the paper's fixed choice of order 3: past order ~2-3 the
  // validation fit plateaus.
  const auto segments = core::collect_training_segments(6, 300, 10.0);
  const auto candidates = sweep_model_order(segments, 6);
  double fit3 = 0.0, best_fit = 0.0;
  for (const auto& c : candidates) {
    if (c.order == 3) fit3 = c.fit_percent;
    best_fit = std::max(best_fit, c.fit_percent);
  }
  EXPECT_GT(fit3, best_fit - 5.0);
}

TEST(Analysis, SelectOrderRejectsDegenerateInput) {
  EXPECT_THROW(select_model_order({}), precondition_error);
  OrderCandidate unstable;
  unstable.order = 1;
  unstable.stable = false;
  EXPECT_THROW(select_model_order({unstable}), precondition_error);
}

}  // namespace
}  // namespace perq::sysid
