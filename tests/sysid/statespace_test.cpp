#include "sysid/statespace.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::sysid {
namespace {

using linalg::Matrix;
using linalg::Vector;
using linalg::operator-;

ArxModel example_arx() {
  ArxModel m;
  m.a = {0.6, 0.1, -0.05};
  m.b = {0.2, 0.05, 0.01};
  m.b0 = 0.3;
  return m;
}

TEST(StateSpace, ShapeValidation) {
  EXPECT_THROW(StateSpaceModel(Matrix(2, 3), Matrix(2, 1), Matrix(1, 2)),
               precondition_error);
  EXPECT_THROW(StateSpaceModel(Matrix(2, 2), Matrix(3, 1), Matrix(1, 2)),
               precondition_error);
  EXPECT_THROW(StateSpaceModel(Matrix(2, 2), Matrix(2, 1), Matrix(1, 3)),
               precondition_error);
  EXPECT_NO_THROW(StateSpaceModel(Matrix(2, 2), Matrix(2, 1), Matrix(1, 2)));
}

TEST(StateSpace, FromArxMatchesArxSimulation) {
  auto arx = example_arx();
  auto ss = StateSpaceModel::from_arx(arx);
  EXPECT_EQ(ss.order(), 3u);
  Rng rng(2);
  Vector u(100);
  for (auto& v : u) v = rng.uniform(-1, 1);
  const Vector y_arx = arx.simulate(u);
  const Vector y_ss = ss.simulate(Vector(3, 0.0), u);
  for (std::size_t k = 0; k < u.size(); ++k) {
    EXPECT_NEAR(y_ss[k], y_arx[k], 1e-10) << "k=" << k;
  }
}

TEST(StateSpace, FromArxUnequalOrders) {
  ArxModel arx;
  arx.a = {0.5};
  arx.b = {0.1, 0.2, 0.05};  // nb > na
  arx.b0 = 0.0;
  auto ss = StateSpaceModel::from_arx(arx);
  EXPECT_EQ(ss.order(), 3u);
  Rng rng(3);
  Vector u(60);
  for (auto& v : u) v = rng.uniform(-1, 1);
  const Vector y_arx = arx.simulate(u);
  const Vector y_ss = ss.simulate(Vector(3, 0.0), u);
  EXPECT_TRUE(linalg::approx_equal(y_arx, y_ss, 1e-10));
}

TEST(StateSpace, DcGainMatchesArx) {
  auto arx = example_arx();
  auto ss = StateSpaceModel::from_arx(arx);
  EXPECT_NEAR(ss.dc_gain(), arx.dc_gain(), 1e-10);
}

TEST(StateSpace, FeedthroughAppearsImmediately) {
  auto arx = example_arx();
  auto ss = StateSpaceModel::from_arx(arx);
  // First output of a unit step from rest equals D = b0.
  EXPECT_NEAR(ss.output(Vector(3, 0.0), 1.0), arx.b0, 1e-12);
  EXPECT_DOUBLE_EQ(ss.D(), arx.b0);
}

TEST(StateSpace, StepAdvancesState) {
  auto ss = StateSpaceModel::from_arx(example_arx());
  Vector x(3, 0.0);
  Vector x1 = ss.step(x, 1.0);
  EXPECT_NE(linalg::norm2(x1), 0.0);
  EXPECT_THROW(ss.step(Vector(2, 0.0), 1.0), precondition_error);
  EXPECT_THROW(ss.output(Vector(4, 0.0), 1.0), precondition_error);
}

TEST(StateSpace, StabilityReflectsArx) {
  EXPECT_TRUE(StateSpaceModel::from_arx(example_arx()).is_stable());
  ArxModel unstable;
  unstable.a = {1.2};
  unstable.b = {1.0};
  EXPECT_FALSE(StateSpaceModel::from_arx(unstable).is_stable());
}

TEST(StateSpace, NilpotentIsStable) {
  // A with zeros only: finite impulse response.
  Matrix a(2, 2);
  Matrix b(2, 1, 1.0);
  Matrix c(1, 2);
  c(0, 0) = 1.0;
  StateSpaceModel ss(a, b, c);
  EXPECT_TRUE(ss.is_stable());
}

TEST(StateSpace, StateFromHistoryRecoversExactState) {
  auto ss = StateSpaceModel::from_arx(example_arx());
  Rng rng(7);
  // Evolve from a random initial state, record a window, reconstruct.
  Vector x0(3);
  for (auto& v : x0) v = rng.uniform(-1, 1);
  Vector u(12);
  for (auto& v : u) v = rng.uniform(-1, 1);
  Vector x = x0;
  Vector y(u.size());
  for (std::size_t k = 0; k < u.size(); ++k) {
    y[k] = ss.output(x, u[k]);
    x = ss.step(x, u[k]);
  }
  const Vector x_hat = ss.state_from_history(u, y);
  EXPECT_TRUE(linalg::approx_equal(x_hat, x, 1e-7));
}

TEST(StateSpace, StateFromHistoryToleratesNoise) {
  auto ss = StateSpaceModel::from_arx(example_arx());
  Rng rng(8);
  Vector x0{0.3, -0.2, 0.1};
  Vector u(40);
  for (auto& v : u) v = rng.uniform(-1, 1);
  Vector x = x0;
  Vector y(u.size());
  for (std::size_t k = 0; k < u.size(); ++k) {
    y[k] = ss.output(x, u[k]) + rng.normal(0.0, 0.001);
    x = ss.step(x, u[k]);
  }
  const Vector x_hat = ss.state_from_history(u, y);
  EXPECT_LT(linalg::norm_inf(x_hat - x), 0.02);
}

TEST(StateSpace, StateFromHistoryValidatesInputs) {
  auto ss = StateSpaceModel::from_arx(example_arx());
  EXPECT_THROW(ss.state_from_history(Vector{1, 2}, Vector{1}), precondition_error);
  EXPECT_THROW(ss.state_from_history(Vector{1, 2}, Vector{1, 2}), precondition_error);
}

}  // namespace
}  // namespace perq::sysid
