#include "sysid/identify.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::sysid {
namespace {

using linalg::Vector;

ExcitationConfig small_config(std::uint64_t seed = 1) {
  ExcitationConfig cfg;
  cfg.cap_min = 90;
  cfg.cap_max = 290;
  cfg.samples = 400;
  cfg.seed = seed;
  return cfg;
}

TEST(Excitation, ProducesRequestedSampleCount) {
  auto data = collect_excitation([](double cap) { return cap; }, small_config());
  EXPECT_EQ(data.u.size(), 400u);
  EXPECT_EQ(data.y.size(), 400u);
}

TEST(Excitation, CapsStayWithinRange) {
  auto data = collect_excitation([](double cap) { return cap; }, small_config());
  for (double c : data.u) {
    EXPECT_GE(c, 90.0);
    EXPECT_LE(c, 290.0);
  }
}

TEST(Excitation, HoldsRespectConfiguredRange) {
  auto cfg = small_config();
  cfg.hold_min = 3;
  cfg.hold_max = 5;
  auto data = collect_excitation([](double cap) { return cap; }, cfg);
  // Count run lengths of constant cap; all complete runs must be 3..5.
  std::size_t run = 1;
  for (std::size_t i = 1; i < data.u.size(); ++i) {
    if (data.u[i] == data.u[i - 1]) {
      ++run;
    } else {
      EXPECT_GE(run, 3u);
      EXPECT_LE(run, 5u);
      run = 1;
    }
  }
}

TEST(Excitation, DeterministicForSameSeed) {
  auto a = collect_excitation([](double cap) { return 2 * cap; }, small_config(9));
  auto b = collect_excitation([](double cap) { return 2 * cap; }, small_config(9));
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.y, b.y);
}

TEST(Excitation, ValidatesConfig) {
  auto cfg = small_config();
  cfg.cap_min = cfg.cap_max;
  EXPECT_THROW(collect_excitation([](double) { return 1.0; }, cfg),
               precondition_error);
  cfg = small_config();
  cfg.hold_min = 0;
  EXPECT_THROW(collect_excitation([](double) { return 1.0; }, cfg),
               precondition_error);
  cfg = small_config();
  cfg.samples = 4;
  EXPECT_THROW(collect_excitation([](double) { return 1.0; }, cfg),
               precondition_error);
  EXPECT_THROW(collect_excitation(Plant{}, small_config()), precondition_error);
}

/// A synthetic LTI plant: first-order lag toward 0.004 * cap, scaled to IPS.
class LagPlant {
 public:
  double operator()(double cap) {
    const double target = 1e9 + 3e6 * cap;
    state_ += 0.9 * (target - state_);
    return state_;
  }

 private:
  double state_ = 1e9;
};

TEST(Identify, RecoversStaticSensitivityOfLinearPlant) {
  LagPlant plant;
  auto cfg = small_config(3);
  cfg.samples = 2000;
  auto data = collect_excitation(std::ref(plant), cfg);
  auto model = identify(data, 3, 3);

  // Steady-state slope should be ~3e6 IPS per watt.
  const double slope =
      (model.steady_state(290.0) - model.steady_state(90.0)) / 200.0;
  EXPECT_NEAR(slope, 3e6, 0.1 * 3e6);
  EXPECT_GT(model.fit_percent(), 90.0);
  EXPECT_TRUE(model.arx().is_stable());
}

TEST(Identify, NormalizationRoundTrips) {
  LagPlant plant;
  auto data = collect_excitation(std::ref(plant), small_config(4));
  auto model = identify(data);
  // normalize_u is centered: the mean cap maps to ~0.
  EXPECT_NEAR(model.normalize_u(model.u_mean()), 0.0, 1e-12);
  EXPECT_GT(model.u_scale(), 0.0);
  EXPECT_GT(model.y_scale(), 0.0);
}

TEST(Identify, SegmentsWithDifferentScalesProduceOneModel) {
  // Two plants with 10x different output scales but the same relative
  // sensitivity: per-segment normalization must make them compatible.
  auto make_plant = [](double scale) {
    return [scale, state = 0.0](double cap) mutable {
      const double target = scale * (1.0 + 0.002 * (cap - 190.0));
      state += 0.9 * (target - state);
      return state;
    };
  };
  auto cfg = small_config(5);
  cfg.samples = 1200;
  std::vector<ExcitationData> segs;
  segs.push_back(collect_excitation(make_plant(1e9), cfg));
  cfg.seed = 6;
  segs.push_back(collect_excitation(make_plant(1e10), cfg));
  auto model = identify_segments(segs);
  EXPECT_GT(model.fit_percent(), 85.0);
  // y_scale is the average of the two segment means (~5.5e9 +- transients).
  EXPECT_GT(model.y_scale(), 1e9);
  EXPECT_LT(model.y_scale(), 1e10);
  // Relative steady-state sensitivity ~0.002 per watt.
  const double rel_slope = (model.steady_state(290.0) - model.steady_state(90.0)) /
                           (200.0 * model.y_scale());
  EXPECT_NEAR(rel_slope, 0.002, 0.0005);
}

TEST(Identify, RejectsDegenerateData) {
  ExcitationData d;
  d.u.assign(100, 1.0);
  d.y.assign(99, 1.0);
  EXPECT_THROW(identify(d), precondition_error);
  d.y.assign(100, 0.0);  // zero output mean
  EXPECT_THROW(identify(d), precondition_error);
  EXPECT_THROW(identify_segments({}), precondition_error);
}

TEST(Identify, ShortSegmentRejected) {
  ExcitationData d;
  d.u.assign(10, 1.0);
  d.y.assign(10, 1.0);
  EXPECT_THROW(identify_segments({d}), precondition_error);
}

TEST(IdentifiedModel, SteadyStateIsAffineInCap) {
  LagPlant plant;
  auto data = collect_excitation(std::ref(plant), small_config(8));
  auto model = identify(data);
  const double y1 = model.steady_state(100.0);
  const double y2 = model.steady_state(150.0);
  const double y3 = model.steady_state(200.0);
  EXPECT_NEAR(y3 - y2, y2 - y1, 1e-6 * std::abs(y2));
}

TEST(IdentifiedModel, ValidatesScales) {
  ArxModel arx;
  arx.a = {0.5};
  arx.b = {0.2};
  EXPECT_THROW(IdentifiedModel(arx, 190.0, 0.0, 1.0, 50.0), precondition_error);
  EXPECT_THROW(IdentifiedModel(arx, 190.0, 1.0, -1.0, 50.0), precondition_error);
}

}  // namespace
}  // namespace perq::sysid
