#include "proto/message.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "proto/wire.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-steady-state-allocation contract of
// encode_into() and FrameDecoder. Replacing operator new is per-binary and
// message_test.cpp is the only translation unit in test_proto.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace perq::proto {
namespace {

Hello sample_hello() {
  Hello h;
  h.agent_id = 7;
  h.node_begin = 16;
  h.node_end = 32;
  h.last_plan_tick = 41;
  h.has_plan = 1;
  return h;
}

Telemetry sample_telemetry() {
  Telemetry t;
  t.agent_id = 3;
  t.tick = 123456789ull;
  t.seq = 5;
  t.flags = kTelemetryFinal;
  t.job_id = -42;
  t.nodes = 8;
  t.app_index = 4;
  t.runtime_ref_s = 3600.5;
  t.progress_s = 120.25;
  t.min_perf = 0.8125;
  t.cap_w = 217.375;
  t.ips = 3.5e9;
  t.power_w = 1730.0625;
  return t;
}

CapPlan sample_plan() {
  CapPlan p;
  p.tick = 99;
  p.entries.push_back({1, 250.0, 2.5e9, 0});
  p.entries.push_back({-7, 115.5, 0.0, 1});
  p.entries.push_back({300, 290.0, 1.25e9, 0});
  return p;
}

Heartbeat sample_heartbeat() {
  Heartbeat hb;
  hb.agent_id = 2;
  hb.tick = 77;
  hb.now_s = 770.0;
  hb.dt_s = 10.0;
  hb.budget_total_w = 9280.0;
  hb.budget_for_busy_w = 7000.25;
  hb.total_nodes = 64.0;
  return hb;
}

std::optional<Message> round_trip(const Message& m) {
  const auto frame = encode(m);
  // The length prefix covers everything after itself.
  EXPECT_GE(frame.size(), 8u);
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), 4);
  EXPECT_EQ(len, frame.size() - 4);
  return parse_frame(frame.data() + 4, frame.size() - 4);
}

TEST(Message, HelloRoundTrip) {
  const auto m = round_trip(sample_hello());
  ASSERT_TRUE(m.has_value());
  const auto& h = std::get<Hello>(*m);
  EXPECT_EQ(h.agent_id, 7u);
  EXPECT_EQ(h.node_begin, 16u);
  EXPECT_EQ(h.node_end, 32u);
  // The resync base (ISSUE satellite): a rejoining agent advertises the
  // plan it still holds so the controller can pick delta vs full.
  EXPECT_EQ(h.last_plan_tick, 41u);
  EXPECT_EQ(h.has_plan, 1u);
}

TEST(Message, TelemetryRoundTripIsBitExact) {
  const Telemetry in = sample_telemetry();
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  const auto& t = std::get<Telemetry>(*m);
  EXPECT_EQ(t.agent_id, in.agent_id);
  EXPECT_EQ(t.tick, in.tick);
  EXPECT_EQ(t.seq, in.seq);
  EXPECT_EQ(t.flags, in.flags);
  EXPECT_EQ(t.job_id, in.job_id);
  EXPECT_EQ(t.nodes, in.nodes);
  EXPECT_EQ(t.app_index, in.app_index);
  // Doubles must survive bit-for-bit, not just approximately.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t.runtime_ref_s),
            std::bit_cast<std::uint64_t>(in.runtime_ref_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t.progress_s),
            std::bit_cast<std::uint64_t>(in.progress_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t.min_perf),
            std::bit_cast<std::uint64_t>(in.min_perf));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t.cap_w),
            std::bit_cast<std::uint64_t>(in.cap_w));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t.ips),
            std::bit_cast<std::uint64_t>(in.ips));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t.power_w),
            std::bit_cast<std::uint64_t>(in.power_w));
}

TEST(Message, CapPlanRoundTrip) {
  const auto m = round_trip(sample_plan());
  ASSERT_TRUE(m.has_value());
  const auto& p = std::get<CapPlan>(*m);
  EXPECT_EQ(p.tick, 99u);
  ASSERT_EQ(p.entries.size(), 3u);
  EXPECT_EQ(p.entries[1].job_id, -7);
  EXPECT_DOUBLE_EQ(p.entries[1].cap_w, 115.5);
  EXPECT_EQ(p.entries[1].held, 1);
  EXPECT_EQ(p.entries[2].job_id, 300);
}

TEST(Message, EmptyCapPlanRoundTrip) {
  CapPlan p;
  p.tick = 0;
  const auto m = round_trip(p);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(std::get<CapPlan>(*m).entries.empty());
}

TEST(Message, HeartbeatRoundTrip) {
  const auto m = round_trip(sample_heartbeat());
  ASSERT_TRUE(m.has_value());
  const auto& hb = std::get<Heartbeat>(*m);
  EXPECT_EQ(hb.tick, 77u);
  EXPECT_DOUBLE_EQ(hb.budget_for_busy_w, 7000.25);
  EXPECT_DOUBLE_EQ(hb.total_nodes, 64.0);
}

TEST(Message, ByeRoundTrip) {
  Bye b;
  b.agent_id = 9;
  const auto m = round_trip(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(std::get<Bye>(*m).agent_id, 9u);
}

DomainReport sample_report() {
  DomainReport r;
  r.domain_id = 2;
  r.domain_count = 4;
  r.tick = 31;
  r.jobs = 6;
  r.busy_nodes = 12.0;
  r.floor_w = 840.0;
  r.capacity_w = 2580.0;
  r.committed_w = 1901.5;
  r.utility_per_w = 0.0078125;
  r.achieved_ips = 2.5e10;
  r.target_ips = 2.75e10;
  r.cluster_budget_w = 9280.0;
  r.frames_corrupt = 11;
  r.stale_transitions = 2;
  r.solver_fallbacks = 1;
  r.failsafe_activations = 5;
  r.stale_epoch_frames = 3;
  r.controller_epoch = 2;
  return r;
}

TEST(Message, DomainReportRoundTripIsBitExact) {
  const DomainReport in = sample_report();
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  const auto& r = std::get<DomainReport>(*m);
  EXPECT_EQ(r.domain_id, in.domain_id);
  EXPECT_EQ(r.domain_count, in.domain_count);
  EXPECT_EQ(r.tick, in.tick);
  EXPECT_EQ(r.jobs, in.jobs);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.busy_nodes),
            std::bit_cast<std::uint64_t>(in.busy_nodes));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.floor_w),
            std::bit_cast<std::uint64_t>(in.floor_w));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.capacity_w),
            std::bit_cast<std::uint64_t>(in.capacity_w));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.committed_w),
            std::bit_cast<std::uint64_t>(in.committed_w));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.utility_per_w),
            std::bit_cast<std::uint64_t>(in.utility_per_w));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.cluster_budget_w),
            std::bit_cast<std::uint64_t>(in.cluster_budget_w));
  EXPECT_EQ(r.frames_corrupt, 11u);
  EXPECT_EQ(r.stale_transitions, 2u);
  EXPECT_EQ(r.solver_fallbacks, 1u);
  EXPECT_EQ(r.clamp_activations, 0u);
  EXPECT_EQ(r.failsafe_activations, 5u);
  EXPECT_EQ(r.stale_epoch_frames, 3u);
  EXPECT_EQ(r.controller_epoch, 2u);
}

/// A report exercising every v2 (power tree) extension field. Kept
/// separate from sample_report(): the extension is written only when some
/// extended field is non-default, so the two samples cover both encodings.
DomainReport sample_report_v2() {
  DomainReport r = sample_report();
  r.flags = kDomainLeaving;
  r.grants_fenced = 4;
  r.reparent_events = 1;
  r.sla_floor_activations = 9;
  r.tree_path = {0, 2, 7};
  r.sla_floor_w = 450.5;
  r.priority_weight = 2.5;
  r.share_weight = 0.25;
  return r;
}

BudgetGrant sample_grant_v2() {
  BudgetGrant g;
  g.domain_id = 3;
  g.tick = 77;
  g.grant_w = 2321.0625;
  g.cluster_budget_w = 9280.0;
  g.arbiter_epoch = 6;
  g.tree_path = {0, 2};
  return g;
}

TEST(Message, DomainReportV2RoundTripIsBitExact) {
  const DomainReport in = sample_report_v2();
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  const auto& r = std::get<DomainReport>(*m);
  // v1 fields still intact...
  EXPECT_EQ(r.domain_id, in.domain_id);
  EXPECT_EQ(r.tick, in.tick);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.utility_per_w),
            std::bit_cast<std::uint64_t>(in.utility_per_w));
  EXPECT_EQ(r.controller_epoch, in.controller_epoch);
  // ...and the whole extension survives bit-for-bit.
  EXPECT_EQ(r.flags, kDomainLeaving);
  EXPECT_EQ(r.grants_fenced, 4u);
  EXPECT_EQ(r.reparent_events, 1u);
  EXPECT_EQ(r.sla_floor_activations, 9u);
  EXPECT_EQ(r.tree_path, (std::vector<std::uint32_t>{0, 2, 7}));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.sla_floor_w),
            std::bit_cast<std::uint64_t>(450.5));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.priority_weight),
            std::bit_cast<std::uint64_t>(2.5));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.share_weight),
            std::bit_cast<std::uint64_t>(0.25));
}

TEST(Message, BudgetGrantV2RoundTripIsBitExact) {
  const BudgetGrant in = sample_grant_v2();
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  const auto& g = std::get<BudgetGrant>(*m);
  EXPECT_EQ(g.domain_id, 3u);
  EXPECT_EQ(g.tick, 77u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(g.grant_w),
            std::bit_cast<std::uint64_t>(in.grant_w));
  EXPECT_EQ(g.arbiter_epoch, 6u);
  EXPECT_EQ(g.tree_path, (std::vector<std::uint32_t>{0, 2}));
}

TEST(Message, DefaultExtensionFieldsEncodeByteIdenticalToV1) {
  // The conditional-extension contract: a tenant-blank depth-1 report
  // (every v2 field at its default) must stay byte-identical to what a v1
  // encoder produced, so existing captures and old peers see no change.
  const auto v1_frame = encode(Message(sample_report()));
  DomainReport touched = sample_report();
  touched.priority_weight = 1.0;  // explicit default: still no extension
  touched.tree_path.clear();
  EXPECT_EQ(encode(Message(touched)), v1_frame);
  // Any single non-default field grows the frame (the extension appears).
  DomainReport extended = sample_report();
  extended.tree_path = {0};
  EXPECT_GT(encode(Message(extended)).size(), v1_frame.size());
}

TEST(Message, BudgetGrantRoundTripIsBitExact) {
  BudgetGrant g;
  g.domain_id = 3;
  g.tick = 77;
  g.grant_w = 2321.0625;
  g.cluster_budget_w = 9280.0;
  const auto m = round_trip(g);
  ASSERT_TRUE(m.has_value());
  const auto& out = std::get<BudgetGrant>(*m);
  EXPECT_EQ(out.domain_id, 3u);
  EXPECT_EQ(out.tick, 77u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.grant_w),
            std::bit_cast<std::uint64_t>(g.grant_w));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.cluster_budget_w),
            std::bit_cast<std::uint64_t>(g.cluster_budget_w));
}

ReplTick sample_repl_tick() {
  ReplTick rt;
  rt.epoch = 3;
  rt.tick = 41;
  rt.plan_crc = 0xDEADBEEF;
  // The batch carries complete encoded frames, length prefix included.
  const auto f = encode(Message{sample_telemetry()});
  rt.batch.insert(rt.batch.end(), f.begin(), f.end());
  const auto g = encode(Message{sample_heartbeat()});
  rt.batch.insert(rt.batch.end(), g.begin(), g.end());
  return rt;
}

TEST(Message, ReplTickRoundTripIsBitExact) {
  const ReplTick in = sample_repl_tick();
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  const auto& rt = std::get<ReplTick>(*m);
  EXPECT_EQ(rt.epoch, in.epoch);
  EXPECT_EQ(rt.tick, in.tick);
  EXPECT_EQ(rt.plan_crc, in.plan_crc);
  EXPECT_EQ(rt.batch, in.batch);
}

TEST(Message, EmptyBatchReplTickRoundTrip) {
  ReplTick in;
  in.epoch = 1;
  in.tick = 0;
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(std::get<ReplTick>(*m).batch.empty());
}

TEST(Message, ReplSnapshotRoundTripIsBitExact) {
  ReplSnapshot in;
  in.epoch = 2;
  in.snapshot = {0x50, 0x45, 0x52, 0x51, 0x00, 0xFF, 0x7F, 0x80};
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  const auto& rs = std::get<ReplSnapshot>(*m);
  EXPECT_EQ(rs.epoch, 2u);
  EXPECT_EQ(rs.snapshot, in.snapshot);
}

TEST(Message, PromoteAnnounceRoundTrip) {
  PromoteAnnounce in;
  in.epoch = 5;
  in.tick = 99;
  const auto m = round_trip(in);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(std::get<PromoteAnnounce>(*m).epoch, 5u);
  EXPECT_EQ(std::get<PromoteAnnounce>(*m).tick, 99u);
}

TEST(Message, TypeOfAndNames) {
  EXPECT_EQ(type_of(Message(sample_hello())), MsgType::kHello);
  EXPECT_EQ(type_of(Message(sample_plan())), MsgType::kCapPlan);
  EXPECT_EQ(type_of(Message(sample_report())), MsgType::kDomainReport);
  EXPECT_EQ(type_of(Message(BudgetGrant{})), MsgType::kBudgetGrant);
  EXPECT_EQ(type_of(Message(sample_repl_tick())), MsgType::kReplTick);
  EXPECT_EQ(type_of(Message(ReplSnapshot{})), MsgType::kReplSnapshot);
  EXPECT_EQ(type_of(Message(PromoteAnnounce{})), MsgType::kPromoteAnnounce);
  EXPECT_EQ(to_string(MsgType::kHeartbeat), "Heartbeat");
  EXPECT_EQ(to_string(MsgType::kDomainReport), "DomainReport");
  EXPECT_EQ(to_string(MsgType::kBudgetGrant), "BudgetGrant");
  EXPECT_EQ(to_string(MsgType::kReplTick), "ReplTick");
  EXPECT_EQ(to_string(MsgType::kReplSnapshot), "ReplSnapshot");
  EXPECT_EQ(to_string(MsgType::kPromoteAnnounce), "PromoteAnnounce");
}

// ---- malformed-input rejection ---------------------------------------------

std::vector<std::uint8_t> body_of(const Message& m) {
  auto frame = encode(m);
  frame.erase(frame.begin(), frame.begin() + 4);
  return frame;
}

TEST(MessageReject, WrongMagic) {
  auto body = body_of(sample_hello());
  body[0] ^= 0xFF;
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(MessageReject, WrongVersion) {
  auto body = body_of(sample_hello());
  body[2] = kVersion + 1;
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(MessageReject, UnknownType) {
  auto body = body_of(sample_hello());
  body[3] = 0;  // no such MsgType
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
  body[3] = 200;
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(MessageReject, EveryTruncationOfEveryType) {
  const Message msgs[] = {Message(sample_hello()), Message(sample_telemetry()),
                          Message(sample_plan()), Message(sample_heartbeat()),
                          Message(Bye{4}), Message(sample_report()),
                          Message(BudgetGrant{1, 2, 3.0, 4.0}),
                          Message(sample_repl_tick()),
                          Message(ReplSnapshot{2, {0x01, 0x02}}),
                          Message(PromoteAnnounce{5, 99})};
  for (const Message& m : msgs) {
    const auto body = body_of(m);
    for (std::size_t n = 0; n < body.size(); ++n) {
      EXPECT_FALSE(parse_frame(body.data(), n).has_value())
          << to_string(type_of(m)) << " truncated to " << n << " bytes";
    }
  }
}

// The v2-extended frames are deliberately absent from the sweep above:
// cutting their extension off exactly at the v1 boundary yields a valid
// v1 frame by design (that is the downgrade path), so their truncation
// behavior has its own test with the one legal cut carved out.
TEST(MessageReject, V2TruncationRejectsEverywhereButTheV1Boundary) {
  const auto check = [](const Message& full, const Message& v1_twin) {
    const auto body = body_of(full);
    const std::size_t boundary = body_of(v1_twin).size();
    ASSERT_LT(boundary, body.size());
    for (std::size_t n = 0; n < body.size(); ++n) {
      const auto m = parse_frame(body.data(), n);
      if (n == boundary) {
        // The extension dropped whole: parses as the v1 frame, extension
        // fields at their defaults.
        ASSERT_TRUE(m.has_value()) << "v1 boundary at " << n;
        continue;
      }
      EXPECT_FALSE(m.has_value())
          << to_string(type_of(full)) << " truncated to " << n << " bytes";
    }
  };
  check(Message(sample_report_v2()), Message(sample_report()));
  BudgetGrant v1_grant;
  v1_grant.domain_id = 3;
  v1_grant.tick = 77;
  v1_grant.grant_w = 2321.0625;
  v1_grant.cluster_budget_w = 9280.0;
  check(Message(sample_grant_v2()), Message(v1_grant));

  // And the boundary cut really decodes as defaults, not stale values.
  const auto body = body_of(Message(sample_report_v2()));
  const std::size_t boundary = body_of(Message(sample_report())).size();
  const auto m = parse_frame(body.data(), boundary);
  ASSERT_TRUE(m.has_value());
  const auto& r = std::get<DomainReport>(*m);
  EXPECT_EQ(r.flags, 0u);
  EXPECT_TRUE(r.tree_path.empty());
  EXPECT_EQ(r.sla_floor_w, 0.0);
  EXPECT_EQ(r.priority_weight, 1.0);
  EXPECT_EQ(r.controller_epoch, sample_report().controller_epoch);
}

TEST(MessageReject, TreePathLengthLyingAboutBody) {
  // The declared path length must fit the remaining bytes: a length byte
  // claiming more nodes than travel (tree-path truncation) rejects, as
  // does a depth beyond kMaxTreePathDepth even when the bytes would fit.
  const auto grant_body = body_of(Message(sample_grant_v2()));
  // The path-length byte sits right before the path words at the tail.
  const std::size_t len_at = grant_body.size() - 1 - 4 * 2;
  ASSERT_EQ(grant_body[len_at], 2u);
  for (const std::uint8_t lie : {std::uint8_t{3}, std::uint8_t{200}}) {
    auto body = grant_body;
    body[len_at] = lie;
    EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value())
        << "declared path length " << int(lie);
  }

  // Same guard on the report side (its path precedes the tenant TLVs:
  // 1 count byte + 3 fixed-width {id, f64} entries = 28 tail bytes).
  const auto report_body = body_of(Message(sample_report_v2()));
  const std::size_t rep_len_at = report_body.size() - 28 - 1 - 4 * 3;
  ASSERT_EQ(report_body[rep_len_at], 3u);
  auto body = report_body;
  body[rep_len_at] = 9;  // > kMaxTreePathDepth
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(MessageReject, OversizedTreePathNeverEncodesAsParseable) {
  // A path deeper than kMaxTreePathDepth is a config error; if one is
  // ever encoded anyway, every receiver must reject the frame.
  BudgetGrant g = sample_grant_v2();
  g.tree_path.assign(kMaxTreePathDepth + 1, 1);
  const auto body = body_of(Message(g));
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());

  DomainReport r = sample_report_v2();
  r.tree_path.assign(kMaxTreePathDepth + 1, 1);
  const auto rbody = body_of(Message(r));
  EXPECT_FALSE(parse_frame(rbody.data(), rbody.size()).has_value());
}

TEST(Message, UnknownTenantTlvIdIsSkippedNotRejected) {
  // The tenant TLV is the one deliberately loose seam in the grammar:
  // fixed-width {u8 id, f64 value} entries, so a reader steps over ids it
  // does not know instead of dropping the frame -- future tenant fields
  // must not break old arbiters.
  const auto clean = body_of(Message(sample_report_v2()));
  // Tail layout: u8 tlv_count, then 3 * 9 TLV bytes.
  const std::size_t count_at = clean.size() - 3 * 9 - 1;
  ASSERT_EQ(clean[count_at], 3u);

  // Append a fourth TLV with an unknown id: still parses, values intact.
  auto extended = clean;
  extended[count_at] = 4;
  extended.push_back(0x4D);  // no such tenant id
  for (int i = 0; i < 8; ++i) extended.push_back(0xAB);
  const auto m = parse_frame(extended.data(), extended.size());
  ASSERT_TRUE(m.has_value());
  const auto& r = std::get<DomainReport>(*m);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.sla_floor_w),
            std::bit_cast<std::uint64_t>(450.5));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.priority_weight),
            std::bit_cast<std::uint64_t>(2.5));

  // Overwrite a known id with an unknown one: the field falls back to its
  // default while the rest of the frame still parses.
  auto renamed = clean;
  ASSERT_EQ(renamed[count_at + 1], kTenantSlaFloorW);
  renamed[count_at + 1] = 99;
  const auto m2 = parse_frame(renamed.data(), renamed.size());
  ASSERT_TRUE(m2.has_value());
  const auto& r2 = std::get<DomainReport>(*m2);
  EXPECT_EQ(r2.sla_floor_w, 0.0);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r2.priority_weight),
            std::bit_cast<std::uint64_t>(2.5));

  // A TLV count lying about the body still rejects: tolerance covers
  // unknown ids, never broken framing.
  auto lying = clean;
  lying[count_at] = 200;
  EXPECT_FALSE(parse_frame(lying.data(), lying.size()).has_value());
}

TEST(MessageReject, TrailingJunk) {
  for (const Message& m :
       {Message(sample_hello()), Message(sample_telemetry()),
        Message(sample_heartbeat()), Message(Bye{4}),
        Message(sample_report()), Message(BudgetGrant{}),
        Message(sample_report_v2()), Message(sample_grant_v2()),
        Message(sample_repl_tick()), Message(ReplSnapshot{2, {0x01}}),
        Message(PromoteAnnounce{5, 99})}) {
    auto body = body_of(m);
    body.push_back(0x00);
    EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
  }
}

TEST(MessageReject, CapPlanEntryCountLyingAboutBody) {
  auto body = body_of(sample_plan());
  // Entry count lives right after the 4-byte header + 8-byte tick. Claim
  // more entries than the body holds.
  body[12] = 0xFF;
  body[13] = 0xFF;
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(MessageReject, RandomGarbageNeverParsesAsSomethingElse) {
  Rng rng(0xFEEDu);
  std::size_t parsed = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> junk(n);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (parse_frame(junk.data(), junk.size()).has_value()) ++parsed;
  }
  // Random bytes essentially never carry the magic+version+type header.
  EXPECT_EQ(parsed, 0u);
}

TEST(MessageReject, RandomCorruptionOfValidFrames) {
  Rng rng(0xC0FFEEu);
  for (int trial = 0; trial < 2000; ++trial) {
    auto body = body_of(sample_telemetry());
    // Flip a random byte in the header region or truncate randomly; the
    // parser must never crash and never accept a malformed header.
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(body.size()) - 1));
    body[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const auto m = parse_frame(body.data(), body.size());
    if (pos >= 4 && m.has_value()) {
      // Payload corruption may still parse -- but only ever as Telemetry.
      EXPECT_EQ(type_of(*m), MsgType::kTelemetry);
    }
  }
}

// ---- stream decoder --------------------------------------------------------

TEST(FrameDecoder, ReassemblesByteAtATime) {
  std::vector<std::uint8_t> stream;
  for (const Message& m :
       {Message(sample_hello()), Message(sample_telemetry()),
        Message(sample_plan()), Message(sample_heartbeat()), Message(Bye{1})}) {
    const auto f = encode(m);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameDecoder dec;
  std::vector<Message> got;
  for (std::uint8_t b : stream) {
    dec.feed(&b, 1);
    for (auto& m : dec.take()) got.push_back(std::move(m));
  }
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(type_of(got[0]), MsgType::kHello);
  EXPECT_EQ(type_of(got[2]), MsgType::kCapPlan);
  EXPECT_EQ(type_of(got[4]), MsgType::kBye);
  EXPECT_FALSE(dec.corrupt());
}

TEST(FrameDecoder, PoisonsOnAbsurdLength) {
  WireWriter w;
  w.u32(kMaxFrameBytes + 1);
  const auto bytes = w.take();
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  EXPECT_TRUE(dec.corrupt());
  // Poison is permanent: a subsequent valid frame is not decoded.
  const auto good = encode(Message(Bye{2}));
  dec.feed(good.data(), good.size());
  EXPECT_TRUE(dec.take().empty());
  EXPECT_TRUE(dec.corrupt());
}

TEST(FrameDecoder, PoisonsOnCorruptBody) {
  auto frame = encode(Message(sample_hello()));
  frame[4] ^= 0xFF;  // break the magic
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  EXPECT_TRUE(dec.take().empty());
  EXPECT_TRUE(dec.corrupt());
  EXPECT_FALSE(dec.error().empty());
}

TEST(FrameDecoder, SkipsWellFramedUnknownTypesWithoutPoisoning) {
  // A frame from a future protocol revision: valid length prefix, magic,
  // and version, but a type byte this build has never heard of. The stream
  // decoder must step over it -- forward compatibility -- while the strict
  // single-frame parser still rejects it.
  auto future = encode(Message(sample_heartbeat()));
  future[4 + 3] = 200;  // type byte lives after the length prefix + magic
  EXPECT_FALSE(parse_frame(future.data() + 4, future.size() - 4).has_value());

  std::vector<std::uint8_t> stream;
  const auto first = encode(Message(sample_hello()));
  const auto last = encode(Message(Bye{3}));
  stream.insert(stream.end(), first.begin(), first.end());
  stream.insert(stream.end(), future.begin(), future.end());
  stream.insert(stream.end(), last.begin(), last.end());

  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  const auto got = dec.take();
  ASSERT_EQ(got.size(), 2u);  // the unknown frame is dropped, not delivered
  EXPECT_EQ(type_of(got[0]), MsgType::kHello);
  EXPECT_EQ(type_of(got[1]), MsgType::kBye);
  EXPECT_FALSE(dec.corrupt());
  EXPECT_EQ(dec.unknown_skipped(), 1u);

  // Byte-at-a-time delivery takes the same path.
  FrameDecoder trickle;
  for (std::uint8_t b : stream) trickle.feed(&b, 1);
  EXPECT_EQ(trickle.take().size(), 2u);
  EXPECT_FALSE(trickle.corrupt());
  EXPECT_EQ(trickle.unknown_skipped(), 1u);

  // An unknown type with a *broken* body length still poisons: skipping is
  // only safe when the framing itself is sound.
  FrameDecoder strict;
  auto bad = future;
  bad[4] ^= 0xFF;  // break the magic on the unknown-type frame
  strict.feed(bad.data(), bad.size());
  EXPECT_TRUE(strict.corrupt());
  EXPECT_EQ(strict.unknown_skipped(), 0u);
}

TEST(FrameDecoder, RandomizedChunkedStream) {
  Rng rng(0xABCDu);
  std::vector<std::uint8_t> stream;
  std::size_t sent = 0;
  for (int i = 0; i < 64; ++i) {
    Telemetry t = sample_telemetry();
    t.seq = static_cast<std::uint32_t>(i);
    const auto f = encode(Message(t));
    stream.insert(stream.end(), f.begin(), f.end());
    ++sent;
  }
  FrameDecoder dec;
  std::size_t got = 0, off = 0;
  while (off < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 97)), stream.size() - off);
    dec.feed(stream.data() + off, n);
    off += n;
    for (auto& m : dec.take()) {
      EXPECT_EQ(std::get<Telemetry>(m).seq, got);
      ++got;
    }
  }
  EXPECT_EQ(got, sent);
  EXPECT_FALSE(dec.corrupt());
}

TEST(Allocation, EncodeIntoMatchesEncodeByteForByte) {
  const Message msgs[] = {Message{sample_hello()}, Message{sample_telemetry()},
                          Message{sample_plan()}, Message{sample_heartbeat()}};
  std::vector<std::uint8_t> reused;
  for (const Message& m : msgs) {
    const auto fresh = encode(m);
    encode_into(m, reused);
    EXPECT_EQ(reused, fresh);
  }
}

TEST(Allocation, EncodeIntoReusedBufferDoesNotAllocate) {
  const Message telemetry = sample_telemetry();
  const Message plan = sample_plan();
  std::vector<std::uint8_t> buf;
  encode_into(plan, buf);  // warm-up: grow to the largest frame's capacity

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    encode_into(telemetry, buf);
    encode_into(plan, buf);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "encode_into allocated " << (after - before)
      << " times on a warm buffer";
}

TEST(Allocation, DecoderSteadyStateDrainDoesNotAllocate) {
  // The steady-state uplink: fixed-size frames (telemetry + heartbeat) fed
  // through one persistent decoder, drained into one reused inbox. After
  // warm-up the whole feed/parse/drain cycle must be allocation-free;
  // CapPlan is excluded because materializing its entries vector allocates
  // by design (the zero-alloc contract covers framing, not dynamic bodies).
  std::vector<std::uint8_t> frame_t;
  std::vector<std::uint8_t> frame_hb;
  encode_into(Message{sample_telemetry()}, frame_t);
  encode_into(Message{sample_heartbeat()}, frame_hb);

  FrameDecoder dec;
  std::vector<Message> inbox;
  auto tick = [&] {
    dec.feed(frame_t.data(), frame_t.size());
    dec.feed(frame_hb.data(), frame_hb.size());
    inbox.clear();
    dec.drain(inbox);
  };
  // Warm-up must cross the decoder's 4096-byte compaction threshold at
  // least once so the backing buffer reaches its steady-state capacity.
  for (int i = 0; i < 64; ++i) tick();
  ASSERT_EQ(inbox.size(), 2u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) tick();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "decoder steady state allocated " << (after - before) << " times";
  EXPECT_FALSE(dec.corrupt());
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<Telemetry>(inbox[0]));
  EXPECT_TRUE(std::holds_alternative<Heartbeat>(inbox[1]));
}

TEST(Allocation, ParseFrameIntoReusesDynamicBodyCapacity) {
  std::vector<std::uint8_t> frame_p;
  std::vector<std::uint8_t> frame_d;
  encode_into(Message{sample_plan()}, frame_p);
  CapPlanDelta delta;
  delta.tick = 100;
  delta.base_tick = 99;
  delta.result_entries = 3;
  delta.ops.push_back({kDeltaUpdate, {1, 260.0, 2.6e9, 0}});
  delta.ops.push_back({kDeltaInsert, {5, 100.0, 1.0e9, 1}});
  encode_into(Message{delta}, frame_d);

  Message slot;
  ASSERT_TRUE(parse_frame_into(frame_p.data() + 4, frame_p.size() - 4, slot));
  const CapEntry* entries = std::get<CapPlan>(slot).entries.data();

  // Re-decoding the same alternative reuses its heap state: no allocation,
  // same backing array, values fully overwritten.
  std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  ASSERT_TRUE(parse_frame_into(frame_p.data() + 4, frame_p.size() - 4, slot));
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
  const auto& p = std::get<CapPlan>(slot);
  EXPECT_EQ(p.entries.data(), entries);
  ASSERT_EQ(p.entries.size(), 3u);
  EXPECT_EQ(p.tick, 99u);
  EXPECT_EQ(p.entries[1].job_id, -7);

  // Switching alternatives re-seats the variant (allocation allowed); once
  // the slot has carried a delta, re-decoding deltas is free too.
  ASSERT_TRUE(parse_frame_into(frame_d.data() + 4, frame_d.size() - 4, slot));
  const CapDeltaOp* ops = std::get<CapPlanDelta>(slot).ops.data();
  before = g_allocs.load(std::memory_order_relaxed);
  ASSERT_TRUE(parse_frame_into(frame_d.data() + 4, frame_d.size() - 4, slot));
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
  const auto& d = std::get<CapPlanDelta>(slot);
  EXPECT_EQ(d.ops.data(), ops);
  ASSERT_EQ(d.ops.size(), 2u);
  EXPECT_EQ(d.tick, 100u);
  EXPECT_EQ(d.base_tick, 99u);
  EXPECT_EQ(d.ops[1].op, kDeltaInsert);
  EXPECT_EQ(d.ops[1].entry.job_id, 5);
}

TEST(Allocation, DecoderConsumeSteadyStateIsAllocationFreeForPlans) {
  // consume() hands out in-place references to persistent slots, so even
  // dynamic-body frames (plan + delta) decode allocation-free once every
  // slot has carried its frame type -- the property drain() cannot offer
  // because it must surrender owned vectors to the caller.
  std::vector<std::uint8_t> frame_p;
  std::vector<std::uint8_t> frame_d;
  encode_into(Message{sample_plan()}, frame_p);
  CapPlanDelta delta;
  delta.tick = 100;
  delta.base_tick = 99;
  delta.result_entries = 2;
  delta.ops.push_back({kDeltaRemove, {-7, 0.0, 0.0, 0}});
  encode_into(Message{delta}, frame_d);

  FrameDecoder dec;
  std::size_t plans = 0;
  std::size_t deltas = 0;
  auto tick = [&] {
    dec.feed(frame_p.data(), frame_p.size());
    dec.feed(frame_d.data(), frame_d.size());
    dec.consume([&](const Message& m) {
      if (std::holds_alternative<CapPlan>(m)) ++plans;
      if (std::holds_alternative<CapPlanDelta>(m)) ++deltas;
    });
  };
  // Warm-up: seats each slot's alternative and crosses the decoder's
  // compaction threshold so the backing buffer reaches steady capacity.
  for (int i = 0; i < 64; ++i) tick();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) tick();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "consume steady state allocated " << (after - before) << " times";
  EXPECT_FALSE(dec.corrupt());
  EXPECT_EQ(plans, 320u);
  EXPECT_EQ(deltas, 320u);
}

}  // namespace
}  // namespace perq::proto
