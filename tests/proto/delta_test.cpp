// CapPlanDelta contract tests: the diff/patch pair reconstructs plans
// bit-for-bit, the wire codec round-trips deltas exactly, and apply_delta
// rejects -- whole, with no partial state -- every malformed delta a lossy
// or adversarial channel can produce: stale chain epoch, unknown job id,
// insert collisions, out-of-order ops, lying result counts, truncation.
#include "proto/delta.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>

#include "proto/message.hpp"
#include "proto/wire.hpp"

namespace perq::proto {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

CapPlan canonical_plan(std::uint64_t tick) {
  CapPlan p;
  p.tick = tick;
  p.entries.push_back({-9, 140.0, 1.0e9, 0});
  p.entries.push_back({2, 250.0, 2.5e9, 0});
  p.entries.push_back({5, 115.5, 0.0, 1});
  p.entries.push_back({300, 290.0, 1.25e9, 0});
  return p;
}

void expect_plans_bit_identical(const CapPlan& a, const CapPlan& b) {
  EXPECT_EQ(a.tick, b.tick);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].job_id, b.entries[i].job_id) << "entry " << i;
    EXPECT_EQ(bits(a.entries[i].cap_w), bits(b.entries[i].cap_w))
        << "entry " << i;
    EXPECT_EQ(bits(a.entries[i].target_ips), bits(b.entries[i].target_ips))
        << "entry " << i;
    EXPECT_EQ(a.entries[i].held, b.entries[i].held) << "entry " << i;
  }
}

/// Frame body (everything after the length prefix) of one message.
std::vector<std::uint8_t> body_of(const Message& m) {
  const auto frame = encode(m);
  return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
}

TEST(CapPlanDelta, DiffThenPatchReconstructsBitForBit) {
  const CapPlan base = canonical_plan(10);
  CapPlan next = canonical_plan(11);
  next.entries[1].cap_w = 199.0;             // update
  next.entries.erase(next.entries.begin());  // remove job -9
  next.entries.push_back({301, 180.0, 3e9, 0});  // insert at the tail

  CapPlanDelta d;
  make_delta(base, next, d);
  EXPECT_EQ(d.tick, 11u);
  EXPECT_EQ(d.base_tick, 10u);
  EXPECT_EQ(d.result_entries, next.entries.size());
  EXPECT_EQ(d.ops.size(), 3u);  // one remove, one update, one insert

  CapPlan out;
  ASSERT_TRUE(apply_delta(base, d, out));
  expect_plans_bit_identical(out, next);
}

TEST(CapPlanDelta, UnchangedPlanDiffsToZeroOps) {
  const CapPlan base = canonical_plan(4);
  CapPlan next = canonical_plan(5);  // same payloads, new tick
  CapPlanDelta d;
  make_delta(base, next, d);
  EXPECT_TRUE(d.ops.empty());
  CapPlan out;
  ASSERT_TRUE(apply_delta(base, d, out));
  expect_plans_bit_identical(out, next);
}

TEST(CapPlanDelta, PayloadComparisonIsBitExactNotValueish) {
  const CapPlan base = canonical_plan(1);
  CapPlan next = canonical_plan(2);
  // -0.0 == 0.0 numerically but differs in bits: the diff must carry it,
  // or the receiver's reconstruction drifts from the broadcast image.
  next.entries[2].target_ips = -0.0;
  CapPlanDelta d;
  make_delta(base, next, d);
  EXPECT_EQ(d.ops.size(), 1u);
  CapPlan out;
  ASSERT_TRUE(apply_delta(base, d, out));
  expect_plans_bit_identical(out, next);
}

TEST(CapPlanDelta, WireRoundTripIsBitExact) {
  const CapPlan base = canonical_plan(7);
  CapPlan next = canonical_plan(8);
  next.entries[0].cap_w = 123.0625;
  next.entries.push_back({999, 205.0, 4.5e9, 1});
  CapPlanDelta d;
  make_delta(base, next, d);

  const auto body = body_of(Message{d});
  const auto m = parse_frame(body.data(), body.size());
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(type_of(*m), MsgType::kCapPlanDelta);
  const auto& rt = std::get<CapPlanDelta>(*m);
  EXPECT_EQ(rt.tick, d.tick);
  EXPECT_EQ(rt.base_tick, d.base_tick);
  EXPECT_EQ(rt.result_entries, d.result_entries);
  ASSERT_EQ(rt.ops.size(), d.ops.size());
  for (std::size_t i = 0; i < d.ops.size(); ++i) {
    EXPECT_EQ(rt.ops[i].op, d.ops[i].op);
    EXPECT_EQ(rt.ops[i].entry.job_id, d.ops[i].entry.job_id);
    EXPECT_EQ(bits(rt.ops[i].entry.cap_w), bits(d.ops[i].entry.cap_w));
    EXPECT_EQ(bits(rt.ops[i].entry.target_ips), bits(d.ops[i].entry.target_ips));
    EXPECT_EQ(rt.ops[i].entry.held, d.ops[i].entry.held);
  }

  CapPlan out;
  ASSERT_TRUE(apply_delta(base, rt, out));
  expect_plans_bit_identical(out, next);
}

TEST(CapPlanDeltaReject, EveryTruncationOfTheFrame) {
  const CapPlan base = canonical_plan(7);
  CapPlan next = canonical_plan(8);
  next.entries[1].cap_w = 201.0;
  CapPlanDelta d;
  make_delta(base, next, d);
  const auto body = body_of(Message{d});
  for (std::size_t n = 0; n < body.size(); ++n) {
    EXPECT_FALSE(parse_frame(body.data(), n).has_value())
        << "delta truncated to " << n << " bytes parsed";
  }
}

TEST(CapPlanDeltaReject, OpCountLyingAboutBody) {
  const CapPlan base = canonical_plan(7);
  CapPlan next = canonical_plan(8);
  next.entries[1].cap_w = 201.0;
  CapPlanDelta d;
  make_delta(base, next, d);
  auto body = body_of(Message{d});
  // The op count lives after header(4) + tick(8) + base_tick(8) +
  // result_entries(4). Claim more ops than the body carries.
  body[24] = 0xFF;
  body[25] = 0xFF;
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(CapPlanDeltaReject, UnknownOpKindOnTheWire) {
  const CapPlan base = canonical_plan(7);
  CapPlan next = canonical_plan(8);
  next.entries[1].cap_w = 201.0;
  CapPlanDelta d;
  make_delta(base, next, d);
  auto body = body_of(Message{d});
  body[28] = 7;  // first op's kind byte: no such op
  EXPECT_FALSE(parse_frame(body.data(), body.size()).has_value());
}

TEST(CapPlanDeltaReject, StaleBaseTick) {
  const CapPlan base = canonical_plan(10);
  CapPlan next = canonical_plan(11);
  next.entries[0].cap_w = 1.0;
  CapPlanDelta d;
  make_delta(base, next, d);
  const CapPlan wrong_base = canonical_plan(9);  // e.g. a missed broadcast
  CapPlan out;
  EXPECT_FALSE(apply_delta(wrong_base, d, out));
}

TEST(CapPlanDeltaReject, UpdateOfUnknownJobId) {
  const CapPlan base = canonical_plan(3);
  CapPlanDelta d;
  d.tick = 4;
  d.base_tick = 3;
  d.result_entries = static_cast<std::uint32_t>(base.entries.size());
  d.ops.push_back({kDeltaUpdate, {777, 100.0, 0.0, 0}});  // id not in base
  CapPlan out;
  EXPECT_FALSE(apply_delta(base, d, out));
  d.ops[0].op = kDeltaRemove;
  d.result_entries -= 1;
  EXPECT_FALSE(apply_delta(base, d, out));
}

TEST(CapPlanDeltaReject, InsertOfExistingJobId) {
  const CapPlan base = canonical_plan(3);
  CapPlanDelta d;
  d.tick = 4;
  d.base_tick = 3;
  d.result_entries = static_cast<std::uint32_t>(base.entries.size()) + 1;
  d.ops.push_back({kDeltaInsert, {2, 100.0, 0.0, 0}});  // job 2 exists
  CapPlan out;
  EXPECT_FALSE(apply_delta(base, d, out));
}

TEST(CapPlanDeltaReject, OutOfOrderOps) {
  const CapPlan base = canonical_plan(3);
  CapPlanDelta d;
  d.tick = 4;
  d.base_tick = 3;
  d.result_entries = static_cast<std::uint32_t>(base.entries.size());
  d.ops.push_back({kDeltaUpdate, {5, 100.0, 0.0, 0}});
  d.ops.push_back({kDeltaUpdate, {2, 101.0, 0.0, 0}});  // descending: invalid
  CapPlan out;
  EXPECT_FALSE(apply_delta(base, d, out));
  // Duplicates are equally non-canonical.
  d.ops[1].entry.job_id = 5;
  EXPECT_FALSE(apply_delta(base, d, out));
}

TEST(CapPlanDeltaReject, ResultCountMismatch) {
  const CapPlan base = canonical_plan(3);
  CapPlan next = canonical_plan(4);
  next.entries[1].cap_w = 222.0;
  CapPlanDelta d;
  make_delta(base, next, d);
  d.result_entries += 1;  // integrity check must catch the lie
  CapPlan out;
  EXPECT_FALSE(apply_delta(base, d, out));
}

TEST(CapPlanDelta, CanonicalizeSortsByJobId) {
  CapPlan p;
  p.tick = 1;
  p.entries.push_back({300, 1.0, 0.0, 0});
  p.entries.push_back({-9, 2.0, 0.0, 0});
  p.entries.push_back({5, 3.0, 0.0, 1});
  canonicalize(p);
  ASSERT_EQ(p.entries.size(), 3u);
  EXPECT_EQ(p.entries[0].job_id, -9);
  EXPECT_EQ(p.entries[1].job_id, 5);
  EXPECT_EQ(p.entries[2].job_id, 300);
  EXPECT_EQ(p.entries[2].held, 0);
  EXPECT_EQ(bits(p.entries[1].cap_w), bits(3.0));
}

}  // namespace
}  // namespace perq::proto
