#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace perq::replay {
namespace {

ReplayConfig small_config() {
  ReplayConfig cfg;
  cfg.trace.system = trace::SystemModel::kMira;
  cfg.trace.job_count = 400;
  cfg.trace.max_job_nodes = 16;
  cfg.trace.seed = 11;
  cfg.trace.arrival_span_s = 2.0 * 86400.0;
  cfg.trace.user_count = 20;
  cfg.worst_case_nodes = 32;
  cfg.over_provision_factor = 1.5;
  cfg.backfill_mode = sched::BackfillMode::kEasy;
  return cfg;
}

TEST(ReplayTest, DrainsTheWorkloadAndAuditsSanely) {
  acct::Store store;
  const ReplayResult res = run_replay(small_config(), &store);

  EXPECT_EQ(res.jobs_submitted, 400u);
  EXPECT_EQ(res.jobs_completed, 400u);
  EXPECT_EQ(store.ended(), 400u);
  EXPECT_GT(res.makespan_s, 0.0);
  EXPECT_GT(res.jobs_per_day, 0.0);
  EXPECT_GT(res.utilization, 0.0);
  EXPECT_LE(res.utilization, 1.0);
  EXPECT_GE(res.mean_slowdown, 1.0 - 1e-9);
  EXPECT_GE(res.mean_wait_s, 0.0);
  EXPECT_GT(res.total_energy_j, 0.0);
  EXPECT_GT(res.events, 400u);

  // Fairness audit: overprovisioning + water-filling should let a clear
  // majority of jobs beat the static equal-share baseline.
  EXPECT_GE(res.fairness_fraction, 0.5);
  EXPECT_LE(res.fairness_fraction, 1.0);

  // Per-job records landed in the association index.
  EXPECT_EQ(store.jobs().size(), 400u);
  EXPECT_GE(store.users().size(), 2u);
}

TEST(ReplayTest, IsSeedDeterministic) {
  const ReplayResult a = run_replay(small_config());
  const ReplayResult b = run_replay(small_config());
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);  // bit-exact, not approximate
  EXPECT_EQ(a.jobs_per_day, b.jobs_per_day);
  EXPECT_EQ(a.fairness_fraction, b.fairness_fraction);
  EXPECT_EQ(a.mean_wait_s, b.mean_wait_s);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reallocations, b.reallocations);
}

TEST(ReplayTest, DifferentSeedsDiffer) {
  ReplayConfig cfg = small_config();
  const ReplayResult a = run_replay(cfg);
  cfg.trace.seed = 12;
  const ReplayResult b = run_replay(cfg);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}

TEST(ReplayTest, SweepMatchesIndividualRunsAndMoreNodesHelp) {
  const ReplayConfig base = small_config();
  const std::vector<double> factors = {1.0, 1.5};
  const auto sweep = run_replay_sweep(base, factors, 2);
  ASSERT_EQ(sweep.size(), 2u);

  // The pool fan-out must not change results: each entry equals a solo run.
  ReplayConfig solo = base;
  solo.over_provision_factor = 1.0;
  const ReplayResult ref = run_replay(solo);
  EXPECT_EQ(sweep[0].makespan_s, ref.makespan_s);
  EXPECT_EQ(sweep[0].fairness_fraction, ref.fairness_fraction);

  // f = 1.5 fields 48 nodes against 32: the same backlog drains no slower.
  EXPECT_EQ(sweep[1].machine_nodes, 48u);
  EXPECT_LE(sweep[1].makespan_s, sweep[0].makespan_s + 1e-6);
}

TEST(ReplayTest, PersistsTheAuditTrail) {
  const std::string path = ::testing::TempDir() + "perq_replay_acct.log";
  std::remove(path.c_str());
  ReplayConfig cfg = small_config();
  cfg.trace.job_count = 50;
  cfg.acct_path = path;
  const ReplayResult res = run_replay(cfg);
  EXPECT_EQ(res.jobs_completed, 50u);

  // Reopen the log cold: the rebuilt store must tell the same story.
  acct::Store reopened(path);
  EXPECT_EQ(reopened.ended(), 50u);
  EXPECT_EQ(reopened.fraction_beating_equal_share(), res.fairness_fraction);
  std::remove(path.c_str());
}

TEST(ReplayTest, PartitionedMachineStillDrains) {
  ReplayConfig cfg = small_config();
  cfg.trace.job_count = 200;
  sched::PartitionConfig small;
  small.name = "small";
  small.priority = 5;
  small.max_job_nodes = 4;
  sched::PartitionConfig wide;
  wide.name = "wide";
  cfg.partitions = {small, wide};
  const ReplayResult res = run_replay(cfg);
  EXPECT_EQ(res.jobs_completed, 200u);
  EXPECT_GE(res.fairness_fraction, 0.0);
}

}  // namespace
}  // namespace perq::replay
