#include "acct/store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "acct/event_log.hpp"
#include "util/require.hpp"

namespace perq::acct {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "perq_acct_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static void run_small_workload(Store& store) {
    store.record_submit(/*job=*/1, /*user=*/7, /*app=*/2, /*nodes=*/64,
                        /*submit=*/0.0, /*est=*/3600.0);
    store.record_submit(2, 7, 3, 32, 10.0, 1800.0);
    store.record_submit(3, 9, 0, 16, 20.0, 900.0);
    store.record_start(1, 5.0);
    store.record_start(2, 15.0);
    store.record_requeue(2, 100.0);
    store.record_start(2, 200.0);
    EndInfo e1;
    e1.end_s = 4000.0;
    e1.runtime_s = 3995.0;
    e1.baseline_runtime_s = 4100.0;  // beat equal share
    e1.node_hours = 64 * 3995.0 / 3600.0;
    e1.energy_j = 5.0e8;
    store.record_end(1, e1);
    EndInfo e2;
    e2.end_s = 2200.0;
    e2.runtime_s = 2000.0;
    e2.baseline_runtime_s = 1900.0;  // lost to equal share
    e2.node_hours = 32 * 2000.0 / 3600.0;
    e2.energy_j = 1.0e8;
    store.record_end(2, e2);
    EndInfo e3;
    e3.end_s = 50.0;
    e3.cancelled = true;
    store.record_end(3, e3);
    store.flush();
  }

  static void check_small_workload(const Store& store) {
    EXPECT_EQ(store.submitted(), 3u);
    EXPECT_EQ(store.ended(), 2u);
    EXPECT_EQ(store.cancelled(), 1u);
    EXPECT_DOUBLE_EQ(store.fraction_beating_equal_share(), 0.5);
    EXPECT_DOUBLE_EQ(store.total_energy_j(), 6.0e8);

    const JobAcct* j1 = store.job(1);
    ASSERT_NE(j1, nullptr);
    EXPECT_EQ(j1->phase, JobPhase::kEnded);
    EXPECT_EQ(j1->user_id, 7u);
    EXPECT_EQ(j1->nodes, 64u);
    EXPECT_DOUBLE_EQ(j1->start_s, 5.0);
    EXPECT_DOUBLE_EQ(j1->runtime_s, 3995.0);
    EXPECT_TRUE(j1->beat_equal_share());

    const JobAcct* j2 = store.job(2);
    ASSERT_NE(j2, nullptr);
    EXPECT_EQ(j2->requeues, 1u);
    EXPECT_DOUBLE_EQ(j2->start_s, 15.0);  // first start preserved
    EXPECT_FALSE(j2->beat_equal_share());

    const JobAcct* j3 = store.job(3);
    ASSERT_NE(j3, nullptr);
    EXPECT_EQ(j3->phase, JobPhase::kCancelled);

    const UserAcct* u7 = store.user(7);
    ASSERT_NE(u7, nullptr);
    EXPECT_EQ(u7->jobs_submitted, 2u);
    EXPECT_EQ(u7->jobs_ended, 2u);
    EXPECT_EQ(u7->beat_equal_share, 1u);
    const UserAcct* u9 = store.user(9);
    ASSERT_NE(u9, nullptr);
    EXPECT_EQ(u9->jobs_cancelled, 1u);
  }

  std::string path_;
};

TEST_F(StoreTest, InMemoryStoreTracksLifecycle) {
  Store store;  // no path: nothing persisted
  run_small_workload(store);
  check_small_workload(store);
  EXPECT_FALSE(store.log().persistent());
}

TEST_F(StoreTest, ReopenRebuildsIdenticalState) {
  {
    Store store(path_);
    run_small_workload(store);
    check_small_workload(store);
  }
  Store reopened(path_);
  EXPECT_EQ(reopened.log().replayed_count(), 10u);
  EXPECT_FALSE(reopened.log().truncated_tail());
  check_small_workload(reopened);
}

TEST_F(StoreTest, CrashMidRecordReplaysTheIntactPrefix) {
  {
    Store store(path_);
    run_small_workload(store);
  }
  // Chop the file mid-way through the final record, as a crash between
  // buffered writes would.
  std::uintmax_t size = 0;
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good());
    size = static_cast<std::uintmax_t>(in.tellg());
  }
  ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(size - 5)), 0);

  Store recovered(path_);
  EXPECT_TRUE(recovered.log().truncated_tail());
  // The last record (job 3's cancellation) is gone; everything before it
  // must match exactly what the writer saw at that point.
  EXPECT_EQ(recovered.log().replayed_count(), 9u);
  EXPECT_EQ(recovered.submitted(), 3u);
  EXPECT_EQ(recovered.ended(), 2u);
  EXPECT_EQ(recovered.cancelled(), 0u);
  ASSERT_NE(recovered.job(3), nullptr);
  EXPECT_EQ(recovered.job(3)->phase, JobPhase::kSubmitted);

  // Recovery truncated the torn tail, so appending resumes cleanly.
  EndInfo e3;
  e3.end_s = 50.0;
  e3.cancelled = true;
  recovered.record_end(3, e3);
  recovered.flush();
  Store again(path_);
  EXPECT_EQ(again.cancelled(), 1u);
  check_small_workload(again);
}

TEST_F(StoreTest, CorruptBytesCutTheTailNotThePrefix) {
  {
    Store store(path_);
    run_small_workload(store);
  }
  // Flip one payload byte inside the 6th record: CRC catches it, and that
  // record plus everything after is discarded.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  // Walk the record framing to find the 6th record's payload offset.
  std::size_t off = 8;  // magic
  for (int rec = 0; rec < 5; ++rec) {
    const auto len = static_cast<std::uint32_t>(
        static_cast<unsigned char>(bytes[off])) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 1]))
            << 8;
    off += 8 + len;
  }
  f.clear();
  f.seekp(static_cast<std::streamoff>(off + 8 + 2));
  const char flipped = static_cast<char>(bytes[off + 8 + 2] ^ 0x40);
  f.write(&flipped, 1);
  f.close();

  Store recovered(path_);
  EXPECT_TRUE(recovered.log().truncated_tail());
  EXPECT_EQ(recovered.log().replayed_count(), 5u);
  EXPECT_EQ(recovered.submitted(), 3u);  // submits were the first 3 records
  EXPECT_EQ(recovered.ended(), 0u);
}

TEST_F(StoreTest, RejectsAForeignFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "definitely not an accounting log";
  }
  EXPECT_THROW(Store store(path_), perq::precondition_error);
}

TEST_F(StoreTest, Crc32MatchesKnownVectors) {
  // IEEE 802.3 check value for "123456789".
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace perq::acct
