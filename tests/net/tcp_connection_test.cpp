// TcpConnection data-plane tests: deterministic short-write injection for
// the partial-write resume logic (flush_writes/advance_queue), FramePool
// slot recycling, and the zero-steady-state-allocation contract of the
// send/receive hot path.
//
// The tests run TcpConnection over an AF_UNIX socketpair: same read/write
// semantics as a TCP socket (SOCK_STREAM, nonblocking), no network setup,
// and the TCP_NODELAY setsockopt in the constructor fails harmlessly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/uio.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "net/frame_pool.hpp"
#include "net/tcp_connection.hpp"
#include "proto/message.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing operator new is per-binary; this file
// is the only one in test_net that defines it, and the other test files in
// the binary never read the counter, so they are unaffected.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace perq::net {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// TcpConnection whose kernel writes accept at most `cap` bytes per call
/// (0 = EAGAIN until released). Deterministically exercises every resume
/// path: mid-sendbuf_, mid-shared-segment, and segment boundaries.
class ShortWriteConnection : public TcpConnection {
 public:
  ShortWriteConnection(int fd, std::size_t cap) : TcpConnection(fd), cap_(cap) {}

  void set_cap(std::size_t cap) { cap_ = cap; }
  std::size_t write_calls() const { return write_calls_; }

 protected:
  ssize_t write_bytes(const struct msghdr* msg) override {
    ++write_calls_;
    if (cap_ == 0) {
      errno = EAGAIN;
      return -1;
    }
    // Copy up to cap_ bytes out of the iov chain and push them with a
    // plain send(2): honors sendmsg semantics while truncating the write.
    std::vector<std::uint8_t> chunk;
    for (std::size_t i = 0; i < msg->msg_iovlen && chunk.size() < cap_; ++i) {
      const auto* base = static_cast<const std::uint8_t*>(msg->msg_iov[i].iov_base);
      const std::size_t take =
          std::min(msg->msg_iov[i].iov_len, cap_ - chunk.size());
      chunk.insert(chunk.end(), base, base + take);
    }
    return ::send(fd(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
  }

 private:
  std::size_t cap_;
  std::size_t write_calls_ = 0;
};

/// Nonblocking AF_UNIX stream pair; first is wrapped by the test subclass.
std::pair<int, int> stream_pair() {
  int fds[2];
  EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds));
  return {fds[0], fds[1]};
}

proto::Telemetry make_telemetry(std::uint32_t seq) {
  proto::Telemetry t;
  t.agent_id = 7;
  t.tick = 42;
  t.seq = seq;
  t.job_id = static_cast<std::int32_t>(seq) + 1;
  t.nodes = 4;
  t.runtime_ref_s = 3600.0 + seq;
  t.progress_s = 0.5 * seq;
  t.min_perf = 0.875;
  t.cap_w = 290.0 + seq;
  t.ips = 1.25e9 + seq;
  t.power_w = 280.0;
  return t;
}

proto::CapPlan make_plan(std::size_t entries) {
  proto::CapPlan plan;
  plan.tick = 99;
  for (std::size_t i = 0; i < entries; ++i) {
    proto::CapEntry e;
    e.job_id = static_cast<std::int32_t>(i);
    e.cap_w = 200.0 + 0.125 * static_cast<double>(i);
    e.target_ips = 1e9 + static_cast<double>(i);
    plan.entries.push_back(e);
  }
  return plan;
}

/// Pumps sender flushes and receiver drains until `want` messages arrived.
void pump_until(TcpConnection& sender, TcpConnection& receiver,
                std::vector<proto::Message>& out, std::size_t want) {
  for (int i = 0; i < 200000 && out.size() < want; ++i) {
    sender.flush();
    receiver.receive_into(out);
  }
}

TEST(ShortWrite, OwnedQueueResumesAcrossOneByteWrites) {
  auto [sfd, rfd] = stream_pair();
  ShortWriteConnection sender(sfd, 1);  // 1 byte per syscall: worst case
  TcpConnection receiver(rfd);

  constexpr std::size_t kMsgs = 40;
  for (std::size_t i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(sender.send(make_telemetry(static_cast<std::uint32_t>(i))));
  }
  std::vector<proto::Message> got;
  pump_until(sender, receiver, got, kMsgs);

  ASSERT_EQ(got.size(), kMsgs);
  EXPECT_EQ(sender.pending_bytes(), 0u);
  for (std::size_t i = 0; i < kMsgs; ++i) {
    const auto* t = std::get_if<proto::Telemetry>(&got[i]);
    ASSERT_NE(t, nullptr) << "message " << i;
    EXPECT_EQ(t->seq, i);
    EXPECT_EQ(bits(t->cap_w), bits(290.0 + static_cast<double>(i)));
  }
  // 1-byte writes must have forced many resume iterations.
  EXPECT_GT(sender.write_calls(), kMsgs);
}

TEST(ShortWrite, SharedSegmentsResumeMidFrame) {
  auto [sfd, rfd] = stream_pair();
  ShortWriteConnection sender(sfd, 13);  // awkward stride across boundaries
  TcpConnection receiver(rfd);

  FramePool pool;
  const proto::CapPlan plan = make_plan(300);  // ~8.7 KB frame
  const proto::Message msg = plan;
  auto buf = pool.acquire();
  proto::encode_into(msg, *buf);
  const SharedFrame frame = FramePool::freeze(buf);

  // The same frozen frame fans out twice -- the serialize-once broadcast
  // shape -- and each copy must survive being cut into 13-byte writes.
  ASSERT_TRUE(sender.send_frame(frame));
  ASSERT_TRUE(sender.send_frame(frame));

  std::vector<proto::Message> got;
  pump_until(sender, receiver, got, 2);

  ASSERT_EQ(got.size(), 2u);
  for (const proto::Message& m : got) {
    const auto* p = std::get_if<proto::CapPlan>(&m);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p->entries.size(), plan.entries.size());
    for (std::size_t i = 0; i < plan.entries.size(); ++i) {
      EXPECT_EQ(p->entries[i].job_id, plan.entries[i].job_id);
      EXPECT_EQ(bits(p->entries[i].cap_w), bits(plan.entries[i].cap_w));
      EXPECT_EQ(bits(p->entries[i].target_ips), bits(plan.entries[i].target_ips));
    }
  }
  EXPECT_EQ(sender.pending_bytes(), 0u);
}

TEST(ShortWrite, MixedTrafficDemotionPreservesFifo) {
  auto [sfd, rfd] = stream_pair();
  ShortWriteConnection sender(sfd, 0);  // EAGAIN: everything queues
  TcpConnection receiver(rfd);

  FramePool pool;
  const proto::Message plan_msg = make_plan(5);
  auto buf = pool.acquire();
  proto::encode_into(plan_msg, *buf);

  // A shared frame stuck behind backpressure, then a plain send(): the
  // send must demote the shared tail into the owned buffer so the plan
  // still arrives before the telemetry.
  ASSERT_TRUE(sender.send_frame(FramePool::freeze(buf)));
  EXPECT_GT(sender.pending_bytes(), 0u);
  ASSERT_TRUE(sender.send(make_telemetry(1)));

  sender.set_cap(7);  // release the valve, still in short writes
  std::vector<proto::Message> got;
  pump_until(sender, receiver, got, 2);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_NE(std::get_if<proto::CapPlan>(&got[0]), nullptr)
      << "demotion reordered the queue";
  EXPECT_NE(std::get_if<proto::Telemetry>(&got[1]), nullptr);
  EXPECT_EQ(sender.pending_bytes(), 0u);
}

TEST(FramePool, RecyclesSlotOnceReleased) {
  FramePool pool;
  auto a = pool.acquire();
  std::vector<std::uint8_t>* slot = a.get();
  a->assign(100, 0xAB);
  {
    SharedFrame f = FramePool::freeze(a);
    a.reset();
    // Frame still referenced: the slot must not be handed out again.
    auto b = pool.acquire();
    EXPECT_NE(b.get(), slot);
    EXPECT_EQ(pool.size(), 2u);
  }
  // All references dropped: the original slot comes back, cleared but with
  // its capacity intact (the zero-allocation property of the broadcast).
  auto c = pool.acquire();
  EXPECT_EQ(c.get(), slot);
  EXPECT_TRUE(c->empty());
  EXPECT_GE(c->capacity(), 100u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ZeroAlloc, SteadyStateSendReceiveAndBroadcastDoNotAllocate) {
  auto [afd, cfd] = stream_pair();
  TcpConnection agent(afd);       // uplink sender / plan receiver
  TcpConnection controller(cfd);  // uplink receiver / broadcaster

  FramePool pool;
  const proto::Message telemetry = make_telemetry(3);
  const proto::Message heartbeat = [] {
    proto::Heartbeat hb;
    hb.agent_id = 7;
    hb.tick = 42;
    hb.budget_for_busy_w = 9000.0;
    return proto::Message{hb};
  }();
  const proto::Message plan_msg = make_plan(8);

  std::vector<proto::Message> inbox;
  auto tick = [&] {
    // Uplink: telemetry + heartbeat, drained into the reused inbox.
    agent.send(telemetry);
    agent.send(heartbeat);
    inbox.clear();
    controller.receive_into(inbox);
    // Downlink: serialize once into a pooled buffer, fan out.
    auto buf = pool.acquire();
    proto::encode_into(plan_msg, *buf);
    controller.send_frame(FramePool::freeze(buf));
  };

  // Warm-up: grow every scratch buffer, inbox, decoder window, and pool
  // slot to steady-state capacity (the decoder's compaction threshold is
  // 4096 bytes, so warm-up must push well past it).
  for (int i = 0; i < 64; ++i) tick();
  ASSERT_EQ(inbox.size(), 2u);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) tick();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state frame I/O allocated " << (after - before) << " times";

  // The broadcast frames really did arrive (decode of CapPlan allocates its
  // entries vector, which is why the agent drains outside the window).
  std::vector<proto::Message> plans;
  for (int i = 0; i < 1000 && plans.size() < 128; ++i) {
    controller.flush();
    agent.receive_into(plans);
  }
  EXPECT_EQ(plans.size(), 128u);
  EXPECT_NE(std::get_if<proto::CapPlan>(&plans.back()), nullptr);
}

}  // namespace
}  // namespace perq::net
