// Reactor wait-loop contracts: EINTR never shortens a wait (the regression
// where a signal landing during the empty-interest pacing sleep returned
// early, indistinguishable from a timeout), and ShardedReactor's combined
// wait sees readiness on any shard, keeps ready() in canonical ascending
// order, and degrades to the flat reactor on the poll backend.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/reactor.hpp"
#include "net/sharded_reactor.hpp"

namespace perq::net {
namespace {

void noop_handler(int) {}

/// Installs a SIGUSR1 handler WITHOUT SA_RESTART so poll/epoll_wait really
/// return EINTR, then restores the previous disposition on destruction.
class SigusrScope {
 public:
  SigusrScope() {
    struct sigaction sa{};
    sa.sa_handler = noop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: the syscall must see EINTR
    sigaction(SIGUSR1, &sa, &prev_);
  }
  ~SigusrScope() { sigaction(SIGUSR1, &prev_, nullptr); }

 private:
  struct sigaction prev_{};
};

/// Pesters `target` with SIGUSR1 every few ms while alive.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target)
      : thread_([this, target] {
          while (!stop_.load()) {
            pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }) {}
  ~SignalStorm() {
    stop_.store(true);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

class ReactorEintr : public ::testing::TestWithParam<Reactor::Backend> {};

// The regression: with nothing registered, wait() is a pacing sleep. A
// signal mid-sleep used to surface as an early return with an empty ready
// set -- the caller cannot tell it from a real timeout, so its pacing
// interval silently collapsed under signal load.
TEST_P(ReactorEintr, EmptyInterestPacingSleepSurvivesSignals) {
  SigusrScope scope;
  Reactor r(GetParam());
  SignalStorm storm(pthread_self());
  const auto t0 = std::chrono::steady_clock::now();
  const int n = r.wait(200);
  EXPECT_EQ(n, 0);
  EXPECT_GE(elapsed_ms(t0), 190.0)
      << "EINTR mid-sleep shortened the pacing wait";
}

// The registered paths already retried EINTR against the deadline; pin
// that behavior too so it cannot regress the other way.
TEST_P(ReactorEintr, RegisteredWaitSurvivesSignalsUntilTimeout) {
  SigusrScope scope;
  Reactor r(GetParam());
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  r.add(pipe_fds[0]);
  SignalStorm storm(pthread_self());
  const auto t0 = std::chrono::steady_clock::now();
  const int n = r.wait(200);  // nothing written: must run out the clock
  EXPECT_EQ(n, 0);
  EXPECT_GE(elapsed_ms(t0), 190.0);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorEintr,
                         ::testing::Values(Reactor::Backend::kEpoll,
                                           Reactor::Backend::kPoll));

class ShardedReactorTest : public ::testing::TestWithParam<Reactor::Backend> {
 protected:
  void SetUp() override {
    for (auto& p : pipes_) ASSERT_EQ(::pipe(p), 0);
  }
  void TearDown() override {
    for (auto& p : pipes_) {
      ::close(p[0]);
      ::close(p[1]);
    }
  }
  void poke(int i) { ASSERT_EQ(::write(pipes_[i][1], "x", 1), 1); }
  void drain(int i) {
    char c;
    ASSERT_EQ(::read(pipes_[i][0], &c, 1), 1);
  }
  int pipes_[4][2]{};
};

TEST_P(ShardedReactorTest, CombinedWaitSeesEveryShardSorted) {
  ShardedReactor r(2, GetParam());
  for (int i = 0; i < 4; ++i) {
    r.add(pipes_[i][0], static_cast<std::size_t>(i % 2));
  }
  EXPECT_EQ(r.size(), 4u);

  poke(1);
  poke(2);
  ASSERT_EQ(r.wait(1000), 2);
  ASSERT_EQ(r.ready().size(), 2u);
  // Canonical ascending fd order, whatever shard each fd lives on. pipe()
  // hands out ascending fds, so pipe 1's read end sorts before pipe 2's.
  EXPECT_EQ(r.ready()[0], pipes_[1][0]);
  EXPECT_EQ(r.ready()[1], pipes_[2][0]);
  EXPECT_LT(r.ready()[0], r.ready()[1]);

  drain(1);
  drain(2);
  EXPECT_EQ(r.wait(20), 0);
  EXPECT_TRUE(r.ready().empty());
}

TEST_P(ShardedReactorTest, RemoveStopsDelivery) {
  ShardedReactor r(2, GetParam());
  for (int i = 0; i < 4; ++i) {
    r.add(pipes_[i][0], static_cast<std::size_t>(i % 2));
  }
  r.remove(pipes_[3][0], 1);
  EXPECT_EQ(r.size(), 3u);
  poke(3);
  EXPECT_EQ(r.wait(20), 0);
  poke(0);
  ASSERT_EQ(r.wait(1000), 1);
  EXPECT_EQ(r.ready()[0], pipes_[0][0]);
}

TEST_P(ShardedReactorTest, ShardIndicesWrapModulo) {
  ShardedReactor r(2, GetParam());
  r.add(pipes_[0][0], 5);  // 5 % 2 == shard 1
  poke(0);
  ASSERT_EQ(r.wait(1000), 1);
  EXPECT_EQ(r.ready()[0], pipes_[0][0]);
  // Removing via the congruent index hits the same shard.
  r.remove(pipes_[0][0], 1);
  EXPECT_EQ(r.size(), 0u);
}

TEST_P(ShardedReactorTest, EmptyShardedWaitIsAPacingSleep) {
  SigusrScope scope;
  ShardedReactor r(4, GetParam());
  SignalStorm storm(pthread_self());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(r.wait(150), 0);
  EXPECT_GE(elapsed_ms(t0), 140.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardedReactorTest,
                         ::testing::Values(Reactor::Backend::kEpoll,
                                           Reactor::Backend::kPoll));

TEST(ShardedReactorBasics, SingleShardMatchesPlainReactor) {
  ShardedReactor sharded(1, Reactor::Backend::kEpoll);
  Reactor plain(Reactor::Backend::kEpoll);
  int p[2];
  ASSERT_EQ(::pipe(p), 0);
  sharded.add(p[0], 0);
  plain.add(p[0]);
  ASSERT_EQ(::write(p[1], "x", 1), 1);
  EXPECT_EQ(sharded.wait(1000), 1);
  EXPECT_EQ(plain.wait(1000), 1);
  EXPECT_EQ(sharded.ready(), plain.ready());
  ::close(p[0]);
  ::close(p[1]);
}

}  // namespace
}  // namespace perq::net
