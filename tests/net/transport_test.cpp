#include "net/transport.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "net/loopback.hpp"
#include "net/tcp.hpp"
#include "net/tcp_connection.hpp"
#include "util/require.hpp"

namespace perq::net {
namespace {

proto::Message hello(std::uint32_t id) {
  proto::Hello h;
  h.agent_id = id;
  return h;
}

std::uint32_t hello_id(const proto::Message& m) {
  return std::get<proto::Hello>(m).agent_id;
}

// ---- loopback --------------------------------------------------------------

TEST(Loopback, ConnectBeforeListenThrows) {
  LoopbackTransport t;
  EXPECT_THROW(t.connect("nowhere"), precondition_error);
}

TEST(Loopback, DoubleListenOnLiveAddressThrows) {
  LoopbackTransport t;
  auto l = t.listen("a");
  EXPECT_THROW(t.listen("a"), precondition_error);
}

TEST(Loopback, SynchronousBidirectionalDelivery) {
  LoopbackTransport t;
  auto listener = t.listen("perqd");
  auto client = t.connect("perqd");
  auto accepted = listener->accept_new();
  ASSERT_EQ(accepted.size(), 1u);
  auto& server = *accepted[0];

  EXPECT_TRUE(client->send(hello(1)));
  auto got = server.receive();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(hello_id(got[0]), 1u);

  EXPECT_TRUE(server.send(hello(2)));
  got = client->receive();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(hello_id(got[0]), 2u);
}

TEST(Loopback, OrderPreservedAcrossManyMessages) {
  LoopbackTransport t;
  auto listener = t.listen("perqd");
  auto client = t.connect("perqd");
  auto server = std::move(listener->accept_new()[0]);
  for (std::uint32_t i = 0; i < 100; ++i) client->send(hello(i));
  const auto got = server->receive();
  ASSERT_EQ(got.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(hello_id(got[i]), i);
}

TEST(Loopback, PeerCloseDrainsThenCloses) {
  LoopbackTransport t;
  auto listener = t.listen("perqd");
  auto client = t.connect("perqd");
  auto server = std::move(listener->accept_new()[0]);
  client->send(hello(7));
  client->close();
  EXPECT_FALSE(client->send(hello(8)));
  // The in-flight message is still deliverable before the close is final.
  EXPECT_TRUE(server->open());
  const auto got = server->receive();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(hello_id(got[0]), 7u);
  EXPECT_TRUE(server->receive().empty());
  EXPECT_FALSE(server->open());
}

TEST(Loopback, SendSharedKeepsFifoAndDrainReadsInPlace) {
  LoopbackTransport t;
  auto listener = t.listen("perqd");
  auto client = t.connect("perqd");
  auto server = std::move(listener->accept_new()[0]);
  auto* cli = static_cast<LoopbackConnection*>(client.get());
  auto* srv = static_cast<LoopbackConnection*>(server.get());

  const auto shared = std::make_shared<const proto::Message>(hello(2));
  EXPECT_TRUE(client->send(hello(1)));
  EXPECT_TRUE(cli->send_shared(shared));
  EXPECT_TRUE(client->send(hello(3)));
  EXPECT_FALSE(cli->send_shared(nullptr));

  std::vector<std::uint32_t> ids;
  const proto::Message* second = nullptr;
  srv->drain([&](const proto::Message& m) {
    ids.push_back(hello_id(m));
    if (ids.size() == 2) second = &m;
  });
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 2, 3}));
  // drain() read the broadcast where it sits -- no copy was ever made.
  EXPECT_EQ(second, shared.get());
  EXPECT_TRUE(server->receive().empty());  // drain cleared the queue

  client->close();
  EXPECT_FALSE(cli->send_shared(shared));
}

TEST(Loopback, SendSharedFanOutReceiveYieldsOwnedCopies) {
  LoopbackTransport t;
  auto listener = t.listen("perqd");
  auto c1 = t.connect("perqd");
  auto c2 = t.connect("perqd");
  auto accepted = listener->accept_new();
  ASSERT_EQ(accepted.size(), 2u);

  // One decoded broadcast fanned out to both peers by refcount bump.
  auto shared = std::make_shared<const proto::Message>(hello(9));
  for (auto& s : accepted) {
    EXPECT_TRUE(static_cast<LoopbackConnection*>(s.get())->send_shared(shared));
  }
  EXPECT_EQ(shared.use_count(), 3);  // caller + one reference per queue

  // receive() still yields owned values: copies, not aliases.
  const auto got1 = c1->receive();
  const auto got2 = c2->receive();
  ASSERT_EQ(got1.size(), 1u);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(hello_id(got1[0]), 9u);
  EXPECT_EQ(hello_id(got2[0]), 9u);
  EXPECT_NE(&got1[0], shared.get());
  EXPECT_NE(&got2[0], shared.get());
  EXPECT_EQ(shared.use_count(), 1);  // queues released their references
}

// ---- tcp -------------------------------------------------------------------

TEST(Tcp, EphemeralPortRoundTrip) {
  TcpTransport t;
  auto listener = t.listen("127.0.0.1:0");
  const std::uint16_t port = listener_port(*listener);
  ASSERT_NE(port, 0);
  auto client = t.connect("127.0.0.1:" + std::to_string(port));

  std::unique_ptr<Connection> server;
  client->send(hello(42));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::vector<proto::Message> got;
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    if (!server) {
      auto accepted = listener->accept_new();
      if (!accepted.empty()) server = std::move(accepted[0]);
    }
    if (server) {
      for (auto& m : server->receive()) got.push_back(std::move(m));
    }
    client->receive();  // progress the client's pending writes
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(hello_id(got[0]), 42u);

  // And the reverse direction.
  server->send(hello(43));
  got.clear();
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    server->receive();
    for (auto& m : client->receive()) got.push_back(std::move(m));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(hello_id(got[0]), 43u);
}

TEST(Tcp, ManyMessagesSurvivePartialWrites) {
  TcpTransport t;
  auto listener = t.listen("127.0.0.1:0");
  auto client =
      t.connect("127.0.0.1:" + std::to_string(listener_port(*listener)));
  // A burst larger than typical socket buffers exercises the send-buffer
  // partial-write path.
  constexpr std::uint32_t kCount = 20000;
  for (std::uint32_t i = 0; i < kCount; ++i) client->send(hello(i));

  std::unique_ptr<Connection> server;
  std::vector<proto::Message> got;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < kCount && std::chrono::steady_clock::now() < deadline) {
    if (!server) {
      auto accepted = listener->accept_new();
      if (!accepted.empty()) server = std::move(accepted[0]);
    }
    client->receive();  // flush pending writes
    if (server) {
      for (auto& m : server->receive()) got.push_back(std::move(m));
    }
  }
  ASSERT_EQ(got.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(hello_id(got[i]), i);
}

TEST(Tcp, ConsumeReceivedSeesMessagesInPlaceInOrder) {
  TcpTransport t;
  auto listener = t.listen("127.0.0.1:0");
  auto client =
      t.connect("127.0.0.1:" + std::to_string(listener_port(*listener)));
  constexpr std::uint32_t kCount = 500;
  for (std::uint32_t i = 0; i < kCount; ++i) client->send(hello(i));

  std::unique_ptr<Connection> server;
  std::vector<std::uint32_t> ids;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ids.size() < kCount && std::chrono::steady_clock::now() < deadline) {
    if (!server) {
      auto accepted = listener->accept_new();
      if (!accepted.empty()) server = std::move(accepted[0]);
    }
    client->receive();  // flush pending writes
    if (server) {
      static_cast<TcpConnection*>(server.get())
          ->consume_received(
              [&](proto::Message& m) { ids.push_back(hello_id(m)); });
    }
  }
  ASSERT_EQ(ids.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(ids[i], i);
}

TEST(Tcp, CorruptStreamClosesConnection) {
  TcpTransport t;
  auto listener = t.listen("127.0.0.1:0");
  const std::uint16_t port = listener_port(*listener);

  // Raw socket writing garbage straight at the server.
  auto client = t.connect("127.0.0.1:" + std::to_string(port));
  const std::uint8_t junk[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD};
  // Smuggle the junk through a Hello-then-garbage by using the fd directly:
  // send a valid frame first so the connection is definitely established.
  client->send(hello(1));

  std::unique_ptr<Connection> server;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool wrote_junk = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!server) {
      auto accepted = listener->accept_new();
      if (!accepted.empty()) server = std::move(accepted[0]);
    }
    client->receive();
    if (server) {
      server->receive();
      if (!wrote_junk && client->fd() >= 0) {
        // 0xFFFFFFFF as a length prefix is beyond kMaxFrameBytes.
        ASSERT_GT(::write(client->fd(), junk, sizeof(junk)), 0);
        wrote_junk = true;
      }
      if (!server->open()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server != nullptr);
  EXPECT_FALSE(server->open());
}

TEST(Tcp, EofClosesServerSide) {
  TcpTransport t;
  auto listener = t.listen("127.0.0.1:0");
  auto client =
      t.connect("127.0.0.1:" + std::to_string(listener_port(*listener)));
  client->send(hello(5));

  std::unique_ptr<Connection> server;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed_client = false;
  std::size_t got = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!server) {
      auto accepted = listener->accept_new();
      if (!accepted.empty()) server = std::move(accepted[0]);
    }
    client->receive();
    if (server) {
      got += server->receive().size();
      if (got >= 1 && !closed_client) {
        client->close();
        closed_client = true;
      }
      if (closed_client && !server->open()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got, 1u);
  ASSERT_TRUE(closed_client);
  EXPECT_FALSE(server->open());
}

TEST(Tcp, WaitReadableHonorsTimeoutOnEmptySet) {
  const auto before = std::chrono::steady_clock::now();
  wait_readable({}, 20);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            15);
  // Negative fds (loopback connections) are skipped without error.
  wait_readable({-1, -1}, 1);
}

TEST(Tcp, BadAddressThrows) {
  TcpTransport t;
  EXPECT_THROW(t.listen("not-an-address"), precondition_error);
  EXPECT_THROW(t.connect("127.0.0.1"), precondition_error);
  EXPECT_THROW(t.listen("127.0.0.1:notaport"), precondition_error);
}

}  // namespace
}  // namespace perq::net
