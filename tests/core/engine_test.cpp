#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "policy/policy.hpp"
#include "util/require.hpp"

namespace perq::core {
namespace {

EngineConfig tiny_config(double f = 1.0, double hours = 1.0) {
  EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTardis;
  cfg.trace.job_count = 400;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 8;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.control_interval_s = 10.0;
  return cfg;
}

TEST(Engine, CompletesJobsUnderFop) {
  auto fop = policy::make_fop();
  const auto r = run_experiment(tiny_config(), *fop);
  EXPECT_GT(r.jobs_completed, 10u);
  EXPECT_EQ(r.jobs_completed, r.finished.size());
  EXPECT_EQ(r.policy_name, "FOP");
  EXPECT_DOUBLE_EQ(r.over_provision_factor, 1.0);
}

TEST(Engine, FinishedJobsHaveConsistentTimes) {
  auto fop = policy::make_fop();
  const auto r = run_experiment(tiny_config(), *fop);
  for (const auto& j : r.finished) {
    EXPECT_GE(j.start_s, 0.0);
    EXPECT_GT(j.finish_s, j.start_s);
    EXPECT_NEAR(j.runtime_s, j.finish_s - j.start_s, 1e-9);
    // Wall runtime can never beat the reference runtime by more than one
    // control interval (progress rate <= 1).
    EXPECT_GE(j.runtime_s, j.runtime_ref_s - 10.0 - 1e-9);
  }
}

TEST(Engine, AtFullPowerRuntimesMatchReference) {
  // f=1 FOP: every node at TDP, perf = 1 -> runtime == reference, rounded
  // up to the control interval.
  auto fop = policy::make_fop();
  const auto r = run_experiment(tiny_config(), *fop);
  for (const auto& j : r.finished) {
    EXPECT_LE(j.runtime_s, j.runtime_ref_s + 10.0 + 1e-6);
  }
}

TEST(Engine, JobIdsUniqueAmongFinished) {
  auto fop = policy::make_fop();
  const auto r = run_experiment(tiny_config(), *fop);
  std::set<int> ids;
  for (const auto& j : r.finished) EXPECT_TRUE(ids.insert(j.id).second);
}

TEST(Engine, PeakCommittedPowerWithinBudget) {
  auto fop = policy::make_fop();
  const auto r = run_experiment(tiny_config(2.0), *fop);
  EXPECT_LE(r.peak_committed_w, 8 * 290.0 + 1e-3);
  EXPECT_GT(r.mean_power_draw_w, 0.0);
  EXPECT_LE(r.mean_power_draw_w, 8 * 290.0);
}

TEST(Engine, DeterministicForIdenticalConfig) {
  auto fop1 = policy::make_fop();
  auto fop2 = policy::make_fop();
  const auto a = run_experiment(tiny_config(), *fop1);
  const auto b = run_experiment(tiny_config(), *fop2);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id);
    EXPECT_DOUBLE_EQ(a.finished[i].runtime_s, b.finished[i].runtime_s);
  }
}

TEST(Engine, OverProvisioningIncreasesThroughput) {
  auto fop1 = policy::make_fop();
  auto fop2 = policy::make_fop();
  auto cfg1 = tiny_config(1.0, 3.0);
  auto cfg2 = tiny_config(2.0, 3.0);
  cfg2.trace.job_count = 800;
  const auto r1 = run_experiment(cfg1, *fop1);
  const auto r2 = run_experiment(cfg2, *fop2);
  EXPECT_GT(r2.jobs_completed, r1.jobs_completed);
}

TEST(Engine, TracedJobsProduceSeries) {
  auto cfg = tiny_config();
  cfg.traced_jobs = {0, 1};
  PerqPolicy perq(&canonical_node_model(), cfg.worst_case_nodes,
                  cfg.worst_case_nodes);
  const auto r = run_experiment(cfg, perq);
  EXPECT_FALSE(r.traces.empty());
  std::set<int> traced_ids;
  for (const auto& p : r.traces) {
    traced_ids.insert(p.job_id);
    EXPECT_GE(p.cap_w, 90.0 - 1e-9);
    EXPECT_LE(p.cap_w, 290.0 + 1e-9);
    EXPECT_GT(p.job_ips, 0.0);
    EXPECT_GT(p.target_ips, 0.0);  // PERQ reports targets
    EXPECT_GT(p.perf_fraction, 0.0);
    EXPECT_LE(p.perf_fraction, 1.0 + 1e-9);
  }
  for (int id : traced_ids) EXPECT_TRUE(id == 0 || id == 1);
}

TEST(Engine, DecisionTimesRecordedPerInterval) {
  auto fop = policy::make_fop();
  auto cfg = tiny_config();
  const auto r = run_experiment(cfg, *fop);
  // One decision per interval in which at least one job ran.
  EXPECT_GT(r.decision_seconds.size(), 300u);
  EXPECT_LE(r.decision_seconds.size(),
            static_cast<std::size_t>(cfg.duration_s / cfg.control_interval_s));
}

TEST(Engine, RecommendedJobCountKeepsBacklog) {
  auto cfg = tiny_config(2.0, 2.0);
  cfg.trace.job_count = recommended_job_count(cfg);
  auto fop = policy::make_fop();
  const auto r = run_experiment(cfg, *fop);
  // The backlog never drains: completed jobs are well below the trace size.
  EXPECT_LT(r.jobs_completed, cfg.trace.job_count);
  EXPECT_GT(cfg.trace.job_count, 100u);
}

TEST(Engine, ValidatesConfig) {
  auto fop = policy::make_fop();
  auto cfg = tiny_config();
  cfg.duration_s = 0.0;
  EXPECT_THROW(run_experiment(cfg, *fop), precondition_error);
  cfg = tiny_config();
  cfg.control_interval_s = 0.0;
  EXPECT_THROW(run_experiment(cfg, *fop), precondition_error);
  cfg = tiny_config();
  cfg.trace.max_job_nodes = 100;  // larger than the cluster
  cfg.trace.system = trace::SystemModel::kTrinity;
  EXPECT_THROW(run_experiment(cfg, *fop), precondition_error);
}

TEST(Engine, EasyBackfillCompletesJobs) {
  auto cfg = tiny_config(1.5, 1.0);
  cfg.backfill_mode = sched::BackfillMode::kEasy;
  auto fop = policy::make_fop();
  const auto easy = run_experiment(cfg, *fop);
  EXPECT_GT(easy.jobs_completed, 10u);
  // EASY is at most as utilization-greedy as aggressive backfilling.
  auto cfg2 = tiny_config(1.5, 1.0);
  auto fop2 = policy::make_fop();
  const auto aggressive = run_experiment(cfg2, *fop2);
  EXPECT_LE(easy.jobs_completed, aggressive.jobs_completed + 8);
}

TEST(Engine, RunsWithManufacturingVariability) {
  // Nodes of the same SKU differ by a few percent; the full stack (and
  // PERQ's estimators, which see per-node scales through the min-rank
  // indicator) must handle it.
  auto cfg = tiny_config(1.5, 1.0);
  cfg.node.perf_variability_sigma = 0.04;
  PerqPolicy perq(&canonical_node_model(), cfg.worst_case_nodes,
                  static_cast<std::size_t>(1.5 * 8));
  const auto r = run_experiment(cfg, perq);
  EXPECT_GT(r.jobs_completed, 10u);
}

TEST(Engine, SubmitTimesGateStarts) {
  // With a nonzero arrival span, no job may start before its submit time:
  // the engine hands jobs to the scheduler only once now >= submit_time_s.
  auto cfg = tiny_config(1.5, 2.0);
  cfg.trace.arrival_span_s = 3600.0;
  auto fop = policy::make_fop();
  const auto r = run_experiment(cfg, *fop);
  EXPECT_GT(r.jobs_completed, 10u);

  std::map<int, double> submit_by_id;
  for (const auto& spec : trace::generate_trace(cfg.trace)) {
    submit_by_id[spec.id] = spec.submit_time_s;
  }
  std::set<double> distinct_submits;
  for (const auto& j : r.finished) {
    const auto it = submit_by_id.find(j.id);
    ASSERT_NE(it, submit_by_id.end());
    EXPECT_GE(j.start_s, it->second - 1e-9) << "job " << j.id;
    distinct_submits.insert(it->second);
  }
  // The arrival model actually spread submissions out (not a backlog).
  EXPECT_GT(distinct_submits.size(), 1u);
}

TEST(Engine, ControlIntervalSweepRuns) {
  for (double dt : {5.0, 20.0, 60.0}) {
    auto cfg = tiny_config(1.5, 0.5);
    cfg.control_interval_s = dt;
    auto fop = policy::make_fop();
    const auto r = run_experiment(cfg, *fop);
    EXPECT_GT(r.jobs_completed, 0u) << "dt=" << dt;
  }
}

}  // namespace
}  // namespace perq::core
