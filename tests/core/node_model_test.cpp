#include "core/node_model.hpp"

#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::core {
namespace {

TEST(NodeModel, TrainingSegmentsCoverEveryTrainingApp) {
  const auto segs = collect_training_segments(1, 64, 10.0);
  EXPECT_EQ(segs.size(), apps::training_catalog().size());
  for (const auto& s : segs) {
    EXPECT_EQ(s.u.size(), 64u);
    EXPECT_EQ(s.y.size(), 64u);
  }
}

TEST(NodeModel, TrainingCapsSpanTheLegalRange) {
  const auto segs = collect_training_segments(2, 200, 10.0);
  double lo = 1e9, hi = 0.0;
  for (const auto& s : segs) {
    for (double c : s.u) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  EXPECT_GE(lo, 90.0);
  EXPECT_LE(hi, 290.0);
  EXPECT_LT(lo, 120.0);  // the sweep actually exercises the low range
  EXPECT_GT(hi, 260.0);  // ... and the high range
}

TEST(NodeModel, ConcatenatedDataMatchesSegments) {
  const auto segs = collect_training_segments(3, 64, 10.0);
  const auto all = collect_training_data(3, 64, 10.0);
  std::size_t total = 0;
  for (const auto& s : segs) total += s.u.size();
  EXPECT_EQ(all.u.size(), total);
}

TEST(NodeModel, IdentifiedModelIsStableThirdOrder) {
  const auto model = identify_node_model(17);
  EXPECT_EQ(model.ss().order(), 3u);
  EXPECT_TRUE(model.arx().is_stable());
  EXPECT_TRUE(model.ss().is_stable());
}

TEST(NodeModel, IdentifiedModelHasPositiveSensitivity) {
  const auto model = identify_node_model(17);
  // More power -> more performance, on average over the training suite.
  EXPECT_GT(model.arx().dc_gain(), 0.0);
  EXPECT_GT(model.steady_state(290.0), model.steady_state(90.0));
}

TEST(NodeModel, ValidationFitIsMeaningful) {
  const auto model = identify_node_model(17);
  // The mixture of heterogeneous apps bounds what a single LTI model can
  // explain; anything clearly above zero and below perfect is expected.
  EXPECT_GT(model.fit_percent(), 30.0);
  EXPECT_LT(model.fit_percent(), 100.0);
}

TEST(NodeModel, DifferentSeedsGiveSimilarDcGain) {
  // The identified physics should not depend on the excitation seed.
  const auto a = identify_node_model(100);
  const auto b = identify_node_model(200);
  EXPECT_NEAR(a.arx().dc_gain(), b.arx().dc_gain(),
              0.4 * std::abs(a.arx().dc_gain()));
}

TEST(NodeModel, CanonicalModelIsCachedSingleton) {
  const auto& a = canonical_node_model();
  const auto& b = canonical_node_model();
  EXPECT_EQ(&a, &b);
}

TEST(NodeModel, ValidatesArguments) {
  EXPECT_THROW(collect_training_segments(1, 10, 10.0), precondition_error);
  EXPECT_THROW(collect_training_segments(1, 100, 0.0), precondition_error);
}

}  // namespace
}  // namespace perq::core
