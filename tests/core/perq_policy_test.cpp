#include "core/perq_policy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "core/node_model.hpp"
#include "util/require.hpp"

namespace perq::core {
namespace {

class PerqPolicyTest : public ::testing::Test {
 protected:
  PerqPolicyTest() : policy_(&canonical_node_model(), 8, 16) {}

  sched::Job* add_job(int id, std::size_t nodes, const char* app = "ASPA") {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = 600.0;
    s.app_index = 0;
    jobs_.push_back(std::make_unique<sched::Job>(s, &apps::find_app(app)));
    std::vector<std::size_t> ids(nodes);
    for (auto& n : ids) n = next_node_++;
    jobs_.back()->start(0.0, std::move(ids));
    running_.push_back(jobs_.back().get());
    policy_.on_job_started(*jobs_.back());
    return jobs_.back().get();
  }

  policy::PolicyContext ctx(double budget_busy) {
    policy::PolicyContext c;
    c.running = &running_;
    c.budget_for_busy_w = budget_busy;
    c.budget_total_w = 8 * 290.0;
    c.total_nodes = 16.0;
    return c;
  }

  PerqPolicy policy_;
  std::vector<std::unique_ptr<sched::Job>> jobs_;
  std::vector<sched::Job*> running_;
  std::size_t next_node_ = 0;
};

TEST_F(PerqPolicyTest, NameAndEmptyAllocation) {
  EXPECT_EQ(policy_.name(), "PERQ");
  policy::PolicyContext c = ctx(1000.0);
  std::vector<sched::Job*> none;
  c.running = &none;
  EXPECT_TRUE(policy_.allocate(c).empty());
}

TEST_F(PerqPolicyTest, CapsRespectBoundsAndBudget) {
  add_job(0, 2);
  add_job(1, 3, "SimpleMOC");
  const double budget = 5 * 150.0;
  auto caps = policy_.allocate(ctx(budget));
  ASSERT_EQ(caps.size(), 2u);
  double committed = 0.0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], 90.0 - 1e-9);
    EXPECT_LE(caps[i], 290.0 + 1e-9);
    committed += caps[i] * static_cast<double>(running_[i]->spec().nodes);
  }
  EXPECT_LE(committed, budget + 1e-6);
}

TEST_F(PerqPolicyTest, TargetsExposedForRunningJobs) {
  add_job(0, 2);
  (void)policy_.allocate(ctx(2 * 200.0));
  EXPECT_GT(policy_.target_ips(0), 0.0);
  EXPECT_DOUBLE_EQ(policy_.target_ips(99), 0.0);
}

TEST_F(PerqPolicyTest, EstimatorLifecycleFollowsJobs) {
  sched::Job* j = add_job(0, 1);
  EXPECT_NE(policy_.estimator(0), nullptr);
  (void)policy_.allocate(ctx(290.0));
  j->record_interval(10.0, 1.0, 1e9, 145.0);
  j->finish(10.0);
  policy_.on_job_finished(*j);
  EXPECT_EQ(policy_.estimator(0), nullptr);
  EXPECT_DOUBLE_EQ(policy_.target_ips(0), 0.0);
}

TEST_F(PerqPolicyTest, DecisionTimesAreRecorded) {
  add_job(0, 1);
  (void)policy_.allocate(ctx(290.0));
  (void)policy_.allocate(ctx(290.0));
  EXPECT_EQ(policy_.decision_seconds().size(), 2u);
  for (double s : policy_.decision_seconds()) EXPECT_GE(s, 0.0);
}

TEST_F(PerqPolicyTest, FeedbackUpdatesEstimators) {
  sched::Job* j = add_job(0, 2);
  (void)policy_.allocate(ctx(2 * 200.0));
  const auto* est = policy_.estimator(0);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->updates(), 0u);  // no measurement yet on the first decision
  j->record_interval(10.0, 1.0, 2e9, 150.0);
  (void)policy_.allocate(ctx(2 * 200.0));
  EXPECT_EQ(est->updates(), 1u);
}

TEST_F(PerqPolicyTest, DitherProbesCapsOverTime) {
  // With two jobs of opposite dither parity under a binding budget, the
  // one-sided probe must produce relative cap movement between them (a
  // single job pinned at the budget cannot move -- that is by design).
  PerqConfig cfg;
  cfg.dither_w = 8.0;
  PerqPolicy dithered(&canonical_node_model(), 8, 16, cfg);
  sched::Job* a = add_job(0, 1);
  sched::Job* b = add_job(1, 1);
  dithered.on_job_started(*a);
  dithered.on_job_started(*b);
  double lo = 1e9, hi = -1e9;
  for (int k = 0; k < 8; ++k) {
    auto caps = dithered.allocate(ctx(2 * 110.0));
    const double delta = caps[0] - caps[1];
    lo = std::min(lo, delta);
    hi = std::max(hi, delta);
    a->record_interval(10.0, 1.0, 1e9, caps[0]);
    b->record_interval(10.0, 1.0, 1e9, caps[1]);
  }
  EXPECT_GT(hi - lo, 3.0);
}

TEST_F(PerqPolicyTest, ThroughputOnlyConfigurationAllowed) {
  // Paper Sec. 3: placing orders-of-magnitude more weight on throughput
  // turns PERQ into a pure throughput optimizer. The policy must accept
  // such configurations.
  PerqConfig cfg;
  cfg.mpc.weight_sys = 100.0;
  cfg.mpc.weight_job = 0.1;
  PerqPolicy throughput_first(&canonical_node_model(), 8, 16, cfg);
  sched::Job* j = add_job(0, 1);
  throughput_first.on_job_started(*j);
  auto caps = throughput_first.allocate(ctx(290.0));
  EXPECT_EQ(caps.size(), 1u);
}

TEST(PerqPolicy, RequiresModel) {
  EXPECT_THROW(PerqPolicy(nullptr, 8, 16), precondition_error);
}

}  // namespace
}  // namespace perq::core
