#include "apps/app_model.hpp"

#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::apps {
namespace {

// Table 1 of the paper: average per-node power as % of TDP.
struct Table1Row {
  const char* name;
  double avg_power_pct;
  Sensitivity sensitivity;

  friend void PrintTo(const Table1Row& r, std::ostream* os) { *os << r.name; }
};

const Table1Row kTable1[] = {
    {"ASPA", 27.0, Sensitivity::kLow},      {"CoHMM", 27.0, Sensitivity::kLow},
    {"CoMD", 48.0, Sensitivity::kMedium},   {"HPCCG", 57.0, Sensitivity::kLow},
    {"RSBench", 39.0, Sensitivity::kLow},   {"SimpleMOC", 69.0, Sensitivity::kHigh},
    {"SWFFT", 28.0, Sensitivity::kHigh},    {"XSBench", 43.0, Sensitivity::kMedium},
    {"miniFE", 61.0, Sensitivity::kMedium}, {"miniMD", 65.0, Sensitivity::kHigh},
};

TEST(PowerSpec, MatchesPaperNodeType) {
  const auto& spec = node_power_spec();
  EXPECT_DOUBLE_EQ(spec.tdp, 290.0);      // Intel Xeon E5-2686 TDP (paper)
  EXPECT_DOUBLE_EQ(spec.cap_min, 90.0);   // Fig. 3 sweep starts at 90 W
  EXPECT_GT(spec.idle, 0.0);
  EXPECT_LT(spec.idle, spec.cap_min);
}

TEST(Catalog, ContainsAllTenEcpApps) {
  EXPECT_EQ(ecp_catalog().size(), 10u);
  for (const auto& row : kTable1) EXPECT_NO_THROW(find_app(row.name));
}

TEST(Catalog, FindAppRejectsUnknown) {
  EXPECT_THROW(find_app("NotAnApp"), precondition_error);
}

TEST(Catalog, TrainingSuiteDisjointFromEvaluationApps) {
  for (const auto& train : training_catalog()) {
    for (const auto& eval : ecp_catalog()) {
      EXPECT_NE(train.name(), eval.name());
    }
  }
  EXPECT_GE(training_catalog().size(), 6u);
}

class Table1Sweep : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Sweep, AveragePowerMatchesTable1) {
  const auto& row = GetParam();
  const auto& app = find_app(row.name);
  EXPECT_NEAR(app.avg_power_fraction() * 100.0, row.avg_power_pct, 0.5)
      << app.name();
}

TEST_P(Table1Sweep, SensitivityClassMatchesFig3) {
  const auto& row = GetParam();
  EXPECT_EQ(find_app(row.name).sensitivity(), row.sensitivity);
}

TEST_P(Table1Sweep, Fig3AnchorAt90W) {
  // Fig. 3: at 90 W, low-sensitivity apps lose < 20%, high-sensitivity apps
  // lose > 60% (phase-average behavior).
  const auto& app = find_app(GetParam().name);
  double avg = 0.0;
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    avg += app.perf_fraction(90.0, ph) * app.phase(ph).duration_s;
  }
  double cycle = 0.0;
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    cycle += app.phase(ph).duration_s;
  }
  avg /= cycle;
  switch (app.sensitivity()) {
    case Sensitivity::kLow:
      EXPECT_GT(avg, 0.80) << app.name();
      break;
    case Sensitivity::kMedium:
      EXPECT_GT(avg, 0.5) << app.name();
      EXPECT_LT(avg, 0.85) << app.name();
      break;
    case Sensitivity::kHigh:
      EXPECT_LT(avg, 0.45) << app.name();
      break;
  }
}

TEST_P(Table1Sweep, PerfCurveIsMonotoneInCap) {
  const auto& app = find_app(GetParam().name);
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    double prev = 0.0;
    for (double cap = 90.0; cap <= 290.0; cap += 2.0) {
      const double p = app.perf_fraction(cap, ph);
      EXPECT_GE(p + 1e-12, prev) << app.name() << " phase " << ph << " cap " << cap;
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
    EXPECT_DOUBLE_EQ(app.perf_fraction(290.0, ph), 1.0);
  }
}

TEST_P(Table1Sweep, PerfSaturatesAtKnee) {
  const auto& app = find_app(GetParam().name);
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    const double knee = app.knee_w(ph);
    EXPECT_GT(knee, node_power_spec().cap_min);
    EXPECT_LE(knee, node_power_spec().tdp);
    EXPECT_DOUBLE_EQ(app.perf_fraction(knee, ph), 1.0);
    if (knee < 285.0) {
      EXPECT_LT(app.perf_fraction(knee - 20.0, ph), 1.0);
    }
  }
}

TEST_P(Table1Sweep, PowerDrawBounds) {
  const auto& app = find_app(GetParam().name);
  const auto& spec = node_power_spec();
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    for (double cap : {90.0, 150.0, 290.0}) {
      const double draw = app.power_draw_w(cap, ph);
      EXPECT_GE(draw, spec.idle);
      EXPECT_LE(draw, std::max(cap, spec.idle) + 1e-12);
      EXPECT_LE(draw, app.power_demand_w(ph) + 1e-12);
    }
  }
}

TEST_P(Table1Sweep, NodeIpsScalesWithPerf) {
  const auto& app = find_app(GetParam().name);
  const double at_tdp = app.node_ips(290.0, 0);
  const double at_min = app.node_ips(90.0, 0);
  EXPECT_GT(at_tdp, 0.0);
  EXPECT_LE(at_min, at_tdp);
  EXPECT_NEAR(at_min / at_tdp, app.perf_fraction(90.0, 0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Apps, Table1Sweep, ::testing::ValuesIn(kTable1));

TEST(AppModel, PhaseCyclingCoversAllPhases) {
  const auto& app = find_app("miniMD");  // 4 phases of 120 s
  ASSERT_EQ(app.phase_count(), 4u);
  EXPECT_EQ(app.phase_at(0.0), 0u);
  EXPECT_EQ(app.phase_at(130.0), 1u);
  EXPECT_EQ(app.phase_at(250.0), 2u);
  EXPECT_EQ(app.phase_at(370.0), 3u);
  // Cycles.
  EXPECT_EQ(app.phase_at(480.0), 0u);
  EXPECT_EQ(app.phase_at(480.0 + 130.0), 1u);
}

TEST(AppModel, SinglePhaseAlwaysPhaseZero) {
  const auto& app = training_catalog()[0];  // npb.bt has one phase
  ASSERT_EQ(app.phase_count(), 1u);
  EXPECT_EQ(app.phase_at(1e6), 0u);
}

TEST(AppModel, PhaseAtRejectsNegativeTime) {
  EXPECT_THROW(find_app("ASPA").phase_at(-1.0), precondition_error);
}

TEST(AppModel, PhaseIndexValidated) {
  const auto& app = find_app("ASPA");
  EXPECT_THROW(app.phase(99), precondition_error);
  EXPECT_THROW(app.perf_fraction(150.0, 99), precondition_error);
}

TEST(AppModel, ConstructorValidation) {
  std::vector<PhaseSpec> ok{{100.0, 0.5, 1.0, 1.0}};
  EXPECT_THROW(AppModel("", Sensitivity::kLow, 1e9, 0.1, 1.0, ok), precondition_error);
  EXPECT_THROW(AppModel("x", Sensitivity::kLow, 0.0, 0.1, 1.0, ok), precondition_error);
  EXPECT_THROW(AppModel("x", Sensitivity::kLow, 1e9, 0.0, 1.0, ok), precondition_error);
  EXPECT_THROW(AppModel("x", Sensitivity::kLow, 1e9, 1.0, 1.0, ok), precondition_error);
  EXPECT_THROW(AppModel("x", Sensitivity::kLow, 1e9, 0.1, 0.0, ok), precondition_error);
  EXPECT_THROW(AppModel("x", Sensitivity::kLow, 1e9, 0.1, 1.0, {}), precondition_error);
  std::vector<PhaseSpec> bad{{100.0, 0.05, 1.0, 1.0}};  // demand below idle
  EXPECT_THROW(AppModel("x", Sensitivity::kLow, 1e9, 0.1, 1.0, bad),
               precondition_error);
}

TEST(AppModel, SensitivityScaleDeepensDegradation) {
  std::vector<PhaseSpec> phases{{100.0, 0.7, 1.0, 0.5}, {100.0, 0.7, 1.0, 1.5}};
  AppModel app("x", Sensitivity::kHigh, 1e9, 0.5, 1.0, phases);
  EXPECT_GT(app.perf_fraction(90.0, 0), app.perf_fraction(90.0, 1));
}

TEST(AppModel, KneeTracksPhaseDemand) {
  // The saturation knee is derived from the phase's power demand (with
  // headroom and a floor): higher-demand phases must have knees at least as
  // high, and the knee never sits below the demand-free floor.
  for (const auto& app : ecp_catalog()) {
    for (std::size_t a = 0; a < app.phase_count(); ++a) {
      for (std::size_t b = 0; b < app.phase_count(); ++b) {
        if (app.power_demand_w(a) >= app.power_demand_w(b)) {
          EXPECT_GE(app.knee_w(a) + 1e-9, app.knee_w(b))
              << app.name() << " phases " << a << "," << b;
        }
      }
      EXPECT_GE(app.knee_w(a), 115.0 - 1e-9);
    }
  }
}

TEST(AppModel, PerfAtKneeNeverBelowPerfBelowKnee) {
  // Monotone saturation: for caps c1 < c2 <= knee, perf(c1) <= perf(c2) = 1
  // exactly at the knee.
  const auto& app = find_app("CoMD");
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    const double knee = app.knee_w(ph);
    EXPECT_DOUBLE_EQ(app.perf_fraction(knee, ph), 1.0);
    EXPECT_DOUBLE_EQ(app.perf_fraction(knee + 10.0, ph), 1.0);
    EXPECT_LE(app.perf_fraction(knee - 30.0, ph), 1.0);
  }
}

TEST(AppModel, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(Sensitivity::kLow), "low");
  EXPECT_EQ(to_string(Sensitivity::kMedium), "medium");
  EXPECT_EQ(to_string(Sensitivity::kHigh), "high");
}

}  // namespace
}  // namespace perq::apps
