#include "sched/job.hpp"

#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::sched {
namespace {

trace::JobSpec spec(int id = 1, std::size_t nodes = 2, double runtime = 600.0) {
  trace::JobSpec s;
  s.id = id;
  s.nodes = nodes;
  s.runtime_ref_s = runtime;
  s.app_index = 0;
  s.phase_offset_s = 0.0;
  return s;
}

const apps::AppModel& app() { return apps::find_app("ASPA"); }

TEST(Job, ConstructionValidation) {
  EXPECT_THROW(Job(spec(), nullptr), precondition_error);
  auto bad = spec();
  bad.nodes = 0;
  EXPECT_THROW(Job(bad, &app()), precondition_error);
  bad = spec();
  bad.runtime_ref_s = 0.0;
  EXPECT_THROW(Job(bad, &app()), precondition_error);
}

TEST(Job, LifecycleStates) {
  Job j(spec(), &app());
  EXPECT_EQ(j.state(), JobState::kQueued);
  j.start(100.0, {3, 7});
  EXPECT_EQ(j.state(), JobState::kRunning);
  EXPECT_DOUBLE_EQ(j.start_time_s(), 100.0);
  EXPECT_EQ(j.node_ids(), (std::vector<std::size_t>{3, 7}));
  j.record_interval(600.0, 1.0, 1e9, 290.0);
  EXPECT_TRUE(j.work_complete());
  j.finish(700.0);
  EXPECT_EQ(j.state(), JobState::kFinished);
  EXPECT_DOUBLE_EQ(j.runtime_s(), 600.0);
  EXPECT_TRUE(j.node_ids().empty());
}

TEST(Job, StartRequiresMatchingAllocation) {
  Job j(spec(1, 3), &app());
  EXPECT_THROW(j.start(0.0, {1, 2}), precondition_error);
}

TEST(Job, DoubleStartRejected) {
  Job j(spec(), &app());
  j.start(0.0, {0, 1});
  EXPECT_THROW(j.start(1.0, {2, 3}), precondition_error);
}

TEST(Job, ProgressScalesWithPerfFraction) {
  Job j(spec(1, 2, 100.0), &app());
  j.start(0.0, {0, 1});
  j.record_interval(10.0, 0.5, 1e9, 145.0);
  EXPECT_DOUBLE_EQ(j.progress_s(), 5.0);
  EXPECT_DOUBLE_EQ(j.remaining_ref_s(), 95.0);
  EXPECT_FALSE(j.work_complete());
  // At full perf, 95 more seconds completes it.
  j.record_interval(95.0, 1.0, 2e9, 290.0);
  EXPECT_TRUE(j.work_complete());
  EXPECT_DOUBLE_EQ(j.last_job_ips(), 2e9);
  EXPECT_DOUBLE_EQ(j.last_cap_w(), 290.0);
  EXPECT_DOUBLE_EQ(j.last_min_perf(), 1.0);
}

TEST(Job, RecordValidation) {
  Job j(spec(), &app());
  EXPECT_THROW(j.record_interval(10.0, 1.0, 1e9, 290.0), precondition_error);
  j.start(0.0, {0, 1});
  EXPECT_THROW(j.record_interval(0.0, 1.0, 1e9, 290.0), precondition_error);
  EXPECT_THROW(j.record_interval(10.0, -0.1, 1e9, 290.0), precondition_error);
  EXPECT_THROW(j.record_interval(10.0, 2.0, 1e9, 290.0), precondition_error);
}

TEST(Job, FinishRequiresRunning) {
  Job j(spec(), &app());
  EXPECT_THROW(j.finish(1.0), precondition_error);
  j.start(0.0, {0, 1});
  j.finish(5.0);
  EXPECT_THROW(j.finish(6.0), precondition_error);
}

TEST(Job, RuntimeRequiresFinished) {
  Job j(spec(), &app());
  EXPECT_THROW(j.runtime_s(), precondition_error);
}

TEST(Job, RemainingNodeHours) {
  Job j(spec(1, 4, 3600.0), &app());
  j.start(0.0, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(j.remaining_node_hours(), 4.0);
  j.record_interval(1800.0, 1.0, 1e9, 290.0);
  EXPECT_DOUBLE_EQ(j.remaining_node_hours(), 2.0);
}

TEST(Job, PhaseAdvancesWithProgressNotWallTime) {
  // ASPA phases are 240 s each; at half speed the first phase lasts 480 s of
  // wall time but only 240 s of progress.
  Job j(spec(1, 2, 10000.0), &app());
  j.start(0.0, {0, 1});
  EXPECT_EQ(j.current_phase(), 0u);
  j.record_interval(400.0, 0.5, 1e9, 100.0);  // progress 200 s
  EXPECT_EQ(j.current_phase(), 0u);
  j.record_interval(400.0, 0.5, 1e9, 100.0);  // progress 400 s
  EXPECT_EQ(j.current_phase(), 1u);
}

TEST(Job, PhaseOffsetShiftsStartingPhase) {
  auto s = spec(1, 2, 10000.0);
  s.phase_offset_s = 250.0;  // inside ASPA's second phase
  Job j(s, &app());
  j.start(0.0, {0, 1});
  EXPECT_EQ(j.current_phase(), 1u);
}

TEST(Job, StateToString) {
  EXPECT_EQ(to_string(JobState::kQueued), "queued");
  EXPECT_EQ(to_string(JobState::kRunning), "running");
  EXPECT_EQ(to_string(JobState::kFinished), "finished");
}

}  // namespace
}  // namespace perq::sched
