// Randomized properties of the backfill core, seed-deterministic via
// perq::Rng (no test-framework RNG, so failures replay exactly).
//
//  * kEasy never delays the blocked head's reservation: replaying any
//    random workload, the head must start no later than the shadow time
//    quoted when it first blocked (estimates are upper bounds, so backfill
//    that respects them can only leave the head where it was -- or better).
//  * kAggressive with the head-bypass guard armed cannot starve the head:
//    after at most `max_head_bypass` bypassing passes, backfill is
//    suspended and the head drains to the front of the machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/catalog.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace perq::sched {
namespace {

struct RandomWorkload {
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<Job*> queue;
};

RandomWorkload make_workload(Rng& rng, std::size_t machine_nodes,
                             std::size_t job_count) {
  RandomWorkload w;
  for (std::size_t i = 0; i < job_count; ++i) {
    trace::JobSpec s;
    s.id = static_cast<int>(i);
    s.nodes = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(machine_nodes)));
    s.runtime_ref_s = 60.0 * static_cast<double>(rng.uniform_int(1, 240));
    // Estimates are inflated upper bounds, as the trace synthesizer makes.
    s.walltime_est_s = s.runtime_ref_s * (1.0 + rng.uniform());
    s.app_index = 0;
    w.jobs.push_back(std::make_unique<Job>(s, &apps::find_app("ASPA")));
    w.queue.push_back(w.jobs.back().get());
  }
  return w;
}

/// Replays one random workload through a scheduler at full perf (caps off),
/// in fixed steps. Returns per-job start times indexed by job id.
/// `mode`/`max_head_bypass` configure the scheduler; when `easy_check` is
/// set, the head's quoted shadow time is asserted as an upper bound on its
/// actual start.
std::vector<double> replay(Rng& rng, BackfillMode mode,
                           std::size_t max_head_bypass, bool easy_check) {
  constexpr std::size_t kMachine = 32;
  constexpr double kStep = 30.0;

  sim::ClusterConfig ccfg;
  ccfg.worst_case_nodes = kMachine;
  ccfg.over_provision_factor = 1.0;
  sim::Cluster cluster(ccfg);

  RandomWorkload w = make_workload(rng, kMachine, 40);
  Scheduler sched(/*backfill_window=*/16, mode, max_head_bypass);
  for (Job* j : w.queue) sched.enqueue(j);

  std::vector<double> starts(w.jobs.size(), -1.0);
  std::vector<Job*> running;
  // Promise made to the currently blocked head: (job id, shadow bound).
  int promised_head = -1;
  double promised_time = -1.0;

  double now = 0.0;
  while ((!sched.queue_empty() || !running.empty()) && now < 1e7) {
    const Job* head_before = sched.head();
    auto started = sched.schedule(cluster, now, &running);
    for (Job* j : started) {
      running.push_back(j);
      starts[static_cast<std::size_t>(j->spec().id)] = now;
      if (easy_check && j->spec().id == promised_head) {
        // The core EASY invariant: backfill never pushed the head past the
        // reservation it was quoted when it first blocked.
        EXPECT_LE(now, promised_time)
            << "head " << promised_head << " delayed past its reservation";
        promised_head = -1;
      }
    }
    if (easy_check && sched.head() != nullptr &&
        sched.last_shadow_time() >= 0.0) {
      const int head_id = sched.head()->spec().id;
      if (head_id != promised_head) {  // head changed: record its first quote
        promised_head = head_id;
        promised_time = sched.last_shadow_time();
      }
      // A later quote for the same head may only move earlier (or hold).
      EXPECT_LE(sched.last_shadow_time(), promised_time + 1e-9);
      promised_time = std::min(promised_time, sched.last_shadow_time());
    }
    (void)head_before;

    now += kStep;
    // Full-power physics: progress == wall time.
    for (auto it = running.begin(); it != running.end();) {
      Job* j = *it;
      j->record_interval(kStep, 1.0, 1.0, 290.0);
      if (j->work_complete()) {
        const std::vector<std::size_t> nodes = j->node_ids();
        j->finish(now);
        cluster.release(nodes);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  EXPECT_TRUE(sched.queue_empty()) << "workload did not drain";
  return starts;
}

TEST(BackfillPropertyTest, EasyNeverDelaysTheHeadReservation) {
  Rng rng(0xEA51B041DULL);
  for (int trial = 0; trial < 25; ++trial) {
    replay(rng, BackfillMode::kEasy, 0, /*easy_check=*/true);
  }
}

TEST(BackfillPropertyTest, EasyReplayIsSeedDeterministic) {
  Rng a(42), b(42);
  const auto sa = replay(a, BackfillMode::kEasy, 0, false);
  const auto sb = replay(b, BackfillMode::kEasy, 0, false);
  EXPECT_EQ(sa, sb);
}

TEST(BackfillPropertyTest, GuardedAggressiveDrainsEveryHead) {
  // Every random workload must drain (asserted inside replay) even with
  // aggressive backfill, because the guard bounds head bypassing.
  Rng rng(0x57A21ED0ULL);
  for (int trial = 0; trial < 10; ++trial) {
    replay(rng, BackfillMode::kAggressive, 3, false);
  }
}

TEST(StarvationGuardTest, CapsHeadBypassPassesAndResumesAfterHeadStarts) {
  sim::ClusterConfig ccfg;
  ccfg.worst_case_nodes = 8;
  ccfg.over_provision_factor = 1.0;
  sim::Cluster cluster(ccfg);

  auto make = [&](int id, std::size_t nodes) {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = 1000.0;
    s.app_index = 0;
    return std::make_unique<Job>(s, &apps::find_app("ASPA"));
  };

  std::vector<std::unique_ptr<Job>> jobs;
  Scheduler sched(/*backfill_window=*/64, BackfillMode::kAggressive,
                  /*max_head_bypass=*/2);

  jobs.push_back(make(0, 6));  // occupies 6 of 8
  sched.enqueue(jobs.back().get());
  jobs.push_back(make(1, 4));  // head: blocked (only 2 free)
  sched.enqueue(jobs.back().get());
  // An endless supply of 1-node fillers that would classically starve it.
  for (int i = 2; i < 10; ++i) {
    jobs.push_back(make(i, 1));
    sched.enqueue(jobs.back().get());
  }

  auto finish = [&](std::size_t idx, double now) {
    const std::vector<std::size_t> nodes = jobs[idx]->node_ids();
    jobs[idx]->finish(now);
    cluster.release(nodes);
  };

  // Pass 1: job0 starts FCFS (6 nodes), head job1 blocked (needs 4, 2
  // free), fillers take the remaining nodes -> first bypass.
  auto s0 = sched.schedule(cluster, 0.0);
  ASSERT_EQ(s0.size(), 3u);
  EXPECT_EQ(s0[0]->spec().id, 0);
  EXPECT_EQ(s0[1]->spec().id, 2);
  EXPECT_EQ(s0[2]->spec().id, 3);
  EXPECT_EQ(sched.head_bypass_passes(), 1u);
  EXPECT_FALSE(sched.backfill_suspended());

  // Pass 2: a filler's node frees up and another filler grabs it -> second
  // bypass, reaching the limit.
  finish(2, 5.0);
  auto s1 = sched.schedule(cluster, 10.0);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0]->spec().id, 4);
  EXPECT_EQ(sched.head_bypass_passes(), 2u);

  // Pass 3: another node frees up, but the guard is at its limit:
  // backfill is suspended and the node is held for the head.
  finish(3, 15.0);
  auto s2 = sched.schedule(cluster, 20.0);
  EXPECT_TRUE(s2.empty());
  EXPECT_TRUE(sched.backfill_suspended());
  EXPECT_EQ(cluster.free_count(), 1u);

  // Drain job 0 so the head fits; the head starts, the guard resets, and
  // backfill resumes behind it.
  finish(0, 30.0);
  auto s3 = sched.schedule(cluster, 30.0);
  ASSERT_FALSE(s3.empty());
  EXPECT_EQ(s3.front()->spec().id, 1);  // the head finally starts
  EXPECT_EQ(sched.head_bypass_passes(), 0u);
  EXPECT_FALSE(sched.backfill_suspended());
}

}  // namespace
}  // namespace perq::sched
