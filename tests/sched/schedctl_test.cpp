#include "sched/schedctl.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::sched {
namespace {

class SchedCtlTest : public ::testing::Test {
 protected:
  SchedCtlTest() : cluster_(make_cluster()) {}

  static sim::Cluster make_cluster() {
    sim::ClusterConfig cfg;
    cfg.worst_case_nodes = 16;
    cfg.over_provision_factor = 1.0;
    return sim::Cluster(cfg);
  }

  static trace::JobSpec spec(int id, std::size_t nodes, double runtime = 100.0,
                             double submit = 0.0, double estimate = 0.0) {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = runtime;
    s.walltime_est_s = estimate;
    s.submit_time_s = submit;
    s.app_index = 0;
    return s;
  }

  static const apps::AppModel* app() { return &apps::find_app("ASPA"); }

  sim::Cluster cluster_;
};

TEST_F(SchedCtlTest, DefaultPartitionCoversTheMachine) {
  SchedCtl ctl(SchedCtlConfig{}, 16);
  ASSERT_EQ(ctl.partitions().size(), 1u);
  EXPECT_EQ(ctl.partitions()[0].name(), "batch");
  EXPECT_EQ(ctl.partitions()[0].config().max_nodes, 16u);
  EXPECT_EQ(ctl.partitions()[0].config().max_job_nodes, 16u);
}

TEST_F(SchedCtlTest, LifecycleFiresHooksInOrder) {
  SchedCtl ctl(SchedCtlConfig{}, 16);
  std::vector<std::pair<JobEvent, int>> events;
  ctl.set_event_hook([&](JobEvent e, const JobRecord& r) {
    events.emplace_back(e, r.job->spec().id);
  });

  ASSERT_EQ(ctl.submit(spec(1, 4), app()), AdmitResult::kOk);
  auto started = ctl.schedule_pass(cluster_, 0.0);
  ASSERT_EQ(started.size(), 1u);
  ctl.complete(started[0], cluster_, 50.0);

  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], std::make_pair(JobEvent::kSubmitted, 1));
  EXPECT_EQ(events[1], std::make_pair(JobEvent::kEligible, 1));
  EXPECT_EQ(events[2], std::make_pair(JobEvent::kStarted, 1));
  EXPECT_EQ(events[3], std::make_pair(JobEvent::kFinished, 1));

  const JobRecord* rec = ctl.record(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->eligible_s, 0.0);
  EXPECT_EQ(rec->start_s, 0.0);
  EXPECT_EQ(rec->end_s, 50.0);
  EXPECT_EQ(ctl.finished(), 1u);
  EXPECT_EQ(cluster_.free_count(), 16u);
}

TEST_F(SchedCtlTest, SubmitTimeGatesEligibility) {
  SchedCtl ctl(SchedCtlConfig{}, 16);
  ASSERT_EQ(ctl.submit(spec(1, 4, 100.0, /*submit=*/30.0), app()),
            AdmitResult::kOk);
  EXPECT_EQ(ctl.next_submit_time(), 30.0);

  EXPECT_TRUE(ctl.schedule_pass(cluster_, 0.0).empty());
  EXPECT_EQ(ctl.pending(), 1u);

  auto started = ctl.schedule_pass(cluster_, 30.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(ctl.record(1)->eligible_s, 30.0);
}

TEST_F(SchedCtlTest, AdmissionEnforcesPartitionLimits) {
  PartitionConfig pc;
  pc.name = "small";
  pc.max_job_nodes = 4;
  pc.max_walltime_s = 3600.0;
  SchedCtlConfig cfg;
  cfg.partitions.push_back(pc);
  SchedCtl ctl(cfg, 16);

  EXPECT_EQ(ctl.submit(spec(1, 8), app(), "small"),
            AdmitResult::kTooManyNodes);
  EXPECT_EQ(ctl.submit(spec(2, 2, 100.0, 0.0, /*estimate=*/7200.0), app(),
                       "small"),
            AdmitResult::kWalltimeExceeded);
  EXPECT_EQ(ctl.submit(spec(3, 2, 100.0, 0.0, 1800.0), app(), "small"),
            AdmitResult::kOk);
  // Refused submissions leave no record behind.
  EXPECT_EQ(ctl.record(1), nullptr);
  EXPECT_EQ(ctl.record(2), nullptr);
  EXPECT_EQ(ctl.submitted(), 1u);
}

TEST_F(SchedCtlTest, HigherPriorityPartitionPlacesFirst) {
  PartitionConfig lo;
  lo.name = "batch";
  lo.priority = 0;
  PartitionConfig hi;
  hi.name = "urgent";
  hi.priority = 10;
  SchedCtlConfig cfg;
  cfg.partitions = {lo, hi};
  SchedCtl ctl(cfg, 16);

  // Both want 10 of 16 nodes; only the urgent one can start.
  ASSERT_EQ(ctl.submit(spec(1, 10), app(), "batch"), AdmitResult::kOk);
  ASSERT_EQ(ctl.submit(spec(2, 10), app(), "urgent"), AdmitResult::kOk);
  auto started = ctl.schedule_pass(cluster_, 0.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->spec().id, 2);
  EXPECT_EQ(ctl.queued(), 1u);
}

TEST_F(SchedCtlTest, ConcurrentNodeCeilingBoundsAPartition) {
  PartitionConfig pc;
  pc.name = "capped";
  pc.max_nodes = 8;
  SchedCtlConfig cfg;
  cfg.partitions.push_back(pc);
  SchedCtl ctl(cfg, 16);

  ASSERT_EQ(ctl.submit(spec(1, 6), app()), AdmitResult::kOk);
  ASSERT_EQ(ctl.submit(spec(2, 6), app()), AdmitResult::kOk);
  auto started = ctl.schedule_pass(cluster_, 0.0);
  // 6 + 6 > 8: the second job must wait even though the machine has room.
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(ctl.partitions()[0].nodes_in_use(), 6u);
  EXPECT_EQ(ctl.queued(), 1u);

  ctl.complete(started[0], cluster_, 100.0);
  auto second = ctl.schedule_pass(cluster_, 100.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0]->spec().id, 2);
}

TEST_F(SchedCtlTest, CancelWorksInEveryLiveState) {
  SchedCtl ctl(SchedCtlConfig{}, 16);
  ASSERT_EQ(ctl.submit(spec(1, 20), app()), AdmitResult::kTooManyNodes);
  ASSERT_EQ(ctl.submit(spec(2, 16), app()), AdmitResult::kOk);       // will run
  ASSERT_EQ(ctl.submit(spec(3, 16), app()), AdmitResult::kOk);       // queued
  ASSERT_EQ(ctl.submit(spec(4, 1, 100.0, 500.0), app()), AdmitResult::kOk);

  auto started = ctl.schedule_pass(cluster_, 0.0);
  ASSERT_EQ(started.size(), 1u);

  EXPECT_TRUE(ctl.cancel(3, cluster_, 10.0));   // eligible, queued
  EXPECT_TRUE(ctl.cancel(2, cluster_, 10.0));   // running
  EXPECT_TRUE(ctl.cancel(4, cluster_, 10.0));   // still pending
  EXPECT_FALSE(ctl.cancel(2, cluster_, 11.0));  // already ended
  EXPECT_FALSE(ctl.cancel(99, cluster_, 11.0)); // unknown

  EXPECT_EQ(ctl.cancelled(), 3u);
  EXPECT_EQ(ctl.running(), 0u);
  EXPECT_EQ(cluster_.free_count(), 16u);

  // The pending cancel is lazily skipped when its submit time comes due.
  EXPECT_TRUE(ctl.schedule_pass(cluster_, 500.0).empty());
  EXPECT_EQ(ctl.queued(), 0u);
}

TEST_F(SchedCtlTest, RequeueDiscardsProgressAndKeepsFirstStart) {
  SchedCtl ctl(SchedCtlConfig{}, 16);
  ASSERT_EQ(ctl.submit(spec(1, 4), app()), AdmitResult::kOk);
  auto started = ctl.schedule_pass(cluster_, 0.0);
  ASSERT_EQ(started.size(), 1u);
  Job* job = started[0];
  job->record_interval(40.0, 1.0, 1.0, 100.0);

  ASSERT_TRUE(ctl.requeue(1, cluster_, 60.0));
  EXPECT_EQ(job->state(), JobState::kQueued);
  EXPECT_EQ(job->progress_s(), 0.0);
  EXPECT_EQ(cluster_.free_count(), 16u);
  EXPECT_EQ(ctl.record(1)->requeues, 1u);

  auto again = ctl.schedule_pass(cluster_, 120.0);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], job);
  EXPECT_EQ(ctl.record(1)->start_s, 0.0);  // first start is preserved
  EXPECT_FALSE(ctl.requeue(2, cluster_, 130.0));
}

TEST_F(SchedCtlTest, DuplicateIdsAndUnknownPartitionsAreRejected) {
  SchedCtl ctl(SchedCtlConfig{}, 16);
  ASSERT_EQ(ctl.submit(spec(1, 2), app()), AdmitResult::kOk);
  EXPECT_THROW(ctl.submit(spec(1, 2), app()), perq::precondition_error);
  EXPECT_THROW(ctl.submit(spec(2, 2), app(), "nope"), perq::precondition_error);
  SchedCtlConfig dup;
  dup.partitions = {PartitionConfig{}, PartitionConfig{}};
  EXPECT_THROW(SchedCtl(dup, 16), perq::precondition_error);
}

}  // namespace
}  // namespace perq::sched
