#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::sched {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : cluster_(make_cluster()) {}

  static sim::Cluster make_cluster() {
    sim::ClusterConfig cfg;
    cfg.worst_case_nodes = 8;
    cfg.over_provision_factor = 1.0;
    return sim::Cluster(cfg);
  }

  Job* add_job(int id, std::size_t nodes) {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = 100.0;
    s.app_index = 0;
    jobs_.push_back(std::make_unique<Job>(s, &apps::find_app("ASPA")));
    return jobs_.back().get();
  }

  sim::Cluster cluster_;
  std::vector<std::unique_ptr<Job>> jobs_;
};

TEST_F(SchedulerTest, StartsFcfsPrefixThatFits) {
  Scheduler sched;
  sched.enqueue(add_job(0, 4));
  sched.enqueue(add_job(1, 3));
  sched.enqueue(add_job(2, 2));  // 4+3 fit in 8; 2 does not (1 free)
  auto started = sched.schedule(cluster_, 0.0);
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[0]->spec().id, 0);
  EXPECT_EQ(started[1]->spec().id, 1);
  EXPECT_EQ(cluster_.free_count(), 1u);
  EXPECT_EQ(sched.queued_count(), 1u);
}

TEST_F(SchedulerTest, BackfillsSmallerJobsBehindBlockedHead) {
  Scheduler sched;
  sched.enqueue(add_job(0, 6));
  sched.enqueue(add_job(1, 6));  // blocked: only 2 free after job 0
  sched.enqueue(add_job(2, 2));  // backfills
  auto started = sched.schedule(cluster_, 0.0);
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[0]->spec().id, 0);
  EXPECT_EQ(started[1]->spec().id, 2);
  EXPECT_EQ(cluster_.free_count(), 0u);
  // Head remains queued in order.
  EXPECT_EQ(sched.queued_count(), 1u);
}

TEST_F(SchedulerTest, PureFcfsWhenBackfillDisabled) {
  Scheduler sched(0);
  sched.enqueue(add_job(0, 6));
  sched.enqueue(add_job(1, 6));
  sched.enqueue(add_job(2, 2));
  auto started = sched.schedule(cluster_, 0.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->spec().id, 0);
  EXPECT_EQ(cluster_.free_count(), 2u);  // job 2 not backfilled
}

TEST_F(SchedulerTest, BackfillWindowLimitsLookahead) {
  Scheduler sched(1);  // examine only one job past the head
  sched.enqueue(add_job(0, 8));
  auto first = sched.schedule(cluster_, 0.0);
  ASSERT_EQ(first.size(), 1u);  // fills the machine
  sched.enqueue(add_job(1, 8));  // blocked head
  sched.enqueue(add_job(2, 8));  // within window but does not fit
  sched.enqueue(add_job(3, 8));  // outside window
  auto started = sched.schedule(cluster_, 1.0);
  EXPECT_TRUE(started.empty());
  EXPECT_EQ(sched.queued_count(), 3u);
}

TEST_F(SchedulerTest, HeadStartsWhenNodesFree) {
  Scheduler sched;
  Job* big = add_job(0, 8);
  sched.enqueue(big);
  auto started = sched.schedule(cluster_, 0.0);
  ASSERT_EQ(started.size(), 1u);
  // Machine is now full; next job queues.
  sched.enqueue(add_job(1, 1));
  EXPECT_TRUE(sched.schedule(cluster_, 1.0).empty());
  // Free the machine; the queued job starts.
  auto nodes = big->node_ids();
  big->record_interval(100.0, 1.0, 1e9, 290.0);
  big->finish(2.0);
  cluster_.release(nodes);
  auto next = sched.schedule(cluster_, 3.0);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0]->spec().id, 1);
}

TEST_F(SchedulerTest, ManySmallJobsFillMachine) {
  Scheduler sched;
  for (int i = 0; i < 20; ++i) sched.enqueue(add_job(i, 1));
  auto started = sched.schedule(cluster_, 0.0);
  EXPECT_EQ(started.size(), 8u);
  EXPECT_EQ(cluster_.free_count(), 0u);
  EXPECT_EQ(sched.queued_count(), 12u);
}

TEST_F(SchedulerTest, EnqueueValidation) {
  Scheduler sched;
  EXPECT_THROW(sched.enqueue(nullptr), precondition_error);
  Job* j = add_job(0, 1);
  j->start(0.0, cluster_.allocate(1));
  EXPECT_THROW(sched.enqueue(j), precondition_error);
}

TEST_F(SchedulerTest, StartedJobsHoldDistinctNodes) {
  Scheduler sched;
  for (int i = 0; i < 4; ++i) sched.enqueue(add_job(i, 2));
  auto started = sched.schedule(cluster_, 0.0);
  std::vector<std::size_t> all;
  for (auto* j : started) {
    all.insert(all.end(), j->node_ids().begin(), j->node_ids().end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), 8u);
}

class EasyTest : public SchedulerTest {
 protected:
  Job* add_timed_job(int id, std::size_t nodes, double runtime_s) {
    trace::JobSpec spec;
    spec.id = id;
    spec.nodes = nodes;
    spec.runtime_ref_s = runtime_s;
    spec.app_index = 0;
    jobs_.push_back(std::make_unique<Job>(spec, &apps::find_app("ASPA")));
    return jobs_.back().get();
  }
};

TEST_F(EasyTest, ShortJobBackfillsBeforeReservation) {
  Scheduler sched(64, BackfillMode::kEasy);
  // A 6-node job runs until t=1000; head needs 8 nodes -> reservation 1000.
  Job* runner = add_timed_job(0, 6, 1000.0);
  runner->start(0.0, cluster_.allocate(6));
  std::vector<Job*> running{runner};
  sched.enqueue(add_timed_job(1, 8, 500.0));   // blocked head
  sched.enqueue(add_timed_job(2, 2, 400.0));   // ends before 1000: allowed
  auto started = sched.schedule(cluster_, 100.0, &running);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->spec().id, 2);
  EXPECT_DOUBLE_EQ(sched.last_shadow_time(), 1000.0);
}

TEST_F(EasyTest, LongJobMustNotDelayReservation) {
  Scheduler sched(64, BackfillMode::kEasy);
  Job* runner = add_timed_job(0, 6, 1000.0);
  runner->start(0.0, cluster_.allocate(6));
  std::vector<Job*> running{runner};
  sched.enqueue(add_timed_job(1, 8, 500.0));    // blocked head, reservation 1000
  sched.enqueue(add_timed_job(2, 2, 5000.0));   // would run past 1000 on head nodes
  auto started = sched.schedule(cluster_, 100.0, &running);
  EXPECT_TRUE(started.empty());
}

TEST_F(EasyTest, LongJobOnSurplusNodesIsAllowed) {
  Scheduler sched(64, BackfillMode::kEasy);
  // Runner holds 6 nodes until t=1000; head needs only 4 of the 8 that will
  // be free then -> 4 surplus nodes exist for arbitrarily long backfill.
  Job* runner = add_timed_job(0, 6, 1000.0);
  runner->start(0.0, cluster_.allocate(6));
  std::vector<Job*> running{runner};
  sched.enqueue(add_timed_job(1, 4, 500.0));
  // Head does not fit? 2 free now < 4... it is blocked. Candidate: 2 nodes,
  // very long, fits inside the 8 - 4 = 4 surplus at the shadow time.
  sched.enqueue(add_timed_job(2, 2, 50000.0));
  auto started = sched.schedule(cluster_, 100.0, &running);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0]->spec().id, 2);
}

TEST_F(EasyTest, RequiresRunningList) {
  Scheduler sched(64, BackfillMode::kEasy);
  Job* runner = add_timed_job(0, 8, 1000.0);
  runner->start(0.0, cluster_.allocate(8));
  sched.enqueue(add_timed_job(1, 4, 100.0));
  sched.enqueue(add_timed_job(2, 4, 100.0));
  EXPECT_THROW(sched.schedule(cluster_, 0.0, nullptr), precondition_error);
}

TEST_F(EasyTest, AggressiveStartsWhatEasyBlocks) {
  // Same scenario, two policies: aggressive backfills the long job, EASY
  // refuses it.
  for (auto mode : {BackfillMode::kAggressive, BackfillMode::kEasy}) {
    sim::Cluster cluster = make_cluster();
    Scheduler sched(64, mode);
    Job* runner = add_timed_job(100 + static_cast<int>(mode), 6, 1000.0);
    runner->start(0.0, cluster.allocate(6));
    std::vector<Job*> running{runner};
    Job* head = add_timed_job(200 + static_cast<int>(mode), 8, 500.0);
    Job* longjob = add_timed_job(300 + static_cast<int>(mode), 2, 9000.0);
    sched.enqueue(head);
    sched.enqueue(longjob);
    auto started = sched.schedule(cluster, 10.0, &running);
    if (mode == BackfillMode::kAggressive) {
      EXPECT_EQ(started.size(), 1u);
    } else {
      EXPECT_TRUE(started.empty());
    }
  }
}

}  // namespace
}  // namespace perq::sched
