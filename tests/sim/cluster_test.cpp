#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace perq::sim {
namespace {

ClusterConfig small_config(double f = 2.0) {
  ClusterConfig cfg;
  cfg.worst_case_nodes = 8;
  cfg.over_provision_factor = f;
  cfg.seed = 1;
  return cfg;
}

TEST(ClusterConfig, SizingMath) {
  auto cfg = small_config(1.5);
  EXPECT_EQ(cfg.total_nodes(), 12u);
  EXPECT_DOUBLE_EQ(cfg.power_budget_w(), 8 * 290.0);
}

TEST(ClusterConfig, RoundsNodeCount) {
  auto cfg = small_config(1.3);  // 10.4 -> 10
  EXPECT_EQ(cfg.total_nodes(), 10u);
}

TEST(Cluster, ConstructionInvariants) {
  Cluster c(small_config());
  EXPECT_EQ(c.size(), 16u);
  EXPECT_EQ(c.worst_case_nodes(), 8u);
  EXPECT_EQ(c.free_count(), 16u);
  EXPECT_DOUBLE_EQ(c.power_budget_w(), 8 * 290.0);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_FALSE(c.is_busy(i));
}

TEST(Cluster, RejectsBadConfig) {
  auto cfg = small_config();
  cfg.worst_case_nodes = 0;
  EXPECT_THROW(Cluster c(cfg), precondition_error);
  cfg = small_config(0.5);
  EXPECT_THROW(Cluster c(cfg), precondition_error);
}

TEST(Cluster, AllocateAndRelease) {
  Cluster c(small_config());
  auto ids = c.allocate(5);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(c.free_count(), 11u);
  for (auto id : ids) EXPECT_TRUE(c.is_busy(id));
  c.release(ids);
  EXPECT_EQ(c.free_count(), 16u);
  for (auto id : ids) EXPECT_FALSE(c.is_busy(id));
}

TEST(Cluster, AllocationIsAllOrNothing) {
  Cluster c(small_config());
  auto a = c.allocate(10);
  EXPECT_EQ(a.size(), 10u);
  auto b = c.allocate(7);  // only 6 free
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.free_count(), 6u);
  auto d = c.allocate(6);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(c.free_count(), 0u);
}

TEST(Cluster, AllocateRejectsZero) {
  Cluster c(small_config());
  EXPECT_THROW(c.allocate(0), precondition_error);
}

TEST(Cluster, DoubleReleaseRejected) {
  Cluster c(small_config());
  auto ids = c.allocate(2);
  c.release(ids);
  EXPECT_THROW(c.release(ids), precondition_error);
}

TEST(Cluster, AllocatedIdsAreUnique) {
  Cluster c(small_config());
  auto a = c.allocate(8);
  auto b = c.allocate(8);
  std::vector<std::size_t> all(a);
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(Cluster, ReleasedNodeCapResetsToFloor) {
  Cluster c(small_config());
  auto ids = c.allocate(1);
  c.node(ids[0]).set_cap(290.0);
  c.release(ids);
  EXPECT_DOUBLE_EQ(c.node(ids[0]).target_cap(), apps::node_power_spec().cap_min);
}

TEST(Cluster, CommittedPowerAccountsBusyAndIdle) {
  Cluster c(small_config());
  const auto& spec = apps::node_power_spec();
  // All free: 16 nodes at idle.
  EXPECT_DOUBLE_EQ(c.committed_power_w(), 16 * spec.idle);
  auto ids = c.allocate(4);
  for (auto id : ids) c.node(id).set_cap(200.0);
  EXPECT_DOUBLE_EQ(c.committed_power_w(), 4 * 200.0 + 12 * spec.idle);
}

TEST(Cluster, BudgetForBusyNodesReservesIdleFloor) {
  Cluster c(small_config());
  const auto& spec = apps::node_power_spec();
  EXPECT_DOUBLE_EQ(c.budget_for_busy_nodes_w(),
                   c.power_budget_w() - 16 * spec.idle);
  c.allocate(16);
  EXPECT_DOUBLE_EQ(c.budget_for_busy_nodes_w(), c.power_budget_w());
}

TEST(Cluster, StepIdleNodesReturnsTotalIdleDraw) {
  Cluster c(small_config());
  c.allocate(6);
  const double draw = c.step_idle_nodes(10.0);
  EXPECT_DOUBLE_EQ(draw, 10 * apps::node_power_spec().idle);
}

TEST(Cluster, NodeAccessBoundsChecked) {
  Cluster c(small_config());
  EXPECT_NO_THROW(c.node(15));
  EXPECT_THROW(c.node(16), precondition_error);
  EXPECT_THROW(c.is_busy(99), precondition_error);
}

TEST(Cluster, WorstCaseProvisioningHasNoExtraNodes) {
  Cluster c(small_config(1.0));
  EXPECT_EQ(c.size(), c.worst_case_nodes());
  // At f=1 every node can run at TDP within budget.
  c.allocate(8);
  EXPECT_GE(c.budget_for_busy_nodes_w(), 8 * 290.0 - 1e-9);
}

}  // namespace
}  // namespace perq::sim
