#include "sim/node.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/catalog.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace perq::sim {
namespace {

Node make_node(std::uint64_t seed = 1, NodeConfig cfg = {}) {
  return Node(0, Rng(seed), cfg);
}

TEST(Node, StartsAtTdp) {
  auto n = make_node();
  EXPECT_DOUBLE_EQ(n.target_cap(), 290.0);
  EXPECT_DOUBLE_EQ(n.effective_cap(), 290.0);
}

TEST(Node, SetCapClampsToRange) {
  auto n = make_node();
  n.set_cap(10.0);
  EXPECT_DOUBLE_EQ(n.target_cap(), 90.0);
  n.set_cap(1000.0);
  EXPECT_DOUBLE_EQ(n.target_cap(), 290.0);
  n.set_cap(150.0);
  EXPECT_DOUBLE_EQ(n.target_cap(), 150.0);
}

TEST(Node, CapActuationLagsFirstOrder) {
  NodeConfig cfg;
  cfg.cap_lag_tau_s = 10.0;
  cfg.ips_noise_sigma = 0.0;
  auto n = make_node(1, cfg);
  n.set_cap(90.0);
  // After one tau, ~63% of the step should be applied.
  n.step_idle(10.0);
  const double expect = 90.0 + (290.0 - 90.0) * std::exp(-1.0);
  EXPECT_NEAR(n.effective_cap(), expect, 1e-9);
  // Converges eventually.
  for (int i = 0; i < 20; ++i) n.step_idle(10.0);
  EXPECT_NEAR(n.effective_cap(), 90.0, 0.1);
}

TEST(Node, ZeroLagActsInstantly) {
  NodeConfig cfg;
  cfg.cap_lag_tau_s = 0.0;
  auto n = make_node(1, cfg);
  n.set_cap(120.0);
  n.step_idle(10.0);
  EXPECT_DOUBLE_EQ(n.effective_cap(), 120.0);
}

TEST(Node, IdleStepDrawsIdlePowerAndNoIps) {
  auto n = make_node();
  const auto s = n.step_idle(10.0);
  EXPECT_DOUBLE_EQ(s.ips, 0.0);
  EXPECT_DOUBLE_EQ(s.power_w, apps::node_power_spec().idle);
}

TEST(Node, BusyStepReportsAppIps) {
  NodeConfig cfg;
  cfg.ips_noise_sigma = 0.0;
  cfg.cap_lag_tau_s = 0.0;
  auto n = make_node(1, cfg);
  const auto& app = apps::find_app("ASPA");
  n.set_cap(290.0);
  const auto s = n.step_busy(10.0, app, 0);
  EXPECT_NEAR(s.ips, app.node_ips(290.0, 0), 1e-6);
  EXPECT_NEAR(s.power_w, app.power_draw_w(290.0, 0), 1e-9);
}

TEST(Node, DrawNeverExceedsEffectiveCap) {
  auto n = make_node(3);
  const auto& app = apps::find_app("SimpleMOC");
  n.set_cap(150.0);
  for (int i = 0; i < 50; ++i) {
    const auto s = n.step_busy(10.0, app, 0);
    EXPECT_LE(s.power_w, std::max(n.effective_cap(), apps::node_power_spec().idle) + 1e-9);
  }
}

TEST(Node, NoiseHasConfiguredMagnitude) {
  NodeConfig cfg;
  cfg.ips_noise_sigma = 0.02;
  cfg.cap_lag_tau_s = 0.0;
  auto n = make_node(5, cfg);
  const auto& app = apps::find_app("CoMD");
  const double truth = app.node_ips(200.0, 0);
  n.set_cap(200.0);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(n.step_busy(10.0, app, 0).ips);
  EXPECT_NEAR(stats.mean(), truth, 0.005 * truth);
  EXPECT_NEAR(stats.stddev() / truth, 0.02, 0.005);
}

TEST(Node, NoiseFloorPreventsNegativeIps) {
  NodeConfig cfg;
  cfg.ips_noise_sigma = 2.0;  // absurdly noisy
  auto n = make_node(6, cfg);
  const auto& app = apps::find_app("CoMD");
  for (int i = 0; i < 200; ++i) {
    EXPECT_GT(n.step_busy(10.0, app, 0).ips, 0.0);
  }
}

TEST(Node, DifferentSeedsGiveDifferentNoise) {
  NodeConfig cfg;
  cfg.ips_noise_sigma = 0.02;
  auto a = make_node(7, cfg);
  auto b = make_node(8, cfg);
  const auto& app = apps::find_app("CoMD");
  EXPECT_NE(a.step_busy(10.0, app, 0).ips, b.step_busy(10.0, app, 0).ips);
}

TEST(Node, RejectsNonPositiveDt) {
  auto n = make_node();
  EXPECT_THROW(n.step_idle(0.0), precondition_error);
  EXPECT_THROW(n.step_busy(-1.0, apps::find_app("ASPA"), 0), precondition_error);
}

TEST(Node, RejectsBadConfig) {
  NodeConfig cfg;
  cfg.cap_lag_tau_s = -1.0;
  EXPECT_THROW(Node(0, Rng(1), cfg), precondition_error);
  cfg = NodeConfig{};
  cfg.ips_noise_sigma = -0.1;
  EXPECT_THROW(Node(0, Rng(1), cfg), precondition_error);
}

TEST(Node, PerfFractionUsesEffectiveCap) {
  NodeConfig cfg;
  cfg.cap_lag_tau_s = 0.0;
  cfg.ips_noise_sigma = 0.0;
  auto n = make_node(1, cfg);
  const auto& app = apps::find_app("SimpleMOC");
  n.set_cap(150.0);
  n.step_idle(10.0);
  EXPECT_NEAR(n.perf_fraction(app, 0), app.perf_fraction(150.0, 0), 1e-12);
}

TEST(Node, NoVariabilityByDefault) {
  auto n = make_node(31);
  EXPECT_DOUBLE_EQ(n.perf_scale(), 1.0);
}

TEST(Node, VariabilityGivesFixedPerNodeMultiplier) {
  NodeConfig cfg;
  cfg.perf_variability_sigma = 0.05;
  cfg.ips_noise_sigma = 0.0;
  cfg.cap_lag_tau_s = 0.0;
  auto n = Node(0, Rng(41), cfg);
  EXPECT_GE(n.perf_scale(), 0.85);
  EXPECT_LE(n.perf_scale(), 1.15);
  // The multiplier is constant over the node's life and scales its IPS.
  const auto& app = apps::find_app("CoMD");
  const double scale = n.perf_scale();
  for (int i = 0; i < 5; ++i) {
    const auto s = n.step_busy(10.0, app, 0);
    EXPECT_NEAR(s.ips, app.node_ips(290.0, 0) * scale, 1e-6);
    EXPECT_DOUBLE_EQ(n.perf_scale(), scale);
  }
  EXPECT_NEAR(n.perf_fraction(app, 0), scale, 1e-12);
}

TEST(Node, VariabilityDiffersAcrossNodes) {
  NodeConfig cfg;
  cfg.perf_variability_sigma = 0.05;
  Rng seeder(5);
  double lo = 2.0, hi = 0.0;
  for (int i = 0; i < 32; ++i) {
    Node n(static_cast<std::size_t>(i), seeder.split(), cfg);
    lo = std::min(lo, n.perf_scale());
    hi = std::max(hi, n.perf_scale());
  }
  EXPECT_LT(lo, 0.99);
  EXPECT_GT(hi, 1.01);
}

TEST(Node, VariabilityRejectsNegativeSigma) {
  NodeConfig cfg;
  cfg.perf_variability_sigma = -0.1;
  EXPECT_THROW(Node(0, Rng(1), cfg), precondition_error);
}

}  // namespace
}  // namespace perq::sim
