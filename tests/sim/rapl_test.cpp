#include "sim/rapl.hpp"

#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "sim/node.hpp"
#include "util/require.hpp"

namespace perq::sim {
namespace {

TEST(Rapl, UnitConversion) {
  RaplEnergyCounter c;
  c.accumulate_joules(1.0);
  EXPECT_EQ(c.read_raw(), 65536u);  // 2^16 counts per joule
  EXPECT_NEAR(c.energy_since_joules(0), 1.0, 1e-9);
}

TEST(Rapl, AccumulatesAcrossCalls) {
  RaplEnergyCounter c;
  for (int i = 0; i < 10; ++i) c.accumulate_joules(0.5);
  EXPECT_NEAR(c.energy_since_joules(0), 5.0, 1e-9);
  EXPECT_NEAR(c.lifetime_joules(), 5.0, 1e-12);
}

TEST(Rapl, SubCountResidualIsNotLost) {
  RaplEnergyCounter c;
  // Each increment is less than one count (~15.3 uJ).
  for (int i = 0; i < 100000; ++i) c.accumulate_joules(1e-5);
  EXPECT_NEAR(c.energy_since_joules(0), 1.0, 1e-3);
}

TEST(Rapl, WraparoundCorrectedDelta) {
  RaplEnergyCounter c;
  // Push the register close to its 2^32 limit: 2^32 counts = 65536 J.
  c.accumulate_joules(65530.0);
  const std::uint32_t before = c.read_raw();
  c.accumulate_joules(10.0);  // wraps
  EXPECT_LT(c.read_raw(), before);  // the raw register wrapped...
  EXPECT_NEAR(c.energy_since_joules(before), 10.0, 1e-6);  // ...delta survives
}

TEST(Rapl, AveragePowerEstimation) {
  RaplEnergyCounter c;
  const std::uint32_t before = c.read_raw();
  c.accumulate_joules(145.0 * 10.0);  // 145 W for 10 s
  EXPECT_NEAR(c.average_power_w(before, 10.0), 145.0, 1e-6);
}

TEST(Rapl, Validation) {
  RaplEnergyCounter c;
  EXPECT_THROW(c.accumulate_joules(-1.0), precondition_error);
  EXPECT_THROW(c.average_power_w(0, 0.0), precondition_error);
}

TEST(Rapl, NodeFeedsItsCounter) {
  Node node(0, Rng(1));
  const auto& app = apps::find_app("CoMD");
  const std::uint32_t before = node.rapl().read_raw();
  double energy = 0.0;
  for (int i = 0; i < 30; ++i) energy += node.step_busy(10.0, app, 0).power_w * 10.0;
  EXPECT_NEAR(node.rapl().energy_since_joules(before), energy, 0.01);
  // Power read back through the RAPL interface matches the draw.
  EXPECT_NEAR(node.rapl().average_power_w(before, 300.0), energy / 300.0, 0.01);
}

TEST(Rapl, IdleNodeDrawsIdlePower) {
  Node node(0, Rng(2));
  const std::uint32_t before = node.rapl().read_raw();
  node.step_idle(100.0);
  EXPECT_NEAR(node.rapl().average_power_w(before, 100.0),
              apps::node_power_spec().idle, 1e-3);
}

}  // namespace
}  // namespace perq::sim
