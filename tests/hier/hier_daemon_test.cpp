// Hierarchical daemon tests: the K=1 arbiter-attached deployment is
// bit-identical to both the in-process engine and the monolithic daemon,
// K>1 deployments conserve grants and aggregate counters at the arbiter,
// and the controller<->arbiter wire exchange survives restarts (snapshot
// v3 carries the grant state).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <numeric>
#include <variant>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "daemon/snapshot.hpp"
#include "hier/experiment.hpp"
#include "net/loopback.hpp"

namespace perq::hier {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

std::vector<std::unique_ptr<core::PerqPolicy>> make_policies(
    const core::EngineConfig& cfg, std::size_t k) {
  std::vector<std::unique_ptr<core::PerqPolicy>> policies;
  for (std::size_t d = 0; d < k; ++d) {
    policies.push_back(std::make_unique<core::PerqPolicy>(
        &core::canonical_node_model(), cfg.worst_case_nodes,
        total_nodes(cfg)));
  }
  return policies;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job order at " << i;
    EXPECT_EQ(bits(a.finished[i].start_s), bits(b.finished[i].start_s));
    EXPECT_EQ(bits(a.finished[i].finish_s), bits(b.finished[i].finish_s));
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i].job_id, b.traces[i].job_id) << "trace row " << i;
    EXPECT_EQ(bits(a.traces[i].cap_w), bits(b.traces[i].cap_w))
        << "cap diverged at t=" << a.traces[i].t_s << " job "
        << a.traces[i].job_id;
    EXPECT_EQ(bits(a.traces[i].job_ips), bits(b.traces[i].job_ips));
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.peak_committed_w), bits(b.peak_committed_w));
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

TEST(HierDaemon, SingleDomainLoopbackMatchesInProcessBitForBit) {
  const auto cfg = small_cfg();

  core::PerqPolicy in_process(&core::canonical_node_model(),
                              cfg.worst_case_nodes, total_nodes(cfg));
  const auto direct = core::run_experiment(cfg, in_process);

  auto policies = make_policies(cfg, 1);
  const auto hier = run_hier_loopback_daemon_experiment(cfg, 1, policies);

  ASSERT_GT(direct.jobs_completed, 0u);
  expect_bit_identical(direct, hier.run);
  EXPECT_EQ(hier.run.policy_name, "PERQ");
  EXPECT_GT(hier.arbiter_decisions, 0u);
  ASSERT_EQ(hier.final_grants_w.size(), 1u);
}

TEST(HierDaemon, SingleDomainLoopbackMatchesMonolithicDaemonBitForBit) {
  const auto cfg = small_cfg();

  core::PerqPolicy mono(&core::canonical_node_model(), cfg.worst_case_nodes,
                        total_nodes(cfg));
  const auto via_daemon = daemon::run_loopback_daemon_experiment(cfg, mono, 1);

  auto policies = make_policies(cfg, 1);
  const auto hier = run_hier_loopback_daemon_experiment(cfg, 1, policies);
  expect_bit_identical(via_daemon, hier.run);
}

TEST(HierDaemon, TwoDomainDeploymentConservesGrantsAndAggregatesCounters) {
  const auto cfg = small_cfg();
  auto policies = make_policies(cfg, 2);
  const auto hier = run_hier_loopback_daemon_experiment(cfg, 2, policies);

  EXPECT_GT(hier.run.jobs_completed, 0u);
  EXPECT_EQ(hier.run.policy_name, "PERQ-HIER2");
  EXPECT_GT(hier.arbiter_decisions, 0u);

  ASSERT_EQ(hier.final_grants_w.size(), 2u);
  const double granted = std::accumulate(hier.final_grants_w.begin(),
                                         hier.final_grants_w.end(), 0.0);
  EXPECT_GE(granted, 0.0);
  // A clean loopback run fires no defenses anywhere; the aggregate across
  // both domains must agree.
  EXPECT_EQ(hier.aggregated_counters.frames_corrupt, 0u);
  EXPECT_EQ(hier.aggregated_counters.stale_transitions, 0u);
}

TEST(HierDaemon, ArbiterAggregatesReportedCountersAcrossDomains) {
  net::LoopbackTransport transport;
  ArbiterDaemon arbiter(transport.listen("arb"), 2);
  auto c0 = transport.connect("arb");
  auto c1 = transport.connect("arb");

  proto::DomainReport r0;
  r0.domain_id = 0;
  r0.domain_count = 2;
  r0.tick = 1;
  r0.busy_nodes = 4.0;
  r0.floor_w = 280.0;
  r0.capacity_w = 860.0;
  r0.cluster_budget_w = 1500.0;
  r0.frames_corrupt = 3;
  r0.solver_fallbacks = 1;
  proto::DomainReport r1 = r0;
  r1.domain_id = 1;
  r1.frames_corrupt = 2;
  r1.clamp_activations = 5;
  c0->send(r0);
  c1->send(r1);

  EXPECT_TRUE(arbiter.service());
  const core::RobustnessCounters agg = arbiter.aggregated_counters();
  EXPECT_EQ(agg.frames_corrupt, 5u);
  EXPECT_EQ(agg.solver_fallbacks, 2u);
  EXPECT_EQ(agg.clamp_activations, 5u);

  // Both live domains got a grant for the reported tick, within budget.
  const auto& grants = arbiter.grants_w();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_LE(grants[0] + grants[1], 1500.0 + 1e-6);
  EXPECT_GE(grants[0], 280.0 - 1e-6);  // floor respected
  bool got0 = false, got1 = false;
  for (const auto& m : c0->receive()) {
    if (const auto* g = std::get_if<proto::BudgetGrant>(&m)) {
      got0 = true;
      EXPECT_EQ(g->domain_id, 0u);
      EXPECT_EQ(g->tick, 1u);
    }
  }
  for (const auto& m : c1->receive()) {
    if (std::get_if<proto::BudgetGrant>(&m) != nullptr) got1 = true;
  }
  EXPECT_TRUE(got0);
  EXPECT_TRUE(got1);

  // A non-report frame on the arbiter link is screened and accounted.
  c0->send(proto::Hello{});
  arbiter.pump();
  EXPECT_EQ(arbiter.aggregated_counters().frames_corrupt, 6u);
}

TEST(HierDaemon, FourDomainsTwoAgentsEachRunsToCompletion) {
  const auto cfg = small_cfg();
  auto policies = make_policies(cfg, 4);
  const auto hier = run_hier_loopback_daemon_experiment(
      cfg, 4, policies, {}, {}, /*agents_per_domain=*/2);
  EXPECT_GT(hier.run.jobs_completed, 0u);
  EXPECT_GT(hier.arbiter_decisions, 0u);
  ASSERT_EQ(hier.final_grants_w.size(), 4u);
}

TEST(HierDaemon, SnapshotV3RoundTripsGrantState) {
  daemon::ControllerState s;
  s.current_tick = 41;
  s.last_decided_tick = 40;
  s.any_tick_seen = 1;
  s.any_decision = 1;
  s.any_grant = 1;
  s.granted_w = 4321.5;
  s.grant_tick = 41;
  const auto bytes = daemon::encode_snapshot(s);
  const auto back = daemon::decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->any_grant, 1);
  EXPECT_EQ(bits(back->granted_w), bits(4321.5));
  EXPECT_EQ(back->grant_tick, 41u);
}

}  // namespace
}  // namespace perq::hier
