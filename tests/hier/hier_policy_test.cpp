// HierarchicalPerqPolicy tests: the K=1 configuration is bit-identical to
// the monolithic PerqPolicy over a full experiment, and K>1 runs respect
// grant conservation, domain-local budget compliance (asserted inside the
// engine every tick via set_domain_grants), and counter aggregation.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "hier/experiment.hpp"
#include "hier/hier_policy.hpp"

namespace perq::hier {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job order at " << i;
    EXPECT_EQ(bits(a.finished[i].start_s), bits(b.finished[i].start_s));
    EXPECT_EQ(bits(a.finished[i].finish_s), bits(b.finished[i].finish_s));
    EXPECT_EQ(bits(a.finished[i].runtime_s), bits(b.finished[i].runtime_s));
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i].job_id, b.traces[i].job_id) << "trace row " << i;
    EXPECT_EQ(bits(a.traces[i].cap_w), bits(b.traces[i].cap_w))
        << "cap diverged at t=" << a.traces[i].t_s << " job "
        << a.traces[i].job_id;
    EXPECT_EQ(bits(a.traces[i].target_ips), bits(b.traces[i].target_ips));
    EXPECT_EQ(bits(a.traces[i].job_ips), bits(b.traces[i].job_ips));
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.peak_committed_w), bits(b.peak_committed_w));
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

TEST(HierPolicy, SingleDomainIsBitIdenticalToMonolithic) {
  const auto cfg = small_cfg();

  core::PerqPolicy mono(&core::canonical_node_model(), cfg.worst_case_nodes,
                        total_nodes(cfg));
  const auto direct = core::run_experiment(cfg, mono);

  HierConfig hcfg;
  hcfg.domains = 1;
  HierarchicalPerqPolicy hier(&core::canonical_node_model(),
                              cfg.worst_case_nodes, total_nodes(cfg), hcfg);
  const auto sharded = run_hier_experiment(cfg, hier);

  ASSERT_GT(direct.jobs_completed, 0u);
  ASSERT_FALSE(direct.traces.empty());
  EXPECT_EQ(hier.name(), "PERQ");
  expect_bit_identical(direct, sharded);
}

TEST(HierPolicy, FourDomainRunCompletesWithConservedGrants) {
  const auto cfg = small_cfg();
  HierConfig hcfg;
  hcfg.domains = 4;
  HierarchicalPerqPolicy hier(&core::canonical_node_model(),
                              cfg.worst_case_nodes, total_nodes(cfg), hcfg);
  // run_hier_experiment registers the grants with the engine every tick;
  // apply_caps PERQ_ASSERTs conservation (sum of grants within the cluster
  // row) and per-domain compliance, so completing at all is the property.
  const auto result = run_hier_experiment(cfg, hier);
  EXPECT_EQ(result.policy_name, "PERQ-HIER4");
  EXPECT_GT(result.jobs_completed, 0u);

  // Final-tick spot checks on the exposed arbiter state.
  const auto& grants = hier.last_grants_w();
  ASSERT_EQ(grants.size(), 4u);
  for (const double g : grants) EXPECT_GE(g, 0.0);
  EXPECT_FALSE(hier.last_demands().empty());
}

TEST(HierPolicy, ParallelAndSerialDomainSolvesMatchBitForBit) {
  const auto cfg = small_cfg();

  HierConfig serial;
  serial.domains = 4;
  serial.parallel = false;
  HierarchicalPerqPolicy a(&core::canonical_node_model(), cfg.worst_case_nodes,
                           total_nodes(cfg), serial);
  const auto ra = run_hier_experiment(cfg, a);

  HierConfig parallel;
  parallel.domains = 4;
  parallel.parallel = true;
  HierarchicalPerqPolicy b(&core::canonical_node_model(), cfg.worst_case_nodes,
                           total_nodes(cfg), parallel);
  const auto rb = run_hier_experiment(cfg, b);

  expect_bit_identical(ra, rb);
}

TEST(HierPolicy, CountersAggregateAcrossDomains) {
  const auto cfg = small_cfg();
  HierConfig hcfg;
  hcfg.domains = 3;
  HierarchicalPerqPolicy hier(&core::canonical_node_model(),
                              cfg.worst_case_nodes, total_nodes(cfg), hcfg);
  (void)run_hier_experiment(cfg, hier);
  core::RobustnessCounters sum;
  for (std::size_t d = 0; d < 3; ++d) sum += hier.domain_policy(d).counters();
  EXPECT_EQ(hier.counters().total(), sum.total());
  EXPECT_EQ(hier.counters().solver_fallbacks, sum.solver_fallbacks);
}

TEST(HierPolicy, DomainMapIsStableAndTotal) {
  const DomainMap map{4};
  for (int id = -9; id < 100; ++id) {
    const std::uint32_t d = map.of_job(id);
    EXPECT_LT(d, 4u);
    EXPECT_EQ(d, map.of_job(id));  // stable
  }
  const DomainMap mono{1};
  EXPECT_EQ(mono.of_job(12345), 0u);
  EXPECT_EQ(mono.of_job(-3), 0u);
}

}  // namespace
}  // namespace perq::hier
