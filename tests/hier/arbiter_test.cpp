// BudgetArbiter / water_fill property tests: conservation, floors, the
// K=1 exactness guarantee, determinism under randomized demands, and the
// held-grant fencing for silent domains.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "hier/arbiter.hpp"
#include "util/rng.hpp"

namespace perq::hier {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

/// Randomized but reproducible demand set: node counts, utilities (some
/// zero: slack budget rows), floors/capacities derived the way the policy
/// derives them (busy * cap_min, busy * tdp).
std::vector<DomainDemand> random_demands(Rng& rng, std::size_t n) {
  std::vector<DomainDemand> demands(n);
  for (std::size_t d = 0; d < n; ++d) {
    DomainDemand& dem = demands[d];
    dem.domain_id = static_cast<std::uint32_t>(d);
    dem.busy_nodes = static_cast<double>(rng.uniform_int(1, 64));
    dem.jobs = static_cast<std::size_t>(rng.uniform_int(1, 8));
    dem.floor_w = dem.busy_nodes * 70.0;
    dem.capacity_w = dem.busy_nodes * 215.0;
    dem.utility_per_w = rng.bernoulli(0.5) ? rng.uniform(0.0, 3.0) : 0.0;
    dem.committed_w = rng.uniform(dem.floor_w, dem.capacity_w);
    dem.achieved_ips = rng.uniform(0.0, 1e12);
    dem.target_ips = rng.uniform(0.0, 1e12);
  }
  return demands;
}

TEST(WaterFill, SingleDomainGetsBudgetExactly) {
  // Bit-for-bit, not approximately: this is the K=1 identity contract.
  for (const double budget : {0.0, 1.0, 12345.678, 1e7, 0.1 + 0.2}) {
    DomainDemand d;
    d.busy_nodes = 10.0;
    d.floor_w = 700.0;
    d.capacity_w = 2150.0;
    const auto grants = water_fill(budget, {d});
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(bits(grants[0]), bits(budget));
  }
}

TEST(WaterFill, ConservationAndFloorsUnderRandomDemands) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 9));
    const auto demands = random_demands(rng, n);
    double floor_sum = 0.0, capacity_sum = 0.0;
    for (const auto& d : demands) {
      floor_sum += d.floor_w;
      capacity_sum += d.capacity_w;
    }
    const double budget = rng.uniform(0.0, capacity_sum * 1.3);

    const auto grants = water_fill(budget, demands);
    ASSERT_EQ(grants.size(), n);

    // Conservation: never hand out more than the budget.
    EXPECT_LE(sum(grants), budget * (1.0 + 1e-9) + 1e-6) << "trial " << trial;

    for (std::size_t d = 0; d < n; ++d) {
      EXPECT_GE(grants[d], 0.0);
      // Capacity: watts beyond nj * TDP are unactuatable and never granted.
      EXPECT_LE(grants[d], demands[d].capacity_w * (1.0 + 1e-9) + 1e-6);
      // Floors hold whenever they are jointly feasible.
      if (floor_sum <= budget) {
        EXPECT_GE(grants[d], demands[d].floor_w * (1.0 - 1e-9) - 1e-6)
            << "trial " << trial << " domain " << d;
      }
    }

    // Work conservation: if demand can absorb the budget, it is spent.
    if (floor_sum <= budget && budget <= capacity_sum) {
      EXPECT_NEAR(sum(grants), budget, 1e-6 * std::max(1.0, budget))
          << "trial " << trial;
    }
  }
}

TEST(WaterFill, DeterministicAcrossCalls) {
  Rng rng(7);
  const auto demands = random_demands(rng, 6);
  const auto a = water_fill(54321.0, demands);
  const auto b = water_fill(54321.0, demands);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(bits(a[i]), bits(b[i]));
}

TEST(WaterFill, PermutingInsertionOrderYieldsIdenticalGrants) {
  // The allocation is a function of the demand *set*: internally the
  // demands run through the arithmetic in canonical domain_id order and
  // the grants scatter back, so any insertion order gives bit-identical
  // results. Nondeterminism here would compound through every level of a
  // recursive tree.
  Rng rng(512);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 9));
    const auto demands = random_demands(rng, n);
    double capacity_sum = 0.0;
    for (const auto& d : demands) capacity_sum += d.capacity_w;
    const double budget = rng.uniform(0.0, capacity_sum * 1.3);
    const auto baseline = water_fill(budget, demands);

    // Fisher-Yates off the shared Rng, tracking where each demand went.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(perm[i - 1], perm[j]);
    }
    std::vector<DomainDemand> shuffled(n);
    for (std::size_t k = 0; k < n; ++k) shuffled[k] = demands[perm[k]];

    const auto permuted = water_fill(budget, shuffled);
    ASSERT_EQ(permuted.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(bits(permuted[k]), bits(baseline[perm[k]]))
          << "trial " << trial << " position " << k;
    }
  }
}

TEST(WaterFill, SlaFloorLiftsThePhysicalFloor) {
  DomainDemand a, b;
  a.domain_id = 0;
  a.busy_nodes = b.busy_nodes = 10.0;
  a.floor_w = b.floor_w = 700.0;
  a.capacity_w = b.capacity_w = 2150.0;
  b.domain_id = 1;
  a.sla_floor_w = 1500.0;  // tenant guarantee above nj * P_min

  WaterFillStats stats;
  const double budget = 2400.0;
  const auto grants = water_fill(budget, {a, b}, &stats);
  // Floors become {1500, 700}; the 200 W head-room spreads node-
  // proportionally (equal busy, both utilities slack): 100 each.
  EXPECT_NEAR(grants[0], 1600.0, 1e-9);
  EXPECT_NEAR(grants[1], 800.0, 1e-9);
  EXPECT_EQ(stats.sla_floor_activations, 1u);
}

TEST(WaterFill, InfeasibleSlaFloorsScaleWithTheRest) {
  DomainDemand a, b;
  a.domain_id = 0;
  a.busy_nodes = b.busy_nodes = 10.0;
  a.floor_w = b.floor_w = 700.0;
  a.capacity_w = b.capacity_w = 2150.0;
  b.domain_id = 1;
  a.sla_floor_w = 1400.0;  // lifted floors need 2100: only half fits

  const double budget = 1050.0;
  const auto grants = water_fill(budget, {a, b});
  EXPECT_NEAR(grants[0], 700.0, 1e-9);
  EXPECT_NEAR(grants[1], 350.0, 1e-9);
  EXPECT_NEAR(sum(grants), budget, 1e-9);
}

TEST(WaterFill, PriorityWeightTiltsBothStages) {
  DomainDemand a, b;
  a.domain_id = 0;
  a.busy_nodes = b.busy_nodes = 10.0;
  a.floor_w = b.floor_w = 700.0;
  a.capacity_w = b.capacity_w = 2150.0;
  b.domain_id = 1;
  a.priority_weight = 2.0;

  // Stage 1 (both budget rows binding): equal demand, double priority --
  // domain 0 draws head-room twice as fast.
  a.utility_per_w = b.utility_per_w = 1.0;
  const auto constrained = water_fill(2400.0, {a, b});
  EXPECT_NEAR(constrained[0] - 700.0, 2.0 * (constrained[1] - 700.0), 1e-6);
  EXPECT_NEAR(sum(constrained), 2400.0, 1e-6);

  // Stage 2 (cold start, both utilities zero): same 2:1 tilt.
  a.utility_per_w = b.utility_per_w = 0.0;
  const auto cold = water_fill(2600.0, {a, b});
  EXPECT_NEAR(cold[0], 1500.0, 1e-9);  // floor + 2/3 of the 1200 W pool
  EXPECT_NEAR(cold[1], 1100.0, 1e-9);
}

TEST(WaterFill, ConstrainedDomainOutranksSlackDomain) {
  // Two identical domains except domain 0's budget row is binding
  // (positive dual): the head-room above the floors must flow to it first.
  DomainDemand starving, content;
  starving.domain_id = 0;
  starving.busy_nodes = content.busy_nodes = 10.0;
  starving.floor_w = content.floor_w = 700.0;
  starving.capacity_w = content.capacity_w = 2150.0;
  starving.utility_per_w = 1.5;
  content.domain_id = 1;
  content.utility_per_w = 0.0;

  const double budget = 2400.0;  // floors take 1400, 1000 left to place
  const auto grants = water_fill(budget, {starving, content});
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_NEAR(grants[0], 1700.0, 1e-9);  // floor + entire head-room
  EXPECT_NEAR(grants[1], 700.0, 1e-9);   // floor only
}

TEST(WaterFill, InfeasibleFloorsScaleProportionally) {
  DomainDemand a, b;
  a.domain_id = 0;
  a.busy_nodes = 10.0;
  a.floor_w = 700.0;
  a.capacity_w = 2150.0;
  b = a;
  b.domain_id = 1;
  b.floor_w = 1400.0;
  b.busy_nodes = 20.0;
  b.capacity_w = 4300.0;

  const double budget = 1050.0;  // floors need 2100: only half fits
  const auto grants = water_fill(budget, {a, b});
  EXPECT_NEAR(grants[0], 350.0, 1e-9);
  EXPECT_NEAR(grants[1], 700.0, 1e-9);
  EXPECT_NEAR(sum(grants), budget, 1e-9);
}

TEST(BudgetArbiter, FencesSilentDomainAtHeldGrant) {
  BudgetArbiter arbiter(3);
  Rng rng(11);
  auto demands = random_demands(rng, 3);

  const double budget = 20000.0;
  arbiter.allocate(budget, demands);
  const double held = arbiter.grants_w()[1];
  EXPECT_GT(held, 0.0);
  EXPECT_EQ(arbiter.fenced_w(), 0.0);

  // Domain 1 goes silent: its grant freezes and the others share the rest.
  std::vector<DomainDemand> live = {demands[0], demands[2]};
  const auto& grants = arbiter.allocate(budget, live);
  EXPECT_TRUE(arbiter.fenced(1));
  EXPECT_FALSE(arbiter.fenced(0));
  EXPECT_EQ(bits(grants[1]), bits(held));
  EXPECT_EQ(bits(arbiter.fenced_w()), bits(held));
  EXPECT_LE(grants[0] + grants[2], budget - held + 1e-6);

  // It reports again: re-included, nothing fenced.
  arbiter.allocate(budget, demands);
  EXPECT_FALSE(arbiter.fenced(1));
  EXPECT_EQ(arbiter.fenced_w(), 0.0);
  EXPECT_EQ(arbiter.decisions(), 3u);
}

TEST(BudgetArbiter, NeverGrantedSilentDomainIsNotFenced) {
  BudgetArbiter arbiter(2);
  DomainDemand d;
  d.domain_id = 0;
  d.busy_nodes = 4.0;
  d.floor_w = 280.0;
  d.capacity_w = 860.0;
  arbiter.allocate(1000.0, {d});
  EXPECT_FALSE(arbiter.fenced(1));  // domain 1 never reported, never granted
  EXPECT_EQ(arbiter.fenced_w(), 0.0);
  EXPECT_EQ(arbiter.grants_w()[1], 0.0);
}

TEST(BudgetArbiter, ReleaseReturnsWattsToThePool) {
  // A domain that *announces* it is leaving (re-parented under another
  // arbiter) is released, not fenced: unlike a silent crash its watts are
  // no longer physically committed here, so they must return to the pool
  // or the subtree would double-draw from old and new parents.
  BudgetArbiter arbiter(2);
  Rng rng(17);
  const auto demands = random_demands(rng, 2);
  const double budget = 20000.0;
  arbiter.allocate(budget, demands);
  EXPECT_GT(arbiter.grants_w()[1], 0.0);

  arbiter.release(1);
  EXPECT_EQ(arbiter.grants_w()[1], 0.0);
  EXPECT_FALSE(arbiter.fenced(1));
  EXPECT_EQ(arbiter.fenced_w(), 0.0);

  // Next decision: domain 1 stays silent but is NOT fenced (released state
  // equals never-granted), so the lone live domain gets the whole budget.
  const auto& grants = arbiter.allocate(budget, {demands[0]});
  EXPECT_EQ(bits(grants[0]), bits(budget));
  EXPECT_EQ(grants[1], 0.0);
  EXPECT_FALSE(arbiter.fenced(1));
  EXPECT_EQ(arbiter.fenced_w(), 0.0);
}

TEST(BudgetArbiter, SlaActivationsAccumulateAcrossDecisions) {
  BudgetArbiter arbiter(2);
  DomainDemand a, b;
  a.domain_id = 0;
  a.busy_nodes = b.busy_nodes = 10.0;
  a.floor_w = b.floor_w = 700.0;
  a.capacity_w = b.capacity_w = 2150.0;
  b.domain_id = 1;
  a.sla_floor_w = 1500.0;

  arbiter.allocate(2400.0, {a, b});
  arbiter.allocate(2400.0, {a, b});
  EXPECT_EQ(arbiter.sla_floor_activations(), 2u);
  EXPECT_GE(arbiter.grants_w()[0], 1500.0 - 1e-9);
}

TEST(BudgetArbiter, ConservationHoldsAcrossFencingChurn) {
  BudgetArbiter arbiter(4);
  Rng rng(99);
  const double budget = 30000.0;
  for (int round = 0; round < 200; ++round) {
    auto demands = random_demands(rng, 4);
    // Random subset reports this round.
    std::vector<DomainDemand> live;
    for (auto& d : demands) {
      if (rng.bernoulli(0.7)) live.push_back(d);
    }
    if (live.empty()) continue;
    const auto& grants = arbiter.allocate(budget, live);
    EXPECT_LE(sum(grants), budget * (1.0 + 1e-9) + 1e-6) << "round " << round;
  }
}

}  // namespace
}  // namespace perq::hier
