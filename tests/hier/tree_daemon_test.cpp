// Stacked-arbiter daemon tests: the mids==0 tree deployment delegates to
// the flat K+1-daemon experiment bit-for-bit (the depth-1 identity), and a
// real depth-2 tree -- root arbiter over mid arbiters over domain
// controllers -- runs to completion deterministically while conserving
// grants at every level (max_level_overdraw_w stays at FP noise).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "hier/experiment.hpp"

namespace perq::hier {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

std::vector<std::unique_ptr<core::PerqPolicy>> make_policies(
    const core::EngineConfig& cfg, std::size_t k) {
  std::vector<std::unique_ptr<core::PerqPolicy>> policies;
  for (std::size_t d = 0; d < k; ++d) {
    policies.push_back(std::make_unique<core::PerqPolicy>(
        &core::canonical_node_model(), cfg.worst_case_nodes,
        total_nodes(cfg)));
  }
  return policies;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job order at " << i;
    EXPECT_EQ(bits(a.finished[i].start_s), bits(b.finished[i].start_s));
    EXPECT_EQ(bits(a.finished[i].finish_s), bits(b.finished[i].finish_s));
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i].job_id, b.traces[i].job_id) << "trace row " << i;
    EXPECT_EQ(bits(a.traces[i].cap_w), bits(b.traces[i].cap_w))
        << "cap diverged at t=" << a.traces[i].t_s << " job "
        << a.traces[i].job_id;
    EXPECT_EQ(bits(a.traces[i].job_ips), bits(b.traces[i].job_ips));
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.peak_committed_w), bits(b.peak_committed_w));
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

TEST(TreeDaemon, MidsZeroDelegatesToTheFlatDeploymentBitForBit) {
  const auto cfg = small_cfg();

  auto flat_policies = make_policies(cfg, 2);
  const auto flat = run_hier_loopback_daemon_experiment(cfg, 2, flat_policies);

  auto tree_policies = make_policies(cfg, 2);
  const auto tree =
      run_tree_loopback_daemon_experiment(cfg, 2, /*mids=*/0, tree_policies);

  expect_bit_identical(flat.run, tree.run);
  EXPECT_EQ(tree.root_decisions, flat.arbiter_decisions);
  EXPECT_TRUE(tree.mid_grants_w.empty());
  EXPECT_TRUE(tree.mid_decisions.empty());
  ASSERT_EQ(tree.root_grants_w.size(), flat.final_grants_w.size());
  for (std::size_t d = 0; d < tree.root_grants_w.size(); ++d) {
    EXPECT_EQ(bits(tree.root_grants_w[d]), bits(flat.final_grants_w[d]));
  }
}

TEST(TreeDaemon, DepthTwoTreeRunsCleanAndConservesEveryLevel) {
  const auto cfg = small_cfg();
  auto policies = make_policies(cfg, 4);
  const auto r =
      run_tree_loopback_daemon_experiment(cfg, 4, /*mids=*/2, policies);

  EXPECT_GT(r.run.jobs_completed, 0u);
  EXPECT_EQ(r.run.policy_name, "PERQ-TREE2x4");
  EXPECT_GT(r.root_decisions, 0u);
  ASSERT_EQ(r.mid_decisions.size(), 2u);
  EXPECT_GT(r.mid_decisions[0], 0u);
  EXPECT_GT(r.mid_decisions[1], 0u);
  ASSERT_EQ(r.root_grants_w.size(), 2u);
  ASSERT_EQ(r.mid_grants_w.size(), 2u);
  ASSERT_EQ(r.mid_grants_w[0].size(), 2u);  // domains 0, 2 under mid 0
  // Conservation at every level: the worst observed overdraw (grants +
  // cold-start reserves minus the scope divided, captured at decide time)
  // must be FP noise, never a real watt.
  EXPECT_LE(r.max_level_overdraw_w, 1e-3);
  // A clean loopback run fires no defenses at any level.
  EXPECT_EQ(r.aggregated_counters.frames_corrupt, 0u);
  EXPECT_EQ(r.aggregated_counters.grants_fenced, 0u);
  EXPECT_EQ(r.aggregated_counters.reparent_events, 0u);
}

TEST(TreeDaemon, DepthTwoTreeIsDeterministic) {
  const auto cfg = small_cfg();
  auto pa = make_policies(cfg, 4);
  const auto a = run_tree_loopback_daemon_experiment(cfg, 4, 2, pa);
  auto pb = make_policies(cfg, 4);
  const auto b = run_tree_loopback_daemon_experiment(cfg, 4, 2, pb);

  expect_bit_identical(a.run, b.run);
  EXPECT_EQ(a.root_decisions, b.root_decisions);
  ASSERT_EQ(a.root_grants_w.size(), b.root_grants_w.size());
  for (std::size_t m = 0; m < a.root_grants_w.size(); ++m) {
    EXPECT_EQ(bits(a.root_grants_w[m]), bits(b.root_grants_w[m]));
  }
  EXPECT_EQ(bits(a.max_level_overdraw_w), bits(b.max_level_overdraw_w));
}

TEST(TreeDaemon, TenantTermsTravelUpTheTree) {
  const auto cfg = small_cfg();
  auto policies = make_policies(cfg, 4);
  std::vector<daemon::DomainAttachment> tenants(4);
  // Above the whole machine's nj * P_min (32 nodes x 90 W), so it lifts
  // domain 2's physical floor on every tick the domain reports.
  tenants[2].sla_floor_w = 2900.0;
  tenants[0].priority_weight = 2.0;
  const auto r = run_tree_loopback_daemon_experiment(cfg, 4, 2, policies, {},
                                                     {}, 1, tenants);

  EXPECT_GT(r.run.jobs_completed, 0u);
  EXPECT_LE(r.max_level_overdraw_w, 1e-3);
  // The SLA floor actually shaped mid-level fills, and the activation
  // count aggregated through the mid's report into the root's view.
  EXPECT_GT(r.aggregated_counters.sla_floor_activations, 0u);
}

}  // namespace
}  // namespace perq::hier
