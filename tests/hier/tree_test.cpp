// PowerTree property tests: the depth-1 tree IS the two-level arbiter
// (bit-for-bit), fanout-1 chains pass the budget through exactly, grants
// conserve at every level of a deep tree, leaf-demand order never matters,
// tenant terms (SLA floors, priorities) shape the fill, and runtime
// re-parenting moves subtrees while rejecting illegal moves.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "hier/arbiter.hpp"
#include "hier/tree.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::hier {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

/// Randomized but reproducible demand set over `n` leaf slots, shaped the
/// way the policies shape theirs (floors/capacities from busy nodes).
std::vector<DomainDemand> random_demands(Rng& rng, std::size_t n) {
  std::vector<DomainDemand> demands(n);
  for (std::size_t d = 0; d < n; ++d) {
    DomainDemand& dem = demands[d];
    dem.domain_id = static_cast<std::uint32_t>(d);
    dem.busy_nodes = static_cast<double>(rng.uniform_int(1, 64));
    dem.jobs = static_cast<std::size_t>(rng.uniform_int(1, 8));
    dem.floor_w = dem.busy_nodes * 70.0;
    dem.capacity_w = dem.busy_nodes * 215.0;
    dem.utility_per_w = rng.bernoulli(0.5) ? rng.uniform(0.0, 3.0) : 0.0;
    dem.committed_w = rng.uniform(dem.floor_w, dem.capacity_w);
    dem.achieved_ips = rng.uniform(0.0, 1e12);
    dem.target_ips = rng.uniform(0.0, 1e12);
  }
  return demands;
}

DomainDemand simple_demand(std::uint32_t id) {
  DomainDemand d;
  d.domain_id = id;
  d.busy_nodes = 10.0;
  d.floor_w = 700.0;
  d.capacity_w = 2150.0;
  return d;
}

TEST(PowerTree, FlatTreeIsTheTwoLevelArbiterBitForBit) {
  // flat(K) must reduce to exactly one water_fill over the leaf demands:
  // everything built on the PR-4 arbiter is unchanged by the recursion.
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const auto demands = random_demands(rng, n);
    double capacity_sum = 0.0;
    for (const auto& d : demands) capacity_sum += d.capacity_w;
    const double budget = rng.uniform(0.0, capacity_sum * 1.3);

    PowerTree tree(TreeSpec::flat(n));
    ASSERT_EQ(tree.leaves(), n);
    EXPECT_EQ(tree.depth(), 1u);
    const auto& via_tree = tree.allocate(budget, demands);
    const auto direct = water_fill(budget, demands);
    ASSERT_EQ(via_tree.size(), direct.size());
    for (std::size_t d = 0; d < n; ++d) {
      EXPECT_EQ(bits(via_tree[d]), bits(direct[d]))
          << "trial " << trial << " leaf " << d;
    }
  }
}

TEST(PowerTree, LoneRootLeafIsGrantedTheBudgetExactly) {
  PowerTree tree(TreeSpec::uniform(0, 4));
  EXPECT_EQ(tree.nodes(), 1u);
  EXPECT_EQ(tree.leaves(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  for (const double budget : {0.0, 1.0, 12345.678, 0.1 + 0.2}) {
    const auto& grants = tree.allocate(budget, {simple_demand(0)});
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(bits(grants[0]), bits(budget));
  }
}

TEST(PowerTree, FanoutOneChainPassesTheBudgetThroughBitExactly) {
  // Three stacked 1-fanout arbiters: depth is free when unused, because
  // every link hits water_fill's n==1 exactness fast path.
  PowerTree tree(TreeSpec::uniform(3, 1));
  EXPECT_EQ(tree.nodes(), 4u);
  EXPECT_EQ(tree.leaves(), 1u);
  EXPECT_EQ(tree.depth(), 3u);
  const double budget = 9876.54321;
  const auto& grants = tree.allocate(budget, {simple_demand(0)});
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(bits(grants[0]), bits(budget));
  for (double g : tree.node_grants_w()) EXPECT_EQ(bits(g), bits(budget));
}

TEST(PowerTree, UniformGeometryAndPaths) {
  // uniform(2, 3): breadth-first ids, so level 1 is 1..3 and level 2 is
  // 4..12; leaf slots follow ascending node id.
  PowerTree tree(TreeSpec::uniform(2, 3));
  EXPECT_EQ(tree.nodes(), 13u);
  EXPECT_EQ(tree.leaves(), 9u);
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_EQ(tree.leaf_node(0), 4u);
  EXPECT_EQ(tree.leaf_node(8), 12u);
  EXPECT_EQ(tree.path_to(0), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(tree.path_to(4), (std::vector<std::uint32_t>{0, 1, 4}));
  EXPECT_EQ(tree.path_to(12), (std::vector<std::uint32_t>{0, 3, 12}));
  EXPECT_EQ(tree.tenant(5).priority_weight, 1.0);  // defaults everywhere
}

TEST(PowerTree, PerLevelConservationUnderRandomDemands) {
  TreeSpec spec = TreeSpec::uniform(2, 4);
  std::vector<std::uint32_t> parent(spec.nodes.size());
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    parent[i] = spec.nodes[i].parent;
  }
  PowerTree tree(std::move(spec));
  ASSERT_EQ(tree.leaves(), 16u);

  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto demands = random_demands(rng, 16);
    double capacity_sum = 0.0;
    for (const auto& d : demands) capacity_sum += d.capacity_w;
    const double budget = rng.uniform(0.0, capacity_sum * 1.3);
    tree.allocate(budget, demands);

    const auto& node_grants = tree.node_grants_w();
    // The root is granted the cluster budget bit-exactly.
    EXPECT_EQ(bits(node_grants[0]), bits(budget));
    // Every interior node hands its children no more than it holds.
    std::vector<double> child_sum(node_grants.size(), 0.0);
    for (std::size_t i = 1; i < node_grants.size(); ++i) {
      child_sum[parent[i]] += node_grants[i];
    }
    for (std::size_t i = 0; i < 5; ++i) {  // root + the four mids
      EXPECT_LE(child_sum[i], node_grants[i] * (1.0 + 1e-9) + 1e-6)
          << "trial " << trial << " node " << i;
    }
    EXPECT_LE(sum(tree.leaf_grants_w()), budget * (1.0 + 1e-9) + 1e-6);
  }
}

TEST(PowerTree, AbsentLeavesAndEmptySubtreesAreGrantedZero) {
  // uniform(2, 2): mids 1/2, leaves 3/4 under 1 and 5/6 under 2. Only mid
  // 1's subtree reports, so the root's fill is a single-child pass-through
  // and mid 2's whole subtree reads zero.
  PowerTree tree(TreeSpec::uniform(2, 2));
  const double budget = 3000.0;
  const auto& grants =
      tree.allocate(budget, {simple_demand(0), simple_demand(1)});
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_EQ(grants[2], 0.0);
  EXPECT_EQ(grants[3], 0.0);
  const auto& node_grants = tree.node_grants_w();
  EXPECT_EQ(bits(node_grants[1]), bits(budget));  // sole present child
  EXPECT_EQ(node_grants[2], 0.0);
  EXPECT_GT(grants[0] + grants[1], 0.0);
  EXPECT_LE(grants[0] + grants[1], budget * (1.0 + 1e-9) + 1e-6);
}

TEST(PowerTree, PermutingLeafDemandOrderYieldsIdenticalGrants) {
  // Order-independence must survive the recursion: a nondeterministic
  // tie-break at one level would compound through every level below it.
  PowerTree tree(TreeSpec::uniform(2, 3));
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    auto demands = random_demands(rng, 9);
    const double budget = rng.uniform(0.0, 20000.0);
    const std::vector<double> baseline = tree.allocate(budget, demands);

    // Fisher-Yates off the shared Rng keeps the whole test seeded.
    for (std::size_t i = demands.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(demands[i - 1], demands[j]);
    }
    const auto& permuted = tree.allocate(budget, demands);
    ASSERT_EQ(permuted.size(), baseline.size());
    for (std::size_t d = 0; d < baseline.size(); ++d) {
      EXPECT_EQ(bits(permuted[d]), bits(baseline[d]))
          << "trial " << trial << " leaf " << d;
    }
  }
}

TEST(PowerTree, TenantSlaFloorLiftsTheSubtreeGrant) {
  TreeSpec spec = TreeSpec::flat(2);
  spec.nodes[1].tenant.sla_floor_w = 1500.0;  // leaf slot 0
  PowerTree tree(std::move(spec));

  const double budget = 2400.0;
  const auto& grants =
      tree.allocate(budget, {simple_demand(0), simple_demand(1)});
  // Floors become {1500, 700}; the 200 W head-room spreads node-
  // proportionally (equal busy nodes): 100 each.
  EXPECT_NEAR(grants[0], 1600.0, 1e-9);
  EXPECT_NEAR(grants[1], 800.0, 1e-9);
  EXPECT_GT(tree.sla_floor_activations(), 0u);
}

TEST(PowerTree, TenantPriorityTiltsTheFill) {
  TreeSpec spec = TreeSpec::flat(2);
  spec.nodes[1].tenant.priority_weight = 2.0;  // leaf slot 0
  PowerTree tree(std::move(spec));

  DomainDemand a = simple_demand(0);
  DomainDemand b = simple_demand(1);
  a.utility_per_w = b.utility_per_w = 1.0;  // both budget rows binding
  const double budget = 2400.0;  // floors take 1400, 1000 left to place
  const auto& grants = tree.allocate(budget, {a, b});
  // Equal demand, double priority: leaf 0 draws head-room twice as fast.
  EXPECT_NEAR(grants[0] - 700.0, 2.0 * (grants[1] - 700.0), 1e-6);
  EXPECT_NEAR(sum(grants), budget, 1e-6);
}

TEST(PowerTree, ReparentMovesTheSubtreeAndCountsEvents) {
  // uniform(2, 2): move leaf node 4 from mid 1 to mid 2. With slot 0
  // (node 3) absent afterwards, mid 1 has no present descendant and the
  // whole budget flows through mid 2.
  PowerTree tree(TreeSpec::uniform(2, 2));
  tree.reparent(4, 2);
  EXPECT_EQ(tree.reparent_events(), 1u);
  EXPECT_EQ(tree.path_to(4), (std::vector<std::uint32_t>{0, 2, 4}));
  EXPECT_EQ(tree.leaf_node(1), 4u);  // leaf slots never change

  const double budget = 5000.0;
  const auto& grants = tree.allocate(
      budget, {simple_demand(1), simple_demand(2), simple_demand(3)});
  const auto& node_grants = tree.node_grants_w();
  EXPECT_EQ(node_grants[1], 0.0);                 // empty subtree
  EXPECT_EQ(bits(node_grants[2]), bits(budget));  // sole present child
  EXPECT_LE(grants[1] + grants[2] + grants[3],
            budget * (1.0 + 1e-9) + 1e-6);
  EXPECT_GT(grants[1], 0.0);
}

TEST(PowerTree, ReparentRejectsIllegalMoves) {
  PowerTree tree(TreeSpec::uniform(2, 2));
  EXPECT_THROW(tree.reparent(0, 1), precondition_error);  // the root
  EXPECT_THROW(tree.reparent(2, 3), precondition_error);  // leaf target
  EXPECT_THROW(tree.reparent(1, 1), precondition_error);  // cycle
  EXPECT_THROW(tree.reparent(3, 99), precondition_error);  // unknown node
  EXPECT_EQ(tree.reparent_events(), 0u);  // rejected moves never count
}

TEST(PowerTree, DuplicateOrUnknownLeafSlotsAreRejected) {
  PowerTree tree(TreeSpec::flat(2));
  EXPECT_THROW(tree.allocate(1000.0, {simple_demand(0), simple_demand(0)}),
               precondition_error);
  EXPECT_THROW(tree.allocate(1000.0, {simple_demand(2)}), precondition_error);
}

}  // namespace
}  // namespace perq::hier
