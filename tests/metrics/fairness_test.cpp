#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "util/require.hpp"

namespace perq::metrics {
namespace {

TEST(Jain, PerfectlyEqualIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({5.0}), 1.0);
}

TEST(Jain, SingleWinnerIsOneOverN) {
  EXPECT_NEAR(jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(Jain, KnownIntermediateValue) {
  // x = {1, 3}: (4)^2 / (2 * 10) = 0.8.
  EXPECT_NEAR(jain_fairness_index({1.0, 3.0}), 0.8, 1e-12);
}

TEST(Jain, ScaleInvariant) {
  const double a = jain_fairness_index({1.0, 2.0, 3.0});
  const double b = jain_fairness_index({10.0, 20.0, 30.0});
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Jain, Validation) {
  EXPECT_THROW(jain_fairness_index({}), precondition_error);
  EXPECT_THROW(jain_fairness_index({-1.0, 2.0}), precondition_error);
  EXPECT_THROW(jain_fairness_index({0.0, 0.0}), precondition_error);
}

core::RunResult run_with_outcomes(
    std::vector<std::tuple<int, std::size_t, double, double>> rows) {
  // (id, app_index, runtime_ref, runtime)
  core::RunResult r;
  for (auto [id, app, ref, rt] : rows) {
    core::JobOutcome o;
    o.id = id;
    o.app_index = app;
    o.runtime_ref_s = ref;
    o.runtime_s = rt;
    r.finished.push_back(o);
  }
  r.jobs_completed = r.finished.size();
  return r;
}

TEST(ClassInflation, GroupsBySensitivity) {
  // App indices in ecp_catalog(): 0 = ASPA (low), 4 = CoMD (medium),
  // 8 = SimpleMOC (high).
  auto run = run_with_outcomes({{0, 0, 100.0, 110.0},
                                {1, 0, 100.0, 130.0},
                                {2, 4, 100.0, 150.0},
                                {3, 8, 100.0, 200.0}});
  const auto c = inflation_by_sensitivity(run);
  EXPECT_NEAR(c.low, 1.2, 1e-12);     // mean of 1.1 and 1.3
  EXPECT_NEAR(c.medium, 1.5, 1e-12);
  EXPECT_NEAR(c.high, 2.0, 1e-12);
}

TEST(ClassInflation, MissingClassesReportZero) {
  auto run = run_with_outcomes({{0, 0, 100.0, 100.0}});
  const auto c = inflation_by_sensitivity(run);
  EXPECT_GT(c.low, 0.0);
  EXPECT_DOUBLE_EQ(c.medium, 0.0);
  EXPECT_DOUBLE_EQ(c.high, 0.0);
}

TEST(RelativePerformance, InvertedInflation) {
  auto run = run_with_outcomes({{0, 0, 100.0, 200.0}, {1, 0, 100.0, 100.0}});
  const auto rp = relative_performance(run);
  ASSERT_EQ(rp.size(), 2u);
  EXPECT_NEAR(rp[0], 0.5, 1e-12);
  EXPECT_NEAR(rp[1], 1.0, 1e-12);
  // Jain over relative performance: (1.5)^2 / (2 * 1.25) = 0.9.
  EXPECT_NEAR(jain_fairness_index(rp), 0.9, 1e-12);
}

}  // namespace
}  // namespace perq::metrics
