#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace perq::metrics {
namespace {

core::RunResult run_with(std::vector<std::tuple<int, double>> id_runtime) {
  core::RunResult r;
  for (auto [id, rt] : id_runtime) {
    core::JobOutcome o;
    o.id = id;
    o.runtime_s = rt;
    r.finished.push_back(o);
  }
  r.jobs_completed = r.finished.size();
  return r;
}

TEST(Degradation, ZeroAgainstItself) {
  auto base = run_with({{0, 100.0}, {1, 200.0}});
  auto rep = degradation_vs_baseline(base, base);
  EXPECT_DOUBLE_EQ(rep.mean_degradation_pct, 0.0);
  EXPECT_DOUBLE_EQ(rep.max_degradation_pct, 0.0);
  EXPECT_EQ(rep.degraded_jobs, 0u);
  EXPECT_EQ(rep.compared_jobs, 2u);
}

TEST(Degradation, OnlyDegradedJobsEnterTheMean) {
  // Paper metric: jobs that run faster than under FOP are treated fairly
  // and excluded from the mean.
  auto fop = run_with({{0, 100.0}, {1, 100.0}, {2, 100.0}});
  auto cand = run_with({{0, 150.0}, {1, 80.0}, {2, 110.0}});
  auto rep = degradation_vs_baseline(cand, fop);
  EXPECT_EQ(rep.degraded_jobs, 2u);
  EXPECT_NEAR(rep.mean_degradation_pct, (50.0 + 10.0) / 2.0, 1e-12);
  EXPECT_NEAR(rep.max_degradation_pct, 50.0, 1e-12);
}

TEST(Degradation, UnmatchedJobsAreSkipped) {
  auto fop = run_with({{0, 100.0}});
  auto cand = run_with({{0, 120.0}, {7, 500.0}});
  auto rep = degradation_vs_baseline(cand, fop);
  EXPECT_EQ(rep.compared_jobs, 1u);
  EXPECT_NEAR(rep.mean_degradation_pct, 20.0, 1e-12);
}

TEST(Degradation, EmptyIntersectionIsAllZero) {
  auto fop = run_with({{0, 100.0}});
  auto cand = run_with({{1, 100.0}});
  auto rep = degradation_vs_baseline(cand, fop);
  EXPECT_EQ(rep.compared_jobs, 0u);
  EXPECT_DOUBLE_EQ(rep.mean_degradation_pct, 0.0);
}

TEST(Throughput, ImprovementPercentage) {
  EXPECT_DOUBLE_EQ(throughput_improvement_pct(150, 100), 50.0);
  EXPECT_DOUBLE_EQ(throughput_improvement_pct(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(throughput_improvement_pct(80, 100), -20.0);
  EXPECT_THROW(throughput_improvement_pct(10, 0), precondition_error);
}

TEST(DecisionTimes, SummaryPercentiles) {
  std::vector<double> times;
  for (int i = 1; i <= 100; ++i) times.push_back(i / 1000.0);
  auto s = summarize_decision_times(times);
  EXPECT_EQ(s.decisions, 100u);
  EXPECT_NEAR(s.p50_s, 0.0505, 1e-3);
  EXPECT_NEAR(s.p80_s, 0.0802, 1e-3);
  EXPECT_NEAR(s.max_s, 0.1, 1e-12);
  EXPECT_GT(s.p99_s, s.p80_s);
}

TEST(DecisionTimes, EmptyIsZeroed) {
  auto s = summarize_decision_times({});
  EXPECT_EQ(s.decisions, 0u);
  EXPECT_DOUBLE_EQ(s.max_s, 0.0);
}

}  // namespace
}  // namespace perq::metrics
