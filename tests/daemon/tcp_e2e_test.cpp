// End-to-end perqd over real TCP sockets: controller on its own thread,
// four node agents driving the plant, one agent hanging mid-run. The run
// must keep deciding through the heartbeat-timeout path (caps held, budget
// row shrunk) and complete without deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "net/tcp.hpp"

namespace perq::daemon {
namespace {

TEST(TcpEndToEnd, FourAgentsOneHangsRunCompletes) {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 9;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 600.0;  // 60 control intervals
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);

  core::PerqPolicy policy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          32);
  ControllerConfig ccfg;
  ccfg.stale_after_ticks = 2;
  ccfg.decide_grace_ms = 50;

  net::TcpTransport transport;
  auto listener = transport.listen("127.0.0.1:0");
  const std::string address =
      "127.0.0.1:" + std::to_string(net::listener_port(*listener));
  PerqController controller(std::move(listener), policy, ccfg);

  // Controller event loop on its own thread. All observations of controller
  // state are made here and handed back through plain values after join.
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_held{false};
  std::atomic<bool> saw_stale{false};
  std::atomic<bool> saw_row_shrink{false};
  std::thread controller_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      controller.wait(5);
      if (controller.service()) {
        const auto& s = controller.last_stats();
        if (s.held_jobs > 0) saw_held.store(true);
        if (s.stale_agents > 0) saw_stale.store(true);
        if (s.held_w > 0.0 && s.budget_row_w > 0.0) saw_row_shrink.store(true);
      }
    }
  });

  PlantConfig pcfg;
  pcfg.agents = 4;
  pcfg.plan_timeout_ms = 3000;
  DaemonPlant plant(cfg, transport, address, pcfg);

  const std::size_t nodes_per_agent = plant.engine().cluster().size() / 4;
  std::size_t planned_ticks = 0, held_ticks = 0;
  bool hung = false;
  while (!plant.done()) {
    // A third of the way in, hang the agent leading the first running job
    // (connection stays open: only the heartbeat timeout can catch it).
    if (!hung && plant.engine().now_s() >= cfg.duration_s / 3.0 &&
        !plant.engine().running().empty()) {
      const auto& victim = *plant.engine().running().front();
      plant.agent(victim.node_ids().front() / nodes_per_agent).hang();
      hung = true;
    }
    if (plant.step()) {
      ++planned_ticks;
    } else {
      ++held_ticks;
    }
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  stop.store(true);
  controller_thread.join();

  const auto run = plant.finish("perq(tcp)");

  // Reaching here at all is the no-deadlock proof; the horizon ran out while
  // one agent was silently hung. The vast majority of ticks must still have
  // been answered with a plan.
  EXPECT_TRUE(hung);
  EXPECT_EQ(planned_ticks + held_ticks, 60u);
  EXPECT_GT(planned_ticks, 50u) << "held " << held_ticks << " ticks";
  EXPECT_GT(run.jobs_completed, 0u);

  // The failure was actually exercised: decisions with held jobs, a stale
  // agent, and a budget row reduced by the held watts.
  EXPECT_TRUE(saw_held.load());
  EXPECT_TRUE(saw_stale.load());
  EXPECT_TRUE(saw_row_shrink.load());
}

}  // namespace
}  // namespace perq::daemon
