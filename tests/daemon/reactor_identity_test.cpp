// Reactor determinism proofs: a daemon experiment over real loopback-TCP
// sockets is bit-identical whether readiness comes from epoll or poll(2),
// and both match the in-process engine -- decisions depend only on complete
// tick batches, never on readiness or arrival order. Plus a generous
// throughput smoke test at 64 agents so the scaled data plane stays wired
// into ctest.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "net/reactor.hpp"

namespace perq::daemon {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0, 1, 2, 3};
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

core::PerqPolicy make_policy(const core::EngineConfig& cfg) {
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total_nodes(cfg));
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job order diverged at " << i;
    EXPECT_EQ(bits(a.finished[i].finish_s), bits(b.finished[i].finish_s))
        << "job " << a.finished[i].id;
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i].job_id, b.traces[i].job_id) << "trace row " << i;
    EXPECT_EQ(bits(a.traces[i].cap_w), bits(b.traces[i].cap_w))
        << "cap diverged at t=" << a.traces[i].t_s << " job "
        << a.traces[i].job_id;
    EXPECT_EQ(bits(a.traces[i].target_ips), bits(b.traces[i].target_ips))
        << "trace row " << i;
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.peak_committed_w), bits(b.peak_committed_w));
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

/// Lockstep runs must never decide on an incomplete batch because a slow CI
/// machine stalled mid-tick; a generous grace keeps the decision gate
/// purely completeness-driven.
ControllerConfig patient_ccfg() {
  ControllerConfig ccfg;
  ccfg.decide_grace_ms = 20000;
  return ccfg;
}

TEST(ReactorIdentity, EpollTcpRunMatchesInProcessBitForBit) {
  const auto cfg = small_cfg();

  core::PerqPolicy in_process = make_policy(cfg);
  const auto direct = core::run_experiment(cfg, in_process);
  ASSERT_GT(direct.jobs_completed, 0u);

  core::PerqPolicy daemon_side = make_policy(cfg);
  const auto via_epoll = run_tcp_daemon_experiment(
      cfg, daemon_side, 2, patient_ccfg(), net::Reactor::Backend::kEpoll);

  expect_bit_identical(direct, via_epoll);
}

TEST(ReactorIdentity, EpollAndPollBackendsAreInterchangeable) {
  const auto cfg = small_cfg();

  core::PerqPolicy epoll_side = make_policy(cfg);
  const auto via_epoll = run_tcp_daemon_experiment(
      cfg, epoll_side, 3, patient_ccfg(), net::Reactor::Backend::kEpoll);
  ASSERT_GT(via_epoll.jobs_completed, 0u);

  core::PerqPolicy poll_side = make_policy(cfg);
  const auto via_poll = run_tcp_daemon_experiment(
      cfg, poll_side, 3, patient_ccfg(), net::Reactor::Backend::kPoll);

  expect_bit_identical(via_epoll, via_poll);
}

TEST(ReactorIdentity, TcpAndLoopbackTransportsAgreeBitForBit) {
  const auto cfg = small_cfg();

  core::PerqPolicy loop_side = make_policy(cfg);
  const auto via_loopback =
      run_loopback_daemon_experiment(cfg, loop_side, 2, patient_ccfg());
  ASSERT_GT(via_loopback.jobs_completed, 0u);

  core::PerqPolicy tcp_side = make_policy(cfg);
  const auto via_tcp = run_tcp_daemon_experiment(cfg, tcp_side, 2,
                                                 patient_ccfg());

  expect_bit_identical(via_loopback, via_tcp);
}

// Smoke, not benchmark: 64 real agents over loopback TCP must sustain a
// rate no healthy build can miss (the real numbers live in
// bench_daemon_throughput). The bound is deliberately loose -- a loaded CI
// box runs this orders of magnitude faster than 2 ticks/s.
TEST(ReactorThroughput, SixtyFourAgentSmoke) {
  core::EngineConfig cfg = small_cfg();
  cfg.worst_case_nodes = 64;  // 128 nodes total: two per agent
  cfg.duration_s = 400.0;     // 40 control ticks
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0};

  core::PerqPolicy policy = make_policy(cfg);
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      run_tcp_daemon_experiment(cfg, policy, 64, patient_ccfg());
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_GT(result.jobs_completed, 0u);
  const double ticks = cfg.duration_s / cfg.control_interval_s;
  EXPECT_GT(ticks / elapsed_s, 2.0)
      << "64-agent data plane managed only " << ticks / elapsed_s
      << " ticks/s (" << elapsed_s << " s for " << ticks << " ticks)";
}

}  // namespace
}  // namespace perq::daemon
