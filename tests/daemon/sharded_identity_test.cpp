// Sharded data-plane determinism proofs: a daemon experiment is
// bit-identical whether the controller drains its sessions through one
// reactor or S reactor shards merged through the reduction tree, and
// whether cap plans travel as full broadcasts or delta-encoded patches.
// Both knobs reroute bytes and scheduling only -- the canonical
// (tick, node-id) ingest order and the bit-exact delta reconstruction
// guarantee the decision stream never notices.
#include <gtest/gtest.h>

#include <bit>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "net/reactor.hpp"

namespace perq::daemon {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0, 1, 2, 3};
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

core::PerqPolicy make_policy(const core::EngineConfig& cfg) {
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total_nodes(cfg));
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job order diverged at " << i;
    EXPECT_EQ(bits(a.finished[i].finish_s), bits(b.finished[i].finish_s))
        << "job " << a.finished[i].id;
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(a.traces[i].job_id, b.traces[i].job_id) << "trace row " << i;
    EXPECT_EQ(bits(a.traces[i].cap_w), bits(b.traces[i].cap_w))
        << "cap diverged at t=" << a.traces[i].t_s << " job "
        << a.traces[i].job_id;
    EXPECT_EQ(bits(a.traces[i].target_ips), bits(b.traces[i].target_ips))
        << "trace row " << i;
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.peak_committed_w), bits(b.peak_committed_w));
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

ControllerConfig ccfg_with(std::size_t shards, bool delta,
                           std::uint64_t full_every = 16) {
  ControllerConfig ccfg;
  ccfg.decide_grace_ms = 20000;  // completeness-gated, never clock-gated
  ccfg.shards = shards;
  ccfg.delta_broadcast = delta;
  ccfg.full_plan_every_ticks = full_every;
  return ccfg;
}

TEST(ShardedIdentity, ShardedLoopbackRunMatchesInProcessBitForBit) {
  const auto cfg = small_cfg();

  core::PerqPolicy in_process = make_policy(cfg);
  const auto direct = core::run_experiment(cfg, in_process);
  ASSERT_GT(direct.jobs_completed, 0u);

  core::PerqPolicy daemon_side = make_policy(cfg);
  const auto sharded = run_loopback_daemon_experiment(
      cfg, daemon_side, 4, ccfg_with(/*shards=*/4, /*delta=*/true));

  expect_bit_identical(direct, sharded);
}

TEST(ShardedIdentity, OneShardAndFourShardsAgreeOverTcp) {
  const auto cfg = small_cfg();

  core::PerqPolicy one_side = make_policy(cfg);
  const auto one = run_tcp_daemon_experiment(
      cfg, one_side, 4, ccfg_with(/*shards=*/1, /*delta=*/true),
      net::Reactor::Backend::kEpoll);
  ASSERT_GT(one.jobs_completed, 0u);

  core::PerqPolicy four_side = make_policy(cfg);
  const auto four = run_tcp_daemon_experiment(
      cfg, four_side, 4, ccfg_with(/*shards=*/4, /*delta=*/true),
      net::Reactor::Backend::kEpoll);

  expect_bit_identical(one, four);
}

TEST(ShardedIdentity, DeltaBroadcastsMatchFullPlanBroadcasts) {
  const auto cfg = small_cfg();

  core::PerqPolicy full_side = make_policy(cfg);
  const auto full = run_loopback_daemon_experiment(
      cfg, full_side, 2, ccfg_with(/*shards=*/2, /*delta=*/false));
  ASSERT_GT(full.jobs_completed, 0u);

  core::PerqPolicy delta_side = make_policy(cfg);
  const auto delta = run_loopback_daemon_experiment(
      cfg, delta_side, 2, ccfg_with(/*shards=*/2, /*delta=*/true));

  expect_bit_identical(full, delta);
}

// full_plan_every_ticks == 0 disables the periodic resync anchor: after
// the first decide, every broadcast is a delta. The longest possible
// delta chain must still reconstruct the same trajectories.
TEST(ShardedIdentity, UnboundedDeltaChainStaysLossless) {
  const auto cfg = small_cfg();

  core::PerqPolicy full_side = make_policy(cfg);
  const auto full = run_loopback_daemon_experiment(
      cfg, full_side, 2, ccfg_with(/*shards=*/1, /*delta=*/false));
  ASSERT_GT(full.jobs_completed, 0u);

  core::PerqPolicy delta_side = make_policy(cfg);
  const auto delta = run_loopback_daemon_experiment(
      cfg, delta_side, 2,
      ccfg_with(/*shards=*/1, /*delta=*/true, /*full_every=*/0));

  expect_bit_identical(full, delta);
}

TEST(ShardedIdentity, ShardedTcpMatchesShardedLoopback) {
  const auto cfg = small_cfg();

  core::PerqPolicy loop_side = make_policy(cfg);
  const auto via_loopback = run_loopback_daemon_experiment(
      cfg, loop_side, 4, ccfg_with(/*shards=*/2, /*delta=*/true));
  ASSERT_GT(via_loopback.jobs_completed, 0u);

  core::PerqPolicy tcp_side = make_policy(cfg);
  const auto via_tcp = run_tcp_daemon_experiment(
      cfg, tcp_side, 4, ccfg_with(/*shards=*/2, /*delta=*/true));

  expect_bit_identical(via_loopback, via_tcp);
}

}  // namespace
}  // namespace perq::daemon
