// Controller HA (ISSUE tentpole): replication WAL recovery, warm-standby
// bit-exact tracking, epoch-fenced takeover, reconnect resync under delta
// broadcasts, and the agent-local fail-safe decay.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_model.hpp"
#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "daemon/replication.hpp"
#include "net/loopback.hpp"
#include "proto/message.hpp"
#include "util/require.hpp"

namespace perq::daemon {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::PerqPolicy make_policy(const core::EngineConfig& cfg) {
  const auto total = static_cast<std::size_t>(
      cfg.over_provision_factor * double(cfg.worst_case_nodes) + 0.5);
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total);
}

daemon::ControllerConfig fast_cfg() {
  daemon::ControllerConfig ccfg;
  ccfg.decide_grace_ms = 5;
  ccfg.stale_after_ticks = 2;
  return ccfg;
}

daemon::ControllerConfig standby_cfg() {
  daemon::ControllerConfig ccfg = fast_cfg();
  ccfg.standby = true;
  return ccfg;
}

/// The WAL stores the post-length portion of an encoded frame.
std::vector<std::uint8_t> payload_of(const proto::Message& m) {
  const auto frame = proto::encode(m);
  return {frame.begin() + 4, frame.end()};
}

class ReplicationLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "perq_repl_log_test.wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(ReplicationLogTest, AppendsReplayInOrder) {
  std::vector<std::vector<std::uint8_t>> records;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    records.push_back(payload_of(proto::PromoteAnnounce{e, 10 * e}));
  }
  {
    ReplicationLog log;
    log.open(path_);
    ASSERT_TRUE(log.persistent());
    for (const auto& r : records) log.append(r.data(), r.size());
    EXPECT_EQ(log.record_count(), 3u);
  }
  ReplicationLog reopened;
  std::vector<std::vector<std::uint8_t>> seen;
  reopened.open(path_, [&seen](const std::uint8_t* p, std::size_t n) {
    seen.emplace_back(p, p + n);
  });
  EXPECT_EQ(reopened.replayed_count(), 3u);
  EXPECT_FALSE(reopened.truncated_tail());
  EXPECT_EQ(seen, records);
}

TEST_F(ReplicationLogTest, TornTailIsTruncatedAndAppendsResume) {
  const auto rec = payload_of(proto::PromoteAnnounce{7, 70});
  {
    ReplicationLog log;
    log.open(path_);
    log.append(rec.data(), rec.size());
    log.append(rec.data(), rec.size());
  }
  // Tear the tail: append a header that promises more bytes than exist.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t torn[10] = {100, 0, 0, 0, 1, 2, 3, 4, 0xAB, 0xCD};
    std::fwrite(torn, 1, sizeof torn, f);
    std::fclose(f);
  }
  std::size_t replayed = 0;
  {
    ReplicationLog log;
    log.open(path_, [&replayed](const std::uint8_t*, std::size_t) {
      ++replayed;
    });
    EXPECT_EQ(replayed, 2u);
    EXPECT_TRUE(log.truncated_tail());
    log.append(rec.data(), rec.size());  // the tail is gone; writes resume
  }
  ReplicationLog clean;
  clean.open(path_, nullptr);
  EXPECT_EQ(clean.replayed_count(), 3u);
  EXPECT_FALSE(clean.truncated_tail());
}

TEST_F(ReplicationLogTest, CorruptCrcStopsReplayAtLastValidRecord) {
  const auto rec = payload_of(proto::PromoteAnnounce{9, 90});
  long third_offset = 0;
  {
    ReplicationLog log;
    log.open(path_);
    log.append(rec.data(), rec.size());
    log.append(rec.data(), rec.size());
    log.flush();
    std::FILE* probe = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(probe, nullptr);
    std::fseek(probe, 0, SEEK_END);
    third_offset = std::ftell(probe);
    std::fclose(probe);
    log.append(rec.data(), rec.size());
  }
  // Flip one payload byte of the third record: its crc no longer matches.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, third_offset + 8 + 2, SEEK_SET);  // header + 2 into payload
    const int c = std::fgetc(f);
    std::fseek(f, third_offset + 8 + 2, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  ReplicationLog log;
  log.open(path_, nullptr);
  EXPECT_EQ(log.replayed_count(), 2u);
  EXPECT_TRUE(log.truncated_tail());
}

TEST_F(ReplicationLogTest, SnapshotRewriteBoundsReplay) {
  const auto tick = payload_of(proto::PromoteAnnounce{1, 1});
  const auto snap = payload_of(proto::ReplSnapshot{2, {0xDE, 0xAD}});
  {
    ReplicationLog log;
    log.open(path_);
    for (int i = 0; i < 10; ++i) log.append(tick.data(), tick.size());
    log.rewrite_with_snapshot(snap);
    EXPECT_EQ(log.record_count(), 1u);
    log.append(tick.data(), tick.size());
  }
  std::vector<std::vector<std::uint8_t>> seen;
  ReplicationLog log;
  log.open(path_, [&seen](const std::uint8_t* p, std::size_t n) {
    seen.emplace_back(p, p + n);
  });
  ASSERT_EQ(seen.size(), 2u);  // snapshot + one tick, the 10 olds are gone
  EXPECT_EQ(seen[0], snap);
  EXPECT_EQ(seen[1], tick);
}

/// Controller + plant over one loopback transport.
struct Rig {
  net::LoopbackTransport transport;
  core::PerqPolicy policy;
  std::unique_ptr<daemon::PerqController> controller;
  std::unique_ptr<daemon::DaemonPlant> plant;

  Rig(const core::EngineConfig& cfg, const daemon::ControllerConfig& ccfg,
      std::size_t agents, const daemon::PlantConfig& extra = {})
      : policy(make_policy(cfg)) {
    controller = std::make_unique<daemon::PerqController>(
        transport.listen("perqd-a"), policy, ccfg);
    daemon::PlantConfig pcfg = extra;
    pcfg.agents = agents;
    if (pcfg.plan_timeout_ms == 2000) pcfg.plan_timeout_ms = 50;
    plant =
        std::make_unique<daemon::DaemonPlant>(cfg, transport, "perqd-a", pcfg);
    controller->pump();
  }
};

TEST(Replication, LiveStandbyTracksPrimaryBitExact) {
  const auto cfg = small_cfg();
  Rig rig(cfg, fast_cfg(), 2);
  core::PerqPolicy standby_policy = make_policy(cfg);
  daemon::PerqController standby(rig.transport.listen("perqd-b"),
                                 standby_policy, standby_cfg());
  rig.controller->attach_standby(rig.transport.connect("perqd-b"));

  for (int i = 0; i < 40 && !rig.plant->done(); ++i) {
    rig.plant->step([&] {
      rig.controller->service();
      standby.service();
    });
    // The standby replays each decide in the same step, so the canonical
    // plan crc must match tick for tick, not just at the end.
    EXPECT_EQ(standby.last_plan_crc(), rig.controller->last_plan_crc())
        << "standby diverged at tick " << i;
  }
  EXPECT_GT(standby.replicated_decides(), 0u);
  // One ReplTick per primary decide, plus the full ReplSnapshot sent at
  // attach time (counted as one applied record on the standby).
  EXPECT_EQ(standby.replicated_decides(),
            rig.controller->replicated_decides() + 1);
  EXPECT_EQ(standby.repl_divergence(), 0u);
  EXPECT_EQ(standby.repl_rejected(), 0u);
  EXPECT_EQ(standby.last_replicated_tick(),
            rig.controller->last_stats().tick);
}

TEST(Replication, WalWarmsAColdStandbyToThePrimarysState) {
  const std::string path =
      ::testing::TempDir() + "perq_repl_cold_standby.wal";
  std::remove(path.c_str());
  const auto cfg = small_cfg();

  std::uint32_t primary_crc = 0;
  std::uint64_t primary_tick = 0, primary_decides = 0;
  {
    Rig rig(cfg, fast_cfg(), 2);
    rig.controller->open_replication_log(path);
    for (int i = 0; i < 30 && !rig.plant->done(); ++i) {
      rig.plant->step([&rig] { rig.controller->service(); });
    }
    primary_crc = rig.controller->last_plan_crc();
    primary_tick = rig.controller->last_stats().tick;
    primary_decides = rig.controller->replicated_decides();
    ASSERT_GT(primary_decides, 0u);
  }

  // A standby that never saw the live stream replays the WAL and lands on
  // the same decision state -- same last tick, same canonical plan crc.
  net::LoopbackTransport transport;
  core::PerqPolicy policy = make_policy(cfg);
  daemon::PerqController standby(transport.listen("perqd-b"), policy,
                                 standby_cfg());
  standby.open_replication_log(path);
  EXPECT_EQ(standby.replicated_decides(), primary_decides);
  EXPECT_EQ(standby.last_replicated_tick(), primary_tick);
  EXPECT_EQ(standby.last_plan_crc(), primary_crc);
  EXPECT_EQ(standby.repl_divergence(), 0u);
  std::remove(path.c_str());
}

TEST(EpochFence, AgentsRejectADeposedPrimary) {
  const auto cfg = small_cfg();
  Rig rig(cfg, fast_cfg(), 2);
  core::PerqPolicy standby_policy = make_policy(cfg);
  daemon::PerqController standby(rig.transport.listen("perqd-b"),
                                 standby_policy, standby_cfg());
  rig.controller->attach_standby(rig.transport.connect("perqd-b"));

  const auto service_both = [&] {
    rig.controller->service();
    standby.service();
  };
  for (int i = 0; i < 10; ++i) rig.plant->step(service_both);

  // Takeover: the standby bumps its epoch past everything replicated and
  // the agents move over. The old primary stays alive (a healed partition).
  standby.promote();
  EXPECT_FALSE(standby.standby());
  EXPECT_EQ(standby.epoch(), 2u);
  for (std::size_t i = 0; i < rig.plant->agent_count(); ++i) {
    rig.plant->agent(i).reconnect(rig.transport.connect("perqd-b"));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(rig.plant->step(service_both)) << "tick " << i;
  }
  EXPECT_EQ(rig.plant->agent(0).max_epoch(), 2u);

  // Agent 0 is lured back to the deposed primary. Its epoch announcement
  // (1 < 2) must fence the connection before any plan is applied.
  rig.plant->agent(0).reconnect(rig.transport.connect("perqd-a"));
  rig.plant->step(service_both);
  EXPECT_TRUE(rig.plant->agent(0).fenced());
  EXPECT_FALSE(rig.plant->agent(0).connected());
  EXPECT_GE(rig.plant->agent(0).stale_epoch_frames(), 1u);

  // Re-homing on the real primary clears the fence and plans flow again.
  rig.plant->agent(0).reconnect(rig.transport.connect("perqd-b"));
  EXPECT_FALSE(rig.plant->agent(0).fenced());
  EXPECT_TRUE(rig.plant->step(service_both));
}

TEST(DeltaResync, RejoinMidChainStaysBitIdenticalWithNoRejects) {
  auto cfg = small_cfg();
  daemon::ControllerConfig ccfg = fast_cfg();
  ccfg.delta_broadcast = true;
  ccfg.full_plan_every_ticks = 1000;  // deltas only once the chain starts

  core::RunResult clean;
  {
    Rig rig(cfg, ccfg, 2);
    while (!rig.plant->done()) {
      rig.plant->step([&rig] { rig.controller->service(); });
    }
    clean = rig.plant->finish("perq");
  }

  // Same run, but agent 0's connection dies at tick 20 and it re-dials at
  // once. The reconnect Hello carries its last applied plan tick, so the
  // controller resyncs it (satellite: delta-vs-full by base) and the delta
  // chain never breaks: no rejected deltas, no held ticks, bit-identical.
  core::RunResult rejoined;
  std::uint64_t held = 0;
  {
    Rig rig(cfg, ccfg, 2);
    bool dropped = false;
    while (!rig.plant->done()) {
      const std::uint64_t t = rig.plant->engine().tick();
      if (!dropped && t >= 20) {
        rig.plant->agent(0).drop();
        rig.plant->agent(0).reconnect(rig.transport.connect("perqd-a"));
        dropped = true;
      }
      if (!rig.plant->step([&rig] { rig.controller->service(); })) ++held;
    }
    ASSERT_TRUE(dropped);
    EXPECT_EQ(rig.plant->agent(0).deltas_rejected(), 0u);
    rejoined = rig.plant->finish("perq");
  }
  EXPECT_EQ(held, 0u);

  ASSERT_EQ(clean.finished.size(), rejoined.finished.size());
  ASSERT_EQ(clean.traces.size(), rejoined.traces.size());
  for (std::size_t i = 0; i < clean.traces.size(); ++i) {
    ASSERT_EQ(clean.traces[i].cap_w, rejoined.traces[i].cap_w)
        << "cap diverged at t=" << clean.traces[i].t_s;
  }
  EXPECT_EQ(clean.jobs_completed, rejoined.jobs_completed);
}

TEST(DeltaResync, ReconnectHelloAdvertisesTheAppliedBase) {
  const auto cfg = small_cfg();
  Rig rig(cfg, fast_cfg(), 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.plant->step([&rig] { rig.controller->service(); }));
  }
  const std::uint64_t base_tick = rig.controller->last_plan().tick;

  // Re-dial a listener we control and read the reconnect Hello off the
  // wire: it must advertise the delta base the agent still holds, so the
  // controller can keep the chain instead of paying a full-plan resync.
  auto probe = rig.transport.listen("probe");
  rig.plant->agent(0).drop();
  rig.plant->agent(0).reconnect(rig.transport.connect("probe"));
  auto accepted = probe->accept_new();
  ASSERT_EQ(accepted.size(), 1u);
  const auto frames = accepted[0]->receive();
  ASSERT_FALSE(frames.empty());
  const auto* hello = std::get_if<proto::Hello>(&frames.front());
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->has_plan, 1u);
  EXPECT_EQ(hello->last_plan_tick, base_tick);

  // A fresh joiner, by contrast, has no base to advertise.
  auto probe2 = rig.transport.listen("probe2");
  daemon::PlantConfig pcfg;
  pcfg.agents = 1;
  pcfg.plan_timeout_ms = 5;
  daemon::DaemonPlant fresh(cfg, rig.transport, "probe2", pcfg);
  auto accepted2 = probe2->accept_new();
  ASSERT_EQ(accepted2.size(), 1u);
  const auto frames2 = accepted2[0]->receive();
  ASSERT_FALSE(frames2.empty());
  const auto* hello2 = std::get_if<proto::Hello>(&frames2.front());
  ASSERT_NE(hello2, nullptr);
  EXPECT_EQ(hello2->has_plan, 0u);
}

TEST(FailSafe, HeldCapsDecayTowardTheFloorWhenTheControllerIsGone) {
  const auto cfg = small_cfg();
  daemon::PlantConfig pcfg;
  pcfg.plan_timeout_ms = 5;
  pcfg.failsafe_after_ticks = 2;
  pcfg.failsafe_decay = 0.5;  // floor defaults to the spec's cap_min
  Rig rig(cfg, fast_cfg(), 2, pcfg);

  for (int i = 0; i < 12 && !rig.plant->done(); ++i) {
    ASSERT_TRUE(rig.plant->step([&rig] { rig.controller->service(); }));
  }
  const auto caps_now = [&rig] {
    std::map<int, double> caps;
    for (const sched::Job* job : rig.plant->engine().running()) {
      caps[job->spec().id] = job->last_cap_w();
    }
    return caps;
  };
  ASSERT_FALSE(caps_now().empty());

  // The controller goes silent for good. The first failsafe_after_ticks
  // held ticks hold caps verbatim; every tick past that must follow the
  // decay law cap' = floor + (cap - floor) * decay, monotonically down.
  const auto& spec = apps::node_power_spec();
  const double floor_w = spec.cap_min;
  std::map<int, double> prev = caps_now();
  std::uint64_t decayed_ticks = 0;
  for (int i = 0; i < 10 && !rig.plant->done(); ++i) {
    EXPECT_FALSE(rig.plant->step());
    const auto cur = caps_now();
    if (rig.plant->group_held_ticks(0) > pcfg.failsafe_after_ticks) {
      for (const auto& [id, cap] : cur) {
        const auto it = prev.find(id);
        if (it == prev.end() || it->second <= 0.0 || cap <= 0.0) continue;
        const double want =
            std::max(floor_w + (it->second - floor_w) * pcfg.failsafe_decay,
                     floor_w);
        EXPECT_NEAR(cap, want, 1e-6) << "job " << id << " at held tick " << i;
        EXPECT_LE(cap, it->second + 1e-9);
        ++decayed_ticks;
      }
    }
    prev = cur;
  }
  EXPECT_GT(decayed_ticks, 0u);
  EXPECT_GT(rig.plant->counters().failsafe_activations, 0u);

  // And the caps really drift to the safe floor, not some halfway point.
  double worst = 0.0;
  for (const auto& [id, cap] : prev) worst = std::max(worst, cap);
  EXPECT_LT(worst, floor_w + 0.1 * (spec.tdp - floor_w));
}

}  // namespace
}  // namespace perq::daemon
