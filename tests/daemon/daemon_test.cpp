// Daemon subsystem tests: the loopback-equivalence proof (a daemon-mediated
// experiment is bit-identical to the in-process engine), snapshot codec and
// restart determinism, and the heartbeat-timeout / rejoin path.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <memory>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "daemon/snapshot.hpp"
#include "net/loopback.hpp"
#include "util/require.hpp"

namespace perq::daemon {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  cfg.traced_jobs = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

core::PerqPolicy make_policy(const core::EngineConfig& cfg) {
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total_nodes(cfg));
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    const auto& fa = a.finished[i];
    const auto& fb = b.finished[i];
    EXPECT_EQ(fa.id, fb.id) << "job order diverged at " << i;
    EXPECT_EQ(fa.nodes, fb.nodes);
    EXPECT_EQ(fa.app_index, fb.app_index);
    EXPECT_EQ(bits(fa.start_s), bits(fb.start_s)) << "job " << fa.id;
    EXPECT_EQ(bits(fa.finish_s), bits(fb.finish_s)) << "job " << fa.id;
    EXPECT_EQ(bits(fa.runtime_s), bits(fb.runtime_s)) << "job " << fa.id;
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    const auto& ta = a.traces[i];
    const auto& tb = b.traces[i];
    EXPECT_EQ(ta.job_id, tb.job_id) << "trace row " << i;
    EXPECT_EQ(bits(ta.t_s), bits(tb.t_s)) << "trace row " << i;
    EXPECT_EQ(bits(ta.cap_w), bits(tb.cap_w))
        << "cap diverged at t=" << ta.t_s << " job " << ta.job_id;
    EXPECT_EQ(bits(ta.job_ips), bits(tb.job_ips)) << "trace row " << i;
    EXPECT_EQ(bits(ta.target_ips), bits(tb.target_ips)) << "trace row " << i;
    EXPECT_EQ(bits(ta.perf_fraction), bits(tb.perf_fraction)) << "trace row " << i;
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.peak_committed_w), bits(b.peak_committed_w));
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

/// Controller + plant wired through one loopback transport, single-threaded.
struct LoopbackRig {
  net::LoopbackTransport transport;
  core::PerqPolicy policy;
  std::unique_ptr<PerqController> controller;
  std::unique_ptr<DaemonPlant> plant;

  LoopbackRig(const core::EngineConfig& cfg, const ControllerConfig& ccfg,
              std::size_t agents)
      : policy(make_policy(cfg)) {
    controller =
        std::make_unique<PerqController>(transport.listen("perqd"), policy, ccfg);
    PlantConfig pcfg;
    pcfg.agents = agents;
    plant = std::make_unique<DaemonPlant>(cfg, transport, "perqd", pcfg);
    controller->pump();
  }

  bool step() {
    return plant->step([this] { controller->service(); });
  }
};

TEST(DaemonEquivalence, LoopbackDaemonMatchesInProcessBitForBit) {
  const auto cfg = small_cfg();

  core::PerqPolicy in_process = make_policy(cfg);
  const auto direct = core::run_experiment(cfg, in_process);

  core::PerqPolicy daemon_side = make_policy(cfg);
  const auto via_daemon = run_loopback_daemon_experiment(cfg, daemon_side, 1);

  ASSERT_GT(direct.jobs_completed, 0u);
  ASSERT_FALSE(direct.traces.empty());
  expect_bit_identical(direct, via_daemon);
}

TEST(DaemonEquivalence, NodeShardingAcrossAgentsIsInvariant) {
  const auto cfg = small_cfg();

  core::PerqPolicy in_process = make_policy(cfg);
  const auto direct = core::run_experiment(cfg, in_process);

  core::PerqPolicy daemon_side = make_policy(cfg);
  const auto sharded = run_loopback_daemon_experiment(cfg, daemon_side, 4);

  expect_bit_identical(direct, sharded);
}

TEST(DaemonSnapshot, CodecRoundTripsByteForByte) {
  const auto cfg = small_cfg();
  LoopbackRig rig(cfg, {}, 2);
  for (int i = 0; i < 30 && !rig.plant->done(); ++i) rig.step();
  ASSERT_GT(rig.controller->shadow_count(), 0u);

  const ControllerState state = rig.controller->state();
  const auto bytes = encode_snapshot(state);
  const auto decoded = decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(encode_snapshot(*decoded), bytes);

  // Strict parsing: every truncation and any trailing byte is rejected.
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    EXPECT_FALSE(decode_snapshot(bytes.data(), n).has_value()) << n;
  }
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_FALSE(decode_snapshot(longer.data(), longer.size()).has_value());
  auto bad = bytes;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(decode_snapshot(bad.data(), bad.size()).has_value());
  bad = bytes;
  bad[4] ^= 0xFF;  // version
  EXPECT_FALSE(decode_snapshot(bad.data(), bad.size()).has_value());
}

TEST(DaemonSnapshot, FileSaveLoadRoundTrip) {
  const auto cfg = small_cfg();
  LoopbackRig rig(cfg, {}, 1);
  for (int i = 0; i < 20 && !rig.plant->done(); ++i) rig.step();

  const ControllerState state = rig.controller->state();
  const std::string path = "daemon_snapshot_test.perqsnap";
  save_snapshot(path, state);
  const ControllerState loaded = load_snapshot(path);
  EXPECT_EQ(encode_snapshot(loaded), encode_snapshot(state));

  // A corrupt file must throw, not yield a half-parsed state.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_snapshot(path), precondition_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_snapshot(path), precondition_error);
}

TEST(DaemonSnapshot, ControllerRestartMidRunIsBitIdentical) {
  const auto cfg = small_cfg();
  const std::uint64_t kSwitch = 50;

  // Run A: one controller for the whole horizon; snapshot its state in
  // passing at tick kSwitch.
  std::vector<std::uint8_t> snap;
  core::RunResult run_a;
  {
    LoopbackRig rig(cfg, {}, 2);
    while (!rig.plant->done()) {
      rig.step();
      if (snap.empty() && rig.plant->engine().tick() >= kSwitch) {
        snap = encode_snapshot(rig.controller->state());
      }
    }
    run_a = rig.plant->finish("perq");
  }
  ASSERT_FALSE(snap.empty());

  // Run B: identical plant, but at tick kSwitch the controller "crashes":
  // a brand-new controller with a fresh policy is restored from the
  // snapshot on a new address and the agents reconnect to it.
  core::RunResult run_b;
  {
    LoopbackRig rig(cfg, {}, 2);
    core::PerqPolicy restored_policy = make_policy(cfg);
    std::unique_ptr<PerqController> restored;
    bool switched = false;
    while (!rig.plant->done()) {
      if (switched) {
        rig.plant->step([&restored] { restored->service(); });
      } else {
        rig.step();
      }
      if (!switched && rig.plant->engine().tick() >= kSwitch) {
        const auto state = decode_snapshot(snap.data(), snap.size());
        ASSERT_TRUE(state.has_value());
        restored = std::make_unique<PerqController>(
            rig.transport.listen("perqd-restarted"), restored_policy, ControllerConfig{});
        restored->restore(*state);
        for (std::size_t i = 0; i < rig.plant->agent_count(); ++i) {
          rig.plant->agent(i).reconnect(rig.transport.connect("perqd-restarted"));
        }
        restored->pump();
        switched = true;
      }
    }
    ASSERT_TRUE(switched);
    run_b = rig.plant->finish("perq");
  }

  expect_bit_identical(run_a, run_b);
}

TEST(DaemonRobustness, HungAgentCapsHeldBudgetRowShrinksThenRejoin) {
  auto cfg = small_cfg();
  cfg.duration_s = 3000.0;  // room for warmup + hang + rejoin phases
  ControllerConfig ccfg;
  ccfg.decide_grace_ms = 5;
  ccfg.stale_after_ticks = 2;
  LoopbackRig rig(cfg, ccfg, 4);

  // Warm up until the machine is busy.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(rig.step());
  const auto& running = rig.plant->engine().running();
  ASSERT_FALSE(running.empty());

  // Hang the agent leading the first running job (socket stays open, so
  // only the heartbeat timeout can catch it).
  const std::size_t nodes_per_agent =
      rig.plant->engine().cluster().size() / rig.plant->agent_count();
  const sched::Job* victim = running.front();
  const double held_cap = victim->last_cap_w();
  ASSERT_GT(held_cap, 0.0);
  const std::size_t hung_idx = victim->node_ids().front() / nodes_per_agent;
  rig.plant->agent(hung_idx).hang();

  // The run keeps deciding: lagging ticks go out after the grace window,
  // and once the agent is stale the controller stops waiting entirely.
  bool saw_stale = false;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rig.step()) << "plant deadlocked at hung tick " << i;
    const auto& stats = rig.controller->last_stats();
    EXPECT_GE(stats.held_jobs, 1u) << "tick " << i;
    EXPECT_GT(stats.held_w, 0.0) << "tick " << i;
    // The held watts are fenced off the row the policy optimizes over.
    EXPECT_LT(stats.budget_row_w + stats.held_w,
              rig.plant->engine().cluster().power_budget_w() + 1e-6);
    saw_stale = saw_stale || stats.stale_agents > 0;
    if (victim->state() == sched::JobState::kRunning) {
      EXPECT_EQ(bits(victim->last_cap_w()), bits(held_cap))
          << "held job's cap drifted at hung tick " << i;
    }
  }
  EXPECT_TRUE(saw_stale);

  // Rejoin: a fresh connection, a Hello, and the next publish resyncs the
  // shadow state; held jobs return to the optimized pool.
  rig.plant->agent(hung_idx).reconnect(rig.transport.connect("perqd"));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(rig.step());
  const auto& stats = rig.controller->last_stats();
  EXPECT_EQ(stats.held_jobs, 0u);
  EXPECT_EQ(stats.stale_agents, 0u);
  EXPECT_EQ(rig.controller->shadow_count(),
            rig.plant->engine().running().size());
}

}  // namespace
}  // namespace perq::daemon
