#include "linalg/decompose.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::linalg {
namespace {

Matrix random_matrix(Rng& rng, std::size_t n) {
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

Matrix random_spd(Rng& rng, std::size_t n) {
  Matrix a = random_matrix(rng, n);
  Matrix spd = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2, 1}, {1, 3}};
  Vector x = Lu(a).solve(Vector{5, 10});
  EXPECT_TRUE(approx_equal(x, Vector{1, 3}, 1e-12));
}

TEST(Lu, RequiresSquare) { EXPECT_THROW(Lu(Matrix(2, 3)), precondition_error); }

TEST(Lu, DetectsSingular) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(Lu a_lu(a), invariant_error);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0, 1}, {1, 0}};
  Vector x = Lu(a).solve(Vector{2, 3});
  EXPECT_TRUE(approx_equal(x, Vector{3, 2}, 1e-12));
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_NEAR(Lu(Matrix{{1, 2}, {3, 4}}).determinant(), -2.0, 1e-12);
  EXPECT_NEAR(Lu(Matrix::identity(4)).determinant(), 1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  Rng rng(3);
  Matrix a = random_matrix(rng, 6);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 4.0;  // well conditioned
  EXPECT_TRUE(approx_equal(a * Lu(a).inverse(), Matrix::identity(6), 1e-9));
}

class LuRandomSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSizes, ResidualIsTiny) {
  Rng rng(GetParam());
  const std::size_t n = GetParam();
  Matrix a = random_matrix(rng, n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-5, 5);
  Vector x = Lu(a).solve(b);
  EXPECT_LT(norm_inf((a * x) - b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSizes, ::testing::Values(1, 2, 3, 5, 8, 16, 40));

TEST(Lu, MatrixRhsSolve) {
  Matrix a{{4, 1}, {1, 3}};
  Matrix b{{1, 0}, {0, 1}};
  Matrix x = Lu(a).solve(b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-12));
}

TEST(Cholesky, SolvesKnownSystem) {
  Matrix a{{4, 2}, {2, 3}};
  Vector x = Cholesky(a).solve({8, 7});
  EXPECT_TRUE(approx_equal(a * x, Vector{8, 7}, 1e-12));
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(9);
  Matrix a = random_spd(rng, 5);
  Cholesky ch(a);
  const Matrix& l = ch.factor();
  EXPECT_TRUE(approx_equal(l * l.transposed(), a, 1e-9));
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky ch(a), invariant_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky ch(Matrix(2, 3)), precondition_error);
}

TEST(Cholesky, LogDeterminantMatchesLu) {
  Rng rng(10);
  Matrix a = random_spd(rng, 4);
  EXPECT_NEAR(Cholesky(a).log_determinant(), std::log(Lu(a).determinant()), 1e-9);
}

class CholeskyRandomSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyRandomSizes, ResidualIsTiny) {
  Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  Matrix a = random_spd(rng, n);
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-5, 5);
  Vector x = Cholesky(a).solve(b);
  EXPECT_LT(norm_inf((a * x) - b), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyRandomSizes,
                         ::testing::Values(1, 2, 4, 8, 20, 50));

TEST(LeastSquares, ExactSystemRecovered) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  Vector x_true{2, 3};
  Vector b = a * x_true;
  EXPECT_TRUE(approx_equal(least_squares(a, b), x_true, 1e-10));
}

TEST(LeastSquares, LineFit) {
  // Fit y = 2x + 1 through noisy-free points: design [x 1].
  Matrix a{{0, 1}, {1, 1}, {2, 1}, {3, 1}};
  Vector b{1, 3, 5, 7};
  Vector coef = least_squares(a, b);
  EXPECT_NEAR(coef[0], 2.0, 1e-10);
  EXPECT_NEAR(coef[1], 1.0, 1e-10);
}

TEST(LeastSquares, NormalEquationsHold) {
  Rng rng(17);
  Matrix a(20, 4);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  Vector b(20);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Vector x = least_squares(a, b);
  // A'(Ax - b) == 0 characterizes the least-squares solution.
  Vector residual = (a * x) - b;
  Vector atr = a.transposed() * residual;
  EXPECT_LT(norm_inf(atr), 1e-10);
}

TEST(LeastSquares, RejectsUnderdetermined) {
  EXPECT_THROW(least_squares(Matrix(2, 3), Vector{1, 2}), precondition_error);
}

TEST(LeastSquares, RejectsRankDeficient) {
  Matrix a{{1, 1}, {1, 1}, {1, 1}};
  EXPECT_THROW(least_squares(a, Vector{1, 2, 3}), invariant_error);
}

TEST(Convenience, SolveAndInverse) {
  Matrix a{{3, 1}, {1, 2}};
  Vector x = solve(a, {9, 8});
  EXPECT_TRUE(approx_equal(a * x, Vector{9, 8}, 1e-12));
  EXPECT_TRUE(approx_equal(a * inverse(a), Matrix::identity(2), 1e-12));
}

}  // namespace
}  // namespace perq::linalg
