#include "linalg/eigen.hpp"

#include "linalg/decompose.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::linalg {
namespace {

using Complex = std::complex<double>;

std::vector<double> sorted_abs(const std::vector<Complex>& zs) {
  std::vector<double> out;
  for (const auto& z : zs) out.push_back(std::abs(z));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PolynomialRoots, Quadratic) {
  // x^2 - 3x + 2 = (x-1)(x-2)
  auto roots = polynomial_roots({2.0, -3.0, 1.0});
  auto mags = sorted_abs(roots);
  EXPECT_NEAR(mags[0], 1.0, 1e-9);
  EXPECT_NEAR(mags[1], 2.0, 1e-9);
}

TEST(PolynomialRoots, ComplexPair) {
  // x^2 + 1: roots +-i.
  auto roots = polynomial_roots({1.0, 0.0, 1.0});
  ASSERT_EQ(roots.size(), 2u);
  for (const auto& r : roots) {
    EXPECT_NEAR(std::abs(r.real()), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(r.imag()), 1.0, 1e-9);
  }
}

TEST(PolynomialRoots, CubicWithKnownRoots) {
  // (x-1)(x+2)(x-0.5) = x^3 + 0.5x^2 - 2.5x + 1
  auto roots = polynomial_roots({1.0, -2.5, 0.5, 1.0});
  auto mags = sorted_abs(roots);
  EXPECT_NEAR(mags[0], 0.5, 1e-8);
  EXPECT_NEAR(mags[1], 1.0, 1e-8);
  EXPECT_NEAR(mags[2], 2.0, 1e-8);
}

TEST(PolynomialRoots, NonMonicNormalized) {
  // 2x^2 - 8 = 0 -> roots +-2.
  auto mags = sorted_abs(polynomial_roots({-8.0, 0.0, 2.0}));
  EXPECT_NEAR(mags[0], 2.0, 1e-9);
  EXPECT_NEAR(mags[1], 2.0, 1e-9);
}

TEST(PolynomialRoots, Validation) {
  EXPECT_THROW(polynomial_roots({1.0}), precondition_error);
  EXPECT_THROW(polynomial_roots({1.0, 0.0}), precondition_error);
}

TEST(CharacteristicPolynomial, KnownMatrix) {
  // [[2,1],[1,2]]: det(xI - A) = x^2 - 4x + 3.
  const auto c = characteristic_polynomial(Matrix{{2, 1}, {1, 2}});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 3.0, 1e-12);
  EXPECT_NEAR(c[1], -4.0, 1e-12);
  EXPECT_NEAR(c[2], 1.0, 1e-12);
}

TEST(CharacteristicPolynomial, ConstantTermIsSignedDeterminant) {
  Rng rng(3);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 2.0;
  const auto c = characteristic_polynomial(a);
  // c[0] = (-1)^n det(A) for monic char poly det(xI - A).
  EXPECT_NEAR(c[0], Lu(a).determinant(), 1e-8);
}

TEST(Eigenvalues, DiagonalMatrix) {
  auto mags = sorted_abs(eigenvalues(Matrix::diagonal({1.0, -3.0, 2.0})));
  EXPECT_NEAR(mags[0], 1.0, 1e-9);
  EXPECT_NEAR(mags[1], 2.0, 1e-9);
  EXPECT_NEAR(mags[2], 3.0, 1e-9);
}

TEST(Eigenvalues, RotationHasComplexPair) {
  const double c = std::cos(0.5), s = std::sin(0.5);
  auto evs = eigenvalues(Matrix{{c, -s}, {s, c}});
  for (const auto& ev : evs) {
    EXPECT_NEAR(std::abs(ev), 1.0, 1e-9);
    EXPECT_NEAR(ev.real(), c, 1e-9);
  }
}

TEST(Eigenvalues, TraceAndDeterminantConsistency) {
  Rng rng(7);
  Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  const auto evs = eigenvalues(a);
  Complex sum = 0.0, prod = 1.0;
  for (const auto& ev : evs) {
    sum += ev;
    prod *= ev;
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < 5; ++i) trace += a(i, i);
  EXPECT_NEAR(sum.real(), trace, 1e-7);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
  EXPECT_NEAR(prod.real(), Lu(a).determinant(), 1e-6);
}

TEST(SpectralRadius, MatchesKnownValues) {
  EXPECT_NEAR(spectral_radius(Matrix::diagonal({0.5, -0.9})), 0.9, 1e-9);
  EXPECT_NEAR(spectral_radius(Matrix{{0.0, 1.0}, {0.0, 0.0}}), 0.0, 1e-9);
}

TEST(SymmetricEigen, KnownDecomposition) {
  const Matrix a{{2, 1}, {1, 2}};
  const auto e = symmetric_eigen(a);
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  Rng rng(11);
  Matrix b(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  const Matrix a = b * b.transposed();
  const auto e = symmetric_eigen(a);
  // A = V diag(values) V'.
  const Matrix recon = e.vectors * Matrix::diagonal(e.values) * e.vectors.transposed();
  EXPECT_TRUE(approx_equal(recon, a, 1e-8));
  // Eigenvectors are orthonormal.
  EXPECT_TRUE(approx_equal(e.vectors.transposed() * e.vectors, Matrix::identity(4),
                           1e-9));
}

TEST(SymmetricEigen, RejectsAsymmetric) {
  EXPECT_THROW(symmetric_eigen(Matrix{{1, 2}, {0, 1}}), precondition_error);
}

TEST(PsdRank, CountsPositiveDirections) {
  EXPECT_EQ(psd_rank(Matrix::diagonal({1.0, 2.0, 3.0})), 3u);
  EXPECT_EQ(psd_rank(Matrix::diagonal({1.0, 2.0, 0.0})), 2u);
  EXPECT_EQ(psd_rank(Matrix::diagonal({0.0, 0.0})), 0u);
  // Rank-1 outer product.
  const Matrix v = Matrix::column({1.0, 2.0, 3.0});
  EXPECT_EQ(psd_rank(v * v.transposed()), 1u);
}

TEST(DiscreteLyapunov, SatisfiesEquation) {
  const Matrix a{{0.5, 0.1}, {0.0, 0.3}};
  const Matrix q{{1.0, 0.2}, {0.2, 2.0}};
  const Matrix x = solve_discrete_lyapunov(a, q);
  EXPECT_TRUE(approx_equal(a * x * a.transposed() + q, x, 1e-9));
  // The solution inherits Q's symmetry and positive definiteness.
  EXPECT_TRUE(approx_equal(x, x.transposed(), 1e-9));
  EXPECT_GT(symmetric_eigen(x).values.front(), 0.0);
}

TEST(DiscreteLyapunov, MatchesInfiniteSum) {
  const Matrix a{{0.4, 0.2}, {-0.1, 0.5}};
  const Matrix q = Matrix::identity(2);
  const Matrix x = solve_discrete_lyapunov(a, q);
  // X = sum_k A^k Q (A')^k.
  Matrix sum = q;
  Matrix ak = a;
  for (int k = 0; k < 200; ++k) {
    sum += ak * q * ak.transposed();
    ak = ak * a;
  }
  EXPECT_TRUE(approx_equal(x, sum, 1e-9));
}

TEST(DiscreteLyapunov, RejectsUnstableA) {
  EXPECT_THROW(solve_discrete_lyapunov(Matrix{{1.1}}, Matrix{{1.0}}),
               precondition_error);
}

}  // namespace
}  // namespace perq::linalg
