#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace perq::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), precondition_error);
}

TEST(Matrix, IdentityAndDiagonal) {
  auto i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  auto d = Matrix::diagonal({2, 5});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), precondition_error);
  EXPECT_THROW(m.at(0, 2), precondition_error);
}

TEST(Matrix, RowColExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.col(2), (Vector{3, 6}));
  EXPECT_THROW(m.row(2), precondition_error);
  EXPECT_THROW(m.col(3), precondition_error);
}

TEST(Matrix, BlockRoundTrip) {
  Matrix m(4, 4);
  Matrix b{{1, 2}, {3, 4}};
  m.set_block(1, 2, b);
  EXPECT_TRUE(approx_equal(m.block(1, 2, 2, 2), b, 0.0));
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, SetBlockRejectsOverflow) {
  Matrix m(2, 2);
  EXPECT_THROW(m.set_block(1, 1, Matrix(2, 2)), precondition_error);
  EXPECT_THROW(m.block(1, 1, 2, 2), precondition_error);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(approx_equal(t.transposed(), m, 0.0));
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  EXPECT_TRUE(approx_equal(a + b, Matrix{{11, 22}, {33, 44}}, 1e-15));
  EXPECT_TRUE(approx_equal(b - a, Matrix{{9, 18}, {27, 36}}, 1e-15));
  EXPECT_TRUE(approx_equal(a * 2.0, Matrix{{2, 4}, {6, 8}}, 1e-15));
  EXPECT_TRUE(approx_equal(2.0 * a, a * 2.0, 1e-15));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, precondition_error);
  EXPECT_THROW(a -= b, precondition_error);
}

TEST(Matrix, ProductKnownValue) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_TRUE(approx_equal(a * b, Matrix{{19, 22}, {43, 50}}, 1e-12));
}

TEST(Matrix, ProductWithIdentity) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(approx_equal(a * Matrix::identity(2), a, 0.0));
  EXPECT_TRUE(approx_equal(Matrix::identity(2) * a, a, 0.0));
}

TEST(Matrix, ProductInnerDimensionMismatch) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), precondition_error);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(approx_equal(a * Vector{1, 1}, Vector{3, 7}, 1e-15));
  EXPECT_THROW(a * (Vector{1, 2, 3}), precondition_error);
}

TEST(Matrix, Norms) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Matrix, ColumnAndRowVectorFactories) {
  auto c = Matrix::column({1, 2, 3});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  auto r = Matrix::row_vector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
}

TEST(Vector, Arithmetic) {
  Vector a{1, 2, 3}, b{4, 5, 6};
  EXPECT_TRUE(approx_equal(a + b, Vector{5, 7, 9}, 1e-15));
  EXPECT_TRUE(approx_equal(b - a, Vector{3, 3, 3}, 1e-15));
  EXPECT_TRUE(approx_equal(a * 2.0, Vector{2, 4, 6}, 1e-15));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vector, SizeMismatchThrows) {
  Vector a{1, 2}, b{1, 2, 3};
  EXPECT_THROW(a + b, precondition_error);
  EXPECT_THROW(dot(a, b), precondition_error);
  EXPECT_THROW(axpy(a, 1.0, b), precondition_error);
}

TEST(Vector, Norms) {
  Vector v{3, -4};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{}), 0.0);
}

TEST(Vector, Axpy) {
  EXPECT_TRUE(approx_equal(axpy({1, 1}, 2.0, {3, 4}), Vector{7, 9}, 1e-15));
}

TEST(Vector, ApproxEqualRespectsTolerance) {
  EXPECT_TRUE(approx_equal(Vector{1.0}, Vector{1.0 + 1e-9}, 1e-8));
  EXPECT_FALSE(approx_equal(Vector{1.0}, Vector{1.1}, 1e-8));
  EXPECT_FALSE(approx_equal(Vector{1.0}, Vector{1.0, 2.0}, 1e-8));
}

}  // namespace
}  // namespace perq::linalg
