// Property-style invariant sweeps over the full stack: for every policy,
// over-provisioning factor, and seed combination, the engine must uphold the
// physical invariants (budget, cap range, progress monotonicity) that the
// run_experiment asserts internally, and produce sane outcomes.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"

namespace perq {
namespace {

struct Scenario {
  const char* policy;
  double f;
  std::uint64_t seed;

  friend void PrintTo(const Scenario& s, std::ostream* os) {
    *os << s.policy << "_f" << s.f << "_s" << s.seed;
  }
};

class InvariantSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(InvariantSweep, EngineUpholdsPhysicalInvariants) {
  const auto& sc = GetParam();
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTardis;
  cfg.trace.job_count = 500;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = sc.seed;
  cfg.worst_case_nodes = 8;
  cfg.over_provision_factor = sc.f;
  cfg.duration_s = 3600.0;

  core::RunResult r;
  const std::string name = sc.policy;
  if (name == "perq") {
    core::PerqPolicy perq(
        &core::canonical_node_model(), cfg.worst_case_nodes,
        static_cast<std::size_t>(sc.f * double(cfg.worst_case_nodes) + 0.5));
    r = core::run_experiment(cfg, perq);
  } else {
    std::unique_ptr<policy::PowerPolicy> p;
    if (name == "fop") p = policy::make_fop();
    if (name == "sjs") p = policy::make_sjs();
    if (name == "ljs") p = policy::make_ljs();
    if (name == "srn") p = policy::make_srn();
    ASSERT_NE(p, nullptr);
    r = core::run_experiment(cfg, *p);
  }

  // The engine's internal PERQ_ASSERTs already police the budget each
  // interval; these are the observable end-state invariants.
  EXPECT_LE(r.peak_committed_w, static_cast<double>(cfg.worst_case_nodes) * 290.0 + 1e-3);
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_LE(r.mean_power_draw_w, static_cast<double>(cfg.worst_case_nodes) * 290.0 + 1e-9);
  for (const auto& j : r.finished) {
    EXPECT_GE(j.runtime_s, j.runtime_ref_s - cfg.control_interval_s - 1e-6);
    EXPECT_LE(j.finish_s, cfg.duration_s + cfg.control_interval_s);
    EXPECT_GE(j.start_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantSweep,
    ::testing::Values(Scenario{"fop", 1.0, 1}, Scenario{"fop", 1.5, 2},
                      Scenario{"fop", 2.0, 3}, Scenario{"sjs", 1.5, 4},
                      Scenario{"sjs", 2.0, 5}, Scenario{"ljs", 2.0, 6},
                      Scenario{"srn", 1.5, 7}, Scenario{"srn", 2.0, 8},
                      Scenario{"perq", 1.2, 9}, Scenario{"perq", 1.5, 10},
                      Scenario{"perq", 2.0, 11}, Scenario{"perq", 2.0, 12}));

TEST(InvariantSweep, JainIndexOrdersPoliciesByFairness) {
  // Jain's index over relative performance penalizes dispersion from *any*
  // source -- including the app mix's inherent sensitivity spread -- so FOP
  // is not necessarily top by this metric (its uniform caps hurt sensitive
  // apps unevenly). The robust ordering is PERQ above the throughput-greedy
  // SRN, and PERQ close to 1.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 8;
  cfg.trace.seed = 11;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 4 * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);

  const auto jain_of = [&](policy::PowerPolicy& p) {
    const auto r = core::run_experiment(cfg, p);
    return metrics::jain_fairness_index(metrics::relative_performance(r));
  };
  auto srn = policy::make_srn();
  core::PerqPolicy perq(&core::canonical_node_model(), 16, 32);
  const double j_srn = jain_of(*srn);
  const double j_perq = jain_of(perq);
  EXPECT_GT(j_perq, j_srn);
  EXPECT_GT(j_perq, 0.9);
}

}  // namespace
}  // namespace perq
