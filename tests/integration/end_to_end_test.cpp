// End-to-end integration tests: the full PERQ stack (trace -> scheduler ->
// target generator -> MPC -> QP -> simulated cluster) reproducing the
// paper's qualitative claims on small instances.
#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "control/estimator.hpp"
#include "control/mpc.hpp"
#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"
#include "sim/node.hpp"

namespace perq {
namespace {

core::EngineConfig trinity_config(double f, double hours = 4.0) {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 8;
  cfg.trace.seed = 11;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

TEST(EndToEnd, PerqStaysFairRelativeToFop) {
  auto cfg = trinity_config(2.0);
  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);
  core::PerqPolicy perq(&core::canonical_node_model(), cfg.worst_case_nodes, 32);
  const auto perq_run = core::run_experiment(cfg, perq);
  const auto fair = metrics::degradation_vs_baseline(perq_run, fop_run);
  ASSERT_GT(fair.compared_jobs, 20u);
  // Paper: PERQ keeps mean degradation below ~8-10%.
  EXPECT_LT(fair.mean_degradation_pct, 10.0);
}

TEST(EndToEnd, PerqThroughputAtLeastFopAtHighF) {
  auto cfg = trinity_config(2.0, 6.0);
  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);
  core::PerqPolicy perq(&core::canonical_node_model(), cfg.worst_case_nodes, 32);
  const auto perq_run = core::run_experiment(cfg, perq);
  // Allow a small noise band; the headline claim is PERQ >= FOP.
  EXPECT_GE(perq_run.jobs_completed + 5, fop_run.jobs_completed);
}

TEST(EndToEnd, SrnIsLessFairThanPerq) {
  auto cfg = trinity_config(2.0, 6.0);
  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);
  auto srn = policy::make_srn();
  const auto srn_run = core::run_experiment(cfg, *srn);
  core::PerqPolicy perq(&core::canonical_node_model(), cfg.worst_case_nodes, 32);
  const auto perq_run = core::run_experiment(cfg, perq);
  const auto srn_fair = metrics::degradation_vs_baseline(srn_run, fop_run);
  const auto perq_fair = metrics::degradation_vs_baseline(perq_run, fop_run);
  // Paper: SRN is 2-3x worse than PERQ on both fairness metrics.
  EXPECT_GT(srn_fair.mean_degradation_pct, 1.5 * perq_fair.mean_degradation_pct);
  EXPECT_GT(srn_fair.max_degradation_pct, perq_fair.max_degradation_pct);
}

TEST(EndToEnd, PowerHandoffBetweenSensitivityClasses) {
  // Fig. 12 scenario: a low-sensitivity and a high-sensitivity application
  // compete for a constrained budget; PERQ must discover the asymmetry and
  // shift power toward the sensitive application.
  const auto& model = core::canonical_node_model();
  const auto& aspa = apps::find_app("ASPA");
  const auto& moc = apps::find_app("SimpleMOC");

  trace::JobSpec s1;
  s1.id = 1;
  s1.nodes = 1;
  s1.runtime_ref_s = 1e5;
  trace::JobSpec s2 = s1;
  s2.id = 2;
  sched::Job j1(s1, &aspa), j2(s2, &moc);
  j1.start(0.0, {0});
  j2.start(0.0, {1});

  Rng rng(5);
  sim::Node n1(0, rng.split()), n2(1, rng.split());
  control::JobEstimator e1(&model, 90.0), e2(&model, 90.0);
  control::TargetGenerator tg(8.0, 1, 2);
  control::MpcController mpc;

  double cap1 = 145.0, cap2 = 145.0;
  const double budget = 300.0;
  for (int k = 0; k < 80; ++k) {
    n1.set_cap(cap1);
    n2.set_cap(cap2);
    const auto m1 = n1.step_busy(10.0, aspa, 0);
    const auto m2 = n2.step_busy(10.0, moc, 0);
    e1.update(cap1, m1.ips);
    e2.update(cap2, m2.ips);
    j1.record_interval(10.0, n1.perf_fraction(aspa, 0), m1.ips, cap1);
    j2.record_interval(10.0, n2.perf_fraction(moc, 0), m2.ips, cap2);
    std::vector<control::ControlledJob> cj{{&j1, &e1}, {&j2, &e2}};
    const auto t = tg.generate(cj);
    const auto d = mpc.decide(cj, t, {cap1, cap2}, budget);
    cap1 = d.caps_w[0];
    cap2 = d.caps_w[1];
  }
  // The high-sensitivity app must end with substantially more power...
  EXPECT_GT(cap2, cap1 + 40.0);
  // ...without destroying the low-sensitivity app's performance.
  EXPECT_GT(n1.perf_fraction(aspa, 0), 0.85);
  EXPECT_GT(n2.perf_fraction(moc, 0), 0.60);
}

TEST(EndToEnd, PerqDecisionLatencyIsSmall) {
  // Paper Fig. 13: the controller decides within fractions of a second.
  auto cfg = trinity_config(2.0, 1.0);
  core::PerqPolicy perq(&core::canonical_node_model(), cfg.worst_case_nodes, 32);
  (void)core::run_experiment(cfg, perq);
  const auto s = metrics::summarize_decision_times(perq.decision_seconds());
  ASSERT_GT(s.decisions, 100u);
  EXPECT_LT(s.p80_s, 0.5);
}

TEST(EndToEnd, ControlIntervalInsensitivity) {
  // Paper Fig. 9: throughput degrades only mildly at longer intervals.
  std::size_t at_10 = 0, at_60 = 0;
  for (double dt : {10.0, 60.0}) {
    auto cfg = trinity_config(2.0, 4.0);
    cfg.control_interval_s = dt;
    core::PerqPolicy perq(&core::canonical_node_model(), cfg.worst_case_nodes, 32);
    const auto r = core::run_experiment(cfg, perq);
    (dt == 10.0 ? at_10 : at_60) = r.jobs_completed;
  }
  EXPECT_GT(at_60, static_cast<std::size_t>(0.85 * static_cast<double>(at_10)));
}

TEST(EndToEnd, SjsFavorsSmallJobs) {
  auto cfg = trinity_config(2.0, 4.0);
  auto sjs = policy::make_sjs();
  const auto r = core::run_experiment(cfg, *sjs);
  // Under SJS, small jobs complete disproportionately: the mean node count
  // of finished jobs must be below the trace-wide mean.
  const auto trace_stats = trace::compute_stats(trace::generate_trace(cfg.trace));
  double mean_nodes = 0.0;
  for (const auto& j : r.finished) mean_nodes += static_cast<double>(j.nodes);
  mean_nodes /= static_cast<double>(r.finished.size());
  EXPECT_LT(mean_nodes, trace_stats.mean_nodes);
}

}  // namespace
}  // namespace perq
