#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/catalog.hpp"
#include "util/require.hpp"

namespace perq::trace {
namespace {

TEST(NormalSurvival, KnownValues) {
  EXPECT_NEAR(normal_survival(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_survival(1.0), 0.15866, 1e-4);
  EXPECT_NEAR(normal_survival(-1.0), 0.84134, 1e-4);
  EXPECT_NEAR(normal_survival(4.0), 3.17e-5, 1e-5);
}

struct SystemTargets {
  SystemModel system;
  double mean_s;
  double frac_over_30min;

  friend void PrintTo(const SystemTargets& s, std::ostream* os) {
    *os << to_string(s.system);
  }
};

const SystemTargets kTargets[] = {
    // Published moments (paper Sec. 2.1): Mira mean 72 min, 62% > 30 min;
    // Trinity mean 30 min, 46% > 30 min. Tardis targets are ours.
    {SystemModel::kMira, 72 * 60.0, 0.62},
    {SystemModel::kTrinity, 30 * 60.0, 0.46},
    {SystemModel::kTardis, 25 * 60.0, 0.32},
};

class RuntimeCalibration : public ::testing::TestWithParam<SystemTargets> {};

TEST_P(RuntimeCalibration, AnalyticMomentsMatchPublishedTargets) {
  const auto& t = GetParam();
  const auto dist = RuntimeDistribution::for_system(t.system);
  EXPECT_NEAR(dist.mean(), t.mean_s, 0.05 * t.mean_s);
  EXPECT_NEAR(dist.fraction_above(1800.0), t.frac_over_30min, 0.03);
}

TEST_P(RuntimeCalibration, SampledMomentsMatchAnalytic) {
  const auto& t = GetParam();
  const auto dist = RuntimeDistribution::for_system(t.system);
  Rng rng(77);
  double sum = 0.0;
  int over = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double r = dist.sample(rng);
    sum += r;
    if (r > 1800.0) ++over;
    EXPECT_GE(r, dist.min_runtime_s());
    EXPECT_LE(r, dist.max_runtime_s());
  }
  // Clamping to [min, max] shifts the sampled moments slightly off the
  // unclamped analytic values; allow for that.
  EXPECT_NEAR(sum / n, t.mean_s, 0.08 * t.mean_s);
  EXPECT_NEAR(static_cast<double>(over) / n, t.frac_over_30min, 0.04);
}

TEST_P(RuntimeCalibration, FractionAboveIsMonotoneDecreasing) {
  const auto dist = RuntimeDistribution::for_system(GetParam().system);
  double prev = 1.0;
  for (double t = 60.0; t < 20000.0; t *= 1.5) {
    const double f = dist.fraction_above(t);
    EXPECT_LE(f, prev + 1e-12);
    EXPECT_GE(f, 0.0);
    prev = f;
  }
  EXPECT_THROW(dist.fraction_above(0.0), precondition_error);
}

INSTANTIATE_TEST_SUITE_P(Systems, RuntimeCalibration, ::testing::ValuesIn(kTargets));

TraceConfig small_trace(SystemModel m, std::uint64_t seed = 3) {
  TraceConfig cfg;
  cfg.system = m;
  cfg.job_count = 3000;
  cfg.max_job_nodes = 32;
  cfg.seed = seed;
  return cfg;
}

TEST(Trace, GeneratesRequestedCountWithSequentialIds) {
  auto jobs = generate_trace(small_trace(SystemModel::kMira));
  ASSERT_EQ(jobs.size(), 3000u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<int>(i));
  }
}

TEST(Trace, DeterministicForSeed) {
  auto a = generate_trace(small_trace(SystemModel::kTrinity, 5));
  auto b = generate_trace(small_trace(SystemModel::kTrinity, 5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_DOUBLE_EQ(a[i].runtime_ref_s, b[i].runtime_ref_s);
    EXPECT_EQ(a[i].app_index, b[i].app_index);
  }
}

TEST(Trace, MiraJobSizesArePowersOfTwo) {
  auto jobs = generate_trace(small_trace(SystemModel::kMira));
  for (const auto& j : jobs) {
    EXPECT_EQ(j.nodes & (j.nodes - 1), 0u) << j.nodes;  // power of two
    EXPECT_GE(j.nodes, 1u);
    EXPECT_LE(j.nodes, 32u);
  }
}

TEST(Trace, TrinityJobSizesAreArbitraryButBounded) {
  auto jobs = generate_trace(small_trace(SystemModel::kTrinity));
  bool saw_non_power_of_two = false;
  for (const auto& j : jobs) {
    EXPECT_GE(j.nodes, 1u);
    EXPECT_LE(j.nodes, 32u);
    if ((j.nodes & (j.nodes - 1)) != 0) saw_non_power_of_two = true;
  }
  EXPECT_TRUE(saw_non_power_of_two);
}

TEST(Trace, TardisJobsAreSmall) {
  auto cfg = small_trace(SystemModel::kTardis);
  cfg.max_job_nodes = 15;
  for (const auto& j : generate_trace(cfg)) {
    EXPECT_GE(j.nodes, 1u);
    EXPECT_LE(j.nodes, 4u);
  }
}

TEST(Trace, SmallJobsDominateMira) {
  auto jobs = generate_trace(small_trace(SystemModel::kMira));
  std::size_t small = 0;
  for (const auto& j : jobs) {
    if (j.nodes <= 4) ++small;
  }
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(jobs.size()), 0.5);
}

TEST(Trace, AppAssignmentCoversCatalogUniformly) {
  auto jobs = generate_trace(small_trace(SystemModel::kMira));
  std::vector<int> counts(apps::ecp_catalog().size(), 0);
  for (const auto& j : jobs) {
    ASSERT_LT(j.app_index, counts.size());
    ++counts[j.app_index];
  }
  // Each of the ten apps should get roughly 10% +- 3pp of the jobs.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / static_cast<double>(jobs.size()), 0.1, 0.03);
  }
}

TEST(Trace, PhaseOffsetsVary) {
  auto jobs = generate_trace(small_trace(SystemModel::kMira));
  std::set<double> offsets;
  for (std::size_t i = 0; i < 50; ++i) offsets.insert(jobs[i].phase_offset_s);
  EXPECT_GT(offsets.size(), 40u);
}

TEST(Trace, ValidatesConfig) {
  auto cfg = small_trace(SystemModel::kMira);
  cfg.job_count = 0;
  EXPECT_THROW(generate_trace(cfg), precondition_error);
  cfg = small_trace(SystemModel::kMira);
  cfg.max_job_nodes = 0;
  EXPECT_THROW(generate_trace(cfg), precondition_error);
}

TEST(TraceStats, ComputesSummary) {
  std::vector<JobSpec> jobs;
  jobs.push_back({0, 2, 600.0, 0, 0.0});
  jobs.push_back({1, 4, 2400.0, 1, 0.0});
  jobs.push_back({2, 6, 3600.0, 2, 0.0});
  const auto s = compute_stats(jobs);
  EXPECT_DOUBLE_EQ(s.mean_runtime_s, 2200.0);
  EXPECT_DOUBLE_EQ(s.median_runtime_s, 2400.0);
  EXPECT_NEAR(s.fraction_over_30min, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_nodes, 4.0);
  EXPECT_EQ(s.max_nodes, 6u);
}

TEST(TraceStats, RejectsEmpty) { EXPECT_THROW(compute_stats({}), precondition_error); }

TEST(Trace, WalltimeEstimatesAreInflatedRoundedAndSeeded) {
  auto jobs = generate_trace(small_trace(SystemModel::kMira, 9));
  auto again = generate_trace(small_trace(SystemModel::kMira, 9));
  double pad_sum = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    ASSERT_GT(j.walltime_est_s, 0.0);
    // Never below the true runtime, never beyond the pad cap (+ rounding).
    EXPECT_GE(j.walltime_est_s, j.runtime_ref_s);
    EXPECT_LE(j.walltime_est_s, 10.0 * j.runtime_ref_s + 300.0);
    // Round-number walltimes: 5-minute granularity.
    EXPECT_DOUBLE_EQ(std::fmod(j.walltime_est_s, 300.0), 0.0);
    EXPECT_DOUBLE_EQ(j.walltime_est_s, again[i].walltime_est_s);
    pad_sum += j.walltime_est_s / j.runtime_ref_s;
  }
  // Estimates are inflated on average (median pad 1.6).
  EXPECT_GT(pad_sum / static_cast<double>(jobs.size()), 1.3);
}

TEST(Trace, EstimateSynthesisDoesNotPerturbThePrimaryStream) {
  // The pre-estimate generator must be recoverable bit-for-bit: disabling
  // estimates (or changing their knobs) leaves nodes/runtime/app/phase
  // untouched for the same seed.
  auto base = small_trace(SystemModel::kTrinity, 13);
  auto no_est = base;
  no_est.estimate_pad_median = 0.0;
  auto wide_est = base;
  wide_est.estimate_pad_sigma = 1.3;
  const auto a = generate_trace(base);
  const auto b = generate_trace(no_est);
  const auto c = generate_trace(wide_est);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_DOUBLE_EQ(a[i].runtime_ref_s, b[i].runtime_ref_s);
    EXPECT_EQ(a[i].app_index, b[i].app_index);
    EXPECT_DOUBLE_EQ(a[i].phase_offset_s, b[i].phase_offset_s);
    EXPECT_DOUBLE_EQ(b[i].walltime_est_s, 0.0);
    EXPECT_EQ(a[i].nodes, c[i].nodes);
    EXPECT_DOUBLE_EQ(a[i].runtime_ref_s, c[i].runtime_ref_s);
  }
}

TEST(Trace, ArrivalsArePoissonOverTheSpan) {
  auto cfg = small_trace(SystemModel::kTrinity, 21);
  cfg.job_count = 10000;
  cfg.arrival_span_s = 86400.0;
  const auto jobs = generate_trace(cfg);
  double prev = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time_s, prev);  // non-decreasing by construction
    prev = j.submit_time_s;
  }
  // Mean arrival time of a homogeneous process over [0, span] ~ span/2.
  double sum = 0.0;
  for (const auto& j : jobs) sum += j.submit_time_s;
  EXPECT_NEAR(sum / static_cast<double>(jobs.size()), 43200.0, 4000.0);
  // Default config: everyone arrives at t = 0.
  for (const auto& j : generate_trace(small_trace(SystemModel::kTrinity))) {
    EXPECT_DOUBLE_EQ(j.submit_time_s, 0.0);
  }
}

TEST(Trace, UsersFollowAZipfishSplit) {
  auto cfg = small_trace(SystemModel::kMira, 4);
  cfg.job_count = 10000;
  cfg.user_count = 16;
  const auto jobs = generate_trace(cfg);
  std::vector<int> counts(cfg.user_count, 0);
  for (const auto& j : jobs) {
    ASSERT_LT(j.user_id, cfg.user_count);
    ++counts[j.user_id];
  }
  EXPECT_GT(counts[0], counts[8]);  // heavy head
  int active = 0;
  for (int c : counts) active += c > 0;
  EXPECT_EQ(active, 16);  // long tail still present
}

TEST(TraceStats, GeneratedTraceMatchesTargets) {
  auto cfg = small_trace(SystemModel::kMira);
  cfg.job_count = 20000;
  const auto s = compute_stats(generate_trace(cfg));
  EXPECT_NEAR(s.mean_runtime_s, 72 * 60.0, 0.08 * 72 * 60.0);
  EXPECT_NEAR(s.fraction_over_30min, 0.62, 0.04);
}

}  // namespace
}  // namespace perq::trace
