#include "control/mpc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apps/catalog.hpp"
#include "core/node_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::control {
namespace {

class MpcTest : public ::testing::Test {
 protected:
  sched::Job* add_job(int id, std::size_t nodes) {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = 600.0;
    s.app_index = 0;
    jobs_.push_back(std::make_unique<sched::Job>(s, &apps::find_app("ASPA")));
    std::vector<std::size_t> ids(nodes);
    for (auto& n : ids) n = next_node_++;
    jobs_.back()->start(0.0, std::move(ids));
    estimators_.push_back(
        std::make_unique<JobEstimator>(&core::canonical_node_model(), 145.0));
    return jobs_.back().get();
  }

  std::vector<ControlledJob> controlled() {
    std::vector<ControlledJob> out;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      out.push_back({jobs_[i].get(), estimators_[i].get()});
    }
    return out;
  }

  Targets targets_for(const std::vector<ControlledJob>& cj, double ratio = 8.0,
                      std::size_t nwp = 8, std::size_t nop = 16) {
    return TargetGenerator(ratio, nwp, nop).generate(cj);
  }

  std::vector<std::unique_ptr<sched::Job>> jobs_;
  std::vector<std::unique_ptr<JobEstimator>> estimators_;
  std::size_t next_node_ = 0;
};

TEST_F(MpcTest, ConfigValidation) {
  MpcConfig cfg;
  cfg.horizon = 0;
  EXPECT_THROW(MpcController{cfg}, precondition_error);
  cfg = MpcConfig{};
  cfg.ridge = 0.0;
  EXPECT_THROW(MpcController{cfg}, precondition_error);
  cfg = MpcConfig{};
  cfg.weight_dp = -1.0;
  EXPECT_THROW(MpcController{cfg}, precondition_error);
}

TEST_F(MpcTest, CapsWithinBoundsAndBudget) {
  add_job(0, 2);
  add_job(1, 3);
  MpcController mpc;
  auto cj = controlled();
  const double budget = 5 * 160.0;
  const auto d = mpc.decide(cj, targets_for(cj), {145.0, 145.0}, budget);
  ASSERT_EQ(d.caps_w.size(), 2u);
  double committed = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(d.caps_w[i], 90.0 - 1e-9);
    EXPECT_LE(d.caps_w[i], 290.0 + 1e-9);
    committed += d.caps_w[i] * static_cast<double>(cj[i].job->spec().nodes);
  }
  EXPECT_LE(committed, budget + 1e-3);
}

TEST_F(MpcTest, SymmetricJobsGetEqualCaps) {
  add_job(0, 2);
  add_job(1, 2);
  MpcController mpc;
  auto cj = controlled();
  const auto d = mpc.decide(cj, targets_for(cj), {145.0, 145.0}, 4 * 150.0);
  EXPECT_NEAR(d.caps_w[0], d.caps_w[1], 1.0);
}

TEST_F(MpcTest, HigherGainJobGetsMorePowerUnderTightBudget) {
  sched::Job* a = add_job(0, 1);
  sched::Job* b = add_job(1, 1);
  // Train estimator 1 to look much more cap-sensitive than estimator 0,
  // with both *below* their fairness targets so the tracking terms engage.
  Rng rng(5);
  for (int k = 0; k < 120; ++k) {
    const double cap = rng.uniform(90.0, 290.0);
    estimators_[0]->update(cap, 1.5e9);                                // flat
    estimators_[1]->update(cap, std::max(0.0, 1.5e9 + 1.6e7 * (cap - 190.0)));
  }
  a->record_interval(10.0, 1.0, 1.45e9, 145.0);
  b->record_interval(10.0, 1.0, 0.8e9, 145.0);
  MpcController mpc;
  auto cj = controlled();
  const auto d = mpc.decide(cj, targets_for(cj), {145.0, 145.0}, 2 * 145.0);
  EXPECT_GT(d.caps_w[1], d.caps_w[0] + 20.0);
}

TEST_F(MpcTest, AmpleBudgetPushesCapsHigh) {
  add_job(0, 1);
  MpcController mpc;
  auto cj = controlled();
  // Unreachable system target, plenty of budget: the cap should climb well
  // above the previous value within a few decisions.
  double cap = 145.0;
  for (int k = 0; k < 20; ++k) {
    const auto d = mpc.decide(cj, targets_for(cj), {cap}, 290.0);
    cap = d.caps_w[0];
  }
  EXPECT_GT(cap, 230.0);
}

TEST_F(MpcTest, DeltaPWeightLimitsSlewRate) {
  add_job(0, 1);
  auto cj = controlled();
  MpcConfig fast;
  fast.weight_dp = 0.1;
  MpcConfig slow;
  slow.weight_dp = 50.0;
  const auto d_fast = MpcController(fast).decide(cj, targets_for(cj), {90.0}, 290.0);
  const auto d_slow = MpcController(slow).decide(cj, targets_for(cj), {90.0}, 290.0);
  EXPECT_GT(d_fast.caps_w[0] - 90.0, d_slow.caps_w[0] - 90.0);
}

TEST_F(MpcTest, BudgetBindsExactlyWhenDemandExceedsIt) {
  add_job(0, 2);
  add_job(1, 2);
  MpcController mpc;
  auto cj = controlled();
  // Both jobs want power (targets above measurements); tight budget.
  const double budget = 4 * 120.0;
  auto t = targets_for(cj);
  // Run a few intervals so the plan settles.
  std::vector<double> prev{120.0, 120.0};
  MpcDecision d;
  for (int k = 0; k < 10; ++k) {
    d = mpc.decide(cj, t, prev, budget);
    prev = d.caps_w;
  }
  const double committed = 2 * d.caps_w[0] + 2 * d.caps_w[1];
  EXPECT_NEAR(committed, budget, 2.0);
}

TEST_F(MpcTest, HorizonOneWorks) {
  add_job(0, 1);
  MpcConfig cfg;
  cfg.horizon = 1;
  MpcController mpc(cfg);
  auto cj = controlled();
  const auto d = mpc.decide(cj, targets_for(cj), {145.0}, 290.0);
  EXPECT_EQ(d.caps_w.size(), 1u);
  EXPECT_EQ(d.status, qp::SolveStatus::kOptimal);
}

class HorizonSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HorizonSweep, SolvesCleanlyAtEveryHorizon) {
  trace::JobSpec s;
  s.id = 0;
  s.nodes = 2;
  s.runtime_ref_s = 600.0;
  s.app_index = 0;
  sched::Job job(s, &apps::find_app("ASPA"));
  job.start(0.0, {0, 1});
  JobEstimator est(&core::canonical_node_model(), 145.0);
  MpcConfig cfg;
  cfg.horizon = GetParam();
  MpcController mpc(cfg);
  std::vector<ControlledJob> cj{{&job, &est}};
  const auto t = TargetGenerator(8.0, 8, 16).generate(cj);
  const auto d = mpc.decide(cj, t, {145.0}, 2 * 290.0);
  EXPECT_EQ(d.status, qp::SolveStatus::kOptimal);
  EXPECT_GE(d.caps_w[0], 90.0);
  EXPECT_LE(d.caps_w[0], 290.0);
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonSweep, ::testing::Values(1, 2, 3, 4, 5, 8));

TEST_F(MpcTest, WarmStartSurvivesJobChurn) {
  add_job(0, 1);
  add_job(1, 1);
  MpcController mpc;
  auto cj = controlled();
  auto t = targets_for(cj);
  (void)mpc.decide(cj, t, {145.0, 145.0}, 2 * 200.0);
  // Drop job 0, add job 2: the warm start must still map job 1 correctly.
  add_job(2, 1);
  std::vector<ControlledJob> cj2{{jobs_[1].get(), estimators_[1].get()},
                                 {jobs_[2].get(), estimators_[2].get()}};
  const auto t2 = targets_for(cj2);
  const auto d = mpc.decide(cj2, t2, {145.0, 145.0}, 2 * 200.0);
  EXPECT_EQ(d.status, qp::SolveStatus::kOptimal);
  mpc.reset();
  const auto d2 = mpc.decide(cj2, t2, {145.0, 145.0}, 2 * 200.0);
  EXPECT_NEAR(d.caps_w[0], d2.caps_w[0], 5.0);
}

TEST_F(MpcTest, InputValidation) {
  MpcController mpc;
  add_job(0, 1);
  auto cj = controlled();
  auto t = targets_for(cj);
  EXPECT_THROW(mpc.decide({}, t, {}, 290.0), precondition_error);
  EXPECT_THROW(mpc.decide(cj, t, {145.0, 145.0}, 290.0), precondition_error);
  Targets bad = t;
  bad.job_target_ips.clear();
  EXPECT_THROW(mpc.decide(cj, bad, {145.0}, 290.0), precondition_error);
}

}  // namespace
}  // namespace perq::control
