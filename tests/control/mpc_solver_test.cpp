// Solver-path and threading invariances of MpcController::decide:
//  * the thread-pooled free-response computation must be bit-for-bit
//    identical to the serial loop (the decomposition is index-addressed, so
//    any divergence is a real data race or nondeterminism), and
//  * the structured solver path must agree with the dense debug/baseline
//    adapter on the resulting caps to well below a watt.
#include "control/mpc.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/catalog.hpp"
#include "core/node_model.hpp"
#include "util/rng.hpp"

namespace perq::control {
namespace {

class MpcSolverTest : public ::testing::Test {
 protected:
  void build_fleet(std::size_t nj) {
    Rng rng(17);
    for (std::size_t i = 0; i < nj; ++i) {
      trace::JobSpec s;
      s.id = static_cast<int>(i);
      s.nodes = 1 + (i % 3);
      s.runtime_ref_s = 600.0;
      s.app_index = i % apps::ecp_catalog().size();
      jobs_.push_back(
          std::make_unique<sched::Job>(s, &apps::ecp_catalog()[s.app_index]));
      std::vector<std::size_t> ids(s.nodes);
      for (auto& n : ids) n = next_node_++;
      jobs_.back()->start(0.0, std::move(ids));

      auto est = std::make_unique<JobEstimator>(&core::canonical_node_model(),
                                                145.0);
      const double slope = 1.6e7 * static_cast<double>(i % 4) / 3.0;
      for (int k = 0; k < 30; ++k) {
        const double cap = rng.uniform(90.0, 290.0);
        est->update(cap, std::max(0.0, 1.2e9 + slope * (cap - 190.0)));
      }
      estimators_.push_back(std::move(est));
      jobs_.back()->record_interval(
          10.0, 1.0, (i % 2 == 0 ? 1.8e9 : 0.9e9) * static_cast<double>(s.nodes),
          145.0);
      total_nodes_ += s.nodes;
    }
  }

  std::vector<ControlledJob> controlled() const {
    std::vector<ControlledJob> out;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      out.push_back({jobs_[i].get(), estimators_[i].get()});
    }
    return out;
  }

  Targets targets() const {
    return TargetGenerator(8.0, total_nodes_, 2 * total_nodes_)
        .generate(controlled());
  }

  std::vector<std::unique_ptr<sched::Job>> jobs_;
  std::vector<std::unique_ptr<JobEstimator>> estimators_;
  std::size_t next_node_ = 0;
  std::size_t total_nodes_ = 0;
};

TEST_F(MpcSolverTest, ParallelDecideMatchesSerialBitForBit) {
  build_fleet(24);
  MpcConfig serial_cfg;
  serial_cfg.parallel = false;
  MpcConfig parallel_cfg;
  parallel_cfg.parallel = true;
  MpcController serial(serial_cfg);
  MpcController parallel(parallel_cfg);

  const auto cj = controlled();
  const auto t = targets();
  const double budget = static_cast<double>(total_nodes_) * 160.0;
  std::vector<double> prev_s(cj.size(), 145.0);
  std::vector<double> prev_p(cj.size(), 145.0);
  for (int step = 0; step < 6; ++step) {
    const auto ds = serial.decide(cj, t, prev_s, budget);
    const auto dp = parallel.decide(cj, t, prev_p, budget);
    ASSERT_EQ(ds.caps_w.size(), dp.caps_w.size());
    for (std::size_t i = 0; i < ds.caps_w.size(); ++i) {
      // Exact equality: the parallel decomposition is index-addressed, so
      // every floating-point operation happens in the same order per job.
      EXPECT_EQ(ds.caps_w[i], dp.caps_w[i]) << "step " << step << " job " << i;
    }
    EXPECT_EQ(ds.objective, dp.objective) << "step " << step;
    prev_s = ds.caps_w;
    prev_p = dp.caps_w;
  }
}

TEST_F(MpcSolverTest, StructuredPathMatchesDenseAdapter) {
  build_fleet(12);
  MpcConfig structured_cfg;
  structured_cfg.solver = MpcConfig::SolverPath::kStructured;
  MpcConfig dense_cfg;
  dense_cfg.solver = MpcConfig::SolverPath::kDense;
  MpcController structured(structured_cfg);
  MpcController dense(dense_cfg);

  const auto cj = controlled();
  const auto t = targets();
  const double budget = static_cast<double>(total_nodes_) * 150.0;
  std::vector<double> prev_s(cj.size(), 145.0);
  std::vector<double> prev_d(cj.size(), 145.0);
  for (int step = 0; step < 6; ++step) {
    const auto ds = structured.decide(cj, t, prev_s, budget);
    const auto dd = dense.decide(cj, t, prev_d, budget);
    EXPECT_EQ(ds.status, qp::SolveStatus::kOptimal);
    EXPECT_EQ(dd.status, qp::SolveStatus::kOptimal);
    EXPECT_NEAR(ds.objective, dd.objective, 1e-6 * (1.0 + std::abs(dd.objective)));
    for (std::size_t i = 0; i < ds.caps_w.size(); ++i) {
      EXPECT_NEAR(ds.caps_w[i], dd.caps_w[i], 1e-3) << "step " << step
                                                    << " job " << i;
    }
    prev_s = ds.caps_w;
    prev_d = dd.caps_w;
  }
}

}  // namespace
}  // namespace perq::control
