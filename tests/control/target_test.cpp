#include "control/target_generator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/catalog.hpp"
#include "core/node_model.hpp"
#include "util/require.hpp"

namespace perq::control {
namespace {

class TargetTest : public ::testing::Test {
 protected:
  sched::Job* add_job(int id, std::size_t nodes, double start_time = 0.0) {
    trace::JobSpec s;
    s.id = id;
    s.nodes = nodes;
    s.runtime_ref_s = 600.0;
    s.app_index = 0;
    jobs_.push_back(std::make_unique<sched::Job>(s, &apps::find_app("ASPA")));
    std::vector<std::size_t> ids(nodes);
    for (auto& n : ids) n = next_node_++;
    jobs_.back()->start(start_time, std::move(ids));
    estimators_.push_back(
        std::make_unique<JobEstimator>(&core::canonical_node_model(), 145.0));
    return jobs_.back().get();
  }

  std::vector<ControlledJob> controlled() {
    std::vector<ControlledJob> out;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      out.push_back({jobs_[i].get(), estimators_[i].get()});
    }
    return out;
  }

  std::vector<std::unique_ptr<sched::Job>> jobs_;
  std::vector<std::unique_ptr<JobEstimator>> estimators_;
  std::size_t next_node_ = 0;
};

TEST_F(TargetTest, ConstructionValidation) {
  EXPECT_THROW(TargetGenerator(0.0, 8, 16), precondition_error);
  EXPECT_THROW(TargetGenerator(1.0, 0, 16), precondition_error);
  EXPECT_THROW(TargetGenerator(1.0, 16, 8), precondition_error);
  EXPECT_NO_THROW(TargetGenerator(4.0, 8, 16));
}

TEST_F(TargetTest, FairCapIsTdpOverF) {
  EXPECT_NEAR(TargetGenerator(4.0, 8, 16).fair_cap_w(), 145.0, 1e-9);
  EXPECT_NEAR(TargetGenerator(4.0, 10, 12).fair_cap_w(), 290.0 * 10 / 12, 1e-9);
  // f = 1: fair cap is the TDP itself.
  EXPECT_NEAR(TargetGenerator(4.0, 8, 8).fair_cap_w(), 290.0, 1e-9);
  // Extreme over-provisioning clamps at cap_min.
  EXPECT_NEAR(TargetGenerator(4.0, 8, 80).fair_cap_w(), 90.0, 1e-9);
}

TEST_F(TargetTest, JobTargetsScaleWithNodeCount) {
  add_job(0, 1);
  add_job(1, 4);
  TargetGenerator gen(4.0, 8, 16);
  const auto t = gen.generate(controlled());
  ASSERT_EQ(t.job_target_ips.size(), 2u);
  // Identical estimators: the 4-node job's aggregate target is 4x.
  EXPECT_NEAR(t.job_target_ips[1], 4.0 * t.job_target_ips[0], 1e-6);
}

TEST_F(TargetTest, SystemTargetScalesWithImprovementRatio) {
  add_job(0, 4);
  add_job(1, 4);
  const auto t4 = TargetGenerator(4.0, 8, 16).generate(controlled());
  const auto t8 = TargetGenerator(8.0, 8, 16).generate(controlled());
  EXPECT_NEAR(t8.system_target_ips, 2.0 * t4.system_target_ips, 1e-3);
}

TEST_F(TargetTest, WorstCasePrefixLimitsSystemTarget) {
  // N_WP = 4: only the first job (4 nodes, earliest start) fits A_WP.
  add_job(0, 4, 0.0);
  add_job(1, 4, 10.0);
  const auto t = TargetGenerator(1.0, 4, 8).generate(controlled());
  // System target = predicted IPS of job 0 at TDP (ratio 1).
  const double expected =
      4.0 * estimators_[0]->predict_steady_state(290.0);
  EXPECT_NEAR(t.system_target_ips, expected, 1e-3 * expected);
}

TEST_F(TargetTest, PrefixSkipsJobsTooLargeAndTakesSmallerOnes) {
  add_job(0, 3, 0.0);
  add_job(1, 4, 5.0);  // does not fit the remaining 1 node of N_WP=4
  add_job(2, 1, 9.0);  // fits
  const auto t = TargetGenerator(1.0, 4, 8).generate(controlled());
  const double expected = (3.0 + 1.0) * estimators_[0]->predict_steady_state(290.0);
  EXPECT_NEAR(t.system_target_ips, expected, 1e-3 * expected);
}

TEST_F(TargetTest, MonotonicityGuardRaisesTargetToMeasurement) {
  sched::Job* j = add_job(0, 2);
  // Job measured under a cap below the fair share, with measured IPS above
  // the model's prediction: the target must not sit below the measurement.
  const double high_ips = 10.0 * estimators_[0]->predict_steady_state(145.0);
  j->record_interval(10.0, 1.0, 2.0 * high_ips, 100.0);
  const auto t = TargetGenerator(4.0, 8, 16).generate(controlled());
  EXPECT_GE(t.job_target_ips[0], j->last_job_ips() - 1e-6);
}

TEST_F(TargetTest, MonotonicityGuardCapsTargetAboveFairCap) {
  sched::Job* j = add_job(0, 2);
  // Job running *above* the fair cap with low measured IPS: the fair-cap
  // target cannot exceed the measurement (plus the noise band).
  j->record_interval(10.0, 1.0, 1e6, 290.0);
  const auto t = TargetGenerator(4.0, 8, 16).generate(controlled());
  EXPECT_LE(t.job_target_ips[0], 1e6 * 1.02 + 1e-6);
}

TEST_F(TargetTest, UnmeasuredJobUsesModelPrediction) {
  add_job(0, 2);
  const auto t = TargetGenerator(4.0, 8, 16).generate(controlled());
  EXPECT_NEAR(t.job_target_ips[0], 2.0 * estimators_[0]->predict_steady_state(145.0),
              1e-6);
}

TEST_F(TargetTest, EmptyJobListGivesZeroSystemTarget) {
  const auto t = TargetGenerator(4.0, 8, 16).generate({});
  EXPECT_TRUE(t.job_target_ips.empty());
  EXPECT_DOUBLE_EQ(t.system_target_ips, 0.0);
}

TEST_F(TargetTest, RejectsNullEntries) {
  add_job(0, 1);
  auto cj = controlled();
  cj[0].estimator = nullptr;
  TargetGenerator gen(4.0, 8, 16);
  EXPECT_THROW(gen.generate(cj), precondition_error);
}

}  // namespace
}  // namespace perq::control
