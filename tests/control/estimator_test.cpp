#include "control/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/node_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::control {
namespace {

const sysid::IdentifiedModel& model() { return core::canonical_node_model(); }

EstimatorConfig no_floor_config() {
  EstimatorConfig cfg;
  cfg.min_gain_fraction = 0.0;
  return cfg;
}

TEST(Estimator, ConstructionValidation) {
  EXPECT_THROW(JobEstimator(nullptr, 145.0), precondition_error);
  EstimatorConfig cfg;
  cfg.forgetting = 0.0;
  EXPECT_THROW(JobEstimator(&model(), 145.0, cfg), precondition_error);
  cfg = EstimatorConfig{};
  cfg.initial_covariance = 0.0;
  EXPECT_THROW(JobEstimator(&model(), 145.0, cfg), precondition_error);
}

TEST(Estimator, PriorMatchesAverageTrainingApp) {
  JobEstimator est(&model(), 145.0);
  EXPECT_DOUBLE_EQ(est.gain(), model().y_scale());
  EXPECT_DOUBLE_EQ(est.offset(), model().y_scale());
  EXPECT_EQ(est.updates(), 0u);
  // With the prior, the steady-state prediction equals the shared model's.
  EXPECT_NEAR(est.predict_steady_state(200.0), model().steady_state(200.0),
              1e-6 * model().y_scale());
}

TEST(Estimator, InitialStateIsSteadyStateOfInitialCap) {
  JobEstimator est(&model(), 120.0);
  // At steady state of a constant input, stepping with the same input must
  // not move the output.
  const double y0 = est.model_output();
  JobEstimator est2 = est;
  est2.update(120.0, model().y_scale());
  EXPECT_NEAR(est2.model_output(), y0, 1e-9);
}

TEST(Estimator, LearnsAffineMapOfLinearPlant) {
  // Plant: ips = G * y_model + O exactly (by construction).
  const double true_gain = 3.5e9;
  const double true_offset = 1.2e9;
  JobEstimator est(&model(), 145.0, no_floor_config());
  Rng rng(4);
  for (int k = 0; k < 300; ++k) {
    const double cap = rng.uniform(90.0, 290.0);
    // Replicate the estimator's own LTI trajectory to generate the truth.
    JobEstimator probe = est;  // same state
    probe.update(cap, 0.0);    // advances state; output available afterwards
    const double y_model = probe.model_output();
    est.update(cap, true_gain * y_model + true_offset);
  }
  // The dead-zone hybrid (offset-only updates on unexcited samples)
  // trades a little asymptotic bias for drift immunity.
  EXPECT_NEAR(est.gain(), true_gain, 0.15 * true_gain);
  EXPECT_NEAR(est.offset(), true_offset, 0.15 * true_offset);
}

TEST(Estimator, DeadZoneFreezesGainWithoutExcitation) {
  JobEstimator est(&model(), 145.0, no_floor_config());
  // A couple of excited updates first.
  est.update(200.0, 2e9);
  est.update(120.0, 1.8e9);
  // Let the input EMA settle onto the constant cap (the dead zone gates on
  // the distance between the input and its running average).
  for (int k = 0; k < 30; ++k) est.update(150.0, 2e9);
  const double gain_before = est.gain();
  Rng rng(9);
  // Constant cap, noisy measurements: gain must not drift.
  for (int k = 0; k < 200; ++k) {
    est.update(150.0, 2e9 * (1.0 + rng.normal(0.0, 0.02)));
  }
  EXPECT_DOUBLE_EQ(est.gain(), gain_before);
}

TEST(Estimator, DeadZoneStillTracksOffset) {
  JobEstimator est(&model(), 150.0, no_floor_config());
  est.update(150.0, 2e9);
  // Output level shifts (phase change) at constant cap: offset must follow.
  for (int k = 0; k < 100; ++k) est.update(150.0, 3e9);
  const double pred = est.gain() * est.model_output() + est.offset();
  EXPECT_NEAR(pred, 3e9, 0.02 * 3e9);
}

TEST(Estimator, MinGainFloorHolds) {
  EstimatorConfig cfg;
  cfg.min_gain_fraction = 0.2;
  JobEstimator est(&model(), 145.0, cfg);
  Rng rng(11);
  // A totally insensitive plant: constant output despite cap changes.
  for (int k = 0; k < 300; ++k) {
    est.update(rng.uniform(90.0, 290.0), 2e9);
  }
  EXPECT_GE(est.gain(), 0.2 * model().y_scale() - 1e-6);
}

TEST(Estimator, GainReflectsSensitivityOrdering) {
  // Two plants with different cap sensitivity; the more sensitive one must
  // end with the larger gain.
  auto run = [&](double slope_per_watt) {
    JobEstimator est(&model(), 145.0, no_floor_config());
    Rng rng(21);
    for (int k = 0; k < 400; ++k) {
      const double cap = rng.uniform(90.0, 290.0);
      est.update(cap, 2e9 + slope_per_watt * (cap - 190.0));
    }
    return est.gain();
  };
  EXPECT_GT(run(1.5e7), run(2e6));
}

TEST(Estimator, SensitivityPerWattConsistent) {
  JobEstimator est(&model(), 145.0);
  EXPECT_NEAR(est.sensitivity_per_watt(),
              est.gain() * model().arx().dc_gain() / model().u_scale(), 1e-9);
  // Steady-state predictions must be consistent with the marginal slope.
  const double slope =
      (est.predict_steady_state(250.0) - est.predict_steady_state(150.0)) / 100.0;
  EXPECT_NEAR(slope, est.sensitivity_per_watt(), 1e-6 * std::abs(slope) + 1e-3);
}

TEST(Estimator, PredictHorizonConvergesToSteadyState) {
  JobEstimator est(&model(), 145.0);
  linalg::Vector caps(60, 220.0);
  const auto ips = est.predict_horizon(caps);
  ASSERT_EQ(ips.size(), 60u);
  EXPECT_NEAR(ips.back(), est.predict_steady_state(220.0),
              0.01 * est.predict_steady_state(220.0));
}

TEST(Estimator, PredictionsAreNonNegative) {
  JobEstimator est(&model(), 145.0, no_floor_config());
  // Train on a plant that would extrapolate negative at low caps.
  for (int k = 0; k < 50; ++k) est.update(280.0, 1e7);
  EXPECT_GE(est.predict_steady_state(90.0), 0.0);
  for (double v : est.predict_horizon(linalg::Vector(5, 90.0))) EXPECT_GE(v, 0.0);
}

TEST(Estimator, UpdateValidation) {
  JobEstimator est(&model(), 145.0);
  EXPECT_THROW(est.update(0.0, 1e9), precondition_error);
  EXPECT_THROW(est.update(145.0, -1.0), precondition_error);
}

}  // namespace
}  // namespace perq::control
