// Snapshot/restore under fault (ISSUE satellite): a controller snapshot
// taken while an agent is hung mid-fault must restore into a run that is
// bit-identical to the uninterrupted one, and the robustness counters must
// survive the codec round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/experiment.hpp"
#include "daemon/snapshot.hpp"
#include "net/loopback.hpp"

namespace perq::fault {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::PerqPolicy make_policy(const core::EngineConfig& cfg) {
  const auto total = static_cast<std::size_t>(
      cfg.over_provision_factor * double(cfg.worst_case_nodes) + 0.5);
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total);
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job order at " << i;
    EXPECT_EQ(bits(a.finished[i].finish_s), bits(b.finished[i].finish_s))
        << "job " << a.finished[i].id;
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_EQ(bits(a.traces[i].cap_w), bits(b.traces[i].cap_w))
        << "cap diverged at t=" << a.traces[i].t_s << " job "
        << a.traces[i].job_id;
  }
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(bits(a.mean_power_draw_w), bits(b.mean_power_draw_w));
}

/// Controller + plant over one loopback transport (mirrors the daemon test
/// rig; this file drives the agents' hang/rejoin script itself).
struct Rig {
  net::LoopbackTransport transport;
  core::PerqPolicy policy;
  std::unique_ptr<daemon::PerqController> controller;
  std::unique_ptr<daemon::DaemonPlant> plant;

  Rig(const core::EngineConfig& cfg, const daemon::ControllerConfig& ccfg,
      std::size_t agents)
      : policy(make_policy(cfg)) {
    controller = std::make_unique<daemon::PerqController>(
        transport.listen("perqd"), policy, ccfg);
    daemon::PlantConfig pcfg;
    pcfg.agents = agents;
    plant = std::make_unique<daemon::DaemonPlant>(cfg, transport, "perqd", pcfg);
    controller->pump();
  }
};

daemon::ControllerConfig fast_stale_cfg() {
  daemon::ControllerConfig ccfg;
  ccfg.decide_grace_ms = 5;
  ccfg.stale_after_ticks = 2;
  return ccfg;
}

TEST(SnapshotUnderFault, RestoreWhileAgentStaleIsBitIdentical) {
  const auto cfg = small_cfg();
  const std::uint64_t kHangAt = 40, kSwitch = 50, kRejoinAt = 60;
  const std::size_t kHungAgent = 1;

  // Run A: agent 1 hangs at tick 40 and rejoins at 60; one controller for
  // the whole horizon. Snapshot its state in passing at tick 50 -- while
  // the hung agent is stale and its jobs' watts are held.
  std::vector<std::uint8_t> snap;
  core::RunResult run_a;
  {
    Rig rig(cfg, fast_stale_cfg(), 2);
    bool hung = false, rejoined = false;
    while (!rig.plant->done()) {
      const std::uint64_t t = rig.plant->engine().tick();
      if (!hung && t >= kHangAt) {
        rig.plant->agent(kHungAgent).hang();
        hung = true;
      }
      if (!rejoined && t >= kRejoinAt) {
        rig.plant->agent(kHungAgent).reconnect(rig.transport.connect("perqd"));
        rejoined = true;
      }
      rig.plant->step([&rig] { rig.controller->service(); });
      if (snap.empty() && t + 1 >= kSwitch) {
        EXPECT_GE(rig.controller->last_stats().stale_agents, 1u)
            << "snapshot was meant to catch the run mid-fault";
        snap = daemon::encode_snapshot(rig.controller->state());
      }
    }
    ASSERT_TRUE(hung);
    ASSERT_TRUE(rejoined);
    run_a = rig.plant->finish("perq");
  }
  ASSERT_FALSE(snap.empty());

  // The snapshot itself must carry the fault history.
  {
    const auto state = daemon::decode_snapshot(snap.data(), snap.size());
    ASSERT_TRUE(state.has_value());
    EXPECT_GE(state->counters.stale_transitions, 1u);
  }

  // Run B: same hang/rejoin script, but at tick 50 the controller
  // "crashes" and a fresh one restores from the snapshot on a new address.
  // The still-hung agent keeps its dead connection and only dials the new
  // controller when its scripted rejoin comes.
  core::RunResult run_b;
  {
    Rig rig(cfg, fast_stale_cfg(), 2);
    core::PerqPolicy restored_policy = make_policy(cfg);
    std::unique_ptr<daemon::PerqController> restored;
    bool hung = false, rejoined = false, switched = false;
    while (!rig.plant->done()) {
      const std::uint64_t t = rig.plant->engine().tick();
      if (!hung && t >= kHangAt) {
        rig.plant->agent(kHungAgent).hang();
        hung = true;
      }
      if (!rejoined && t >= kRejoinAt) {
        rig.plant->agent(kHungAgent)
            .reconnect(rig.transport.connect("perqd-restarted"));
        rejoined = true;
      }
      if (switched) {
        rig.plant->step([&restored] { restored->service(); });
      } else {
        rig.plant->step([&rig] { rig.controller->service(); });
      }
      if (!switched && t + 1 >= kSwitch) {
        const auto state = daemon::decode_snapshot(snap.data(), snap.size());
        ASSERT_TRUE(state.has_value());
        restored = std::make_unique<daemon::PerqController>(
            rig.transport.listen("perqd-restarted"), restored_policy,
            fast_stale_cfg());
        restored->restore(*state);
        for (std::size_t i = 0; i < rig.plant->agent_count(); ++i) {
          if (i == kHungAgent) continue;  // hung processes do not reconnect
          rig.plant->agent(i).reconnect(
              rig.transport.connect("perqd-restarted"));
        }
        restored->pump();
        switched = true;
      }
    }
    ASSERT_TRUE(switched);
    ASSERT_TRUE(rejoined);
    // The restored controller inherited the pre-crash fault history.
    EXPECT_GE(restored->counters().stale_transitions, 1u);
    run_b = rig.plant->finish("perq");
  }

  expect_bit_identical(run_a, run_b);
}

// Snapshot framing regression (ISSUE satellite): the header carries magic,
// version, and a crc32 over the payload, so a corrupt or torn snapshot is
// rejected with a reason that tells the operator which failure it was --
// never restored into a controller.
TEST(SnapshotUnderFault, CorruptSnapshotsAreRejectedWithAReason) {
  const auto cfg = small_cfg();
  Rig rig(cfg, fast_stale_cfg(), 2);
  for (int i = 0; i < 10 && !rig.plant->done(); ++i) {
    rig.plant->step([&rig] { rig.controller->service(); });
  }
  const auto bytes = daemon::encode_snapshot(rig.controller->state());
  ASSERT_TRUE(daemon::decode_snapshot(bytes.data(), bytes.size()).has_value());

  std::string why;
  {  // Wrong file entirely: the magic check fires first.
    auto bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(daemon::decode_snapshot(bad.data(), bad.size(), &why));
    EXPECT_NE(why.find("magic"), std::string::npos) << why;
  }
  {  // A future (or garbage) version is refused, not misparsed.
    auto bad = bytes;
    bad[4] = 0xEE;
    EXPECT_FALSE(daemon::decode_snapshot(bad.data(), bad.size(), &why));
    EXPECT_NE(why.find("version"), std::string::npos) << why;
  }
  {  // Every single-byte payload corruption is caught by the crc.
    for (std::size_t at = 10; at < bytes.size();
         at += std::max<std::size_t>(1, bytes.size() / 64)) {
      auto bad = bytes;
      bad[at] ^= 0x55;
      EXPECT_FALSE(daemon::decode_snapshot(bad.data(), bad.size(), &why))
          << "corrupt byte at " << at << " went undetected";
      EXPECT_NE(why.find("crc"), std::string::npos) << why;
    }
  }
  {  // A torn (truncated) write never parses either.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
          bytes.size() - 1}) {
      EXPECT_FALSE(daemon::decode_snapshot(bytes.data(), keep, &why))
          << "truncated to " << keep << " bytes";
    }
  }
}

TEST(SnapshotUnderFault, RobustnessCountersSurviveTheCodec) {
  const auto cfg = small_cfg();
  Rig rig(cfg, fast_stale_cfg(), 2);

  for (int i = 0; i < 15 && !rig.plant->done(); ++i) {
    rig.plant->step([&rig] { rig.controller->service(); });
  }
  rig.plant->agent(1).hang();
  for (int i = 0; i < 10 && !rig.plant->done(); ++i) {
    rig.plant->step([&rig] { rig.controller->service(); });
  }

  const core::RobustnessCounters before = rig.controller->counters();
  ASSERT_GE(before.stale_transitions, 1u);

  const daemon::ControllerState state = rig.controller->state();
  const auto bytes = daemon::encode_snapshot(state);
  const auto decoded = daemon::decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(daemon::encode_snapshot(*decoded), bytes);
  EXPECT_EQ(decoded->counters.stale_transitions, before.stale_transitions);
  EXPECT_EQ(decoded->counters.frames_corrupt, before.frames_corrupt);
  EXPECT_EQ(decoded->policy.solver_fallbacks, before.solver_fallbacks);

  // Restoring into a fresh controller reproduces the merged counter view.
  core::PerqPolicy fresh_policy = make_policy(cfg);
  daemon::PerqController fresh(rig.transport.listen("perqd2"), fresh_policy,
                               fast_stale_cfg());
  fresh.restore(*decoded);
  const core::RobustnessCounters after = fresh.counters();
  EXPECT_EQ(after.stale_transitions, before.stale_transitions);
  EXPECT_EQ(after.frames_corrupt, before.frames_corrupt);
  EXPECT_EQ(after.solver_fallbacks, before.solver_fallbacks);
  EXPECT_EQ(after.clamp_activations, before.clamp_activations);
}

}  // namespace
}  // namespace perq::fault
