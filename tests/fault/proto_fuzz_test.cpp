// Seeded robustness fuzzing of the wire codec (ISSUE satellite): the
// FrameDecoder and parse_frame must survive arbitrary garbage, truncated
// frames, oversized length prefixes, and random mutations of valid frames
// without crashing or reading out of bounds (the tier-1 ASan leg runs this
// file under AddressSanitizer). Every byte sequence comes from a seeded
// perq::Rng, so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "daemon/controller.hpp"
#include "net/loopback.hpp"
#include "proto/delta.hpp"
#include "proto/message.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace perq::proto {
namespace {

std::vector<Message> sample_messages() {
  std::vector<Message> out;
  Hello h;
  h.agent_id = 3;
  h.node_begin = 0;
  h.node_end = 8;
  out.push_back(h);
  Telemetry t;
  t.agent_id = 3;
  t.tick = 17;
  t.seq = 4;
  t.flags = kTelemetryFinal;
  t.job_id = 12;
  t.nodes = 4;
  t.app_index = 2;
  t.runtime_ref_s = 900.0;
  t.progress_s = 123.5;
  t.min_perf = 0.8;
  t.cap_w = 215.0;
  t.ips = 1.25e9;
  t.power_w = 198.0;
  out.push_back(t);
  CapPlan p;
  p.tick = 18;
  for (int i = 0; i < 5; ++i) {
    CapEntry e;
    e.job_id = i;
    e.cap_w = 90.0 + 10.0 * i;
    e.target_ips = 1e9;
    e.held = i == 4;
    p.entries.push_back(e);
  }
  out.push_back(p);
  Heartbeat hb;
  hb.agent_id = 3;
  hb.tick = 18;
  hb.now_s = 180.0;
  hb.dt_s = 10.0;
  hb.budget_total_w = 5000.0;
  hb.budget_for_busy_w = 4200.0;
  hb.total_nodes = 32.0;
  out.push_back(hb);
  Bye b;
  b.agent_id = 3;
  out.push_back(b);
  CapPlanDelta d;
  d.tick = 19;
  d.base_tick = 18;
  d.result_entries = 5;
  d.ops.push_back({kDeltaRemove, {0, 0.0, 0.0, 0}});
  d.ops.push_back({kDeltaUpdate, {2, 131.5, 1.5e9, 0}});
  d.ops.push_back({kDeltaInsert, {9, 120.0, 1e9, 0}});
  out.push_back(d);
  ReplTick rt;
  rt.epoch = 2;
  rt.tick = 18;
  rt.plan_crc = 0xDEADBEEF;
  {
    Telemetry inner = t;
    const auto f = encode(Message{inner});
    rt.batch.insert(rt.batch.end(), f.begin(), f.end());
    const auto g = encode(Message{hb});
    rt.batch.insert(rt.batch.end(), g.begin(), g.end());
  }
  out.push_back(rt);
  ReplSnapshot rs;
  rs.epoch = 2;
  rs.snapshot = {0x50, 0x45, 0x52, 0x51, 0x04, 0x00, 0x12, 0x34};
  out.push_back(rs);
  PromoteAnnounce pa;
  pa.epoch = 3;
  pa.tick = 42;
  out.push_back(pa);
  return out;
}

TEST(ProtoFuzz, RandomBytesNeverCrashTheDecoder) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> noise(4096);
    for (std::uint8_t& b : noise) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    FrameDecoder dec;
    std::size_t pos = 0;
    while (pos < noise.size() && !dec.corrupt()) {
      const std::size_t chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(noise.size() - pos)));
      dec.feed(noise.data() + pos, chunk);
      pos += chunk;
      dec.take();
    }
    // Pure noise essentially never frames a valid message; either way the
    // decoder must end in a defined state, and a poisoned one must say why.
    if (dec.corrupt()) {
      EXPECT_FALSE(dec.error().empty()) << "seed " << seed;
    }
  }
}

TEST(ProtoFuzz, TruncatedBodiesAreRejectedNotRead) {
  for (const Message& m : sample_messages()) {
    const std::vector<std::uint8_t> frame = encode(m);
    ASSERT_GT(frame.size(), 4u);
    const std::uint8_t* body = frame.data() + 4;
    const std::size_t body_size = frame.size() - 4;
    for (std::size_t len = 0; len < body_size; ++len) {
      EXPECT_FALSE(parse_frame(body, len).has_value()) << "prefix " << len;
    }
    EXPECT_TRUE(parse_frame(body, body_size).has_value());
    // A trailing byte means the body is longer than its type allows.
    std::vector<std::uint8_t> longer(body, body + body_size);
    longer.push_back(0);
    EXPECT_FALSE(parse_frame(longer.data(), longer.size()).has_value());
  }
}

TEST(ProtoFuzz, DecoderWaitsForPartialFrameThenCompletes) {
  Hello h;
  h.agent_id = 77;
  const std::vector<std::uint8_t> frame = encode(h);
  FrameDecoder dec;
  for (std::size_t split = 1; split < frame.size(); ++split) {
    dec.feed(frame.data(), split);
    EXPECT_TRUE(dec.take().empty()) << "split " << split;
    EXPECT_FALSE(dec.corrupt()) << "split " << split;
    dec.feed(frame.data() + split, frame.size() - split);
    const auto msgs = dec.take();
    ASSERT_EQ(msgs.size(), 1u) << "split " << split;
    EXPECT_EQ(std::get<Hello>(msgs[0]).agent_id, 77u);
  }
}

TEST(ProtoFuzz, OversizedLengthPrefixPoisonsBeforeBuffering) {
  WireWriter w;
  w.u32(kMaxFrameBytes + 1);
  w.u16(kMagic);
  FrameDecoder dec;
  const auto& bytes = w.data();
  dec.feed(bytes.data(), bytes.size());
  EXPECT_TRUE(dec.corrupt());
  EXPECT_TRUE(dec.take().empty());
  EXPECT_FALSE(dec.error().empty());
  // A poisoned decoder stays poisoned; later valid bytes are not trusted.
  const std::vector<std::uint8_t> good = encode(Bye{});
  dec.feed(good.data(), good.size());
  EXPECT_TRUE(dec.corrupt());
  EXPECT_TRUE(dec.take().empty());
}

TEST(ProtoFuzz, MutatedValidFramesParseOrRejectWithoutCrashing) {
  const std::vector<Message> samples = sample_messages();
  Rng rng(2024);
  std::size_t parsed = 0, rejected = 0;
  for (int round = 0; round < 400; ++round) {
    const Message& m =
        samples[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(samples.size()) - 1))];
    std::vector<std::uint8_t> frame = encode(m);
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips; ++i) {
      const std::size_t bit = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size() * 8) - 1));
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    // Via the one-shot parser (post-length portion)...
    if (parse_frame(frame.data() + 4, frame.size() - 4).has_value()) {
      ++parsed;
    } else {
      ++rejected;
    }
    // ...and via the stream decoder (the mutation may hit the length
    // prefix, desynchronizing framing -- must still be crash-free).
    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    dec.take();
  }
  // Both outcomes must actually occur, or the fuzz proves nothing.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

// Mutated deltas must reject cleanly, never apply partially: whatever a
// bit flip does to a CapPlanDelta frame, the receiver either drops it at
// the codec, rejects it whole at apply_delta (out is unspecified and the
// caller must not actuate it), or applies a delta whose result is still a
// canonical plan with exactly the declared entry count.
TEST(ProtoFuzz, MutatedDeltasApplyAllOrNothing) {
  CapPlan base;
  base.tick = 18;
  for (int i = 0; i < 5; ++i) {
    base.entries.push_back({i, 90.0 + 10.0 * i, 1e9, i == 4});
  }
  CapPlan next = base;
  next.tick = 19;
  next.entries[1].cap_w = 131.5;
  next.entries.erase(next.entries.begin());
  next.entries.push_back({9, 120.0, 1e9, 0});
  CapPlanDelta clean;
  make_delta(base, next, clean);

  Rng rng(4096);
  std::size_t applied = 0, rejected = 0, unparsed = 0;
  for (int round = 0; round < 600; ++round) {
    std::vector<std::uint8_t> frame = encode(Message{clean});
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t bit = static_cast<std::size_t>(rng.uniform_int(
          32, static_cast<std::int64_t>(frame.size() * 8) - 1));
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto m = parse_frame(frame.data() + 4, frame.size() - 4);
    if (!m.has_value()) {
      ++unparsed;
      continue;
    }
    const auto* d = std::get_if<CapPlanDelta>(&*m);
    if (d == nullptr) continue;  // header mutation turned it into junk-typed
    CapPlan out;
    if (apply_delta(base, *d, out)) {
      ++applied;
      // A delta that applies must yield a canonical (sorted, duplicate-free)
      // plan with exactly the count it declared.
      EXPECT_EQ(out.entries.size(), d->result_entries);
      for (std::size_t i = 1; i < out.entries.size(); ++i) {
        EXPECT_LT(out.entries[i - 1].job_id, out.entries[i].job_id);
      }
    } else {
      ++rejected;
    }
  }
  // All three outcomes must occur or the fuzz proves nothing: payload bits
  // flip silently (applied), grammar bits reject (rejected), and framing
  // bits kill the parse (unparsed).
  EXPECT_GT(applied, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(unparsed, 0u);
}

// A ReplTick's inner batch is applied all-or-nothing (ISSUE satellite):
// whatever a bit flip does to the frame, the standby either never parses
// it, rejects the whole batch (repl_rejected, replay state untouched), or
// applies the whole decide (replicated_decides advances to the frame's
// tick). No mutation may leave half a batch behind.
TEST(ProtoFuzz, MutatedReplTicksApplyAllOrNothing) {
  ReplTick clean;
  clean.epoch = 1;
  clean.tick = 7;
  {
    Telemetry t;
    t.agent_id = 1;
    t.tick = 7;
    t.job_id = 3;
    t.nodes = 2;
    t.runtime_ref_s = 900.0;
    t.min_perf = 0.8;
    t.cap_w = 215.0;
    t.ips = 1e9;
    t.power_w = 198.0;
    t.flags = kTelemetryFinal;
    const auto f = encode(Message{t});
    clean.batch.insert(clean.batch.end(), f.begin(), f.end());
    Heartbeat hb;
    hb.agent_id = 1;
    hb.tick = 7;
    hb.now_s = 70.0;
    hb.dt_s = 10.0;
    hb.budget_total_w = 5000.0;
    hb.budget_for_busy_w = 4200.0;
    hb.total_nodes = 32.0;
    const auto g = encode(Message{hb});
    clean.batch.insert(clean.batch.end(), g.begin(), g.end());
  }

  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  core::PerqPolicy policy(&core::canonical_node_model(), 16, 32);
  net::LoopbackTransport transport;
  daemon::ControllerConfig ccfg;
  ccfg.standby = true;
  daemon::PerqController standby(transport.listen("sb"), policy, ccfg);
  auto conn = transport.connect("sb");
  standby.pump();

  Rng rng(1729);
  std::size_t applied = 0, rejected = 0, unparsed = 0;
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> frame = encode(Message{clean});
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t bit = static_cast<std::size_t>(rng.uniform_int(
          32, static_cast<std::int64_t>(frame.size() * 8) - 1));
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto m = parse_frame(frame.data() + 4, frame.size() - 4);
    if (!m.has_value() || !std::holds_alternative<ReplTick>(*m)) {
      ++unparsed;  // the codec (or a type flip) already screened it out
      continue;
    }
    const std::uint64_t decides = standby.replicated_decides();
    const std::uint64_t rejects = standby.repl_rejected();
    const std::uint64_t last = standby.last_replicated_tick();
    ASSERT_TRUE(conn->send(*m));
    standby.service();
    if (standby.repl_rejected() == rejects + 1) {
      ++rejected;
      // Rejected whole: the replay cursor must not have moved at all.
      EXPECT_EQ(standby.replicated_decides(), decides);
      EXPECT_EQ(standby.last_replicated_tick(), last);
    } else {
      ++applied;
      EXPECT_EQ(standby.replicated_decides(), decides + 1);
      EXPECT_EQ(standby.last_replicated_tick(),
                std::get<ReplTick>(*m).tick);
    }
  }
  // All three outcomes must occur or the fuzz proves nothing.
  EXPECT_GT(applied, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(unparsed, 0u);
}

// v2 tree-extended frames get their own samples, deliberately NOT added
// to sample_messages(): truncating a v2 frame at exactly the v1 boundary
// parses as a valid v1 frame by design (the downgrade path), which would
// break TruncatedBodiesAreRejectedNotRead's every-prefix-rejects sweep.
DomainReport tree_report_sample() {
  DomainReport r;
  r.domain_id = 2;
  r.tick = 33;
  r.controller_epoch = 4;
  r.busy_nodes = 12.0;
  r.floor_w = 840.0;
  r.capacity_w = 2580.0;
  r.utility_per_w = 3.5e5;
  r.flags = kDomainLeaving;
  r.grants_fenced = 2;
  r.reparent_events = 1;
  r.sla_floor_activations = 5;
  r.tree_path = {0, 1, 6};
  r.sla_floor_w = 500.0;
  r.priority_weight = 2.0;
  r.share_weight = 0.5;
  return r;
}

BudgetGrant tree_grant_sample() {
  BudgetGrant g;
  g.domain_id = 6;
  g.tick = 33;
  g.grant_w = 1912.5;
  g.cluster_budget_w = 9280.0;
  g.arbiter_epoch = 4;
  g.tree_path = {0, 1};
  return g;
}

TEST(ProtoFuzz, MutatedTreeExtendedFramesParseOrRejectWithoutCrashing) {
  const std::vector<Message> samples = {Message(tree_report_sample()),
                                        Message(tree_grant_sample())};
  Rng rng(777);
  std::size_t parsed = 0, rejected = 0;
  for (int round = 0; round < 400; ++round) {
    const Message& m = samples[static_cast<std::size_t>(round % 2)];
    std::vector<std::uint8_t> frame = encode(m);
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips; ++i) {
      const std::size_t bit = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size() * 8) - 1));
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto parsed_msg = parse_frame(frame.data() + 4, frame.size() - 4);
    if (parsed_msg.has_value()) {
      ++parsed;
      // Whatever the flips did, a frame that parses must respect the tree
      // invariants the arbiter relies on: the path never exceeds the depth
      // bound (the parser's job, not the caller's).
      if (const auto* r = std::get_if<DomainReport>(&*parsed_msg)) {
        EXPECT_LE(r->tree_path.size(), kMaxTreePathDepth);
      } else if (const auto* g = std::get_if<BudgetGrant>(&*parsed_msg)) {
        EXPECT_LE(g->tree_path.size(), kMaxTreePathDepth);
      }
    } else {
      ++rejected;
    }
    // The stream decoder must also survive (flips may hit the length
    // prefix and desynchronize framing).
    FrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    dec.take();
  }
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(ProtoFuzz, TruncatedTreeFramesRejectExceptTheV1Boundary) {
  // For each v2 sample, compute the v1 boundary by encoding a twin with
  // the extension reset to defaults; every strict prefix must reject
  // EXCEPT that one cut, which parses as the v1 frame.
  const auto sweep = [](const Message& full, const Message& v1_twin) {
    const std::vector<std::uint8_t> frame = encode(full);
    const std::uint8_t* body = frame.data() + 4;
    const std::size_t body_size = frame.size() - 4;
    const std::size_t boundary = encode(v1_twin).size() - 4;
    ASSERT_LT(boundary, body_size);
    for (std::size_t len = 0; len < body_size; ++len) {
      const auto m = parse_frame(body, len);
      if (len == boundary) {
        EXPECT_TRUE(m.has_value()) << "v1 boundary " << len;
      } else {
        EXPECT_FALSE(m.has_value()) << "prefix " << len;
      }
    }
    EXPECT_TRUE(parse_frame(body, body_size).has_value());
  };
  DomainReport v1_report = tree_report_sample();
  v1_report.flags = 0;
  v1_report.grants_fenced = 0;
  v1_report.reparent_events = 0;
  v1_report.sla_floor_activations = 0;
  v1_report.tree_path.clear();
  v1_report.sla_floor_w = 0.0;
  v1_report.priority_weight = 1.0;
  v1_report.share_weight = 0.0;
  sweep(Message(tree_report_sample()), Message(v1_report));

  BudgetGrant v1_grant = tree_grant_sample();
  v1_grant.arbiter_epoch = 0;
  v1_grant.tree_path.clear();
  sweep(Message(tree_grant_sample()), Message(v1_grant));
}

TEST(ProtoFuzz, ValidFramesBeforeACorruptTailStillDeliver) {
  std::vector<std::uint8_t> stream;
  for (const Message& m : sample_messages()) {
    const auto frame = encode(m);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  // Tail: a frame with a broken magic.
  std::vector<std::uint8_t> bad = encode(Bye{});
  bad[4] ^= 0xFF;
  stream.insert(stream.end(), bad.begin(), bad.end());

  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  EXPECT_EQ(dec.take().size(), sample_messages().size());
  EXPECT_TRUE(dec.corrupt());
}

}  // namespace
}  // namespace perq::proto
