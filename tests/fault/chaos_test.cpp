// Chaos-harness tests: the full perqd control loop under each fault type,
// asserting the run-level safety invariants hold on every tick, the fault
// counters observe what was scheduled, the trajectory re-converges onto the
// fault-free twin after the fault window, and the whole report is a pure
// function of the seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "apps/app_model.hpp"
#include "core/node_model.hpp"
#include "fault/chaos.hpp"

namespace perq::fault {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

core::PerqPolicy make_policy(const core::EngineConfig& cfg,
                             const core::PerqConfig& pcfg = {}) {
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total_nodes(cfg), pcfg);
}

ChaosConfig chaos_cfg(std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.engine = small_cfg();
  cfg.plant.agents = 4;
  cfg.plant.plan_timeout_ms = 50;  // loopback: no plan this tick means never
  cfg.controller.decide_grace_ms = 5;
  cfg.fault_seed = seed;
  return cfg;
}

void expect_no_violations(const ChaosReport& r) {
  for (const std::string& v : r.violations) ADD_FAILURE() << v;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(Chaos, CleanRunHasNoFaultsNoViolations) {
  ChaosConfig cfg = chaos_cfg(1);
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_GT(r.result.jobs_completed, 0u);
  EXPECT_EQ(r.held_ticks, 0u);
  EXPECT_GT(r.faults.tx_frames, 0u);
  EXPECT_EQ(r.faults.dropped + r.faults.truncated + r.faults.bit_flipped +
                r.faults.duplicated + r.faults.delayed + r.faults.reordered +
                r.faults.partitioned + r.faults.killed,
            0u);
  EXPECT_EQ(r.controller_counters.clamp_activations, 0u);
  EXPECT_EQ(r.controller_counters.frames_corrupt, 0u);
  EXPECT_EQ(r.plant_counters.frames_dropped, 0u);
}

TEST(Chaos, DropInvariantsHoldAndTrajectoryReconverges) {
  ChaosConfig cfg = chaos_cfg(7);
  cfg.engine.duration_s = 2400.0;
  cfg.default_schedule.window = {10, 25};
  cfg.default_schedule.tx.drop = 0.25;
  cfg.default_schedule.rx.drop = 0.25;
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport faulted = run_chaos(cfg, policy);

  expect_no_violations(faulted);
  EXPECT_GT(faulted.faults.dropped, 0u);
  EXPECT_GT(faulted.result.jobs_completed, 0u);

  ChaosConfig clean_cfg = cfg;
  clean_cfg.default_schedule = {};
  core::PerqPolicy clean_policy = make_policy(clean_cfg.engine);
  const ChaosReport clean = run_chaos(clean_cfg, clean_policy);

  // The fault must be visible as sustained power divergence inside the
  // window (dropped telemetry leaves the controller blind to jobs, so the
  // plant rejects over-budget plans and holds previous caps)...
  const std::uint64_t during = longest_power_divergence_streak(
      faulted.history, clean.history, {10, 25}, 100.0);
  EXPECT_GE(during, 5u);
  // ...and re-convergence within K=30 ticks of the window closing: from
  // then on only isolated blips remain, where the two runs pass their
  // (one-tick-offset) job transitions.
  const std::uint64_t after = longest_power_divergence_streak(
      faulted.history, clean.history, {55, kNever}, 100.0);
  EXPECT_LE(after, 4u);
}

TEST(Chaos, DelayAndDuplicateInvariantsHold) {
  ChaosConfig cfg = chaos_cfg(11);
  cfg.default_schedule.window = {10, 40};
  cfg.default_schedule.tx.delay = 0.3;
  cfg.default_schedule.rx.delay = 0.3;
  cfg.default_schedule.tx.delay_ticks = 2;
  cfg.default_schedule.rx.delay_ticks = 2;
  cfg.default_schedule.tx.duplicate = 0.15;
  cfg.default_schedule.tx.reorder = 0.15;
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_GT(r.faults.delayed, 0u);
  EXPECT_GT(r.faults.duplicated, 0u);
  EXPECT_GT(r.faults.reordered, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
}

TEST(Chaos, CorruptionKillsConnectionsWhichRejoin) {
  ChaosConfig cfg = chaos_cfg(3);
  cfg.default_schedule.window = {10, 40};
  cfg.default_schedule.tx.truncate = 0.05;
  cfg.default_schedule.tx.bit_flip = 0.1;
  cfg.default_schedule.rx.bit_flip = 0.1;
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_GT(r.faults.truncated + r.faults.bit_flipped, 0u);
  // Truncation kills connections; the plant's backoff path re-dials them.
  EXPECT_GT(r.plant_counters.reconnect_attempts, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
}

TEST(Chaos, CrashedConnectionsRejoinAndFinishTheRun) {
  ChaosConfig cfg = chaos_cfg(5);
  ConnectionSchedule kill1;
  kill1.kill_at_tick = 20;
  ConnectionSchedule kill2;
  kill2.kill_at_tick = 28;
  cfg.schedules.emplace_back(1, kill1);
  cfg.schedules.emplace_back(2, kill2);
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_EQ(r.faults.killed, 2u);
  EXPECT_GE(r.plant_counters.reconnect_attempts, 2u);
  EXPECT_GT(r.result.jobs_completed, 0u);
}

TEST(Chaos, PartitionTriggersStalenessNotViolations) {
  ChaosConfig cfg = chaos_cfg(9);
  cfg.controller.stale_after_ticks = 2;
  ConnectionSchedule part;
  part.partitions.push_back({15, 25});
  cfg.schedules.emplace_back(0, part);
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_GT(r.faults.partitioned, 0u);
  // The blacked-out agent goes silent while its connection stays open:
  // exactly the heartbeat-staleness path, observed by the counter.
  EXPECT_GE(r.controller_counters.stale_transitions, 1u);
  EXPECT_GT(r.result.jobs_completed, 0u);
}

TEST(Chaos, HungAgentRejoinsAndRunCompletes) {
  ChaosConfig cfg = chaos_cfg(13);
  cfg.controller.stale_after_ticks = 2;
  cfg.events.push_back({15, 1, AgentEvent::Kind::kHang});
  cfg.events.push_back({25, 1, AgentEvent::Kind::kRejoin});
  core::PerqPolicy policy = make_policy(cfg.engine);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_GE(r.controller_counters.stale_transitions, 1u);
  EXPECT_GT(r.result.jobs_completed, 0u);
}

TEST(Chaos, ReportIsAPureFunctionOfTheSeed) {
  const auto run = [](std::uint64_t seed) {
    ChaosConfig cfg = chaos_cfg(seed);
    cfg.default_schedule.window = {10, 40};
    cfg.default_schedule.tx.drop = 0.1;
    cfg.default_schedule.rx.delay = 0.2;
    cfg.default_schedule.rx.delay_ticks = 1;
    cfg.default_schedule.tx.bit_flip = 0.05;
    core::PerqPolicy policy = make_policy(cfg.engine);
    return run_chaos(cfg, policy);
  };
  const ChaosReport a = run(21);
  const ChaosReport b = run(21);
  const ChaosReport c = run(22);

  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.held_ticks, b.held_ticks);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.result.jobs_completed, b.result.jobs_completed);
  EXPECT_EQ(bits(a.result.mean_power_draw_w), bits(b.result.mean_power_draw_w));
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.delayed, b.faults.delayed);
  EXPECT_EQ(a.faults.bit_flipped, b.faults.bit_flipped);
  EXPECT_EQ(a.controller_counters.frames_corrupt,
            b.controller_counters.frames_corrupt);
  EXPECT_EQ(a.plant_counters.frames_dropped, b.plant_counters.frames_dropped);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(bits(a.history[i].committed_w), bits(b.history[i].committed_w))
        << "tick " << i;
  }
  // A different seed takes a different fault path.
  EXPECT_NE(a.faults.dropped + a.faults.delayed * 1000 +
                a.faults.bit_flipped * 1000000,
            c.faults.dropped + c.faults.delayed * 1000 +
                c.faults.bit_flipped * 1000000);
}

TEST(Chaos, StarvedSolverFallsBackToEqualShareWithinBudget) {
  // A one-iteration QP cap starves both rungs of the solver ladder
  // (active set, then projected gradient), forcing the last rung: the
  // equal-share fallback. The run must stay within every invariant and the
  // fallback must be observable in the controller's counters.
  ChaosConfig cfg = chaos_cfg(17);
  core::PerqConfig pcfg;
  pcfg.mpc.max_qp_iterations = 1;
  core::PerqPolicy policy = make_policy(cfg.engine, pcfg);
  const ChaosReport r = run_chaos(cfg, policy);

  expect_no_violations(r);
  EXPECT_GT(r.controller_counters.solver_fallbacks, 0u);
  // The fallback itself respects the budget, so the defensive clamp before
  // broadcast never needs to fire.
  EXPECT_EQ(r.controller_counters.clamp_activations, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
}

TEST(Chaos, ReconvergenceTickFindsLastDivergence) {
  const auto rec = [](std::uint64_t tick, std::vector<std::pair<int, double>> caps) {
    TickRecord r;
    r.tick = tick;
    r.caps_by_job = std::move(caps);
    return r;
  };
  const std::vector<TickRecord> base = {
      rec(0, {{1, 100.0}}), rec(1, {{1, 100.0}}), rec(2, {{1, 100.0}}),
      rec(3, {{1, 100.0}}), rec(4, {{1, 100.0}})};

  // Identical: converged from the start.
  EXPECT_EQ(reconvergence_tick(base, base, 0, 1.0), 0u);

  // Diverges at tick 2 only: reconverged from tick 3.
  std::vector<TickRecord> mid = base;
  mid[2].caps_by_job[0].second = 150.0;
  EXPECT_EQ(reconvergence_tick(mid, base, 0, 1.0), 3u);

  // Within tolerance is not divergence.
  std::vector<TickRecord> close = base;
  close[2].caps_by_job[0].second = 100.5;
  EXPECT_EQ(reconvergence_tick(close, base, 0, 1.0), 0u);

  // Diverges at the last common tick: never reconverged.
  std::vector<TickRecord> tail = base;
  tail[4].caps_by_job[0].second = 150.0;
  EXPECT_EQ(reconvergence_tick(tail, base, 0, 1.0), kNever);

  // A job missing on one side is divergence.
  std::vector<TickRecord> missing = base;
  missing[2].caps_by_job.clear();
  EXPECT_EQ(reconvergence_tick(missing, base, 0, 1.0), 3u);
}

// --- the controller's defensive clamp, fed plans the real policy can never
// produce (enforce_budget runs last inside PerqPolicy::allocate, so in the
// end-to-end runs above clamp_activations stays zero; these tests exercise
// the rescue paths directly) ---

proto::CapPlan plan_of(std::vector<std::pair<int, double>> caps) {
  proto::CapPlan p;
  p.tick = 1;
  for (const auto& [id, cap] : caps) {
    p.entries.push_back({id, cap, 1.0e9, 0});
  }
  return p;
}

double plan_watts(const proto::CapPlan& p,
                  const std::map<int, double>& nodes_by_job) {
  double w = 0.0;
  for (const auto& e : p.entries) {
    const auto it = nodes_by_job.find(e.job_id);
    w += e.cap_w * (it == nodes_by_job.end() ? 1.0 : it->second);
  }
  return w;
}

TEST(ClampPlan, HealthyPlanIsABitIdenticalNoOp) {
  const auto& spec = apps::node_power_spec();
  const std::map<int, double> nodes = {{1, 2.0}, {2, 4.0}};
  // In-box caps whose weighted sum sits exactly on the budget: the 1e-3
  // slack means "on the row" is still feasible and must pass untouched.
  proto::CapPlan p = plan_of({{1, spec.cap_min + 37.125}, {2, spec.tdp}});
  const double budget = plan_watts(p, nodes);
  const proto::CapPlan before = p;

  EXPECT_FALSE(daemon::clamp_cap_plan(p, budget, nodes));
  ASSERT_EQ(p.entries.size(), before.entries.size());
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    EXPECT_EQ(bits(p.entries[i].cap_w), bits(before.entries[i].cap_w));
  }
}

TEST(ClampPlan, NonFiniteCapsCollapseToTheFloor) {
  const auto& spec = apps::node_power_spec();
  const std::map<int, double> nodes = {{1, 1.0}, {2, 1.0}, {3, 1.0}};
  proto::CapPlan p =
      plan_of({{1, std::numeric_limits<double>::quiet_NaN()},
               {2, std::numeric_limits<double>::infinity()},
               {3, -std::numeric_limits<double>::infinity()}});

  EXPECT_TRUE(daemon::clamp_cap_plan(p, 1e9, nodes));
  EXPECT_EQ(p.entries[0].cap_w, spec.cap_min);  // NaN -> floor
  EXPECT_EQ(p.entries[1].cap_w, spec.cap_min);  // +inf is non-finite -> floor
  EXPECT_EQ(p.entries[2].cap_w, spec.cap_min);
}

TEST(ClampPlan, OutOfBoxCapsSaturateAtTheBounds) {
  const auto& spec = apps::node_power_spec();
  const std::map<int, double> nodes = {{1, 1.0}, {2, 1.0}};
  proto::CapPlan p = plan_of({{1, spec.tdp + 210.0}, {2, spec.cap_min - 50.0}});

  EXPECT_TRUE(daemon::clamp_cap_plan(p, 1e9, nodes));
  EXPECT_EQ(p.entries[0].cap_w, spec.tdp);
  EXPECT_EQ(p.entries[1].cap_w, spec.cap_min);
}

TEST(ClampPlan, OverBudgetPlanRescalesOntoTheBudgetRow) {
  const auto& spec = apps::node_power_spec();
  const std::map<int, double> nodes = {{1, 2.0}, {2, 4.0}, {3, 1.0}};
  proto::CapPlan p = plan_of(
      {{1, spec.tdp}, {2, spec.tdp - 20.0}, {3, spec.cap_min + 10.0}});
  const double budget = 0.75 * plan_watts(p, nodes);
  ASSERT_GT(plan_watts(p, nodes), budget + 1e-3);

  EXPECT_TRUE(daemon::clamp_cap_plan(p, budget, nodes));
  EXPECT_LE(plan_watts(p, nodes), budget + 1e-3);
  for (const auto& e : p.entries) {
    EXPECT_GE(e.cap_w, spec.cap_min);
    EXPECT_LE(e.cap_w, spec.tdp);
  }
  // Uniform head-room scaling preserves the ordering of the caps.
  EXPECT_GT(p.entries[0].cap_w, p.entries[1].cap_w);
  EXPECT_GT(p.entries[1].cap_w, p.entries[2].cap_w);
}

TEST(ClampPlan, BudgetBelowFloorSaturatesEveryCapAtTheFloor) {
  const auto& spec = apps::node_power_spec();
  const std::map<int, double> nodes = {{1, 3.0}, {2, 3.0}};
  proto::CapPlan p = plan_of({{1, spec.tdp}, {2, spec.tdp}});
  // Even cap_min on every node busts this budget; the floor is the
  // least-bad saturation (the plant's box invariant outranks the row).
  const double budget = 0.5 * spec.cap_min * 6.0;

  EXPECT_TRUE(daemon::clamp_cap_plan(p, budget, nodes));
  EXPECT_EQ(p.entries[0].cap_w, spec.cap_min);
  EXPECT_EQ(p.entries[1].cap_w, spec.cap_min);
}

TEST(ClampPlan, UnknownJobsCountAsOneNode) {
  const auto& spec = apps::node_power_spec();
  // Job 9 is not in the map (no shadow yet): it weighs one node, so this
  // two-entry plan commits cap_w * (4 + 1) watts against the budget.
  const std::map<int, double> nodes = {{1, 4.0}};
  proto::CapPlan p = plan_of({{1, 200.0}, {9, 200.0}});

  EXPECT_TRUE(daemon::clamp_cap_plan(p, 5.0 * 150.0, nodes));
  EXPECT_LE(plan_watts(p, nodes), 5.0 * 150.0 + 1e-3);
  EXPECT_NEAR(p.entries[0].cap_w, p.entries[1].cap_w, 1e-12);
  EXPECT_GE(p.entries[0].cap_w, spec.cap_min);
}

}  // namespace
}  // namespace perq::fault
