// Domain chaos tests: the K-domain hierarchical deployment under faults.
// The headline scenario partitions one domain's arbiter uplink mid-run:
// the arbiter must fence that domain's grant (never re-spending it), the
// grants-conservation invariant (live + fenced + reserves <= cluster
// budget) must hold on every tick, and the run must finish.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "core/node_model.hpp"
#include "fault/chaos.hpp"

namespace perq::fault {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

DomainChaosConfig domain_cfg(std::size_t domains, std::uint64_t seed) {
  DomainChaosConfig cfg;
  cfg.engine = small_cfg();
  cfg.domains = domains;
  cfg.plant.agents = domains;  // one agent per domain controller
  cfg.plant.plan_timeout_ms = 50;
  cfg.controller.decide_grace_ms = 5;
  cfg.fault_seed = seed;
  return cfg;
}

std::vector<std::unique_ptr<core::PerqPolicy>> make_policies(
    const core::EngineConfig& cfg, std::size_t k) {
  std::vector<std::unique_ptr<core::PerqPolicy>> policies;
  for (std::size_t d = 0; d < k; ++d) {
    policies.push_back(std::make_unique<core::PerqPolicy>(
        &core::canonical_node_model(), cfg.worst_case_nodes,
        total_nodes(cfg)));
  }
  return policies;
}

void expect_no_violations(const DomainChaosReport& r) {
  for (const std::string& v : r.violations) ADD_FAILURE() << v;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(DomainChaos, CleanTwoDomainRunConservesGrantsEveryTick) {
  DomainChaosConfig cfg = domain_cfg(2, 1);
  auto policies = make_policies(cfg.engine, 2);
  const DomainChaosReport r = run_domain_chaos(cfg, policies);

  expect_no_violations(r);
  EXPECT_GT(r.result.jobs_completed, 0u);
  EXPECT_GT(r.arbiter_decisions, 0u);
  EXPECT_EQ(r.final_fenced_w, 0.0);
  ASSERT_EQ(r.final_grants_w.size(), 2u);
  // Conservation was asserted inside the harness on every tick; spot-check
  // the recorded grant history made it into the report too.
  bool saw_grants = false;
  for (const TickRecord& t : r.history) {
    if (!t.grants_w.empty()) saw_grants = true;
  }
  EXPECT_TRUE(saw_grants);
  EXPECT_EQ(r.aggregated_counters.frames_corrupt, 0u);
}

TEST(DomainChaos, PartitionedDomainIsFencedAndRunSurvives) {
  DomainChaosConfig cfg = domain_cfg(2, 3);
  cfg.engine.duration_s = 2400.0;
  cfg.controller.stale_after_ticks = 2;
  cfg.arbiter.stale_after_ticks = 2;
  // Sever domain 1 <-> arbiter for ticks [12, 30); its agents keep running
  // off the held grant while the arbiter re-fills the other domain only.
  cfg.domain_partitions.push_back({1, {12, 30}});
  auto policies = make_policies(cfg.engine, 2);
  const DomainChaosReport r = run_domain_chaos(cfg, policies);

  expect_no_violations(r);
  EXPECT_GT(r.faults.partitioned, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
  EXPECT_GT(r.arbiter_decisions, 0u);

  // During the blackout the arbiter held domain 1 at its last grant: the
  // recorded grant stays bit-frozen across consecutive in-window decisions.
  bool saw_frozen = false;
  const std::vector<double>* prev = nullptr;
  for (const TickRecord& t : r.history) {
    if (t.tick < 14 || t.tick >= 28 || t.grants_w.size() != 2) continue;
    if (prev != nullptr && bits((*prev)[1]) == bits(t.grants_w[1]) &&
        t.grants_w[1] > 0.0) {
      saw_frozen = true;
    }
    prev = &t.grants_w;
  }
  EXPECT_TRUE(saw_frozen);
  // After the window closes the domain re-reports and is un-fenced.
  EXPECT_EQ(r.final_fenced_w, 0.0);
}

TEST(DomainChaos, DropFaultsAcrossDomainsHoldInvariants) {
  DomainChaosConfig cfg = domain_cfg(3, 7);
  cfg.default_schedule.window = {10, 25};
  cfg.default_schedule.tx.drop = 0.2;
  cfg.default_schedule.rx.drop = 0.2;
  auto policies = make_policies(cfg.engine, 3);
  const DomainChaosReport r = run_domain_chaos(cfg, policies);

  expect_no_violations(r);
  EXPECT_GT(r.faults.dropped, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
  ASSERT_EQ(r.controller_counters.size(), 3u);
}

TEST(DomainChaos, ReportIsAPureFunctionOfTheSeed) {
  const auto run = [](std::uint64_t seed) {
    DomainChaosConfig cfg = domain_cfg(2, seed);
    cfg.controller.stale_after_ticks = 2;
    cfg.arbiter.stale_after_ticks = 2;
    cfg.domain_partitions.push_back({0, {15, 25}});
    auto policies = make_policies(cfg.engine, 2);
    return run_domain_chaos(cfg, policies);
  };
  const DomainChaosReport a = run(21);
  const DomainChaosReport b = run(21);

  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.held_ticks, b.held_ticks);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.result.jobs_completed, b.result.jobs_completed);
  EXPECT_EQ(bits(a.result.mean_power_draw_w), bits(b.result.mean_power_draw_w));
  EXPECT_EQ(a.arbiter_decisions, b.arbiter_decisions);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(bits(a.history[i].committed_w), bits(b.history[i].committed_w))
        << "tick " << i;
    ASSERT_EQ(a.history[i].grants_w.size(), b.history[i].grants_w.size());
    for (std::size_t d = 0; d < a.history[i].grants_w.size(); ++d) {
      EXPECT_EQ(bits(a.history[i].grants_w[d]), bits(b.history[i].grants_w[d]))
          << "tick " << i << " domain " << d;
    }
  }
}

}  // namespace
}  // namespace perq::fault
