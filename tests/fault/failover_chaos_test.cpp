// Warm-standby failover under chaos (ISSUE tentpole acceptance): a scripted
// primary kill with a tight handover must leave the cap trajectory
// bit-identical to a crash-free run; a detected takeover must land within a
// bounded window; a deposed primary behind a healed partition must be
// fenced by epoch; and a controller that never comes back must trip the
// agent-local fail-safe decay. All with the per-tick budget/box invariants
// clean.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "fault/chaos.hpp"

namespace perq::fault {
namespace {

FailoverChaosConfig base_config(std::size_t agents = 2,
                                std::uint64_t max_ticks = 0) {
  FailoverChaosConfig fcfg;
  fcfg.engine.trace.system = trace::SystemModel::kTrinity;
  fcfg.engine.trace.max_job_nodes = 4;
  fcfg.engine.trace.seed = 5;
  fcfg.engine.worst_case_nodes = 16;
  fcfg.engine.over_provision_factor = 2.0;
  fcfg.engine.duration_s = 1200.0;
  fcfg.engine.control_interval_s = 10.0;
  fcfg.engine.trace.job_count = core::recommended_job_count(fcfg.engine);
  fcfg.plant.agents = agents;
  fcfg.plant.plan_timeout_ms = 5;
  fcfg.plant.failover_after_held_ticks = 2;
  fcfg.plant.failsafe_after_ticks = 3;
  fcfg.controller.decide_grace_ms = 5;
  fcfg.max_ticks = max_ticks;
  return fcfg;
}

FailoverChaosReport run(const FailoverChaosConfig& fcfg) {
  const auto total = static_cast<std::size_t>(
      fcfg.engine.over_provision_factor *
          double(fcfg.engine.worst_case_nodes) +
      0.5);
  core::PerqPolicy primary(&core::canonical_node_model(),
                           fcfg.engine.worst_case_nodes, total);
  core::PerqPolicy standby(&core::canonical_node_model(),
                           fcfg.engine.worst_case_nodes, total);
  return run_failover_chaos(fcfg, primary, standby);
}

TEST(FailoverChaos, CleanRunHoldsEveryInvariant) {
  const FailoverChaosReport r = run(base_config());
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  EXPECT_EQ(r.held_ticks, 0u);
  EXPECT_EQ(r.promoted_at_tick, kNever);
  EXPECT_GT(r.replicated_decides, 0u);
  EXPECT_EQ(r.repl_divergence, 0u);
  EXPECT_EQ(r.repl_rejected, 0u);
}

TEST(FailoverChaos, TightHandoverIsBitIdenticalToACrashFreeRun) {
  const FailoverChaosReport clean = run(base_config());
  ASSERT_TRUE(clean.violations.empty()) << clean.violations.front();

  FailoverChaosConfig fcfg = base_config();
  fcfg.kill_primary_at_tick = 18;
  fcfg.tight_handover = true;
  const FailoverChaosReport r = run(fcfg);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  EXPECT_EQ(r.promoted_at_tick, 18u);
  EXPECT_EQ(r.repl_divergence, 0u);
  EXPECT_EQ(r.held_ticks, 0u);

  // The acceptance criterion: with the detection gap removed, the standby's
  // replayed state continues the primary's decisions bit for bit -- the
  // whole trajectory matches the crash-free run from tick 0.
  EXPECT_EQ(reconvergence_tick(r.history, clean.history, 0, /*tol_w=*/0.0),
            0u);
}

TEST(FailoverChaos, KillAtEveryTickSweepStaysBitIdentical) {
  const FailoverChaosConfig base = base_config(/*agents=*/2, /*max_ticks=*/30);
  const FailoverChaosReport clean = run(base);
  ASSERT_TRUE(clean.violations.empty()) << clean.violations.front();

  for (std::uint64_t kill = 1; kill <= 25; kill += 3) {
    FailoverChaosConfig fcfg = base;
    fcfg.kill_primary_at_tick = kill;
    fcfg.tight_handover = true;
    const FailoverChaosReport r = run(fcfg);
    EXPECT_TRUE(r.violations.empty())
        << "kill at " << kill << ": " << r.violations.front();
    EXPECT_EQ(r.promoted_at_tick, kill) << "kill at " << kill;
    EXPECT_EQ(r.repl_divergence, 0u) << "kill at " << kill;
    EXPECT_EQ(reconvergence_tick(r.history, clean.history, 0, 0.0), 0u)
        << "trajectory diverged for kill at tick " << kill;
  }
}

TEST(FailoverChaos, DetectedTakeoverLandsWithinTheBound) {
  FailoverChaosConfig fcfg = base_config();
  fcfg.kill_primary_at_tick = 18;
  fcfg.takeover_after_silent_ticks = 2;
  const FailoverChaosReport r = run(fcfg);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  ASSERT_NE(r.promoted_at_tick, kNever);
  // Detection: takeover_after_silent_ticks of replication silence, plus the
  // agents' failover_after_held_ticks to re-home -- a handful of ticks.
  EXPECT_LE(r.promoted_at_tick, 18u + 6u);
  EXPECT_GT(r.held_ticks, 0u);  // the detection gap is real, and bounded
  EXPECT_LE(r.held_ticks, 10u);
  EXPECT_EQ(r.standby_epoch, 2u);
  EXPECT_EQ(r.repl_divergence, 0u);
}

TEST(FailoverChaos, DeposedPrimaryIsFencedByEpoch) {
  FailoverChaosConfig fcfg = base_config();
  // The primary is partitioned (alive, unreachable) long enough for the
  // standby to take over; the partition heals at 40 and every agent is
  // scripted to re-dial the old primary, which must be rejected by epoch.
  fcfg.partition_primary = TickWindow{12, 40};
  for (std::size_t a = 0; a < fcfg.plant.agents; ++a) {
    fcfg.redial_primary.emplace_back(45, a);
  }
  const FailoverChaosReport r = run(fcfg);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  ASSERT_NE(r.promoted_at_tick, kNever);
  EXPECT_EQ(r.standby_epoch, 2u);
  EXPECT_GT(r.stale_epoch_frames, 0u)
      << "agents should have fenced the deposed primary's frames";
}

TEST(FailoverChaos, FailsafeDecaysWhenNoStandbyEverPromotes) {
  FailoverChaosConfig fcfg = base_config(/*agents=*/2, /*max_ticks=*/40);
  fcfg.kill_primary_at_tick = 10;
  fcfg.takeover_after_silent_ticks = 100000;  // the standby never takes over
  fcfg.plant.failsafe_after_ticks = 2;
  const FailoverChaosReport r = run(fcfg);
  // The decay law is checked per tick inside the harness; here we assert
  // the fail-safe actually engaged and no invariant broke on the way down.
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  EXPECT_EQ(r.promoted_at_tick, kNever);
  EXPECT_GT(r.held_ticks, 0u);
  EXPECT_GT(r.plant_counters.failsafe_activations, 0u);
}

}  // namespace
}  // namespace perq::fault
