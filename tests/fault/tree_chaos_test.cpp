// Tree chaos tests: the depth-2 arbiter hierarchy (root over mids over
// domain controllers) under faults. Headline scenarios: a subtree
// partition -- one mid's root uplink blacks out and the root must fence
// the whole subtree's grant -- and a scripted runtime re-parent, where a
// domain controller leaves its mid for another one and must never draw
// watts from both parents at once. Per-level conservation and the tenant
// SLA fairness invariant are asserted inside the harness on every tick.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/node_model.hpp"
#include "fault/chaos.hpp"

namespace perq::fault {
namespace {

core::EngineConfig small_cfg() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = 5;
  cfg.worst_case_nodes = 16;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 1200.0;
  cfg.control_interval_s = 10.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

std::size_t total_nodes(const core::EngineConfig& cfg) {
  return static_cast<std::size_t>(cfg.over_provision_factor *
                                      double(cfg.worst_case_nodes) +
                                  0.5);
}

TreeChaosConfig tree_cfg(std::size_t domains, std::size_t mids,
                         std::uint64_t seed) {
  TreeChaosConfig cfg;
  cfg.engine = small_cfg();
  cfg.domains = domains;
  cfg.mids = mids;
  cfg.plant.agents = domains;  // one agent per domain controller
  cfg.plant.plan_timeout_ms = 50;
  cfg.controller.decide_grace_ms = 5;
  cfg.fault_seed = seed;
  return cfg;
}

std::vector<std::unique_ptr<core::PerqPolicy>> make_policies(
    const core::EngineConfig& cfg, std::size_t k) {
  std::vector<std::unique_ptr<core::PerqPolicy>> policies;
  for (std::size_t d = 0; d < k; ++d) {
    policies.push_back(std::make_unique<core::PerqPolicy>(
        &core::canonical_node_model(), cfg.worst_case_nodes,
        total_nodes(cfg)));
  }
  return policies;
}

void expect_no_violations(const TreeChaosReport& r) {
  for (const std::string& v : r.violations) ADD_FAILURE() << v;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(TreeChaos, CleanDepthTwoRunHoldsEveryInvariant) {
  TreeChaosConfig cfg = tree_cfg(4, 2, 1);
  auto policies = make_policies(cfg.engine, 4);
  const TreeChaosReport r = run_tree_chaos(cfg, policies);

  expect_no_violations(r);
  EXPECT_GT(r.result.jobs_completed, 0u);
  EXPECT_GT(r.root_decisions, 0u);
  ASSERT_EQ(r.mid_decisions.size(), 2u);
  EXPECT_GT(r.mid_decisions[0], 0u);
  EXPECT_GT(r.mid_decisions[1], 0u);
  EXPECT_EQ(r.reparents_executed, 0u);
  EXPECT_LE(r.max_level_overdraw_w, 1e-3);
  EXPECT_EQ(r.aggregated_counters.frames_corrupt, 0u);
  // The recorded grant history (root grants per mid) made it out.
  bool saw_grants = false;
  for (const TickRecord& t : r.history) {
    if (!t.grants_w.empty()) saw_grants = true;
  }
  EXPECT_TRUE(saw_grants);
}

TEST(TreeChaos, SubtreePartitionFencesTheMidWithoutViolations) {
  TreeChaosConfig cfg = tree_cfg(4, 2, 3);
  cfg.engine.duration_s = 2400.0;
  cfg.controller.stale_after_ticks = 2;
  cfg.arbiter.stale_after_ticks = 2;
  // Sever mid 1's root uplink for ticks [12, 30): its whole subtree keeps
  // running off the held grant while the root re-fills mid 0 only.
  cfg.subtree_partitions.push_back({1, {12, 30}});
  auto policies = make_policies(cfg.engine, 4);
  const TreeChaosReport r = run_tree_chaos(cfg, policies);

  expect_no_violations(r);
  EXPECT_GT(r.faults.partitioned, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
  EXPECT_LE(r.max_level_overdraw_w, 1e-3);
  // The root fenced the silent mid at its held grant at least once.
  EXPECT_GT(r.aggregated_counters.grants_fenced, 0u);

  // During the blackout the root held mid 1 bit-frozen across decisions.
  bool saw_frozen = false;
  const std::vector<double>* prev = nullptr;
  for (const TickRecord& t : r.history) {
    if (t.tick < 14 || t.tick >= 28 || t.grants_w.size() != 2) continue;
    if (prev != nullptr && bits((*prev)[1]) == bits(t.grants_w[1]) &&
        t.grants_w[1] > 0.0) {
      saw_frozen = true;
    }
    prev = &t.grants_w;
  }
  EXPECT_TRUE(saw_frozen);
}

TEST(TreeChaos, ScriptedReparentNeverDoubleDraws) {
  TreeChaosConfig cfg = tree_cfg(4, 2, 7);
  cfg.engine.duration_s = 2400.0;
  cfg.controller.stale_after_ticks = 2;
  cfg.arbiter.stale_after_ticks = 2;
  // At tick 36, domain 0 leaves mid 0 and re-attaches under mid 1's spare
  // slot. The harness asserts the old slot reads zero watts from two ticks
  // later on -- released, not fenced -- so the subtree never double-draws.
  cfg.reparents.push_back({36, 0, 1});
  auto policies = make_policies(cfg.engine, 4);
  const TreeChaosReport r = run_tree_chaos(cfg, policies);

  expect_no_violations(r);
  EXPECT_EQ(r.reparents_executed, 1u);
  EXPECT_GT(r.result.jobs_completed, 0u);
  EXPECT_LE(r.max_level_overdraw_w, 1e-3);
  // The leave/re-attach fence shows up in the aggregated accounting.
  EXPECT_GT(r.aggregated_counters.reparent_events, 0u);
}

TEST(TreeChaos, TenantSlaFloorsHoldUnderDropFaults) {
  TreeChaosConfig cfg = tree_cfg(4, 2, 9);
  cfg.default_schedule.window = {10, 25};
  cfg.default_schedule.tx.drop = 0.2;
  cfg.default_schedule.rx.drop = 0.2;
  cfg.leaf_tenants.resize(4);
  cfg.leaf_tenants[2].sla_floor_w = 500.0;
  cfg.leaf_tenants[0].priority_weight = 2.0;
  auto policies = make_policies(cfg.engine, 4);
  const TreeChaosReport r = run_tree_chaos(cfg, policies);

  // The harness checks the tenant fairness invariant on every tick: no
  // live child below its (capacity-clipped) SLA floor while a sibling
  // holds more than the equal share of the same scope.
  expect_no_violations(r);
  EXPECT_GT(r.faults.dropped, 0u);
  EXPECT_GT(r.result.jobs_completed, 0u);
  ASSERT_EQ(r.controller_counters.size(), 4u);
}

TEST(TreeChaos, ReportIsAPureFunctionOfTheSeed) {
  const auto run = [](std::uint64_t seed) {
    TreeChaosConfig cfg = tree_cfg(4, 2, seed);
    cfg.controller.stale_after_ticks = 2;
    cfg.arbiter.stale_after_ticks = 2;
    cfg.subtree_partitions.push_back({0, {10, 20}});
    auto policies = make_policies(cfg.engine, 4);
    return run_tree_chaos(cfg, policies);
  };
  const TreeChaosReport a = run(21);
  const TreeChaosReport b = run(21);

  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.held_ticks, b.held_ticks);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.result.jobs_completed, b.result.jobs_completed);
  EXPECT_EQ(bits(a.result.mean_power_draw_w), bits(b.result.mean_power_draw_w));
  EXPECT_EQ(a.root_decisions, b.root_decisions);
  EXPECT_EQ(bits(a.max_level_overdraw_w), bits(b.max_level_overdraw_w));
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(bits(a.history[i].committed_w), bits(b.history[i].committed_w))
        << "tick " << i;
    ASSERT_EQ(a.history[i].grants_w.size(), b.history[i].grants_w.size());
    for (std::size_t m = 0; m < a.history[i].grants_w.size(); ++m) {
      EXPECT_EQ(bits(a.history[i].grants_w[m]), bits(b.history[i].grants_w[m]))
          << "tick " << i << " mid " << m;
    }
  }
}

}  // namespace
}  // namespace perq::fault
