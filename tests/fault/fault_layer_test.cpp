// Unit tests for the fault-injection layer: FaultPlan schedule/clock
// bookkeeping and each FaultyConnection fault type over a raw loopback
// pair, independent of the control loop.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/faulty_transport.hpp"
#include "fault/plan.hpp"
#include "net/loopback.hpp"

namespace perq::fault {
namespace {

proto::Message hello(std::uint32_t id) {
  proto::Hello h;
  h.agent_id = id;
  return h;
}

std::uint32_t hello_id(const proto::Message& m) {
  return std::get<proto::Hello>(m).agent_id;
}

std::vector<std::uint32_t> ids(const std::vector<proto::Message>& ms) {
  std::vector<std::uint32_t> out;
  for (const proto::Message& m : ms) out.push_back(hello_id(m));
  return out;
}

/// One decorated client / plain server pair over loopback.
struct Pair {
  net::LoopbackTransport loop;
  FaultPlan plan;
  FaultyTransport transport;
  std::unique_ptr<net::Listener> listener;
  std::unique_ptr<net::Connection> client;  ///< decorated (FaultyConnection)
  std::unique_ptr<net::Connection> server;  ///< undecorated peer

  explicit Pair(std::uint64_t seed, const ConnectionSchedule& sched)
      : plan(seed), transport(loop, plan) {
    plan.set_default_schedule(sched);
    listener = transport.listen("x");
    client = transport.connect("x");
    server = std::move(listener->accept_new().at(0));
  }
};

TEST(FaultPlan, DefaultAndPerConnectionSchedules) {
  FaultPlan plan(1);
  ConnectionSchedule dflt;
  dflt.tx.drop = 0.5;
  plan.set_default_schedule(dflt);
  ConnectionSchedule special;
  special.kill_at_tick = 7;
  plan.set_schedule(2, special);

  EXPECT_EQ(plan.schedule_for(0).tx.drop, 0.5);
  EXPECT_EQ(plan.schedule_for(0).kill_at_tick, kNever);
  EXPECT_EQ(plan.schedule_for(2).kill_at_tick, 7u);
  EXPECT_EQ(plan.schedule_for(2).tx.drop, 0.0);
}

TEST(FaultPlan, PerConnectionStreamsAreIndependentAndSeeded) {
  FaultPlan a(42), b(42), c(43);
  Rng ra0 = a.rng_for(0);
  Rng rb0 = b.rng_for(0);
  Rng ra1 = a.rng_for(1);
  Rng rc0 = c.rng_for(0);
  const double va0 = ra0.uniform();
  EXPECT_EQ(va0, rb0.uniform());           // same seed, same index: identical
  EXPECT_NE(va0, ra1.uniform());           // different connection index
  EXPECT_NE(va0, rc0.uniform());           // different master seed
}

TEST(FaultyConnection, NoScheduleIsTransparentPassThrough) {
  Pair p(1, {});
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_TRUE(p.client->send(hello(i)));
  EXPECT_EQ(ids(p.server->receive()), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  for (std::uint32_t i = 10; i < 13; ++i) p.server->send(hello(i));
  EXPECT_EQ(ids(p.client->receive()), (std::vector<std::uint32_t>{10, 11, 12}));
  EXPECT_TRUE(p.client->open());
  EXPECT_FALSE(p.client->corrupt());
  const FaultStats& s = p.plan.stats();
  EXPECT_EQ(s.tx_frames, 5u);
  EXPECT_EQ(s.rx_frames, 3u);
  EXPECT_EQ(s.dropped + s.truncated + s.bit_flipped + s.duplicated + s.delayed +
                s.reordered + s.partitioned + s.killed,
            0u);
}

TEST(FaultyConnection, DropAppliesOnlyInsideWindow) {
  ConnectionSchedule sched;
  sched.tx.drop = 1.0;
  sched.window = {2, 4};
  Pair p(1, sched);

  p.plan.set_tick(0);
  p.client->send(hello(0));
  p.plan.set_tick(2);
  p.client->send(hello(2));  // dropped
  p.plan.set_tick(3);
  p.client->send(hello(3));  // dropped
  p.plan.set_tick(4);
  p.client->send(hello(4));
  EXPECT_EQ(ids(p.server->receive()), (std::vector<std::uint32_t>{0, 4}));
  EXPECT_EQ(p.plan.stats().dropped, 2u);
}

TEST(FaultyConnection, DelayHoldsFrameForNTicks) {
  ConnectionSchedule sched;
  sched.tx.delay = 1.0;
  sched.tx.delay_ticks = 2;
  Pair p(1, sched);

  p.plan.set_tick(0);
  p.client->send(hello(7));
  EXPECT_TRUE(p.server->receive().empty());
  p.plan.set_tick(1);
  p.client->receive();  // pumps fault time; frame not yet due
  EXPECT_TRUE(p.server->receive().empty());
  p.plan.set_tick(2);
  p.client->receive();  // due now: flushed to the inner connection
  EXPECT_EQ(ids(p.server->receive()), std::vector<std::uint32_t>{7});
  EXPECT_EQ(p.plan.stats().delayed, 1u);
}

TEST(FaultyConnection, DuplicateDeliversTwice) {
  ConnectionSchedule sched;
  sched.rx.duplicate = 1.0;
  Pair p(1, sched);

  p.server->send(hello(9));
  EXPECT_EQ(ids(p.client->receive()), (std::vector<std::uint32_t>{9, 9}));
  EXPECT_EQ(p.plan.stats().duplicated, 1u);
}

TEST(FaultyConnection, ReorderSwapsAdjacentFrames) {
  ConnectionSchedule sched;
  sched.tx.reorder = 1.0;
  Pair p(1, sched);

  p.client->send(hello(1));  // held
  p.client->send(hello(2));  // hold occupied: 2 jumps the queue, then 1
  EXPECT_EQ(ids(p.server->receive()), (std::vector<std::uint32_t>{2, 1}));
  EXPECT_GE(p.plan.stats().reordered, 1u);
}

TEST(FaultyConnection, ReorderHoldReleasedNextTickIfNothingFollows) {
  ConnectionSchedule sched;
  sched.tx.reorder = 1.0;
  Pair p(1, sched);

  p.plan.set_tick(0);
  p.client->send(hello(5));  // held, nothing follows this tick
  EXPECT_TRUE(p.server->receive().empty());
  p.plan.set_tick(1);
  p.client->receive();  // pump releases the stale hold
  EXPECT_EQ(ids(p.server->receive()), std::vector<std::uint32_t>{5});
}

TEST(FaultyConnection, TruncateOnRxPoisonsThisSide) {
  ConnectionSchedule sched;
  sched.rx.truncate = 1.0;
  Pair p(1, sched);

  p.server->send(hello(3));
  EXPECT_TRUE(p.client->receive().empty());
  EXPECT_FALSE(p.client->open());
  EXPECT_TRUE(p.client->corrupt());
  EXPECT_EQ(p.plan.stats().truncated, 1u);
}

TEST(FaultyConnection, TruncateOnTxPoisonsThePeer) {
  ConnectionSchedule sched;
  sched.tx.truncate = 1.0;
  Pair p(1, sched);

  EXPECT_TRUE(p.client->send(hello(3)));  // accepted, then corrupts in flight
  EXPECT_TRUE(p.server->receive().empty());
  EXPECT_FALSE(p.server->open());  // peer sees the dead stream
  EXPECT_FALSE(p.client->corrupt());  // the poisoned decoder was the peer's
  EXPECT_EQ(p.plan.stats().truncated, 1u);
}

TEST(FaultyConnection, BitFlipMutatesOrPoisonsDeterministically) {
  // A flipped bit either survives re-framing (a semantic mutant arrives) or
  // poisons the decoder (connection dies). Which one is a pure function of
  // the seed; both runs of the same seed must agree exactly.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ConnectionSchedule sched;
    sched.rx.bit_flip = 1.0;
    Pair a(seed, sched);
    Pair b(seed, sched);
    a.server->send(hello(0x01020304));
    b.server->send(hello(0x01020304));
    const auto ma = a.client->receive();
    const auto mb = b.client->receive();
    EXPECT_EQ(a.plan.stats().bit_flipped, 1u) << "seed " << seed;
    ASSERT_EQ(ma.size(), mb.size()) << "seed " << seed;
    EXPECT_EQ(a.client->open(), b.client->open()) << "seed " << seed;
    EXPECT_EQ(a.client->corrupt(), b.client->corrupt()) << "seed " << seed;
    if (ma.empty()) {
      EXPECT_TRUE(a.client->corrupt()) << "seed " << seed;
    } else {
      EXPECT_EQ(hello_id(ma[0]), hello_id(mb[0])) << "seed " << seed;
    }
  }
}

TEST(FaultyConnection, KillAtTickClosesOnce) {
  ConnectionSchedule sched;
  sched.kill_at_tick = 3;
  Pair p(1, sched);

  p.plan.set_tick(2);
  EXPECT_TRUE(p.client->send(hello(1)));
  EXPECT_EQ(ids(p.server->receive()), std::vector<std::uint32_t>{1});

  p.plan.set_tick(3);
  EXPECT_FALSE(p.client->send(hello(2)));  // pump kills before the send
  EXPECT_FALSE(p.client->open());
  EXPECT_FALSE(p.client->corrupt());  // a crash, not corruption
  p.plan.set_tick(4);
  p.client->receive();
  EXPECT_EQ(p.plan.stats().killed, 1u);  // killed exactly once
}

TEST(FaultyConnection, PartitionSwallowsBothDirectionsButStaysOpen) {
  ConnectionSchedule sched;
  sched.partitions.push_back({2, 5});
  Pair p(1, sched);

  p.plan.set_tick(1);
  p.client->send(hello(1));
  p.plan.set_tick(3);
  p.client->send(hello(3));       // swallowed
  p.server->send(hello(30));
  EXPECT_TRUE(p.client->receive().empty());  // swallowed on rx
  EXPECT_TRUE(p.client->open());
  p.plan.set_tick(5);
  p.client->send(hello(5));
  EXPECT_EQ(ids(p.server->receive()), (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(p.plan.stats().partitioned, 2u);
}

TEST(FaultyConnection, SameSeedSameFaultSequence) {
  ConnectionSchedule sched;
  sched.tx.drop = 0.3;
  sched.tx.duplicate = 0.2;
  sched.tx.delay = 0.2;
  sched.tx.delay_ticks = 1;
  sched.tx.reorder = 0.2;
  const auto run = [&](std::uint64_t seed) {
    Pair p(seed, sched);
    std::vector<std::uint32_t> delivered;
    for (std::uint64_t t = 0; t < 20; ++t) {
      p.plan.set_tick(t);
      p.client->send(hello(static_cast<std::uint32_t>(t)));
      p.client->receive();  // pump delayed frames
      for (std::uint32_t id : ids(p.server->receive())) delivered.push_back(id);
    }
    return std::make_pair(delivered, p.plan.stats());
  };
  const auto [d1, s1] = run(99);
  const auto [d2, s2] = run(99);
  const auto [d3, s3] = run(100);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.duplicated, s2.duplicated);
  EXPECT_EQ(s1.delayed, s2.delayed);
  EXPECT_EQ(s1.reordered, s2.reordered);
  EXPECT_GT(s1.dropped + s1.duplicated + s1.delayed + s1.reordered, 0u);
  EXPECT_NE(d1, d3);  // a different seed takes a different fault path
}

TEST(FaultyTransport, ListenPassesThroughAndIndicesCountDials) {
  net::LoopbackTransport loop;
  FaultPlan plan(1);
  ConnectionSchedule kill0;
  kill0.kill_at_tick = 0;  // only connection index 0 is killed
  plan.set_schedule(0, kill0);
  FaultyTransport transport(loop, plan);

  auto listener = transport.listen("y");
  auto c0 = transport.connect("y");
  auto c1 = transport.connect("y");
  EXPECT_EQ(transport.connections_made(), 2u);
  auto accepted = listener->accept_new();
  ASSERT_EQ(accepted.size(), 2u);

  EXPECT_FALSE(c0->send(hello(1)));  // index 0: killed at tick 0
  EXPECT_TRUE(c1->send(hello(2)));   // index 1: default schedule, clean
  EXPECT_EQ(ids(accepted[1]->receive()), std::vector<std::uint32_t>{2});
}

}  // namespace
}  // namespace perq::fault
