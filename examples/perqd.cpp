// perqd: the PERQ controller as a standalone TCP service.
//
//   ./examples/perqd --listen 127.0.0.1:7421 --wc-nodes 32 --f 2.0
//                    [--ratio 8] [--stale-ticks 3] [--grace-ms 250]
//                    [--snapshot perqd.snap --snapshot-every 10]
//                    [--shards 4] [--no-delta] [--full-every 16]
//
// Identifies the node model, then serves cap plans to perq_agent plants
// until every agent has left. --wc-nodes and --f size the policy's target
// generator and must match the plant's. With --snapshot the controller
// periodically persists its full decision state; restarting perqd with the
// same snapshot path resumes mid-experiment with bit-identical plans.
//
// Hierarchical deployment (K budget domains, one arbiter):
//
//   ./examples/perqd --domains 4 --listen 127.0.0.1:7420          # arbiter
//   ./examples/perqd --domains 4 --domain 0 --arbiter 127.0.0.1:7420 \
//                    --listen 127.0.0.1:7421                      # domain 0
//   ...one more controller per domain, each on its own --listen port.
//
// With --domains K but no --domain, perqd runs the budget arbiter: it
// serves water-filled BudgetGrants to the K domain controllers and prints
// the cluster-wide aggregated robustness counters on shutdown. With
// --domain d it runs domain d's controller, which reports demand to
// --arbiter every interval and optimizes over the grants it gets back.
// --domains 1 (the default) is the monolithic controller, bit-identical
// to every release before domains existed.
//
// Multi-level trees (see DESIGN.md section 5i): an arbiter can itself be
// stacked under a higher arbiter with --parent, realizing a PowerTree of
// arbitrary --depth -- it reports its subtree's aggregate demand upward
// and divides its parent grant among its children:
//
//   ./examples/perqd --domains 2 --listen :7420 --tree-path 0    # root
//   ./examples/perqd --domains 2 --listen :7430 --depth 2 \
//                    --parent 127.0.0.1:7420 --parent-domain 0 \
//                    --parent-count 2 --share 0.5 --tree-path 0,1  # mid 0
//   ./examples/perqd --domain 0 --domains 3 --arbiter 127.0.0.1:7430 \
//                    --share 0.1667 --tree-path 0,1,3 \
//                    --sla-floor 150 --priority 2 --listen :7431  # leaf
//
// --tree-path names the root->self node ids; the parent's path is derived
// by dropping the last element, and every grant carries its sender's path
// so a re-parented subtree fences grants still in flight from its old
// parent. --share is the static cold-start fraction of the cluster budget
// assumed before the first parent grant (shares compose down the tree);
// --sla-floor and --priority are the tenant terms the water-fill honors.
//
// High availability (warm standby, see DESIGN.md section 5h):
//
//   ./examples/perqd --standby-of 127.0.0.1:7421 --listen 127.0.0.1:7422 \
//                    [--takeover-ms 2000]                       # standby
//   ./examples/perqd --listen 127.0.0.1:7421 \
//                    --replicate-to 127.0.0.1:7422              # primary
//
// Start the standby first: the primary dials it and streams every tick's
// canonical inputs (ReplTick) plus periodic full snapshots, so the standby
// replays the primary's decisions bit for bit without ever broadcasting.
// When the replication stream goes silent for --takeover-ms the standby
// promotes itself -- bumping the controller epoch so agents (and the
// arbiter) fence anything the deposed primary might still send -- and
// serves agents that fail over to its address. --replication-log gives
// either role a crash-durable WAL of the same stream: on restart perqd
// replays it and resumes with bit-identical decision state.
#include <chrono>
#include <memory>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "core/robustness.hpp"
#include "daemon/controller.hpp"
#include "daemon/snapshot.hpp"
#include "proto/message.hpp"
#include "hier/arbiter_daemon.hpp"
#include "net/tcp.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --listen <host:port>   bind address (default 127.0.0.1:7421)\n"
      "  --wc-nodes <n>         worst-case node count (default 32)\n"
      "  --f <factor>           over-provisioning factor (default 2.0)\n"
      "  --ratio <r>            PERQ improvement ratio (default 8)\n"
      "  --stale-ticks <n>      heartbeat timeout in intervals (default 3)\n"
      "  --grace-ms <ms>        decide grace for lagging agents (default 250)\n"
      "  --snapshot <path>      controller state snapshot file\n"
      "  --snapshot-every <n>   snapshot every n decisions (default 10)\n"
      "  --shards <s>           reactor shards for the data plane (default 1)\n"
      "  --no-delta             always broadcast full CapPlans, never deltas\n"
      "  --full-every <n>       full-plan resync cadence with deltas on\n"
      "                         (default 16; 0 = deltas only after joins)\n"
      "  --domains <k>          budget domain count (default 1: monolithic)\n"
      "  --domain <d>           run domain d's controller (needs --arbiter)\n"
      "  --arbiter <host:port>  arbiter address for a domain controller\n"
      "  (--domains k without --domain runs the arbiter itself)\n"
      "  --parent <host:port>   stack this arbiter under a higher arbiter\n"
      "  --parent-domain <d>    child id toward --parent (default 0)\n"
      "  --parent-count <k>     children of the parent arbiter (default 1)\n"
      "  --depth <n>            declared arbiter levels (validates the path)\n"
      "  --share <s>            static cold-start share of the cluster budget\n"
      "  --tree-path <a,b,..>   root->self node ids; rides in every grant and\n"
      "                         report so re-parented subtrees fence grants\n"
      "                         from a stale parent\n"
      "  --sla-floor <w>        tenant SLA power floor (watts)\n"
      "  --priority <p>         tenant priority weight (default 1)\n"
      "  --replicate-to <h:p>   stream decision state to a warm standby\n"
      "  --standby-of <h:p>     run as warm standby of that primary (the\n"
      "                         primary dials this perqd's --listen address)\n"
      "  --takeover-ms <ms>     standby: promote after this much replication\n"
      "                         silence (default 2000)\n"
      "  --replication-log <p>  crash-durable WAL of the replication stream;\n"
      "                         replayed on startup\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perq;
  using cli::parse_double_in;
  using cli::parse_u64_in;
  std::string listen = "127.0.0.1:7421";
  std::string arbiter_addr;
  std::string replicate_to, standby_of, repl_log;
  std::string parent_addr;
  int takeover_ms = 2000;
  std::size_t wc_nodes = 32;
  std::size_t domains = 1;
  long domain = -1;
  double f = 2.0, ratio = 8.0;
  std::size_t parent_domain = 0, parent_count = 1, depth = 0;
  double share = 0.0, sla_floor = 0.0, priority = 1.0;
  std::vector<std::uint32_t> tree_path;
  daemon::ControllerConfig ccfg;
  ccfg.snapshot_every_ticks = 10;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        PERQ_REQUIRE(i + 1 < argc, arg + ": missing value");
        return argv[++i];
      };
      if (arg == "--listen") listen = next();
      else if (arg == "--wc-nodes") wc_nodes = parse_u64_in(arg, next(), 1, 65536);
      else if (arg == "--f") f = parse_double_in(arg, next(), 1.0, 3.0);
      else if (arg == "--ratio") ratio = parse_double_in(arg, next(), 1.0, 1e6);
      else if (arg == "--stale-ticks") ccfg.stale_after_ticks = parse_u64_in(arg, next(), 1, 1000000);
      else if (arg == "--grace-ms") ccfg.decide_grace_ms = static_cast<int>(parse_u64_in(arg, next(), 0, 600000));
      else if (arg == "--snapshot") ccfg.snapshot_path = next();
      else if (arg == "--snapshot-every") ccfg.snapshot_every_ticks = cli::parse_u64(arg, next());
      else if (arg == "--shards") ccfg.shards = parse_u64_in(arg, next(), 1, 1024);
      else if (arg == "--no-delta") ccfg.delta_broadcast = false;
      else if (arg == "--full-every") ccfg.full_plan_every_ticks = cli::parse_u64(arg, next());
      else if (arg == "--domains") domains = parse_u64_in(arg, next(), 1, 4096);
      else if (arg == "--domain") domain = static_cast<long>(parse_u64_in(arg, next(), 0, 4095));
      else if (arg == "--arbiter") arbiter_addr = next();
      else if (arg == "--parent") parent_addr = next();
      else if (arg == "--parent-domain") parent_domain = parse_u64_in(arg, next(), 0, 4095);
      else if (arg == "--parent-count") parent_count = parse_u64_in(arg, next(), 1, 4096);
      else if (arg == "--depth") depth = parse_u64_in(arg, next(), 1, 8);
      else if (arg == "--share") share = parse_double_in(arg, next(), 0.0, 1.0);
      else if (arg == "--sla-floor") sla_floor = parse_double_in(arg, next(), 0.0, 1e9);
      else if (arg == "--priority") priority = parse_double_in(arg, next(), 0.0, 1e6);
      else if (arg == "--tree-path") {
        const std::string v = next();
        std::size_t pos = 0;
        while (pos <= v.size()) {
          const std::size_t comma = v.find(',', pos);
          const std::string tok =
              comma == std::string::npos ? v.substr(pos)
                                         : v.substr(pos, comma - pos);
          PERQ_REQUIRE(!tok.empty(), "--tree-path: empty element");
          tree_path.push_back(
              static_cast<std::uint32_t>(cli::parse_u64(arg, tok)));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      }
      else if (arg == "--replicate-to") replicate_to = next();
      else if (arg == "--standby-of") { standby_of = next(); ccfg.standby = true; }
      else if (arg == "--takeover-ms") takeover_ms = static_cast<int>(parse_u64_in(arg, next(), 1, 3600000));
      else if (arg == "--replication-log") repl_log = next();
      else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        PERQ_REQUIRE(false, "unknown option " + arg);
      }
    }
    PERQ_REQUIRE(domain < 0 || static_cast<std::size_t>(domain) < domains,
                 "--domain: out of range for --domains");
    PERQ_REQUIRE(domain < 0 || !arbiter_addr.empty(),
                 "--domain: requires --arbiter <host:port>");
    PERQ_REQUIRE(parent_addr.empty() || (domains > 1 && domain < 0),
                 "--parent: only the arbiter role can stack under a parent");
    PERQ_REQUIRE(parent_domain < parent_count,
                 "--parent-domain: out of range for --parent-count");
    PERQ_REQUIRE(tree_path.size() <= proto::kMaxTreePathDepth,
                 "--tree-path: longer than the wire limit");
    PERQ_REQUIRE(depth == 0 || tree_path.empty() ||
                     tree_path.size() <= depth + 1,
                 "--tree-path: deeper than the declared --depth");
    PERQ_REQUIRE(standby_of.empty() || replicate_to.empty(),
                 "--standby-of: a standby cannot replicate onward");
    PERQ_REQUIRE((standby_of.empty() && replicate_to.empty()) ||
                     (domains == 1 && domain < 0),
                 "HA roles apply to the monolithic controller");
  } catch (const precondition_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }

  // Arbiter role: no policy, no node model -- just the water-filling
  // allocator behind a listener. Runs until every domain controller leaves.
  if (domains > 1 && domain < 0) {
    net::TcpTransport transport;
    hier::ArbiterDaemonConfig acfg;
    acfg.stale_after_ticks = ccfg.stale_after_ticks;
    acfg.shards = ccfg.shards;
    hier::ArbiterDaemon arbiter(transport.listen(listen), domains, acfg);
    if (!parent_addr.empty()) {
      auto up = transport.connect(parent_addr);
      if (up == nullptr || !up->open()) {
        std::fprintf(stderr, "%s: cannot reach parent arbiter at %s\n",
                     argv[0], parent_addr.c_str());
        return 1;
      }
      daemon::DomainAttachment att;
      att.static_share = share;
      att.sla_floor_w = sla_floor;
      att.priority_weight = priority;
      att.tree_path = tree_path;
      if (!tree_path.empty()) {
        att.parent_path.assign(tree_path.begin(), tree_path.end() - 1);
      }
      arbiter.attach_parent(std::move(up),
                            static_cast<std::uint32_t>(parent_domain),
                            static_cast<std::uint32_t>(parent_count),
                            std::move(att));
      std::printf("perq-arbiter: stacked under %s as child %zu of %zu "
                  "(share %.4f)\n",
                  parent_addr.c_str(), parent_domain, parent_count, share);
    }
    std::printf("perq-arbiter: serving %zu domains on %s (%zu shard%s%s)\n",
                domains, listen.c_str(), acfg.shards,
                acfg.shards == 1 ? "" : "s",
                depth > 0 ? ", multi-level" : "");
    bool saw_domain = false;
    for (;;) {
      arbiter.wait(50);
      if (arbiter.service()) {
        // scope = what this arbiter divides (the parent grant when
        // stacked); budget = the cluster-wide figure for reference.
        std::printf("grant round: tick %-6llu  scope %.0f W  budget %.0f W  "
                    "fenced %.0f W  reserved %.0f W\n",
                    static_cast<unsigned long long>(arbiter.decided_tick()),
                    arbiter.scope_w(), arbiter.cluster_budget_w(),
                    arbiter.fenced_w(), arbiter.reserved_w());
      }
      if (arbiter.session_count() > 0) saw_domain = true;
      if (saw_domain && arbiter.session_count() == 0) break;
    }
    std::printf("perq-arbiter: all domain controllers left, shutting down\n");
    std::printf("perq-arbiter: cluster-wide robustness: %s\n",
                core::to_string(arbiter.aggregated_counters()).c_str());
    return 0;
  }

  std::printf("perqd: identifying node model...\n");
  const sysid::IdentifiedModel& model = core::canonical_node_model();

  core::PerqConfig pcfg;
  pcfg.improvement_ratio = ratio;
  const auto total = static_cast<std::size_t>(f * double(wc_nodes) + 0.5);
  core::PerqPolicy policy(&model, wc_nodes, total, pcfg);

  net::TcpTransport transport;
  daemon::PerqController controller(transport.listen(listen), policy, ccfg);

  if (domain >= 0) {
    auto up = transport.connect(arbiter_addr);
    if (up == nullptr || !up->open()) {
      std::fprintf(stderr, "%s: cannot reach arbiter at %s\n", argv[0],
                   arbiter_addr.c_str());
      return 1;
    }
    daemon::DomainAttachment att;
    att.static_share = share;
    att.sla_floor_w = sla_floor;
    att.priority_weight = priority;
    att.tree_path = tree_path;
    if (!tree_path.empty()) {
      att.parent_path.assign(tree_path.begin(), tree_path.end() - 1);
    }
    controller.attach_arbiter(std::move(up), static_cast<std::uint32_t>(domain),
                              static_cast<std::uint32_t>(domains),
                              std::move(att));
    std::printf("perqd: domain %ld of %zu, arbiter %s (sla floor %.0f W, "
                "priority %.2f)\n",
                domain, domains, arbiter_addr.c_str(), sla_floor, priority);
  }

  if (!ccfg.snapshot_path.empty()) {
    try {
      controller.restore(daemon::load_snapshot(ccfg.snapshot_path));
      std::printf("perqd: resumed from %s at tick %llu\n",
                  ccfg.snapshot_path.c_str(),
                  static_cast<unsigned long long>(controller.current_tick()));
    } catch (const std::exception&) {
      std::printf("perqd: no usable snapshot at %s, starting fresh\n",
                  ccfg.snapshot_path.c_str());
    }
  }

  if (!repl_log.empty()) {
    controller.open_replication_log(repl_log);
    if (controller.replicated_decides() > 0) {
      std::printf("perqd: replayed %llu replicated decides from %s "
                  "(tick %llu, epoch %llu)\n",
                  static_cast<unsigned long long>(
                      controller.replicated_decides()),
                  repl_log.c_str(),
                  static_cast<unsigned long long>(
                      controller.last_replicated_tick()),
                  static_cast<unsigned long long>(controller.epoch()));
    }
  }
  if (!replicate_to.empty()) {
    // The standby may still be starting up (it identifies its node model
    // before binding): keep dialing for a few seconds, like the agents do.
    std::unique_ptr<net::Connection> down;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      down = transport.connect(replicate_to);
      if ((down != nullptr && down->open()) ||
          std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (down == nullptr || !down->open()) {
      std::fprintf(stderr, "%s: cannot reach standby at %s\n", argv[0],
                   replicate_to.c_str());
      return 1;
    }
    controller.attach_standby(std::move(down));
    std::printf("perqd: replicating to warm standby at %s\n",
                replicate_to.c_str());
  }
  if (ccfg.standby) {
    std::printf("perqd: warm standby of %s; promoting after %d ms of "
                "replication silence\n",
                standby_of.c_str(), takeover_ms);
  }

  std::printf("perqd: serving on %s (wc-nodes %zu, f %.2f, %zu shard%s, "
              "%s broadcasts)\n",
              listen.c_str(), wc_nodes, f, ccfg.shards,
              ccfg.shards == 1 ? "" : "s",
              ccfg.delta_broadcast ? "delta" : "full-plan");
  bool saw_agent = false;
  std::uint64_t last_repl = controller.replicated_decides();
  bool saw_repl = false;
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    controller.wait(50);
    if (controller.standby()) {
      // Warm standby: replay the replication stream; decide nothing on our
      // own clock. The takeover timer starts at the first replicated decide
      // -- a standby that never heard from its primary has nothing
      // authoritative to promote from.
      controller.service();
      const std::uint64_t repl = controller.replicated_decides();
      const auto now = std::chrono::steady_clock::now();
      if (repl != last_repl) {
        last_repl = repl;
        last_progress = now;
        saw_repl = true;
      } else if (saw_repl &&
                 now - last_progress >
                     std::chrono::milliseconds(takeover_ms)) {
        controller.promote();
        std::printf("perqd: replication silent for %d ms -- promoting to "
                    "primary at tick %llu (epoch %llu)\n",
                    takeover_ms,
                    static_cast<unsigned long long>(
                        controller.last_replicated_tick()),
                    static_cast<unsigned long long>(controller.epoch()));
      }
      continue;
    }
    if (controller.service()) {
      const auto& s = controller.last_stats();
      std::printf(
          "tick %-6llu  fresh %-4zu held %-4zu held %.0f W  row %.0f W  stale "
          "agents %zu\n",
          static_cast<unsigned long long>(s.tick), s.fresh_jobs, s.held_jobs,
          s.held_w, s.budget_row_w, s.stale_agents);
    }
    if (controller.session_count() > 0) saw_agent = true;
    if (saw_agent && controller.session_count() == 0) break;
  }
  std::printf("perqd: all agents left after tick %llu, shutting down\n",
              static_cast<unsigned long long>(controller.current_tick()));
  std::printf("perqd: robustness: %s\n",
              core::to_string(controller.counters()).c_str());
  return 0;
}
