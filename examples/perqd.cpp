// perqd: the PERQ controller as a standalone TCP service.
//
//   ./examples/perqd --listen 127.0.0.1:7421 --wc-nodes 32 --f 2.0
//                    [--ratio 8] [--stale-ticks 3] [--grace-ms 250]
//                    [--snapshot perqd.snap --snapshot-every 10]
//
// Identifies the node model, then serves cap plans to perq_agent plants
// until every agent has left. --wc-nodes and --f size the policy's target
// generator and must match the plant's. With --snapshot the controller
// periodically persists its full decision state; restarting perqd with the
// same snapshot path resumes mid-experiment with bit-identical plans.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "core/robustness.hpp"
#include "daemon/controller.hpp"
#include "daemon/snapshot.hpp"
#include "net/tcp.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --listen <host:port>   bind address (default 127.0.0.1:7421)\n"
      "  --wc-nodes <n>         worst-case node count (default 32)\n"
      "  --f <factor>           over-provisioning factor (default 2.0)\n"
      "  --ratio <r>            PERQ improvement ratio (default 8)\n"
      "  --stale-ticks <n>      heartbeat timeout in intervals (default 3)\n"
      "  --grace-ms <ms>        decide grace for lagging agents (default 250)\n"
      "  --snapshot <path>      controller state snapshot file\n"
      "  --snapshot-every <n>   snapshot every n decisions (default 10)\n",
      argv0);
}

double parse_num(const char* argv0, const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects a number, got '%s'\n", argv0, flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perq;
  std::string listen = "127.0.0.1:7421";
  std::size_t wc_nodes = 32;
  double f = 2.0, ratio = 8.0;
  daemon::ControllerConfig ccfg;
  ccfg.snapshot_every_ticks = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") listen = next();
    else if (arg == "--wc-nodes") wc_nodes = static_cast<std::size_t>(parse_num(argv[0], "--wc-nodes", next()));
    else if (arg == "--f") f = parse_num(argv[0], "--f", next());
    else if (arg == "--ratio") ratio = parse_num(argv[0], "--ratio", next());
    else if (arg == "--stale-ticks") ccfg.stale_after_ticks = static_cast<std::uint64_t>(parse_num(argv[0], "--stale-ticks", next()));
    else if (arg == "--grace-ms") ccfg.decide_grace_ms = static_cast<int>(parse_num(argv[0], "--grace-ms", next()));
    else if (arg == "--snapshot") ccfg.snapshot_path = next();
    else if (arg == "--snapshot-every") ccfg.snapshot_every_ticks = static_cast<std::uint64_t>(parse_num(argv[0], "--snapshot-every", next()));
    else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  std::printf("perqd: identifying node model...\n");
  const sysid::IdentifiedModel& model = core::canonical_node_model();

  core::PerqConfig pcfg;
  pcfg.improvement_ratio = ratio;
  const auto total = static_cast<std::size_t>(f * double(wc_nodes) + 0.5);
  core::PerqPolicy policy(&model, wc_nodes, total, pcfg);

  net::TcpTransport transport;
  daemon::PerqController controller(transport.listen(listen), policy, ccfg);

  if (!ccfg.snapshot_path.empty()) {
    try {
      controller.restore(daemon::load_snapshot(ccfg.snapshot_path));
      std::printf("perqd: resumed from %s at tick %llu\n",
                  ccfg.snapshot_path.c_str(),
                  static_cast<unsigned long long>(controller.current_tick()));
    } catch (const std::exception&) {
      std::printf("perqd: no usable snapshot at %s, starting fresh\n",
                  ccfg.snapshot_path.c_str());
    }
  }

  std::printf("perqd: serving on %s (wc-nodes %zu, f %.2f)\n", listen.c_str(),
              wc_nodes, f);
  bool saw_agent = false;
  for (;;) {
    net::wait_readable(controller.fds(), 50);
    if (controller.service()) {
      const auto& s = controller.last_stats();
      std::printf(
          "tick %-6llu  fresh %-4zu held %-4zu held %.0f W  row %.0f W  stale "
          "agents %zu\n",
          static_cast<unsigned long long>(s.tick), s.fresh_jobs, s.held_jobs,
          s.held_w, s.budget_row_w, s.stale_agents);
    }
    if (controller.session_count() > 0) saw_agent = true;
    if (saw_agent && controller.session_count() == 0) break;
  }
  std::printf("perqd: all agents left after tick %llu, shutting down\n",
              static_cast<unsigned long long>(controller.current_tick()));
  std::printf("perqd: robustness: %s\n",
              core::to_string(controller.counters()).c_str());
  return 0;
}
