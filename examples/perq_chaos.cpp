// perq_chaos: the perqd control loop under deterministic fault injection.
//
//   ./examples/perq_chaos --scenario mix --seed 7
//   ./examples/perq_chaos --scenario drop --seed 1 --ticks 90
//
// Runs the full controller/agent experiment over loopback with a seeded
// fault schedule (see --scenario below), checks the run-level safety
// invariants every tick, then replays the identical experiment fault-free
// and reports when the faulted trajectory re-converged onto the clean one.
// Exit status 0 iff every invariant held on every tick.
//
// Scenarios (all faults confined to ticks [10, 40)):
//   drop       15% of frames vanish in each direction
//   delay      30% of frames arrive 2 ticks late
//   corrupt    5% bit flips + 2% truncations (kills connections; they rejoin)
//   crash      agent connections killed at ticks 20 and 28, then re-dialed
//   partition  agents 0 and 1 blacked out for ticks [15, 25)
//   mix        all of the above at once
//   domain-partition  hierarchical run (--domains controllers + arbiter);
//              domain 1's arbiter uplink blacked out for ticks [12, 30) --
//              the arbiter fences its grant, conservation is asserted on
//              every tick, the domain rides its held grant and rejoins
//   tree-partition  depth-2 arbiter tree (root + 2 mids + --domains
//              controllers with tenant SLA floors); mid 1's root uplink
//              blacked out for [12, 30) -- the subtree partition -- and
//              domain 0 re-parented from mid 0 to mid 1 at tick 36.
//              Per-level grant conservation, tenant SLA fairness, and
//              the no-double-draw re-parent invariant asserted per tick
//   failover   warm-standby HA: primary replicates every tick to a standby;
//              three runs -- crash-free baseline, tight handover (kill +
//              promote at tick 18, trajectory must be bit-identical to the
//              baseline), and detected takeover (kill at 18, agents fail
//              over by heartbeat loss, standby self-promotes; bounded
//              re-convergence + budget invariants asserted) -- plus a
//              deposed-primary fencing run (primary partitioned, standby
//              takes over, the old primary resumes and every agent must
//              reject its stale epoch)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/node_model.hpp"
#include "fault/chaos.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --scenario <name>  drop|delay|corrupt|crash|partition|mix|\n"
      "                     domain-partition|tree-partition|failover\n"
      "                     (default mix)\n"
      "  --seed <n>         fault seed (default 7)\n"
      "  --ticks <n>        tick limit, 0 = run to completion (default 0)\n"
      "  --agents <n>       node-agent count (default 4)\n"
      "  --domains <k>      domain count for domain-partition (default 2)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perq;
  std::string scenario = "mix";
  std::uint64_t seed = 7, ticks = 0;
  std::size_t agents = 4;
  std::size_t domains = 2;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        PERQ_REQUIRE(i + 1 < argc, arg + ": missing value");
        return argv[++i];
      };
      if (arg == "--scenario") scenario = next();
      else if (arg == "--seed") seed = cli::parse_u64(arg, next());
      else if (arg == "--ticks") ticks = cli::parse_u64(arg, next());
      else if (arg == "--agents") agents = cli::parse_u64_in(arg, next(), 1, 4096);
      else if (arg == "--domains") domains = cli::parse_u64_in(arg, next(), 1, 4096);
      else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        PERQ_REQUIRE(false, "unknown option " + arg);
      }
    }
  } catch (const precondition_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }

  if (scenario == "domain-partition") {
    fault::DomainChaosConfig dcfg;
    dcfg.engine.trace.system = trace::SystemModel::kTrinity;
    dcfg.engine.trace.max_job_nodes = 4;
    dcfg.engine.trace.seed = 5;
    dcfg.engine.worst_case_nodes = 16;
    dcfg.engine.over_provision_factor = 2.0;
    dcfg.engine.duration_s = 2400.0;
    dcfg.engine.control_interval_s = 10.0;
    dcfg.engine.trace.job_count = core::recommended_job_count(dcfg.engine);
    dcfg.domains = domains < 2 ? 2 : domains;
    dcfg.plant.agents = dcfg.domains;
    dcfg.plant.plan_timeout_ms = 50;
    dcfg.controller.decide_grace_ms = 5;
    dcfg.controller.stale_after_ticks = 2;
    dcfg.arbiter.stale_after_ticks = 2;
    dcfg.fault_seed = seed;
    dcfg.max_ticks = ticks;
    dcfg.domain_partitions.push_back({1, {12, 30}});

    const sysid::IdentifiedModel& dmodel = core::canonical_node_model();
    const auto dtotal = static_cast<std::size_t>(
        dcfg.engine.over_provision_factor *
            double(dcfg.engine.worst_case_nodes) +
        0.5);
    std::vector<std::unique_ptr<core::PerqPolicy>> policies;
    for (std::size_t d = 0; d < dcfg.domains; ++d) {
      policies.push_back(std::make_unique<core::PerqPolicy>(
          &dmodel, dcfg.engine.worst_case_nodes, dtotal));
    }
    std::printf("perq_chaos: scenario 'domain-partition', seed %llu, "
                "%zu domains, domain 1's arbiter uplink dark for [12, 30)\n",
                static_cast<unsigned long long>(seed), dcfg.domains);
    const fault::DomainChaosReport r = fault::run_domain_chaos(dcfg, policies);

    std::printf("  %llu ticks (%llu held), %zu jobs done, %llu grant rounds\n",
                static_cast<unsigned long long>(r.ticks),
                static_cast<unsigned long long>(r.held_ticks),
                r.result.jobs_completed,
                static_cast<unsigned long long>(r.arbiter_decisions));
    std::printf("  faults injected: %s\n", fault::to_string(r.faults).c_str());
    std::printf("  cluster-wide (arbiter aggregate): %s\n",
                core::to_string(r.aggregated_counters).c_str());
    std::printf("  plant: %s\n", core::to_string(r.plant_counters).c_str());
    std::printf("  final grants:");
    for (double g : r.final_grants_w) std::printf(" %.0f W", g);
    std::printf("  (fenced %.0f W)\n", r.final_fenced_w);

    if (!r.violations.empty()) {
      std::printf("  INVARIANT VIOLATIONS (%zu):\n", r.violations.size());
      for (const std::string& v : r.violations) {
        std::printf("    %s\n", v.c_str());
      }
      return 1;
    }
    std::printf("  all safety invariants held on every tick (grants "
                "conservation asserted per tick)\n");
    return 0;
  }

  if (scenario == "tree-partition") {
    fault::TreeChaosConfig tcfg;
    tcfg.engine.trace.system = trace::SystemModel::kTrinity;
    tcfg.engine.trace.max_job_nodes = 4;
    tcfg.engine.trace.seed = 5;
    tcfg.engine.worst_case_nodes = 16;
    tcfg.engine.over_provision_factor = 2.0;
    tcfg.engine.duration_s = 2400.0;
    tcfg.engine.control_interval_s = 10.0;
    tcfg.engine.trace.job_count = core::recommended_job_count(tcfg.engine);
    tcfg.domains = domains < 4 ? 4 : domains;
    tcfg.mids = 2;
    tcfg.plant.agents = tcfg.domains;
    tcfg.plant.plan_timeout_ms = 50;
    tcfg.controller.decide_grace_ms = 5;
    tcfg.controller.stale_after_ticks = 2;
    tcfg.arbiter.stale_after_ticks = 2;
    tcfg.fault_seed = seed;
    tcfg.max_ticks = ticks;
    // The subtree partition: mid 1 loses its root uplink, rides its held
    // parent grant, and its whole subtree must stay conserved and fair.
    tcfg.subtree_partitions.push_back({1, {12, 30}});
    // After the heal, move domain 0 under mid 1: the old mid must release
    // (not fence) its grant -- asserted as the no-double-draw invariant.
    tcfg.reparents.push_back({36, 0, 1});
    for (std::size_t d = 0; d < tcfg.domains; ++d) {
      daemon::DomainAttachment tenant;
      tenant.sla_floor_w = d == 2 ? 400.0 : 150.0;  // one demanding tenant
      tenant.priority_weight = d == 0 ? 2.0 : 1.0;
      tcfg.leaf_tenants.push_back(tenant);
    }

    const sysid::IdentifiedModel& tmodel = core::canonical_node_model();
    const auto ttotal = static_cast<std::size_t>(
        tcfg.engine.over_provision_factor *
            double(tcfg.engine.worst_case_nodes) +
        0.5);
    std::vector<std::unique_ptr<core::PerqPolicy>> policies;
    for (std::size_t d = 0; d < tcfg.domains; ++d) {
      policies.push_back(std::make_unique<core::PerqPolicy>(
          &tmodel, tcfg.engine.worst_case_nodes, ttotal));
    }
    std::printf("perq_chaos: scenario 'tree-partition', seed %llu, "
                "%zu domains under 2 mids, mid 1's root uplink dark for "
                "[12, 30), domain 0 re-parented at tick 36\n",
                static_cast<unsigned long long>(seed), tcfg.domains);
    const fault::TreeChaosReport r = fault::run_tree_chaos(tcfg, policies);

    std::printf("  %llu ticks (%llu held), %zu jobs done, %llu root rounds, "
                "%llu re-parents executed\n",
                static_cast<unsigned long long>(r.ticks),
                static_cast<unsigned long long>(r.held_ticks),
                r.result.jobs_completed,
                static_cast<unsigned long long>(r.root_decisions),
                static_cast<unsigned long long>(r.reparents_executed));
    std::printf("  faults injected: %s\n", fault::to_string(r.faults).c_str());
    std::printf("  cluster-wide (root aggregate): %s\n",
                core::to_string(r.aggregated_counters).c_str());
    std::printf("  worst per-level overdraw: %.6f W\n",
                r.max_level_overdraw_w);
    std::printf("  root grants:");
    for (double g : r.root_grants_w) std::printf(" %.0f W", g);
    std::printf("\n");

    if (!r.violations.empty()) {
      std::printf("  INVARIANT VIOLATIONS (%zu):\n", r.violations.size());
      for (const std::string& v : r.violations) {
        std::printf("    %s\n", v.c_str());
      }
      return 1;
    }
    std::printf("  all safety invariants held on every tick (per-level "
                "conservation, tenant SLA fairness, re-parent hygiene)\n");
    return 0;
  }

  if (scenario == "failover") {
    const auto base_config = [&] {
      fault::FailoverChaosConfig fcfg;
      fcfg.engine.trace.system = trace::SystemModel::kTrinity;
      fcfg.engine.trace.max_job_nodes = 4;
      fcfg.engine.trace.seed = 5;
      fcfg.engine.worst_case_nodes = 16;
      fcfg.engine.over_provision_factor = 2.0;
      fcfg.engine.duration_s = 1200.0;
      fcfg.engine.control_interval_s = 10.0;
      fcfg.engine.trace.job_count = core::recommended_job_count(fcfg.engine);
      fcfg.plant.agents = agents;
      fcfg.plant.plan_timeout_ms = 50;
      fcfg.plant.failover_after_held_ticks = 2;
      fcfg.plant.failsafe_after_ticks = 3;
      fcfg.controller.decide_grace_ms = 5;
      fcfg.fault_seed = seed;
      fcfg.max_ticks = ticks;
      return fcfg;
    };
    const sysid::IdentifiedModel& fmodel = core::canonical_node_model();
    const auto ftotal = static_cast<std::size_t>(
        2.0 * 16.0 + 0.5);  // over_provision_factor * worst_case_nodes
    const auto run = [&](const fault::FailoverChaosConfig& fcfg) {
      core::PerqPolicy pp(&fmodel, fcfg.engine.worst_case_nodes, ftotal);
      core::PerqPolicy sp(&fmodel, fcfg.engine.worst_case_nodes, ftotal);
      return fault::run_failover_chaos(fcfg, pp, sp);
    };

    std::printf("perq_chaos: scenario 'failover', seed %llu, %zu agents\n",
                static_cast<unsigned long long>(seed), agents);
    int rc = 0;
    const auto check = [&rc](const char* name,
                             const fault::FailoverChaosReport& r) {
      if (r.violations.empty()) return;
      std::printf("  %s: INVARIANT VIOLATIONS (%zu):\n", name,
                  r.violations.size());
      for (const std::string& v : r.violations) {
        std::printf("    %s\n", v.c_str());
      }
      rc = 1;
    };

    const fault::FailoverChaosReport clean = run(base_config());
    check("baseline", clean);

    fault::FailoverChaosConfig tight_cfg = base_config();
    tight_cfg.kill_primary_at_tick = 18;
    tight_cfg.tight_handover = true;
    const fault::FailoverChaosReport tight = run(tight_cfg);
    check("tight-handover", tight);
    const std::uint64_t tight_reconv = fault::reconvergence_tick(
        tight.history, clean.history, 0, /*tol_w=*/0.0);
    std::printf("  tight handover: primary killed + standby promoted at tick "
                "18; trajectory %s to the crash-free run (%llu replicated "
                "decides replayed, %llu crc divergences)\n",
                tight_reconv == 0 ? "bit-identical" : "DIVERGED",
                static_cast<unsigned long long>(tight.replicated_decides),
                static_cast<unsigned long long>(tight.repl_divergence));
    if (tight_reconv != 0 || tight.repl_divergence != 0) rc = 1;

    fault::FailoverChaosConfig det_cfg = base_config();
    det_cfg.kill_primary_at_tick = 18;
    const fault::FailoverChaosReport det = run(det_cfg);
    check("detected-takeover", det);
    // Per-job re-convergence is too strict here: two held ticks shift every
    // later job start. Sustained power divergence is the control-level
    // signature (see longest_power_divergence_streak), and the takeover
    // itself must land within the detection + failover windows.
    const std::uint64_t det_streak = fault::longest_power_divergence_streak(
        det.history, clean.history,
        {det.promoted_at_tick == fault::kNever ? 18 : det.promoted_at_tick + 30,
         fault::kNever},
        /*tol_w=*/100.0);
    std::printf("  detected takeover: promoted at tick %llu (%llu held "
                "ticks); longest >100 W divergence streak vs the crash-free "
                "run after re-convergence grace: %llu ticks\n",
                static_cast<unsigned long long>(det.promoted_at_tick),
                static_cast<unsigned long long>(det.held_ticks),
                static_cast<unsigned long long>(det_streak));
    if (det.promoted_at_tick == fault::kNever ||
        det.promoted_at_tick > 18 + 6) {
      std::printf("  detected takeover: standby not promoted within the "
                  "expected window\n");
      rc = 1;
    }

    fault::FailoverChaosConfig fence_cfg = base_config();
    fence_cfg.partition_primary = {12, 60};
    for (std::size_t a = 0; a < agents; ++a) {
      fence_cfg.redial_primary.emplace_back(30, a);
    }
    const fault::FailoverChaosReport fence = run(fence_cfg);
    check("deposed-fence", fence);
    std::printf("  deposed primary: partitioned from tick 12, standby "
                "promoted at tick %llu (epoch %llu); agents re-dialed the "
                "old primary at tick 30 and fenced %llu stale-epoch frames\n",
                static_cast<unsigned long long>(fence.promoted_at_tick),
                static_cast<unsigned long long>(fence.standby_epoch),
                static_cast<unsigned long long>(fence.stale_epoch_frames));
    if (fence.promoted_at_tick == fault::kNever ||
        fence.stale_epoch_frames == 0) {
      std::printf("  deposed primary: fencing did not engage\n");
      rc = 1;
    }

    if (rc == 0) {
      std::printf("  all safety invariants held on every tick across the "
                  "handover\n");
    }
    return rc;
  }

  fault::ChaosConfig cfg;
  cfg.engine.trace.system = trace::SystemModel::kTrinity;
  cfg.engine.trace.max_job_nodes = 4;
  cfg.engine.trace.seed = 5;
  cfg.engine.worst_case_nodes = 16;
  cfg.engine.over_provision_factor = 2.0;
  cfg.engine.duration_s = 1200.0;
  cfg.engine.control_interval_s = 10.0;
  cfg.engine.trace.job_count = core::recommended_job_count(cfg.engine);
  cfg.plant.agents = agents;
  cfg.plant.plan_timeout_ms = 50;  // loopback: no plan this tick means never
  cfg.controller.decide_grace_ms = 5;
  cfg.fault_seed = seed;
  cfg.max_ticks = ticks;

  const fault::TickWindow kFaultWindow{10, 40};
  fault::ConnectionSchedule sched;
  sched.window = kFaultWindow;
  const bool mix = scenario == "mix";
  if (scenario == "drop" || mix) {
    sched.tx.drop = 0.15;
    sched.rx.drop = 0.15;
  }
  if (scenario == "delay" || mix) {
    sched.tx.delay = 0.3;
    sched.rx.delay = 0.3;
    sched.tx.delay_ticks = sched.rx.delay_ticks = 2;
  }
  if (scenario == "corrupt" || mix) {
    sched.tx.bit_flip = 0.05;
    sched.tx.truncate = 0.02;
    sched.rx.bit_flip = 0.05;
  }
  cfg.default_schedule = sched;
  if (scenario == "crash" || mix) {
    fault::ConnectionSchedule kill1 = sched;
    kill1.kill_at_tick = 20;
    fault::ConnectionSchedule kill2 = sched;
    kill2.kill_at_tick = 28;
    cfg.schedules.emplace_back(1, kill1);
    if (agents > 2) cfg.schedules.emplace_back(2, kill2);
  }
  if (scenario == "partition" || mix) {
    fault::ConnectionSchedule part = sched;
    part.partitions.push_back({15, 25});
    cfg.schedules.emplace_back(0, part);
    if (agents > 1 && scenario == "partition") {
      cfg.schedules.emplace_back(1, part);
    }
  }
  if (cfg.schedules.empty() && scenario != "drop" && scenario != "delay" &&
      scenario != "corrupt" && !mix) {
    std::fprintf(stderr, "%s: unknown scenario '%s'\n", argv[0],
                 scenario.c_str());
    return 2;
  }

  const sysid::IdentifiedModel& model = core::canonical_node_model();
  const auto total = static_cast<std::size_t>(
      cfg.engine.over_provision_factor * double(cfg.engine.worst_case_nodes) +
      0.5);

  std::printf("perq_chaos: scenario '%s', seed %llu, %zu agents\n",
              scenario.c_str(), static_cast<unsigned long long>(seed), agents);

  core::PerqPolicy faulted_policy(&model, cfg.engine.worst_case_nodes, total);
  const fault::ChaosReport faulted = fault::run_chaos(cfg, faulted_policy);

  fault::ChaosConfig clean_cfg = cfg;  // identical run, no faults
  clean_cfg.default_schedule = {};
  clean_cfg.schedules.clear();
  clean_cfg.events.clear();
  core::PerqPolicy clean_policy(&model, cfg.engine.worst_case_nodes, total);
  const fault::ChaosReport clean = fault::run_chaos(clean_cfg, clean_policy);

  std::printf("  faulted: %llu ticks (%llu held), %zu jobs done\n",
              static_cast<unsigned long long>(faulted.ticks),
              static_cast<unsigned long long>(faulted.held_ticks),
              faulted.result.jobs_completed);
  std::printf("  faults injected: %s\n",
              fault::to_string(faulted.faults).c_str());
  std::printf("  controller: %s\n",
              core::to_string(faulted.controller_counters).c_str());
  std::printf("  plant:      %s\n",
              core::to_string(faulted.plant_counters).c_str());

  const std::uint64_t reconv = fault::reconvergence_tick(
      faulted.history, clean.history, kFaultWindow.end, /*tol_w=*/12.0);
  if (reconv == fault::kNever) {
    std::printf("  per-job re-convergence: not within this run (a fault that "
                "shifts one job completion offsets every later start)\n");
  } else {
    std::printf("  per-job re-convergence: caps within 12 W of the fault-free "
                "run from tick %llu (fault window ended at %llu)\n",
                static_cast<unsigned long long>(reconv),
                static_cast<unsigned long long>(kFaultWindow.end));
  }
  const std::uint64_t during = fault::longest_power_divergence_streak(
      faulted.history, clean.history, kFaultWindow, /*tol_w=*/100.0);
  const std::uint64_t after = fault::longest_power_divergence_streak(
      faulted.history, clean.history, {kFaultWindow.end + 30, fault::kNever},
      /*tol_w=*/100.0);
  std::printf("  power re-convergence: longest >100 W divergence streak vs "
              "the fault-free run: %llu ticks in the fault window, %llu "
              "after it\n",
              static_cast<unsigned long long>(during),
              static_cast<unsigned long long>(after));

  if (!faulted.violations.empty()) {
    std::printf("  INVARIANT VIOLATIONS (%zu):\n", faulted.violations.size());
    for (const std::string& v : faulted.violations) {
      std::printf("    %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("  all safety invariants held on every tick\n");
  return 0;
}
