// Full policy comparison on a simulated over-provisioned cluster.
//
//   ./examples/cluster_comparison [f] [hours] [system]
//
// Runs FOP, SJS, LJS, SRN, and PERQ on the same workload and prints the
// paper's three metrics. `system` is mira, trinity, or tardis.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace perq;
  const double f = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double hours = argc > 2 ? std::atof(argv[2]) : 8.0;
  const char* system = argc > 3 ? argv[3] : "trinity";

  core::EngineConfig cfg;
  if (std::strcmp(system, "mira") == 0) {
    cfg.trace.system = trace::SystemModel::kMira;
    cfg.worst_case_nodes = 64;
    cfg.trace.max_job_nodes = 16;
  } else if (std::strcmp(system, "tardis") == 0) {
    cfg.trace.system = trace::SystemModel::kTardis;
    cfg.worst_case_nodes = 8;
    cfg.trace.max_job_nodes = 4;
  } else {
    cfg.trace.system = trace::SystemModel::kTrinity;
    cfg.worst_case_nodes = 32;
    cfg.trace.max_job_nodes = 8;
  }
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.trace.seed = 11;
  cfg.trace.job_count = core::recommended_job_count(cfg);

  std::printf("system %s, f = %.2f, %zu worst-case nodes (%0.f W budget), %g h\n\n",
              system, f, cfg.worst_case_nodes, static_cast<double>(cfg.worst_case_nodes) * 290.0,
              hours);

  // Baseline at f = 1.
  core::EngineConfig base_cfg = cfg;
  base_cfg.over_provision_factor = 1.0;
  base_cfg.trace.job_count = core::recommended_job_count(base_cfg);

  // All six runs (baseline, FOP reference, SJS/LJS/SRN, PERQ) are independent
  // deterministic simulations: submit them all to the pool and report in the
  // original order once everything lands.
  auto& pool = perq::ThreadPool::shared();
  auto base_fut = pool.submit([&base_cfg] {
    auto p = policy::make_fop();
    return core::run_experiment(base_cfg, *p);
  });
  // FOP is both a contender and the fairness reference.
  auto fop_fut = pool.submit([&cfg] {
    auto p = policy::make_fop();
    return core::run_experiment(cfg, *p);
  });
  std::vector<std::future<core::RunResult>> others;
  for (auto make : {policy::make_sjs, policy::make_ljs, policy::make_srn}) {
    others.push_back(pool.submit([&cfg, make] {
      auto p = make();
      return core::run_experiment(cfg, *p);
    }));
  }
  const auto total = static_cast<std::size_t>(f * double(cfg.worst_case_nodes) + 0.5);
  core::PerqPolicy perq(&core::canonical_node_model(), cfg.worst_case_nodes, total);
  auto perq_fut = pool.submit([&cfg, &perq] { return core::run_experiment(cfg, perq); });

  const auto base = base_fut.get();
  const auto fop_run = fop_fut.get();

  std::printf("%-6s %10s %14s %12s %12s\n", "policy", "completed", "throughput+%",
              "mean-deg%", "max-deg%");
  const auto report = [&](const core::RunResult& run) {
    const auto fair = metrics::degradation_vs_baseline(run, fop_run);
    std::printf("%-6s %10zu %14.1f %12.1f %12.1f\n", run.policy_name.c_str(),
                run.jobs_completed,
                metrics::throughput_improvement_pct(run.jobs_completed,
                                                    base.jobs_completed),
                fair.mean_degradation_pct, fair.max_degradation_pct);
  };
  report(fop_run);
  for (auto& fut : others) report(fut.get());
  report(perq_fut.get());

  const auto latency = metrics::summarize_decision_times(perq.decision_seconds());
  std::printf("\nPERQ decision latency: p50 %.2f ms, p99 %.2f ms over %zu decisions\n",
              latency.p50_s * 1e3, latency.p99_s * 1e3, latency.decisions);
  return 0;
}
