// Quickstart: identify the node model, run a small over-provisioned cluster
// under FOP (the fairness-oriented equal split) and under PERQ, and compare
// throughput and fairness.
//
//   ./examples/quickstart
//
// This is the minimal end-to-end tour of the public API:
//   core::canonical_node_model() -> sysid model of the node type
//   policy::make_fop()           -> baseline policy
//   core::PerqPolicy             -> the paper's controller
//   core::run_experiment()       -> drive a full simulated day
//   metrics::*                   -> the paper's objective metrics
#include <cstdio>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"

int main() {
  using namespace perq;

  // The one-time-per-node-type system identification (paper Sec. 2.4.2).
  const sysid::IdentifiedModel& model = core::canonical_node_model();
  std::printf("node model: order %zu, validation fit %.1f%%, dc gain %.3f\n",
              model.ss().order(), model.fit_percent(), model.arx().dc_gain());

  // A small Trinity-like machine: 32 worst-case nodes, 2x over-provisioned.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 8;
  cfg.trace.seed = 11;
  cfg.worst_case_nodes = 32;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 12.0 * 3600.0;  // half a simulated day
  cfg.trace.job_count = core::recommended_job_count(cfg);

  // Baseline at f = 1: the worst-case-provisioned machine.
  core::EngineConfig base_cfg = cfg;
  base_cfg.over_provision_factor = 1.0;
  auto fop_f1 = policy::make_fop();
  const auto base = core::run_experiment(base_cfg, *fop_f1);

  // FOP and PERQ on the over-provisioned machine.
  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);

  core::PerqPolicy perq(&model, cfg.worst_case_nodes,
                        static_cast<std::size_t>(cfg.over_provision_factor *
                                                 double(cfg.worst_case_nodes)));
  const auto perq_run = core::run_experiment(cfg, perq);

  std::printf("\n%-6s %10s %12s %12s %12s\n", "policy", "completed",
              "throughput+%", "mean-deg%", "max-deg%");
  std::printf("%-6s %10zu %12s %12s %12s\n", "f=1", base.jobs_completed, "-", "-", "-");
  std::printf("%-6s %10zu %12.1f %12.1f %12.1f\n", "FOP", fop_run.jobs_completed,
              metrics::throughput_improvement_pct(fop_run.jobs_completed,
                                                  base.jobs_completed),
              0.0, 0.0);
  const auto fair = metrics::degradation_vs_baseline(perq_run, fop_run);
  std::printf("%-6s %10zu %12.1f %12.1f %12.1f\n", "PERQ", perq_run.jobs_completed,
              metrics::throughput_improvement_pct(perq_run.jobs_completed,
                                                  base.jobs_completed),
              fair.mean_degradation_pct, fair.max_degradation_pct);

  const auto latency = metrics::summarize_decision_times(perq.decision_seconds());
  std::printf("\nPERQ decision latency: p50 %.4fs  p80 %.4fs  max %.4fs over %zu decisions\n",
              latency.p50_s, latency.p80_s, latency.max_s, latency.decisions);
  return 0;
}
