// Extending PERQ's framework with a custom power-provisioning policy.
//
//   ./examples/custom_policy
//
// Implements a simple "demand-following" policy -- every job gets a cap
// proportional to its application's recent power draw -- behind the same
// PowerPolicy interface the built-in policies use, then evaluates it against
// FOP and PERQ on a common workload. This is the extension point the paper
// advertises for data-center power-management research.
#include <algorithm>
#include <cstdio>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"

namespace {

using namespace perq;

/// Caps each job near its measured draw plus headroom, scaled into budget.
class DemandFollowing final : public policy::PowerPolicy {
 public:
  std::string name() const override { return "DEMAND"; }

  std::vector<double> allocate(const policy::PolicyContext& ctx) override {
    const auto& running = *ctx.running;
    const auto& spec = apps::node_power_spec();
    std::vector<double> caps(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      // A real system would use measured node power; the simulator exposes
      // the same information through the job's last cap and IPS trend. We
      // approximate demand with a fixed headroom over the fair share when no
      // measurement exists yet.
      const sched::Job& job = *running[i];
      const double guess = job.last_cap_w() > 0.0
                               ? job.last_cap_w() * (job.last_min_perf() < 0.99
                                                         ? 1.15   // throttled: grow
                                                         : 0.95)  // satisfied: trim
                               : ctx.budget_for_busy_w /
                                     std::max(1.0, ctx.total_nodes);
      caps[i] = std::clamp(guess, spec.cap_min, spec.tdp);
    }
    return policy::enforce_budget(running, std::move(caps), ctx.budget_for_busy_w);
  }
};

}  // namespace

int main() {
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.worst_case_nodes = 32;
  cfg.trace.max_job_nodes = 8;
  cfg.over_provision_factor = 2.0;
  cfg.duration_s = 8 * 3600.0;
  cfg.trace.seed = 11;
  cfg.trace.job_count = core::recommended_job_count(cfg);

  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);

  DemandFollowing demand;
  const auto demand_run = core::run_experiment(cfg, demand);

  core::PerqPolicy perq(&core::canonical_node_model(), 32, 64);
  const auto perq_run = core::run_experiment(cfg, perq);

  std::printf("Trinity-like cluster, f = 2.0, 8 simulated hours\n\n");
  std::printf("%-8s %10s %12s %12s\n", "policy", "completed", "mean-deg%",
              "max-deg%");
  std::printf("%-8s %10zu %12s %12s\n", "FOP", fop_run.jobs_completed, "-", "-");
  const auto d_fair = metrics::degradation_vs_baseline(demand_run, fop_run);
  std::printf("%-8s %10zu %12.1f %12.1f\n", "DEMAND", demand_run.jobs_completed,
              d_fair.mean_degradation_pct, d_fair.max_degradation_pct);
  const auto p_fair = metrics::degradation_vs_baseline(perq_run, fop_run);
  std::printf("%-8s %10zu %12.1f %12.1f\n", "PERQ", perq_run.jobs_completed,
              p_fair.mean_degradation_pct, p_fair.max_degradation_pct);
  std::printf("\nThe naive demand follower lacks PERQ's model-based fairness\n"
              "targets: compare its degradation tail against PERQ's.\n");
  return 0;
}
