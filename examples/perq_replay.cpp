// perq_replay: million-job SLURM-shaped trace replay with a per-job
// fairness audit (paper Fig. 9 axes: jobs/day and fairness vs f).
//
//   ./examples/perq_replay --jobs 1000000 --wc-nodes 1024
//       --f 1.0,1.2,1.4,1.6,1.8,2.0 --out bench_results/replay_audit.json
//
// Synthesizes a Mira/Trinity-shaped trace (Poisson arrivals, Zipf users,
// padded walltime estimates), replays it through the SchedCtl controller +
// durable accounting store at one over-provisioning factor per pool
// worker, and writes
//   * a JSON audit (schema-stable, bit-identical across runs of the same
//     config -- no timestamps or machine-speed numbers inside), and
//   * a CSV jobs/day-vs-f curve next to the other bench_results files.
// Wall-clock time and peak RSS go to stdout only, keeping the artifact
// deterministic.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "replay/replay.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --jobs <n>            jobs to replay (default 10000)\n"
      "  --system mira|trinity|tardis   workload shape (default mira)\n"
      "  --wc-nodes <n>        worst-case node count N_WP (default 128)\n"
      "  --f <list>            comma-separated over-provisioning factors\n"
      "                        (default 1.0,1.2,1.4,1.6,1.8,2.0)\n"
      "  --seed <s>            trace seed (default 1)\n"
      "  --max-job-nodes <n>   largest job size (default 32)\n"
      "  --users <n>           submitting-user population (default 100)\n"
      "  --span-days <d>       arrival span; 0 = auto-size from the trace so\n"
      "                        the largest-f machine sees `--load` x its\n"
      "                        full-power capacity (default 0)\n"
      "  --load <x>            target offered load for auto-sizing; > 1 keeps\n"
      "                        a standing backlog (default 1.1)\n"
      "  --max-sim-days <d>    safety horizon (default 400)\n"
      "  --aggressive          aggressive backfill (default EASY)\n"
      "  --max-head-bypass <n> starvation guard for aggressive mode (default 8)\n"
      "  --acct <path>         persist the accounting event log here\n"
      "  --out <path>          JSON audit path (default\n"
      "                        bench_results/replay_audit.json)\n"
      "  --csv <path>          CSV curve path (default\n"
      "                        bench_results/replay_jobs_per_day.csv)\n"
      "  --threads <n>         sweep fan-out (default: one per factor)\n",
      argv0);
}

std::vector<double> parse_factor_list(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string tok =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(perq::cli::parse_double_in("--f", tok, 1.0, 3.0));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double peak_rss_mb() {
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
  using perq::cli::parse_double_in;
  using perq::cli::parse_u64_in;

  perq::replay::ReplayConfig cfg;
  cfg.trace.job_count = 10000;
  cfg.trace.max_job_nodes = 32;
  cfg.trace.seed = 1;
  cfg.trace.user_count = 100;
  cfg.worst_case_nodes = 128;
  cfg.backfill_mode = perq::sched::BackfillMode::kEasy;
  cfg.max_head_bypass = 8;
  std::vector<double> factors = {1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
  double span_days = 0.0;
  double target_load = 1.1;
  std::string system_name = "mira";
  std::string out_path = "bench_results/replay_audit.json";
  std::string csv_path = "bench_results/replay_jobs_per_day.csv";
  std::size_t threads = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> std::string {
        PERQ_REQUIRE(i + 1 < argc, flag + ": missing value");
        return argv[++i];
      };
      if (flag == "--jobs") {
        cfg.trace.job_count = parse_u64_in(flag, value(), 1, 100000000);
      } else if (flag == "--system") {
        system_name = value();
        if (system_name == "mira") {
          cfg.trace.system = perq::trace::SystemModel::kMira;
        } else if (system_name == "trinity") {
          cfg.trace.system = perq::trace::SystemModel::kTrinity;
        } else if (system_name == "tardis") {
          cfg.trace.system = perq::trace::SystemModel::kTardis;
        } else {
          PERQ_REQUIRE(false, "--system: unknown system " + system_name);
        }
      } else if (flag == "--wc-nodes") {
        cfg.worst_case_nodes = parse_u64_in(flag, value(), 1, 65536);
      } else if (flag == "--f") {
        factors = parse_factor_list(value());
      } else if (flag == "--seed") {
        cfg.trace.seed = perq::cli::parse_u64(flag, value());
      } else if (flag == "--max-job-nodes") {
        cfg.trace.max_job_nodes = parse_u64_in(flag, value(), 1, 65536);
      } else if (flag == "--users") {
        cfg.trace.user_count = parse_u64_in(flag, value(), 1, 1000000);
      } else if (flag == "--span-days") {
        span_days = parse_double_in(flag, value(), 0.0, 10000.0);
      } else if (flag == "--load") {
        target_load = parse_double_in(flag, value(), 0.01, 100.0);
      } else if (flag == "--max-sim-days") {
        cfg.max_sim_s = 86400.0 * parse_double_in(flag, value(), 1.0, 100000.0);
      } else if (flag == "--aggressive") {
        cfg.backfill_mode = perq::sched::BackfillMode::kAggressive;
      } else if (flag == "--max-head-bypass") {
        cfg.max_head_bypass = parse_u64_in(flag, value(), 0, 1000000);
      } else if (flag == "--acct") {
        cfg.acct_path = value();
      } else if (flag == "--out") {
        out_path = value();
      } else if (flag == "--csv") {
        csv_path = value();
      } else if (flag == "--threads") {
        threads = parse_u64_in(flag, value(), 1, 256);
      } else if (flag == "--help" || flag == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        PERQ_REQUIRE(false, "unknown option " + flag);
      }
    }
    PERQ_REQUIRE(cfg.trace.max_job_nodes <= cfg.worst_case_nodes,
                 "--max-job-nodes: larger than the worst-case machine");
  } catch (const perq::precondition_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }

  // Auto-size the arrival span from the *actual* trace: offered load at
  // the largest-f machine = target_load x its full-power node capacity.
  // target_load > 1 keeps a standing backlog (the paper's always-full
  // queue), which makes every smaller-f machine compute-bound -- the
  // regime where the jobs/day-vs-f curve says something.
  if (span_days == 0.0) {
    double node_s = 0.0;
    for (const auto& spec : perq::trace::generate_trace(cfg.trace)) {
      node_s += static_cast<double>(spec.nodes) * spec.runtime_ref_s;
    }
    double f_max = 1.0;
    for (const double f : factors) f_max = f > f_max ? f : f_max;
    const double capacity_nodes =
        static_cast<double>(cfg.worst_case_nodes) * f_max;
    span_days = node_s / (capacity_nodes * target_load) / 86400.0;
  }
  cfg.trace.arrival_span_s = span_days * 86400.0;

  std::printf("perq_replay: %zu jobs (%s), N_WP=%zu, span %.1f days, %zu factors\n",
              cfg.trace.job_count, system_name.c_str(), cfg.worst_case_nodes,
              span_days, factors.size());

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<perq::replay::ReplayResult> results =
      perq::replay::run_replay_sweep(cfg, factors, threads);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // JSON audit: %.17g round-trips doubles exactly, so identical runs write
  // identical bytes.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"replay_audit\",\n"
               "  \"system\": \"%s\",\n"
               "  \"jobs\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"worst_case_nodes\": %zu,\n"
               "  \"arrival_span_days\": %.17g,\n"
               "  \"backfill\": \"%s\",\n"
               "  \"points\": [\n",
               system_name.c_str(), cfg.trace.job_count,
               static_cast<unsigned long long>(cfg.trace.seed),
               cfg.worst_case_nodes, span_days,
               cfg.backfill_mode == perq::sched::BackfillMode::kEasy
                   ? "easy"
                   : "aggressive");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"f\": %.17g, \"machine_nodes\": %zu, "
                 "\"jobs_submitted\": %zu, \"jobs_completed\": %zu, "
                 "\"makespan_days\": %.17g, \"jobs_per_day\": %.17g, "
                 "\"fairness_fraction\": %.17g, \"mean_wait_hours\": %.17g, "
                 "\"mean_slowdown\": %.17g, \"utilization\": %.17g, "
                 "\"total_node_hours\": %.17g, \"total_energy_mwh\": %.17g, "
                 "\"events\": %llu, \"reallocations\": %llu}%s\n",
                 r.over_provision_factor, r.machine_nodes, r.jobs_submitted,
                 r.jobs_completed, r.makespan_s / 86400.0, r.jobs_per_day,
                 r.fairness_fraction, r.mean_wait_s / 3600.0, r.mean_slowdown,
                 r.utilization, r.total_node_hours,
                 r.total_energy_j / 3.6e9,
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.reallocations),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::FILE* csv = std::fopen(csv_path.c_str(), "w");
  if (csv != nullptr) {
    std::fprintf(csv,
                 "f,machine_nodes,jobs_per_day,fairness_fraction,"
                 "mean_wait_hours,utilization\n");
    for (const auto& r : results) {
      std::fprintf(csv, "%.4f,%zu,%.6f,%.6f,%.6f,%.6f\n",
                   r.over_provision_factor, r.machine_nodes, r.jobs_per_day,
                   r.fairness_fraction, r.mean_wait_s / 3600.0,
                   r.utilization);
    }
    std::fclose(csv);
  }

  for (const auto& r : results) {
    std::printf(
        "  f=%.2f  nodes=%4zu  jobs/day=%9.1f  fairness=%.4f  wait=%6.2fh  "
        "util=%.3f  slowdown=%.3f\n",
        r.over_provision_factor, r.machine_nodes, r.jobs_per_day,
        r.fairness_fraction, r.mean_wait_s / 3600.0, r.utilization,
        r.mean_slowdown);
  }
  std::printf("wrote %s and %s\n", out_path.c_str(), csv_path.c_str());
  std::printf("wall %.1f s, peak RSS %.1f MiB\n", wall_s, peak_rss_mb());
  return 0;
}
