// System-identification walkthrough (paper Sec. 2.4.2): excite a simulated
// node running the NPB-like training suite with random power-cap switching,
// identify the 3rd-order state-space model, and validate it.
//
//   ./examples/sysid_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "core/node_model.hpp"

int main(int argc, char** argv) {
  using namespace perq;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::printf("collecting excitation data (random cap switching, one run per\n"
              "training benchmark, 600 samples each at 10 s intervals)...\n");
  const auto segments = core::collect_training_segments(seed);
  std::size_t total = 0;
  for (const auto& s : segments) total += s.u.size();
  std::printf("  %zu segments, %zu samples total\n\n", segments.size(), total);

  std::printf("identifying an ARX(3,3) model with feedthrough...\n");
  const auto model = sysid::identify_segments(segments, 3, 3);
  const auto& arx = model.arx();
  std::printf("  a  = [%+.4f %+.4f %+.4f]\n", arx.a[0], arx.a[1], arx.a[2]);
  std::printf("  b  = [%+.4f %+.4f %+.4f], b0 = %+.4f\n", arx.b[0], arx.b[1],
              arx.b[2], arx.b0);
  std::printf("  stable: %s, dc gain: %.4f (relative IPS per normalized watt)\n",
              arx.is_stable() ? "yes" : "NO", arx.dc_gain());
  std::printf("  validation fit (held-out half of each benchmark): %.1f%%\n\n",
              model.fit_percent());

  std::printf("state-space realization (observable canonical form):\n");
  const auto& ss = model.ss();
  for (std::size_t r = 0; r < ss.order(); ++r) {
    std::printf("  A[%zu] = [%+.4f %+.4f %+.4f]   B[%zu] = %+.4f\n", r, ss.A()(r, 0),
                ss.A()(r, 1), ss.A()(r, 2), r, ss.B()(r, 0));
  }
  std::printf("  C = [1 0 0], D = %+.4f\n\n", ss.D());

  std::printf("predicted steady-state output of the average training app:\n");
  std::printf("  %8s %14s\n", "cap (W)", "IPS");
  for (double cap = 90.0; cap <= 290.0; cap += 40.0) {
    std::printf("  %8.0f %14.4e\n", cap, model.steady_state(cap));
  }
  std::printf("\nThis one-time model is shared by every job; PERQ adapts a\n"
              "per-job (gain, offset) on top of it online (see power_handoff).\n");
  return 0;
}
