// perq_agent: the plant side of a perqd deployment.
//
//   ./examples/perq_agent --connect 127.0.0.1:7421 --agents 4 --hours 1
//                         [--wc-nodes 32] [--f 2.0] [--seed 11] [--interval 10]
//
// Simulates the over-provisioned machine and splits its nodes across
// --agents node agents, each publishing telemetry to a running perqd and
// actuating the returned cap plans on its own node slice. Intervals where
// no plan arrived in time fall back to holding the previous caps (counted
// and reported at the end). --wc-nodes and --f must match the perqd flags.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/engine.hpp"
#include "core/robustness.hpp"
#include "daemon/experiment.hpp"
#include "net/tcp.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --connect <host:port>  perqd address (default 127.0.0.1:7421)\n"
      "  --agents <n>           node-agent count (default 4)\n"
      "  --hours <h>            simulated duration (default 1)\n"
      "  --wc-nodes <n>         worst-case node count (default 32)\n"
      "  --f <factor>           over-provisioning factor (default 2.0)\n"
      "  --seed <s>             trace seed (default 11)\n"
      "  --interval <s>         control interval (default 10)\n"
      "  --connect-wait-s <s>   keep retrying the initial connect for this\n"
      "                         long (default 10; 0 = single attempt)\n"
      "  --failover <a,b,...>   warm-standby candidate addresses, tried in\n"
      "                         order after --failover-after held ticks\n"
      "                         (--connect is prepended if absent)\n"
      "  --failover-after <n>   held ticks before dialing the next candidate\n"
      "                         (default 3)\n"
      "  --failsafe-after <n>   held ticks before held caps decay toward the\n"
      "                         safe floor (default 0: hold forever)\n"
      "  --pace-ms <ms>         sleep per control tick (default 0: free-run;\n"
      "                         failover smoke tests use it to keep the run\n"
      "                         alive across a scripted controller kill)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perq;
  using cli::parse_double_in;
  using cli::parse_u64_in;
  std::string address = "127.0.0.1:7421";
  std::string failover;
  std::size_t failover_after = 3, failsafe_after = 0, pace_ms = 0;
  std::size_t agents = 4, wc_nodes = 32;
  double f = 2.0, hours = 1.0, interval = 10.0, connect_wait_s = 10.0;
  std::uint64_t seed = 11;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        PERQ_REQUIRE(i + 1 < argc, arg + ": missing value");
        return argv[++i];
      };
      if (arg == "--connect") address = next();
      else if (arg == "--agents") agents = parse_u64_in(arg, next(), 1, 4096);
      else if (arg == "--hours") hours = parse_double_in(arg, next(), 0.01, 1e6);
      else if (arg == "--wc-nodes") wc_nodes = parse_u64_in(arg, next(), 1, 65536);
      else if (arg == "--f") f = parse_double_in(arg, next(), 1.0, 3.0);
      else if (arg == "--seed") seed = cli::parse_u64(arg, next());
      else if (arg == "--interval") interval = parse_double_in(arg, next(), 0.1, 1e6);
      else if (arg == "--connect-wait-s") connect_wait_s = parse_double_in(arg, next(), 0.0, 3600.0);
      else if (arg == "--failover") failover = next();
      else if (arg == "--failover-after") failover_after = parse_u64_in(arg, next(), 1, 1000000);
      else if (arg == "--failsafe-after") failsafe_after = parse_u64_in(arg, next(), 0, 1000000);
      else if (arg == "--pace-ms") pace_ms = parse_u64_in(arg, next(), 0, 60000);
      else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        PERQ_REQUIRE(false, "unknown option " + arg);
      }
    }
  } catch (const precondition_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }

  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 8;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = wc_nodes;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.control_interval_s = interval;
  cfg.trace.job_count = core::recommended_job_count(cfg);

  net::TcpTransport transport;
  daemon::PlantConfig pcfg;
  pcfg.agents = agents;
  // Tolerate the agent-before-controller start order: keep dialing for the
  // configured window instead of failing on the first refused connect.
  pcfg.connect_wait_ms = static_cast<int>(connect_wait_s * 1000.0);
  pcfg.failsafe_after_ticks = failsafe_after;
  if (!failover.empty()) {
    std::vector<std::string> candidates;
    std::size_t pos = 0;
    while (pos <= failover.size()) {
      const std::size_t comma = failover.find(',', pos);
      const std::string c = failover.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!c.empty()) candidates.push_back(c);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (candidates.empty() || candidates.front() != address) {
      candidates.insert(candidates.begin(), address);
    }
    pcfg.failover_addresses = {candidates};
    pcfg.failover_after_held_ticks = failover_after;
  }
  daemon::DaemonPlant plant(cfg, transport, address, pcfg);

  std::printf("perq_agent: %zu agents over %zu nodes, driving %s via %.1f h\n",
              agents, plant.engine().cluster().size(), address.c_str(), hours);

  std::size_t held_ticks = 0, ticks = 0;
  while (!plant.done()) {
    if (!plant.step()) {
      ++held_ticks;
      // Controller away? Hold caps (already done by step) and keep
      // knocking -- through the failover candidate list when one is
      // configured, so a promoted standby picks these agents up.
      const std::size_t n =
          pcfg.failover_addresses.empty()
              ? plant.reconnect_lost(transport, address)
              : plant.reconnect_failover(transport);
      if (n > 0) {
        std::printf("  t=%6.0f s  reconnected %zu agents (candidate %zu)\n",
                    plant.engine().now_s(), n,
                    pcfg.failover_addresses.empty() ? 0
                                                    : plant.failover_cursor(0));
      }
    } else if (!pcfg.failover_addresses.empty()) {
      // A fenced agent (deposed-primary rejection) must move on even on
      // ticks where the other agents' plans still arrive.
      plant.reconnect_failover(transport);
    }
    if (pace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
    }
    ++ticks;
    if (ticks % 60 == 0) {
      std::printf("  t=%6.0f s  running %zu  held ticks %zu\n",
                  plant.engine().now_s(), plant.engine().running().size(),
                  held_ticks);
    }
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();

  const auto run = plant.finish("perq(perqd)");
  std::printf("perq_agent: %zu ticks (%zu held), %zu jobs completed, "
              "mean draw %.0f W, peak committed %.0f W\n",
              ticks, held_ticks, run.jobs_completed, run.mean_power_draw_w,
              run.peak_committed_w);
  std::printf("perq_agent: robustness: %s\n",
              core::to_string(plant.counters()).c_str());
  return held_ticks == ticks ? 1 : 0;  // never got a single plan -> error
}
