// perq_cli: command-line driver for arbitrary PERQ experiments.
//
//   ./examples/perq_cli --system trinity --f 2.0 --policy perq --hours 12
//                       --wc-nodes 32 --seed 11 --interval 10 [--easy]
//                       [--csv out.csv]
//
// Runs one experiment and prints the paper's metrics (plus Jain's fairness
// index and per-class inflation); with --csv, appends one summary row so
// sweeps can be scripted from the shell.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --system mira|trinity|tardis   workload shape (default trinity)\n"
      "  --policy fop|sjs|ljs|srn|perq  power policy (default perq)\n"
      "  --f <factor>                   over-provisioning factor (default 2.0)\n"
      "  --hours <h>                    simulated duration (default 12)\n"
      "  --wc-nodes <n>                 worst-case node count (default 32)\n"
      "  --max-job-nodes <n>            largest job size (default 8)\n"
      "  --seed <s>                     trace seed (default 11)\n"
      "  --interval <s>                 control interval (default 10)\n"
      "  --ratio <r>                    PERQ improvement ratio (default 8)\n"
      "  --easy                         EASY backfilling (default aggressive)\n"
      "  --csv <path>                   append a summary row to a CSV file\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perq;
  using cli::parse_double_in;
  using cli::parse_u64_in;
  std::string system = "trinity", policy_name = "perq", csv_out;
  double f = 2.0, hours = 12.0, interval = 10.0, ratio = 8.0;
  std::size_t wc_nodes = 32, max_job_nodes = 8;
  std::uint64_t seed = 11;
  bool easy = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        PERQ_REQUIRE(i + 1 < argc, arg + ": missing value");
        return argv[++i];
      };
      if (arg == "--system") system = next();
      else if (arg == "--policy") policy_name = next();
      else if (arg == "--f") f = parse_double_in(arg, next(), 1.0, 3.0);
      else if (arg == "--hours") hours = parse_double_in(arg, next(), 0.01, 1e6);
      else if (arg == "--wc-nodes") wc_nodes = parse_u64_in(arg, next(), 1, 65536);
      else if (arg == "--max-job-nodes") max_job_nodes = parse_u64_in(arg, next(), 1, 65536);
      else if (arg == "--seed") seed = cli::parse_u64(arg, next());
      else if (arg == "--interval") interval = parse_double_in(arg, next(), 0.1, 1e6);
      else if (arg == "--ratio") ratio = parse_double_in(arg, next(), 1.0, 1e6);
      else if (arg == "--easy") easy = true;
      else if (arg == "--csv") csv_out = next();
      else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        PERQ_REQUIRE(false, "unknown option " + arg);
      }
    }
  } catch (const precondition_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
    return 2;
  }

  core::EngineConfig cfg;
  if (system == "mira") cfg.trace.system = trace::SystemModel::kMira;
  else if (system == "tardis") cfg.trace.system = trace::SystemModel::kTardis;
  else if (system == "trinity") cfg.trace.system = trace::SystemModel::kTrinity;
  else {
    std::fprintf(stderr, "unknown system '%s'\n", system.c_str());
    return 2;
  }
  cfg.worst_case_nodes = wc_nodes;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.control_interval_s = interval;
  cfg.trace.max_job_nodes = max_job_nodes;
  cfg.trace.seed = seed;
  cfg.backfill_mode =
      easy ? sched::BackfillMode::kEasy : sched::BackfillMode::kAggressive;
  cfg.trace.job_count = core::recommended_job_count(cfg);

  // FOP at the same f is the fairness reference for every policy.
  auto fop_ref = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop_ref);

  core::RunResult run;
  metrics::DecisionTimeSummary latency;
  if (policy_name == "perq") {
    core::PerqConfig pcfg;
    pcfg.improvement_ratio = ratio;
    const auto total = static_cast<std::size_t>(f * double(wc_nodes) + 0.5);
    core::PerqPolicy perq(&core::canonical_node_model(), wc_nodes, total, pcfg);
    run = core::run_experiment(cfg, perq);
    latency = metrics::summarize_decision_times(perq.decision_seconds());
  } else {
    std::unique_ptr<policy::PowerPolicy> p;
    if (policy_name == "fop") p = policy::make_fop();
    else if (policy_name == "sjs") p = policy::make_sjs();
    else if (policy_name == "ljs") p = policy::make_ljs();
    else if (policy_name == "srn") p = policy::make_srn();
    else {
      std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
      return 2;
    }
    run = core::run_experiment(cfg, *p);
    latency = metrics::summarize_decision_times(run.decision_seconds);
  }

  const auto fair = metrics::degradation_vs_baseline(run, fop_run);
  const auto cls = metrics::inflation_by_sensitivity(run);
  const auto rel = metrics::relative_performance(run);
  const double jain = rel.empty() ? 0.0 : metrics::jain_fairness_index(rel);

  std::printf("%s on %s: f=%.2f, %zu worst-case nodes, %.1f h, interval %.0f s%s\n",
              run.policy_name.c_str(), system.c_str(), f, wc_nodes, hours, interval,
              easy ? ", EASY backfill" : "");
  std::printf("  completed jobs        : %zu (FOP reference: %zu)\n",
              run.jobs_completed, fop_run.jobs_completed);
  std::printf("  mean/max degradation  : %.1f%% / %.1f%% vs FOP\n",
              fair.mean_degradation_pct, fair.max_degradation_pct);
  std::printf("  Jain fairness index   : %.3f over relative performance\n", jain);
  std::printf("  class inflation       : low %.2f  medium %.2f  high %.2f\n",
              cls.low, cls.medium, cls.high);
  std::printf("  mean power draw       : %.0f W of %.0f W budget\n",
              run.mean_power_draw_w, static_cast<double>(wc_nodes) * 290.0);
  std::printf("  decision latency p99  : %.2f ms\n", latency.p99_s * 1e3);

  if (!csv_out.empty()) {
    CsvWriter csv(csv_out, {"policy", "system", "f", "completed",
                            "mean_deg_pct", "max_deg_pct", "jain"});
    csv.row(std::vector<std::string>{
        run.policy_name, system, format_double(f),
        std::to_string(run.jobs_completed), format_double(fair.mean_degradation_pct),
        format_double(fair.max_degradation_pct), format_double(jain)});
    std::printf("  summary written to    : %s\n", csv_out.c_str());
  }
  return 0;
}
