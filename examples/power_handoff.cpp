// Power hand-off demo (paper Fig. 12): drive the PERQ control loop by hand
// on a two-node, budget-constrained system and watch power migrate from a
// low-sensitivity application to a high-sensitivity one.
//
//   ./examples/power_handoff [low-app] [high-app]
//
// Apps default to ASPA (low sensitivity) and SimpleMOC (high sensitivity);
// any two names from Table 1 work. This example uses the *component* API
// (estimator / target generator / MPC) rather than the engine, showing how
// the pieces compose for custom control loops.
#include <cstdio>
#include <string>

#include "apps/catalog.hpp"
#include "control/estimator.hpp"
#include "control/mpc.hpp"
#include "core/node_model.hpp"
#include "sched/job.hpp"
#include "sim/node.hpp"

int main(int argc, char** argv) {
  using namespace perq;
  const std::string low_name = argc > 1 ? argv[1] : "ASPA";
  const std::string high_name = argc > 2 ? argv[2] : "SimpleMOC";
  const auto& low = apps::find_app(low_name);
  const auto& high = apps::find_app(high_name);
  const auto& model = core::canonical_node_model();
  const auto& spec = apps::node_power_spec();

  std::printf("competing for one TDP of budget on two nodes:\n");
  std::printf("  %-10s (%s sensitivity, draws %.0f%% of TDP)\n", low.name().c_str(),
              to_string(low.sensitivity()).c_str(), low.avg_power_fraction() * 100);
  std::printf("  %-10s (%s sensitivity, draws %.0f%% of TDP)\n\n", high.name().c_str(),
              to_string(high.sensitivity()).c_str(), high.avg_power_fraction() * 100);

  trace::JobSpec s1;
  s1.id = 1;
  s1.nodes = 1;
  s1.runtime_ref_s = 1e6;
  trace::JobSpec s2 = s1;
  s2.id = 2;
  sched::Job j1(s1, &low), j2(s2, &high);
  j1.start(0.0, {0});
  j2.start(0.0, {1});

  Rng rng(42);
  sim::Node n1(0, rng.split()), n2(1, rng.split());
  control::JobEstimator e1(&model, 145.0), e2(&model, 145.0);
  control::TargetGenerator targets(8.0, /*worst_case=*/1, /*total=*/2);
  control::MpcController mpc;

  double cap1 = 145.0, cap2 = 145.0;
  const double budget = spec.tdp;  // both nodes share one TDP
  std::printf("%6s %8s %8s %8s %8s %12s %12s\n", "t(s)", "cap1(W)", "cap2(W)",
              "perf1", "perf2", "ips1", "ips2");
  for (int k = 0; k <= 60; ++k) {
    n1.set_cap(cap1);
    n2.set_cap(cap2);
    const auto m1 = n1.step_busy(10.0, low, j1.current_phase());
    const auto m2 = n2.step_busy(10.0, high, j2.current_phase());
    e1.update(cap1, m1.ips);
    e2.update(cap2, m2.ips);
    j1.record_interval(10.0, n1.perf_fraction(low, j1.current_phase()), m1.ips, cap1);
    j2.record_interval(10.0, n2.perf_fraction(high, j2.current_phase()), m2.ips, cap2);

    std::vector<control::ControlledJob> cj{{&j1, &e1}, {&j2, &e2}};
    const auto t = targets.generate(cj);
    const auto d = mpc.decide(cj, t, {cap1, cap2}, budget);
    cap1 = d.caps_w[0];
    cap2 = d.caps_w[1];

    if (k % 5 == 0) {
      std::printf("%6d %8.0f %8.0f %7.0f%% %7.0f%% %12.3e %12.3e\n", k * 10, cap1,
                  cap2, n1.perf_fraction(low, j1.current_phase()) * 100,
                  n2.perf_fraction(high, j2.current_phase()) * 100, m1.ips, m2.ips);
    }
  }
  std::printf("\nPERQ discovered the sensitivity asymmetry from feedback alone:\n");
  std::printf("  %s holds %.0f W, %s holds %.0f W of the %.0f W budget.\n",
              low.name().c_str(), cap1, high.name().c_str(), cap2, budget);
  return 0;
}
