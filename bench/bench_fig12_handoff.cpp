// Fig. 12: automatic power hand-off between applications of different
// power-cap sensitivity. A low-sensitivity app (ASPA) starts alone on a
// two-node budget-constrained system; a high-sensitivity app (SimpleMOC)
// arrives at t = 50 intervals-worth of seconds; PERQ discovers the asymmetry
// and migrates power; the first app finishes and releases its power.
#include "common.hpp"

#include "apps/catalog.hpp"
#include "control/estimator.hpp"
#include "control/mpc.hpp"
#include "sched/job.hpp"
#include "sim/node.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 12",
                "Power hand-off between a low- and a high-sensitivity application");

  const auto& model = core::canonical_node_model();
  const auto& spec = apps::node_power_spec();
  const auto& low = apps::find_app("ASPA");
  const auto& high = apps::find_app("SimpleMOC");

  trace::JobSpec s1;
  s1.id = 1;
  s1.nodes = 1;
  s1.runtime_ref_s = 200.0;  // finishes mid-experiment (paper: ~225 s mark)
  trace::JobSpec s2 = s1;
  s2.id = 2;
  s2.runtime_ref_s = 1e6;
  sched::Job j1(s1, &low), j2(s2, &high);

  Rng rng(5);
  sim::Node n1(0, rng.split()), n2(1, rng.split());
  control::TargetGenerator tg(8.0, 1, 2);  // one worst-case node's budget, two nodes
  control::MpcController mpc;
  const double budget = spec.tdp + spec.idle;  // 1 * TDP total system budget
  const double dt = 10.0;

  control::JobEstimator e1(&model, spec.cap_min, {});
  control::JobEstimator e2(&model, spec.cap_min, {});
  double cap1 = spec.tdp, cap2 = spec.cap_min;
  bool j1_running = false, j2_running = false;

  CsvWriter csv(bench::csv_path("fig12_handoff"),
                {"t_s", "cap_low_pct", "cap_high_pct", "perf_low_pct",
                 "perf_high_pct"});
  std::printf("%8s %10s %10s %10s %10s\n", "t(s)", "capLow%", "capHigh%",
              "perfLow%", "perfHigh%");
  for (int k = 0; k < 40; ++k) {
    const double t = k * dt;
    if (j1.state() == sched::JobState::kQueued) {
      j1.start(t, {0});
      j1_running = true;
    }
    if (!j2_running && t >= 50.0) {  // second job arrives ~50 s in (paper)
      j2.start(t, {1});
      j2_running = true;
    }

    // Controller decision over the currently running jobs.
    std::vector<control::ControlledJob> cj;
    std::vector<double> prev;
    if (j1_running) {
      cj.push_back({&j1, &e1});
      prev.push_back(cap1);
    }
    if (j2_running) {
      cj.push_back({&j2, &e2});
      prev.push_back(cap2);
    }
    if (!cj.empty()) {
      const double idle_reserve = static_cast<double>(2 - cj.size()) * spec.idle;
      const auto targets = tg.generate(cj);
      const auto d = mpc.decide(cj, targets, prev, budget - idle_reserve);
      std::size_t i = 0;
      if (j1_running) cap1 = d.caps_w[i++];
      if (j2_running) cap2 = d.caps_w[i++];
    }

    // Physical step.
    double perf1 = 0.0, perf2 = 0.0;
    if (j1_running) {
      n1.set_cap(cap1);
      const auto m1 = n1.step_busy(dt, low, j1.current_phase());
      e1.update(cap1, m1.ips);
      perf1 = n1.perf_fraction(low, j1.current_phase());
      j1.record_interval(dt, perf1, m1.ips, cap1);
      if (j1.work_complete()) {
        j1.finish(t + dt);
        j1_running = false;
        cap1 = spec.cap_min;  // idle floor: caps cannot drop to zero
      }
    }
    if (j2_running) {
      n2.set_cap(cap2);
      const auto m2 = n2.step_busy(dt, high, j2.current_phase());
      e2.update(cap2, m2.ips);
      perf2 = n2.perf_fraction(high, j2.current_phase());
      j2.record_interval(dt, perf2, m2.ips, cap2);
    }

    std::printf("%8.0f %9.0f%% %9.0f%% %9.0f%% %9.0f%%\n", t,
                cap1 / spec.tdp * 100.0, cap2 / spec.tdp * 100.0, perf1 * 100.0,
                perf2 * 100.0);
    csv.row(std::vector<double>{t, cap1 / spec.tdp * 100.0, cap2 / spec.tdp * 100.0,
                                perf1 * 100.0, perf2 * 100.0});
  }
  std::printf("\nExpected shape (paper): power migrates from the low- to the "
              "high-sensitivity app after its arrival while the low-sensitivity "
              "app keeps near-peak performance; when the first job ends, its "
              "node keeps only the minimum cap.\n");
  std::printf("CSV written to %s\n", bench::csv_path("fig12_handoff").c_str());
  return 0;
}
