// Fig. 10: PERQ's insensitivity to its control parameters --
//  (a) system-throughput-improvement ratio (1..32),
//  (b) system-throughput weight (1..32),
//  (c) Delta-P weight (1..100).
// Throughput is reported relative to the sweep's first bar, degradation
// versus FOP at the same f (as in the paper).
#include "common.hpp"

namespace {

struct SweepPoint {
  double value = 0.0;
  std::size_t completed = 0;
  double mean_deg = 0.0;
};

std::vector<SweepPoint> sweep(const std::vector<double>& values,
                              const std::function<perq::core::PerqConfig(double)>& cfg_of) {
  using namespace perq;
  std::vector<SweepPoint> out;
  auto cfg = bench::trinity_config(2.0, 12.0);
  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);
  for (double v : values) {
    auto perq = bench::make_perq(cfg, cfg_of(v));
    const auto run = core::run_experiment(cfg, perq);
    out.push_back({v, run.jobs_completed,
                   metrics::degradation_vs_baseline(run, fop_run).mean_degradation_pct});
    std::printf("  value %g done\n", v);
  }
  return out;
}

void report(const char* name, const char* csv_name,
            const std::vector<SweepPoint>& points) {
  using namespace perq;
  CsvWriter csv(bench::csv_path(csv_name),
                {"value", "completed", "throughput_vs_first_pct",
                 "mean_degradation_pct"});
  std::printf("\n%s\n%10s %10s %18s %12s\n", name, "value", "completed",
              "vs first (%)", "mean-deg%");
  for (const auto& p : points) {
    const double rel =
        metrics::throughput_improvement_pct(p.completed, points.front().completed);
    std::printf("%10g %10zu %18.1f %12.1f\n", p.value, p.completed, rel, p.mean_deg);
    csv.row(std::vector<double>{p.value, static_cast<double>(p.completed), rel,
                                p.mean_deg});
  }
}

}  // namespace

int main() {
  using namespace perq;
  bench::banner("Fig. 10",
                "PERQ parameter sensitivity: improvement ratio / system weight / "
                "Delta-P weight (Trinity, f = 2.0)");

  std::printf("\n(a) system-throughput-improvement ratio sweep\n");
  const auto a = sweep({1, 2, 4, 8, 16, 32}, [](double v) {
    core::PerqConfig c;
    c.improvement_ratio = v;
    return c;
  });
  report("(a) improvement ratio", "fig10a_improvement_ratio", a);

  std::printf("\n(b) system-throughput weight sweep\n");
  const auto b = sweep({1, 2, 4, 8, 16, 32}, [](double v) {
    core::PerqConfig c;
    c.mpc.weight_sys = v;
    return c;
  });
  report("(b) system throughput weight", "fig10b_sys_weight", b);

  std::printf("\n(c) Delta-P weight sweep\n");
  const auto c = sweep({1, 5, 10, 25, 50, 100}, [](double v) {
    core::PerqConfig pc;
    pc.mpc.weight_dp = v;
    return pc;
  });
  report("(c) Delta-P weight", "fig10c_dp_weight", c);

  std::printf("\nExpected shape (paper): throughput and fairness move only a few "
              "percent across each sweep; the ratio saturates at >= 4.\n");
  return 0;
}
