// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure of the paper: it runs
// the relevant experiment(s), prints the series to stdout in a readable
// table, and writes a CSV next to the binary (bench_results/<name>.csv) for
// plotting. Absolute numbers differ from the paper (our substrate is a
// simulator, not the authors' testbed); the shapes are the reproduction
// target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/node_model.hpp"
#include "core/perq_policy.hpp"
#include "metrics/metrics.hpp"
#include "policy/policy.hpp"
#include "util/csv.hpp"

namespace perq::bench {

/// Prints a header banner for a bench binary.
void banner(const std::string& figure, const std::string& description);

/// Creates bench_results/ (if needed) and returns the CSV path for `name`.
std::string csv_path(const std::string& name);

/// Standard experiment sizing for the simulated systems.
core::EngineConfig mira_config(double f, double hours = 24.0, std::uint64_t seed = 11);
core::EngineConfig trinity_config(double f, double hours = 24.0,
                                  std::uint64_t seed = 11);
core::EngineConfig tardis_config(double f, std::uint64_t seed = 11);

/// Builds a PERQ policy sized for `cfg` against the canonical node model.
core::PerqPolicy make_perq(const core::EngineConfig& cfg,
                           const core::PerqConfig& pcfg = {});

/// One policy's evaluation at one over-provisioning factor.
struct PolicyPoint {
  std::string policy;
  double f = 1.0;
  std::size_t completed = 0;
  double throughput_improvement_pct = 0.0;  ///< vs the f=1 FOP baseline
  double mean_degradation_pct = 0.0;        ///< vs FOP at the same f
  double max_degradation_pct = 0.0;
};

/// Runs the full Fig. 6/7-style sweep: policies {FOP, SJS, SRN, PERQ} at
/// each f, fairness measured against FOP at the same f, throughput against
/// the f = 1 baseline. `make_config` maps f to an EngineConfig.
std::vector<PolicyPoint> run_policy_sweep(
    const std::vector<double>& factors,
    const std::function<core::EngineConfig(double)>& make_config);

/// Prints a policy sweep as a table and writes it to CSV.
void report_policy_sweep(const std::string& csv_name,
                         const std::vector<PolicyPoint>& points);

}  // namespace perq::bench
