// Ablation (paper Sec. 3, text): configuring PERQ with orders-of-magnitude
// more weight on the system-throughput target turns it into a pure
// throughput optimizer -- a few percent more throughput at the cost of much
// larger worst-case degradation. This bench also ablates the probing dither
// and the minimum-gain floor, the two adaptive-control safeguards this
// implementation adds (DESIGN.md Sec. 5).
#include "common.hpp"

int main() {
  using namespace perq;
  bench::banner("Ablation",
                "PERQ variants: throughput-only weighting, no dither, no gain floor "
                "(Trinity, f = 2.0)");

  auto cfg = bench::trinity_config(2.0, 12.0);
  auto fop = policy::make_fop();
  const auto fop_run = core::run_experiment(cfg, *fop);

  struct Variant {
    const char* name;
    core::PerqConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"default", {}});
  {
    core::PerqConfig c;
    c.mpc.weight_sys = 100.0;
    c.mpc.weight_job = 0.1;
    variants.push_back({"throughput-only", c});
  }
  {
    core::PerqConfig c;
    c.dither_w = 0.0;
    variants.push_back({"no-dither", c});
  }
  {
    core::PerqConfig c;
    c.estimator.min_gain_fraction = 0.0;
    variants.push_back({"no-gain-floor", c});
  }

  CsvWriter csv(bench::csv_path("ablation_weights"),
                {"variant", "completed", "throughput_vs_fop_pct",
                 "mean_degradation_pct", "max_degradation_pct"});
  std::printf("%-16s %10s %16s %12s %12s\n", "variant", "completed", "vs FOP (%)",
              "mean-deg%", "max-deg%");
  std::printf("%-16s %10zu %16s %12s %12s\n", "FOP", fop_run.jobs_completed, "0.0",
              "0.0", "0.0");
  for (const auto& v : variants) {
    auto perq = bench::make_perq(cfg, v.config);
    const auto run = core::run_experiment(cfg, perq);
    const auto fair = metrics::degradation_vs_baseline(run, fop_run);
    const double vs_fop =
        metrics::throughput_improvement_pct(run.jobs_completed, fop_run.jobs_completed);
    std::printf("%-16s %10zu %16.1f %12.1f %12.1f\n", v.name, run.jobs_completed,
                vs_fop, fair.mean_degradation_pct, fair.max_degradation_pct);
    csv.row(std::vector<std::string>{
        v.name, std::to_string(run.jobs_completed), format_double(vs_fop),
        format_double(fair.mean_degradation_pct),
        format_double(fair.max_degradation_pct)});
  }
  std::printf("\nExpected shape (paper/DESIGN.md): throughput-only gains a few "
              "percent of throughput but its max degradation grows several-fold; "
              "removing dither collapses PERQ toward FOP (no sensitivity "
              "information); removing the gain floor risks parking outliers.\n");
  std::printf("CSV written to %s\n", bench::csv_path("ablation_weights").c_str());
  return 0;
}
