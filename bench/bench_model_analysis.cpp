// Model-analysis appendix (paper Sec. 2.4.2): verifies the claims made about
// the identified node model -- that it is a stable, *controllable* (and
// observable) 3rd-order state-space model -- and justifies the fixed choice
// of order 3 with a validation/AIC sweep over orders 1-6.
#include "common.hpp"

#include "linalg/eigen.hpp"
#include "sysid/analysis.hpp"

int main() {
  using namespace perq;
  bench::banner("Model analysis (Sec. 2.4.2)",
                "Poles, controllability/observability, and model-order selection");

  const auto& model = core::canonical_node_model();
  const auto& ss = model.ss();

  std::printf("identified ARX(3,3)+feedthrough, validation fit %.1f%%\n\n",
              model.fit_percent());
  std::printf("poles (must lie inside the unit circle):\n");
  for (const auto& p : sysid::poles(ss)) {
    std::printf("  %+.4f %+.4fi   |z| = %.4f\n", p.real(), p.imag(), std::abs(p));
  }
  std::printf("stability margin 1 - rho(A): %.4f\n\n", sysid::stability_margin(ss));

  std::printf("controllable: %s   observable: %s\n",
              sysid::is_controllable(ss) ? "yes" : "NO",
              sysid::is_observable(ss) ? "yes" : "NO");
  const auto wc = sysid::controllability_gramian(ss);
  const auto wo = sysid::observability_gramian(ss);
  const auto wc_eig = linalg::symmetric_eigen(wc).values;
  const auto wo_eig = linalg::symmetric_eigen(wo).values;
  std::printf("controllability Gramian eigenvalues: %.2e .. %.2e\n",
              wc_eig.front(), wc_eig.back());
  std::printf("observability  Gramian eigenvalues: %.2e .. %.2e\n\n",
              wo_eig.front(), wo_eig.back());

  std::printf("model-order sweep (fresh training campaign, held-out fit):\n");
  std::printf("%8s %10s %12s %8s\n", "order", "fit (%)", "AIC", "stable");
  CsvWriter csv(bench::csv_path("model_analysis"),
                {"order", "fit_percent", "aic", "stable"});
  const auto segments = core::collect_training_segments(21, 600, 10.0);
  const auto candidates = sysid::sweep_model_order(segments, 6);
  for (const auto& c : candidates) {
    std::printf("%8zu %10.1f %12.1f %8s\n", c.order, c.fit_percent, c.aic,
                c.stable ? "yes" : "no");
    csv.row(std::vector<std::string>{std::to_string(c.order),
                                     format_double(c.fit_percent),
                                     format_double(c.aic),
                                     c.stable ? "yes" : "no"});
  }
  std::printf("\nAIC-selected order: %zu. The paper fixes order 3; on our "
              "simulated node the cap-actuation dynamics are nearly first-order "
              "at 10 s sampling, so the fit plateaus immediately and AIC favors "
              "the smallest order -- order 3 costs nothing and matches the "
              "paper's configuration.\n",
              sysid::select_model_order(candidates));
  std::printf("CSV written to %s\n", bench::csv_path("model_analysis").c_str());
  return 0;
}
