// Fig. 13: controller decision-time CDF. Measures the wall-clock time of one
// full PERQ decision (target generation + MPC QP solve) for job populations
// sized like the simulated Mira / Trinity runs, across MPC horizons 2-5.
#include "common.hpp"

#include <algorithm>

#include "apps/catalog.hpp"
#include "control/estimator.hpp"
#include "control/mpc.hpp"
#include "sched/job.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

/// Builds a synthetic population of running jobs with warmed-up estimators.
struct Population {
  std::vector<std::unique_ptr<perq::sched::Job>> jobs;
  std::vector<std::unique_ptr<perq::control::JobEstimator>> estimators;
  std::vector<perq::control::ControlledJob> controlled;
  std::vector<double> prev_caps;
  double budget = 0.0;
};

Population make_population(std::size_t n_jobs, perq::Rng& rng) {
  using namespace perq;
  Population p;
  std::size_t node = 0;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    trace::JobSpec s;
    s.id = static_cast<int>(i);
    s.nodes = static_cast<std::size_t>(rng.uniform_int(1, 8));
    s.runtime_ref_s = rng.uniform(600.0, 7200.0);
    s.app_index = static_cast<std::size_t>(rng.uniform_int(0, 9));
    p.jobs.push_back(std::make_unique<sched::Job>(
        s, &apps::ecp_catalog()[s.app_index]));
    std::vector<std::size_t> ids(s.nodes);
    for (auto& id : ids) id = node++;
    p.jobs.back()->start(0.0, std::move(ids));
    p.estimators.push_back(std::make_unique<control::JobEstimator>(
        &core::canonical_node_model(), 145.0));
    // Warm the estimator with a few observations.
    for (int k = 0; k < 8; ++k) {
      p.estimators.back()->update(rng.uniform(90.0, 290.0), rng.uniform(1e9, 5e9));
    }
    const double cap = rng.uniform(100.0, 250.0);
    p.jobs.back()->record_interval(10.0, 0.9, 2e9 * double(s.nodes), cap);
    p.prev_caps.push_back(cap);
    p.controlled.push_back({p.jobs.back().get(), p.estimators.back().get()});
  }
  p.budget = static_cast<double>(node) * 150.0;
  return p;
}

}  // namespace

int main() {
  using namespace perq;
  bench::banner("Fig. 13",
                "Controller decision-time CDF vs MPC horizon (wall clock)");

  CsvWriter csv(bench::csv_path("fig13_overhead"),
                {"system", "jobs", "horizon", "p50_ms", "p80_ms", "p99_ms",
                 "max_ms"});
  struct Scenario {
    const char* name;
    std::size_t jobs;
  };
  // Concurrent-job counts representative of the scaled Mira / Trinity runs.
  for (const Scenario sc : {Scenario{"mira", 24}, Scenario{"trinity", 48}}) {
    std::printf("\n%s-like population (%zu concurrent jobs):\n", sc.name, sc.jobs);
    std::printf("%8s %10s %10s %10s %10s\n", "horizon", "p50(ms)", "p80(ms)",
                "p99(ms)", "max(ms)");
    for (std::size_t horizon : {2u, 3u, 4u, 5u}) {
      Rng rng(1234 + horizon);
      auto pop = make_population(sc.jobs, rng);
      control::MpcConfig mcfg;
      mcfg.horizon = horizon;
      control::MpcController mpc(mcfg);
      control::TargetGenerator tg(8.0, 64, 128);
      std::vector<double> times;
      for (int rep = 0; rep < 120; ++rep) {
        Stopwatch timer;
        const auto targets = tg.generate(pop.controlled);
        const auto d = mpc.decide(pop.controlled, targets, pop.prev_caps, pop.budget);
        times.push_back(timer.seconds());
        pop.prev_caps = d.caps_w;
        // Perturb measurements so successive solves differ.
        for (std::size_t i = 0; i < pop.jobs.size(); ++i) {
          pop.jobs[i]->record_interval(
              10.0, 0.9, rng.uniform(1e9, 5e9) * double(pop.jobs[i]->spec().nodes),
              d.caps_w[i]);
          pop.estimators[i]->update(d.caps_w[i],
                                    pop.jobs[i]->last_job_ips() /
                                        double(pop.jobs[i]->spec().nodes));
        }
      }
      const auto s = metrics::summarize_decision_times(times);
      std::printf("%8zu %10.2f %10.2f %10.2f %10.2f\n", horizon, s.p50_s * 1e3,
                  s.p80_s * 1e3, s.p99_s * 1e3, s.max_s * 1e3);
      csv.row(std::vector<std::string>{
          sc.name, std::to_string(sc.jobs), std::to_string(horizon),
          format_double(s.p50_s * 1e3), format_double(s.p80_s * 1e3),
          format_double(s.p99_s * 1e3), format_double(s.max_s * 1e3)});
    }
  }
  std::printf("\nExpected shape (paper): >80%% of decisions complete within "
              "0.5 s; the cost grows with the horizon but stays sub-second.\n");
  std::printf("CSV written to %s\n", bench::csv_path("fig13_overhead").c_str());
  return 0;
}
