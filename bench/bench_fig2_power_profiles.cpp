// Fig. 2: power-consumption profiles of HPCCG (ramp), miniMD (sawtooth), and
// RSBench (two-level) over their runtimes, measured on a simulated node at
// full power.
#include "common.hpp"

#include "apps/catalog.hpp"
#include "sim/node.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 2",
                "Power profiles over runtime for HPCCG / miniMD / RSBench");

  CsvWriter csv(bench::csv_path("fig2_power_profiles"),
                {"app", "pct_of_runtime", "power_w"});
  Rng seeder(3);
  for (const char* name : {"HPCCG", "miniMD", "RSBench"}) {
    const auto& app = apps::find_app(name);
    sim::Node node(0, seeder.split());
    node.set_cap(apps::node_power_spec().tdp);
    double cycle = 0.0;
    for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
      cycle += app.phase(ph).duration_s;
    }
    const double runtime = 2.0 * cycle;  // two cycles mirror the figure span
    std::printf("\n%s (one row per 5%% of runtime):\n%10s %10s\n", name,
                "% runtime", "power (W)");
    for (int pct = 0; pct <= 100; pct += 5) {
      const double t = runtime * pct / 100.0;
      const auto s = node.step_busy(10.0, app, app.phase_at(t));
      std::printf("%9d%% %10.1f\n", pct, s.power_w);
      csv.row(std::vector<std::string>{name, std::to_string(pct),
                                       format_double(s.power_w)});
    }
  }
  std::printf("\nCSV written to %s\n",
              bench::csv_path("fig2_power_profiles").c_str());
  return 0;
}
