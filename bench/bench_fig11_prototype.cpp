// Fig. 11: prototype-cluster evaluation. The paper deploys PERQ on the
// 16-node Tardis cluster; we emulate it with a fixed 16-node simulated
// cluster whose power budget shrinks as f grows (worst_case_nodes = 16/f).
// The throughput baseline at each f is the *worst-case-provisioned* machine
// with the same budget: 16/f nodes all at TDP.
#include "common.hpp"

#include <algorithm>
#include <map>

int main() {
  using namespace perq;
  bench::banner("Fig. 11",
                "16-node prototype-style sweep: throughput and fairness vs f");

  CsvWriter csv(bench::csv_path("fig11_prototype"),
                {"policy", "f", "completed", "throughput_improvement_pct",
                 "mean_degradation_pct", "max_degradation_pct"});
  std::printf("%-6s %5s %10s %14s %12s %12s\n", "policy", "f", "completed",
              "throughput+%", "mean-deg%", "max-deg%");
  // The prototype is small (16 nodes), so single runs are noisy: every
  // point is averaged over three trace seeds (the paper likewise repeats
  // its prototype runs "multiple times").
  const std::vector<std::uint64_t> seeds{11, 12, 13};
  for (double f : {1.2, 1.4, 1.6, 1.8, 2.0}) {
    struct Acc {
      double completed = 0, improv = 0, mean_deg = 0, max_deg = 0;
    };
    std::map<std::string, Acc> acc;
    double f_eff = f;
    for (std::uint64_t seed : seeds) {
      const auto cfg = bench::tardis_config(f, seed);
      f_eff = cfg.over_provision_factor;
      // Baseline: a machine with only the worst-case node count, same budget.
      core::EngineConfig base_cfg = cfg;
      base_cfg.over_provision_factor = 1.0;
      auto fop_base = policy::make_fop();
      const auto base = core::run_experiment(base_cfg, *fop_base);

      auto fop = policy::make_fop();
      const auto fop_run = core::run_experiment(cfg, *fop);
      const auto add = [&](const core::RunResult& run) {
        const auto fair = metrics::degradation_vs_baseline(run, fop_run);
        auto& a = acc[run.policy_name];
        a.completed += static_cast<double>(run.jobs_completed);
        a.improv += metrics::throughput_improvement_pct(run.jobs_completed,
                                                        base.jobs_completed);
        a.mean_deg += fair.mean_degradation_pct;
        a.max_deg = std::max(a.max_deg, fair.max_degradation_pct);
      };
      add(fop_run);
      auto sjs = policy::make_sjs();
      add(core::run_experiment(cfg, *sjs));
      auto srn = policy::make_srn();
      add(core::run_experiment(cfg, *srn));
      auto perq = bench::make_perq(cfg);
      add(core::run_experiment(cfg, perq));
    }
    const double n = static_cast<double>(seeds.size());
    for (const char* name : {"FOP", "SJS", "SRN", "PERQ"}) {
      const auto& a = acc[name];
      std::printf("%-6s %5.2f %10.0f %14.1f %12.1f %12.1f\n", name, f_eff,
                  a.completed / n, a.improv / n, a.mean_deg / n, a.max_deg);
      csv.row(std::vector<std::string>{
          name, format_double(f_eff),
          format_double(a.completed / n), format_double(a.improv / n),
          format_double(a.mean_deg / n), format_double(a.max_deg)});
    }
  }
  std::printf("\nExpected shape (paper): same ordering as the simulations at "
              "smaller scale -- PERQ beats FOP by up to ~25%% with mean "
              "degradation < 10%%; SRN's degradation is about double PERQ's.\n");
  std::printf("CSV written to %s\n", bench::csv_path("fig11_prototype").c_str());
  return 0;
}
