// Table 1: average per-node power consumption (% of TDP) of the ten ECP
// proxy applications, measured by running each app uncapped on a simulated
// node over several full phase cycles.
#include "common.hpp"

#include "apps/catalog.hpp"
#include "sim/node.hpp"

int main() {
  using namespace perq;
  bench::banner("Table 1",
                "Average per-node power (% of TDP) of the ECP proxy apps, "
                "measured uncapped on a simulated node");

  // Paper values for comparison.
  const std::pair<const char*, double> paper[] = {
      {"ASPA", 27},    {"CoHMM", 27},     {"CoMD", 48},   {"HPCCG", 57},
      {"RSBench", 39}, {"SimpleMOC", 69}, {"SWFFT", 28},  {"XSBench", 43},
      {"miniFE", 61},  {"miniMD", 65},
  };

  CsvWriter csv(bench::csv_path("table1_app_power"),
                {"app", "sensitivity", "measured_pct_tdp", "paper_pct_tdp"});
  std::printf("%-10s %-8s %14s %12s\n", "app", "class", "measured %TDP",
              "paper %TDP");
  Rng seeder(1);
  for (const auto& [name, paper_pct] : paper) {
    const auto& app = apps::find_app(name);
    sim::Node node(0, seeder.split());
    node.set_cap(apps::node_power_spec().tdp);
    double energy = 0.0;
    double time = 0.0;
    const double dt = 10.0;
    // Three full phase cycles for a stable average.
    double cycle = 0.0;
    for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
      cycle += app.phase(ph).duration_s;
    }
    while (time < 3.0 * cycle) {
      energy += node.step_busy(dt, app, app.phase_at(time)).power_w * dt;
      time += dt;
    }
    const double measured_pct =
        energy / time / apps::node_power_spec().tdp * 100.0;
    std::printf("%-10s %-8s %14.1f %12.0f\n", name,
                to_string(app.sensitivity()).c_str(), measured_pct, paper_pct);
    csv.row(std::vector<std::string>{name, to_string(app.sensitivity()),
                                     format_double(measured_pct),
                                     format_double(paper_pct)});
  }
  std::printf("\nCSV written to %s\n", bench::csv_path("table1_app_power").c_str());
  return 0;
}
