// Fig. 6: Mira-parameter-driven sweep -- system throughput improvement over
// the worst-case-provisioned baseline, plus mean and maximum performance
// degradation versus FOP, for FOP / SJS / SRN / PERQ at f = 1.2 .. 2.0.
#include "common.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 6",
                "Mira sweep: throughput and fairness vs over-provisioning factor");
  const auto points = bench::run_policy_sweep(
      {1.2, 1.4, 1.6, 1.8, 2.0}, [](double f) { return bench::mira_config(f); });
  bench::report_policy_sweep("fig6_mira", points);
  std::printf("\nExpected shape (paper): PERQ's throughput dominates FOP and SRN "
              "while its mean degradation stays below ~8%%; SJS/SRN show 2-3x "
              "worse degradation.\n");
  return 0;
}
