// Fig. 8: per-job target tracking under PERQ -- power-cap, measured job IPS,
// and the job-level fairness target over each traced job's execution, for
// four example jobs of diverse size/application on the Trinity workload.
#include "common.hpp"

#include <algorithm>
#include <map>

#include "apps/catalog.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 8",
                "PERQ job-level target tracking (cap / measured IPS / target)");

  auto cfg = bench::trinity_config(2.0, 8.0);
  // Trace a spread of job ids; the first few dozen jobs start immediately
  // and cover diverse applications and sizes.
  for (int id = 0; id < 48; ++id) cfg.traced_jobs.push_back(id);
  auto perq = bench::make_perq(cfg);
  const auto run = core::run_experiment(cfg, perq);

  // Group the series per job and pick four with diverse app sensitivity and
  // at least 30 minutes of samples.
  std::map<int, std::vector<core::TracePoint>> series;
  for (const auto& p : run.traces) series[p.job_id].push_back(p);
  const auto specs = trace::generate_trace(cfg.trace);

  std::vector<int> picks;
  std::vector<apps::Sensitivity> seen;
  for (const auto& [id, pts] : series) {
    if (pts.size() < 180) continue;
    const auto cls = apps::ecp_catalog()[specs[static_cast<std::size_t>(id)].app_index]
                         .sensitivity();
    if (picks.size() < 4 &&
        (std::count(seen.begin(), seen.end(), cls) < 2)) {
      picks.push_back(id);
      seen.push_back(cls);
    }
  }

  CsvWriter csv(bench::csv_path("fig8_tracking"),
                {"job_id", "app", "t_min", "cap_w", "job_ips", "target_ips"});
  for (int id : picks) {
    const auto& pts = series[id];
    const auto& app = apps::ecp_catalog()[specs[static_cast<std::size_t>(id)].app_index];
    std::printf("\njob %d: app %s (%s sensitivity), %zu nodes, %zu samples\n", id,
                app.name().c_str(), to_string(app.sensitivity()).c_str(),
                specs[static_cast<std::size_t>(id)].nodes, pts.size());
    std::printf("%8s %8s %12s %12s %8s\n", "t(min)", "cap(W)", "IPS", "target",
                "IPS/tgt");
    const std::size_t stride = std::max<std::size_t>(1, pts.size() / 20);
    for (std::size_t i = 0; i < pts.size(); i += stride) {
      const auto& p = pts[i];
      std::printf("%8.1f %8.0f %12.3e %12.3e %8.2f\n",
                  (p.t_s - pts.front().t_s) / 60.0, p.cap_w, p.job_ips,
                  p.target_ips, p.target_ips > 0 ? p.job_ips / p.target_ips : 0.0);
    }
    for (const auto& p : pts) {
      csv.row(std::vector<std::string>{
          std::to_string(id), app.name(),
          format_double((p.t_s - pts.front().t_s) / 60.0), format_double(p.cap_w),
          format_double(p.job_ips), format_double(p.target_ips)});
    }
  }

  // Tracking quality summary over every traced job.
  double ratio_sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, pts] : series) {
    for (const auto& p : pts) {
      if (p.target_ips > 0.0 && p.t_s - pts.front().t_s > 120.0) {
        ratio_sum += p.job_ips / p.target_ips;
        ++n;
      }
    }
  }
  std::printf("\nmean measured/target ratio after convergence window: %.3f over "
              "%zu samples (paper: jobs converge to and often slightly exceed "
              "their targets)\n",
              ratio_sum / static_cast<double>(n), n);
  std::printf("CSV written to %s\n", bench::csv_path("fig8_tracking").c_str());
  return 0;
}
