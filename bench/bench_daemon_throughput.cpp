// perqd data-plane throughput: baseline poll-per-call loop vs the epoll
// reactor + serialize-once broadcast + pooled frame I/O, vs the sharded
// data plane (reactor shards on a worker pool + delta-encoded CapPlans).
//
// All modes run the same lockstep exchange -- na agents each send
// Telemetry + Heartbeat, the controller drains everything and broadcasts a
// cap plan, every agent reads its copy:
//
//   * baseline   rebuilds the descriptor vector for every wait_readable()
//                call, drains with receive() (a fresh vector per call), and
//                re-encodes the CapPlan once per connection via send().
//                This is the pre-reactor data plane, byte-for-byte.
//   * optimized  registers descriptors once with the epoll Reactor, drains
//                into a reused scratch vector via receive_into(), and
//                encodes the full CapPlan once into a pooled SharedFrame
//                fanned out with send_frame(). This is the PR-5 data plane.
//   * sharded    partitions the na connections round robin across S reactor
//                shards, drains them in S pool-worker tasks (one epoll set,
//                one frame pool, one scratch inbox per shard), and
//                broadcasts delta-encoded CapPlans: each tick only ~1/16 of
//                the caps move, so most broadcasts are a CapPlanDelta a
//                fraction of the full plan's size (a full plan goes out
//                every 8th tick as the resync anchor, mirroring perqd's
//                full_plan_every_ticks). Agent 0 patches every delta onto
//                its copy of the previous plan and the harness asserts the
//                chain applies cleanly, so the measured stream is a valid
//                delta protocol run, not just bytes.
//
// ticks/sec is measured over the controller phase only: from the start of
// the inbound drain to the last broadcast byte accepted by the kernel. The
// na simulated agents are load generators sharing the bench process; their
// own encode/decode cost runs outside the timed window because in a real
// deployment it runs on na other machines. The full lockstep-loop rate
// (controller + load generators serialized) is reported alongside as
// loop_ticks_per_s for transparency. Also reported: controller CPU per tick
// (CLOCK_THREAD_CPUTIME_ID; for sharded rows, measured inside each shard
// task and reported per shard), process-wide heap allocations + allocated
// bytes per tick (global operator new hook), and the delta hit rate (share
// of broadcasts that went out as deltas).
//
// Transport: rows run over loopback TCP while 2*na + slack descriptors fit
// the RLIMIT_NOFILE hard cap; beyond that (na = 16384 needs ~33k fds, more
// than this container's unraisable 20k cap) the sharded rows fall back to
// the in-process loopback transport -- the identical sharded drain and
// delta path minus the kernel socket hop -- and are tagged
// "transport": "loopback" in the JSON so TCP and loopback numbers are
// never compared as equals.
//
// Output: a stdout table plus a JSON report (default
// <repo-root>/BENCH_daemon_throughput.json; override with --output PATH).
// Usage: bench_daemon_throughput [--shards S1,S2,...] [--output PATH] [na...]
// (defaults: na 16 64 256 1024, shards 1 2).
#include <sys/resource.h>
#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/frame_pool.hpp"
#include "net/loopback.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/tcp_connection.hpp"
#include "net/transport.hpp"
#include "proto/delta.hpp"
#include "proto/message.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

// Process-wide allocation accounting: every operator new funnels through
// here so the per-tick numbers cover proto, net, and harness code alike.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace perq::bench {
namespace {

double thread_cpu_ms() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

struct ModeResult {
  double ticks_per_s = 0.0;       ///< controller-phase rate (see header)
  double loop_ticks_per_s = 0.0;  ///< full lockstep loop incl. load generators
  double ctrl_cpu_ms_per_tick = 0.0;
  double allocs_per_tick = 0.0;
  double alloc_bytes_per_tick = 0.0;
};

/// One lockstep controller + na in-process agents over loopback TCP.
class Harness {
 public:
  Harness(std::size_t na, bool optimized) : na_(na), optimized_(optimized) {
    auto listener = transport_.listen("127.0.0.1:0");
    const std::string address =
        "127.0.0.1:" + std::to_string(net::listener_port(*listener));
    for (std::size_t i = 0; i < na_; ++i) {
      auto c = transport_.connect_timeout(address, 5000);
      PERQ_REQUIRE(c != nullptr, "agent connect failed");
      agents_.push_back(std::move(c));
      // Interleave accepts so the backlog never has to hold the whole fleet.
      if ((i & 63u) == 63u) accept_pending(*listener);
    }
    while (ctrl_.size() < na_) accept_pending(*listener);
    listener->close();
    if (optimized_) {
      for (const auto& c : ctrl_) ctrl_reactor_.add(c->fd());
      for (const auto& c : agents_) agent_reactor_.add(c->fd());
    }
  }

  void tick(std::uint64_t t) {
    // Load-generation phase: every agent reports in.
    proto::Telemetry tel;
    proto::Heartbeat hb;
    for (std::size_t i = 0; i < na_; ++i) {
      tel.agent_id = static_cast<std::uint32_t>(i);
      tel.tick = t;
      tel.job_id = static_cast<std::int32_t>(i);
      tel.cap_w = 200.0;
      tel.ips = 1e9 + static_cast<double>(t);
      tel.power_w = 180.0;
      hb.agent_id = static_cast<std::uint32_t>(i);
      hb.tick = t;
      hb.budget_total_w = 1e5;
      agents_[i]->send(proto::Message{tel});
      agents_[i]->send(proto::Message{hb});
    }

    // Controller phase (the timed window): drain 2*na messages, broadcast,
    // flush until the kernel has accepted every broadcast byte. The plan
    // (~26 B/agent) fits loopback socket buffers, so the flush loop
    // completes without the load generators draining concurrently.
    const auto wall0 = std::chrono::steady_clock::now();
    const double cpu0 = thread_cpu_ms();
    std::size_t got = 0;
    while (got < 2 * na_) {
      wait_ctrl();
      if (optimized_) {
        inbox_.clear();
        for (const auto& c : ctrl_) c->receive_into(inbox_);
        got += inbox_.size();
      } else {
        for (const auto& c : ctrl_) got += c->receive().size();
      }
    }
    plan_.tick = t;
    plan_.entries.resize(na_);
    for (std::size_t i = 0; i < na_; ++i) {
      plan_.entries[i].job_id = static_cast<std::int32_t>(i);
      plan_.entries[i].cap_w = 150.0 + static_cast<double>(t % 7);
      plan_.entries[i].target_ips = 2e9;
    }
    if (optimized_) {
      auto buf = pool_.acquire();
      proto::encode_into(proto::Message{plan_}, *buf);
      const net::SharedFrame frame = net::FramePool::freeze(buf);
      for (const auto& c : ctrl_) c->send_frame(frame);
    } else {
      const proto::Message pm{plan_};
      for (const auto& c : ctrl_) c->send(pm);
    }
    std::size_t pending;
    do {
      pending = 0;
      for (const auto& c : ctrl_) {
        c->flush();
        pending += static_cast<net::TcpConnection*>(c.get())->pending_bytes();
      }
    } while (pending > 0);
    ctrl_cpu_ms_ += thread_cpu_ms() - cpu0;
    ctrl_wall_ms_ +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall0)
            .count();

    // Load-generation phase: every agent reads its plan copy.
    std::size_t plans = 0;
    while (plans < na_) {
      wait_agents();
      if (optimized_) {
        inbox_.clear();
        for (const auto& c : agents_) c->receive_into(inbox_);
        plans += inbox_.size();
      } else {
        for (const auto& c : agents_) plans += c->receive().size();
      }
    }
  }

  double take_ctrl_cpu_ms() {
    const double v = ctrl_cpu_ms_;
    ctrl_cpu_ms_ = 0.0;
    return v;
  }

  double take_ctrl_wall_ms() {
    const double v = ctrl_wall_ms_;
    ctrl_wall_ms_ = 0.0;
    return v;
  }

 private:
  void accept_pending(net::Listener& listener) {
    for (auto& c : listener.accept_new()) ctrl_.push_back(std::move(c));
  }

  void wait_ctrl() {
    if (optimized_) {
      ctrl_reactor_.wait(50);
      return;
    }
    fds_.clear();
    for (const auto& c : ctrl_) fds_.push_back(c->fd());
    net::wait_readable(fds_, 50);
  }

  void wait_agents() {
    if (optimized_) {
      agent_reactor_.wait(50);
      return;
    }
    fds_.clear();
    for (const auto& c : agents_) fds_.push_back(c->fd());
    net::wait_readable(fds_, 50);
  }

  std::size_t na_;
  bool optimized_;
  net::TcpTransport transport_;
  std::vector<std::unique_ptr<net::Connection>> ctrl_;
  std::vector<std::unique_ptr<net::Connection>> agents_;
  net::Reactor ctrl_reactor_{net::Reactor::Backend::kEpoll};
  net::Reactor agent_reactor_{net::Reactor::Backend::kEpoll};
  net::FramePool pool_;
  std::vector<proto::Message> inbox_;
  std::vector<int> fds_;
  proto::CapPlan plan_;
  double ctrl_cpu_ms_ = 0.0;
  double ctrl_wall_ms_ = 0.0;
};

ModeResult run_mode(std::size_t na, bool optimized) {
  Harness h(na, optimized);
  // Warm-up past decoder compaction thresholds and buffer/pool growth so
  // the measured window is steady state.
  const std::size_t warm = 12;
  const std::size_t measured = na >= 256 ? 30 : 4096 / na;
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < warm; ++i) h.tick(t++);
  h.take_ctrl_cpu_ms();
  h.take_ctrl_wall_ms();
  const std::uint64_t a0 = g_allocs.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  const auto w0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < measured; ++i) h.tick(t++);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
          .count();
  ModeResult r;
  const double ticks = static_cast<double>(measured);
  r.ticks_per_s = ticks / (h.take_ctrl_wall_ms() * 1e-3);
  r.loop_ticks_per_s = ticks / wall_s;
  r.ctrl_cpu_ms_per_tick = h.take_ctrl_cpu_ms() / ticks;
  r.allocs_per_tick = static_cast<double>(g_allocs.load() - a0) / ticks;
  r.alloc_bytes_per_tick =
      static_cast<double>(g_alloc_bytes.load() - b0) / ticks;
  return r;
}

struct ShardedResult {
  std::size_t shards = 0;
  bool tcp = true;
  double ticks_per_s = 0.0;
  double loop_ticks_per_s = 0.0;
  double ctrl_cpu_ms_per_tick = 0.0;            ///< summed over shards
  std::vector<double> shard_cpu_ms_per_tick;    ///< one entry per shard
  double delta_hit_rate = 0.0;  ///< deltas / broadcasts in the window
  double allocs_per_tick = 0.0;
  double alloc_bytes_per_tick = 0.0;
};

/// The sharded data plane as a lockstep harness: connections partitioned
/// round robin across S shards, drained in S worker tasks (one epoll set,
/// one frame pool, one inbox per shard), broadcasts delta-encoded with a
/// periodic full-plan anchor. The controller phase is the parallel section
/// between the two joins.
class ShardedHarness {
 public:
  /// The ControllerConfig::full_plan_every_ticks default.
  static constexpr std::uint64_t kFullPlanEvery = 16;
  static constexpr std::uint64_t kChurnPeriod = 16;  ///< 1/16 caps move/tick

  ShardedHarness(std::size_t na, std::size_t shards, bool tcp)
      : na_(na), shards_(shards), tcp_(tcp), pool_(shards) {
    if (tcp_) {
      tcp_transport_ = std::make_unique<net::TcpTransport>();
      auto listener = tcp_transport_->listen("127.0.0.1:0");
      const std::string address =
          "127.0.0.1:" + std::to_string(net::listener_port(*listener));
      for (std::size_t i = 0; i < na_; ++i) {
        auto c = tcp_transport_->connect_timeout(address, 5000);
        PERQ_REQUIRE(c != nullptr, "agent connect failed");
        agents_.push_back(std::move(c));
        if ((i & 63u) == 63u) accept_pending(*listener);
      }
      while (ctrl_.size() < na_) accept_pending(*listener);
      listener->close();
    } else {
      loop_transport_ = std::make_unique<net::LoopbackTransport>();
      auto listener = loop_transport_->listen("bench");
      for (std::size_t i = 0; i < na_; ++i) {
        agents_.push_back(loop_transport_->connect("bench"));
        PERQ_REQUIRE(agents_.back() != nullptr, "loopback connect failed");
        accept_pending(*listener);
      }
      PERQ_REQUIRE(ctrl_.size() == na_, "loopback accept mismatch");
      listener->close();
    }

    shard_members_.resize(shards_);
    for (std::size_t i = 0; i < na_; ++i) {
      shard_members_[i % shards_].push_back(i);
    }
    pools_.resize(shards_);
    inboxes_.resize(shards_);
    shard_cpu_ms_.assign(shards_, 0.0);
    if (tcp_) {
      for (std::size_t s = 0; s < shards_; ++s) {
        reactors_.push_back(
            std::make_unique<net::Reactor>(net::Reactor::Backend::kEpoll));
        for (const std::size_t i : shard_members_[s]) {
          reactors_[s]->add(ctrl_[i]->fd());
        }
      }
      for (const auto& c : agents_) agent_reactor_.add(c->fd());
    }
  }

  void tick(std::uint64_t t) {
    // Load-generation phase: every agent reports in.
    proto::Telemetry tel;
    proto::Heartbeat hb;
    for (std::size_t i = 0; i < na_; ++i) {
      tel.agent_id = static_cast<std::uint32_t>(i);
      tel.tick = t;
      tel.job_id = static_cast<std::int32_t>(i);
      tel.cap_w = 200.0;
      tel.ips = 1e9 + static_cast<double>(t);
      tel.power_w = 180.0;
      hb.agent_id = static_cast<std::uint32_t>(i);
      hb.tick = t;
      hb.budget_total_w = 1e5;
      agents_[i]->send(proto::Message{tel});
      agents_[i]->send(proto::Message{hb});
    }

    // Controller phase (timed): parallel per-shard drain, serial plan
    // build + delta decision, parallel per-shard encode + fan-out.
    const auto wall0 = std::chrono::steady_clock::now();
    {
      std::vector<std::future<void>> joins;
      for (std::size_t s = 0; s < shards_; ++s) {
        if (shard_members_[s].empty()) continue;
        joins.push_back(pool_.submit([this, s] { drain_shard(s); }));
      }
      for (auto& j : joins) j.get();
    }

    // Mutate the 1/16 churn slice of the persistent plan; everything else
    // keeps last tick's bit pattern, which is what makes the delta small.
    plan_.tick = t;
    if (plan_.entries.empty()) {
      plan_.entries.resize(na_);
      for (std::size_t i = 0; i < na_; ++i) {
        plan_.entries[i].job_id = static_cast<std::int32_t>(i);
        plan_.entries[i].cap_w = 150.0 + static_cast<double>(i % 7);
        plan_.entries[i].target_ips = 2e9;
      }
    }
    for (std::size_t i = t % kChurnPeriod; i < na_; i += kChurnPeriod) {
      plan_.entries[i].cap_w =
          150.0 + static_cast<double>((t + i) % 7) + 0.5;
    }

    bool send_delta = false;
    if (have_base_ && (t % kFullPlanEvery) != 0) {
      proto::make_delta(base_plan_, plan_, delta_);
      // Same wire-size guard the controller applies: fall back to the full
      // plan when the delta would not actually be smaller.
      send_delta = 24 + 22 * delta_.ops.size() < 12 + 21 * plan_.entries.size();
    }
    // One Message copy per tick, shared read-only by every shard task.
    msg_ = send_delta ? proto::Message{delta_} : proto::Message{plan_};
    ++broadcasts_;
    if (send_delta) ++deltas_;

    {
      std::vector<std::future<void>> joins;
      for (std::size_t s = 0; s < shards_; ++s) {
        if (shard_members_[s].empty()) continue;
        joins.push_back(pool_.submit([this, s] { broadcast_shard(s); }));
      }
      for (auto& j : joins) j.get();
    }
    base_plan_ = plan_;  // canonical image (job ids ascend by construction)
    have_base_ = true;
    ctrl_wall_ms_ +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall0)
            .count();

    // Load-generation phase: every agent reads its copy in place (nothing
    // moved or copied -- consume_received/drain hand out references, so
    // the agent side is allocation-free at steady state too). Agent 0
    // patches deltas onto its shadow of the previous plan and the harness
    // asserts the chain applies -- the measured stream must be a valid
    // protocol run, not just bytes on the floor.
    const auto on_a0 = [this](const proto::Message& m) {
      if (const auto* full = std::get_if<proto::CapPlan>(&m)) {
        a0_base_ = *full;  // copy-assign: capacity reused after warm-up
        proto::canonicalize(a0_base_);
        a0_have_base_ = true;
      } else if (const auto* d = std::get_if<proto::CapPlanDelta>(&m)) {
        PERQ_REQUIRE(
            a0_have_base_ && proto::apply_delta(a0_base_, *d, a0_patch_),
            "delta chain broke on a lossless transport");
        std::swap(a0_base_, a0_patch_);
      }
    };
    std::size_t plans = 0;
    bool is_a0 = false;
    const std::function<void(const proto::Message&)> sink =
        [&plans, &is_a0, &on_a0](const proto::Message& m) {
          ++plans;
          if (is_a0) on_a0(m);
        };
    while (plans < na_) {
      if (tcp_) agent_reactor_.wait(50);
      for (std::size_t i = 0; i < na_; ++i) {
        is_a0 = i == 0;
        if (tcp_) {
          static_cast<net::TcpConnection*>(agents_[i].get())
              ->consume_received(sink);
        } else {
          static_cast<net::LoopbackConnection*>(agents_[i].get())->drain(sink);
        }
      }
    }
  }

  double take_ctrl_wall_ms() {
    const double v = ctrl_wall_ms_;
    ctrl_wall_ms_ = 0.0;
    return v;
  }

  std::vector<double> take_shard_cpu_ms() {
    std::vector<double> v = shard_cpu_ms_;
    shard_cpu_ms_.assign(shards_, 0.0);
    return v;
  }

  void take_broadcast_counters(std::uint64_t* broadcasts, std::uint64_t* deltas) {
    *broadcasts = broadcasts_;
    *deltas = deltas_;
    broadcasts_ = 0;
    deltas_ = 0;
  }

 private:
  void accept_pending(net::Listener& listener) {
    for (auto& c : listener.accept_new()) ctrl_.push_back(std::move(c));
  }

  void drain_shard(std::size_t s) {
    const double cpu0 = thread_cpu_ms();
    const std::size_t want = 2 * shard_members_[s].size();
    std::size_t got = 0;
    auto& inbox = inboxes_[s];
    while (got < want) {
      if (tcp_) reactors_[s]->wait(50);
      inbox.clear();
      for (const std::size_t i : shard_members_[s]) {
        ctrl_[i]->receive_into(inbox);
      }
      got += inbox.size();
    }
    shard_cpu_ms_[s] += thread_cpu_ms() - cpu0;
  }

  void broadcast_shard(std::size_t s) {
    const double cpu0 = thread_cpu_ms();
    auto buf = pools_[s].acquire();
    proto::encode_into(msg_, *buf);
    const net::SharedFrame frame = net::FramePool::freeze(buf);
    if (tcp_) {
      for (const std::size_t i : shard_members_[s]) {
        ctrl_[i]->send_frame(frame);
      }
      std::size_t pending;
      do {
        pending = 0;
        for (const std::size_t i : shard_members_[s]) {
          ctrl_[i]->flush();
          pending +=
              static_cast<net::TcpConnection*>(ctrl_[i].get())->pending_bytes();
        }
      } while (pending > 0);
    } else {
      // Colocated fan-out: pay the wire round trip once per shard (encode
      // above, decode here -- the same work a socket path does once), then
      // deliver by refcount. The default send_frame would decode per
      // connection, billing the data plane O(na * plan) for work a real
      // deployment does on na separate hosts.
      auto decoded = proto::parse_frame(frame->data() + 4, frame->size() - 4);
      PERQ_REQUIRE(decoded.has_value(), "broadcast frame failed to decode");
      const auto shared =
          std::make_shared<const proto::Message>(std::move(*decoded));
      for (const std::size_t i : shard_members_[s]) {
        static_cast<net::LoopbackConnection*>(ctrl_[i].get())
            ->send_shared(shared);
      }
    }
    shard_cpu_ms_[s] += thread_cpu_ms() - cpu0;
  }

  std::size_t na_;
  std::size_t shards_;
  bool tcp_;
  ThreadPool pool_;  ///< S workers: one per shard task
  std::unique_ptr<net::TcpTransport> tcp_transport_;
  std::unique_ptr<net::LoopbackTransport> loop_transport_;
  std::vector<std::unique_ptr<net::Connection>> ctrl_;
  std::vector<std::unique_ptr<net::Connection>> agents_;
  std::vector<std::vector<std::size_t>> shard_members_;
  std::vector<std::unique_ptr<net::Reactor>> reactors_;  ///< tcp only
  net::Reactor agent_reactor_{net::Reactor::Backend::kEpoll};
  std::vector<net::FramePool> pools_;
  std::vector<std::vector<proto::Message>> inboxes_;
  proto::CapPlan plan_;       ///< persistent plan image, churned per tick
  proto::CapPlan base_plan_;  ///< previous broadcast (delta base)
  proto::CapPlanDelta delta_;
  proto::Message msg_;  ///< this tick's broadcast, shared by shard tasks
  bool have_base_ = false;
  proto::CapPlan a0_base_;  ///< agent 0's shadow of the last broadcast
  proto::CapPlan a0_patch_;
  bool a0_have_base_ = false;
  std::uint64_t broadcasts_ = 0;
  std::uint64_t deltas_ = 0;
  std::vector<double> shard_cpu_ms_;
  double ctrl_wall_ms_ = 0.0;
};

ShardedResult run_sharded(std::size_t na, std::size_t shards, bool tcp) {
  ShardedHarness h(na, shards, tcp);
  const std::size_t warm = na >= 4096 ? 4 : 12;
  const std::size_t measured =
      na >= 4096 ? 10 : (na >= 256 ? 30 : 4096 / na);
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < warm; ++i) h.tick(t++);
  h.take_ctrl_wall_ms();
  h.take_shard_cpu_ms();
  std::uint64_t b_drop, d_drop;
  h.take_broadcast_counters(&b_drop, &d_drop);
  const std::uint64_t a0 = g_allocs.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  const auto w0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < measured; ++i) h.tick(t++);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
          .count();
  ShardedResult r;
  r.shards = shards;
  r.tcp = tcp;
  const double ticks = static_cast<double>(measured);
  r.ticks_per_s = ticks / (h.take_ctrl_wall_ms() * 1e-3);
  r.loop_ticks_per_s = ticks / wall_s;
  r.shard_cpu_ms_per_tick = h.take_shard_cpu_ms();
  for (double& v : r.shard_cpu_ms_per_tick) {
    v /= ticks;
    r.ctrl_cpu_ms_per_tick += v;
  }
  std::uint64_t broadcasts = 0, deltas = 0;
  h.take_broadcast_counters(&broadcasts, &deltas);
  r.delta_hit_rate = broadcasts > 0
                         ? static_cast<double>(deltas) /
                               static_cast<double>(broadcasts)
                         : 0.0;
  r.allocs_per_tick = static_cast<double>(g_allocs.load() - a0) / ticks;
  r.alloc_bytes_per_tick =
      static_cast<double>(g_alloc_bytes.load() - b0) / ticks;
  return r;
}

struct Row {
  std::size_t na = 0;
  bool has_modes = false;  ///< baseline/optimized legs ran (fd budget fit)
  bool has_baseline = false;
  ModeResult baseline;
  ModeResult optimized;
  std::vector<ShardedResult> sharded;
};

rlim_t raise_fd_limit(rlim_t want) {
  struct rlimit rl{};
  PERQ_REQUIRE(::getrlimit(RLIMIT_NOFILE, &rl) == 0, "getrlimit failed");
  if (rl.rlim_cur < want) {
    rl.rlim_cur = rl.rlim_max == RLIM_INFINITY ? want
                                               : std::min(want, rl.rlim_max);
    ::setrlimit(RLIMIT_NOFILE, &rl);
    PERQ_REQUIRE(::getrlimit(RLIMIT_NOFILE, &rl) == 0, "getrlimit failed");
  }
  return rl.rlim_cur;
}

}  // namespace
}  // namespace perq::bench

int main(int argc, char** argv) {
  using namespace perq::bench;
  banner("Daemon data-plane throughput",
         "poll-per-call vs epoll reactor + serialize-once broadcast vs "
         "sharded reactors + delta-encoded CapPlans");

  std::vector<std::size_t> sweep;
  std::vector<std::size_t> shard_sweep;
#ifdef PERQ_REPO_ROOT
  std::string output = std::string(PERQ_REPO_ROOT) + "/BENCH_daemon_throughput.json";
#else
  std::string output = "BENCH_daemon_throughput.json";
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        PERQ_REQUIRE(end != p && v > 0, "--shards wants positive integers");
        shard_sweep.push_back(static_cast<std::size_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
      continue;
    }
    sweep.push_back(static_cast<std::size_t>(std::atol(argv[i])));
    PERQ_REQUIRE(sweep.back() > 0, "agent counts must be positive");
  }
  if (sweep.empty()) sweep = {16, 64, 256, 1024};
  if (shard_sweep.empty()) shard_sweep = {1, 2};

  std::size_t max_na = 0;
  for (std::size_t na : sweep) max_na = std::max(max_na, na);
  // 2 descriptors per agent (controller side + agent side) plus slack. The
  // hard cap may be below what the biggest row wants; those rows fall back
  // to the loopback transport (and are tagged as such in the JSON).
  const rlim_t fd_limit =
      raise_fd_limit(static_cast<rlim_t>(2 * max_na + 64));

  std::vector<Row> rows;
  std::printf(
      "    na     mode   ctrl-ticks/s   loop-ticks/s   ctrl-cpu(ms)"
      "   allocs/tick   alloc-KB/tick   delta-hit\n");
  for (std::size_t na : sweep) {
    Row row;
    row.na = na;
    const bool fits_tcp = static_cast<rlim_t>(2 * na + 64) <= fd_limit;
    // The poll baseline re-encodes O(na^2) broadcast bytes per tick; past
    // 1024 agents a single measured window takes minutes for a number
    // whose trend is already unambiguous, so the leg is capped there.
    row.has_baseline = fits_tcp && na <= 1024;
    row.has_modes = fits_tcp;
    if (row.has_baseline) row.baseline = run_mode(na, /*optimized=*/false);
    if (row.has_modes) row.optimized = run_mode(na, /*optimized=*/true);
    if (row.has_baseline) {
      const ModeResult& m = row.baseline;
      std::printf("  %5zu %9s  %12.1f   %12.1f   %12.4f   %11.1f   %13.1f   %9s\n",
                  na, "poll", m.ticks_per_s, m.loop_ticks_per_s,
                  m.ctrl_cpu_ms_per_tick, m.allocs_per_tick,
                  m.alloc_bytes_per_tick / 1024.0, "-");
    }
    if (row.has_modes) {
      const ModeResult& m = row.optimized;
      std::printf("  %5zu %9s  %12.1f   %12.1f   %12.4f   %11.1f   %13.1f   %9s\n",
                  na, "epoll", m.ticks_per_s, m.loop_ticks_per_s,
                  m.ctrl_cpu_ms_per_tick, m.allocs_per_tick,
                  m.alloc_bytes_per_tick / 1024.0, "-");
    }
    for (const std::size_t s : shard_sweep) {
      const ShardedResult sr = run_sharded(na, s, fits_tcp);
      char mode[32];
      std::snprintf(mode, sizeof mode, "S=%zu%s", s, sr.tcp ? "" : "*");
      std::printf("  %5zu %9s  %12.1f   %12.1f   %12.4f   %11.1f   %13.1f   %8.2f%%\n",
                  na, mode, sr.ticks_per_s, sr.loop_ticks_per_s,
                  sr.ctrl_cpu_ms_per_tick, sr.allocs_per_tick,
                  sr.alloc_bytes_per_tick / 1024.0, 100.0 * sr.delta_hit_rate);
      row.sharded.push_back(sr);
    }
    if (row.has_baseline) {
      std::printf("  %5zu   speedup  %11.2fx\n", na,
                  row.optimized.ticks_per_s / row.baseline.ticks_per_s);
    }
    rows.push_back(row);
  }
  std::printf("  (* = loopback transport: fd demand exceeded the hard "
              "RLIMIT_NOFILE cap of %llu)\n",
              static_cast<unsigned long long>(fd_limit));

  FILE* json = std::fopen(output.c_str(), "w");
  PERQ_REQUIRE(json != nullptr, "cannot open the --output path");
  std::fprintf(json, "{\n  \"bench\": \"daemon_throughput\",\n");
  std::fprintf(json, "  \"fd_limit\": %llu,\n",
               static_cast<unsigned long long>(fd_limit));
  std::fprintf(json, "  \"rows\": [\n");
  double last_speedup = 0.0;
  bool first = true;
  for (const Row& r : rows) {
    if (!r.has_baseline) continue;
    const double speedup = r.optimized.ticks_per_s / r.baseline.ticks_per_s;
    last_speedup = speedup;
    std::fprintf(
        json,
        "%s    {\"agents\": %zu,\n"
        "     \"baseline\": {\"ticks_per_s\": %.3f, \"loop_ticks_per_s\": %.3f,"
        " \"ctrl_cpu_ms_per_tick\": %.5f,"
        " \"allocs_per_tick\": %.1f, \"alloc_bytes_per_tick\": %.1f},\n"
        "     \"optimized\": {\"ticks_per_s\": %.3f, \"loop_ticks_per_s\": %.3f,"
        " \"ctrl_cpu_ms_per_tick\": %.5f,"
        " \"allocs_per_tick\": %.1f, \"alloc_bytes_per_tick\": %.1f},\n"
        "     \"speedup\": %.3f}",
        first ? "" : ",\n", r.na, r.baseline.ticks_per_s,
        r.baseline.loop_ticks_per_s, r.baseline.ctrl_cpu_ms_per_tick,
        r.baseline.allocs_per_tick, r.baseline.alloc_bytes_per_tick,
        r.optimized.ticks_per_s, r.optimized.loop_ticks_per_s,
        r.optimized.ctrl_cpu_ms_per_tick, r.optimized.allocs_per_tick,
        r.optimized.alloc_bytes_per_tick, speedup);
    first = false;
  }
  std::fprintf(json, "\n  ],\n  \"sharded\": [\n");
  first = true;
  for (const Row& r : rows) {
    for (const ShardedResult& s : r.sharded) {
      std::fprintf(json,
                   "%s    {\"agents\": %zu, \"shards\": %zu,"
                   " \"transport\": \"%s\",\n"
                   "     \"ticks_per_s\": %.3f, \"loop_ticks_per_s\": %.3f,"
                   " \"ctrl_cpu_ms_per_tick\": %.5f,\n"
                   "     \"shard_cpu_ms_per_tick\": [",
                   first ? "" : ",\n", r.na, s.shards,
                   s.tcp ? "tcp" : "loopback", s.ticks_per_s,
                   s.loop_ticks_per_s, s.ctrl_cpu_ms_per_tick);
      for (std::size_t i = 0; i < s.shard_cpu_ms_per_tick.size(); ++i) {
        std::fprintf(json, "%s%.5f", i == 0 ? "" : ", ",
                     s.shard_cpu_ms_per_tick[i]);
      }
      std::fprintf(json,
                   "],\n     \"delta_hit_rate\": %.4f,"
                   " \"allocs_per_tick\": %.1f,"
                   " \"alloc_bytes_per_tick\": %.1f}",
                   s.delta_hit_rate, s.allocs_per_tick, s.alloc_bytes_per_tick);
      first = false;
    }
  }
  std::fprintf(json, "\n  ],\n  \"speedup_max_na\": %.3f\n}\n", last_speedup);
  std::fclose(json);
  std::printf("\nJSON written to %s\n", output.c_str());
  return 0;
}
