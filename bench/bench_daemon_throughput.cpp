// perqd data-plane throughput: baseline poll-per-call loop vs the epoll
// reactor + serialize-once broadcast + pooled frame I/O.
//
// Both modes run the same lockstep exchange over loopback TCP -- na agents
// each send Telemetry + Heartbeat, the controller drains everything and
// broadcasts one CapPlan with na entries, every agent reads its copy:
//
//   * baseline   rebuilds the descriptor vector for every wait_readable()
//                call, drains with receive() (a fresh vector per call), and
//                re-encodes the CapPlan once per connection via send().
//                This is the pre-reactor data plane, byte-for-byte.
//   * optimized  registers descriptors once with the epoll Reactor, drains
//                into a reused scratch vector via receive_into(), and
//                encodes the CapPlan once into a pooled SharedFrame fanned
//                out with send_frame().
//
// ticks/sec is measured over the controller phase only: from the start of
// the inbound drain to the last broadcast byte accepted by the kernel. The
// na simulated agents are load generators sharing the bench process; their
// own encode/decode cost runs outside the timed window because in a real
// deployment it runs on na other machines. The full lockstep-loop rate
// (controller + load generators serialized) is reported alongside as
// loop_ticks_per_s for transparency. Also reported: controller CPU per tick
// (CLOCK_THREAD_CPUTIME_ID over the same window) and process-wide heap
// allocations + allocated bytes per tick (global operator new hook). The
// baseline broadcast encodes O(na^2) bytes per tick, the optimized path
// O(na) -- that is where the gap grows with na.
//
// Output: a stdout table plus BENCH_daemon_throughput.json in the working
// directory. Usage: bench_daemon_throughput [na...] (default 16 64 256 1024).
#include <sys/resource.h>
#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/frame_pool.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/tcp_connection.hpp"
#include "net/transport.hpp"
#include "proto/message.hpp"
#include "util/require.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

// Process-wide allocation accounting: every operator new funnels through
// here so the per-tick numbers cover proto, net, and harness code alike.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace perq::bench {
namespace {

double thread_cpu_ms() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

struct ModeResult {
  double ticks_per_s = 0.0;       ///< controller-phase rate (see header)
  double loop_ticks_per_s = 0.0;  ///< full lockstep loop incl. load generators
  double ctrl_cpu_ms_per_tick = 0.0;
  double allocs_per_tick = 0.0;
  double alloc_bytes_per_tick = 0.0;
};

/// One lockstep controller + na in-process agents over loopback TCP.
class Harness {
 public:
  Harness(std::size_t na, bool optimized) : na_(na), optimized_(optimized) {
    auto listener = transport_.listen("127.0.0.1:0");
    const std::string address =
        "127.0.0.1:" + std::to_string(net::listener_port(*listener));
    for (std::size_t i = 0; i < na_; ++i) {
      auto c = transport_.connect_timeout(address, 5000);
      PERQ_REQUIRE(c != nullptr, "agent connect failed");
      agents_.push_back(std::move(c));
      // Interleave accepts so the backlog never has to hold the whole fleet.
      if ((i & 63u) == 63u) accept_pending(*listener);
    }
    while (ctrl_.size() < na_) accept_pending(*listener);
    listener->close();
    if (optimized_) {
      for (const auto& c : ctrl_) ctrl_reactor_.add(c->fd());
      for (const auto& c : agents_) agent_reactor_.add(c->fd());
    }
  }

  void tick(std::uint64_t t) {
    // Load-generation phase: every agent reports in.
    proto::Telemetry tel;
    proto::Heartbeat hb;
    for (std::size_t i = 0; i < na_; ++i) {
      tel.agent_id = static_cast<std::uint32_t>(i);
      tel.tick = t;
      tel.job_id = static_cast<std::int32_t>(i);
      tel.cap_w = 200.0;
      tel.ips = 1e9 + static_cast<double>(t);
      tel.power_w = 180.0;
      hb.agent_id = static_cast<std::uint32_t>(i);
      hb.tick = t;
      hb.budget_total_w = 1e5;
      agents_[i]->send(proto::Message{tel});
      agents_[i]->send(proto::Message{hb});
    }

    // Controller phase (the timed window): drain 2*na messages, broadcast,
    // flush until the kernel has accepted every broadcast byte. The plan
    // (~26 B/agent) fits loopback socket buffers, so the flush loop
    // completes without the load generators draining concurrently.
    const auto wall0 = std::chrono::steady_clock::now();
    const double cpu0 = thread_cpu_ms();
    std::size_t got = 0;
    while (got < 2 * na_) {
      wait_ctrl();
      if (optimized_) {
        inbox_.clear();
        for (const auto& c : ctrl_) c->receive_into(inbox_);
        got += inbox_.size();
      } else {
        for (const auto& c : ctrl_) got += c->receive().size();
      }
    }
    plan_.tick = t;
    plan_.entries.resize(na_);
    for (std::size_t i = 0; i < na_; ++i) {
      plan_.entries[i].job_id = static_cast<std::int32_t>(i);
      plan_.entries[i].cap_w = 150.0 + static_cast<double>(t % 7);
      plan_.entries[i].target_ips = 2e9;
    }
    if (optimized_) {
      auto buf = pool_.acquire();
      proto::encode_into(proto::Message{plan_}, *buf);
      const net::SharedFrame frame = net::FramePool::freeze(buf);
      for (const auto& c : ctrl_) c->send_frame(frame);
    } else {
      const proto::Message pm{plan_};
      for (const auto& c : ctrl_) c->send(pm);
    }
    std::size_t pending;
    do {
      pending = 0;
      for (const auto& c : ctrl_) {
        c->flush();
        pending += static_cast<net::TcpConnection*>(c.get())->pending_bytes();
      }
    } while (pending > 0);
    ctrl_cpu_ms_ += thread_cpu_ms() - cpu0;
    ctrl_wall_ms_ +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  wall0)
            .count();

    // Load-generation phase: every agent reads its plan copy.
    std::size_t plans = 0;
    while (plans < na_) {
      wait_agents();
      if (optimized_) {
        inbox_.clear();
        for (const auto& c : agents_) c->receive_into(inbox_);
        plans += inbox_.size();
      } else {
        for (const auto& c : agents_) plans += c->receive().size();
      }
    }
  }

  double take_ctrl_cpu_ms() {
    const double v = ctrl_cpu_ms_;
    ctrl_cpu_ms_ = 0.0;
    return v;
  }

  double take_ctrl_wall_ms() {
    const double v = ctrl_wall_ms_;
    ctrl_wall_ms_ = 0.0;
    return v;
  }

 private:
  void accept_pending(net::Listener& listener) {
    for (auto& c : listener.accept_new()) ctrl_.push_back(std::move(c));
  }

  void wait_ctrl() {
    if (optimized_) {
      ctrl_reactor_.wait(50);
      return;
    }
    fds_.clear();
    for (const auto& c : ctrl_) fds_.push_back(c->fd());
    net::wait_readable(fds_, 50);
  }

  void wait_agents() {
    if (optimized_) {
      agent_reactor_.wait(50);
      return;
    }
    fds_.clear();
    for (const auto& c : agents_) fds_.push_back(c->fd());
    net::wait_readable(fds_, 50);
  }

  std::size_t na_;
  bool optimized_;
  net::TcpTransport transport_;
  std::vector<std::unique_ptr<net::Connection>> ctrl_;
  std::vector<std::unique_ptr<net::Connection>> agents_;
  net::Reactor ctrl_reactor_{net::Reactor::Backend::kEpoll};
  net::Reactor agent_reactor_{net::Reactor::Backend::kEpoll};
  net::FramePool pool_;
  std::vector<proto::Message> inbox_;
  std::vector<int> fds_;
  proto::CapPlan plan_;
  double ctrl_cpu_ms_ = 0.0;
  double ctrl_wall_ms_ = 0.0;
};

ModeResult run_mode(std::size_t na, bool optimized) {
  Harness h(na, optimized);
  // Warm-up past decoder compaction thresholds and buffer/pool growth so
  // the measured window is steady state.
  const std::size_t warm = 12;
  const std::size_t measured = na >= 256 ? 30 : 4096 / na;
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < warm; ++i) h.tick(t++);
  h.take_ctrl_cpu_ms();
  h.take_ctrl_wall_ms();
  const std::uint64_t a0 = g_allocs.load();
  const std::uint64_t b0 = g_alloc_bytes.load();
  const auto w0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < measured; ++i) h.tick(t++);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
          .count();
  ModeResult r;
  const double ticks = static_cast<double>(measured);
  r.ticks_per_s = ticks / (h.take_ctrl_wall_ms() * 1e-3);
  r.loop_ticks_per_s = ticks / wall_s;
  r.ctrl_cpu_ms_per_tick = h.take_ctrl_cpu_ms() / ticks;
  r.allocs_per_tick = static_cast<double>(g_allocs.load() - a0) / ticks;
  r.alloc_bytes_per_tick =
      static_cast<double>(g_alloc_bytes.load() - b0) / ticks;
  return r;
}

struct Row {
  std::size_t na = 0;
  ModeResult baseline;
  ModeResult optimized;
};

void raise_fd_limit(rlim_t want) {
  struct rlimit rl{};
  PERQ_REQUIRE(::getrlimit(RLIMIT_NOFILE, &rl) == 0, "getrlimit failed");
  if (rl.rlim_cur >= want) return;
  rl.rlim_cur = rl.rlim_max == RLIM_INFINITY ? want
                                             : std::min(want, rl.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &rl);
}

}  // namespace
}  // namespace perq::bench

int main(int argc, char** argv) {
  using namespace perq::bench;
  banner("Daemon data-plane throughput",
         "poll-per-call + per-connection re-encode vs epoll reactor + "
         "serialize-once broadcast");

  std::vector<std::size_t> sweep;
  for (int i = 1; i < argc; ++i) {
    sweep.push_back(static_cast<std::size_t>(std::atol(argv[i])));
    PERQ_REQUIRE(sweep.back() > 0, "agent counts must be positive");
  }
  if (sweep.empty()) sweep = {16, 64, 256, 1024};

  std::size_t max_na = 0;
  for (std::size_t na : sweep) max_na = std::max(max_na, na);
  // 2 descriptors per agent (controller side + agent side) plus slack.
  raise_fd_limit(static_cast<rlim_t>(2 * max_na + 64));

  std::vector<Row> rows;
  std::printf(
      "    na     mode   ctrl-ticks/s   loop-ticks/s   ctrl-cpu(ms)"
      "   allocs/tick   alloc-KB/tick\n");
  for (std::size_t na : sweep) {
    Row row;
    row.na = na;
    row.baseline = run_mode(na, /*optimized=*/false);
    row.optimized = run_mode(na, /*optimized=*/true);
    for (const auto* m : {&row.baseline, &row.optimized}) {
      std::printf("  %4zu %8s  %12.1f   %12.1f   %12.4f   %11.1f   %13.1f\n",
                  na, m == &row.baseline ? "poll" : "epoll", m->ticks_per_s,
                  m->loop_ticks_per_s, m->ctrl_cpu_ms_per_tick,
                  m->allocs_per_tick, m->alloc_bytes_per_tick / 1024.0);
    }
    std::printf("  %4zu  speedup  %11.2fx\n", na,
                row.optimized.ticks_per_s / row.baseline.ticks_per_s);
    rows.push_back(row);
  }

  FILE* json = std::fopen("BENCH_daemon_throughput.json", "w");
  PERQ_REQUIRE(json != nullptr, "cannot open BENCH_daemon_throughput.json");
  std::fprintf(json, "{\n  \"bench\": \"daemon_throughput\",\n  \"rows\": [\n");
  double last_speedup = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.optimized.ticks_per_s / r.baseline.ticks_per_s;
    last_speedup = speedup;
    std::fprintf(
        json,
        "    {\"agents\": %zu,\n"
        "     \"baseline\": {\"ticks_per_s\": %.3f, \"loop_ticks_per_s\": %.3f,"
        " \"ctrl_cpu_ms_per_tick\": %.5f,"
        " \"allocs_per_tick\": %.1f, \"alloc_bytes_per_tick\": %.1f},\n"
        "     \"optimized\": {\"ticks_per_s\": %.3f, \"loop_ticks_per_s\": %.3f,"
        " \"ctrl_cpu_ms_per_tick\": %.5f,"
        " \"allocs_per_tick\": %.1f, \"alloc_bytes_per_tick\": %.1f},\n"
        "     \"speedup\": %.3f}%s\n",
        r.na, r.baseline.ticks_per_s, r.baseline.loop_ticks_per_s,
        r.baseline.ctrl_cpu_ms_per_tick, r.baseline.allocs_per_tick,
        r.baseline.alloc_bytes_per_tick, r.optimized.ticks_per_s,
        r.optimized.loop_ticks_per_s, r.optimized.ctrl_cpu_ms_per_tick,
        r.optimized.allocs_per_tick, r.optimized.alloc_bytes_per_tick, speedup,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"speedup_max_na\": %.3f\n}\n", last_speedup);
  std::fclose(json);
  std::printf("\nJSON written to BENCH_daemon_throughput.json\n");
  return 0;
}
