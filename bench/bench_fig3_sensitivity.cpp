// Fig. 3: application performance (% of performance at 290 W) versus node
// power-cap, for all ten ECP apps grouped by sensitivity class. Performance
// is phase-averaged, matching the run-level measurements of the paper.
#include "common.hpp"

#include "apps/catalog.hpp"
#include "util/thread_pool.hpp"

namespace {

double phase_average_perf(const perq::apps::AppModel& app, double cap) {
  double acc = 0.0;
  double cycle = 0.0;
  for (std::size_t ph = 0; ph < app.phase_count(); ++ph) {
    acc += app.perf_fraction(cap, ph) * app.phase(ph).duration_s;
    cycle += app.phase(ph).duration_s;
  }
  return acc / cycle;
}

}  // namespace

int main() {
  using namespace perq;
  bench::banner("Fig. 3",
                "Performance vs power-cap for the ten ECP apps, by sensitivity class");

  CsvWriter csv(bench::csv_path("fig3_sensitivity"),
                {"app", "sensitivity", "cap_w", "perf_pct_of_290w"});
  for (auto cls : {apps::Sensitivity::kLow, apps::Sensitivity::kMedium,
                   apps::Sensitivity::kHigh}) {
    std::printf("\n--- %s sensitivity ---\n%-10s", to_string(cls).c_str(), "cap(W)");
    std::vector<const apps::AppModel*> group;
    for (const auto& app : apps::ecp_catalog()) {
      if (app.sensitivity() == cls) {
        group.push_back(&app);
        std::printf(" %9s", app.name().c_str());
      }
    }
    std::printf("\n");
    std::vector<double> caps;
    for (double cap = 90.0; cap <= 290.0; cap += 25.0) caps.push_back(cap);
    // The (cap, app) evaluations are independent; compute them into an
    // index-addressed grid on the pool, then print/write serially so the
    // table and CSV order stay identical to the serial version.
    std::vector<double> perf_grid(caps.size() * group.size(), 0.0);
    ThreadPool::shared().parallel_for(
        0, perf_grid.size(),
        [&](std::size_t k) {
          const std::size_t ci = k / group.size();
          const std::size_t ai = k % group.size();
          perf_grid[k] = phase_average_perf(*group[ai], caps[ci]) * 100.0;
        });
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      std::printf("%-10.0f", caps[ci]);
      for (std::size_t ai = 0; ai < group.size(); ++ai) {
        const double perf = perf_grid[ci * group.size() + ai];
        std::printf(" %8.1f%%", perf);
        csv.row(std::vector<std::string>{group[ai]->name(), to_string(cls),
                                         format_double(caps[ci]),
                                         format_double(perf)});
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected anchors (paper): low-sensitivity apps stay above 80%% "
              "at 90 W; high-sensitivity apps fall below 40%%.\n");
  std::printf("CSV written to %s\n", bench::csv_path("fig3_sensitivity").c_str());
  return 0;
}
