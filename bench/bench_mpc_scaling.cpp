// MPC solver scaling: decide() latency for the structure-exploiting QP path
// versus the dense debug/baseline path, swept over job count and horizon.
//
// Each configuration measures warm-started decide() calls (the steady-state
// regime of a control loop; the first, cold decide is excluded as warm-up)
// and reports median and p90 latency per path. The dense path materializes
// the (nj*m)^2 Hessian and LU-factors the free-variable KKT system every
// active-set iteration, so it is skipped above nv = 1024 variables where it
// stops being a meaningful baseline (memory and time blow up cubically).
//
// Output: a stdout table plus BENCH_mpc_scaling.json in the working
// directory with per-config latencies and the headline structured-vs-dense
// speedup at nj = 128, m = 8.
//
// The hierarchical sharding / tree-depth sweeps live in bench_hier_scaling
// (BENCH_hier_scaling.json) since the budget hierarchy became recursive.
#include "common.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/catalog.hpp"
#include "control/mpc.hpp"
#include "core/node_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace perq;

/// Owns the jobs/estimators behind a ControlledJob set of size nj, with
/// per-job estimator training so the QP has heterogeneous sensitivities
/// (a uniform problem would under-exercise the active set).
struct Fleet {
  std::vector<std::unique_ptr<sched::Job>> jobs;
  std::vector<std::unique_ptr<control::JobEstimator>> estimators;
  std::size_t total_nodes = 0;

  explicit Fleet(std::size_t nj) {
    Rng rng(42);
    std::size_t next_node = 0;
    for (std::size_t i = 0; i < nj; ++i) {
      trace::JobSpec s;
      s.id = static_cast<int>(i);
      s.nodes = 1 + (i % 4);
      s.runtime_ref_s = 600.0;
      s.app_index = i % apps::ecp_catalog().size();
      jobs.push_back(std::make_unique<sched::Job>(
          s, &apps::ecp_catalog()[s.app_index]));
      std::vector<std::size_t> ids(s.nodes);
      for (auto& n : ids) n = next_node++;
      jobs.back()->start(0.0, std::move(ids));
      total_nodes += s.nodes;

      auto est = std::make_unique<control::JobEstimator>(
          &core::canonical_node_model(), 145.0);
      // Sensitivity spread: slope 0 .. 1.6e7 IPS/W across the fleet.
      const double slope = 1.6e7 * static_cast<double>(i % 5) / 4.0;
      for (int k = 0; k < 40; ++k) {
        const double cap = rng.uniform(90.0, 290.0);
        est->update(cap, std::max(0.0, 1.2e9 + slope * (cap - 190.0)));
      }
      estimators.push_back(std::move(est));
      // Measured performance below target for some jobs, above for others,
      // so the fairness fade leaves a mix of engaged/faded tracking rows.
      jobs.back()->record_interval(
          10.0, 1.0,
          (i % 3 == 0 ? 2.0e9 : 0.9e9) * static_cast<double>(s.nodes), 145.0);
    }
  }

  std::vector<control::ControlledJob> controlled() const {
    std::vector<control::ControlledJob> out;
    out.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      out.push_back({jobs[i].get(), estimators[i].get()});
    }
    return out;
  }
};

struct Latency {
  double median_ms = 0.0;
  double p90_ms = 0.0;
};

Latency summarize(std::vector<double> ms) {
  Latency l;
  const std::size_t n = ms.size();
  std::nth_element(ms.begin(), ms.begin() + n / 2, ms.end());
  l.median_ms = ms[n / 2];
  const std::size_t k = std::min(n - 1, (9 * n) / 10);
  std::nth_element(ms.begin(), ms.begin() + k, ms.end());
  l.p90_ms = ms[k];
  return l;
}

/// Runs `reps` warm-started decides (plus one excluded cold warm-up) and
/// returns per-call latencies.
Latency measure(const Fleet& fleet, std::size_t m,
                control::MpcConfig::SolverPath path, std::size_t reps) {
  control::MpcConfig cfg;
  cfg.horizon = m;
  cfg.solver = path;
  control::MpcController mpc(cfg);

  const auto cj = fleet.controlled();
  const auto targets =
      control::TargetGenerator(8.0, fleet.total_nodes, 2 * fleet.total_nodes)
          .generate(cj);
  const double budget = static_cast<double>(fleet.total_nodes) * 160.0;
  std::vector<double> prev(cj.size(), 145.0);

  auto d = mpc.decide(cj, targets, prev, budget);  // cold warm-up, excluded
  prev = d.caps_w;
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    d = mpc.decide(cj, targets, prev, budget);
    ms.push_back(timer.seconds() * 1e3);
    prev = d.caps_w;
  }
  return summarize(ms);
}

}  // namespace

int main() {
  bench::banner("MPC scaling",
                "decide() latency: structured solver path vs dense baseline");

  constexpr std::size_t kDenseLimit = 1024;  // max nv for the dense baseline
  constexpr std::size_t kReps = 9;
  const std::size_t job_counts[] = {8, 32, 128, 512};
  const std::size_t horizons[] = {4, 8, 16};

  std::printf("%6s %4s %6s %15s %15s %9s\n", "nj", "m", "nv",
              "structured(ms)", "dense(ms)", "speedup");

  FILE* json = std::fopen("BENCH_mpc_scaling.json", "w");
  PERQ_REQUIRE(json != nullptr, "cannot open BENCH_mpc_scaling.json");
  std::fprintf(json, "{\n  \"bench\": \"mpc_scaling\",\n  \"reps\": %zu,\n"
                     "  \"configs\": [\n", kReps);

  double headline_speedup = 0.0;
  bool first = true;
  for (std::size_t nj : job_counts) {
    const Fleet fleet(nj);
    for (std::size_t m : horizons) {
      const std::size_t nv = nj * m;
      const auto structured =
          measure(fleet, m, control::MpcConfig::SolverPath::kStructured, kReps);
      const bool run_dense = nv <= kDenseLimit;
      Latency dense;
      if (run_dense) {
        dense = measure(fleet, m, control::MpcConfig::SolverPath::kDense, kReps);
      }

      const double speedup =
          run_dense ? dense.median_ms / std::max(structured.median_ms, 1e-6) : 0.0;
      if (nj == 128 && m == 8) headline_speedup = speedup;
      if (run_dense) {
        std::printf("%6zu %4zu %6zu %7.3f / %6.3f %7.3f / %6.3f %8.1fx\n", nj, m,
                    nv, structured.median_ms, structured.p90_ms, dense.median_ms,
                    dense.p90_ms, speedup);
      } else {
        std::printf("%6zu %4zu %6zu %7.3f / %6.3f %15s %9s\n", nj, m, nv,
                    structured.median_ms, structured.p90_ms, "(skipped)", "-");
      }

      if (!first) std::fprintf(json, ",\n");
      first = false;
      std::fprintf(json,
                   "    {\"nj\": %zu, \"m\": %zu, \"nv\": %zu,"
                   " \"structured_median_ms\": %.6f, \"structured_p90_ms\": %.6f,",
                   nj, m, nv, structured.median_ms, structured.p90_ms);
      if (run_dense) {
        std::fprintf(json,
                     " \"dense_median_ms\": %.6f, \"dense_p90_ms\": %.6f,"
                     " \"speedup\": %.3f}",
                     dense.median_ms, dense.p90_ms, speedup);
      } else {
        std::fprintf(json, " \"dense_median_ms\": null, \"dense_p90_ms\": null,"
                           " \"speedup\": null}");
      }
    }
  }
  std::fprintf(json, "\n  ],\n  \"speedup_nj128_m8\": %.3f\n}\n", headline_speedup);
  std::fclose(json);

  std::printf("\n(latencies are median / p90 over %zu warm-started decides; the\n"
              " dense baseline is skipped above nv = %zu variables)\n",
              kReps, kDenseLimit);
  std::printf("headline: structured is %.1fx faster than dense at nj=128, m=8\n",
              headline_speedup);
  std::printf("JSON written to BENCH_mpc_scaling.json\n");
  return 0;
}
