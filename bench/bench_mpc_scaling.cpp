// MPC solver scaling: decide() latency for the structure-exploiting QP path
// versus the dense debug/baseline path, swept over job count and horizon.
//
// Each configuration measures warm-started decide() calls (the steady-state
// regime of a control loop; the first, cold decide is excluded as warm-up)
// and reports median and p90 latency per path. The dense path materializes
// the (nj*m)^2 Hessian and LU-factors the free-variable KKT system every
// active-set iteration, so it is skipped above nv = 1024 variables where it
// stops being a meaningful baseline (memory and time blow up cubically).
//
// Output: a stdout table plus BENCH_mpc_scaling.json in the working
// directory with per-config latencies and the headline structured-vs-dense
// speedup at nj = 128, m = 8.
//
// A second leg measures the hierarchical sharding of the full policy-level
// decide: HierarchicalPerqPolicy::allocate over nj jobs at K = 1/4/8
// budget domains (K = 1 IS the monolithic controller, bit-for-bit). The
// sharded configurations pay the water-filling arbiter and merge, but each
// domain's QP is ~nj/K jobs and the solves fan out on the shared pool, so
// the decide-latency curve bends from superlinear-in-nj to roughly flat in
// K. Output: BENCH_hier_scaling.json plus the headline K=4-vs-monolithic
// speedup at nj = 256.
#include "common.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/catalog.hpp"
#include "control/mpc.hpp"
#include "core/node_model.hpp"
#include "hier/hier_policy.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace perq;

/// Owns the jobs/estimators behind a ControlledJob set of size nj, with
/// per-job estimator training so the QP has heterogeneous sensitivities
/// (a uniform problem would under-exercise the active set).
struct Fleet {
  std::vector<std::unique_ptr<sched::Job>> jobs;
  std::vector<std::unique_ptr<control::JobEstimator>> estimators;
  std::size_t total_nodes = 0;

  explicit Fleet(std::size_t nj) {
    Rng rng(42);
    std::size_t next_node = 0;
    for (std::size_t i = 0; i < nj; ++i) {
      trace::JobSpec s;
      s.id = static_cast<int>(i);
      s.nodes = 1 + (i % 4);
      s.runtime_ref_s = 600.0;
      s.app_index = i % apps::ecp_catalog().size();
      jobs.push_back(std::make_unique<sched::Job>(
          s, &apps::ecp_catalog()[s.app_index]));
      std::vector<std::size_t> ids(s.nodes);
      for (auto& n : ids) n = next_node++;
      jobs.back()->start(0.0, std::move(ids));
      total_nodes += s.nodes;

      auto est = std::make_unique<control::JobEstimator>(
          &core::canonical_node_model(), 145.0);
      // Sensitivity spread: slope 0 .. 1.6e7 IPS/W across the fleet.
      const double slope = 1.6e7 * static_cast<double>(i % 5) / 4.0;
      for (int k = 0; k < 40; ++k) {
        const double cap = rng.uniform(90.0, 290.0);
        est->update(cap, std::max(0.0, 1.2e9 + slope * (cap - 190.0)));
      }
      estimators.push_back(std::move(est));
      // Measured performance below target for some jobs, above for others,
      // so the fairness fade leaves a mix of engaged/faded tracking rows.
      jobs.back()->record_interval(
          10.0, 1.0,
          (i % 3 == 0 ? 2.0e9 : 0.9e9) * static_cast<double>(s.nodes), 145.0);
    }
  }

  std::vector<control::ControlledJob> controlled() const {
    std::vector<control::ControlledJob> out;
    out.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      out.push_back({jobs[i].get(), estimators[i].get()});
    }
    return out;
  }
};

struct Latency {
  double median_ms = 0.0;
  double p90_ms = 0.0;
};

Latency summarize(std::vector<double> ms) {
  Latency l;
  const std::size_t n = ms.size();
  std::nth_element(ms.begin(), ms.begin() + n / 2, ms.end());
  l.median_ms = ms[n / 2];
  const std::size_t k = std::min(n - 1, (9 * n) / 10);
  std::nth_element(ms.begin(), ms.begin() + k, ms.end());
  l.p90_ms = ms[k];
  return l;
}

/// Runs `reps` warm-started decides (plus one excluded cold warm-up) and
/// returns per-call latencies.
Latency measure(const Fleet& fleet, std::size_t m,
                control::MpcConfig::SolverPath path, std::size_t reps) {
  control::MpcConfig cfg;
  cfg.horizon = m;
  cfg.solver = path;
  control::MpcController mpc(cfg);

  const auto cj = fleet.controlled();
  const auto targets =
      control::TargetGenerator(8.0, fleet.total_nodes, 2 * fleet.total_nodes)
          .generate(cj);
  const double budget = static_cast<double>(fleet.total_nodes) * 160.0;
  std::vector<double> prev(cj.size(), 145.0);

  auto d = mpc.decide(cj, targets, prev, budget);  // cold warm-up, excluded
  prev = d.caps_w;
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    d = mpc.decide(cj, targets, prev, budget);
    ms.push_back(timer.seconds() * 1e3);
    prev = d.caps_w;
  }
  return summarize(ms);
}

/// Latency of HierarchicalPerqPolicy::allocate over the fleet's jobs with
/// K budget domains (K = 1 delegates to the monolithic PerqPolicy).
Latency measure_hier(const Fleet& fleet, std::size_t k, std::size_t reps) {
  hier::HierConfig hcfg;
  hcfg.domains = k;
  hier::HierarchicalPerqPolicy policy(&core::canonical_node_model(),
                                      fleet.total_nodes / 2, fleet.total_nodes,
                                      hcfg);
  std::vector<sched::Job*> running;
  running.reserve(fleet.jobs.size());
  for (const auto& j : fleet.jobs) {
    policy.on_job_started(*j);
    running.push_back(j.get());
  }

  policy::PolicyContext ctx;
  ctx.running = &running;
  ctx.total_nodes = static_cast<double>(fleet.total_nodes);
  ctx.budget_total_w = static_cast<double>(fleet.total_nodes) * 180.0;
  ctx.budget_for_busy_w = static_cast<double>(fleet.total_nodes) * 160.0;
  ctx.dt_s = 10.0;

  (void)policy.allocate(ctx);  // cold warm-up, excluded
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    ctx.now_s += ctx.dt_s;
    Stopwatch timer;
    (void)policy.allocate(ctx);
    ms.push_back(timer.seconds() * 1e3);
  }
  return summarize(ms);
}

}  // namespace

int main() {
  bench::banner("MPC scaling",
                "decide() latency: structured solver path vs dense baseline");

  constexpr std::size_t kDenseLimit = 1024;  // max nv for the dense baseline
  constexpr std::size_t kReps = 9;
  const std::size_t job_counts[] = {8, 32, 128, 512};
  const std::size_t horizons[] = {4, 8, 16};

  std::printf("%6s %4s %6s %15s %15s %9s\n", "nj", "m", "nv",
              "structured(ms)", "dense(ms)", "speedup");

  FILE* json = std::fopen("BENCH_mpc_scaling.json", "w");
  PERQ_REQUIRE(json != nullptr, "cannot open BENCH_mpc_scaling.json");
  std::fprintf(json, "{\n  \"bench\": \"mpc_scaling\",\n  \"reps\": %zu,\n"
                     "  \"configs\": [\n", kReps);

  double headline_speedup = 0.0;
  bool first = true;
  for (std::size_t nj : job_counts) {
    const Fleet fleet(nj);
    for (std::size_t m : horizons) {
      const std::size_t nv = nj * m;
      const auto structured =
          measure(fleet, m, control::MpcConfig::SolverPath::kStructured, kReps);
      const bool run_dense = nv <= kDenseLimit;
      Latency dense;
      if (run_dense) {
        dense = measure(fleet, m, control::MpcConfig::SolverPath::kDense, kReps);
      }

      const double speedup =
          run_dense ? dense.median_ms / std::max(structured.median_ms, 1e-6) : 0.0;
      if (nj == 128 && m == 8) headline_speedup = speedup;
      if (run_dense) {
        std::printf("%6zu %4zu %6zu %7.3f / %6.3f %7.3f / %6.3f %8.1fx\n", nj, m,
                    nv, structured.median_ms, structured.p90_ms, dense.median_ms,
                    dense.p90_ms, speedup);
      } else {
        std::printf("%6zu %4zu %6zu %7.3f / %6.3f %15s %9s\n", nj, m, nv,
                    structured.median_ms, structured.p90_ms, "(skipped)", "-");
      }

      if (!first) std::fprintf(json, ",\n");
      first = false;
      std::fprintf(json,
                   "    {\"nj\": %zu, \"m\": %zu, \"nv\": %zu,"
                   " \"structured_median_ms\": %.6f, \"structured_p90_ms\": %.6f,",
                   nj, m, nv, structured.median_ms, structured.p90_ms);
      if (run_dense) {
        std::fprintf(json,
                     " \"dense_median_ms\": %.6f, \"dense_p90_ms\": %.6f,"
                     " \"speedup\": %.3f}",
                     dense.median_ms, dense.p90_ms, speedup);
      } else {
        std::fprintf(json, " \"dense_median_ms\": null, \"dense_p90_ms\": null,"
                           " \"speedup\": null}");
      }
    }
  }
  std::fprintf(json, "\n  ],\n  \"speedup_nj128_m8\": %.3f\n}\n", headline_speedup);
  std::fclose(json);

  std::printf("\n(latencies are median / p90 over %zu warm-started decides; the\n"
              " dense baseline is skipped above nv = %zu variables)\n",
              kReps, kDenseLimit);
  std::printf("headline: structured is %.1fx faster than dense at nj=128, m=8\n",
              headline_speedup);
  std::printf("JSON written to BENCH_mpc_scaling.json\n");

  // --- sharded vs monolithic: the full policy decide at K budget domains ---
  bench::banner("Hierarchical scaling",
                "HierarchicalPerqPolicy::allocate: K budget domains vs the "
                "monolithic controller (K=1)");
  const std::size_t hier_jobs[] = {128, 256};
  const std::size_t domain_counts[] = {1, 4, 8};

  std::printf("%6s %4s %12s %12s %9s\n", "nj", "K", "median(ms)", "p90(ms)",
              "speedup");
  FILE* hjson = std::fopen("BENCH_hier_scaling.json", "w");
  PERQ_REQUIRE(hjson != nullptr, "cannot open BENCH_hier_scaling.json");
  std::fprintf(hjson, "{\n  \"bench\": \"hier_scaling\",\n  \"reps\": %zu,\n"
                      "  \"configs\": [\n", kReps);

  double hier_headline = 0.0;
  bool hfirst = true;
  for (std::size_t nj : hier_jobs) {
    const Fleet fleet(nj);
    double mono_median = 0.0;
    for (std::size_t k : domain_counts) {
      const Latency lat = measure_hier(fleet, k, kReps);
      if (k == 1) mono_median = lat.median_ms;
      const double speedup = mono_median / std::max(lat.median_ms, 1e-6);
      if (nj == 256 && k == 4) hier_headline = speedup;
      std::printf("%6zu %4zu %12.3f %12.3f %8.2fx\n", nj, k, lat.median_ms,
                  lat.p90_ms, speedup);
      if (!hfirst) std::fprintf(hjson, ",\n");
      hfirst = false;
      std::fprintf(hjson,
                   "    {\"nj\": %zu, \"domains\": %zu, \"median_ms\": %.6f,"
                   " \"p90_ms\": %.6f, \"speedup_vs_monolithic\": %.3f}",
                   nj, k, lat.median_ms, lat.p90_ms, speedup);
    }
  }
  std::fprintf(hjson, "\n  ],\n  \"speedup_nj256_k4\": %.3f\n}\n",
               hier_headline);
  std::fclose(hjson);

  std::printf("\nheadline: K=4 sharded decide is %.2fx faster than the "
              "monolithic controller at nj=256\n", hier_headline);
  std::printf("JSON written to BENCH_hier_scaling.json\n");
  return 0;
}
