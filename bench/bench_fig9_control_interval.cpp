// Fig. 9: sensitivity of PERQ to the control-interval length (5-120 s):
// system throughput relative to the shortest interval, and mean performance
// degradation versus FOP.
#include "common.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 9", "PERQ vs control-interval length (Mira workload)");

  const std::vector<double> intervals{5, 10, 20, 40, 60, 120};
  CsvWriter csv(bench::csv_path("fig9_control_interval"),
                {"interval_s", "completed", "throughput_vs_first_pct",
                 "mean_degradation_pct"});

  std::vector<std::size_t> completed;
  std::vector<double> mean_deg;
  for (double dt : intervals) {
    auto cfg = bench::mira_config(2.0, 12.0);
    cfg.control_interval_s = dt;
    auto fop = policy::make_fop();
    const auto fop_run = core::run_experiment(cfg, *fop);
    auto perq = bench::make_perq(cfg);
    const auto run = core::run_experiment(cfg, perq);
    completed.push_back(run.jobs_completed);
    mean_deg.push_back(
        metrics::degradation_vs_baseline(run, fop_run).mean_degradation_pct);
    std::printf("  interval %3.0fs done\n", dt);
  }

  std::printf("\n%10s %10s %18s %12s\n", "interval", "completed", "vs 5s (%)",
              "mean-deg%");
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const double rel = metrics::throughput_improvement_pct(completed[i], completed[0]);
    std::printf("%9.0fs %10zu %18.1f %12.1f\n", intervals[i], completed[i], rel,
                mean_deg[i]);
    csv.row(std::vector<double>{intervals[i], static_cast<double>(completed[i]), rel,
                                mean_deg[i]});
  }
  std::printf("\nExpected shape (paper): throughput degrades by < ~3%% even at "
              "long intervals; degradation rises mildly above 40 s.\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("fig9_control_interval").c_str());
  return 0;
}
