// Fig. 1: CDF of job runtimes on Mira and Trinity. The synthetic traces are
// calibrated to the published moments (Mira: mean 72 min, 62% > 30 min;
// Trinity: mean 30 min, 46% > 30 min); this bench prints the resulting CDFs
// and checks the moments.
#include "common.hpp"

#include "trace/trace.hpp"
#include "util/stats.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 1", "Runtime CDFs of the synthetic Mira / Trinity traces");

  CsvWriter csv(bench::csv_path("fig1_runtime_cdf"),
                {"system", "runtime_hr", "cdf"});
  for (auto system : {trace::SystemModel::kMira, trace::SystemModel::kTrinity}) {
    trace::TraceConfig cfg;
    cfg.system = system;
    cfg.job_count = 50000;
    cfg.max_job_nodes = 32;
    cfg.seed = 7;
    const auto jobs = trace::generate_trace(cfg);
    std::vector<double> runtimes;
    runtimes.reserve(jobs.size());
    for (const auto& j : jobs) runtimes.push_back(j.runtime_ref_s);

    const auto stats = trace::compute_stats(jobs);
    std::printf("\n%s: mean %.1f min (paper: %s), median %.1f min, P(>30min) %.2f "
                "(paper: %s)\n",
                to_string(system).c_str(), stats.mean_runtime_s / 60.0,
                system == trace::SystemModel::kMira ? "72" : "30",
                stats.median_runtime_s / 60.0, stats.fraction_over_30min,
                system == trace::SystemModel::kMira ? "0.62" : "0.46");

    std::printf("%10s %8s\n", "runtime", "CDF");
    for (const auto& p : empirical_cdf(runtimes, 21)) {
      std::printf("%8.2fhr %8.3f\n", p.value / 3600.0, p.cumulative);
      csv.row(std::vector<std::string>{to_string(system),
                                       format_double(p.value / 3600.0),
                                       format_double(p.cumulative)});
    }
  }
  std::printf("\nCSV written to %s\n", bench::csv_path("fig1_runtime_cdf").c_str());
  return 0;
}
