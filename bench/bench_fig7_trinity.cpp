// Fig. 7: Trinity-parameter-driven sweep (same metrics and policies as
// Fig. 6 on the Trinity workload shape).
#include "common.hpp"

int main() {
  using namespace perq;
  bench::banner("Fig. 7",
                "Trinity sweep: throughput and fairness vs over-provisioning factor");
  const auto points = bench::run_policy_sweep(
      {1.2, 1.4, 1.6, 1.8, 2.0}, [](double f) { return bench::trinity_config(f); });
  bench::report_policy_sweep("fig7_trinity", points);
  std::printf("\nExpected shape (paper): as Fig. 6; note the crossover -- PERQ "
              "reaches FOP's f=2.0 throughput at a noticeably smaller f.\n");
  return 0;
}
