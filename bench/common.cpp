#include "common.hpp"

#include <cmath>
#include <filesystem>
#include <functional>
#include <future>

#include "util/thread_pool.hpp"

namespace perq::bench {

void banner(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("PERQ reproduction: %s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name + ".csv";
}

core::EngineConfig mira_config(double f, double hours, std::uint64_t seed) {
  // Mira scaled down: 64 worst-case nodes, power-of-two jobs up to 16 nodes.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kMira;
  cfg.trace.max_job_nodes = 16;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = 64;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::EngineConfig trinity_config(double f, double hours, std::uint64_t seed) {
  // Trinity scaled down: 32 worst-case nodes, arbitrary job sizes up to 8.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 8;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = 32;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::EngineConfig tardis_config(double f, std::uint64_t seed) {
  // The 16-node prototype cluster: over-provisioning is emulated by
  // shrinking the power budget (worst_case_nodes) under a fixed node count.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTardis;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = static_cast<std::size_t>(std::llround(16.0 / f));
  cfg.over_provision_factor =
      16.0 / static_cast<double>(cfg.worst_case_nodes);
  cfg.duration_s = 6.0 * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::PerqPolicy make_perq(const core::EngineConfig& cfg,
                           const core::PerqConfig& pcfg) {
  const auto total = static_cast<std::size_t>(std::llround(
      cfg.over_provision_factor * static_cast<double>(cfg.worst_case_nodes)));
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total, pcfg);
}

std::vector<PolicyPoint> run_policy_sweep(
    const std::vector<double>& factors,
    const std::function<core::EngineConfig(double)>& make_config) {
  // Every run (the f = 1 FOP baseline plus {FOP, SJS, SRN, PERQ} at each f)
  // is an independent deterministic simulation, so they all go to the shared
  // pool at once. Configs are built serially first (recommended_job_count
  // generates a sizing trace), each task owns its policy object, and the
  // results are collected into PolicyPoints in the same order as the old
  // serial sweep -- including the pairing of each run with FOP at the same f
  // as its fairness reference.
  const auto base_cfg = make_config(1.0);
  std::vector<core::EngineConfig> cfgs;
  cfgs.reserve(factors.size());
  for (double f : factors) cfgs.push_back(make_config(f));

  auto& pool = ThreadPool::shared();
  const auto run_fop = [](const core::EngineConfig& cfg) {
    auto fop = policy::make_fop();
    return core::run_experiment(cfg, *fop);
  };
  auto base_fut = pool.submit([&run_fop, &base_cfg] { return run_fop(base_cfg); });

  struct SweepFutures {
    std::future<core::RunResult> fop, sjs, srn, perq;
  };
  std::vector<SweepFutures> futs(factors.size());
  for (std::size_t k = 0; k < factors.size(); ++k) {
    const core::EngineConfig& cfg = cfgs[k];
    futs[k].fop = pool.submit([&run_fop, &cfg] { return run_fop(cfg); });
    futs[k].sjs = pool.submit([&cfg] {
      auto p = policy::make_sjs();
      return core::run_experiment(cfg, *p);
    });
    futs[k].srn = pool.submit([&cfg] {
      auto p = policy::make_srn();
      return core::run_experiment(cfg, *p);
    });
    futs[k].perq = pool.submit([&cfg] {
      auto p = make_perq(cfg);
      return core::run_experiment(cfg, p);
    });
  }

  const auto base = base_fut.get();
  std::printf("baseline f=1.0: %zu jobs completed\n", base.jobs_completed);

  std::vector<PolicyPoint> points;
  for (std::size_t k = 0; k < factors.size(); ++k) {
    const double f = factors[k];
    const auto fop_run = futs[k].fop.get();

    const auto add = [&](const core::RunResult& run) {
      PolicyPoint p;
      p.policy = run.policy_name;
      p.f = f;
      p.completed = run.jobs_completed;
      p.throughput_improvement_pct =
          metrics::throughput_improvement_pct(run.jobs_completed, base.jobs_completed);
      const auto fair = metrics::degradation_vs_baseline(run, fop_run);
      p.mean_degradation_pct = fair.mean_degradation_pct;
      p.max_degradation_pct = fair.max_degradation_pct;
      points.push_back(p);
    };

    add(fop_run);
    add(futs[k].sjs.get());
    add(futs[k].srn.get());
    add(futs[k].perq.get());
    std::printf("  f=%.1f done\n", f);
  }
  return points;
}

void report_policy_sweep(const std::string& csv_name,
                         const std::vector<PolicyPoint>& points) {
  CsvWriter csv(csv_path(csv_name),
                {"policy", "f", "completed", "throughput_improvement_pct",
                 "mean_degradation_pct", "max_degradation_pct"});
  std::printf("\n%-6s %5s %10s %14s %12s %12s\n", "policy", "f", "completed",
              "throughput+%", "mean-deg%", "max-deg%");
  for (const auto& p : points) {
    std::printf("%-6s %5.1f %10zu %14.1f %12.1f %12.1f\n", p.policy.c_str(), p.f,
                p.completed, p.throughput_improvement_pct, p.mean_degradation_pct,
                p.max_degradation_pct);
    csv.row(std::vector<std::string>{
        p.policy, format_double(p.f), std::to_string(p.completed),
        format_double(p.throughput_improvement_pct),
        format_double(p.mean_degradation_pct),
        format_double(p.max_degradation_pct)});
  }
  std::printf("\nCSV written to %s\n", csv_path(csv_name).c_str());
}

}  // namespace perq::bench
