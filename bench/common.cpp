#include "common.hpp"

#include <cmath>
#include <filesystem>
#include <functional>

namespace perq::bench {

void banner(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("PERQ reproduction: %s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name + ".csv";
}

core::EngineConfig mira_config(double f, double hours, std::uint64_t seed) {
  // Mira scaled down: 64 worst-case nodes, power-of-two jobs up to 16 nodes.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kMira;
  cfg.trace.max_job_nodes = 16;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = 64;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::EngineConfig trinity_config(double f, double hours, std::uint64_t seed) {
  // Trinity scaled down: 32 worst-case nodes, arbitrary job sizes up to 8.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTrinity;
  cfg.trace.max_job_nodes = 8;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = 32;
  cfg.over_provision_factor = f;
  cfg.duration_s = hours * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::EngineConfig tardis_config(double f, std::uint64_t seed) {
  // The 16-node prototype cluster: over-provisioning is emulated by
  // shrinking the power budget (worst_case_nodes) under a fixed node count.
  core::EngineConfig cfg;
  cfg.trace.system = trace::SystemModel::kTardis;
  cfg.trace.max_job_nodes = 4;
  cfg.trace.seed = seed;
  cfg.worst_case_nodes = static_cast<std::size_t>(std::llround(16.0 / f));
  cfg.over_provision_factor =
      16.0 / static_cast<double>(cfg.worst_case_nodes);
  cfg.duration_s = 6.0 * 3600.0;
  cfg.trace.job_count = core::recommended_job_count(cfg);
  return cfg;
}

core::PerqPolicy make_perq(const core::EngineConfig& cfg,
                           const core::PerqConfig& pcfg) {
  const auto total = static_cast<std::size_t>(std::llround(
      cfg.over_provision_factor * static_cast<double>(cfg.worst_case_nodes)));
  return core::PerqPolicy(&core::canonical_node_model(), cfg.worst_case_nodes,
                          total, pcfg);
}

std::vector<PolicyPoint> run_policy_sweep(
    const std::vector<double>& factors,
    const std::function<core::EngineConfig(double)>& make_config) {
  // Baseline: worst-case provisioned machine under FOP (all nodes at TDP).
  auto base_cfg = make_config(1.0);
  auto fop_base = policy::make_fop();
  const auto base = core::run_experiment(base_cfg, *fop_base);
  std::printf("baseline f=1.0: %zu jobs completed\n", base.jobs_completed);

  std::vector<PolicyPoint> points;
  for (double f : factors) {
    const auto cfg = make_config(f);
    auto fop = policy::make_fop();
    const auto fop_run = core::run_experiment(cfg, *fop);

    const auto add = [&](const core::RunResult& run) {
      PolicyPoint p;
      p.policy = run.policy_name;
      p.f = f;
      p.completed = run.jobs_completed;
      p.throughput_improvement_pct =
          metrics::throughput_improvement_pct(run.jobs_completed, base.jobs_completed);
      const auto fair = metrics::degradation_vs_baseline(run, fop_run);
      p.mean_degradation_pct = fair.mean_degradation_pct;
      p.max_degradation_pct = fair.max_degradation_pct;
      points.push_back(p);
    };

    add(fop_run);
    auto sjs = policy::make_sjs();
    add(core::run_experiment(cfg, *sjs));
    auto srn = policy::make_srn();
    add(core::run_experiment(cfg, *srn));
    auto perq = make_perq(cfg);
    add(core::run_experiment(cfg, perq));
    std::printf("  f=%.1f done\n", f);
  }
  return points;
}

void report_policy_sweep(const std::string& csv_name,
                         const std::vector<PolicyPoint>& points) {
  CsvWriter csv(csv_path(csv_name),
                {"policy", "f", "completed", "throughput_improvement_pct",
                 "mean_degradation_pct", "max_degradation_pct"});
  std::printf("\n%-6s %5s %10s %14s %12s %12s\n", "policy", "f", "completed",
              "throughput+%", "mean-deg%", "max-deg%");
  for (const auto& p : points) {
    std::printf("%-6s %5.1f %10zu %14.1f %12.1f %12.1f\n", p.policy.c_str(), p.f,
                p.completed, p.throughput_improvement_pct, p.mean_degradation_pct,
                p.max_degradation_pct);
    csv.row(std::vector<std::string>{
        p.policy, format_double(p.f), std::to_string(p.completed),
        format_double(p.throughput_improvement_pct),
        format_double(p.mean_degradation_pct),
        format_double(p.max_degradation_pct)});
  }
  std::printf("\nCSV written to %s\n", csv_path(csv_name).c_str());
}

}  // namespace perq::bench
