// Hierarchical scaling: the sharded policy decide and the recursive
// arbiter, in one harness (split out of bench_mpc_scaling's second leg
// when the budget hierarchy became a real tree).
//
// Leg 1 -- sharding: HierarchicalPerqPolicy::allocate over nj jobs at
// K = 1/4/8 budget domains (K = 1 IS the monolithic controller, bit for
// bit). The sharded configurations pay the water-filling arbiter and the
// merge, but each domain's QP is ~nj/K jobs and the solves fan out on the
// shared pool, so the decide-latency curve bends from superlinear-in-nj
// to roughly flat in K.
//
// Leg 2 -- tree depth: PowerTree::allocate (the arbiter phase alone, no
// MPC) swept over depth x fanout at a fixed job population. depth 1 is
// the flat two-level arbiter; deeper trees pay one extra water_fill per
// interior node plus the bottom-up aggregation sweep, so the cost scales
// with node count, not depth itself. Tenant terms (SLA floors, priority
// tilts) are set on every leaf so the sweep times the full tenant-aware
// fill, not the no-op fast paths.
//
// Output: a stdout table per leg plus BENCH_hier_scaling.json in the
// working directory with both sweeps and the headline K=4-vs-monolithic
// speedup at nj = 256.
#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "apps/catalog.hpp"
#include "core/node_model.hpp"
#include "hier/hier_policy.hpp"
#include "hier/tree.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace perq;

/// Owns the jobs behind a running set of size nj with heterogeneous node
/// counts and per-job feedback, mirroring the fleet bench_mpc_scaling
/// exercises its solver paths with.
struct Fleet {
  std::vector<std::unique_ptr<sched::Job>> jobs;
  std::size_t total_nodes = 0;

  explicit Fleet(std::size_t nj) {
    std::size_t next_node = 0;
    for (std::size_t i = 0; i < nj; ++i) {
      trace::JobSpec s;
      s.id = static_cast<int>(i);
      s.nodes = 1 + (i % 4);
      s.runtime_ref_s = 600.0;
      s.app_index = i % apps::ecp_catalog().size();
      jobs.push_back(std::make_unique<sched::Job>(
          s, &apps::ecp_catalog()[s.app_index]));
      std::vector<std::size_t> ids(s.nodes);
      for (auto& n : ids) n = next_node++;
      jobs.back()->start(0.0, std::move(ids));
      total_nodes += s.nodes;
      // Measured performance below target for some jobs, above for others,
      // so the fairness fade leaves a mix of engaged/faded tracking rows.
      jobs.back()->record_interval(
          10.0, 1.0,
          (i % 3 == 0 ? 2.0e9 : 0.9e9) * static_cast<double>(s.nodes), 145.0);
    }
  }
};

struct Latency {
  double median_ms = 0.0;
  double p90_ms = 0.0;
};

Latency summarize(std::vector<double> ms) {
  Latency l;
  const std::size_t n = ms.size();
  std::nth_element(ms.begin(), ms.begin() + n / 2, ms.end());
  l.median_ms = ms[n / 2];
  const std::size_t k = std::min(n - 1, (9 * n) / 10);
  std::nth_element(ms.begin(), ms.begin() + k, ms.end());
  l.p90_ms = ms[k];
  return l;
}

/// Latency of HierarchicalPerqPolicy::allocate over the fleet's jobs with
/// K budget domains (K = 1 delegates to the monolithic PerqPolicy).
Latency measure_hier(const Fleet& fleet, std::size_t k, std::size_t reps) {
  hier::HierConfig hcfg;
  hcfg.domains = k;
  hier::HierarchicalPerqPolicy policy(&core::canonical_node_model(),
                                      fleet.total_nodes / 2, fleet.total_nodes,
                                      hcfg);
  std::vector<sched::Job*> running;
  running.reserve(fleet.jobs.size());
  for (const auto& j : fleet.jobs) {
    policy.on_job_started(*j);
    running.push_back(j.get());
  }

  policy::PolicyContext ctx;
  ctx.running = &running;
  ctx.total_nodes = static_cast<double>(fleet.total_nodes);
  ctx.budget_total_w = static_cast<double>(fleet.total_nodes) * 180.0;
  ctx.budget_for_busy_w = static_cast<double>(fleet.total_nodes) * 160.0;
  ctx.dt_s = 10.0;

  (void)policy.allocate(ctx);  // cold warm-up, excluded
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    ctx.now_s += ctx.dt_s;
    Stopwatch timer;
    (void)policy.allocate(ctx);
    ms.push_back(timer.seconds() * 1e3);
  }
  return summarize(ms);
}

/// Latency of one PowerTree::allocate over fanout^depth leaves carrying
/// nj jobs between them: the arbiter phase a deeper hierarchy adds on top
/// of the (depth-independent) leaf MPC solves. Microseconds per call.
Latency measure_tree(std::size_t depth, std::size_t fanout, std::size_t nj,
                     std::size_t reps) {
  hier::TreeSpec spec = hier::TreeSpec::uniform(depth, fanout);
  // Tenant terms everywhere so the sweep pays the full tenant-aware fill.
  for (std::size_t n = 1; n < spec.nodes.size(); ++n) {
    spec.nodes[n].tenant.priority_weight = 1.0 + static_cast<double>(n % 3);
  }
  hier::PowerTree tree(std::move(spec));
  const std::size_t leaves = tree.leaves();

  Rng rng(7);
  std::vector<hier::DomainDemand> demands(leaves);
  double busy_total = 0.0;
  for (std::size_t d = 0; d < leaves; ++d) {
    hier::DomainDemand& dem = demands[d];
    dem.domain_id = static_cast<std::uint32_t>(d);
    dem.jobs = nj / leaves + (d < nj % leaves ? 1 : 0);
    dem.busy_nodes = static_cast<double>(dem.jobs) * 2.5;
    dem.floor_w = dem.busy_nodes * 90.0;
    dem.capacity_w = dem.busy_nodes * 290.0;
    dem.committed_w = dem.busy_nodes * 160.0;
    dem.utility_per_w = rng.uniform(0.0, 2e6);
    dem.achieved_ips = 1.0e9;
    dem.target_ips = 1.2e9;
    dem.sla_floor_w = dem.busy_nodes * 100.0;  // above the physical floor
    dem.priority_weight = 1.0 + static_cast<double>(d % 2);
    busy_total += dem.busy_nodes;
  }
  const double budget_w = busy_total * 160.0;

  (void)tree.allocate(budget_w, demands);  // warm-up, excluded
  std::vector<double> ms;
  ms.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    (void)tree.allocate(budget_w, demands);
    ms.push_back(timer.seconds() * 1e3);
  }
  return summarize(ms);
}

}  // namespace

int main() {
  bench::banner("Hierarchical scaling",
                "sharded policy decide (K domains) and recursive arbiter "
                "(depth x fanout)");

  constexpr std::size_t kReps = 9;
  const std::size_t hier_jobs[] = {128, 256};
  const std::size_t domain_counts[] = {1, 4, 8};

  FILE* json = std::fopen("BENCH_hier_scaling.json", "w");
  PERQ_REQUIRE(json != nullptr, "cannot open BENCH_hier_scaling.json");
  std::fprintf(json, "{\n  \"bench\": \"hier_scaling\",\n  \"reps\": %zu,\n"
                     "  \"configs\": [\n", kReps);

  std::printf("%6s %4s %12s %12s %9s\n", "nj", "K", "median(ms)", "p90(ms)",
              "speedup");
  double hier_headline = 0.0;
  bool first = true;
  for (std::size_t nj : hier_jobs) {
    const Fleet fleet(nj);
    double mono_median = 0.0;
    for (std::size_t k : domain_counts) {
      const Latency lat = measure_hier(fleet, k, kReps);
      if (k == 1) mono_median = lat.median_ms;
      const double speedup = mono_median / std::max(lat.median_ms, 1e-6);
      if (nj == 256 && k == 4) hier_headline = speedup;
      std::printf("%6zu %4zu %12.3f %12.3f %8.2fx\n", nj, k, lat.median_ms,
                  lat.p90_ms, speedup);
      if (!first) std::fprintf(json, ",\n");
      first = false;
      std::fprintf(json,
                   "    {\"nj\": %zu, \"domains\": %zu, \"median_ms\": %.6f,"
                   " \"p90_ms\": %.6f, \"speedup_vs_monolithic\": %.3f}",
                   nj, k, lat.median_ms, lat.p90_ms, speedup);
    }
  }
  std::fprintf(json, "\n  ],\n");

  std::printf("\nheadline: K=4 sharded decide is %.2fx faster than the "
              "monolithic controller at nj=256\n", hier_headline);

  // --- the recursive arbiter: PowerTree::allocate over depth x fanout ---
  bench::banner("Tree depth sweep",
                "PowerTree::allocate (arbiter phase only), nj=256 jobs "
                "spread over fanout^depth leaves");
  constexpr std::size_t kTreeJobs = 256;
  constexpr std::size_t kTreeReps = 257;
  const std::size_t depths[] = {1, 2, 3};
  const std::size_t fanouts[] = {2, 4, 8};

  std::printf("%6s %7s %7s %12s %12s\n", "depth", "fanout", "leaves",
              "median(us)", "p90(us)");
  std::fprintf(json, "  \"tree_configs\": [\n");
  double flat_us = 0.0, deep_us = 0.0;
  first = true;
  for (std::size_t depth : depths) {
    for (std::size_t fanout : fanouts) {
      const std::size_t leaves =
          static_cast<std::size_t>(std::llround(std::pow(
              static_cast<double>(fanout), static_cast<double>(depth))));
      const Latency lat = measure_tree(depth, fanout, kTreeJobs, kTreeReps);
      if (depth == 1 && fanout == 8) flat_us = lat.median_ms * 1e3;
      if (depth == 3 && fanout == 8) deep_us = lat.median_ms * 1e3;
      std::printf("%6zu %7zu %7zu %12.2f %12.2f\n", depth, fanout, leaves,
                  lat.median_ms * 1e3, lat.p90_ms * 1e3);
      if (!first) std::fprintf(json, ",\n");
      first = false;
      std::fprintf(json,
                   "    {\"depth\": %zu, \"fanout\": %zu, \"leaves\": %zu,"
                   " \"median_us\": %.3f, \"p90_us\": %.3f}",
                   depth, fanout, leaves, lat.median_ms * 1e3,
                   lat.p90_ms * 1e3);
    }
  }
  std::fprintf(json, "\n  ],\n  \"speedup_nj256_k4\": %.3f,\n"
                     "  \"tree_depth3_vs_flat_fanout8\": %.3f\n}\n",
               hier_headline, deep_us / std::max(flat_us, 1e-9));
  std::fclose(json);

  std::printf("\n(tree medians over %zu allocates at nj=%zu; depth 3 at "
              "fanout 8 water-fills %d interior nodes over 512 leaves)\n",
              kTreeReps, kTreeJobs, 1 + 8 + 64);
  std::printf("headline: depth-3 fanout-8 arbiter phase costs %.1fx the "
              "flat fanout-8 fill -- still microseconds against a "
              "multi-ms MPC phase\n",
              deep_us / std::max(flat_us, 1e-9));
  std::printf("JSON written to BENCH_hier_scaling.json\n");
  return 0;
}
