// Updatable Cholesky factorization for the active-set QP solver.
//
// The working-set method changes one constraint per iteration, which changes
// the free-variable Hessian block Q_FF by exactly one row/column. Instead of
// refactorizing from scratch (O(n^3) per iteration), this class maintains
// L with A = L L' under:
//
//   * append(col, diag): grow A by one symmetric row/column -- one forward
//     substitution, O(n^2);
//   * remove(k): delete row/column k -- drop L's row k and restore the
//     trailing block by a rank-1 Cholesky *update* (numerically stable,
//     unlike downdating), O((n-k)^2).
//
// Storage is ragged row-major lower-triangular (row i holds i+1 entries) so
// append is an O(1) push and remove is a single erase.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace perq::linalg {

class UpdatableCholesky {
 public:
  /// Empty (0 x 0) factorization; grow with append().
  UpdatableCholesky() = default;

  /// Full factorization of symmetric positive-definite `a`.
  /// Throws perq::invariant_error when a pivot is not safely positive.
  void reset(const Matrix& a);

  /// Discards the factorization (back to 0 x 0).
  void clear();

  std::size_t size() const { return rows_.size(); }

  /// Extends A to [A col; col' diag]. `col` holds the off-diagonal entries
  /// against the existing variables (size() entries, in order).
  /// Throws perq::invariant_error when the extended matrix is not positive
  /// definite (the new pivot underflows).
  void append(const Vector& col, double diag);

  /// Removes row/column k (0-based) from A.
  void remove(std::size_t k);

  /// Solves A x = b (forward + backward substitution, O(n^2)).
  Vector solve(const Vector& b) const;

 private:
  double pivot_floor(double diag) const;

  std::vector<std::vector<double>> rows_;  // L, row i has i+1 entries
};

}  // namespace perq::linalg
