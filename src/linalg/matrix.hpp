// Dense row-major matrix/vector types used by the system-identification,
// state-space, and QP modules.
//
// PERQ's linear algebra is deliberately small and dependency-free: the MPC
// problems are dense and modest in size (a few hundred variables), so a
// cache-friendly row-major matrix plus LU/Cholesky/QR (decompose.hpp) covers
// every need without an external BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace perq::linalg {

/// Column vector of doubles. Thin alias: PERQ treats std::vector<double> as
/// a mathematical vector and provides free-function arithmetic below.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all elements initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Constructs from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  /// Matrix with a single column equal to `v`.
  static Matrix column(const Vector& v);

  /// Matrix with a single row equal to `v`.
  static Matrix row_vector(const Vector& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool is_square() const { return rows_ == cols_; }

  /// Unchecked element access (hot paths).
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major).
  const std::vector<double>& data() const { return data_; }

  /// Extracts row r as a vector.
  Vector row(std::size_t r) const;

  /// Extracts column c as a vector.
  Vector col(std::size_t c) const;

  /// Writes `block` into this matrix with its top-left corner at (r0, c0).
  /// The block must fit.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& block);

  /// Returns the sub-matrix of size (nr x nc) at offset (r0, c0).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const;

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |element|.
  double max_abs() const;

  /// Human-readable rendering (for diagnostics and test failure messages).
  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double s);
Matrix operator*(double s, Matrix rhs);

/// Matrix product. Inner dimensions must agree.
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product. `a.cols() == x.size()`.
Vector operator*(const Matrix& a, const Vector& x);

/// True when shapes match and all elements differ by at most `tol`.
bool approx_equal(const Matrix& a, const Matrix& b, double tol);

// ---- Vector arithmetic -----------------------------------------------------

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);

/// Dot product. Sizes must agree.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// Max |element|; 0 for the empty vector.
double norm_inf(const Vector& v);

/// a + s*b, sizes must agree.
Vector axpy(const Vector& a, double s, const Vector& b);

/// True when sizes match and all elements differ by at most `tol`.
bool approx_equal(const Vector& a, const Vector& b, double tol);

}  // namespace perq::linalg
