#include "linalg/decompose.hpp"

#include <cmath>

#include "util/require.hpp"

namespace perq::linalg {

namespace {
constexpr double kSingularTol = 1e-12;
}

Lu::Lu(const Matrix& a) : n_(a.rows()), lu_(a), piv_(a.rows()) {
  PERQ_REQUIRE(a.is_square(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    PERQ_ASSERT(best > kSingularTol, "matrix is numerically singular");
    if (p != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(p, c), lu_(k, c));
      std::swap(piv_[p], piv_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(i, c) -= m * lu_(k, c);
    }
  }
}

Vector Lu::solve(const Vector& b) const {
  PERQ_REQUIRE(b.size() == n_, "rhs size mismatch in Lu::solve");
  Vector x(n_);
  // Apply permutation, then forward substitution with unit-lower L.
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Backward substitution with U.
  for (std::size_t ii = n_; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n_; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  PERQ_REQUIRE(b.rows() == n_, "rhs rows mismatch in Lu::solve");
  Matrix x(n_, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = solve(b.col(c));
    for (std::size_t r = 0; r < n_; ++r) x(r, c) = xc[r];
  }
  return x;
}

double Lu::determinant() const {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
  return d;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(n_)); }

Cholesky::Cholesky(const Matrix& a) : n_(a.rows()), l_(a.rows(), a.rows()) {
  PERQ_REQUIRE(a.is_square(), "Cholesky requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        PERQ_ASSERT(s > kSingularTol, "matrix is not positive definite");
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  PERQ_REQUIRE(b.size() == n_, "rhs size mismatch in Cholesky::solve");
  Vector y(b);
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= l_(i, j) * y[j];
    y[i] /= l_(i, i);
  }
  // Backward substitution L^T x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n_; ++j) y[ii] -= l_(j, ii) * y[j];
    y[ii] /= l_(ii, ii);
  }
  return y;
}

double Cholesky::log_determinant() const {
  double s = 0.0;
  for (std::size_t i = 0; i < n_; ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  PERQ_REQUIRE(a.rows() >= a.cols(), "least_squares requires rows >= cols");
  PERQ_REQUIRE(a.rows() == b.size(), "rhs size mismatch in least_squares");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix r(a);
  Vector qtb(b);

  // Householder QR: transform R in place, apply the same reflections to b.
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    PERQ_ASSERT(norm > kSingularTol, "rank-deficient least squares system");
    if (r(k, k) > 0) norm = -norm;

    Vector v(m - k);
    v[0] = r(k, k) - norm;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double x : v) vtv += x * x;
    PERQ_ASSERT(vtv > 0.0, "degenerate Householder reflector");

    r(k, k) = norm;
    for (std::size_t i = k + 1; i < m; ++i) r(i, k) = 0.0;

    for (std::size_t c = k + 1; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, c);
      const double coef = 2.0 * s / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= coef * v[i - k];
    }
    double sb = 0.0;
    for (std::size_t i = k; i < m; ++i) sb += v[i - k] * qtb[i];
    const double coefb = 2.0 * sb / vtv;
    for (std::size_t i = k; i < m; ++i) qtb[i] -= coefb * v[i - k];
  }

  // Back substitution on the upper-triangular leading n x n block.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    x[ii] = s / r(ii, ii);
  }
  return x;
}

Vector ridge_least_squares(const Matrix& a, const Vector& b, double lambda) {
  PERQ_REQUIRE(a.rows() == b.size(), "rhs size mismatch in ridge_least_squares");
  PERQ_REQUIRE(lambda > 0.0, "ridge parameter must be positive");
  const std::size_t n = a.cols();
  Matrix ata(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) s += a(r, i) * a(r, j);
      ata(i, j) = s;
      ata(j, i) = s;
    }
    ata(i, i) += lambda;
  }
  Vector atb(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < a.rows(); ++r) atb[i] += a(r, i) * b[r];
  }
  return Cholesky(ata).solve(atb);
}

Vector solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }

Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

}  // namespace perq::linalg
