#include "linalg/chol_update.hpp"

#include <cmath>

#include "util/require.hpp"

namespace perq::linalg {

double UpdatableCholesky::pivot_floor(double diag) const {
  // Relative floor against the incoming diagonal keeps the factor well
  // conditioned; the active-set caller treats a violation as "rebuild or
  // fall back", not as a hard error.
  return 1e-12 * (1.0 + std::abs(diag));
}

void UpdatableCholesky::reset(const Matrix& a) {
  PERQ_REQUIRE(a.is_square(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  rows_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    rows_[i].resize(i + 1);
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= rows_[i][k] * rows_[j][k];
      if (i == j) {
        PERQ_ASSERT(s > pivot_floor(a(i, i)), "matrix is not positive definite");
        rows_[i][j] = std::sqrt(s);
      } else {
        rows_[i][j] = s / rows_[j][j];
      }
    }
  }
}

void UpdatableCholesky::clear() { rows_.clear(); }

void UpdatableCholesky::append(const Vector& col, double diag) {
  const std::size_t n = size();
  PERQ_REQUIRE(col.size() == n, "column size mismatch");
  std::vector<double> row(n + 1);
  // Forward substitution: L y = col.
  double sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = col[i];
    for (std::size_t k = 0; k < i; ++k) s -= rows_[i][k] * row[k];
    row[i] = s / rows_[i][i];
    sq += row[i] * row[i];
  }
  const double d = diag - sq;
  PERQ_ASSERT(d > pivot_floor(diag), "appended matrix is not positive definite");
  row[n] = std::sqrt(d);
  rows_.push_back(std::move(row));
}

void UpdatableCholesky::remove(std::size_t k) {
  const std::size_t n = size();
  PERQ_REQUIRE(k < n, "remove index out of range");
  // Save the deleted column below the diagonal: u_i = L(i, k) for i > k.
  std::vector<double> u;
  u.reserve(n - k - 1);
  for (std::size_t i = k + 1; i < n; ++i) u.push_back(rows_[i][k]);
  // Drop row k and column k; the trailing block stays lower triangular but
  // now factors A22 - u u'. Restore A22 (which loses only row/col k of the
  // original) by a rank-1 *update* with u.
  rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(k));
  for (std::size_t i = k; i < rows_.size(); ++i) {
    rows_[i].erase(rows_[i].begin() + static_cast<std::ptrdiff_t>(k));
  }
  const std::size_t m = u.size();
  for (std::size_t j = 0; j < m; ++j) {
    auto& lj = rows_[k + j];
    const double a = lj[k + j];
    const double r = std::hypot(a, u[j]);
    PERQ_ASSERT(r > pivot_floor(a * a), "rank-1 update lost positive definiteness");
    const double c = r / a;
    const double s = u[j] / a;
    lj[k + j] = r;
    for (std::size_t i = j + 1; i < m; ++i) {
      auto& li = rows_[k + i];
      li[k + j] = (li[k + j] + s * u[i]) / c;
      u[i] = c * u[i] - s * li[k + j];
    }
  }
}

Vector UpdatableCholesky::solve(const Vector& b) const {
  const std::size_t n = size();
  PERQ_REQUIRE(b.size() == n, "rhs size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= rows_[i][k] * y[k];
    y[i] = s / rows_[i][i];
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= rows_[k][i] * y[k];
    y[i] = s / rows_[i][i];
  }
  return y;
}

}  // namespace perq::linalg
