// Dense factorizations: LU (partial pivoting), Cholesky, and Householder-QR
// least squares. These back the state-space algebra (matrix inverses in the
// MPC condensing), the active-set QP solver (KKT solves), and the ARX
// identification (least squares).
#pragma once

#include "linalg/matrix.hpp"

namespace perq::linalg {

/// LU factorization with partial pivoting: P*A = L*U.
///
/// Throws perq::precondition_error for non-square input and
/// perq::invariant_error when A is numerically singular.
class Lu {
 public:
  explicit Lu(const Matrix& a);

  /// Solves A x = b for one right-hand side.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-wise.
  Matrix solve(const Matrix& b) const;

  /// det(A) from the factorization.
  double determinant() const;

  /// A^{-1}; prefer solve() when possible.
  Matrix inverse() const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  Matrix lu_;                  // packed L (unit diagonal, below) and U (above)
  std::vector<std::size_t> piv_;
  int pivot_sign_ = 1;
};

/// Cholesky factorization A = L*L^T for symmetric positive-definite A.
///
/// Throws perq::invariant_error when A is not (numerically) SPD.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// The lower-triangular factor L.
  const Matrix& factor() const { return l_; }

  /// log(det(A)), useful for conditioning diagnostics.
  double log_determinant() const;

 private:
  std::size_t n_;
  Matrix l_;
};

/// Solves the least-squares problem min ||A x - b||_2 via Householder QR.
///
/// Requires A.rows() >= A.cols() and full column rank (throws
/// perq::invariant_error on rank deficiency).
Vector least_squares(const Matrix& a, const Vector& b);

/// Solves the ridge-regularized least-squares problem
/// min ||A x - b||^2 + lambda ||x||^2 via the normal equations and
/// Cholesky. Unlike least_squares(), this tolerates rank-deficient A
/// (lambda > 0 required). Used by system identification, where noise-free
/// or over-parameterized data would otherwise be exactly singular.
Vector ridge_least_squares(const Matrix& a, const Vector& b, double lambda);

/// Solves A x = b by LU (convenience wrapper).
Vector solve(const Matrix& a, const Vector& b);

/// A^{-1} by LU (convenience wrapper).
Matrix inverse(const Matrix& a);

}  // namespace perq::linalg
