// Eigenvalue machinery for the small dense matrices PERQ works with.
//
// The state-space models are order ~3 and the Gramians at most that size,
// so the implementations favor robustness and simplicity over asymptotics:
// general eigenvalues go through the characteristic polynomial
// (Faddeev-LeVerrier) and a Durand-Kerner root finder; symmetric matrices
// use the cyclic Jacobi method (which also yields eigenvectors).
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace perq::linalg {

/// All complex roots of the polynomial
/// c[0] + c[1] x + ... + c[n] x^n  (c[n] != 0, n >= 1),
/// found by Durand-Kerner iteration. Order of roots is unspecified.
std::vector<std::complex<double>> polynomial_roots(const Vector& coefficients);

/// Characteristic polynomial coefficients of a square matrix, lowest degree
/// first (so the result has size n+1 and element n equals 1), computed with
/// the Faddeev-LeVerrier recurrence.
Vector characteristic_polynomial(const Matrix& a);

/// All eigenvalues of a square matrix (via the characteristic polynomial;
/// intended for small n). Order unspecified.
std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// Spectral radius: max |eigenvalue|.
double spectral_radius(const Matrix& a);

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
struct SymmetricEigen {
  Vector values;   ///< eigenvalues, ascending
  Matrix vectors;  ///< column i is the eigenvector of values[i]
};

/// Requires a symmetric matrix (validated to a small tolerance).
SymmetricEigen symmetric_eigen(const Matrix& a);

/// Numerical rank of a symmetric positive-semidefinite matrix: the number
/// of eigenvalues above `tol * max_eigenvalue`.
std::size_t psd_rank(const Matrix& a, double tol = 1e-9);

/// Solves the discrete Lyapunov equation  X = A X A' + Q  by Kronecker
/// vectorization (exact for any stable A; O(n^6), fine for n <= ~12).
/// Requires spectral_radius(A) < 1.
Matrix solve_discrete_lyapunov(const Matrix& a, const Matrix& q);

}  // namespace perq::linalg
