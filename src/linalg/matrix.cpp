#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace perq::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    PERQ_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const Vector& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

Matrix Matrix::row_vector(const Vector& v) {
  Matrix m(1, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) m(0, i) = v[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  PERQ_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  PERQ_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  PERQ_REQUIRE(r < rows_, "row index out of range");
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  PERQ_REQUIRE(c < cols_, "column index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  PERQ_REQUIRE(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
               "set_block does not fit");
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      (*this)(r0 + r, c0 + c) = b(r, c);
    }
  }
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  PERQ_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_, "block out of range");
  Matrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) {
      out(r, c) = (*this)(r0 + r, c0 + c);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  PERQ_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  PERQ_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]";
    if (r + 1 < rows_) os << "\n";
  }
  os << "]";
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  PERQ_REQUIRE(a.cols() == b.rows(), "inner dimension mismatch in Matrix*Matrix");
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous for row-major storage.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  PERQ_REQUIRE(a.cols() == x.size(), "dimension mismatch in Matrix*Vector");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
    }
  }
  return true;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  PERQ_REQUIRE(lhs.size() == rhs.size(), "size mismatch in Vector+Vector");
  for (std::size_t i = 0; i < lhs.size(); ++i) lhs[i] += rhs[i];
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  PERQ_REQUIRE(lhs.size() == rhs.size(), "size mismatch in Vector-Vector");
  for (std::size_t i = 0; i < lhs.size(); ++i) lhs[i] -= rhs[i];
  return lhs;
}

Vector operator*(Vector v, double s) {
  for (double& x : v) x *= s;
  return v;
}

Vector operator*(double s, Vector v) { return std::move(v) * s; }

double dot(const Vector& a, const Vector& b) {
  PERQ_REQUIRE(a.size() == b.size(), "size mismatch in dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  PERQ_REQUIRE(a.size() == b.size(), "size mismatch in axpy");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace perq::linalg
