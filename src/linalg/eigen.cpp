#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/decompose.hpp"
#include "util/require.hpp"

namespace perq::linalg {

std::vector<std::complex<double>> polynomial_roots(const Vector& coefficients) {
  PERQ_REQUIRE(coefficients.size() >= 2, "polynomial must have degree >= 1");
  PERQ_REQUIRE(coefficients.back() != 0.0, "leading coefficient must be nonzero");
  const std::size_t n = coefficients.size() - 1;

  // Monic normalization.
  std::vector<std::complex<double>> c(n + 1);
  for (std::size_t i = 0; i <= n; ++i) c[i] = coefficients[i] / coefficients.back();

  // Durand-Kerner: start from distinct points on a circle whose radius
  // bounds the roots (Cauchy bound), iterate simultaneous corrections.
  double radius = 0.0;
  for (std::size_t i = 0; i < n; ++i) radius = std::max(radius, std::abs(c[i]));
  radius = 1.0 + radius;
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * 3.14159265358979323846 * static_cast<double>(i) /
                             static_cast<double>(n) +
                         0.4;  // avoid symmetry traps
    x[i] = std::polar(radius * 0.7, angle);
  }

  const auto eval = [&](std::complex<double> z) {
    std::complex<double> p = 1.0;  // monic
    for (std::size_t i = n; i-- > 0;) p = p * z + c[i];
    return p;
  };

  for (int iter = 0; iter < 500; ++iter) {
    double moved = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> denom = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) denom *= (x[i] - x[j]);
      }
      if (std::abs(denom) < 1e-300) continue;  // coincident guesses: skip
      const std::complex<double> delta = eval(x[i]) / denom;
      x[i] -= delta;
      moved = std::max(moved, std::abs(delta));
    }
    if (moved < 1e-13 * (1.0 + radius)) break;
  }
  return x;
}

Vector characteristic_polynomial(const Matrix& a) {
  PERQ_REQUIRE(a.is_square(), "characteristic polynomial needs a square matrix");
  const std::size_t n = a.rows();
  // Faddeev-LeVerrier: M_1 = A, c_{n-1} = -tr(M_1);
  // M_k = A (M_{k-1} + c_{n-k+1} I), c_{n-k} = -tr(M_k)/k.
  Vector coeffs(n + 1, 0.0);
  coeffs[n] = 1.0;
  Matrix m = a;
  for (std::size_t k = 1; k <= n; ++k) {
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += m(i, i);
    coeffs[n - k] = -trace / static_cast<double>(k);
    if (k == n) break;
    Matrix shifted = m;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += coeffs[n - k];
    m = a * shifted;
  }
  return coeffs;
}

std::vector<std::complex<double>> eigenvalues(const Matrix& a) {
  PERQ_REQUIRE(a.is_square(), "eigenvalues need a square matrix");
  if (a.rows() == 0) return {};
  if (a.rows() == 1) return {std::complex<double>(a(0, 0), 0.0)};
  return polynomial_roots(characteristic_polynomial(a));
}

double spectral_radius(const Matrix& a) {
  double r = 0.0;
  for (const auto& ev : eigenvalues(a)) r = std::max(r, std::abs(ev));
  return r;
}

SymmetricEigen symmetric_eigen(const Matrix& a) {
  PERQ_REQUIRE(a.is_square(), "symmetric_eigen needs a square matrix");
  const std::size_t n = a.rows();
  const double scale = std::max(1.0, a.max_abs());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      PERQ_REQUIRE(std::abs(a(i, j) - a(j, i)) <= 1e-9 * scale,
                   "matrix is not symmetric");
    }
  }

  Matrix d = a;
  Matrix v = Matrix::identity(n);
  // Cyclic Jacobi sweeps: annihilate each off-diagonal pair with a rotation.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    if (off < 1e-24 * scale * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double cos = 1.0 / std::sqrt(t * t + 1.0);
        const double sin = t * cos;
        // Apply the rotation to rows/columns p and q of D and columns of V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = cos * dkp - sin * dkq;
          d(k, q) = sin * dkp + cos * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = cos * dpk - sin * dqk;
          d(q, k) = sin * dpk + cos * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = cos * vkp - sin * vkq;
          v(k, q) = sin * vkp + cos * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d(x, x) < d(y, y); });
  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = d(order[i], order[i]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, i) = v(r, order[i]);
  }
  return out;
}

std::size_t psd_rank(const Matrix& a, double tol) {
  const auto eig = symmetric_eigen(a);
  if (eig.values.empty()) return 0;
  const double top = std::max(0.0, eig.values.back());
  if (top == 0.0) return 0;
  std::size_t rank = 0;
  for (double v : eig.values) {
    if (v > tol * top) ++rank;
  }
  return rank;
}

Matrix solve_discrete_lyapunov(const Matrix& a, const Matrix& q) {
  PERQ_REQUIRE(a.is_square() && q.is_square() && a.rows() == q.rows(),
               "Lyapunov operands must be square and conformant");
  PERQ_REQUIRE(spectral_radius(a) < 1.0 - 1e-9,
               "discrete Lyapunov requires a stable A");
  const std::size_t n = a.rows();
  // vec(X) = (I - A (x) A)^{-1} vec(Q), with (A (x) A) the Kronecker product.
  const std::size_t nn = n * n;
  Matrix sys(nn, nn);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t l = 0; l < n; ++l) {
          // Row (i + j*n) of vec equation; entry for X(k, l) at (k + l*n).
          sys(i + j * n, k + l * n) =
              (i == k && j == l ? 1.0 : 0.0) - a(i, k) * a(j, l);
        }
      }
    }
  }
  Vector rhs(nn);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) rhs[i + j * n] = q(i, j);
  }
  const Vector xv = Lu(sys).solve(rhs);
  Matrix x(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) x(i, j) = xv[i + j * n];
  }
  return x;
}

}  // namespace perq::linalg
