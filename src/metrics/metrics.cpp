#include "metrics/metrics.hpp"

#include <map>

#include "apps/catalog.hpp"

#include "util/require.hpp"
#include "util/stats.hpp"

namespace perq::metrics {

FairnessReport degradation_vs_baseline(const core::RunResult& candidate,
                                       const core::RunResult& fop_baseline) {
  std::map<int, double> base_runtime;
  for (const auto& j : fop_baseline.finished) base_runtime[j.id] = j.runtime_s;

  FairnessReport r;
  std::vector<double> degradations;
  for (const auto& j : candidate.finished) {
    const auto it = base_runtime.find(j.id);
    if (it == base_runtime.end() || it->second <= 0.0) continue;
    ++r.compared_jobs;
    const double deg = (j.runtime_s - it->second) / it->second * 100.0;
    r.max_degradation_pct = std::max(r.max_degradation_pct, deg);
    if (deg > 0.0) {
      ++r.degraded_jobs;
      degradations.push_back(deg);
    }
  }
  if (!degradations.empty()) r.mean_degradation_pct = mean(degradations);
  return r;
}

double throughput_improvement_pct(std::size_t completed, std::size_t baseline) {
  PERQ_REQUIRE(baseline > 0, "baseline throughput must be positive");
  return (static_cast<double>(completed) - static_cast<double>(baseline)) /
         static_cast<double>(baseline) * 100.0;
}

double jain_fairness_index(const std::vector<double>& xs) {
  PERQ_REQUIRE(!xs.empty(), "Jain index of an empty sample");
  double sum = 0.0;
  double sq = 0.0;
  for (double x : xs) {
    PERQ_REQUIRE(x >= 0.0, "Jain index requires non-negative values");
    sum += x;
    sq += x * x;
  }
  PERQ_REQUIRE(sum > 0.0, "Jain index requires a positive sum");
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

ClassInflation inflation_by_sensitivity(const core::RunResult& run) {
  const auto& catalog = apps::ecp_catalog();
  double sums[3] = {0.0, 0.0, 0.0};
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& j : run.finished) {
    PERQ_REQUIRE(j.app_index < catalog.size(), "app index out of range");
    PERQ_REQUIRE(j.runtime_ref_s > 0.0, "reference runtime must be positive");
    const auto cls = static_cast<int>(catalog[j.app_index].sensitivity());
    sums[cls] += j.runtime_s / j.runtime_ref_s;
    ++counts[cls];
  }
  ClassInflation c;
  if (counts[0] > 0) c.low = sums[0] / static_cast<double>(counts[0]);
  if (counts[1] > 0) c.medium = sums[1] / static_cast<double>(counts[1]);
  if (counts[2] > 0) c.high = sums[2] / static_cast<double>(counts[2]);
  return c;
}

std::vector<double> relative_performance(const core::RunResult& run) {
  std::vector<double> out;
  out.reserve(run.finished.size());
  for (const auto& j : run.finished) {
    if (j.runtime_s > 0.0) out.push_back(j.runtime_ref_s / j.runtime_s);
  }
  return out;
}

DecisionTimeSummary summarize_decision_times(const std::vector<double>& seconds) {
  DecisionTimeSummary s;
  s.decisions = seconds.size();
  if (seconds.empty()) return s;
  s.p50_s = percentile(seconds, 50.0);
  s.p80_s = percentile(seconds, 80.0);
  s.p99_s = percentile(seconds, 99.0);
  s.max_s = max_of(seconds);
  return s;
}

}  // namespace perq::metrics
