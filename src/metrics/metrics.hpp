// Objective metrics of the paper's evaluation (Sec. 3 "Objective Metrics").
//
//  * System job throughput: jobs completed over the experiment window,
//    reported as % improvement over the f = 1 worst-case-provisioned run.
//  * Mean performance degradation: mean runtime inflation versus the same
//    job under FOP at the same f -- computed over degraded jobs only
//    (jobs that run faster than under FOP are fairly treated by definition).
//  * Maximum performance degradation: the worst job's inflation.
#pragma once

#include "core/engine.hpp"

namespace perq::metrics {

struct FairnessReport {
  double mean_degradation_pct = 0.0;  ///< over degraded jobs only
  double max_degradation_pct = 0.0;   ///< over all compared jobs
  std::size_t degraded_jobs = 0;
  std::size_t compared_jobs = 0;
};

/// Per-job runtime comparison of `candidate` against the FOP run of the
/// same trace (matched by job id; only jobs finished in both runs compare).
FairnessReport degradation_vs_baseline(const core::RunResult& candidate,
                                       const core::RunResult& fop_baseline);

/// Throughput improvement of `completed` jobs over a baseline count, in
/// percent. Baseline must be non-zero.
double throughput_improvement_pct(std::size_t completed, std::size_t baseline);

/// Jain's fairness index over a set of non-negative allocations/outcomes:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly equal. Applied to
/// per-job relative performance (runtime_ref / runtime) it summarizes how
/// evenly a policy treats jobs. Requires a non-empty sample with a positive
/// sum.
double jain_fairness_index(const std::vector<double>& xs);

/// Per-sensitivity-class mean runtime inflation (runtime / runtime_ref) of
/// the finished jobs of a run -- the class-level view behind the paper's
/// aggregate fairness numbers. Classes without finished jobs report 0.
struct ClassInflation {
  double low = 0.0;
  double medium = 0.0;
  double high = 0.0;
};

ClassInflation inflation_by_sensitivity(const core::RunResult& run);

/// Relative performance of every finished job (runtime_ref / runtime),
/// suitable for jain_fairness_index().
std::vector<double> relative_performance(const core::RunResult& run);

/// CDF-style summary of controller decision latencies (Fig. 13).
struct DecisionTimeSummary {
  double p50_s = 0.0;
  double p80_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
  std::size_t decisions = 0;
};

DecisionTimeSummary summarize_decision_times(const std::vector<double>& seconds);

}  // namespace perq::metrics
