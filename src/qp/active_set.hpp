// Primal active-set solver for PERQ's strictly convex QP.
//
// This is the production solver for the MPC step: the problems are small and
// dense, warm starts from the previous control interval land near the optimal
// active set, so convergence typically takes a handful of iterations (the
// paper reports sub-0.5 s decision times; see bench_fig13_overhead).
#pragma once

#include "qp/problem.hpp"
#include "qp/structured.hpp"

namespace perq::qp {

struct AsOptions {
  std::size_t max_iterations = 0;  ///< 0 => 50 * (n + #budgets)
  double tolerance = 1e-9;         ///< multiplier / step tolerance
};

/// Solves `p` starting from `x0` (projected to feasibility first).
/// Throws perq::invariant_error if the working-set linear algebra becomes
/// singular (the solve() facade falls back to projected gradient then).
///
/// This dense path rebuilds and LU-factors the full KKT system of the free
/// variables every iteration; it is kept as the debug/baseline adapter the
/// structured path is validated (and benchmarked) against.
QpResult solve_active_set(const QpProblem& p, const linalg::Vector& x0,
                          const AsOptions& opts = {});

/// Structured overload. Never materializes Q: gradients are matrix-free,
/// the free-variable block Q_FF is assembled on demand from the structured
/// terms, and its Cholesky factorization is reused across working-set
/// changes (one append/remove per iteration, O(nf^2)) instead of being
/// refactorized (O(nf^3)). Budget-row multipliers come from a small Schur
/// complement against the maintained factor.
QpResult solve_active_set(const StructuredQp& p, const linalg::Vector& x0,
                          const AsOptions& opts = {});

/// Caller-facing knobs of the solve() facades. The default (0) keeps each
/// solver's own iteration budget; a small explicit cap starves both rungs of
/// the ladder, which is how the controller's degradation path (active set ->
/// projected gradient -> equal share, see core::PerqPolicy) is exercised
/// deterministically in tests.
struct SolveOptions {
  std::size_t max_iterations = 0;  ///< per-solver cap; 0 = solver defaults
};

/// Production entry point: active set with warm start, KKT-verified, with a
/// projected-gradient fallback when the active set fails to certify
/// optimality. This mirrors how PERQ uses CVXOPT in the paper: one reliable
/// QP solve per control interval.
QpResult solve(const QpProblem& p, const linalg::Vector& warm_start = {},
               const SolveOptions& opts = {});

/// Structured facade: the incrementally-factorized active set for problems
/// up to a size where direct factorization pays off, matrix-free FISTA
/// beyond that (and as the fallback when the active set cannot certify
/// optimality).
QpResult solve(const StructuredQp& p, const linalg::Vector& warm_start = {},
               const SolveOptions& opts = {});

}  // namespace perq::qp
