// Primal active-set solver for PERQ's strictly convex QP.
//
// This is the production solver for the MPC step: the problems are small and
// dense, warm starts from the previous control interval land near the optimal
// active set, so convergence typically takes a handful of iterations (the
// paper reports sub-0.5 s decision times; see bench_fig13_overhead).
#pragma once

#include "qp/problem.hpp"

namespace perq::qp {

struct AsOptions {
  std::size_t max_iterations = 0;  ///< 0 => 50 * (n + #budgets)
  double tolerance = 1e-9;         ///< multiplier / step tolerance
};

/// Solves `p` starting from `x0` (projected to feasibility first).
/// Throws perq::invariant_error if the working-set linear algebra becomes
/// singular (the solve() facade falls back to projected gradient then).
QpResult solve_active_set(const QpProblem& p, const linalg::Vector& x0,
                          const AsOptions& opts = {});

/// Production entry point: active set with warm start, KKT-verified, with a
/// projected-gradient fallback when the active set fails to certify
/// optimality. This mirrors how PERQ uses CVXOPT in the paper: one reliable
/// QP solve per control interval.
QpResult solve(const QpProblem& p, const linalg::Vector& warm_start = {});

}  // namespace perq::qp
