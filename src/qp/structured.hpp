// Structure-exploiting representation of PERQ's MPC quadratic program.
//
// The MPC objective is a sum of exactly three term shapes over the stacked
// caps x (nj jobs x m horizon steps):
//
//   1. a diagonal ridge            r * x_i^2                  (strict convexity)
//   2. sparse weighted residuals   w * (b - a' x)^2           (job / system
//      tracking rows; `a` touches only the caps that influence one
//      prediction step)
//   3. banded Delta-P terms        w * (x_a - x_b)^2  and
//                                  w * (x_i - p0)^2           (cap slewing)
//
// Materializing the dense Hessian from these terms costs O((nj*m)^2) memory
// and O(nnz^2) scatter per residual row; every downstream dense operation
// (gradients, KKT factorizations) then pays O(n^2)..O(n^3). StructuredQp
// keeps the terms themselves and provides
//
//   * matrix-free products `qx` / `gradient` in O(total nnz),
//   * on-demand assembly of the free-variable Hessian block Q_FF (and single
//     Hessian columns) for the active-set solver, and
//   * a dense adapter `to_dense()` used by tests and the debug/baseline
//     solver path to prove exact equivalence with the legacy pipeline.
//
// Conventions match QpProblem: the objective is 1/2 x'Qx + c'x where a
// residual contributes 2w*aa' to Q and -2wb*a to c (constant terms dropped),
// so structured and dense solves agree exactly on objective values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "qp/problem.hpp"

namespace perq::qp {

class StructuredQp {
 public:
  /// n-variable problem; bounds default to (-inf-ish, +inf-ish) and must be
  /// narrowed by the caller before solving.
  explicit StructuredQp(std::size_t n);

  std::size_t size() const { return n_; }

  // ---- term builders (objective contributions) ----------------------------

  /// Adds r * x_i^2 for every variable (Q diagonal += 2r). r > 0 required.
  void add_ridge(double r);

  /// Adds w * (b - sum_k coef[k] * x[idx[k]])^2. Indices must be in range
  /// and unique within the row; w >= 0 (w == 0 rows are dropped).
  void add_residual(const std::vector<std::size_t>& idx,
                    const std::vector<double>& coef, double b, double w);

  /// Adds w * (x_i - target)^2 (Delta-P anchor at the first horizon step).
  void add_anchor(std::size_t i, double target, double w);

  /// Adds w * (x_a - x_b)^2 (Delta-P coupling between adjacent steps).
  void add_smooth(std::size_t a, std::size_t b, double w);

  // ---- constraints (same shapes as QpProblem) -----------------------------

  linalg::Vector lb;
  linalg::Vector ub;
  std::vector<BudgetConstraint> budgets;

  /// Validates shapes and budget rows (mirrors QpProblem::validate).
  void validate() const;

  // ---- matrix-free operations ---------------------------------------------

  /// out = Q x (out is resized/overwritten). O(total term nnz).
  void qx(const linalg::Vector& x, linalg::Vector& out) const;

  /// Gradient Qx + c.
  linalg::Vector gradient(const linalg::Vector& x) const;

  /// Objective 1/2 x'Qx + c'x (same constant-dropping convention as the
  /// dense QpProblem, so values are directly comparable).
  double objective(const linalg::Vector& x) const;

  /// Max constraint violation at x (0 when feasible).
  double infeasibility(const linalg::Vector& x) const;

  /// True when all budget rows touch pairwise-disjoint variable sets.
  bool budgets_disjoint() const;

  /// The linear term c accumulated from the residual/anchor targets.
  const linalg::Vector& linear_term() const { return c_; }

  /// Gershgorin upper bound on the largest eigenvalue of Q: max row sum of
  /// |Q| computed term-by-term in O(total nnz), without forming Q. Used as
  /// a safe Lipschitz constant for the projected-gradient step size.
  double gershgorin_bound() const;

  /// The diagonal of Q, assembled term-by-term in O(total nnz). Strictly
  /// positive whenever a ridge is present.
  linalg::Vector hessian_diagonal() const;

  /// The same problem expressed in scaled variables z = diag(s) x (all
  /// s_i > 0): Q_z = S^-1 Q S^-1, c_z = S^-1 c, bounds multiplied by s and
  /// budget weights divided by s, so objective values and feasibility are
  /// preserved under x = z / s. With s_i = sqrt(Q_ii) this is Jacobi
  /// preconditioning: it equalizes the curvature spread that heterogeneous
  /// per-job estimator slopes induce, which is what dominates FISTA's
  /// iteration count on large MPC instances.
  StructuredQp jacobi_scaled(const linalg::Vector& s) const;

  // ---- structure access for the active-set solver -------------------------

  /// Single Hessian entry Q(i, j). O(rows touching i); intended for tests
  /// and diagnostics, not hot loops.
  double q_entry(std::size_t i, std::size_t j) const;

  /// Fills `qff` (resized to nf x nf) with Q restricted to `free_idx`.
  /// `pos[v]` must map each variable to its position in free_idx, or
  /// SIZE_MAX when fixed. Cost is O(sum over terms of free-nnz^2), which for
  /// the MPC form is far below one dense n^2 sweep.
  void assemble_free_block(const std::vector<std::size_t>& free_idx,
                           const std::vector<std::size_t>& pos,
                           linalg::Matrix& qff) const;

  /// Extracts the Hessian column for variable v restricted to the current
  /// free set: col[pos[f]] = Q(f, v) for free f != v, and diag = Q(v, v).
  /// `col` must be pre-sized to the free count and zeroed by the caller.
  void hessian_column(std::size_t v, const std::vector<std::size_t>& pos,
                      linalg::Vector& col, double& diag) const;

  // ---- dense adapter ------------------------------------------------------

  /// Materializes the equivalent dense QpProblem (debug/baseline path).
  QpProblem to_dense() const;

 private:
  struct Residual {
    std::vector<std::size_t> idx;
    std::vector<double> coef;
    double w = 0.0;  // stored as 2*w (the Q-convention factor)
  };
  struct Pair {
    std::size_t a = 0;
    std::size_t b = 0;
    double w = 0.0;  // stored as 2*w
  };

  std::size_t n_;
  linalg::Vector diag_;  // accumulated diagonal (ridge + anchors), Q units
  linalg::Vector c_;     // linear term
  std::vector<Residual> rows_;
  std::vector<Pair> pairs_;
  // Per-variable adjacency: (row id, position of the variable inside the
  // row) and pair ids, for column extraction and q_entry.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> var_rows_;
  std::vector<std::vector<std::uint32_t>> var_pairs_;
};

/// KKT residual diagnostics against the structured form (same definition as
/// the dense overload in problem.hpp).
KktResidual kkt_residual(const StructuredQp& p, const QpResult& r);

}  // namespace perq::qp
