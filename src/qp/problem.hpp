// Convex quadratic-program definition for PERQ's MPC step.
//
// Every control interval, PERQ solves (paper Eq. 4)
//
//     min_x  1/2 x' Q x + c' x
//     s.t.   lb <= x <= ub              (node power-cap limits)
//            w_k' x <= b_k  for each k  (system power budget, one row per
//                                        prediction-horizon step)
//
// Q is symmetric positive definite by construction (tracking weights plus a
// ridge from the Delta-P penalty), so the problem has a unique minimizer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace perq::qp {

/// One linear inequality `sum_i weight[i] * x[index[i]] <= bound`.
/// In PERQ this is the system power budget at one MPC horizon step; the
/// weights are the node counts of each job.
struct BudgetConstraint {
  std::vector<std::size_t> index;  ///< variable indices with nonzero weight
  linalg::Vector weight;           ///< strictly positive weights, same length
  double bound = 0.0;              ///< right-hand side
};

/// The full QP. See file comment for the mathematical form.
struct QpProblem {
  linalg::Matrix Q;    ///< symmetric positive definite Hessian (n x n)
  linalg::Vector c;    ///< linear term (n)
  linalg::Vector lb;   ///< elementwise lower bounds (n)
  linalg::Vector ub;   ///< elementwise upper bounds (n)
  std::vector<BudgetConstraint> budgets;  ///< linear inequality rows

  std::size_t size() const { return c.size(); }

  /// Validates shapes, bound ordering, weight positivity, and (cheaply)
  /// Hessian symmetry. Throws perq::precondition_error on violation.
  void validate() const;

  /// Objective value at x.
  double objective(const linalg::Vector& x) const;

  /// Gradient Qx + c.
  linalg::Vector gradient(const linalg::Vector& x) const;

  /// Max constraint violation at x (0 when feasible).
  double infeasibility(const linalg::Vector& x) const;

  /// True when all budget rows touch pairwise-disjoint variable sets, in
  /// which case projection onto the feasible set is exact and cheap.
  bool budgets_disjoint() const;
};

/// Why a solver returned.
enum class SolveStatus {
  kOptimal,        ///< KKT conditions satisfied to tolerance
  kMaxIterations,  ///< iteration limit hit; x is best iterate (feasible)
  kInfeasible,     ///< no feasible point exists (box vs budgets conflict)
};

/// Converts a SolveStatus to a human-readable label.
std::string to_string(SolveStatus s);

/// Solver output.
struct QpResult {
  linalg::Vector x;            ///< primal solution
  linalg::Vector bound_mult;   ///< multipliers for active box bounds (>= 0)
  linalg::Vector budget_mult;  ///< multipliers for budget rows (>= 0)
  SolveStatus status = SolveStatus::kOptimal;
  std::size_t iterations = 0;
  double objective = 0.0;
};

/// Residual diagnostics of the KKT optimality system at (x, multipliers).
struct KktResidual {
  double stationarity = 0.0;     ///< ||Qx + c + A' mult - bound terms||_inf
  double primal = 0.0;           ///< max constraint violation
  double complementarity = 0.0;  ///< max |mult * slack|
  double dual = 0.0;             ///< most negative multiplier (as a positive number)

  double max() const;
};

/// Evaluates KKT residuals for a candidate solution. Used by tests and by
/// the solve() facade to decide whether the active-set result is trustworthy.
KktResidual kkt_residual(const QpProblem& p, const QpResult& r);

}  // namespace perq::qp
