#include "qp/problem.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "qp/kkt_impl.hpp"
#include "util/require.hpp"

namespace perq::qp {

using linalg::operator+;
using linalg::operator-;
using linalg::operator*;

void QpProblem::validate() const {
  const std::size_t n = c.size();
  PERQ_REQUIRE(Q.rows() == n && Q.cols() == n, "Q shape mismatch");
  PERQ_REQUIRE(lb.size() == n && ub.size() == n, "bound size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    PERQ_REQUIRE(lb[i] <= ub[i], "lb > ub at index " + std::to_string(i));
  }
  // Spot-check symmetry (full check is O(n^2), still cheap at our sizes).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      PERQ_REQUIRE(std::abs(Q(i, j) - Q(j, i)) <= 1e-9 * (1.0 + std::abs(Q(i, j))),
                   "Q is not symmetric");
    }
  }
  for (const auto& bc : budgets) {
    PERQ_REQUIRE(bc.index.size() == bc.weight.size(), "budget index/weight mismatch");
    PERQ_REQUIRE(!bc.index.empty(), "empty budget constraint");
    for (std::size_t k = 0; k < bc.index.size(); ++k) {
      PERQ_REQUIRE(bc.index[k] < n, "budget index out of range");
      PERQ_REQUIRE(bc.weight[k] > 0.0, "budget weights must be positive");
    }
  }
}

double QpProblem::objective(const linalg::Vector& x) const {
  PERQ_REQUIRE(x.size() == size(), "x size mismatch");
  return 0.5 * linalg::dot(x, Q * x) + linalg::dot(c, x);
}

linalg::Vector QpProblem::gradient(const linalg::Vector& x) const {
  PERQ_REQUIRE(x.size() == size(), "x size mismatch");
  return (Q * x) + c;
}

double QpProblem::infeasibility(const linalg::Vector& x) const {
  PERQ_REQUIRE(x.size() == size(), "x size mismatch");
  double v = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    v = std::max(v, lb[i] - x[i]);
    v = std::max(v, x[i] - ub[i]);
  }
  for (const auto& bc : budgets) {
    double s = 0.0;
    for (std::size_t k = 0; k < bc.index.size(); ++k) s += bc.weight[k] * x[bc.index[k]];
    v = std::max(v, s - bc.bound);
  }
  return std::max(v, 0.0);
}

bool QpProblem::budgets_disjoint() const {
  std::set<std::size_t> seen;
  for (const auto& bc : budgets) {
    for (std::size_t idx : bc.index) {
      if (!seen.insert(idx).second) return false;
    }
  }
  return true;
}

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kMaxIterations: return "max-iterations";
    case SolveStatus::kInfeasible: return "infeasible";
  }
  return "unknown";
}

double KktResidual::max() const {
  return std::max({stationarity, primal, complementarity, dual});
}

KktResidual kkt_residual(const QpProblem& p, const QpResult& r) {
  return detail::kkt_residual_impl(p, r);
}

}  // namespace perq::qp
