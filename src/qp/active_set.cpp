#include "qp/active_set.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/decompose.hpp"
#include "qp/projected_gradient.hpp"
#include "qp/projection.hpp"
#include "util/require.hpp"

namespace perq::qp {

using linalg::operator+;
using linalg::operator-;
using linalg::operator*;

namespace {

enum class BoundState { kFree, kAtLower, kAtUpper };

struct WorkingSet {
  std::vector<BoundState> bound;  // per variable
  std::vector<bool> budget;       // per budget row
};

/// Solves the equality-constrained subproblem on the free variables:
///   [Q_FF  W'] [d_F]   [-g_F]
///   [W     0 ] [nu ] = [  0 ]
/// Budget rows with no free support are skipped (their nu stays 0).
/// Returns the full-length direction d (zeros on fixed variables) and the
/// multipliers of the *included* active rows via `nu_out` (indexed by budget
/// row; excluded rows get 0).
linalg::Vector solve_eqp(const QpProblem& p, const WorkingSet& ws,
                         const linalg::Vector& g, linalg::Vector& nu_out) {
  const std::size_t n = p.size();
  std::vector<std::size_t> free_idx;
  free_idx.reserve(n);
  std::vector<std::size_t> pos(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.bound[i] == BoundState::kFree) {
      pos[i] = free_idx.size();
      free_idx.push_back(i);
    }
  }
  nu_out.assign(p.budgets.size(), 0.0);
  linalg::Vector d(n, 0.0);
  if (free_idx.empty()) return d;

  std::vector<std::size_t> rows;  // active budget rows with free support
  for (std::size_t k = 0; k < p.budgets.size(); ++k) {
    if (!ws.budget[k]) continue;
    const auto& bc = p.budgets[k];
    bool has_free = false;
    for (std::size_t idx : bc.index) {
      if (pos[idx] != SIZE_MAX) {
        has_free = true;
        break;
      }
    }
    if (has_free) rows.push_back(k);
  }

  const std::size_t nf = free_idx.size();
  const std::size_t ne = rows.size();
  linalg::Matrix kkt(nf + ne, nf + ne);
  linalg::Vector rhs(nf + ne, 0.0);
  for (std::size_t a = 0; a < nf; ++a) {
    for (std::size_t b = 0; b < nf; ++b) {
      kkt(a, b) = p.Q(free_idx[a], free_idx[b]);
    }
    rhs[a] = -g[free_idx[a]];
  }
  for (std::size_t e = 0; e < ne; ++e) {
    const auto& bc = p.budgets[rows[e]];
    for (std::size_t j = 0; j < bc.index.size(); ++j) {
      const std::size_t fp = pos[bc.index[j]];
      if (fp == SIZE_MAX) continue;
      kkt(nf + e, fp) = bc.weight[j];
      kkt(fp, nf + e) = bc.weight[j];
    }
  }

  const linalg::Vector sol = linalg::Lu(kkt).solve(rhs);
  for (std::size_t a = 0; a < nf; ++a) d[free_idx[a]] = sol[a];
  for (std::size_t e = 0; e < ne; ++e) nu_out[rows[e]] = sol[nf + e];
  return d;
}

}  // namespace

QpResult solve_active_set(const QpProblem& p, const linalg::Vector& x0,
                          const AsOptions& opts) {
  p.validate();
  const std::size_t n = p.size();
  const std::size_t nb = p.budgets.size();
  QpResult r;
  if (!is_feasible_problem(p)) {
    r.status = SolveStatus::kInfeasible;
    r.x.assign(n, 0.0);
    r.bound_mult.assign(n, 0.0);
    r.budget_mult.assign(nb, 0.0);
    return r;
  }

  const double tol = opts.tolerance;
  const std::size_t max_it = opts.max_iterations > 0 ? opts.max_iterations
                                                     : 50 * (n + nb) + 100;

  linalg::Vector x = x0.size() == n ? x0 : linalg::Vector(n, 0.0);
  project_feasible(p, x);

  // Initialize the working set from the geometry of the starting point.
  WorkingSet ws{std::vector<BoundState>(n, BoundState::kFree),
                std::vector<bool>(nb, false)};
  for (std::size_t i = 0; i < n; ++i) {
    if (p.ub[i] - p.lb[i] < tol) {
      ws.bound[i] = BoundState::kAtLower;  // fixed variable
    } else if (x[i] <= p.lb[i] + tol) {
      ws.bound[i] = BoundState::kAtLower;
      x[i] = p.lb[i];
    } else if (x[i] >= p.ub[i] - tol) {
      ws.bound[i] = BoundState::kAtUpper;
      x[i] = p.ub[i];
    }
  }
  for (std::size_t k = 0; k < nb; ++k) {
    const auto& bc = p.budgets[k];
    double s = 0.0;
    for (std::size_t j = 0; j < bc.index.size(); ++j) s += bc.weight[j] * x[bc.index[j]];
    if (s >= bc.bound - tol * (1.0 + std::abs(bc.bound))) ws.budget[k] = true;
  }

  linalg::Vector nu(nb, 0.0);
  r.status = SolveStatus::kMaxIterations;
  for (std::size_t it = 0; it < max_it; ++it) {
    r.iterations = it + 1;
    const linalg::Vector g = p.gradient(x);
    const linalg::Vector d = solve_eqp(p, ws, g, nu);

    if (linalg::norm_inf(d) <= tol) {
      // Candidate optimum for the current working set: check multipliers.
      // Lagrangian stationarity: g_i + sum_k nu_k w_ki + mu_hi - mu_lo = 0.
      double worst = -tol;
      enum class DropKind { kNone, kBound, kBudget } drop_kind = DropKind::kNone;
      std::size_t drop_idx = 0;

      for (std::size_t k = 0; k < nb; ++k) {
        if (ws.budget[k] && nu[k] < worst) {
          worst = nu[k];
          drop_kind = DropKind::kBudget;
          drop_idx = k;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (ws.bound[i] == BoundState::kFree) continue;
        if (p.ub[i] - p.lb[i] < tol) continue;  // genuinely fixed: never drop
        double gi = g[i];
        for (std::size_t k = 0; k < nb; ++k) {
          if (!ws.budget[k] || nu[k] == 0.0) continue;
          const auto& bc = p.budgets[k];
          for (std::size_t j = 0; j < bc.index.size(); ++j) {
            if (bc.index[j] == i) gi += nu[k] * bc.weight[j];
          }
        }
        const double mu = ws.bound[i] == BoundState::kAtLower ? gi : -gi;
        if (mu < worst) {
          worst = mu;
          drop_kind = DropKind::kBound;
          drop_idx = i;
        }
      }

      if (drop_kind == DropKind::kNone) {
        r.status = SolveStatus::kOptimal;
        break;
      }
      if (drop_kind == DropKind::kBound) {
        ws.bound[drop_idx] = BoundState::kFree;
      } else {
        ws.budget[drop_idx] = false;
      }
      continue;
    }

    // Line search to the nearest blocking constraint.
    double alpha = 1.0;
    enum class BlockKind { kNone, kLower, kUpper, kBudget } block = BlockKind::kNone;
    std::size_t block_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.bound[i] != BoundState::kFree || d[i] == 0.0) continue;
      if (d[i] > 0.0) {
        const double a = (p.ub[i] - x[i]) / d[i];
        if (a < alpha) {
          alpha = a;
          block = BlockKind::kUpper;
          block_idx = i;
        }
      } else {
        const double a = (p.lb[i] - x[i]) / d[i];
        if (a < alpha) {
          alpha = a;
          block = BlockKind::kLower;
          block_idx = i;
        }
      }
    }
    for (std::size_t k = 0; k < nb; ++k) {
      if (ws.budget[k]) continue;
      const auto& bc = p.budgets[k];
      double wd = 0.0;
      double wx = 0.0;
      for (std::size_t j = 0; j < bc.index.size(); ++j) {
        wd += bc.weight[j] * d[bc.index[j]];
        wx += bc.weight[j] * x[bc.index[j]];
      }
      if (wd > tol) {
        const double a = (bc.bound - wx) / wd;
        if (a < alpha) {
          alpha = a;
          block = BlockKind::kBudget;
          block_idx = k;
        }
      }
    }

    alpha = std::max(alpha, 0.0);
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * d[i];
    switch (block) {
      case BlockKind::kLower:
        ws.bound[block_idx] = BoundState::kAtLower;
        x[block_idx] = p.lb[block_idx];
        break;
      case BlockKind::kUpper:
        ws.bound[block_idx] = BoundState::kAtUpper;
        x[block_idx] = p.ub[block_idx];
        break;
      case BlockKind::kBudget:
        ws.budget[block_idx] = true;
        break;
      case BlockKind::kNone:
        break;
    }
  }

  r.x = x;
  r.objective = p.objective(x);
  // Export multipliers in the result's convention (non-negative).
  r.budget_mult.assign(nb, 0.0);
  for (std::size_t k = 0; k < nb; ++k) {
    if (ws.budget[k]) r.budget_mult[k] = std::max(0.0, nu[k]);
  }
  r.bound_mult.assign(n, 0.0);
  const linalg::Vector g = p.gradient(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.bound[i] == BoundState::kFree) continue;
    double gi = g[i];
    for (std::size_t k = 0; k < nb; ++k) {
      if (r.budget_mult[k] == 0.0) continue;
      const auto& bc = p.budgets[k];
      for (std::size_t j = 0; j < bc.index.size(); ++j) {
        if (bc.index[j] == i) gi += r.budget_mult[k] * bc.weight[j];
      }
    }
    const double mu = ws.bound[i] == BoundState::kAtLower ? gi : -gi;
    if (mu > 0.0) r.bound_mult[i] = mu;
  }
  return r;
}

QpResult solve(const QpProblem& p, const linalg::Vector& warm_start) {
  constexpr double kAcceptTol = 1e-5;
  try {
    QpResult r = solve_active_set(p, warm_start);
    if (r.status == SolveStatus::kInfeasible) return r;
    if (r.status == SolveStatus::kOptimal &&
        kkt_residual(p, r).max() <= kAcceptTol * (1.0 + linalg::norm_inf(p.c))) {
      return r;
    }
  } catch (const invariant_error&) {
    // Singular working-set system: fall through to the always-convergent
    // projected-gradient solver.
  }
  return solve_projected_gradient(p, warm_start);
}

}  // namespace perq::qp
