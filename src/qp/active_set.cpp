#include "qp/active_set.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/chol_update.hpp"
#include "linalg/decompose.hpp"
#include "qp/projected_gradient.hpp"
#include "qp/projection.hpp"
#include "util/require.hpp"

namespace perq::qp {

using linalg::operator+;
using linalg::operator-;
using linalg::operator*;

namespace {

enum class BoundState { kFree, kAtLower, kAtUpper };

struct WorkingSet {
  std::vector<BoundState> bound;  // per variable
  std::vector<bool> budget;       // per budget row
};

/// Solves the equality-constrained subproblem on the free variables:
///   [Q_FF  W'] [d_F]   [-g_F]
///   [W     0 ] [nu ] = [  0 ]
/// Budget rows with no free support are skipped (their nu stays 0).
/// Returns the full-length direction d (zeros on fixed variables) and the
/// multipliers of the *included* active rows via `nu_out` (indexed by budget
/// row; excluded rows get 0).
linalg::Vector solve_eqp(const QpProblem& p, const WorkingSet& ws,
                         const linalg::Vector& g, linalg::Vector& nu_out) {
  const std::size_t n = p.size();
  std::vector<std::size_t> free_idx;
  free_idx.reserve(n);
  std::vector<std::size_t> pos(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.bound[i] == BoundState::kFree) {
      pos[i] = free_idx.size();
      free_idx.push_back(i);
    }
  }
  nu_out.assign(p.budgets.size(), 0.0);
  linalg::Vector d(n, 0.0);
  if (free_idx.empty()) return d;

  std::vector<std::size_t> rows;  // active budget rows with free support
  for (std::size_t k = 0; k < p.budgets.size(); ++k) {
    if (!ws.budget[k]) continue;
    const auto& bc = p.budgets[k];
    bool has_free = false;
    for (std::size_t idx : bc.index) {
      if (pos[idx] != SIZE_MAX) {
        has_free = true;
        break;
      }
    }
    if (has_free) rows.push_back(k);
  }

  const std::size_t nf = free_idx.size();
  const std::size_t ne = rows.size();
  linalg::Matrix kkt(nf + ne, nf + ne);
  linalg::Vector rhs(nf + ne, 0.0);
  for (std::size_t a = 0; a < nf; ++a) {
    for (std::size_t b = 0; b < nf; ++b) {
      kkt(a, b) = p.Q(free_idx[a], free_idx[b]);
    }
    rhs[a] = -g[free_idx[a]];
  }
  for (std::size_t e = 0; e < ne; ++e) {
    const auto& bc = p.budgets[rows[e]];
    for (std::size_t j = 0; j < bc.index.size(); ++j) {
      const std::size_t fp = pos[bc.index[j]];
      if (fp == SIZE_MAX) continue;
      kkt(nf + e, fp) = bc.weight[j];
      kkt(fp, nf + e) = bc.weight[j];
    }
  }

  const linalg::Vector sol = linalg::Lu(kkt).solve(rhs);
  for (std::size_t a = 0; a < nf; ++a) d[free_idx[a]] = sol[a];
  for (std::size_t e = 0; e < ne; ++e) nu_out[rows[e]] = sol[nf + e];
  return d;
}

}  // namespace

QpResult solve_active_set(const QpProblem& p, const linalg::Vector& x0,
                          const AsOptions& opts) {
  p.validate();
  const std::size_t n = p.size();
  const std::size_t nb = p.budgets.size();
  QpResult r;
  if (!is_feasible_problem(p)) {
    r.status = SolveStatus::kInfeasible;
    r.x.assign(n, 0.0);
    r.bound_mult.assign(n, 0.0);
    r.budget_mult.assign(nb, 0.0);
    return r;
  }

  const double tol = opts.tolerance;
  const std::size_t max_it = opts.max_iterations > 0 ? opts.max_iterations
                                                     : 50 * (n + nb) + 100;

  linalg::Vector x = x0.size() == n ? x0 : linalg::Vector(n, 0.0);
  project_feasible(p, x);

  // Initialize the working set from the geometry of the starting point.
  WorkingSet ws{std::vector<BoundState>(n, BoundState::kFree),
                std::vector<bool>(nb, false)};
  for (std::size_t i = 0; i < n; ++i) {
    if (p.ub[i] - p.lb[i] < tol) {
      ws.bound[i] = BoundState::kAtLower;  // fixed variable
    } else if (x[i] <= p.lb[i] + tol) {
      ws.bound[i] = BoundState::kAtLower;
      x[i] = p.lb[i];
    } else if (x[i] >= p.ub[i] - tol) {
      ws.bound[i] = BoundState::kAtUpper;
      x[i] = p.ub[i];
    }
  }
  for (std::size_t k = 0; k < nb; ++k) {
    const auto& bc = p.budgets[k];
    double s = 0.0;
    for (std::size_t j = 0; j < bc.index.size(); ++j) s += bc.weight[j] * x[bc.index[j]];
    if (s >= bc.bound - tol * (1.0 + std::abs(bc.bound))) ws.budget[k] = true;
  }

  linalg::Vector nu(nb, 0.0);
  r.status = SolveStatus::kMaxIterations;
  for (std::size_t it = 0; it < max_it; ++it) {
    r.iterations = it + 1;
    const linalg::Vector g = p.gradient(x);
    const linalg::Vector d = solve_eqp(p, ws, g, nu);

    if (linalg::norm_inf(d) <= tol) {
      // Candidate optimum for the current working set: check multipliers.
      // Lagrangian stationarity: g_i + sum_k nu_k w_ki + mu_hi - mu_lo = 0.
      double worst = -tol;
      enum class DropKind { kNone, kBound, kBudget } drop_kind = DropKind::kNone;
      std::size_t drop_idx = 0;

      for (std::size_t k = 0; k < nb; ++k) {
        if (ws.budget[k] && nu[k] < worst) {
          worst = nu[k];
          drop_kind = DropKind::kBudget;
          drop_idx = k;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (ws.bound[i] == BoundState::kFree) continue;
        if (p.ub[i] - p.lb[i] < tol) continue;  // genuinely fixed: never drop
        double gi = g[i];
        for (std::size_t k = 0; k < nb; ++k) {
          if (!ws.budget[k] || nu[k] == 0.0) continue;
          const auto& bc = p.budgets[k];
          for (std::size_t j = 0; j < bc.index.size(); ++j) {
            if (bc.index[j] == i) gi += nu[k] * bc.weight[j];
          }
        }
        const double mu = ws.bound[i] == BoundState::kAtLower ? gi : -gi;
        if (mu < worst) {
          worst = mu;
          drop_kind = DropKind::kBound;
          drop_idx = i;
        }
      }

      if (drop_kind == DropKind::kNone) {
        r.status = SolveStatus::kOptimal;
        break;
      }
      if (drop_kind == DropKind::kBound) {
        ws.bound[drop_idx] = BoundState::kFree;
      } else {
        ws.budget[drop_idx] = false;
      }
      continue;
    }

    // Line search to the nearest blocking constraint.
    double alpha = 1.0;
    enum class BlockKind { kNone, kLower, kUpper, kBudget } block = BlockKind::kNone;
    std::size_t block_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.bound[i] != BoundState::kFree || d[i] == 0.0) continue;
      if (d[i] > 0.0) {
        const double a = (p.ub[i] - x[i]) / d[i];
        if (a < alpha) {
          alpha = a;
          block = BlockKind::kUpper;
          block_idx = i;
        }
      } else {
        const double a = (p.lb[i] - x[i]) / d[i];
        if (a < alpha) {
          alpha = a;
          block = BlockKind::kLower;
          block_idx = i;
        }
      }
    }
    for (std::size_t k = 0; k < nb; ++k) {
      if (ws.budget[k]) continue;
      const auto& bc = p.budgets[k];
      double wd = 0.0;
      double wx = 0.0;
      for (std::size_t j = 0; j < bc.index.size(); ++j) {
        wd += bc.weight[j] * d[bc.index[j]];
        wx += bc.weight[j] * x[bc.index[j]];
      }
      if (wd > tol) {
        const double a = (bc.bound - wx) / wd;
        if (a < alpha) {
          alpha = a;
          block = BlockKind::kBudget;
          block_idx = k;
        }
      }
    }

    alpha = std::max(alpha, 0.0);
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * d[i];
    switch (block) {
      case BlockKind::kLower:
        ws.bound[block_idx] = BoundState::kAtLower;
        x[block_idx] = p.lb[block_idx];
        break;
      case BlockKind::kUpper:
        ws.bound[block_idx] = BoundState::kAtUpper;
        x[block_idx] = p.ub[block_idx];
        break;
      case BlockKind::kBudget:
        ws.budget[block_idx] = true;
        break;
      case BlockKind::kNone:
        break;
    }
  }

  r.x = x;
  r.objective = p.objective(x);
  // Export multipliers in the result's convention (non-negative).
  r.budget_mult.assign(nb, 0.0);
  for (std::size_t k = 0; k < nb; ++k) {
    if (ws.budget[k]) r.budget_mult[k] = std::max(0.0, nu[k]);
  }
  r.bound_mult.assign(n, 0.0);
  const linalg::Vector g = p.gradient(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.bound[i] == BoundState::kFree) continue;
    double gi = g[i];
    for (std::size_t k = 0; k < nb; ++k) {
      if (r.budget_mult[k] == 0.0) continue;
      const auto& bc = p.budgets[k];
      for (std::size_t j = 0; j < bc.index.size(); ++j) {
        if (bc.index[j] == i) gi += r.budget_mult[k] * bc.weight[j];
      }
    }
    const double mu = ws.bound[i] == BoundState::kAtLower ? gi : -gi;
    if (mu > 0.0) r.bound_mult[i] = mu;
  }
  return r;
}

QpResult solve_active_set(const StructuredQp& p, const linalg::Vector& x0,
                          const AsOptions& opts) {
  p.validate();
  const std::size_t n = p.size();
  const std::size_t nb = p.budgets.size();
  QpResult r;
  if (!is_feasible_problem(p)) {
    r.status = SolveStatus::kInfeasible;
    r.x.assign(n, 0.0);
    r.bound_mult.assign(n, 0.0);
    r.budget_mult.assign(nb, 0.0);
    return r;
  }

  const double tol = opts.tolerance;
  const std::size_t max_it = opts.max_iterations > 0 ? opts.max_iterations
                                                     : 50 * (n + nb) + 100;

  linalg::Vector x = x0.size() == n ? x0 : linalg::Vector(n, 0.0);
  project_feasible(p, x);

  WorkingSet ws{std::vector<BoundState>(n, BoundState::kFree),
                std::vector<bool>(nb, false)};
  for (std::size_t i = 0; i < n; ++i) {
    if (p.ub[i] - p.lb[i] < tol) {
      ws.bound[i] = BoundState::kAtLower;  // fixed variable
    } else if (x[i] <= p.lb[i] + tol) {
      ws.bound[i] = BoundState::kAtLower;
      x[i] = p.lb[i];
    } else if (x[i] >= p.ub[i] - tol) {
      ws.bound[i] = BoundState::kAtUpper;
      x[i] = p.ub[i];
    }
  }
  for (std::size_t k = 0; k < nb; ++k) {
    const auto& bc = p.budgets[k];
    double s = 0.0;
    for (std::size_t j = 0; j < bc.index.size(); ++j) s += bc.weight[j] * x[bc.index[j]];
    if (s >= bc.bound - tol * (1.0 + std::abs(bc.bound))) ws.budget[k] = true;
  }

  // Free-set bookkeeping: pos[v] is v's position in free_idx or SIZE_MAX.
  std::vector<std::size_t> free_idx;
  std::vector<std::size_t> pos(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.bound[i] == BoundState::kFree) {
      pos[i] = free_idx.size();
      free_idx.push_back(i);
    }
  }

  // The maintained factorization: chol holds Q_FF = L L' for the current
  // free set. Each working-set change applies one append/remove; a periodic
  // full rebuild bounds drift from long update chains, and any update that
  // loses positive definiteness triggers an immediate rebuild (a rebuild
  // that itself fails propagates invariant_error to the facade, which falls
  // back to projected gradient).
  linalg::UpdatableCholesky chol;
  const auto rebuild = [&] {
    linalg::Matrix qff;
    p.assemble_free_block(free_idx, pos, qff);
    chol.reset(qff);
  };
  rebuild();
  constexpr std::size_t kRebuildPeriod = 128;
  std::size_t updates_since_rebuild = 0;

  const auto free_variable = [&](std::size_t i) {
    linalg::Vector col(free_idx.size(), 0.0);
    double diag = 0.0;
    p.hessian_column(i, pos, col, diag);
    pos[i] = free_idx.size();
    free_idx.push_back(i);
    try {
      chol.append(col, diag);
    } catch (const invariant_error&) {
      rebuild();
      updates_since_rebuild = 0;
      return;
    }
    if (++updates_since_rebuild >= kRebuildPeriod) {
      rebuild();
      updates_since_rebuild = 0;
    }
  };

  const auto fix_variable = [&](std::size_t i) {
    const std::size_t pi = pos[i];
    free_idx.erase(free_idx.begin() + static_cast<std::ptrdiff_t>(pi));
    pos[i] = SIZE_MAX;
    for (std::size_t a = pi; a < free_idx.size(); ++a) pos[free_idx[a]] = a;
    try {
      chol.remove(pi);
    } catch (const invariant_error&) {
      rebuild();
      updates_since_rebuild = 0;
      return;
    }
    if (++updates_since_rebuild >= kRebuildPeriod) {
      rebuild();
      updates_since_rebuild = 0;
    }
  };

  // Equality-constrained subproblem on the free variables via the maintained
  // factor and a Schur complement over the active budget rows:
  //   d0 = -Q_FF^{-1} g_F,  u_e = Q_FF^{-1} a_e,
  //   (A Q_FF^{-1} A') nu = A d0,  d = d0 - sum_e nu_e u_e.
  std::vector<std::size_t> rows;
  const auto solve_eqp = [&](const linalg::Vector& g, linalg::Vector& nu_out) {
    nu_out.assign(nb, 0.0);
    linalg::Vector d(n, 0.0);
    const std::size_t nf = free_idx.size();
    if (nf == 0) return d;

    rows.clear();
    for (std::size_t k = 0; k < nb; ++k) {
      if (!ws.budget[k]) continue;
      const auto& bc = p.budgets[k];
      bool has_free = false;
      for (std::size_t idx : bc.index) {
        if (pos[idx] != SIZE_MAX) {
          has_free = true;
          break;
        }
      }
      if (has_free) rows.push_back(k);
    }

    linalg::Vector rhs(nf);
    for (std::size_t a = 0; a < nf; ++a) rhs[a] = -g[free_idx[a]];
    linalg::Vector d0 = chol.solve(rhs);

    const std::size_t ne = rows.size();
    if (ne > 0) {
      std::vector<linalg::Vector> a_free(ne, linalg::Vector(nf, 0.0));
      std::vector<linalg::Vector> u(ne);
      for (std::size_t e = 0; e < ne; ++e) {
        const auto& bc = p.budgets[rows[e]];
        for (std::size_t j = 0; j < bc.index.size(); ++j) {
          const std::size_t fp = pos[bc.index[j]];
          if (fp != SIZE_MAX) a_free[e][fp] = bc.weight[j];
        }
        u[e] = chol.solve(a_free[e]);
      }
      linalg::Matrix schur(ne, ne);
      linalg::Vector srhs(ne);
      for (std::size_t e = 0; e < ne; ++e) {
        srhs[e] = linalg::dot(a_free[e], d0);
        for (std::size_t f = 0; f < ne; ++f) {
          schur(e, f) = linalg::dot(a_free[e], u[f]);
        }
      }
      const linalg::Vector nu_rows = linalg::Lu(schur).solve(srhs);
      for (std::size_t e = 0; e < ne; ++e) {
        nu_out[rows[e]] = nu_rows[e];
        for (std::size_t a = 0; a < nf; ++a) d0[a] -= nu_rows[e] * u[e][a];
      }
    }
    for (std::size_t a = 0; a < nf; ++a) d[free_idx[a]] = d0[a];
    return d;
  };

  linalg::Vector nu(nb, 0.0);
  r.status = SolveStatus::kMaxIterations;
  for (std::size_t it = 0; it < max_it; ++it) {
    r.iterations = it + 1;
    const linalg::Vector g = p.gradient(x);
    const linalg::Vector d = solve_eqp(g, nu);

    if (linalg::norm_inf(d) <= tol) {
      // Candidate optimum for the current working set: check multipliers.
      double worst = -tol;
      enum class DropKind { kNone, kBound, kBudget } drop_kind = DropKind::kNone;
      std::size_t drop_idx = 0;

      for (std::size_t k = 0; k < nb; ++k) {
        if (ws.budget[k] && nu[k] < worst) {
          worst = nu[k];
          drop_kind = DropKind::kBudget;
          drop_idx = k;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (ws.bound[i] == BoundState::kFree) continue;
        if (p.ub[i] - p.lb[i] < tol) continue;  // genuinely fixed: never drop
        double gi = g[i];
        for (std::size_t k = 0; k < nb; ++k) {
          if (!ws.budget[k] || nu[k] == 0.0) continue;
          const auto& bc = p.budgets[k];
          for (std::size_t j = 0; j < bc.index.size(); ++j) {
            if (bc.index[j] == i) gi += nu[k] * bc.weight[j];
          }
        }
        const double mu = ws.bound[i] == BoundState::kAtLower ? gi : -gi;
        if (mu < worst) {
          worst = mu;
          drop_kind = DropKind::kBound;
          drop_idx = i;
        }
      }

      if (drop_kind == DropKind::kNone) {
        r.status = SolveStatus::kOptimal;
        break;
      }
      if (drop_kind == DropKind::kBound) {
        ws.bound[drop_idx] = BoundState::kFree;
        free_variable(drop_idx);
      } else {
        ws.budget[drop_idx] = false;
      }
      continue;
    }

    // Line search to the nearest blocking constraint.
    double alpha = 1.0;
    enum class BlockKind { kNone, kLower, kUpper, kBudget } block = BlockKind::kNone;
    std::size_t block_idx = 0;
    for (std::size_t a = 0; a < free_idx.size(); ++a) {
      const std::size_t i = free_idx[a];
      if (d[i] == 0.0) continue;
      if (d[i] > 0.0) {
        const double step = (p.ub[i] - x[i]) / d[i];
        if (step < alpha) {
          alpha = step;
          block = BlockKind::kUpper;
          block_idx = i;
        }
      } else {
        const double step = (p.lb[i] - x[i]) / d[i];
        if (step < alpha) {
          alpha = step;
          block = BlockKind::kLower;
          block_idx = i;
        }
      }
    }
    for (std::size_t k = 0; k < nb; ++k) {
      if (ws.budget[k]) continue;
      const auto& bc = p.budgets[k];
      double wd = 0.0;
      double wx = 0.0;
      for (std::size_t j = 0; j < bc.index.size(); ++j) {
        wd += bc.weight[j] * d[bc.index[j]];
        wx += bc.weight[j] * x[bc.index[j]];
      }
      if (wd > tol) {
        const double step = (bc.bound - wx) / wd;
        if (step < alpha) {
          alpha = step;
          block = BlockKind::kBudget;
          block_idx = k;
        }
      }
    }

    alpha = std::max(alpha, 0.0);
    for (std::size_t a = 0; a < free_idx.size(); ++a) {
      const std::size_t i = free_idx[a];
      x[i] += alpha * d[i];
    }
    switch (block) {
      case BlockKind::kLower:
        ws.bound[block_idx] = BoundState::kAtLower;
        x[block_idx] = p.lb[block_idx];
        fix_variable(block_idx);
        break;
      case BlockKind::kUpper:
        ws.bound[block_idx] = BoundState::kAtUpper;
        x[block_idx] = p.ub[block_idx];
        fix_variable(block_idx);
        break;
      case BlockKind::kBudget:
        ws.budget[block_idx] = true;
        break;
      case BlockKind::kNone:
        break;
    }
  }

  r.x = x;
  r.objective = p.objective(x);
  // Export multipliers in the result's convention (non-negative).
  r.budget_mult.assign(nb, 0.0);
  for (std::size_t k = 0; k < nb; ++k) {
    if (ws.budget[k]) r.budget_mult[k] = std::max(0.0, nu[k]);
  }
  r.bound_mult.assign(n, 0.0);
  const linalg::Vector g = p.gradient(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws.bound[i] == BoundState::kFree) continue;
    double gi = g[i];
    for (std::size_t k = 0; k < nb; ++k) {
      if (r.budget_mult[k] == 0.0) continue;
      const auto& bc = p.budgets[k];
      for (std::size_t j = 0; j < bc.index.size(); ++j) {
        if (bc.index[j] == i) gi += r.budget_mult[k] * bc.weight[j];
      }
    }
    const double mu = ws.bound[i] == BoundState::kAtLower ? gi : -gi;
    if (mu > 0.0) r.bound_mult[i] = mu;
  }
  return r;
}

QpResult solve(const QpProblem& p, const linalg::Vector& warm_start,
               const SolveOptions& opts) {
  constexpr double kAcceptTol = 1e-5;
  AsOptions as_opts;
  PgOptions pg_opts;
  if (opts.max_iterations > 0) {
    as_opts.max_iterations = opts.max_iterations;
    pg_opts.max_iterations = opts.max_iterations;
  }
  try {
    QpResult r = solve_active_set(p, warm_start, as_opts);
    if (r.status == SolveStatus::kInfeasible) return r;
    if (r.status == SolveStatus::kOptimal &&
        kkt_residual(p, r).max() <= kAcceptTol * (1.0 + linalg::norm_inf(p.c))) {
      return r;
    }
  } catch (const invariant_error&) {
    // Singular working-set system: fall through to the always-convergent
    // projected-gradient solver.
  }
  return solve_projected_gradient(p, warm_start, pg_opts);
}

QpResult solve(const StructuredQp& p, const linalg::Vector& warm_start,
               const SolveOptions& opts) {
  constexpr double kAcceptTol = 1e-5;
  AsOptions as_opts;
  PgOptions pg_opts;
  if (opts.max_iterations > 0) {
    as_opts.max_iterations = opts.max_iterations;
    pg_opts.max_iterations = opts.max_iterations;
  } else if (warm_start.size() != p.size()) {
    // Cold start: the working set has no prior, so the active set discovers
    // the solution one constraint flip at a time and its default budget of
    // 50(n+nb)+100 iterations mostly funds thrash before the KKT check
    // rejects the result anyway. A tight adaptive bound hands off to FISTA
    // early; warm-started solves keep the full budget since they certify in
    // a handful of flips.
    as_opts.max_iterations = 2 * (p.size() + p.budgets.size()) + 25;
  }
  // Up to this size the incrementally-factorized active set is the fastest
  // certified path (the one-off O(nf^3) Cholesky is amortized across all
  // iterations). Beyond it, matrix-free FISTA is the only path that avoids
  // cubic work entirely.
  constexpr std::size_t kDirectLimit = 1200;
  if (p.size() <= kDirectLimit) {
    try {
      QpResult r = solve_active_set(p, warm_start, as_opts);
      if (r.status == SolveStatus::kInfeasible) return r;
      if (r.status == SolveStatus::kOptimal &&
          kkt_residual(p, r).max() <=
              kAcceptTol * (1.0 + linalg::norm_inf(p.linear_term()))) {
        return r;
      }
    } catch (const invariant_error&) {
      // Singular working-set system: fall through to FISTA.
    }
  }
  return solve_projected_gradient(p, warm_start, pg_opts);
}

}  // namespace perq::qp
