#include "qp/projection.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace perq::qp {

void project_box(linalg::Vector& x, const linalg::Vector& lb, const linalg::Vector& ub) {
  PERQ_REQUIRE(x.size() == lb.size() && x.size() == ub.size(), "size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lb[i], ub[i]);
  }
}

namespace {

/// sum_i w_i * clamp(y_i - lambda * w_i) over the constraint's variables.
double budget_value(const linalg::Vector& y, const BudgetConstraint& bc,
                    const linalg::Vector& lb, const linalg::Vector& ub, double lambda) {
  double s = 0.0;
  for (std::size_t k = 0; k < bc.index.size(); ++k) {
    const std::size_t i = bc.index[k];
    const double z = std::clamp(y[k] - lambda * bc.weight[k], lb[i], ub[i]);
    s += bc.weight[k] * z;
  }
  return s;
}

}  // namespace

void project_budget(linalg::Vector& x, const BudgetConstraint& bc,
                    const linalg::Vector& lb, const linalg::Vector& ub) {
  // Gather the affected coordinates (already box-clipped by the caller or
  // clipped here as part of the projection).
  double lo_sum = 0.0;
  for (std::size_t k = 0; k < bc.index.size(); ++k) {
    lo_sum += bc.weight[k] * lb[bc.index[k]];
  }
  PERQ_REQUIRE(lo_sum <= bc.bound + 1e-12, "budget constraint infeasible against box");

  // Degenerate row: the box floor sits on (or, within the tolerance above,
  // over) the bound, so the lower corner is the entire feasible set as far
  // as this row is concerned. The bisection below cannot bracket here --
  // budget_value converges to lo_sum from above -- so project directly.
  if (lo_sum >= bc.bound) {
    for (std::size_t k = 0; k < bc.index.size(); ++k) {
      const std::size_t i = bc.index[k];
      x[i] = lb[i];
    }
    return;
  }

  linalg::Vector y(bc.index.size());
  for (std::size_t k = 0; k < bc.index.size(); ++k) y[k] = x[bc.index[k]];

  if (budget_value(y, bc, lb, ub, 0.0) <= bc.bound) {
    // Already satisfied after clipping: just clip in place.
    for (std::size_t k = 0; k < bc.index.size(); ++k) {
      const std::size_t i = bc.index[k];
      x[i] = std::clamp(y[k], lb[i], ub[i]);
    }
    return;
  }

  // The map lambda -> budget_value is continuous and non-increasing; find
  // the lambda where it meets the bound by bracketing + bisection.
  double lambda_hi = 1.0;
  while (budget_value(y, bc, lb, ub, lambda_hi) > bc.bound) {
    lambda_hi *= 2.0;
    PERQ_ASSERT(lambda_hi < 1e18, "projection bisection failed to bracket");
  }
  double lambda_lo = 0.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lambda_lo + lambda_hi);
    if (budget_value(y, bc, lb, ub, mid) > bc.bound) {
      lambda_lo = mid;
    } else {
      lambda_hi = mid;
    }
    if (lambda_hi - lambda_lo < 1e-14 * (1.0 + lambda_hi)) break;
  }
  const double lambda = lambda_hi;  // guaranteed feasible side
  for (std::size_t k = 0; k < bc.index.size(); ++k) {
    const std::size_t i = bc.index[k];
    x[i] = std::clamp(y[k] - lambda * bc.weight[k], lb[i], ub[i]);
  }
}

namespace {

// Shared across the dense and structured problem forms: both expose the same
// lb/ub/budgets interface subset.
template <class Problem>
bool is_feasible_impl(const Problem& p) {
  for (const auto& bc : p.budgets) {
    double lo_sum = 0.0;
    for (std::size_t k = 0; k < bc.index.size(); ++k) {
      lo_sum += bc.weight[k] * p.lb[bc.index[k]];
    }
    if (lo_sum > bc.bound + 1e-12) return false;
  }
  return true;
}

template <class Problem>
void project_feasible_impl(const Problem& p, linalg::Vector& x, double tol) {
  PERQ_REQUIRE(is_feasible_impl(p), "QP feasible set is empty");
  project_box(x, p.lb, p.ub);
  if (p.budgets.empty()) return;

  if (p.budgets_disjoint()) {
    for (const auto& bc : p.budgets) project_budget(x, bc, p.lb, p.ub);
    return;
  }
  // Cyclic projections for overlapping rows: converges to a feasible point.
  for (int round = 0; round < 500; ++round) {
    for (const auto& bc : p.budgets) project_budget(x, bc, p.lb, p.ub);
    if (p.infeasibility(x) <= tol) return;
  }
  PERQ_ASSERT(p.infeasibility(x) <= 1e-6, "cyclic projection failed to converge");
}

}  // namespace

bool is_feasible_problem(const QpProblem& p) { return is_feasible_impl(p); }
bool is_feasible_problem(const StructuredQp& p) { return is_feasible_impl(p); }

void project_feasible(const QpProblem& p, linalg::Vector& x, double tol) {
  project_feasible_impl(p, x, tol);
}

void project_feasible(const StructuredQp& p, linalg::Vector& x, double tol) {
  project_feasible_impl(p, x, tol);
}

}  // namespace perq::qp
