// Euclidean projection onto PERQ's feasible set (box intersect budget rows).
//
// When budget rows touch disjoint variable sets -- which is always the case
// for the MPC condensed form, where each horizon step has its own budget row
// over that step's caps -- the projection is exact: clip to the box, then for
// each violated budget row solve a one-dimensional dual problem by bisection.
#pragma once

#include "qp/problem.hpp"
#include "qp/structured.hpp"

namespace perq::qp {

/// Clips x elementwise into [lb, ub].
void project_box(linalg::Vector& x, const linalg::Vector& lb, const linalg::Vector& ub);

/// Projects the variables referenced by `bc` onto
/// { z : sum w_i z_i <= bound, lb <= z <= ub }, leaving others untouched.
/// Exact (Euclidean) projection via bisection on the budget multiplier.
/// Throws perq::precondition_error when the constraint set is empty
/// (sum w_i lb_i > bound).
void project_budget(linalg::Vector& x, const BudgetConstraint& bc,
                    const linalg::Vector& lb, const linalg::Vector& ub);

/// Projects x onto the feasible set of `p`. Exact when p.budgets_disjoint();
/// otherwise performs cyclic projections (POCS) until feasible to `tol`,
/// which yields a feasible point though not necessarily the nearest one.
/// Throws perq::precondition_error when the feasible set is empty.
void project_feasible(const QpProblem& p, linalg::Vector& x, double tol = 1e-10);

/// Structured overload: identical semantics, no dense Hessian required.
void project_feasible(const StructuredQp& p, linalg::Vector& x, double tol = 1e-10);

/// True when the feasible set is non-empty (checks each budget row against
/// the box minimum).
bool is_feasible_problem(const QpProblem& p);
bool is_feasible_problem(const StructuredQp& p);

}  // namespace perq::qp
