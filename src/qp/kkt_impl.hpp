// Shared implementation of the KKT residual diagnostics, templated over the
// problem representation (dense QpProblem or StructuredQp). Both expose the
// same interface subset: size(), gradient(), infeasibility(), budgets,
// lb, ub. Internal header -- include only from qp/*.cpp.
#pragma once

#include <algorithm>
#include <cmath>

#include "qp/problem.hpp"
#include "util/require.hpp"

namespace perq::qp::detail {

template <class Problem>
KktResidual kkt_residual_impl(const Problem& p, const QpResult& r) {
  const std::size_t n = p.size();
  PERQ_REQUIRE(r.x.size() == n, "solution size mismatch");
  PERQ_REQUIRE(r.bound_mult.size() == n, "bound multiplier size mismatch");
  PERQ_REQUIRE(r.budget_mult.size() == p.budgets.size(),
               "budget multiplier size mismatch");

  KktResidual res;
  res.primal = p.infeasibility(r.x);

  // Stationarity: Qx + c + sum_k nu_k w_k + mu_upper - mu_lower = 0.
  // bound_mult[i] stores the multiplier of whichever bound is active; its
  // sign contribution depends on which side x sits at. We reconstruct:
  linalg::Vector g = p.gradient(r.x);
  for (std::size_t k = 0; k < p.budgets.size(); ++k) {
    const auto& bc = p.budgets[k];
    const double nu = r.budget_mult[k];
    res.dual = std::max(res.dual, -nu);
    double s = 0.0;
    for (std::size_t j = 0; j < bc.index.size(); ++j) {
      g[bc.index[j]] += nu * bc.weight[j];
      s += bc.weight[j] * r.x[bc.index[j]];
    }
    res.complementarity = std::max(res.complementarity, std::abs(nu * (bc.bound - s)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = r.bound_mult[i];
    res.dual = std::max(res.dual, -mu);
    const double slack_lo = r.x[i] - p.lb[i];
    const double slack_hi = p.ub[i] - r.x[i];
    if (mu > 0.0) {
      // Attribute the multiplier to the nearer bound.
      if (slack_lo <= slack_hi) {
        g[i] -= mu;  // lower bound active: gradient balanced by -mu
        res.complementarity = std::max(res.complementarity, std::abs(mu * slack_lo));
      } else {
        g[i] += mu;  // upper bound active
        res.complementarity = std::max(res.complementarity, std::abs(mu * slack_hi));
      }
    }
  }
  res.stationarity = linalg::norm_inf(g);
  return res;
}

}  // namespace perq::qp::detail
