#include "qp/projected_gradient.hpp"

#include <algorithm>
#include <cmath>

#include "qp/projection.hpp"
#include "util/require.hpp"

namespace perq::qp {

using linalg::operator+;
using linalg::operator-;
using linalg::operator*;

double estimate_spectral_norm(const linalg::Matrix& q, std::size_t iterations) {
  PERQ_REQUIRE(q.is_square(), "spectral norm needs a square matrix");
  const std::size_t n = q.rows();
  if (n == 0) return 0.0;
  linalg::Vector v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    linalg::Vector w = q * v;
    const double nw = linalg::norm2(w);
    if (nw == 0.0) return 0.0;
    lambda = nw;
    v = w * (1.0 / nw);
  }
  return lambda;
}

namespace {

/// Reconstructs budget/bound multiplier estimates from the gradient at the
/// (near-)optimal x. For each budget row active to tolerance, nu is the
/// median of -g_i / w_i over its strictly-interior variables; bound
/// multipliers absorb the remaining per-coordinate gradient.
template <class Problem>
void reconstruct_multipliers(const Problem& p, QpResult& r) {
  const std::size_t n = p.size();
  linalg::Vector g = p.gradient(r.x);
  r.budget_mult.assign(p.budgets.size(), 0.0);
  r.bound_mult.assign(n, 0.0);

  const double act_tol = 1e-7;
  for (std::size_t k = 0; k < p.budgets.size(); ++k) {
    const auto& bc = p.budgets[k];
    double s = 0.0;
    for (std::size_t j = 0; j < bc.index.size(); ++j) s += bc.weight[j] * r.x[bc.index[j]];
    if (s < bc.bound - act_tol * (1.0 + std::abs(bc.bound))) continue;  // inactive

    std::vector<double> candidates;
    for (std::size_t j = 0; j < bc.index.size(); ++j) {
      const std::size_t i = bc.index[j];
      const bool interior = r.x[i] > p.lb[i] + act_tol && r.x[i] < p.ub[i] - act_tol;
      if (interior) candidates.push_back(-g[i] / bc.weight[j]);
    }
    if (candidates.empty()) continue;
    std::nth_element(candidates.begin(), candidates.begin() + candidates.size() / 2,
                     candidates.end());
    r.budget_mult[k] = std::max(0.0, candidates[candidates.size() / 2]);
    for (std::size_t j = 0; j < bc.index.size(); ++j) {
      g[bc.index[j]] += r.budget_mult[k] * bc.weight[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool at_lo = r.x[i] <= p.lb[i] + act_tol;
    const bool at_hi = r.x[i] >= p.ub[i] - act_tol;
    if (at_lo && g[i] > 0.0) {
      r.bound_mult[i] = g[i];
    } else if (at_hi && g[i] < 0.0) {
      r.bound_mult[i] = -g[i];
    }
  }
}

/// FISTA with restart on non-monotone objective, shared by the dense and
/// structured problem forms. `lipschitz` is an upper bound on ||Q||_2.
template <class Problem>
QpResult fista(const Problem& p, const linalg::Vector& x0, double lipschitz,
               const PgOptions& opts) {
  QpResult r;
  const std::size_t n = p.size();
  if (!is_feasible_problem(p)) {
    r.status = SolveStatus::kInfeasible;
    r.x.assign(n, 0.0);
    r.bound_mult.assign(n, 0.0);
    r.budget_mult.assign(p.budgets.size(), 0.0);
    return r;
  }

  linalg::Vector x = x0.size() == n ? x0 : linalg::Vector(n, 0.0);
  project_feasible(p, x);

  const double step = lipschitz > 0.0 ? 1.0 / (lipschitz * 1.01) : 1.0;

  linalg::Vector y = x;
  linalg::Vector x_prev = x;
  double t = 1.0;
  double f_prev = p.objective(x);
  r.status = SolveStatus::kMaxIterations;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    linalg::Vector g = p.gradient(y);
    linalg::Vector x_new = y;
    for (std::size_t i = 0; i < n; ++i) x_new[i] -= step * g[i];
    project_feasible(p, x_new, 1e-12);

    const double move = linalg::norm_inf(x_new - x);
    const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    const double beta = (t - 1.0) / t_new;
    y = x_new + beta * (x_new - x);
    x_prev = x;
    x = x_new;
    t = t_new;

    const double f = p.objective(x);
    if (f > f_prev) {  // adaptive restart
      y = x;
      t = 1.0;
    }
    f_prev = f;

    if (move < opts.tolerance * (1.0 + linalg::norm_inf(x))) {
      r.status = SolveStatus::kOptimal;
      r.iterations = it + 1;
      break;
    }
    r.iterations = it + 1;
  }

  r.x = x;
  r.objective = p.objective(x);
  reconstruct_multipliers(p, r);
  return r;
}

}  // namespace

QpResult solve_projected_gradient(const QpProblem& p, const linalg::Vector& x0,
                                  const PgOptions& opts) {
  p.validate();
  return fista(p, x0, estimate_spectral_norm(p.Q), opts);
}

QpResult solve_projected_gradient(const StructuredQp& p, const linalg::Vector& x0,
                                  const PgOptions& opts) {
  p.validate();
  // Heterogeneous per-job estimator slopes enter the tracking residuals
  // squared, so the Q diagonal spans orders of magnitude across jobs; an
  // unscaled gradient step moves every coordinate at 1/L_max and the
  // low-curvature coordinates crawl. Jacobi scaling (z = S x with
  // s_i = sqrt(Q_ii)) equalizes the spread, cutting the iteration count by
  // roughly the square root of the removed condition-number factor. The
  // scaled problem keeps the box + budget shape, so the exact same FISTA
  // and projection machinery runs on it unchanged.
  const linalg::Vector d = p.hessian_diagonal();
  double dmax = 0.0;
  for (double v : d) dmax = std::max(dmax, v);
  if (dmax <= 0.0) {
    // Gershgorin is a true upper bound on ||Q||_2 (power iteration can only
    // under-estimate, which would make the step size unsafe); it is also
    // O(nnz) versus 50 matrix products.
    return fista(p, x0, p.gershgorin_bound(), opts);
  }
  linalg::Vector s(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    s[i] = std::sqrt(std::max(d[i], dmax * 1e-12));
  }
  const StructuredQp sp = p.jacobi_scaled(s);
  linalg::Vector z0;
  if (x0.size() == p.size()) {
    z0 = x0;
    for (std::size_t i = 0; i < z0.size(); ++i) z0[i] *= s[i];
  }
  QpResult r = fista(sp, z0, sp.gershgorin_bound(), opts);
  if (r.status == SolveStatus::kInfeasible) return r;
  for (std::size_t i = 0; i < r.x.size(); ++i) r.x[i] /= s[i];
  // The scaling round-trip can leave ulp-level bound violations; re-project
  // so callers see an exactly feasible point, then restate the objective
  // and multipliers against the original (unscaled) problem.
  project_feasible(p, r.x, 1e-12);
  r.objective = p.objective(r.x);
  reconstruct_multipliers(p, r);
  return r;
}

}  // namespace perq::qp
