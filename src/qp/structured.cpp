#include "qp/structured.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "qp/kkt_impl.hpp"
#include "util/require.hpp"

namespace perq::qp {

StructuredQp::StructuredQp(std::size_t n)
    : lb(n, -1e30),
      ub(n, 1e30),
      n_(n),
      diag_(n, 0.0),
      c_(n, 0.0),
      var_rows_(n),
      var_pairs_(n) {
  PERQ_REQUIRE(n >= 1, "StructuredQp needs at least one variable");
}

void StructuredQp::add_ridge(double r) {
  PERQ_REQUIRE(r > 0.0, "ridge must be positive");
  for (double& d : diag_) d += 2.0 * r;
}

void StructuredQp::add_residual(const std::vector<std::size_t>& idx,
                                const std::vector<double>& coef, double b,
                                double w) {
  PERQ_REQUIRE(idx.size() == coef.size(), "residual index/coef size mismatch");
  PERQ_REQUIRE(!idx.empty(), "empty residual row");
  PERQ_REQUIRE(w >= 0.0, "residual weight must be non-negative");
  if (w == 0.0) return;
  {
    // Duplicate indices would double-count in the per-variable adjacency
    // (hessian_column / q_entry assume each variable appears once per row).
    std::vector<std::size_t> sorted(idx);
    std::sort(sorted.begin(), sorted.end());
    PERQ_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                 "duplicate index in residual row");
  }
  const double w2 = 2.0 * w;
  const auto row_id = static_cast<std::uint32_t>(rows_.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    PERQ_REQUIRE(idx[k] < n_, "residual index out of range");
    c_[idx[k]] -= w2 * b * coef[k];
    var_rows_[idx[k]].emplace_back(row_id, static_cast<std::uint32_t>(k));
  }
  rows_.push_back(Residual{idx, coef, w2});
}

void StructuredQp::add_anchor(std::size_t i, double target, double w) {
  PERQ_REQUIRE(i < n_, "anchor index out of range");
  PERQ_REQUIRE(w >= 0.0, "anchor weight must be non-negative");
  diag_[i] += 2.0 * w;
  c_[i] -= 2.0 * w * target;
}

void StructuredQp::add_smooth(std::size_t a, std::size_t b, double w) {
  PERQ_REQUIRE(a < n_ && b < n_ && a != b, "smooth term needs two distinct variables");
  PERQ_REQUIRE(w >= 0.0, "smooth weight must be non-negative");
  if (w == 0.0) return;
  const auto pair_id = static_cast<std::uint32_t>(pairs_.size());
  pairs_.push_back(Pair{a, b, 2.0 * w});
  var_pairs_[a].push_back(pair_id);
  var_pairs_[b].push_back(pair_id);
}

void StructuredQp::validate() const {
  PERQ_REQUIRE(lb.size() == n_ && ub.size() == n_, "bound size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    PERQ_REQUIRE(lb[i] <= ub[i], "lb > ub at index " + std::to_string(i));
  }
  for (const auto& bc : budgets) {
    PERQ_REQUIRE(bc.index.size() == bc.weight.size(), "budget index/weight mismatch");
    PERQ_REQUIRE(!bc.index.empty(), "empty budget constraint");
    for (std::size_t k = 0; k < bc.index.size(); ++k) {
      PERQ_REQUIRE(bc.index[k] < n_, "budget index out of range");
      PERQ_REQUIRE(bc.weight[k] > 0.0, "budget weights must be positive");
    }
  }
}

void StructuredQp::qx(const linalg::Vector& x, linalg::Vector& out) const {
  PERQ_REQUIRE(x.size() == n_, "x size mismatch");
  out.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) out[i] = diag_[i] * x[i];
  for (const auto& row : rows_) {
    double s = 0.0;
    for (std::size_t k = 0; k < row.idx.size(); ++k) s += row.coef[k] * x[row.idx[k]];
    s *= row.w;
    for (std::size_t k = 0; k < row.idx.size(); ++k) out[row.idx[k]] += row.coef[k] * s;
  }
  for (const auto& pr : pairs_) {
    const double d = pr.w * (x[pr.a] - x[pr.b]);
    out[pr.a] += d;
    out[pr.b] -= d;
  }
}

linalg::Vector StructuredQp::gradient(const linalg::Vector& x) const {
  linalg::Vector g;
  qx(x, g);
  for (std::size_t i = 0; i < n_; ++i) g[i] += c_[i];
  return g;
}

double StructuredQp::objective(const linalg::Vector& x) const {
  linalg::Vector qxv;
  qx(x, qxv);
  return 0.5 * linalg::dot(x, qxv) + linalg::dot(c_, x);
}

double StructuredQp::infeasibility(const linalg::Vector& x) const {
  PERQ_REQUIRE(x.size() == n_, "x size mismatch");
  double v = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    v = std::max(v, lb[i] - x[i]);
    v = std::max(v, x[i] - ub[i]);
  }
  for (const auto& bc : budgets) {
    double s = 0.0;
    for (std::size_t k = 0; k < bc.index.size(); ++k) s += bc.weight[k] * x[bc.index[k]];
    v = std::max(v, s - bc.bound);
  }
  return std::max(v, 0.0);
}

bool StructuredQp::budgets_disjoint() const {
  std::set<std::size_t> seen;
  for (const auto& bc : budgets) {
    for (std::size_t idx : bc.index) {
      if (!seen.insert(idx).second) return false;
    }
  }
  return true;
}

double StructuredQp::gershgorin_bound() const {
  // Row sums of |Q|: each residual row contributes w*|a_r|*sum_k |a_k| to
  // row idx[r]; pairs contribute 2w to each endpoint's row sum.
  linalg::Vector row_sum = diag_;  // diagonal is non-negative by construction
  for (const auto& row : rows_) {
    double abs_sum = 0.0;
    for (double cc : row.coef) abs_sum += std::abs(cc);
    for (std::size_t k = 0; k < row.idx.size(); ++k) {
      row_sum[row.idx[k]] += row.w * std::abs(row.coef[k]) * abs_sum;
    }
  }
  for (const auto& pr : pairs_) {
    row_sum[pr.a] += 2.0 * pr.w;
    row_sum[pr.b] += 2.0 * pr.w;
  }
  double bound = 0.0;
  for (double v : row_sum) bound = std::max(bound, v);
  return bound;
}

linalg::Vector StructuredQp::hessian_diagonal() const {
  linalg::Vector d = diag_;
  for (const auto& row : rows_) {
    for (std::size_t k = 0; k < row.idx.size(); ++k) {
      d[row.idx[k]] += row.w * row.coef[k] * row.coef[k];
    }
  }
  for (const auto& pr : pairs_) {
    d[pr.a] += pr.w;
    d[pr.b] += pr.w;
  }
  return d;
}

StructuredQp StructuredQp::jacobi_scaled(const linalg::Vector& s) const {
  PERQ_REQUIRE(s.size() == n_, "scale size mismatch");
  StructuredQp out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    PERQ_REQUIRE(s[i] > 0.0, "scale factors must be positive");
    out.diag_[i] = diag_[i] / (s[i] * s[i]);
    out.c_[i] = c_[i] / s[i];
    out.lb[i] = lb[i] * s[i];
    out.ub[i] = ub[i] * s[i];
  }
  // Terms are copied with their stored (already doubled) weights and the
  // coefficients rescaled in place, bypassing the builder methods: those
  // would re-accumulate c_, which is already fully scaled above.
  out.rows_.reserve(rows_.size() + pairs_.size());
  for (const auto& row : rows_) {
    Residual r = row;
    for (std::size_t k = 0; k < r.idx.size(); ++k) r.coef[k] /= s[r.idx[k]];
    const auto row_id = static_cast<std::uint32_t>(out.rows_.size());
    for (std::size_t k = 0; k < r.idx.size(); ++k) {
      out.var_rows_[r.idx[k]].emplace_back(row_id, static_cast<std::uint32_t>(k));
    }
    out.rows_.push_back(std::move(r));
  }
  // A pair couples its endpoints with unit coefficients; scaling makes the
  // coefficients unequal, so each pair becomes a two-entry residual row
  // (same Q contribution, zero linear term).
  for (const auto& pr : pairs_) {
    Residual r;
    r.idx = {pr.a, pr.b};
    r.coef = {1.0 / s[pr.a], -1.0 / s[pr.b]};
    r.w = pr.w;
    const auto row_id = static_cast<std::uint32_t>(out.rows_.size());
    out.var_rows_[pr.a].emplace_back(row_id, 0);
    out.var_rows_[pr.b].emplace_back(row_id, 1);
    out.rows_.push_back(std::move(r));
  }
  out.budgets = budgets;
  for (auto& bc : out.budgets) {
    for (std::size_t k = 0; k < bc.index.size(); ++k) bc.weight[k] /= s[bc.index[k]];
  }
  return out;
}

double StructuredQp::q_entry(std::size_t i, std::size_t j) const {
  PERQ_REQUIRE(i < n_ && j < n_, "entry index out of range");
  double v = 0.0;
  if (i == j) v += diag_[i];
  for (const auto& [row_id, ki] : var_rows_[i]) {
    const Residual& row = rows_[row_id];
    // Find j within the row (rows are short: O(nnz) scan).
    for (std::size_t k = 0; k < row.idx.size(); ++k) {
      if (row.idx[k] == j) v += row.w * row.coef[ki] * row.coef[k];
    }
  }
  for (std::uint32_t pid : var_pairs_[i]) {
    const Pair& pr = pairs_[pid];
    if (i == j) {
      v += pr.w;
    } else if ((pr.a == i && pr.b == j) || (pr.a == j && pr.b == i)) {
      v -= pr.w;
    }
  }
  return v;
}

void StructuredQp::assemble_free_block(const std::vector<std::size_t>& free_idx,
                                       const std::vector<std::size_t>& pos,
                                       linalg::Matrix& qff) const {
  const std::size_t nf = free_idx.size();
  qff = linalg::Matrix(nf, nf);
  for (std::size_t a = 0; a < nf; ++a) qff(a, a) = diag_[free_idx[a]];
  // Scatter each residual row over its free entries only.
  std::vector<std::size_t> fpos;
  std::vector<double> fcoef;
  for (const auto& row : rows_) {
    fpos.clear();
    fcoef.clear();
    for (std::size_t k = 0; k < row.idx.size(); ++k) {
      const std::size_t p = pos[row.idx[k]];
      if (p != SIZE_MAX) {
        fpos.push_back(p);
        fcoef.push_back(row.coef[k]);
      }
    }
    for (std::size_t r = 0; r < fpos.size(); ++r) {
      const double wc = row.w * fcoef[r];
      for (std::size_t s = 0; s < fpos.size(); ++s) {
        qff(fpos[r], fpos[s]) += wc * fcoef[s];
      }
    }
  }
  for (const auto& pr : pairs_) {
    const std::size_t pa = pos[pr.a];
    const std::size_t pb = pos[pr.b];
    if (pa != SIZE_MAX) qff(pa, pa) += pr.w;
    if (pb != SIZE_MAX) qff(pb, pb) += pr.w;
    if (pa != SIZE_MAX && pb != SIZE_MAX) {
      qff(pa, pb) -= pr.w;
      qff(pb, pa) -= pr.w;
    }
  }
}

void StructuredQp::hessian_column(std::size_t v,
                                  const std::vector<std::size_t>& pos,
                                  linalg::Vector& col, double& diag) const {
  diag = diag_[v];
  for (const auto& [row_id, kv] : var_rows_[v]) {
    const Residual& row = rows_[row_id];
    const double wc = row.w * row.coef[kv];
    for (std::size_t k = 0; k < row.idx.size(); ++k) {
      const std::size_t i = row.idx[k];
      if (i == v) {
        diag += wc * row.coef[k];
      } else if (pos[i] != SIZE_MAX) {
        col[pos[i]] += wc * row.coef[k];
      }
    }
  }
  for (std::uint32_t pid : var_pairs_[v]) {
    const Pair& pr = pairs_[pid];
    diag += pr.w;
    const std::size_t other = pr.a == v ? pr.b : pr.a;
    if (pos[other] != SIZE_MAX) col[pos[other]] -= pr.w;
  }
}

QpProblem StructuredQp::to_dense() const {
  QpProblem p;
  p.Q = linalg::Matrix(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) p.Q(i, i) = diag_[i];
  for (const auto& row : rows_) {
    for (std::size_t r = 0; r < row.idx.size(); ++r) {
      const double wc = row.w * row.coef[r];
      for (std::size_t s = 0; s < row.idx.size(); ++s) {
        p.Q(row.idx[r], row.idx[s]) += wc * row.coef[s];
      }
    }
  }
  for (const auto& pr : pairs_) {
    p.Q(pr.a, pr.a) += pr.w;
    p.Q(pr.b, pr.b) += pr.w;
    p.Q(pr.a, pr.b) -= pr.w;
    p.Q(pr.b, pr.a) -= pr.w;
  }
  p.c = c_;
  p.lb = lb;
  p.ub = ub;
  p.budgets = budgets;
  return p;
}

KktResidual kkt_residual(const StructuredQp& p, const QpResult& r) {
  return detail::kkt_residual_impl(p, r);
}

}  // namespace perq::qp
