// FISTA (accelerated projected gradient) solver for PERQ's QP.
//
// This is the robust fallback behind the active-set solver: it converges for
// any feasible convex instance, at the cost of more iterations. The step size
// uses 1/L with L estimated by power iteration on Q.
#pragma once

#include "qp/problem.hpp"
#include "qp/structured.hpp"

namespace perq::qp {

struct PgOptions {
  std::size_t max_iterations = 20000;
  double tolerance = 1e-9;  ///< stop when the projected-gradient step norm falls below this
};

/// Solves `p` by FISTA from `x0` (projected to feasibility first).
/// Multiplier estimates in the result are reconstructed from the gradient at
/// the solution (used for KKT diagnostics, not for the optimization itself).
QpResult solve_projected_gradient(const QpProblem& p, const linalg::Vector& x0,
                                  const PgOptions& opts = {});

/// Structured overload: identical algorithm, but every gradient is a
/// matrix-free O(nnz) product and the step size comes from a Gershgorin
/// bound, so the dense Hessian is never materialized. This is the production
/// path for large MPC instances (nj * m in the thousands).
QpResult solve_projected_gradient(const StructuredQp& p, const linalg::Vector& x0,
                                  const PgOptions& opts = {});

/// Estimates the largest eigenvalue of symmetric Q by power iteration.
double estimate_spectral_norm(const linalg::Matrix& q, std::size_t iterations = 50);

}  // namespace perq::qp
