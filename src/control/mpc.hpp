// PERQ's constrained model-predictive controller (paper Secs. 2.3.2, 2.4.3).
//
// Every decision interval the controller condenses the per-job predictions
// into one quadratic program over the stacked future caps
// v = (p_{i,j} / TDP) for job i, horizon step j, minimizing (paper Eq. 2)
//
//   J = sum_j [ W_Tjob sum_i ((T_i - Y_ij)/T_i)^2
//             + W_dP   sum_i nodes_i ((p_ij - p_i,j-1)/TDP)^2
//             + W_Tsys ((T_sys - sum_i Y_ij)/T_sys)^2 ]
//
// subject to cap_min <= p_ij <= TDP and, per step j, the system budget
// sum_i nodes_i p_ij <= budget. Tracking errors are normalized by their own
// targets so jobs of very different IPS scales see comparable costs; caps
// are normalized by TDP so the weights are dimensionless (values match the
// paper's sweeps in Fig. 10).
//
// The predictions Y_ij are affine in v through each job's estimator: the
// shared LTI model contributes the impulse response h_m = C A^{m-1} B and
// the free response C A^j x_i; the job's adapted (gain, offset) maps model
// output to IPS. The resulting QP is strictly convex (tracking + ridge) and
// is solved by perq::qp with a warm start from the previous interval.
#pragma once

#include <vector>

#include "control/target_generator.hpp"
#include "qp/problem.hpp"

namespace perq::control {

struct MpcConfig {
  std::size_t horizon = 4;  ///< M, number of future control intervals
  double weight_job = 1.0;  ///< W_Tjob (paper uses equal job/system weights)
  double weight_sys = 1.0;  ///< W_Tsys (swept in Fig. 10b)
  double weight_dp = 2.0;   ///< W_dP, cap-slewing penalty (swept in Fig. 10c)
  double ridge = 1e-6;      ///< strict-convexity regularizer
  /// Terminal-cost multiplier on the last horizon step's tracking rows
  /// (paper Sec. 2.3.2: a large terminal cost enforces convergence by the
  /// end of the prediction horizon). 1 = uniform weighting.
  double terminal_weight = 2.0;

  /// Which QP pipeline solves the condensed problem.
  ///   kStructured (default): the assembly emits the structured Hessian form
  ///     (ridge + sparse residual rows + banded Delta-P terms) and solves it
  ///     with the structure-exploiting solvers -- incrementally-factorized
  ///     active set for small/medium problems, matrix-free FISTA beyond.
  ///     The dense (nj*m)^2 Hessian is never materialized.
  ///   kDense: materializes the dense QpProblem from the same structured
  ///     assembly and runs the legacy dense active-set/FISTA facade. Debug
  ///     and baseline adapter: tests use it to prove exact equivalence and
  ///     bench_mpc_scaling uses it as the comparison point.
  enum class SolverPath { kStructured, kDense };
  SolverPath solver = SolverPath::kStructured;

  /// Iteration cap forwarded to the QP solve facade (0 = solver defaults).
  /// A tiny cap starves both the active set and the projected-gradient
  /// fallback, surfacing kMaxIterations to the policy layer -- the hook the
  /// degradation-ladder tests use to force an uncertified solve.
  std::size_t max_qp_iterations = 0;

  /// Thread-pool the per-job free-response computation. The decomposition
  /// is index-addressed (job i writes only slot i), so the result is
  /// bit-for-bit identical to the serial loop; disable only to measure the
  /// serial baseline.
  bool parallel = true;
};

/// Outcome of one decision instant.
struct MpcDecision {
  std::vector<double> caps_w;  ///< per-job node cap to apply this interval
  qp::SolveStatus status = qp::SolveStatus::kOptimal;
  std::size_t qp_iterations = 0;
  double objective = 0.0;
  /// Lagrange multiplier of the first horizon step's budget row, converted
  /// to objective-per-watt units: how much the tracking cost would drop per
  /// extra watt of budget. Zero when the budget row is slack -- the hook the
  /// hierarchical arbiter uses as a domain's marginal-watt utility.
  double budget_dual_per_w = 0.0;
};

class MpcController {
 public:
  explicit MpcController(const MpcConfig& cfg = {});

  const MpcConfig& config() const { return cfg_; }

  /// Computes caps for the current job set. `prev_caps_w[i]` is the cap
  /// applied to job i during the previous interval (used by the Delta-P
  /// penalty and the warm start). `budget_busy_w` is the power available to
  /// busy nodes. Requires a non-empty job list.
  MpcDecision decide(const std::vector<ControlledJob>& jobs, const Targets& targets,
                     const std::vector<double>& prev_caps_w, double budget_busy_w);

  /// Clears warm-start memory (e.g. between experiments).
  void reset();

  /// Warm-start memory snapshot/restore: the previous stacked solution and
  /// the job ids it refers to. Restoring it is required for a restarted
  /// controller to reproduce the exact solver iterate sequence.
  struct WarmState {
    std::vector<double> warm;
    std::vector<int> warm_ids;
  };
  WarmState warm_state() const { return {warm_, warm_ids_}; }
  void restore_warm_state(WarmState s) {
    warm_ = std::move(s.warm);
    warm_ids_ = std::move(s.warm_ids);
  }

 private:
  MpcConfig cfg_;
  std::vector<double> warm_;     // previous stacked solution (normalized)
  std::vector<int> warm_ids_;    // job ids the warm start refers to
};

}  // namespace perq::control
