// Per-job adaptive performance estimator.
//
// PERQ identifies ONE node model per node type offline (perq::sysid) and
// must then track MANY unseen jobs online. Following the paper (Sec. 2.4.2:
// "The internal state X(k) of the node gets updated every decision instance
// based on the active input-output relationship of the currently running
// job"), each job gets:
//
//   * the shared LTI state x(k), advanced with the caps actually applied to
//     the job's nodes (the LTI response is a deterministic function of the
//     input history), and
//   * an affine output map  IPS = gain * y_model + offset  fitted online by
//     recursive least squares with forgetting.
//
// The gain is the job's *local power-cap sensitivity*: a job running in the
// flat region of its perf curve shows near-zero gain (extra power does not
// buy IPS), which is exactly the signal that lets the MPC shift power to
// jobs with high gain -- the paper's key mechanism (Fig. 12).
#pragma once

#include <cstdint>
#include <vector>

#include "sysid/identify.hpp"

namespace perq::control {

/// RLS tunables.
struct EstimatorConfig {
  double forgetting = 0.97;       ///< RLS forgetting factor (0 < lambda <= 1)
  double initial_covariance = 1e4;///< P0 diagonal (uninformative prior)
  double min_gain = 0.0;          ///< gain is projected to >= this
  /// Gain floor as a fraction of the node model's y_scale. A job whose gain
  /// estimate collapses to zero while it sits below its fairness target
  /// would otherwise leave the controller with no corrective gradient (the
  /// job's cost rows scale with its gain) -- the job would be parked
  /// under-target indefinitely. The floor guarantees a minimum believed
  /// benefit of power for every job.
  double min_gain_fraction = 0.2;
  /// Dead zone: the gain is only updated when the *input* (normalized cap)
  /// moved by at least this much from its recent average (caps held steady
  /// make the [y_model, 1] regressor collinear, so an unguarded RLS lets
  /// the gain drift on noise). The offset keeps adapting regardless, which
  /// is what tracks phase changes. 0.04 = ~4 W of cap movement.
  double excitation_threshold = 0.04;
};

/// Complete serializable state of one JobEstimator; save()/restore()
/// round-trips it exactly, which is what lets a perqd controller restart
/// mid-experiment and keep producing bit-identical cap plans.
struct EstimatorState {
  std::vector<double> state;  ///< LTI state vector (normalized units)
  double gain = 0.0;
  double offset = 0.0;
  double p00 = 0.0, p01 = 0.0, p11 = 0.0;  ///< RLS covariance
  double u_ema = 0.0;
  double last_u = 0.0;
  std::uint64_t updates = 0;
};

class JobEstimator {
 public:
  /// `node_model` must outlive the estimator. `initial_cap` seeds the LTI
  /// state at its steady state for that cap (the node was idling there).
  JobEstimator(const sysid::IdentifiedModel* node_model, double initial_cap,
               const EstimatorConfig& cfg = {});

  /// Feeds one control interval's observation: the cap that was applied to
  /// the job's nodes and the measured per-node IPS (slowest rank).
  void update(double applied_cap_w, double measured_node_ips);

  /// Normalized LTI model output at the current state (using the most
  /// recently applied input for the feedthrough term).
  double model_output() const;

  /// Current affine map: per-node IPS ~= gain() * y_model + offset().
  double gain() const { return gain_; }
  double offset() const { return offset_; }

  /// Predicted steady-state per-node IPS if the job were held at `cap_w`.
  /// Uses the shared model's DC gain through the job's affine map.
  double predict_steady_state(double cap_w) const;

  /// Predicted per-node IPS sequence for a future cap sequence (free-run
  /// from the current state). Used by tests; the MPC builds the equivalent
  /// affine form itself.
  linalg::Vector predict_horizon(const linalg::Vector& caps_w) const;

  /// Marginal per-node IPS per extra watt of steady-state cap.
  double sensitivity_per_watt() const;

  /// Current LTI state (normalized units).
  const linalg::Vector& state() const { return state_; }

  /// Number of update() calls so far.
  std::size_t updates() const { return updates_; }

  const sysid::IdentifiedModel& node_model() const { return *model_; }

  /// Snapshot / restore of the full adaptive state (controller restarts).
  EstimatorState save() const;
  void restore(const EstimatorState& s);

 private:
  const sysid::IdentifiedModel* model_;
  EstimatorConfig cfg_;
  linalg::Vector state_;    // LTI state, normalized units
  double gain_;             // IPS per unit normalized model output
  double offset_ = 0.0;     // IPS offset
  // RLS covariance (2x2, symmetric) over [gain, offset].
  double p00_, p01_, p11_;
  double u_ema_ = 0.0;   // slow average of the normalized input (dead zone)
  double last_u_ = 0.0;  // most recent normalized input (feedthrough)
  std::size_t updates_ = 0;
};

}  // namespace perq::control
