// PERQ target generator (paper Sec. 2.4.1).
//
// Produces, each decision interval:
//   * one fairness target per job: the IPS the job would achieve under the
//     fairness-oriented equal power split P_OP = TDP * N_WP / N_OP, predicted
//     through the job's adapted model, and
//   * one system throughput target: T_OP = improvement_ratio * T_WP, where
//     T_WP is the predicted aggregate IPS of the FCFS prefix of running jobs
//     that a worst-case-provisioned machine (N_WP nodes, all at TDP) could
//     accommodate.
#pragma once

#include <vector>

#include "control/estimator.hpp"
#include "sched/job.hpp"

namespace perq::control {

/// One running job as seen by the target generator / controller.
struct ControlledJob {
  const sched::Job* job = nullptr;
  const JobEstimator* estimator = nullptr;
};

struct Targets {
  /// Aggregate (all-node) IPS target per job, aligned with the input list.
  linalg::Vector job_target_ips;
  /// Aggregate system throughput target (sum of job IPS).
  double system_target_ips = 0.0;
  /// The fair equal-split cap P_OP used for the job targets.
  double fair_cap_w = 0.0;
};

class TargetGenerator {
 public:
  /// `improvement_ratio` is the system-throughput-improvement ratio of
  /// Fig. 10(a); the paper sets it to 4+ so the system target is an
  /// aspirational pull rather than a binding ceiling.
  TargetGenerator(double improvement_ratio, std::size_t worst_case_nodes,
                  std::size_t total_nodes);

  /// Computes targets for the current job set. Jobs must be running.
  /// `fair_cap_override_w > 0` replaces the static equal-split P_OP with a
  /// caller-supplied equal-share baseline (clamped to [cap_min, TDP]) -- the
  /// hierarchical path uses it to express fairness against a *domain's*
  /// granted share instead of the cluster-wide split. Zero (the default)
  /// keeps the original global fair cap, bit-for-bit.
  Targets generate(const std::vector<ControlledJob>& jobs,
                   double fair_cap_override_w = 0.0) const;

  double improvement_ratio() const { return improvement_ratio_; }
  double fair_cap_w() const;

 private:
  double improvement_ratio_;
  std::size_t worst_case_nodes_;
  std::size_t total_nodes_;
};

}  // namespace perq::control
