#include "control/mpc.hpp"

#include <algorithm>
#include <cmath>

#include "apps/app_model.hpp"
#include "qp/active_set.hpp"
#include "qp/structured.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace perq::control {

using linalg::Matrix;
using linalg::Vector;
using linalg::operator*;

MpcController::MpcController(const MpcConfig& cfg) : cfg_(cfg) {
  PERQ_REQUIRE(cfg_.horizon >= 1, "horizon must be >= 1");
  PERQ_REQUIRE(cfg_.weight_job >= 0.0 && cfg_.weight_sys >= 0.0 && cfg_.weight_dp >= 0.0,
               "weights must be non-negative");
  PERQ_REQUIRE(cfg_.terminal_weight >= 1.0, "terminal weight must be >= 1");
  PERQ_REQUIRE(cfg_.ridge > 0.0, "ridge must be positive");
}

void MpcController::reset() {
  warm_.clear();
  warm_ids_.clear();
}

MpcDecision MpcController::decide(const std::vector<ControlledJob>& jobs,
                                  const Targets& targets,
                                  const std::vector<double>& prev_caps_w,
                                  double budget_busy_w) {
  const std::size_t nj = jobs.size();
  PERQ_REQUIRE(nj >= 1, "MPC needs at least one job");
  PERQ_REQUIRE(prev_caps_w.size() == nj, "prev caps size mismatch");
  PERQ_REQUIRE(targets.job_target_ips.size() == nj, "targets size mismatch");

  const auto& spec = apps::node_power_spec();
  const std::size_t m = cfg_.horizon;
  const std::size_t nv = nj * m;
  const auto var = [nj](std::size_t i, std::size_t j) { return j * nj + i; };

  // Shared-model response: all jobs use the same LTI core, so the impulse
  // response h_m = C A^{m-1} B and the powers C A^j are computed once.
  const auto& ss = jobs[0].estimator->node_model().ss();
  const double u_scale = jobs[0].estimator->node_model().u_scale();
  // Prediction structure (with feedthrough):
  //   y(j) = C A^j x0 + sum_{l<j} g_{j-l} u(l) + g_0 u(j),
  // where g_0 = D and g_t = C A^{t-1} B for t >= 1.
  std::vector<Vector> ca(m);  // ca[j] = row C A^j
  Vector g(m + 1, 0.0);       // g[t] as above
  {
    const std::size_t n = ss.order();
    Vector row(n);
    for (std::size_t i = 0; i < n; ++i) row[i] = ss.C()(0, i);
    for (std::size_t j = 0; j < m; ++j) {
      ca[j] = row;  // C A^j
      Vector next(n, 0.0);
      for (std::size_t rr = 0; rr < n; ++rr) {
        for (std::size_t cc = 0; cc < n; ++cc) next[cc] += row[rr] * ss.A()(rr, cc);
      }
      row = std::move(next);
    }
    g[0] = ss.D();
    Vector x(n, 0.0);
    for (std::size_t t = 1; t <= m; ++t) {
      x = ss.step(x, t == 1 ? 1.0 : 0.0);
      // After t steps of a unit pulse, C x = C A^(t-1) B.
      double v = 0.0;
      for (std::size_t i = 0; i < n; ++i) v += ss.C()(0, i) * x[i];
      g[t] = v;
    }
  }
  // Cumulative response G[j] = sum_{t=0..j} g[t]. The model input is the
  // *centered* cap (p - u_mean)/u_scale; the -u_mean part contributes a
  // constant -u_mean/u_scale * G[j] to the prediction at step j.
  Vector g_cum(m + 1, 0.0);
  g_cum[0] = g[0];
  for (std::size_t t = 1; t <= m; ++t) g_cum[t] = g_cum[t - 1] + g[t];
  const double u_mean_norm =
      jobs[0].estimator->node_model().u_mean() / u_scale;

  // Per-job affine prediction pieces: y_i(j) = free_i[j] + sum_l g[j-l] u_il.
  // Jobs are independent here, so the loop is thread-pooled: job i writes
  // only free_resp[i], which keeps the result bit-for-bit identical to the
  // serial loop regardless of scheduling.
  std::vector<Vector> free_resp(nj, Vector(m, 0.0));
  const auto compute_free_response = [&](std::size_t i) {
    const Vector& x0 = jobs[i].estimator->state();
    for (std::size_t j = 0; j < m; ++j) {
      double v = 0.0;
      for (std::size_t kk = 0; kk < x0.size(); ++kk) v += ca[j][kk] * x0[kk];
      // Fold in the constant contribution of the input centering.
      free_resp[i][j] = v - u_mean_norm * g_cum[j];
    }
  };
  if (cfg_.parallel) {
    ThreadPool::shared().parallel_for(0, nj, compute_free_response, /*grain=*/8);
  } else {
    for (std::size_t i = 0; i < nj; ++i) compute_free_response(i);
  }

  // Assemble the QP in normalized cap units v = p / TDP, in the structured
  // term form (ridge + residual rows + banded Delta-P). The dense Hessian
  // is only materialized on the kDense debug/baseline path.
  qp::StructuredQp sp(nv);
  sp.lb.assign(nv, spec.cap_min / spec.tdp);
  sp.ub.assign(nv, 1.0);
  sp.add_ridge(cfg_.ridge);

  const double cap_to_u = spec.tdp / u_scale;  // d(u_norm)/d(v)
  // The system error is normalized by the *achievable* scale (the sum of
  // job fairness targets), not by the aspirational system target itself --
  // dividing by ratio * T_WP would weaken the system pull as the
  // improvement ratio grows, inverting the intended effect of the ratio.
  // The row weight is then scaled by sys_scale / T_sys so the pull
  // *saturates* once the target is far out of reach: the gradient behaves
  // like (1 - Y/T_sys) * sensitivity / sys_scale, which is what makes PERQ
  // insensitive to any improvement ratio >= ~4 (paper Fig. 10a) while still
  // letting the ratio soften the pull near 1.
  double sys_scale = 1.0;
  for (double t : targets.job_target_ips) sys_scale += t;
  const double weight_sys_eff =
      cfg_.weight_sys *
      std::min(1.0, sys_scale / std::max(targets.system_target_ips, 1.0));

  std::vector<std::size_t> idx;
  std::vector<double> coef;
  for (std::size_t j = 0; j < m; ++j) {
    // Terminal cost (paper Sec. 2.3.2): the final prediction step carries
    // extra weight so the plan must *converge* to the targets by the end of
    // the horizon, not merely drift toward them.
    const double terminal = (j + 1 == m) ? cfg_.terminal_weight : 1.0;
    // --- system tracking row for step j ---
    if (weight_sys_eff > 0.0) {
      idx.clear();
      coef.clear();
      double sys_const = 0.0;
      for (std::size_t i = 0; i < nj; ++i) {
        const double nodes = static_cast<double>(jobs[i].job->spec().nodes);
        const double gain = jobs[i].estimator->gain();
        sys_const += nodes * (gain * free_resp[i][j] + jobs[i].estimator->offset());
        for (std::size_t l = 0; l <= j; ++l) {
          idx.push_back(var(i, l));
          coef.push_back(nodes * gain * g[j - l] * cap_to_u / sys_scale);
        }
      }
      const double b = (targets.system_target_ips - sys_const) / sys_scale;
      sp.add_residual(idx, coef, b, weight_sys_eff * terminal);
    }

    for (std::size_t i = 0; i < nj; ++i) {
      const double nodes = static_cast<double>(jobs[i].job->spec().nodes);
      const double gain = jobs[i].estimator->gain();
      const double t_i = std::max(targets.job_target_ips[i], 1.0);
      // Fairness is a floor, not a setpoint (paper Sec. 2.4.1: each job's
      // objective is to achieve *at least* its equal-power performance). A
      // quadratic tracking term would penalize overshoot and fight the
      // system-throughput pull for exactly the jobs PERQ wants to boost, so
      // the tracking weight fades out once the job's measured performance
      // reaches its target, and re-engages if it falls below.
      double weight_job_i = cfg_.weight_job;
      const double measured = jobs[i].job->last_job_ips();
      if (measured > 0.0) {
        const double ratio = measured / t_i;
        constexpr double kLo = 1.0, kHi = 1.04, kFloorWeight = 0.1;
        if (ratio >= kHi) {
          weight_job_i *= kFloorWeight;
        } else if (ratio > kLo) {
          const double blend = (kHi - ratio) / (kHi - kLo);
          weight_job_i *= kFloorWeight + (1.0 - kFloorWeight) * blend;
        }
      }
      // --- job tracking row (i, j) ---
      if (weight_job_i > 0.0) {
        idx.clear();
        coef.clear();
        for (std::size_t l = 0; l <= j; ++l) {
          idx.push_back(var(i, l));
          coef.push_back(nodes * gain * g[j - l] * cap_to_u / t_i);
        }
        const double y_const =
            nodes * (gain * free_resp[i][j] + jobs[i].estimator->offset());
        const double b = (targets.job_target_ips[i] - y_const) / t_i;
        sp.add_residual(idx, coef, b, weight_job_i * terminal);
      }
      // --- Delta-P term (i, j): banded, not a general residual row ---
      if (cfg_.weight_dp > 0.0) {
        const double w = cfg_.weight_dp * nodes;
        if (j == 0) {
          sp.add_anchor(var(i, 0), prev_caps_w[i] / spec.tdp, w);
        } else {
          sp.add_smooth(var(i, j), var(i, j - 1), w);
        }
      }
    }

    // --- budget constraint for step j ---
    qp::BudgetConstraint bc;
    for (std::size_t i = 0; i < nj; ++i) {
      bc.index.push_back(var(i, j));
      bc.weight.push_back(static_cast<double>(jobs[i].job->spec().nodes));
    }
    bc.bound = budget_busy_w / spec.tdp;
    sp.budgets.push_back(std::move(bc));
  }

  // Warm start: previous solution where job ids line up, else the previous
  // applied cap replicated over the horizon.
  Vector warm(nv);
  for (std::size_t i = 0; i < nj; ++i) {
    const int id = jobs[i].job->spec().id;
    std::size_t prev_pos = warm_ids_.size();
    for (std::size_t k = 0; k < warm_ids_.size(); ++k) {
      if (warm_ids_[k] == id) {
        prev_pos = k;
        break;
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (prev_pos < warm_ids_.size()) {
        // Shift the previous plan one step forward.
        const std::size_t src = std::min(j + 1, m - 1) * warm_ids_.size() + prev_pos;
        warm[var(i, j)] = warm_[src];
      } else {
        warm[var(i, j)] = prev_caps_w[i] / spec.tdp;
      }
    }
  }

  qp::SolveOptions solve_opts;
  solve_opts.max_iterations = cfg_.max_qp_iterations;
  qp::QpResult res;
  if (cfg_.solver == MpcConfig::SolverPath::kDense) {
    const qp::QpProblem dense = sp.to_dense();
    res = qp::solve(dense, warm, solve_opts);
  } else {
    res = qp::solve(sp, warm, solve_opts);
  }

  MpcDecision d;
  d.status = res.status;
  d.qp_iterations = res.iterations;
  d.objective = res.objective;
  // The budget rows are indexed by horizon step; step 0 is the interval
  // actually actuated. Its multiplier is d(objective)/d(bound) in
  // normalized v units; dividing by TDP converts to per-watt.
  d.budget_dual_per_w =
      res.budget_mult.empty() ? 0.0 : res.budget_mult[0] / spec.tdp;
  d.caps_w.resize(nj);
  for (std::size_t i = 0; i < nj; ++i) {
    d.caps_w[i] = std::clamp(res.x[var(i, 0)] * spec.tdp, spec.cap_min, spec.tdp);
  }

  warm_ = res.x;
  warm_ids_.resize(nj);
  for (std::size_t i = 0; i < nj; ++i) warm_ids_[i] = jobs[i].job->spec().id;
  return d;
}

}  // namespace perq::control
