#include "control/target_generator.hpp"

#include <algorithm>
#include <numeric>

#include "apps/app_model.hpp"
#include "util/require.hpp"

namespace perq::control {

TargetGenerator::TargetGenerator(double improvement_ratio,
                                 std::size_t worst_case_nodes,
                                 std::size_t total_nodes)
    : improvement_ratio_(improvement_ratio),
      worst_case_nodes_(worst_case_nodes),
      total_nodes_(total_nodes) {
  PERQ_REQUIRE(improvement_ratio_ > 0.0, "improvement ratio must be positive");
  PERQ_REQUIRE(worst_case_nodes_ >= 1, "worst-case node count must be >= 1");
  PERQ_REQUIRE(total_nodes_ >= worst_case_nodes_,
               "over-provisioned system cannot be smaller than worst-case");
}

double TargetGenerator::fair_cap_w() const {
  const auto& spec = apps::node_power_spec();
  const double p_op = spec.tdp * static_cast<double>(worst_case_nodes_) /
                      static_cast<double>(total_nodes_);
  return std::clamp(p_op, spec.cap_min, spec.tdp);
}

Targets TargetGenerator::generate(const std::vector<ControlledJob>& jobs,
                                  double fair_cap_override_w) const {
  const auto& spec = apps::node_power_spec();
  Targets t;
  t.fair_cap_w = fair_cap_override_w > 0.0
                     ? std::clamp(fair_cap_override_w, spec.cap_min, spec.tdp)
                     : fair_cap_w();
  t.job_target_ips.resize(jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    PERQ_REQUIRE(jobs[i].job != nullptr && jobs[i].estimator != nullptr,
                 "controlled job must carry job and estimator");
    const double nodes = static_cast<double>(jobs[i].job->spec().nodes);
    double target = nodes * jobs[i].estimator->predict_steady_state(t.fair_cap_w);
    // Monotonicity guard (paper Observation 3: performance is monotone in
    // the cap). A job measured under a cap *below* the fair share would do
    // at least as well at the fair share, so its target cannot sit below
    // the measurement; symmetrically, a job above the fair share bounds the
    // target from above. This keeps model-extrapolation error from starving
    // or over-serving a job.
    const double measured = jobs[i].job->last_job_ips();
    const double cap = jobs[i].job->last_cap_w();
    if (measured > 0.0 && cap > 0.0) {
      constexpr double kNoiseBand = 1.02;
      if (cap <= t.fair_cap_w) {
        target = std::max(target, measured);
      } else {
        target = std::min(target, measured * kNoiseBand);
      }
    }
    t.job_target_ips[i] = target;
  }

  // A_WP: the FCFS prefix (by start time, then id) of the running jobs that
  // fits on a worst-case-provisioned machine. Predict each at TDP.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ja = *jobs[a].job;
    const auto& jb = *jobs[b].job;
    if (ja.start_time_s() != jb.start_time_s()) {
      return ja.start_time_s() < jb.start_time_s();
    }
    return ja.spec().id < jb.spec().id;
  });
  std::size_t wp_nodes_used = 0;
  double t_wp = 0.0;
  for (std::size_t idx : order) {
    const std::size_t n = jobs[idx].job->spec().nodes;
    if (wp_nodes_used + n > worst_case_nodes_) continue;  // skip, try smaller
    wp_nodes_used += n;
    t_wp += static_cast<double>(n) *
            jobs[idx].estimator->predict_steady_state(spec.tdp);
    if (wp_nodes_used == worst_case_nodes_) break;
  }
  t.system_target_ips = improvement_ratio_ * t_wp;
  return t;
}

}  // namespace perq::control
