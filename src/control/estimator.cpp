#include "control/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/decompose.hpp"
#include "util/require.hpp"

namespace perq::control {

using linalg::operator-;
using linalg::operator*;

JobEstimator::JobEstimator(const sysid::IdentifiedModel* node_model,
                           double initial_cap, const EstimatorConfig& cfg)
    : model_(node_model), cfg_(cfg) {
  PERQ_REQUIRE(model_ != nullptr, "estimator needs a node model");
  PERQ_REQUIRE(cfg_.forgetting > 0.0 && cfg_.forgetting <= 1.0,
               "forgetting factor in (0, 1]");
  PERQ_REQUIRE(cfg_.initial_covariance > 0.0, "covariance must be positive");

  // Seed the LTI state at its steady state for the cap the node idled at.
  const auto& ss = model_->ss();
  const double u0 = model_->normalize_u(initial_cap);
  const linalg::Matrix m = linalg::Matrix::identity(ss.order()) - ss.A();
  state_ = linalg::Lu(m).solve(ss.B().col(0) * u0);
  last_u_ = u0;
  u_ema_ = u0;

  // Prior: the "average training application". The shared model's output is
  // a relative deviation from the operating point, so the prior is
  // ips ~= y_scale * (1 + y_model): gain = offset = y_scale.
  gain_ = model_->y_scale();
  offset_ = model_->y_scale();
  p00_ = p11_ = cfg_.initial_covariance;
  p01_ = 0.0;
}

double JobEstimator::model_output() const {
  return model_->ss().output(state_, last_u_);
}

void JobEstimator::update(double applied_cap_w, double measured_node_ips) {
  PERQ_REQUIRE(applied_cap_w > 0.0, "cap must be positive");
  PERQ_REQUIRE(measured_node_ips >= 0.0, "IPS must be non-negative");

  // The measurement taken during this interval pairs with the model output
  // y(k) = C x(k) + D u(k) at the cap that was just applied; the state then
  // advances for the next interval.
  const double u_norm = model_->normalize_u(applied_cap_w);
  const double phi0 = model_->ss().output(state_, u_norm);  // regressor [y, 1]
  state_ = model_->ss().step(state_, u_norm);
  last_u_ = u_norm;
  if (updates_ == 0) u_ema_ = u_norm;
  const bool excited = std::abs(u_norm - u_ema_) >= cfg_.excitation_threshold;
  u_ema_ += 0.2 * (u_norm - u_ema_);

  const double err = measured_node_ips - (gain_ * phi0 + offset_);
  const double lambda = cfg_.forgetting;
  if (excited) {
    // Full 2-parameter RLS with forgetting over theta = [gain, offset].
    const double pv0 = p00_ * phi0 + p01_;  // P * phi
    const double pv1 = p01_ * phi0 + p11_;
    const double denom = lambda + phi0 * pv0 + pv1;
    PERQ_ASSERT(denom > 0.0, "RLS denominator must be positive");
    const double k0 = pv0 / denom;
    const double k1 = pv1 / denom;
    gain_ += k0 * err;
    offset_ += k1 * err;
    p00_ = (p00_ - k0 * pv0) / lambda;
    p01_ = (p01_ - k0 * pv1) / lambda;
    p11_ = (p11_ - k1 * pv1) / lambda;
  } else {
    // Dead zone: no gain information in the data; nudge the offset with a
    // small fixed step (tracks phase drift without chasing noise) and leave
    // the covariance as-is so the next excitation is absorbed quickly.
    offset_ += 0.2 * err;
  }
  // Keep the covariance bounded (forgetting inflates it when the regressor
  // barely changes -- the classic RLS wind-up). Scale the whole matrix so
  // positive-definiteness is preserved.
  const double max_diag = std::max(p00_, p11_);
  if (max_diag > cfg_.initial_covariance) {
    const double shrink = cfg_.initial_covariance / max_diag;
    p00_ *= shrink;
    p01_ *= shrink;
    p11_ *= shrink;
  }
  // Guard against numerical loss of positive-definiteness.
  const double det_floor = 1e-12 * p00_ * p11_;
  if (p00_ * p11_ - p01_ * p01_ < det_floor) {
    p01_ = std::copysign(std::sqrt(std::max(0.0, p00_ * p11_ - det_floor)), p01_);
  }

  gain_ = std::max({gain_, cfg_.min_gain, cfg_.min_gain_fraction * model_->y_scale()});
  ++updates_;
}

EstimatorState JobEstimator::save() const {
  EstimatorState s;
  s.state = state_;
  s.gain = gain_;
  s.offset = offset_;
  s.p00 = p00_;
  s.p01 = p01_;
  s.p11 = p11_;
  s.u_ema = u_ema_;
  s.last_u = last_u_;
  s.updates = updates_;
  return s;
}

void JobEstimator::restore(const EstimatorState& s) {
  PERQ_REQUIRE(s.state.size() == model_->ss().order(),
               "estimator state order mismatch");
  state_ = s.state;
  gain_ = s.gain;
  offset_ = s.offset;
  p00_ = s.p00;
  p01_ = s.p01;
  p11_ = s.p11;
  u_ema_ = s.u_ema;
  last_u_ = s.last_u;
  updates_ = static_cast<std::size_t>(s.updates);
}

double JobEstimator::predict_steady_state(double cap_w) const {
  const double y = model_->arx().dc_gain() * model_->normalize_u(cap_w);
  return std::max(0.0, gain_ * y + offset_);
}

linalg::Vector JobEstimator::predict_horizon(const linalg::Vector& caps_w) const {
  linalg::Vector x = state_;
  linalg::Vector ips(caps_w.size());
  for (std::size_t j = 0; j < caps_w.size(); ++j) {
    const double u = model_->normalize_u(caps_w[j]);
    ips[j] = std::max(0.0, gain_ * model_->ss().output(x, u) + offset_);
    x = model_->ss().step(x, u);
  }
  return ips;
}

double JobEstimator::sensitivity_per_watt() const {
  return gain_ * model_->arx().dc_gain() / model_->u_scale();
}

}  // namespace perq::control
