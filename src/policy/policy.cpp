#include "policy/policy.hpp"

#include <algorithm>
#include <numeric>

#include "apps/app_model.hpp"
#include "util/require.hpp"

namespace perq::policy {

std::vector<double> enforce_budget(const std::vector<sched::Job*>& running,
                                   std::vector<double> caps, double budget_w) {
  PERQ_REQUIRE(caps.size() == running.size(), "caps/jobs size mismatch");
  const auto& spec = apps::node_power_spec();
  double floor_w = 0.0;
  for (const auto* job : running) {
    floor_w += static_cast<double>(job->spec().nodes) * spec.cap_min;
  }
  PERQ_REQUIRE(floor_w <= budget_w + 1e-6,
               "budget cannot cover the cap_min floor of all running jobs");

  double committed = 0.0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    caps[i] = std::clamp(caps[i], spec.cap_min, spec.tdp);
    committed += caps[i] * static_cast<double>(running[i]->spec().nodes);
  }
  if (committed <= budget_w) return caps;

  // Scale the headroom above cap_min uniformly so the sum meets the budget.
  const double headroom = committed - floor_w;
  const double allowed = budget_w - floor_w;
  const double scale = headroom > 0.0 ? allowed / headroom : 0.0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    caps[i] = spec.cap_min + (caps[i] - spec.cap_min) * scale;
  }
  return caps;
}

std::vector<double> FairShare::allocate(const PolicyContext& ctx) {
  PERQ_REQUIRE(ctx.running != nullptr, "policy context missing running jobs");
  PERQ_REQUIRE(ctx.total_nodes >= 1.0, "total_nodes must be >= 1");
  const auto& running = *ctx.running;
  const auto& spec = apps::node_power_spec();
  // Paper definition: the budget is split evenly over *all* N_OP nodes of
  // the over-provisioned system, busy or idle (cap = budget / N_OP = TDP/f).
  const double cap =
      std::clamp(ctx.budget_total_w / ctx.total_nodes, spec.cap_min, spec.tdp);
  std::vector<double> caps(running.size(), cap);
  return enforce_budget(running, std::move(caps), ctx.budget_for_busy_w);
}

GreedyPriority::GreedyPriority(GreedyOrder order) : order_(order) {}

std::string GreedyPriority::name() const {
  switch (order_) {
    case GreedyOrder::kSmallestJobFirst: return "SJS";
    case GreedyOrder::kLargestJobFirst: return "LJS";
    case GreedyOrder::kSmallestRemainingFirst: return "SRN";
  }
  return "greedy";
}

std::vector<double> GreedyPriority::allocate(const PolicyContext& ctx) {
  PERQ_REQUIRE(ctx.running != nullptr, "policy context missing running jobs");
  const auto& running = *ctx.running;
  const auto& spec = apps::node_power_spec();
  const std::size_t n = running.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ja = *running[a];
    const auto& jb = *running[b];
    switch (order_) {
      case GreedyOrder::kSmallestJobFirst:
        if (ja.spec().nodes != jb.spec().nodes) return ja.spec().nodes < jb.spec().nodes;
        break;
      case GreedyOrder::kLargestJobFirst:
        if (ja.spec().nodes != jb.spec().nodes) return ja.spec().nodes > jb.spec().nodes;
        break;
      case GreedyOrder::kSmallestRemainingFirst: {
        const double ra = ja.remaining_node_hours();
        const double rb = jb.remaining_node_hours();
        if (ra != rb) return ra < rb;
        break;
      }
    }
    return ja.spec().id < jb.spec().id;  // deterministic tie-break
  });

  // Non-priority jobs are guaranteed a baseline of 60% of the equal share
  // (floored at cap_min): a literal "everything left runs at cap_min"
  // reading starves the tail into uselessness once applications saturate
  // below TDP, which makes the baseline pathological rather than merely
  // unfair. The reserve keeps the policy recognizably throughput-greedy
  // while non-priority jobs still make progress.
  double total_nodes = 0.0;
  for (const auto* job : running) total_nodes += static_cast<double>(job->spec().nodes);
  const double equal_share = ctx.budget_for_busy_w / std::max(1.0, total_nodes);
  const double reserve =
      std::clamp(0.6 * equal_share, spec.cap_min, spec.tdp);

  double reserve_owed = 0.0;
  for (const auto* job : running) {
    reserve_owed += static_cast<double>(job->spec().nodes) * reserve;
  }
  double remaining = ctx.budget_for_busy_w;
  std::vector<double> caps(n, spec.cap_min);
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t i = order[rank];
    const double nodes = static_cast<double>(running[i]->spec().nodes);
    reserve_owed -= nodes * reserve;
    const double avail = remaining - reserve_owed;  // keep the reserve for the rest
    const double cap = std::clamp(avail / nodes, spec.cap_min, spec.tdp);
    caps[i] = cap;
    remaining -= cap * nodes;
  }
  return enforce_budget(running, std::move(caps), ctx.budget_for_busy_w);
}

std::unique_ptr<PowerPolicy> make_fop() { return std::make_unique<FairShare>(); }
std::unique_ptr<PowerPolicy> make_sjs() {
  return std::make_unique<GreedyPriority>(GreedyOrder::kSmallestJobFirst);
}
std::unique_ptr<PowerPolicy> make_ljs() {
  return std::make_unique<GreedyPriority>(GreedyOrder::kLargestJobFirst);
}
std::unique_ptr<PowerPolicy> make_srn() {
  return std::make_unique<GreedyPriority>(GreedyOrder::kSmallestRemainingFirst);
}

}  // namespace perq::policy
