// Power-provisioning policy interface and the paper's baseline policies.
//
// A policy maps the set of running jobs to one power-cap per job (all nodes
// of a job receive the same cap; nodes are homogeneous). The caps must
// satisfy   sum_j nodes_j * cap_j <= budget_for_busy_w   and
// cap_min <= cap_j <= TDP. The engine enforces these invariants after every
// allocation.
//
// Baselines evaluated in the paper (Sec. 3 "Power Provisioning Policies"):
//   FOP -- fairness-oriented: equal power to all nodes.
//   SJS -- smallest-job-size first gets maximum power.
//   LJS -- largest-job-size first (shown to hurt throughput).
//   SRN -- smallest-remaining-node-hours first; uses oracle knowledge of
//          remaining runtime, the strongest throughput-oriented baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace perq::policy {

/// Inputs available to a policy at one decision instant.
///
/// With hierarchical budget domains, a context describes whatever budget
/// scope the caller carved out: for a domain-local solve, `running` holds
/// only the domain's jobs and `budget_for_busy_w` is the domain's granted
/// watts rather than the cluster budget. The `fair_cap_w` override then
/// re-bases the fairness floor on the granted share; the defaults keep the
/// original single-budget semantics bit-for-bit.
struct PolicyContext {
  const std::vector<sched::Job*>* running = nullptr;  ///< active jobs
  double budget_total_w = 0.0;     ///< full system power budget (N_WP * TDP)
  double budget_for_busy_w = 0.0;  ///< watts this scope may spend on busy nodes
  double total_nodes = 0.0;        ///< N_OP (for FOP's equal split)
  double dt_s = 10.0;              ///< control interval length
  double now_s = 0.0;              ///< simulation time
  /// Equal-share fairness baseline override in watts per node. 0 keeps the
  /// policy's static cluster-wide fair cap (TDP * N_WP / N_OP); a positive
  /// value re-bases job fairness targets on this cap instead (hier mode).
  double fair_cap_w = 0.0;
  std::uint32_t domain_id = 0;     ///< which budget domain this scope is
  std::uint32_t domain_count = 1;  ///< total domains (1 = monolithic)
};

class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  virtual std::string name() const = 0;

  /// Returns one cap per running job, aligned with (*ctx.running).
  virtual std::vector<double> allocate(const PolicyContext& ctx) = 0;

  /// Lifecycle notifications (PERQ uses them to reset per-job estimators).
  virtual void on_job_started(const sched::Job&) {}
  virtual void on_job_finished(const sched::Job&) {}

  /// The job-level performance target the policy is currently tracking for
  /// `job_id`, in aggregate IPS. Baselines have no notion of a target and
  /// return 0; PERQ reports its fairness target (used by the Fig. 8 traces).
  virtual double target_ips(int /*job_id*/) const { return 0.0; }
};

/// Clamps caps to [cap_min, TDP] and, if the weighted sum exceeds the
/// budget, scales the headroom above cap_min down uniformly. Guarantees the
/// budget invariant whenever nodes * cap_min <= budget.
std::vector<double> enforce_budget(const std::vector<sched::Job*>& running,
                                   std::vector<double> caps, double budget_w);

/// FOP: every node gets budget / N_OP (clamped to the cap range).
class FairShare final : public PowerPolicy {
 public:
  std::string name() const override { return "FOP"; }
  std::vector<double> allocate(const PolicyContext& ctx) override;
};

/// Priority order used by the greedy throughput-oriented baselines.
enum class GreedyOrder { kSmallestJobFirst, kLargestJobFirst, kSmallestRemainingFirst };

/// Greedy: jobs in priority order get TDP while the budget (net of the
/// cap_min floor owed to every other job) allows; the rest split what is
/// left.
class GreedyPriority final : public PowerPolicy {
 public:
  explicit GreedyPriority(GreedyOrder order);
  std::string name() const override;
  std::vector<double> allocate(const PolicyContext& ctx) override;

 private:
  GreedyOrder order_;
};

/// Factory helpers for the paper's baseline set.
std::unique_ptr<PowerPolicy> make_fop();
std::unique_ptr<PowerPolicy> make_sjs();
std::unique_ptr<PowerPolicy> make_ljs();
std::unique_ptr<PowerPolicy> make_srn();

}  // namespace perq::policy
