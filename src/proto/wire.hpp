// Byte-level primitives of the perqd wire format.
//
// All integers are little-endian fixed width; doubles travel as the raw
// IEEE-754 bit pattern (bit_cast through uint64), so a value round-trips
// bit-for-bit -- the loopback-equivalence guarantee of the daemon depends
// on this. Strings and blobs are u32-length-prefixed.
//
// WireReader is non-throwing: any out-of-bounds read flips a sticky `ok`
// flag and subsequent reads return zero values. Callers check ok() once at
// the end, which keeps parsers of attacker-controlled bytes branch-simple.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace perq::proto {

/// Appends fixed-width little-endian values to a byte buffer.
///
/// By default the writer owns its buffer (and take() moves it out). The
/// external-buffer constructor retargets every append at a caller-owned
/// vector instead: hot paths keep one scratch vector alive across frames,
/// so steady-state encodes reuse its capacity and never touch the heap.
class WireWriter {
 public:
  WireWriter() : buf_(&own_) {}
  /// Appends into `out` (not cleared: the caller chooses append vs reuse).
  explicit WireWriter(std::vector<std::uint8_t>& out) : buf_(&out) {}

  void u8(std::uint8_t v) { buf_->push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s);
  void bytes(const std::uint8_t* data, std::size_t n);

  const std::vector<std::uint8_t>& data() const { return *buf_; }
  std::vector<std::uint8_t> take() { return std::move(*buf_); }
  std::size_t size() const { return buf_->size(); }

  /// Overwrites 4 bytes at `offset` (for back-patching length prefixes).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* buf_;
};

/// Reads fixed-width little-endian values from a byte span; sticky failure.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str();
  /// Reads a u32-length-prefixed blob into `out` (cleared first, capacity
  /// kept). An overrunning length flips the sticky failure flag.
  void blob(std::vector<std::uint8_t>& out);

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// True when every byte was consumed and no read overran.
  bool exhausted() const { return ok_ && pos_ == size_; }

 private:
  template <typename T>
  T read_le() {
    if (!ok_ || size_ - pos_ < sizeof(T)) {
      ok_ = false;
      return T{0};
    }
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace perq::proto
