#include "proto/delta.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace perq::proto {

namespace {

/// Bit-exact payload equality: the delta must reproduce the full plan's
/// bytes, so NaN payloads and signed zeros compare as their bit patterns,
/// not by IEEE semantics.
bool same_payload(const CapEntry& a, const CapEntry& b) {
  return std::bit_cast<std::uint64_t>(a.cap_w) ==
             std::bit_cast<std::uint64_t>(b.cap_w) &&
         std::bit_cast<std::uint64_t>(a.target_ips) ==
             std::bit_cast<std::uint64_t>(b.target_ips) &&
         a.held == b.held;
}

}  // namespace

void canonicalize(CapPlan& plan) {
  std::sort(plan.entries.begin(), plan.entries.end(),
            [](const CapEntry& a, const CapEntry& b) {
              return a.job_id < b.job_id;
            });
}

void make_delta(const CapPlan& base, const CapPlan& next, CapPlanDelta& out) {
  out.tick = next.tick;
  out.base_tick = base.tick;
  out.result_entries = static_cast<std::uint32_t>(next.entries.size());
  out.ops.clear();

  std::size_t i = 0;  // base cursor
  std::size_t j = 0;  // next cursor
  while (i < base.entries.size() && j < next.entries.size()) {
    const CapEntry& b = base.entries[i];
    const CapEntry& n = next.entries[j];
    if (b.job_id < n.job_id) {
      out.ops.push_back({kDeltaRemove, CapEntry{b.job_id, 0.0, 0.0, 0}});
      ++i;
    } else if (n.job_id < b.job_id) {
      out.ops.push_back({kDeltaInsert, n});
      ++j;
    } else {
      if (!same_payload(b, n)) out.ops.push_back({kDeltaUpdate, n});
      ++i;
      ++j;
    }
  }
  for (; i < base.entries.size(); ++i) {
    out.ops.push_back({kDeltaRemove, CapEntry{base.entries[i].job_id, 0.0, 0.0, 0}});
  }
  for (; j < next.entries.size(); ++j) {
    out.ops.push_back({kDeltaInsert, next.entries[j]});
  }
}

bool apply_delta(const CapPlan& base, const CapPlanDelta& d, CapPlan& out) {
  if (base.tick != d.base_tick) return false;

  out.tick = d.tick;
  out.entries.clear();

  std::size_t i = 0;  // base cursor
  bool any_op = false;
  std::int32_t prev_op_id = 0;
  for (const CapDeltaOp& o : d.ops) {
    // Canonical grammar: strictly ascending op ids (also rejects duplicate
    // ops for one job, which would make application order-dependent).
    if (any_op && o.entry.job_id <= prev_op_id) return false;
    any_op = true;
    prev_op_id = o.entry.job_id;

    while (i < base.entries.size() && base.entries[i].job_id < o.entry.job_id) {
      out.entries.push_back(base.entries[i]);
      ++i;
    }
    const bool present =
        i < base.entries.size() && base.entries[i].job_id == o.entry.job_id;
    switch (o.op) {
      case kDeltaUpdate:
        if (!present) return false;  // update of an unknown job id
        out.entries.push_back(o.entry);
        ++i;
        break;
      case kDeltaInsert:
        if (present) return false;  // insert of an id already in the base
        out.entries.push_back(o.entry);
        break;
      case kDeltaRemove:
        if (!present) return false;  // remove of an unknown job id
        ++i;
        break;
      default:
        return false;
    }
  }
  for (; i < base.entries.size(); ++i) out.entries.push_back(base.entries[i]);

  return out.entries.size() == static_cast<std::size_t>(d.result_entries);
}

}  // namespace perq::proto
