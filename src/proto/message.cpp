#include "proto/message.hpp"

#include "proto/wire.hpp"

namespace perq::proto {

namespace {

// Per-type body serializers. Keep write_* and read_* in field-for-field
// lockstep; the round-trip tests enforce it for every type.

void write_body(WireWriter& w, const Hello& m) {
  w.u32(m.agent_id);
  w.u32(m.node_begin);
  w.u32(m.node_end);
  w.u64(m.last_plan_tick);
  w.u8(m.has_plan);
}

void write_body(WireWriter& w, const Telemetry& m) {
  w.u32(m.agent_id);
  w.u64(m.tick);
  w.u32(m.seq);
  w.u8(m.flags);
  w.i32(m.job_id);
  w.u32(m.nodes);
  w.u32(m.app_index);
  w.f64(m.runtime_ref_s);
  w.f64(m.progress_s);
  w.f64(m.min_perf);
  w.f64(m.cap_w);
  w.f64(m.ips);
  w.f64(m.power_w);
}

void write_body(WireWriter& w, const CapPlan& m) {
  w.u64(m.tick);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const CapEntry& e : m.entries) {
    w.i32(e.job_id);
    w.f64(e.cap_w);
    w.f64(e.target_ips);
    w.u8(e.held);
  }
}

void write_body(WireWriter& w, const Heartbeat& m) {
  w.u32(m.agent_id);
  w.u64(m.tick);
  w.f64(m.now_s);
  w.f64(m.dt_s);
  w.f64(m.budget_total_w);
  w.f64(m.budget_for_busy_w);
  w.f64(m.total_nodes);
}

void write_body(WireWriter& w, const Bye& m) { w.u32(m.agent_id); }

void write_body(WireWriter& w, const DomainReport& m) {
  w.u32(m.domain_id);
  w.u32(m.domain_count);
  w.u64(m.tick);
  w.u32(m.jobs);
  w.f64(m.busy_nodes);
  w.f64(m.floor_w);
  w.f64(m.capacity_w);
  w.f64(m.committed_w);
  w.f64(m.utility_per_w);
  w.f64(m.achieved_ips);
  w.f64(m.target_ips);
  w.f64(m.cluster_budget_w);
  w.u64(m.frames_dropped);
  w.u64(m.frames_corrupt);
  w.u64(m.reconnect_attempts);
  w.u64(m.stale_transitions);
  w.u64(m.solver_fallbacks);
  w.u64(m.clamp_activations);
  w.u64(m.failsafe_activations);
  w.u64(m.stale_epoch_frames);
  w.u64(m.controller_epoch);
  // Trailing v2 extension, written only when it would say something: a
  // tenant-blank depth-1 report stays byte-identical to a v1 encoder.
  const bool extended = m.flags != 0 || m.grants_fenced != 0 ||
                        m.reparent_events != 0 || m.sla_floor_activations != 0 ||
                        !m.tree_path.empty() || m.sla_floor_w != 0.0 ||
                        m.priority_weight != 1.0 || m.share_weight != 0.0;
  if (!extended) return;
  w.u8(2);  // body version
  w.u8(m.flags);
  w.u64(m.grants_fenced);
  w.u64(m.reparent_events);
  w.u64(m.sla_floor_activations);
  w.u8(static_cast<std::uint8_t>(m.tree_path.size()));
  for (std::uint32_t node : m.tree_path) w.u32(node);
  // Tenant TLV: every known id is always written (fixed-width entries), so
  // a reader that knows fewer ids can still step over the rest.
  w.u8(3);
  w.u8(kTenantSlaFloorW);
  w.f64(m.sla_floor_w);
  w.u8(kTenantPriorityWeight);
  w.f64(m.priority_weight);
  w.u8(kTenantShareWeight);
  w.f64(m.share_weight);
}

void write_body(WireWriter& w, const BudgetGrant& m) {
  w.u32(m.domain_id);
  w.u64(m.tick);
  w.f64(m.grant_w);
  w.f64(m.cluster_budget_w);
  const bool extended = m.arbiter_epoch != 0 || !m.tree_path.empty();
  if (!extended) return;
  w.u8(2);  // body version
  w.u64(m.arbiter_epoch);
  w.u8(static_cast<std::uint8_t>(m.tree_path.size()));
  for (std::uint32_t node : m.tree_path) w.u32(node);
}

void write_body(WireWriter& w, const CapPlanDelta& m) {
  w.u64(m.tick);
  w.u64(m.base_tick);
  w.u32(m.result_entries);
  w.u32(static_cast<std::uint32_t>(m.ops.size()));
  for (const CapDeltaOp& o : m.ops) {
    w.u8(o.op);
    w.i32(o.entry.job_id);
    w.f64(o.entry.cap_w);
    w.f64(o.entry.target_ips);
    w.u8(o.entry.held);
  }
}

Hello read_hello(WireReader& r) {
  Hello m;
  m.agent_id = r.u32();
  m.node_begin = r.u32();
  m.node_end = r.u32();
  m.last_plan_tick = r.u64();
  m.has_plan = r.u8();
  return m;
}

Telemetry read_telemetry(WireReader& r) {
  Telemetry m;
  m.agent_id = r.u32();
  m.tick = r.u64();
  m.seq = r.u32();
  m.flags = r.u8();
  m.job_id = r.i32();
  m.nodes = r.u32();
  m.app_index = r.u32();
  m.runtime_ref_s = r.f64();
  m.progress_s = r.f64();
  m.min_perf = r.f64();
  m.cap_w = r.f64();
  m.ips = r.f64();
  m.power_w = r.f64();
  return m;
}

bool read_cap_plan(WireReader& r, CapPlan& m) {
  m.entries.clear();  // capacity kept: the reuse contract of parse_frame_into
  m.tick = r.u64();
  const std::uint32_t n = r.u32();
  // Each entry is at least 21 bytes; a count that cannot fit in the
  // remaining body is a forged length, not a short read.
  if (!r.ok() || static_cast<std::size_t>(n) * 21 > r.remaining()) return false;
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CapEntry e;
    e.job_id = r.i32();
    e.cap_w = r.f64();
    e.target_ips = r.f64();
    e.held = r.u8();
    m.entries.push_back(e);
  }
  return true;
}

Heartbeat read_heartbeat(WireReader& r) {
  Heartbeat m;
  m.agent_id = r.u32();
  m.tick = r.u64();
  m.now_s = r.f64();
  m.dt_s = r.f64();
  m.budget_total_w = r.f64();
  m.budget_for_busy_w = r.f64();
  m.total_nodes = r.f64();
  return m;
}

Bye read_bye(WireReader& r) {
  Bye m;
  m.agent_id = r.u32();
  return m;
}

bool read_domain_report(WireReader& r, DomainReport& m) {
  m.tree_path.clear();  // capacity kept: the reuse contract of parse_frame_into
  m.domain_id = r.u32();
  m.domain_count = r.u32();
  m.tick = r.u64();
  m.jobs = r.u32();
  m.busy_nodes = r.f64();
  m.floor_w = r.f64();
  m.capacity_w = r.f64();
  m.committed_w = r.f64();
  m.utility_per_w = r.f64();
  m.achieved_ips = r.f64();
  m.target_ips = r.f64();
  m.cluster_budget_w = r.f64();
  m.frames_dropped = r.u64();
  m.frames_corrupt = r.u64();
  m.reconnect_attempts = r.u64();
  m.stale_transitions = r.u64();
  m.solver_fallbacks = r.u64();
  m.clamp_activations = r.u64();
  m.failsafe_activations = r.u64();
  m.stale_epoch_frames = r.u64();
  m.controller_epoch = r.u64();
  // Reset the v2 fields before probing the extension: the reused slot may
  // still hold the previous frame's values, and an absent extension must
  // decode as the defaults.
  m.flags = 0;
  m.grants_fenced = 0;
  m.reparent_events = 0;
  m.sla_floor_activations = 0;
  m.sla_floor_w = 0.0;
  m.priority_weight = 1.0;
  m.share_weight = 0.0;
  if (!r.ok()) return false;
  if (r.remaining() == 0) return true;  // v1 body: defaults stand
  const std::uint8_t body_version = r.u8();
  if (body_version < 2) return false;
  m.flags = r.u8();
  m.grants_fenced = r.u64();
  m.reparent_events = r.u64();
  m.sla_floor_activations = r.u64();
  const std::uint8_t path_len = r.u8();
  if (!r.ok() || path_len > kMaxTreePathDepth ||
      static_cast<std::size_t>(path_len) * 4 > r.remaining()) {
    return false;  // tree-path truncation or an absurd depth both reject
  }
  m.tree_path.reserve(path_len);
  for (std::uint8_t i = 0; i < path_len; ++i) m.tree_path.push_back(r.u32());
  const std::uint8_t tlv_count = r.u8();
  if (!r.ok() || static_cast<std::size_t>(tlv_count) * 9 > r.remaining()) {
    return false;
  }
  for (std::uint8_t i = 0; i < tlv_count; ++i) {
    const std::uint8_t id = r.u8();
    const double value = r.f64();
    switch (id) {
      case kTenantSlaFloorW: m.sla_floor_w = value; break;
      case kTenantPriorityWeight: m.priority_weight = value; break;
      case kTenantShareWeight: m.share_weight = value; break;
      default: break;  // unknown tenant field: tolerated, stepped over
    }
  }
  return r.ok();
}

bool read_budget_grant(WireReader& r, BudgetGrant& m) {
  m.tree_path.clear();  // capacity kept: the reuse contract of parse_frame_into
  m.domain_id = r.u32();
  m.tick = r.u64();
  m.grant_w = r.f64();
  m.cluster_budget_w = r.f64();
  m.arbiter_epoch = 0;
  if (!r.ok()) return false;
  if (r.remaining() == 0) return true;  // v1 body: defaults stand
  const std::uint8_t body_version = r.u8();
  if (body_version < 2) return false;
  m.arbiter_epoch = r.u64();
  const std::uint8_t path_len = r.u8();
  if (!r.ok() || path_len > kMaxTreePathDepth ||
      static_cast<std::size_t>(path_len) * 4 > r.remaining()) {
    return false;
  }
  m.tree_path.reserve(path_len);
  for (std::uint8_t i = 0; i < path_len; ++i) m.tree_path.push_back(r.u32());
  return r.ok();
}

bool read_cap_plan_delta(WireReader& r, CapPlanDelta& m) {
  m.ops.clear();  // capacity kept: the reuse contract of parse_frame_into
  m.tick = r.u64();
  m.base_tick = r.u64();
  m.result_entries = r.u32();
  const std::uint32_t n = r.u32();
  // Each op is exactly 22 bytes; a count that cannot fit in the remaining
  // body is a forged length, not a short read.
  if (!r.ok() || static_cast<std::size_t>(n) * 22 > r.remaining()) return false;
  m.ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CapDeltaOp o;
    o.op = r.u8();
    o.entry.job_id = r.i32();
    o.entry.cap_w = r.f64();
    o.entry.target_ips = r.f64();
    o.entry.held = r.u8();
    // An op byte outside the known set is a malformed body, not forward
    // compatibility: the frame type is known, so its grammar is fixed.
    if (o.op > kDeltaRemove) return false;
    m.ops.push_back(o);
  }
  return true;
}

void write_body(WireWriter& w, const ReplTick& m) {
  w.u64(m.epoch);
  w.u64(m.tick);
  w.u32(m.plan_crc);
  w.u32(static_cast<std::uint32_t>(m.batch.size()));
  w.bytes(m.batch.data(), m.batch.size());
}

void write_body(WireWriter& w, const ReplSnapshot& m) {
  w.u64(m.epoch);
  w.u32(static_cast<std::uint32_t>(m.snapshot.size()));
  w.bytes(m.snapshot.data(), m.snapshot.size());
}

void write_body(WireWriter& w, const PromoteAnnounce& m) {
  w.u64(m.epoch);
  w.u64(m.tick);
}

bool read_repl_tick(WireReader& r, ReplTick& m) {
  m.epoch = r.u64();
  m.tick = r.u64();
  m.plan_crc = r.u32();
  m.batch.clear();  // capacity kept: the reuse contract of parse_frame_into
  r.blob(m.batch);
  return r.ok();
}

bool read_repl_snapshot(WireReader& r, ReplSnapshot& m) {
  m.epoch = r.u64();
  m.snapshot.clear();  // capacity kept
  r.blob(m.snapshot);
  return r.ok();
}

PromoteAnnounce read_promote_announce(WireReader& r) {
  PromoteAnnounce m;
  m.epoch = r.u64();
  m.tick = r.u64();
  return m;
}

/// Reuses `out`'s current alternative when it already is a T (dynamic
/// bodies keep their capacity); otherwise switches the variant to T.
template <typename T>
T& slot_as(Message& out) {
  if (T* p = std::get_if<T>(&out)) return *p;
  return out.emplace<T>();
}

}  // namespace

MsgType type_of(const Message& m) {
  struct Visitor {
    MsgType operator()(const Hello&) const { return MsgType::kHello; }
    MsgType operator()(const Telemetry&) const { return MsgType::kTelemetry; }
    MsgType operator()(const CapPlan&) const { return MsgType::kCapPlan; }
    MsgType operator()(const Heartbeat&) const { return MsgType::kHeartbeat; }
    MsgType operator()(const Bye&) const { return MsgType::kBye; }
    MsgType operator()(const DomainReport&) const { return MsgType::kDomainReport; }
    MsgType operator()(const BudgetGrant&) const { return MsgType::kBudgetGrant; }
    MsgType operator()(const CapPlanDelta&) const { return MsgType::kCapPlanDelta; }
    MsgType operator()(const ReplTick&) const { return MsgType::kReplTick; }
    MsgType operator()(const ReplSnapshot&) const { return MsgType::kReplSnapshot; }
    MsgType operator()(const PromoteAnnounce&) const { return MsgType::kPromoteAnnounce; }
  };
  return std::visit(Visitor{}, m);
}

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "Hello";
    case MsgType::kTelemetry: return "Telemetry";
    case MsgType::kCapPlan: return "CapPlan";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kBye: return "Bye";
    case MsgType::kDomainReport: return "DomainReport";
    case MsgType::kBudgetGrant: return "BudgetGrant";
    case MsgType::kCapPlanDelta: return "CapPlanDelta";
    case MsgType::kReplTick: return "ReplTick";
    case MsgType::kReplSnapshot: return "ReplSnapshot";
    case MsgType::kPromoteAnnounce: return "PromoteAnnounce";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Message& m) {
  std::vector<std::uint8_t> out;
  encode_into(m, out);
  return out;
}

void encode_into(const Message& m, std::vector<std::uint8_t>& out) {
  out.clear();
  WireWriter w(out);
  w.u32(0);  // length placeholder, patched below
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit([&w](const auto& msg) { write_body(w, msg); }, m);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size() - 4));
}

std::optional<Message> parse_frame(const std::uint8_t* data, std::size_t size) {
  Message m;
  if (!parse_frame_into(data, size, m)) return std::nullopt;
  return m;
}

bool parse_frame_into(const std::uint8_t* data, std::size_t size, Message& out) {
  WireReader r(data, size);
  if (r.u16() != kMagic) return false;
  if (r.u8() != kVersion) return false;
  const std::uint8_t type = r.u8();
  if (!r.ok()) return false;

  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello: out = read_hello(r); break;
    case MsgType::kTelemetry: out = read_telemetry(r); break;
    case MsgType::kCapPlan:
      if (!read_cap_plan(r, slot_as<CapPlan>(out))) return false;
      break;
    case MsgType::kHeartbeat: out = read_heartbeat(r); break;
    case MsgType::kBye: out = read_bye(r); break;
    case MsgType::kDomainReport:
      if (!read_domain_report(r, slot_as<DomainReport>(out))) return false;
      break;
    case MsgType::kBudgetGrant:
      if (!read_budget_grant(r, slot_as<BudgetGrant>(out))) return false;
      break;
    case MsgType::kCapPlanDelta:
      if (!read_cap_plan_delta(r, slot_as<CapPlanDelta>(out))) return false;
      break;
    case MsgType::kReplTick:
      if (!read_repl_tick(r, slot_as<ReplTick>(out))) return false;
      break;
    case MsgType::kReplSnapshot:
      if (!read_repl_snapshot(r, slot_as<ReplSnapshot>(out))) return false;
      break;
    case MsgType::kPromoteAnnounce: out = read_promote_announce(r); break;
    default: return false;
  }
  // Truncated body (a read overran) or trailing junk both reject.
  return r.exhausted();
}

void FrameDecoder::poison(const std::string& why) {
  corrupt_ = true;
  error_ = why;
  buf_.clear();
  consumed_ = 0;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (corrupt_) return;
  buf_.insert(buf_.end(), data, data + size);
  for (;;) {
    const std::size_t avail = buf_.size() - consumed_;
    if (avail < 4) break;
    WireReader len_r(buf_.data() + consumed_, 4);
    const std::uint32_t len = len_r.u32();
    if (len < 4 || len > kMaxFrameBytes) {
      poison("invalid frame length " + std::to_string(len));
      return;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) break;  // frame incomplete
    const std::uint8_t* frame = buf_.data() + consumed_ + 4;
    // Decode into the next pool slot: a slot that carries the same frame
    // type every tick (e.g. the broadcast plan) reuses its capacity, so
    // the steady-state decode never allocates. A failed parse leaves the
    // slot unspecified, which is fine -- it is not counted live.
    if (live_ == out_.size()) out_.emplace_back();
    if (!parse_frame_into(frame, len, out_[live_])) {
      // Forward compatibility: a frame whose framing is intact (magic and
      // version verify, length prefix already validated) but whose type
      // byte we do not know is a *newer* peer talking, not corruption.
      // Step over it; the stream stays synchronized because the length
      // prefix told us exactly where the next frame starts.
      WireReader hdr(frame, len);
      const bool framing_ok = hdr.u16() == kMagic && hdr.u8() == kVersion;
      const std::uint8_t type = hdr.u8();
      const bool known =
          type >= static_cast<std::uint8_t>(MsgType::kHello) &&
          type <= static_cast<std::uint8_t>(MsgType::kPromoteAnnounce);
      if (framing_ok && hdr.ok() && !known) {
        ++unknown_skipped_;
        consumed_ += 4 + len;
        continue;
      }
      poison("malformed frame body");
      return;
    }
    ++live_;
    consumed_ += 4 + len;
  }
  // Compact once the parsed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::vector<Message> FrameDecoder::take() {
  std::vector<Message> msgs;
  msgs.reserve(live_);
  for (std::size_t i = 0; i < live_; ++i) msgs.push_back(std::move(out_[i]));
  live_ = 0;
  return msgs;
}

void FrameDecoder::drain(std::vector<Message>& out) {
  for (std::size_t i = 0; i < live_; ++i) out.push_back(std::move(out_[i]));
  live_ = 0;
}

}  // namespace perq::proto
