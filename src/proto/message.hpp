// perqd wire protocol, version 1.
//
// The controller (perqd) and its node agents exchange length-prefixed
// binary frames:
//
//   [u32 length][u16 magic 'PQ'][u8 version][u8 type][body...]
//
// `length` counts every byte after the length field itself (header + body),
// so a stream reader knows exactly how many bytes to buffer before parsing.
// Parsing is strict: wrong magic, unknown version, unknown type, a body
// that is shorter or longer than its type requires, or an absurd length all
// reject the frame. On a stream transport a rejected frame poisons the
// decoder (there is no way to resynchronize a corrupt byte stream), which
// the transport turns into a connection close. One deliberate exception:
// FrameDecoder treats a *well-framed* message of an unknown type (magic and
// version check out, the length prefix is sane) as skippable rather than
// corrupt -- framing is intact, so an old peer can step over frames a newer
// peer introduced (e.g. the domain frames below) and keep the connection.
//
// Message roles (one control interval = one exchange):
//   Hello        agent -> controller    introduce agent_id + owned node range
//   Telemetry    agent -> controller    one running job's last-interval state
//   Heartbeat    agent -> controller    liveness + the plant's budget status
//   CapPlan      controller -> agents   per-job caps (and IPS targets) to apply
//   Bye          agent -> controller    graceful leave (no staleness alarm)
//   DomainReport domain ctl -> arbiter  demand + utility for one budget domain
//   BudgetGrant  arbiter -> domain ctl  the domain's watt allocation this tick
//   CapPlanDelta controller -> agents   only the caps that changed since the
//                                       last broadcast plan (full CapPlan is
//                                       the rejoin/resync fallback)
//   ReplTick     primary -> standby     one decide's canonical inputs (the
//                                       accepted frames since the previous
//                                       decide, in ingest order) + a crc of
//                                       the resulting plan for divergence
//                                       detection
//   ReplSnapshot primary -> standby     full controller state (the snapshot
//                                       codec's bytes); also the WAL's
//                                       truncation point
//   PromoteAnnounce controller -> agents  the sender's controller epoch;
//                                       sent at accept and on promotion so
//                                       agents can fence plans from a
//                                       deposed primary
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace perq::proto {

inline constexpr std::uint16_t kMagic = 0x5150;  // "PQ" little-endian
inline constexpr std::uint8_t kVersion = 1;
/// Upper bound on the post-length portion of a frame; anything larger is
/// rejected before buffering (a garbage length prefix must not make the
/// decoder allocate gigabytes).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kTelemetry = 2,
  kCapPlan = 3,
  kHeartbeat = 4,
  kBye = 5,
  kDomainReport = 6,
  kBudgetGrant = 7,
  kCapPlanDelta = 8,
  kReplTick = 9,
  kReplSnapshot = 10,
  kPromoteAnnounce = 11,
};

/// Agent introduction: which slice of the machine room it speaks for.
/// A reconnecting agent also reports the newest broadcast plan it still
/// holds (has_plan + last_plan_tick), so the controller can keep delta
/// broadcasts flowing when the rejoiner's base matches its own instead of
/// always forcing a full-plan resync.
struct Hello {
  std::uint32_t agent_id = 0;
  std::uint32_t node_begin = 0;  ///< first cluster node id owned (inclusive)
  std::uint32_t node_end = 0;    ///< one past the last owned node id
  std::uint64_t last_plan_tick = 0;  ///< tick of the agent's base plan
  std::uint8_t has_plan = 0;         ///< 1 when last_plan_tick is meaningful
};

/// Telemetry flags.
inline constexpr std::uint8_t kTelemetryFinal = 1u << 0;  ///< job finished

/// One running job's state as measured over the last control interval.
/// Carries the full (small) job descriptor so the controller can rebuild
/// its shadow state from scratch -- this is what makes agent rejoin and
/// controller restart a plain resync instead of a protocol extension.
struct Telemetry {
  std::uint32_t agent_id = 0;
  std::uint64_t tick = 0;       ///< plant control-interval counter
  std::uint32_t seq = 0;        ///< position in the plant's running list
  std::uint8_t flags = 0;
  std::int32_t job_id = 0;
  std::uint32_t nodes = 0;      ///< nodes the job spans
  std::uint32_t app_index = 0;  ///< index into apps::ecp_catalog()
  double runtime_ref_s = 0.0;   ///< reference runtime at full power
  double progress_s = 0.0;      ///< accumulated progress (reference seconds)
  double min_perf = 0.0;        ///< slowest rank's perf fraction last interval
  double cap_w = 0.0;           ///< per-node cap applied last interval
  double ips = 0.0;             ///< measured aggregate job IPS last interval
  double power_w = 0.0;         ///< job's total power draw last interval
};

/// One job's entry in a broadcast cap plan.
struct CapEntry {
  std::int32_t job_id = 0;
  double cap_w = 0.0;
  double target_ips = 0.0;  ///< controller's fairness target (0 = held/baseline)
  std::uint8_t held = 0;    ///< 1 when the cap is a stale-job hold, not a decision
};

struct CapPlan {
  std::uint64_t tick = 0;
  std::vector<CapEntry> entries;
};

/// Liveness beacon; also carries the plant-side budget snapshot the
/// controller needs to build its PolicyContext for this tick.
struct Heartbeat {
  std::uint32_t agent_id = 0;
  std::uint64_t tick = 0;
  double now_s = 0.0;
  double dt_s = 0.0;
  double budget_total_w = 0.0;
  double budget_for_busy_w = 0.0;
  double total_nodes = 0.0;
};

struct Bye {
  std::uint32_t agent_id = 0;
};

/// DomainReport flags (v2 body extension).
inline constexpr std::uint8_t kDomainLeaving = 1u << 0;  ///< re-parenting away

/// Deepest tree-path a frame may carry: bounds both the u8 length byte and
/// any hierarchy this repo targets (8 levels of arbiters is datacenter ->
/// node with room to spare). A longer declared path rejects the frame.
inline constexpr std::size_t kMaxTreePathDepth = 8;

/// Tenant TLV ids (v2 body extension). Each entry is a fixed-width
/// {u8 id, f64 value} pair, so a reader can *skip* an id it does not know
/// -- that is the forward-compatibility seam for future tenant fields,
/// deliberately looser than the strict grammar everywhere else.
inline constexpr std::uint8_t kTenantSlaFloorW = 1;
inline constexpr std::uint8_t kTenantPriorityWeight = 2;
inline constexpr std::uint8_t kTenantShareWeight = 3;

/// One budget domain's demand summary, sent by its controller to the
/// arbiter once per control interval. Everything the water-filling
/// allocation needs travels in-band: the hard floor and ceiling, the watts
/// the domain actually committed under its last grant, the marginal value
/// of one more watt (the QP budget-row dual), and achieved-vs-target
/// throughput. The robustness counters ride along so the arbiter can
/// aggregate accounting across domains instead of losing it per-process.
///
/// Body versioning: the fields through controller_epoch are the v1 body.
/// The power-tree fields after them travel in a trailing v2 extension
/// (u8 body-version >= 2, flags, tree counters, tree path, tenant TLV)
/// that is written only when some extended field is non-default -- a
/// tenant-blank depth-1 report encodes byte-identical to a v1 encoder --
/// and whose absence decodes as the defaults, so v1 and v2 peers
/// interoperate in both directions.
struct DomainReport {
  std::uint32_t domain_id = 0;
  std::uint32_t domain_count = 1;
  std::uint64_t tick = 0;
  std::uint32_t jobs = 0;          ///< fresh jobs in this domain's batch
  double busy_nodes = 0.0;         ///< nodes under the domain's fresh jobs
  double floor_w = 0.0;            ///< nj * P_min: never grant below this
  double capacity_w = 0.0;         ///< nj * TDP: watts beyond this are wasted
  double committed_w = 0.0;        ///< watts the last plan actually committed
  double utility_per_w = 0.0;      ///< QP budget-row dual (objective per watt)
  double achieved_ips = 0.0;       ///< measured throughput last interval
  double target_ips = 0.0;         ///< fairness-target throughput
  double cluster_budget_w = 0.0;   ///< plant busy budget seen via heartbeat
  // RobustnessCounters snapshot, flattened so proto stays free of core
  // includes. Field order mirrors core::RobustnessCounters.
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupt = 0;
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t stale_transitions = 0;
  std::uint64_t solver_fallbacks = 0;
  std::uint64_t clamp_activations = 0;
  std::uint64_t failsafe_activations = 0;
  std::uint64_t stale_epoch_frames = 0;
  /// The reporting controller's epoch (see PromoteAnnounce). The arbiter
  /// fences reports whose epoch is lower than the newest it has seen for
  /// the domain -- a deposed domain controller cannot steal grants back.
  std::uint64_t controller_epoch = 0;
  // ---- v2 body extension (power tree) ----
  std::uint8_t flags = 0;  ///< kDomainLeaving: release my slot, I re-parented
  /// Tree-level robustness counters, aggregated up the hierarchy the same
  /// way the v1 counters are (order matches core::RobustnessCounters).
  std::uint64_t grants_fenced = 0;
  std::uint64_t reparent_events = 0;
  std::uint64_t sla_floor_activations = 0;
  /// Root -> sender node ids: where in the power tree this report came
  /// from. Empty for a directly-attached (depth-1) domain controller.
  std::vector<std::uint32_t> tree_path;
  /// Tenant terms (see hier::TenantSpec; defaults are exact no-ops).
  double sla_floor_w = 0.0;
  double priority_weight = 1.0;
  double share_weight = 0.0;
};

/// The arbiter's answer: the watts `domain_id` may spend at `tick`.
/// Carries the same trailing v2 extension scheme as DomainReport: the
/// granting arbiter's epoch and tree path are appended only when
/// non-default, and decode as defaults when absent.
struct BudgetGrant {
  std::uint32_t domain_id = 0;
  std::uint64_t tick = 0;
  double grant_w = 0.0;            ///< budget row for the domain's QP
  double cluster_budget_w = 0.0;   ///< total the grants were carved from
  // ---- v2 body extension (power tree) ----
  /// The granting arbiter's own epoch: a child that re-parented fences
  /// grants still arriving from its old parent's epoch.
  std::uint64_t arbiter_epoch = 0;
  /// Root -> granting arbiter node ids (empty at the root itself).
  std::vector<std::uint32_t> tree_path;
};

/// CapPlanDelta op kinds. Update and insert carry a full CapEntry; remove
/// carries only the job id (its entry fields are ignored on the wire level
/// but still travel, keeping every op fixed-width).
inline constexpr std::uint8_t kDeltaUpdate = 0;
inline constexpr std::uint8_t kDeltaInsert = 1;
inline constexpr std::uint8_t kDeltaRemove = 2;

struct CapDeltaOp {
  std::uint8_t op = kDeltaUpdate;
  CapEntry entry;
};

/// Differential cap broadcast: patches the receiver's copy of the plan for
/// `base_tick` into the plan for `tick`. The receiver's base plan is kept
/// sorted by job id (apply_delta's canonical order); `result_entries` is
/// the entry count of the patched plan, an end-to-end integrity check. A
/// receiver whose base does not match `base_tick` (missed broadcast, fresh
/// rejoin) must reject the delta and hold its caps until the next full
/// CapPlan resynchronizes it -- the controller periodically broadcasts the
/// full plan and always does so when a new agent joined.
struct CapPlanDelta {
  std::uint64_t tick = 0;
  std::uint64_t base_tick = 0;
  std::uint32_t result_entries = 0;
  std::vector<CapDeltaOp> ops;
};

/// One replicated decide: every frame the primary accepted into decision
/// state since its previous decide, concatenated in canonical ingest order
/// as complete encoded frames (length prefix included). A standby that
/// re-ingests the batch and runs decide() reproduces the primary's plan
/// bit-exactly; `plan_crc` (crc32 of the canonical plan encoding) catches
/// divergence at replay time. Application is all-or-nothing: a batch with
/// any malformed inner frame is rejected without applying a prefix.
/// The whole batch must fit one frame (kMaxFrameBytes) -- ~9k telemetry
/// records per decide, far above any deployment this repo targets.
struct ReplTick {
  std::uint64_t epoch = 0;  ///< the primary's controller epoch
  std::uint64_t tick = 0;   ///< the tick this decide covered
  std::uint32_t plan_crc = 0;
  std::vector<std::uint8_t> batch;
};

/// Full controller state (daemon/snapshot codec bytes). Sent once when a
/// standby attaches and periodically afterwards; each one is a replication
/// log truncation point (replay = newest snapshot + the ticks after it).
struct ReplSnapshot {
  std::uint64_t epoch = 0;
  std::vector<std::uint8_t> snapshot;
};

/// Controller epoch announcement. Every controller announces its epoch when
/// it accepts a session and re-announces to all sessions when it promotes
/// itself (epoch + 1). Agents remember the highest epoch they have ever
/// seen and fence anything arriving on a connection with a lower one: the
/// frame is dropped, counted, and the deposed sender gets a Bye.
struct PromoteAnnounce {
  std::uint64_t epoch = 0;
  std::uint64_t tick = 0;  ///< sender's current tick (informational)
};

using Message =
    std::variant<Hello, Telemetry, CapPlan, Heartbeat, Bye, DomainReport,
                 BudgetGrant, CapPlanDelta, ReplTick, ReplSnapshot,
                 PromoteAnnounce>;

MsgType type_of(const Message& m);
std::string to_string(MsgType t);

/// Serializes a message into one complete frame (length prefix included).
std::vector<std::uint8_t> encode(const Message& m);

/// Serializes into a caller-owned buffer (cleared first, capacity kept).
/// Hot paths hold one scratch vector per connection/endpoint so that
/// steady-state encodes are allocation-free once the buffer has warmed up.
void encode_into(const Message& m, std::vector<std::uint8_t>& out);

/// Parses the post-length portion of a frame (magic..body). Returns nullopt
/// on any malformation; never throws, never reads out of bounds.
std::optional<Message> parse_frame(const std::uint8_t* data, std::size_t size);

/// Parses into a caller-owned Message, reusing its heap state: when `out`
/// already holds the same alternative, dynamic bodies (CapPlan::entries,
/// CapPlanDelta::ops) are cleared and refilled in place, so a slot that
/// sees the same frame type every tick decodes allocation-free once its
/// capacity has warmed up. Returns false on any malformation, in which
/// case `out` is unspecified (the caller must not read it).
bool parse_frame_into(const std::uint8_t* data, std::size_t size, Message& out);

/// Incremental stream decoder: feed raw bytes, take out complete messages.
/// A malformed frame poisons the decoder permanently (stream framing is
/// unrecoverable once corrupt); `error()` says why.
class FrameDecoder {
 public:
  /// Appends raw stream bytes and decodes as many whole frames as arrived.
  /// A frame whose magic, version, and length prefix are valid but whose
  /// type byte is unknown is skipped (counted in unknown_skipped()), not
  /// poisoned -- forward compatibility for peers that predate a frame type.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Moves out the messages decoded so far.
  std::vector<Message> take();

  /// Appends the messages decoded so far to `out` and clears the internal
  /// list *keeping its capacity* -- unlike take(), which materializes a
  /// fresh vector. Receive hot paths call this with a persistent scratch
  /// vector so a steady-state tick never allocates in the framing layer
  /// (moved-out dynamic bodies still surrender their capacity).
  void drain(std::vector<Message>& out);

  /// In-place consumption: calls `f(Message&)` for each decoded message,
  /// then resets the logical count. Nothing is moved or copied -- the
  /// message slots persist across feed/consume cycles, so a slot that
  /// carries the same frame type every tick (the broadcast steady state)
  /// reuses its dynamic-body capacity and the whole decode path is
  /// allocation-free. The references are only valid inside the call.
  template <typename F>
  void consume(F&& f) {
    for (std::size_t i = 0; i < live_; ++i) f(out_[i]);
    live_ = 0;
  }

  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }

  /// Well-framed messages of unknown type stepped over so far.
  std::uint64_t unknown_skipped() const { return unknown_skipped_; }

 private:
  void poison(const std::string& why);

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ already parsed
  /// Slot pool: indices [0, live_) are decoded-but-unconsumed messages;
  /// slots past live_ are retained for their warmed-up capacity.
  std::vector<Message> out_;
  std::size_t live_ = 0;
  bool corrupt_ = false;
  std::string error_;
  std::uint64_t unknown_skipped_ = 0;
};

}  // namespace perq::proto
