#include "proto/wire.hpp"

namespace perq::proto {

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_->insert(buf_->end(), s.begin(), s.end());
}

void WireWriter::bytes(const std::uint8_t* data, std::size_t n) {
  buf_->insert(buf_->end(), data, data + n);
}

void WireWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    (*buf_)[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint8_t WireReader::u8() { return read_le<std::uint8_t>(); }
std::uint16_t WireReader::u16() { return read_le<std::uint16_t>(); }
std::uint32_t WireReader::u32() { return read_le<std::uint32_t>(); }
std::uint64_t WireReader::u64() { return read_le<std::uint64_t>(); }

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::blob(std::vector<std::uint8_t>& out) {
  out.clear();
  const std::uint32_t n = u32();
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return;
  }
  out.insert(out.end(), data_ + pos_, data_ + pos_ + n);
  pos_ += n;
}

}  // namespace perq::proto
