// CapPlan delta encoding: diff and patch between consecutive broadcasts.
//
// At scale the cap plan is the broadcast bandwidth bill: na agents each
// decode an O(jobs) plan every control interval even when only a handful of
// caps moved. A CapPlanDelta carries just the changed entries; the agent
// patches its copy of the previous plan and actuates the reconstructed one.
//
// Canonical form keeps both sides honest:
//   * A delta's base and result plans are ordered by ascending job id
//     (canonicalize() produces that order), and its ops are strictly
//     ascending by job id -- the diff of two sorted lists. apply_delta
//     rejects any delta violating this grammar.
//   * Payload comparison is bit-exact (doubles compared as raw IEEE-754
//     bits), so a reconstructed plan carries byte-identical caps and
//     targets to the full plan it stands in for. Entry *order* of a
//     reconstructed plan is the canonical sorted order, not the
//     controller's policy order; every consumer looks entries up by job id,
//     so cap trajectories are unaffected.
//   * apply_delta is all-or-nothing: a stale base tick (missed broadcast,
//     fresh rejoin), an op on an unknown job id, an insert of an existing
//     id, or a result count mismatch rejects the whole delta and leaves the
//     output untouched. The receiver then holds its caps until the next
//     full CapPlan resynchronizes it.
#pragma once

#include "proto/message.hpp"

namespace perq::proto {

/// Sorts a plan's entries into the canonical delta order (ascending job
/// id). Job ids are unique within a plan, so the order is total.
void canonicalize(CapPlan& plan);

/// Diffs `next` against `base` into `out` (cleared first, capacity kept).
/// Both plans must be in canonical order. Unchanged entries (bit-identical
/// cap_w, target_ips, held) produce no op.
void make_delta(const CapPlan& base, const CapPlan& next, CapPlanDelta& out);

/// Patches `base` with `d` into `out` (cleared first, capacity kept).
/// Returns false -- with `out` unspecified -- when the delta does not
/// apply: base tick mismatch, non-canonical op order, update/remove of a
/// job id absent from the base, insert of one already present, or a
/// patched entry count different from d.result_entries. The caller must
/// not actuate a rejected delta.
bool apply_delta(const CapPlan& base, const CapPlanDelta& d, CapPlan& out);

}  // namespace perq::proto
