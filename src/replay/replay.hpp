// Million-job trace replay: SchedCtl + accounting + two-level power
// water-filling driven by an event-driven clock, fast enough to push months
// of simulated machine time through in a real-time minute.
//
// Where SimulationEngine steps physics every control interval (exact, but
// O(horizon / interval)), the replay engine exploits that between
// scheduling events the allocation -- and therefore every job's progress
// rate and draw -- is constant: it advances state closed-form from event to
// event (arrival, job start, job completion). Per-job rate and draw under a
// cap are the phase-duration-weighted averages of the app model over one
// phase cycle, so a job's completion time is remaining_work / rate and the
// next event is a min-scan over the running set. Caps are re-divided only
// when the running set changes: the cluster's busy budget is water-filled
// across partitions (hier::water_fill, partitions as budget domains), then
// equal-share water-filled across each partition's jobs, clipped at each
// job's saturation knee -- PERQ's "unspent watts flow to hungry jobs"
// shape, at event granularity.
//
// The whole replay is deterministic: one RNG seed, no wall-clock anywhere,
// so two runs of the same config produce bit-identical audits.
//
// The fairness audit follows the paper's equal-share yardstick (Fig. 9):
// each job's baseline is its runtime under a static equal split of the
// cluster budget over all N_OP nodes; the audit reports the fraction of
// completed jobs whose achieved runtime beats that baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acct/store.hpp"
#include "sched/partition.hpp"
#include "sched/scheduler.hpp"
#include "trace/trace.hpp"

namespace perq::replay {

struct ReplayConfig {
  trace::TraceConfig trace;            ///< workload (arrivals, estimates, users)
  std::size_t worst_case_nodes = 128;  ///< N_WP: budget = N_WP * TDP
  double over_provision_factor = 1.5;  ///< f: machine has f * N_WP nodes
  /// Partition table; empty = one "batch" partition over the machine.
  std::vector<sched::PartitionConfig> partitions;
  std::size_t backfill_window = 64;
  sched::BackfillMode backfill_mode = sched::BackfillMode::kEasy;
  std::size_t max_head_bypass = 0;
  /// Durable accounting log path ("" = in-memory accounting only).
  std::string acct_path;
  /// Safety horizon: the replay aborts (REQUIRE) if the workload has not
  /// drained by this simulated time -- catches livelock, not normal runs.
  double max_sim_s = 400.0 * 86400.0;
};

/// Audit summary of one replay (everything here is deterministic).
struct ReplayResult {
  double over_provision_factor = 0.0;
  std::size_t machine_nodes = 0;       ///< N_OP
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  double makespan_s = 0.0;             ///< completion time of the last job
  double jobs_per_day = 0.0;           ///< completed / makespan, per day
  double fairness_fraction = 0.0;      ///< jobs beating equal share
  double mean_wait_s = 0.0;            ///< queue wait of completed jobs
  double mean_slowdown = 1.0;          ///< achieved / reference runtime
  double utilization = 0.0;            ///< busy node-time / (N_OP * makespan)
  double total_node_hours = 0.0;
  double total_energy_j = 0.0;
  std::uint64_t events = 0;            ///< event-loop iterations
  std::uint64_t reallocations = 0;     ///< cap re-divisions
};

/// Replays `cfg.trace` through the controller and returns the audit.
/// When `store` is non-null the caller's (fresh) accounting store records
/// the run -- for callers that want per-job / per-user records afterwards;
/// otherwise an internal store over `cfg.acct_path` is used.
ReplayResult run_replay(const ReplayConfig& cfg, acct::Store* store = nullptr);

/// Replays the same trace at each over-provisioning factor (the Fig. 9
/// jobs/day-vs-f sweep), fanning out across `threads` pool workers (0 =
/// hardware concurrency). Results are indexed like `factors`; each replay
/// is single-threaded and seed-deterministic, so the fan-out changes
/// nothing but wall time.
std::vector<ReplayResult> run_replay_sweep(const ReplayConfig& base,
                                           const std::vector<double>& factors,
                                           std::size_t threads = 0);

}  // namespace perq::replay
