#include "replay/replay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "apps/catalog.hpp"
#include "hier/arbiter.hpp"
#include "hier/domain.hpp"
#include "sched/schedctl.hpp"
#include "sim/cluster.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace perq::replay {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-9;

/// Phase-cycle effective progress rate (reference seconds of work per wall
/// second) under `cap_w`: phase i covers duration_s of reference work in
/// duration_s / perf_i wall seconds.
double cycle_rate(const apps::AppModel& app, double cap_w) {
  double work = 0.0;
  double wall = 0.0;
  for (std::size_t i = 0; i < app.phase_count(); ++i) {
    const double d = app.phase(i).duration_s;
    const double p = app.perf_fraction(cap_w, i);
    PERQ_ASSERT(p > 0.0, "app model returned non-positive perf fraction");
    work += d;
    wall += d / p;
  }
  return work / wall;
}

/// Wall-time-weighted average per-node draw over one phase cycle at `cap_w`.
double cycle_draw_w(const apps::AppModel& app, double cap_w) {
  double wall = 0.0;
  double joules_per_s = 0.0;
  for (std::size_t i = 0; i < app.phase_count(); ++i) {
    const double t = app.phase(i).duration_s / app.perf_fraction(cap_w, i);
    wall += t;
    joules_per_s += t * app.power_draw_w(cap_w, i);
  }
  return joules_per_s / wall;
}

/// Cap at which the app runs unthrottled in every phase.
double saturation_cap_w(const apps::AppModel& app) {
  double cap = 0.0;
  for (std::size_t i = 0; i < app.phase_count(); ++i) {
    cap = std::max(cap, app.knee_w(i));
  }
  return cap;
}

/// One dispatched job's closed-form state between events.
struct RunJob {
  sched::Job* job = nullptr;
  std::uint32_t partition = 0;
  std::size_t app = 0;
  double nodes = 0.0;
  double desired_cap_w = 0.0;   ///< saturation knee: watts beyond are wasted
  double remaining_ref_s = 0.0;
  double rate = 1.0;            ///< ref seconds per wall second at cap_w
  double draw_w = 0.0;          ///< per-node draw at cap_w
  double cap_w = 0.0;
  double done_s = kInf;         ///< projected completion time
  double energy_j = 0.0;
};

/// Equal-share water-fill of `grant_w` across one partition's jobs, each
/// clipped at its saturation cap: find the level L with
/// sum(nodes_j * min(desired_j, L)) = grant, floored at cap_min. `order`
/// holds indices into `running` sorted by desired cap ascending.
void fill_partition(std::vector<RunJob>& running,
                    const std::vector<std::size_t>& order, double grant_w,
                    const apps::PowerSpec& power) {
  double pool = grant_w;
  double nodes_left = 0.0;
  for (const std::size_t i : order) nodes_left += running[i].nodes;
  for (std::size_t k = 0; k < order.size(); ++k) {
    RunJob& r = running[order[k]];
    const double level = pool / nodes_left;
    const double cap =
        std::clamp(std::min(r.desired_cap_w, level), power.cap_min, power.tdp);
    r.cap_w = cap;
    pool -= cap * r.nodes;
    nodes_left -= r.nodes;
  }
}

class ReplayEngine {
 public:
  ReplayEngine(const ReplayConfig& cfg, acct::Store& store)
      : cfg_(cfg),
        catalog_(apps::ecp_catalog()),
        power_(apps::node_power_spec()),
        cluster_(make_cluster(cfg)),
        ctl_(make_ctl_config(cfg), cluster_.size()),
        store_(store) {
    // Equal-power-share baseline: every one of the N_OP nodes gets an equal
    // static slice of the cluster budget (the paper's fairness yardstick).
    fair_cap_w_ = std::clamp(cluster_.power_budget_w() /
                                 static_cast<double>(cluster_.size()),
                             power_.cap_min, power_.tdp);
    desired_cap_.reserve(catalog_.size());
    fair_rate_.reserve(catalog_.size());
    for (const auto& app : catalog_) {
      desired_cap_.push_back(saturation_cap_w(app));
      fair_rate_.push_back(cycle_rate(app, fair_cap_w_));
    }
    wire_accounting();
  }

  ReplayResult run() {
    submit_all();
    ReplayResult res;
    res.over_provision_factor = cfg_.over_provision_factor;
    res.machine_nodes = cluster_.size();
    res.jobs_submitted = ctl_.submitted();

    bool allocation_dirty = false;
    while (true) {
      const std::vector<sched::Job*> started =
          ctl_.schedule_pass(cluster_, now_);
      for (sched::Job* job : started) dispatch(job);
      if (!started.empty() || allocation_dirty) {
        reallocate();
        ++res.reallocations;
        allocation_dirty = false;
      }

      double next = ctl_.next_submit_time();
      for (const RunJob& r : running_) next = std::min(next, r.done_s);
      if (!std::isfinite(next)) break;  // drained: nothing running or due
      PERQ_REQUIRE(next <= cfg_.max_sim_s,
                   "replay exceeded the safety horizon (livelock?)");

      advance_to(next);
      allocation_dirty = retire_completed(res);
      ++res.events;
    }
    PERQ_REQUIRE(ctl_.queued() == 0 && ctl_.running() == 0,
                 "replay ended with undrained jobs");

    finalize(res);
    return res;
  }

 private:
  static sim::Cluster make_cluster(const ReplayConfig& cfg) {
    PERQ_REQUIRE(cfg.worst_case_nodes >= 1, "replay needs nodes");
    PERQ_REQUIRE(cfg.over_provision_factor >= 1.0,
                 "over-provisioning factor must be >= 1");
    sim::ClusterConfig ccfg;
    ccfg.worst_case_nodes = cfg.worst_case_nodes;
    ccfg.over_provision_factor = cfg.over_provision_factor;
    return sim::Cluster(ccfg);
  }

  static sched::SchedCtlConfig make_ctl_config(const ReplayConfig& cfg) {
    sched::SchedCtlConfig sc;
    sc.partitions = cfg.partitions;
    sc.backfill_window = cfg.backfill_window;
    sc.backfill_mode = cfg.backfill_mode;
    sc.max_head_bypass = cfg.max_head_bypass;
    return sc;
  }

  void wire_accounting() {
    ctl_.set_event_hook([this](sched::JobEvent e, const sched::JobRecord& r) {
      switch (e) {
        case sched::JobEvent::kSubmitted:
          store_.record_submit(r.job->spec().id, r.job->spec().user_id,
                               static_cast<std::uint32_t>(r.job->spec().app_index),
                               r.job->spec().nodes, r.submit_s,
                               r.job->walltime_est_s());
          break;
        case sched::JobEvent::kStarted:
          store_.record_start(r.job->spec().id, now_);
          break;
        case sched::JobEvent::kRequeued:
          store_.record_requeue(r.job->spec().id, now_);
          break;
        case sched::JobEvent::kFinished:
        case sched::JobEvent::kCancelled:
          PERQ_ASSERT(pending_end_ != nullptr,
                      "job end without accounting info");
          store_.record_end(r.job->spec().id, *pending_end_);
          pending_end_ = nullptr;
          break;
        case sched::JobEvent::kEligible:
          break;  // queue-depth events are not persisted
      }
    });
  }

  void submit_all() {
    const std::vector<trace::JobSpec> specs = trace::generate_trace(cfg_.trace);
    for (const trace::JobSpec& spec : specs) {
      const apps::AppModel* app = &catalog_[spec.app_index % catalog_.size()];
      // Route to the first partition that admits the job; a trace job no
      // partition accepts is dropped (counted, never fatal).
      bool admitted = false;
      for (const auto& part : ctl_.partitions()) {
        if (ctl_.submit(spec, app, part.name()) == sched::AdmitResult::kOk) {
          admitted = true;
          break;
        }
      }
      if (!admitted) ++rejected_;
    }
  }

  void dispatch(sched::Job* job) {
    RunJob r;
    r.job = job;
    r.partition = ctl_.record(job->spec().id)->partition;
    r.app = job->spec().app_index % catalog_.size();
    r.nodes = static_cast<double>(job->spec().nodes);
    r.desired_cap_w = desired_cap_[r.app];
    r.remaining_ref_s = job->spec().runtime_ref_s;
    running_.push_back(r);
  }

  /// Re-divides the busy-node budget: partitions as water-filled budget
  /// domains, then equal share across each partition's jobs.
  void reallocate() {
    if (running_.empty()) return;
    // Group running jobs by partition (order within a partition follows the
    // running vector: dispatch order, stable and deterministic).
    const std::size_t nparts = ctl_.partitions().size();
    std::vector<std::vector<std::size_t>> by_part(nparts);
    for (std::size_t i = 0; i < running_.size(); ++i) {
      by_part[running_[i].partition].push_back(i);
    }

    const double busy_budget_w =
        cluster_.power_budget_w() -
        power_.idle * static_cast<double>(cluster_.free_count());

    std::vector<hier::DomainDemand> demands;
    for (std::size_t p = 0; p < nparts; ++p) {
      if (by_part[p].empty()) continue;
      hier::DomainDemand d;
      d.domain_id = static_cast<std::uint32_t>(p);
      d.jobs = by_part[p].size();
      for (const std::size_t i : by_part[p]) {
        const RunJob& r = running_[i];
        d.busy_nodes += r.nodes;
        d.capacity_w += r.nodes * r.desired_cap_w;
        d.committed_w += r.nodes * r.cap_w;
      }
      d.floor_w = d.busy_nodes * power_.cap_min;
      d.utility_per_w = d.committed_w + 1e-9 < d.capacity_w ? 1.0 : 0.0;
      demands.push_back(d);
    }
    const std::vector<double> grants =
        hier::water_fill(busy_budget_w, demands);

    for (std::size_t k = 0; k < demands.size(); ++k) {
      const std::size_t p = demands[k].domain_id;
      std::vector<std::size_t>& members = by_part[p];
      std::stable_sort(members.begin(), members.end(),
                       [this](std::size_t a, std::size_t b) {
                         return running_[a].desired_cap_w <
                                running_[b].desired_cap_w;
                       });
      fill_partition(running_, members, grants[k], power_);
    }

    for (RunJob& r : running_) {
      const apps::AppModel& app = catalog_[r.app];
      r.rate = cycle_rate(app, r.cap_w);
      r.draw_w = cycle_draw_w(app, r.cap_w);
      r.done_s = now_ + r.remaining_ref_s / r.rate;
    }
  }

  void advance_to(double next) {
    const double dt = next - now_;
    PERQ_ASSERT(dt >= 0.0, "replay clock moved backwards");
    if (dt > 0.0) {
      for (RunJob& r : running_) {
        r.remaining_ref_s = std::max(0.0, r.remaining_ref_s - r.rate * dt);
        r.energy_j += r.draw_w * r.nodes * dt;
      }
    }
    now_ = next;
  }

  /// Completes every job whose projected finish has arrived. Returns true
  /// when the running set changed (allocation must be redone).
  bool retire_completed(ReplayResult& res) {
    bool any = false;
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].done_s > now_ + kTimeEps) {
        ++i;
        continue;
      }
      RunJob r = running_[i];
      running_.erase(running_.begin() + i);  // stable: preserves event order
      const double runtime_s = now_ - r.job->start_time_s();
      acct::EndInfo end;
      end.end_s = now_;
      end.runtime_s = runtime_s;
      end.baseline_runtime_s = r.job->spec().runtime_ref_s / fair_rate_[r.app];
      end.node_hours = r.nodes * runtime_s / 3600.0;
      end.energy_j = r.energy_j;
      pending_end_ = &end;
      ctl_.complete(r.job, cluster_, now_);
      PERQ_ASSERT(pending_end_ == nullptr, "accounting hook did not fire");

      ++res.jobs_completed;
      res.makespan_s = now_;
      wait_sum_s_ += r.job->start_time_s() - r.job->spec().submit_time_s;
      slowdown_sum_ += runtime_s / r.job->spec().runtime_ref_s;
      busy_node_s_ += r.nodes * runtime_s;
      any = true;
    }
    return any;
  }

  void finalize(ReplayResult& res) {
    store_.flush();
    res.fairness_fraction = store_.fraction_beating_equal_share();
    res.total_node_hours = store_.total_node_hours();
    res.total_energy_j = store_.total_energy_j();
    if (res.jobs_completed > 0) {
      const double n = static_cast<double>(res.jobs_completed);
      res.mean_wait_s = wait_sum_s_ / n;
      res.mean_slowdown = slowdown_sum_ / n;
    }
    if (res.makespan_s > 0.0) {
      res.jobs_per_day =
          static_cast<double>(res.jobs_completed) / (res.makespan_s / 86400.0);
      res.utilization = busy_node_s_ /
                        (static_cast<double>(cluster_.size()) * res.makespan_s);
    }
  }

  const ReplayConfig& cfg_;
  const std::vector<apps::AppModel>& catalog_;
  const apps::PowerSpec& power_;
  sim::Cluster cluster_;
  sched::SchedCtl ctl_;
  acct::Store& store_;
  std::vector<RunJob> running_;
  std::vector<double> desired_cap_;  ///< per-app saturation cap
  std::vector<double> fair_rate_;    ///< per-app rate at the equal-share cap
  double fair_cap_w_ = 0.0;
  double now_ = 0.0;
  std::size_t rejected_ = 0;
  const acct::EndInfo* pending_end_ = nullptr;
  double wait_sum_s_ = 0.0;
  double slowdown_sum_ = 0.0;
  double busy_node_s_ = 0.0;
};

}  // namespace

ReplayResult run_replay(const ReplayConfig& cfg, acct::Store* store) {
  std::unique_ptr<acct::Store> own;
  if (store == nullptr) {
    own = std::make_unique<acct::Store>(cfg.acct_path);
    store = own.get();
  }
  ReplayEngine engine(cfg, *store);
  return engine.run();
}

std::vector<ReplayResult> run_replay_sweep(const ReplayConfig& base,
                                           const std::vector<double>& factors,
                                           std::size_t threads) {
  PERQ_REQUIRE(!factors.empty(), "sweep needs at least one factor");
  std::vector<ReplayResult> results(factors.size());
  ThreadPool pool(std::min(threads == 0 ? factors.size() : threads,
                           factors.size()));
  pool.parallel_for(0, factors.size(), [&](std::size_t i) {
    ReplayConfig cfg = base;
    cfg.over_provision_factor = factors[i];
    if (!cfg.acct_path.empty()) {
      cfg.acct_path += ".f" + std::to_string(i);
    }
    results[i] = run_replay(cfg);
  });
  return results;
}

}  // namespace perq::replay
