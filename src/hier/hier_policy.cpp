#include "hier/hier_policy.hpp"

#include <algorithm>

#include "apps/app_model.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace perq::hier {

HierarchicalPerqPolicy::HierarchicalPerqPolicy(
    const sysid::IdentifiedModel* node_model, std::size_t worst_case_nodes,
    std::size_t total_nodes, const HierConfig& cfg)
    : cfg_(cfg), map_{cfg.domains} {
  PERQ_REQUIRE(cfg_.domains >= 1, "need at least one budget domain");
  tree_ = std::make_unique<PowerTree>(
      cfg_.tree.nodes.empty() ? TreeSpec::flat(cfg_.domains) : cfg_.tree);
  PERQ_REQUIRE(tree_->leaves() == cfg_.domains,
               "budget tree must have exactly one leaf per domain");
  policies_.reserve(cfg_.domains);
  for (std::size_t d = 0; d < cfg_.domains; ++d) {
    policies_.push_back(std::make_unique<core::PerqPolicy>(
        node_model, worst_case_nodes, total_nodes, cfg_.domain));
  }
  last_grants_w_.assign(cfg_.domains, 0.0);
}

std::string HierarchicalPerqPolicy::name() const {
  // K = 1 *is* the monolithic controller (bit-identical), so it keeps the
  // monolithic name -- result records compare clean.
  if (cfg_.domains == 1) return "PERQ";
  return "PERQ-HIER" + std::to_string(cfg_.domains);
}

void HierarchicalPerqPolicy::on_job_started(const sched::Job& job) {
  policies_[map_.of_job(job.spec().id)]->on_job_started(job);
}

void HierarchicalPerqPolicy::on_job_finished(const sched::Job& job) {
  policies_[map_.of_job(job.spec().id)]->on_job_finished(job);
}

double HierarchicalPerqPolicy::target_ips(int job_id) const {
  return policies_[map_.of_job(job_id)]->target_ips(job_id);
}

core::RobustnessCounters HierarchicalPerqPolicy::counters() const {
  core::RobustnessCounters sum;
  for (const auto& p : policies_) sum += p->counters();
  sum.sla_floor_activations += tree_->sla_floor_activations();
  sum.reparent_events += tree_->reparent_events();
  return sum;
}

std::vector<double> HierarchicalPerqPolicy::allocate(
    const policy::PolicyContext& ctx) {
  PERQ_REQUIRE(ctx.running != nullptr, "policy context missing running jobs");

  // Monolithic fast path: one domain means the caller's context goes
  // through untouched -- same budget row, same static fairness floor, same
  // everything. This is the K=1 bit-identity guarantee.
  if (cfg_.domains == 1) {
    last_grants_w_.assign(1, ctx.budget_for_busy_w);
    std::vector<double> caps = policies_[0]->allocate(ctx);
    decision_seconds_ = policies_[0]->decision_seconds();
    return caps;
  }

  const auto& running = *ctx.running;
  if (running.empty()) {
    last_grants_w_.assign(cfg_.domains, 0.0);
    last_demands_.clear();
    return {};
  }

  Stopwatch timer;
  const auto& spec = apps::node_power_spec();
  const std::size_t k = cfg_.domains;

  // Partition the running set, remembering where each job came from so the
  // merged caps land back in engine order.
  std::vector<std::vector<sched::Job*>> domain_jobs(k);
  std::vector<std::pair<std::uint32_t, std::size_t>> slot_of(running.size());
  for (std::size_t i = 0; i < running.size(); ++i) {
    const std::uint32_t d = map_.of_job(running[i]->spec().id);
    slot_of[i] = {d, domain_jobs[d].size()};
    domain_jobs[d].push_back(running[i]);
  }

  // Demands for the non-empty domains. Floor/capacity come from *this*
  // tick's node counts; utility and achieved-vs-target throughput come
  // from each domain's previous solve (standard one-interval feedback
  // delay; the cold start has zero utility and is handled by the
  // arbiter's node-proportional stage).
  last_demands_.clear();
  std::vector<std::size_t> active;  // domain ids with jobs, ascending
  for (std::size_t d = 0; d < k; ++d) {
    if (domain_jobs[d].empty()) continue;
    active.push_back(d);
    DomainDemand dem;
    dem.domain_id = static_cast<std::uint32_t>(d);
    dem.jobs = domain_jobs[d].size();
    for (const sched::Job* job : domain_jobs[d]) {
      dem.busy_nodes += static_cast<double>(job->spec().nodes);
    }
    dem.floor_w = dem.busy_nodes * spec.cap_min;
    dem.capacity_w = dem.busy_nodes * spec.tdp;
    const core::DomainFeedback& fb = policies_[d]->last_feedback();
    if (fb.valid) {
      dem.committed_w = fb.committed_w;
      dem.utility_per_w = fb.utility_per_w;
      dem.achieved_ips = fb.achieved_ips;
      dem.target_ips = fb.target_ips;
    }
    last_demands_.push_back(dem);
  }

  // Arbiter: carve the cluster's busy budget into per-domain grants down
  // the budget tree. The default flat tree reduces to exactly one
  // water_fill over the active domains' demands (bit-identical to the
  // pre-tree arbiter); a deeper tree water-fills level by level.
  const std::vector<double>& filled =
      tree_->allocate(ctx.budget_for_busy_w, last_demands_);
  last_grants_w_ = filled;

  // Domain solves, fanned out on the shared pool. Each solve writes only
  // its own slot; the MPC's nested parallel_for runs inline on a pool
  // worker, so nesting cannot deadlock and results stay bit-deterministic.
  std::vector<std::vector<double>> domain_caps(active.size());
  const auto solve_domain = [&](std::size_t a) {
    const std::size_t d = active[a];
    const double grant = last_grants_w_[d];
    double busy = 0.0;
    for (const sched::Job* job : domain_jobs[d]) {
      busy += static_cast<double>(job->spec().nodes);
    }
    policy::PolicyContext dctx;
    dctx.running = &domain_jobs[d];
    dctx.budget_total_w = ctx.budget_total_w;  // cluster-wide, informational
    dctx.budget_for_busy_w = grant;
    dctx.total_nodes = ctx.total_nodes;
    dctx.dt_s = ctx.dt_s;
    dctx.now_s = ctx.now_s;
    // Fairness floor re-based on the domain's share: equal split of the
    // *grant* over the domain's nodes, not of the cluster budget over the
    // whole machine.
    dctx.fair_cap_w =
        busy > 0.0 ? std::clamp(grant / busy, spec.cap_min, spec.tdp) : 0.0;
    dctx.domain_id = static_cast<std::uint32_t>(d);
    dctx.domain_count = static_cast<std::uint32_t>(k);
    domain_caps[a] = policies_[d]->allocate(dctx);
  };
  if (cfg_.parallel && active.size() > 1) {
    ThreadPool::shared().parallel_for(0, active.size(), solve_domain,
                                      /*grain=*/1);
  } else {
    for (std::size_t a = 0; a < active.size(); ++a) solve_domain(a);
  }

  // Merge back into engine order.
  std::vector<std::size_t> pos_of_domain(k, 0);
  for (std::size_t a = 0; a < active.size(); ++a) pos_of_domain[active[a]] = a;
  std::vector<double> caps(running.size(), 0.0);
  for (std::size_t i = 0; i < running.size(); ++i) {
    const auto [d, slot] = slot_of[i];
    caps[i] = domain_caps[pos_of_domain[d]][slot];
  }
  decision_seconds_.push_back(timer.seconds());
  return caps;
}

}  // namespace perq::hier
