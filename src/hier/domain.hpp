// Budget domains: the unit of hierarchical power management.
//
// A BudgetDomain is a slice of the cluster's jobs that is solved as its own
// small PERQ problem against a domain-local watt allocation, instead of one
// monolithic QP over every running job against the single cluster budget.
// Domains keep each QP small (the structured solver still grows
// superlinearly in total job count), let the K solves run in parallel on
// the shared ThreadPool, and bound the blast radius of a controller
// failure: losing one domain controller fences one grant, not the cluster.
//
// The split is two-level: K domain controllers each run the unmodified
// PERQ pipeline (targets + MPC) over their own jobs, and one BudgetArbiter
// re-divides the cluster budget across domains every control interval from
// the domains' reported demand (see arbiter.hpp). Job -> domain assignment
// is static and content-free (id mod K) so both sides of a wire agree on
// it without coordination.
#pragma once

#include <cstddef>
#include <cstdint>

namespace perq::hier {

/// Static job -> domain assignment. Deliberately trivial: both the plant
/// side and the controller side must agree on the mapping without any
/// handshake, and `id mod K` needs no state. K = 1 maps everything to
/// domain 0 (the monolithic configuration).
struct DomainMap {
  std::size_t domains = 1;

  std::uint32_t of_job(int job_id) const {
    if (domains <= 1) return 0;
    const auto k = static_cast<std::int64_t>(domains);
    std::int64_t d = static_cast<std::int64_t>(job_id) % k;
    if (d < 0) d += k;
    return static_cast<std::uint32_t>(d);
  }
};

/// Tenant metadata carried by every node of the power tree. The defaults
/// are exact no-ops in the water-filling arithmetic (weight 1.0 multiplies
/// bit-exactly, a zero SLA floor never lifts the physical nj * P_min
/// floor), which is what keeps an all-default tree bit-identical to the
/// tenant-blind allocation.
struct TenantSpec {
  /// Static budget share assumed before the first grant arrives (and
  /// reserved by the parent while the node has never reported). <= 0 means
  /// "equal split across siblings", the pre-tenant behavior.
  double share_weight = 0.0;
  /// Multiplies the node's weight in both water-fill stages: a priority-2
  /// tenant draws oversubscribed watts twice as fast as a priority-1
  /// sibling with the same demand.
  double priority_weight = 1.0;
  /// SLA power floor in watts for the whole subtree: the allocation never
  /// pins this tenant below the floor while the floor set is feasible,
  /// even when its physical nj * P_min floor is lower.
  double sla_floor_w = 0.0;
};

/// One domain's demand as seen by the arbiter at a decision instant.
/// In-process this is built from core::PerqPolicy::last_feedback(); over
/// the wire it arrives as a proto::DomainReport.
struct DomainDemand {
  std::uint32_t domain_id = 0;
  std::size_t jobs = 0;        ///< jobs in the domain's current batch
  double busy_nodes = 0.0;     ///< nodes under those jobs
  double floor_w = 0.0;        ///< nj * P_min: the grant never goes below
  double capacity_w = 0.0;     ///< nj * TDP: watts beyond this are unusable
  double committed_w = 0.0;    ///< watts committed under the last grant
  double utility_per_w = 0.0;  ///< QP budget-row dual (marginal-watt value)
  double achieved_ips = 0.0;   ///< measured throughput last interval
  double target_ips = 0.0;     ///< fairness-target throughput
  /// Tenant terms (defaults are exact no-ops, see TenantSpec).
  double sla_floor_w = 0.0;       ///< SLA floor: lifts floor_w when higher
  double priority_weight = 1.0;   ///< multiplies both fill-stage weights
};

}  // namespace perq::hier
