#include "hier/arbiter.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace perq::hier {

namespace {

/// Utilities below this are treated as "budget row slack": the domain does
/// not benefit from more watts and draws nothing in the utility stage.
constexpr double kUtilityEps = 1e-12;

/// One clipped proportional-fill stage: spreads `pool` over the domains
/// where `weight[d] > 0` and `grants[d] < cap[d]`, proportional to weight,
/// clipping at cap and re-flowing freed watts. Terminates because every
/// round either drains the pool or saturates at least one domain. Returns
/// the undistributed remainder.
double fill_stage(double pool, const std::vector<double>& weight,
                  const std::vector<double>& cap, std::vector<double>& grants) {
  const std::size_t n = grants.size();
  for (std::size_t round = 0; round < n + 1 && pool > 1e-12; ++round) {
    double total_weight = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
      if (weight[d] > 0.0 && grants[d] < cap[d]) total_weight += weight[d];
    }
    if (total_weight <= 0.0) break;
    double distributed = 0.0;
    bool saturated_any = false;
    for (std::size_t d = 0; d < n; ++d) {
      if (weight[d] <= 0.0 || grants[d] >= cap[d]) continue;
      const double offer = pool * weight[d] / total_weight;
      const double take = std::min(offer, cap[d] - grants[d]);
      grants[d] += take;
      distributed += take;
      if (take < offer) saturated_any = true;
    }
    pool -= distributed;
    if (!saturated_any) {
      pool = std::max(pool, 0.0);
      break;  // nobody clipped: the pool was fully placed this round
    }
  }
  return std::max(pool, 0.0);
}

/// The water-filling arithmetic over demands already in canonical order.
std::vector<double> water_fill_ordered(double budget_w,
                                       const std::vector<const DomainDemand*>& demands,
                                       WaterFillStats* stats) {
  const std::size_t n = demands.size();

  std::vector<double> floors(n), caps(n);
  double floor_sum = 0.0;
  for (std::size_t d = 0; d < n; ++d) {
    floors[d] = std::max(demands[d]->floor_w, 0.0);
    // The SLA floor is a tenant guarantee on top of the physical floor; a
    // zero (default) SLA floor never lifts nj * P_min, which keeps the
    // tenant-blind input bit-identical.
    if (demands[d]->sla_floor_w > floors[d]) {
      floors[d] = demands[d]->sla_floor_w;
      if (stats != nullptr) ++stats->sla_floor_activations;
    }
    caps[d] = std::max(demands[d]->capacity_w, floors[d]);
    floor_sum += floors[d];
  }

  // Infeasible floors: the budget cannot even cover the floors everywhere.
  // Scale proportionally so conservation survives; the per-domain policies
  // clamp to the cap range regardless.
  if (floor_sum > budget_w) {
    std::vector<double> grants(n, 0.0);
    if (floor_sum > 0.0) {
      const double scale = budget_w / floor_sum;
      for (std::size_t d = 0; d < n; ++d) grants[d] = floors[d] * scale;
    }
    return grants;
  }

  std::vector<double> grants = floors;
  double pool = budget_w - floor_sum;

  // Stage 1: constrained domains (binding budget row), weighted by
  // busy_nodes * utility * priority so a large starved domain outranks a
  // small one with the same per-watt value, and a high-priority tenant
  // outranks an equal-demand sibling. priority 1.0 multiplies exactly.
  std::vector<double> weight(n, 0.0);
  for (std::size_t d = 0; d < n; ++d) {
    const double priority = std::max(demands[d]->priority_weight, 0.0);
    if (demands[d]->utility_per_w > kUtilityEps) {
      weight[d] = demands[d]->busy_nodes * demands[d]->utility_per_w * priority;
    }
  }
  pool = fill_stage(pool, weight, caps, grants);

  // Stage 2: whatever is left goes node-proportional to anyone with
  // headroom (cold start lands here: all utilities are still zero).
  for (std::size_t d = 0; d < n; ++d) {
    weight[d] = demands[d]->busy_nodes * std::max(demands[d]->priority_weight, 0.0);
  }
  pool = fill_stage(pool, weight, caps, grants);

  // Conservation guard against accumulated rounding: never hand out more
  // than the budget, even by an ulp. The overshoot is taken from grants
  // with head-room above their floor -- a proportional rescale would push
  // floors-level grants an ulp below nj * P_min, which turns the domain's
  // budget row degenerate against the QP box.
  double sum = 0.0;
  for (double g : grants) sum += g;
  if (sum > budget_w) {
    double excess = sum - budget_w;
    for (std::size_t d = 0; d < n && excess > 0.0; ++d) {
      const double take = std::min(excess, grants[d] - floors[d]);
      if (take > 0.0) {
        grants[d] -= take;
        excess -= take;
      }
    }
  }
  return grants;
}

}  // namespace

std::vector<double> water_fill(double budget_w,
                               const std::vector<DomainDemand>& demands,
                               WaterFillStats* stats) {
  const std::size_t n = demands.size();
  if (n == 0) return {};
  budget_w = std::max(budget_w, 0.0);

  // Single domain: the grant IS the budget, bit-for-bit. Running the
  // arithmetic below would compute floor + (budget - floor), which IEEE-754
  // does not guarantee to round back to `budget_w` -- and K=1 equivalence
  // with the monolithic controller demands exactness, not closeness. (SLA
  // stats are not counted here: a lone tenant's floor cannot shape a grant
  // that is the whole budget regardless.)
  if (n == 1) return {budget_w};

  // Canonical order: run the arithmetic over demands sorted by domain_id
  // (stable, so equal ids keep input order) and scatter the grants back.
  // Every floating-point sum inside water_fill_ordered then accumulates in
  // the same order no matter how the caller built the vector, which is the
  // whole permutation-invariance guarantee. Callers that already pass
  // ascending ids -- every in-repo call site -- sort into their own order,
  // making this a bit-exact no-op for them.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a].domain_id < demands[b].domain_id;
  });
  std::vector<const DomainDemand*> sorted(n);
  for (std::size_t k = 0; k < n; ++k) sorted[k] = &demands[order[k]];

  const std::vector<double> sorted_grants =
      water_fill_ordered(budget_w, sorted, stats);
  std::vector<double> grants(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) grants[order[k]] = sorted_grants[k];
  return grants;
}

BudgetArbiter::BudgetArbiter(std::size_t domains)
    : grants_w_(domains, 0.0),
      ever_granted_(domains, 0),
      fenced_now_(domains, 0) {
  PERQ_REQUIRE(domains >= 1, "arbiter needs at least one domain");
}

bool BudgetArbiter::fenced(std::uint32_t domain) const {
  return domain < fenced_now_.size() && fenced_now_[domain] != 0;
}

void BudgetArbiter::release(std::uint32_t domain) {
  PERQ_REQUIRE(domain < grants_w_.size(), "release of unknown domain");
  if (fenced_now_[domain]) fenced_w_ -= grants_w_[domain];
  grants_w_[domain] = 0.0;
  ever_granted_[domain] = 0;
  fenced_now_[domain] = 0;
}

const std::vector<double>& BudgetArbiter::allocate(
    double cluster_budget_w, const std::vector<DomainDemand>& live) {
  const std::size_t n = grants_w_.size();
  std::vector<std::uint8_t> reported(n, 0);
  for (const DomainDemand& d : live) {
    PERQ_REQUIRE(d.domain_id < n, "demand for unknown domain");
    PERQ_REQUIRE(!reported[d.domain_id], "duplicate demand for a domain");
    reported[d.domain_id] = 1;
  }

  // Fence silent domains at their held grant: their agents keep actuating
  // the last broadcast caps, so those watts are physically committed and
  // must not be re-granted (the arbiter-level mirror of PR 3's held-watts
  // budget-row shrink).
  fenced_w_ = 0.0;
  for (std::size_t d = 0; d < n; ++d) {
    const bool was_fenced = fenced_now_[d] != 0;
    fenced_now_[d] = !reported[d] && ever_granted_[d];
    if (fenced_now_[d]) {
      fenced_w_ += grants_w_[d];
      if (!was_fenced) ++grants_fenced_;  // live -> fenced transition
    }
  }

  const double available = std::max(cluster_budget_w - fenced_w_, 0.0);
  WaterFillStats stats;
  const std::vector<double> filled = water_fill(available, live, &stats);
  sla_floor_activations_ += stats.sla_floor_activations;
  for (std::size_t k = 0; k < live.size(); ++k) {
    grants_w_[live[k].domain_id] = filled[k];
    ever_granted_[live[k].domain_id] = 1;
  }
  // Silent domains that never held a grant stay at zero; fenced ones keep
  // their frozen grant untouched.
  ++decisions_;
  return grants_w_;
}

}  // namespace perq::hier
