// PowerTree: the recursive budget hierarchy.
//
// PR 4 hard-coded a two-level topology -- one BudgetArbiter over K domain
// controllers. Real facilities cap power as a tree (datacenter -> row ->
// rack -> node) with oversubscription at every level, so this generalizes
// the pair into a first-class recursion: every interior node runs the
// water-filling arbiter over its *child subtrees*, leaves own unmodified
// MPC shards, and every node carries tenant metadata (share, priority,
// SLA floor) that composes down the tree.
//
// Allocation is two sweeps per control interval:
//
//   1. Bottom-up demand aggregation. An interior node's demand is the sum
//      of its present children's floors, capacities, busy nodes and
//      committed watts; its utility_per_w is the busy-node-weighted mean
//      of the children's duals, chosen so that the node's stage-1 weight
//      (busy * utility) equals the *sum* of its children's stage-1
//      weights -- collapsing a subtree into one demand loses no pull.
//   2. Top-down water-filling. The root is granted the cluster budget
//      bit-exactly; each interior node water-fills its own grant over its
//      present children (canonical child order, see arbiter.hpp), and the
//      recursion bottoms out at leaf grants.
//
// Identities this construction is tested to preserve:
//   * flat(K) (root over K leaves) allocates bit-identically to a single
//     water_fill call over the same demands -- the depth-1 tree IS the
//     two-level arbiter, so everything built on PR 4 is unchanged.
//   * A fanout-1 chain passes the budget through bit-exactly at every
//     link (water_fill's n==1 fast path), so depth is free when unused.
//   * Conservation composes: sum(child grants) <= parent grant at every
//     node, hence sum(leaf grants) <= cluster budget at any depth.
//
// Topology is dynamic: reparent() moves a whole subtree under a new
// interior parent at runtime (acyclicity checked), modelling a tenant
// migrating between racks/rows. The daemon layer mirrors this with
// leave/rejoin fencing (see arbiter_daemon.hpp); in-process the tree just
// re-aggregates along the new edges on the next allocate().
#pragma once

#include <cstdint>
#include <vector>

#include "hier/arbiter.hpp"
#include "hier/domain.hpp"

namespace perq::hier {

/// Static description of a budget tree. Node 0 is the root; every other
/// node names its parent. Leaves are the childless nodes *at
/// construction* and stay leaves for the tree's lifetime (re-parenting
/// moves subtrees between interior nodes, it never turns a leaf into a
/// parent). Leaf slots -- the domain ids the MPC shards are keyed by --
/// are assigned in ascending node-id order over the leaves.
struct TreeSpec {
  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  struct Node {
    std::uint32_t parent = kNoParent;
    TenantSpec tenant;
  };

  std::vector<Node> nodes;

  /// Root over `leaves` leaf children: the PR-4 two-level topology.
  static TreeSpec flat(std::size_t leaves);

  /// Complete tree of `depth` levels below the root, `fanout` children
  /// per interior node: fanout^depth leaves. depth 0 is a lone root-leaf
  /// (the monolithic controller); depth 1 equals flat(fanout).
  static TreeSpec uniform(std::size_t depth, std::size_t fanout);
};

/// The recursive arbiter. Owns no policies and no wire state: callers
/// feed leaf demands in, grants come out. HierarchicalPerqPolicy drives
/// one in-process; the daemon deployment realizes the same tree as
/// physically stacked ArbiterDaemons.
class PowerTree {
 public:
  explicit PowerTree(TreeSpec spec);

  std::size_t nodes() const { return spec_.nodes.size(); }
  std::size_t leaves() const { return node_of_leaf_.size(); }
  /// Edges on the longest root -> leaf path (0 for a lone root-leaf).
  std::size_t depth() const;

  /// Node id owning leaf slot `leaf` (slots in ascending node-id order).
  std::uint32_t leaf_node(std::size_t leaf) const;
  /// Root -> node path by node id (the wire tree-path of that node).
  std::vector<std::uint32_t> path_to(std::uint32_t node) const;
  const TenantSpec& tenant(std::uint32_t node) const;

  /// One control interval: water-fills `budget_w` down the tree over the
  /// leaves present in `leaf_demands` (domain_id = leaf slot, unique,
  /// any order). Absent leaves -- and interior nodes with no present
  /// descendant -- are granted zero. Returns grants indexed by leaf slot.
  const std::vector<double>& allocate(double budget_w,
                                      const std::vector<DomainDemand>& leaf_demands);

  /// Grants of the last allocate(), indexed by leaf slot.
  const std::vector<double>& leaf_grants_w() const { return leaf_grants_w_; }
  /// Grants of the last allocate(), indexed by node id (interior nodes
  /// included: this is what per-level conservation is asserted against).
  const std::vector<double>& node_grants_w() const { return node_grants_w_; }

  /// Moves `node`'s subtree under `new_parent` (an interior node outside
  /// the subtree). Takes effect on the next allocate().
  void reparent(std::uint32_t node, std::uint32_t new_parent);

  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t reparent_events() const { return reparent_events_; }
  /// SLA floors that shaped an allocation, summed over every level.
  std::uint64_t sla_floor_activations() const { return sla_floor_activations_; }

 private:
  void rebuild_edges();
  bool in_subtree(std::uint32_t node, std::uint32_t candidate) const;

  TreeSpec spec_;
  std::vector<std::vector<std::uint32_t>> children_;  // ascending node id
  std::vector<std::uint32_t> node_of_leaf_;           // leaf slot -> node id
  std::vector<std::uint32_t> leaf_of_node_;           // node id -> slot or kNoParent
  std::vector<std::uint32_t> topo_;                   // parents before children

  std::vector<double> leaf_grants_w_;
  std::vector<double> node_grants_w_;
  std::uint64_t decisions_ = 0;
  std::uint64_t reparent_events_ = 0;
  std::uint64_t sla_floor_activations_ = 0;
};

}  // namespace perq::hier
