// HierarchicalPerqPolicy: K budget domains + one arbiter, in one process.
//
// The cluster's running jobs are partitioned into K domains (id mod K,
// see DomainMap); each domain owns an unmodified core::PerqPolicy that
// solves the domain's small QP against the domain's watt grant. Every
// decision instant the embedded BudgetArbiter re-divides the cluster's
// busy-node budget across the non-empty domains from their previous
// feedback (committed watts, QP budget-row dual, achieved-vs-target IPS),
// and the K domain solves then run concurrently on the shared ThreadPool
// -- each one writes only its own output slot, and the MPC's inner
// parallel_for executes inline when called from a pool worker, so the
// fan-out is deterministic and deadlock-free.
//
// K = 1 is special-cased into a straight delegation to the single domain
// policy with the caller's unmodified context: the monolithic
// configuration is bit-identical to plain PerqPolicy by construction, not
// by numerical accident.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/perq_policy.hpp"
#include "hier/arbiter.hpp"
#include "hier/domain.hpp"
#include "hier/tree.hpp"

namespace perq::hier {

struct HierConfig {
  std::size_t domains = 1;   ///< K; 1 = monolithic (bit-identical to PERQ)
  core::PerqConfig domain;   ///< configuration of every per-domain policy
  bool parallel = true;      ///< fan the K domain solves out on the pool
  /// Budget tree over the K domains. Empty (the default) means
  /// TreeSpec::flat(domains) -- one arbiter over K leaves, which allocates
  /// bit-identically to the pre-tree water_fill call. A deeper spec must
  /// have exactly `domains` leaves; its interior nodes and tenant terms
  /// then shape the allocation level by level.
  TreeSpec tree;
};

class HierarchicalPerqPolicy final : public policy::PowerPolicy {
 public:
  /// Mirrors the PerqPolicy constructor; every domain policy shares the
  /// node model and the cluster-level sizing (the *fairness floor* is
  /// re-based per domain through PolicyContext::fair_cap_w, not by lying
  /// to the target generator about the machine size).
  HierarchicalPerqPolicy(const sysid::IdentifiedModel* node_model,
                         std::size_t worst_case_nodes, std::size_t total_nodes,
                         const HierConfig& cfg = {});

  std::string name() const override;

  std::vector<double> allocate(const policy::PolicyContext& ctx) override;

  void on_job_started(const sched::Job& job) override;
  void on_job_finished(const sched::Job& job) override;
  double target_ips(int job_id) const override;

  const HierConfig& config() const { return cfg_; }
  const DomainMap& domain_map() const { return map_; }
  std::uint32_t domain_of(int job_id) const { return map_.of_job(job_id); }

  /// Grants of the most recent allocate(), indexed by domain id (zero for
  /// domains that had no jobs). Drives the engine's per-domain budget
  /// accounting and the conservation assertions in tests.
  const std::vector<double>& last_grants_w() const { return last_grants_w_; }

  /// Demands handed to the arbiter in the most recent allocate().
  const std::vector<DomainDemand>& last_demands() const { return last_demands_; }

  /// Aggregated robustness counters: the sum over all domain policies plus
  /// the tree's allocation accounting (SLA floors, re-parent events) --
  /// sharding must not lose accounting relative to the monolithic run.
  core::RobustnessCounters counters() const;

  /// The budget tree driving allocate() for K > 1. Mutable so callers can
  /// re-parent subtrees between decisions (the next allocate() follows the
  /// new edges).
  PowerTree& tree() { return *tree_; }
  const PowerTree& tree() const { return *tree_; }

  /// Per-interval decision latency of the whole hierarchical step
  /// (arbiter + slowest domain solve), aligned with allocate() calls.
  const std::vector<double>& decision_seconds() const { return decision_seconds_; }

  const core::PerqPolicy& domain_policy(std::size_t d) const { return *policies_[d]; }

 private:
  HierConfig cfg_;
  DomainMap map_;
  std::unique_ptr<PowerTree> tree_;
  std::vector<std::unique_ptr<core::PerqPolicy>> policies_;
  std::vector<double> last_grants_w_;
  std::vector<DomainDemand> last_demands_;
  std::vector<double> decision_seconds_;
};

}  // namespace perq::hier
