// BudgetArbiter: demand-based water-filling of a power budget across
// budget domains, plus the fencing bookkeeping for domains that went
// silent. One arbiter divides one node's budget among that node's
// children; stacking arbiters (each child itself an arbiter over its own
// children) is what PowerTree composes into an arbitrary-depth hierarchy.
//
// Every control interval each domain reports its demand (floor, capacity,
// committed watts, and the marginal value of one more watt -- the dual of
// its QP budget row). The arbiter re-divides the node's busy-node budget:
//
//   1. Floors first. Every domain is owed max(nj * P_min, SLA floor); if
//      even the floors do not fit, they are scaled down proportionally
//      (the plant itself is infeasible at that point, and conservation
//      still holds).
//   2. Utility water-filling. The remaining watts flow to domains whose
//      budget row is *binding* (utility > 0), proportional to
//      busy_nodes * utility * priority, clipped at each domain's
//      capacity; freed watts re-flow until the pool is dry or every
//      constrained domain is saturated. This is what "unspent watts flow
//      to constrained domains" means operationally: a domain whose QP
//      left its budget row slack has zero dual and draws nothing in this
//      stage.
//   3. Node-proportional remainder. Watts still left (all constrained
//      domains saturated, or no domain reported a binding row yet -- e.g.
//      the cold start) are spread over non-saturated domains proportional
//      to busy_nodes * priority, again clipped at capacity. Watts beyond
//      every domain's capacity stay unspent: granting them would be
//      unactuatable anyway.
//
// Tenant terms are exact no-ops at their defaults: priority 1.0
// multiplies bit-exactly and a zero SLA floor never lifts nj * P_min, so
// a tenant-blind input produces bit-identical grants to the pre-tenant
// arbiter.
//
// Determinism: the allocation is a function of the demand *set*, not the
// demand order. Internally the demands are run through the arithmetic in
// canonical (ascending domain_id) order and the grants scattered back to
// the caller's order, so permuting the insertion order of `demands`
// yields bit-identical grants (property-tested). This matters once the
// arbiter recurses: a nondeterministic tie-break at one level would
// compound through every level below it.
//
// Invariants (property-tested under randomized demands):
//   * conservation:  sum(grants) <= budget (exactly = budget when demand
//     can absorb it),
//   * floors:        grant_d >= floor_d whenever sum(floors) <= budget,
//   * K = 1:         the single domain is granted the budget *exactly*
//     (bit-for-bit, not via the arithmetic above), which is what makes
//     the K=1 hierarchical configuration bit-identical to the monolithic
//     controller -- and, transitively, a chain of 1-fanout arbiters
//     bit-identical to a single one.
//
// The stateful wrapper adds PR 3-style fencing: a domain that stopped
// reporting (crashed or partitioned controller) keeps its last grant
// *reserved* -- its agents keep actuating the last broadcast plan, so the
// watts are physically spoken for -- and live domains share only what is
// left. A rejoining domain just reports again and is re-included; a
// domain that announces it is *leaving* (re-parented elsewhere in the
// tree) is released outright so its watts return to the pool.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/domain.hpp"

namespace perq::hier {

/// Per-call observability for water_fill. Counters, not behavior: the
/// allocation is identical whether or not stats are collected.
struct WaterFillStats {
  /// Demands whose SLA floor strictly lifted the physical nj * P_min
  /// floor this call (the tenant term actually shaped the allocation).
  std::uint64_t sla_floor_activations = 0;
};

/// Pure water-filling allocation, aligned with `demands`. Deterministic
/// and order-independent: demands are processed in canonical domain_id
/// order regardless of input order (see header note). A single-demand
/// input is granted `budget_w` exactly.
std::vector<double> water_fill(double budget_w,
                               const std::vector<DomainDemand>& demands,
                               WaterFillStats* stats = nullptr);

/// Stateful arbiter: water-filling plus held-grant fencing for silent
/// domains. One instance per interior tree node, indexed by domain id.
class BudgetArbiter {
 public:
  explicit BudgetArbiter(std::size_t domains);

  std::size_t domains() const { return grants_w_.size(); }

  /// Re-divides `cluster_budget_w` for one control interval. `live` holds
  /// the demands of every domain that reported this tick (any order;
  /// domain_id < domains()). Domains absent from `live` that hold a
  /// previous grant are fenced: their grant is frozen and subtracted from
  /// the pool before the live domains are water-filled. Returns the grant
  /// vector indexed by domain id.
  const std::vector<double>& allocate(double cluster_budget_w,
                                      const std::vector<DomainDemand>& live);

  /// Forgets everything about `domain`: grant zeroed, fencing state
  /// cleared. Called when the child announced it is leaving (re-parented
  /// under another arbiter) -- unlike a silent crash its watts are not
  /// physically committed here any more, so they must NOT stay fenced, or
  /// the subtree would double-draw from old and new parents.
  void release(std::uint32_t domain);

  /// Grants as of the last allocate(), indexed by domain id.
  const std::vector<double>& grants_w() const { return grants_w_; }

  /// Watts frozen for silent domains in the last allocate().
  double fenced_w() const { return fenced_w_; }

  /// True when `domain` was fenced (not reported) in the last allocate().
  bool fenced(std::uint32_t domain) const;

  std::uint64_t decisions() const { return decisions_; }

  /// Cumulative count of live->fenced transitions across allocate() calls
  /// (a domain fenced for five consecutive ticks counts once).
  std::uint64_t grants_fenced() const { return grants_fenced_; }

  /// Cumulative count of demands whose SLA floor shaped the allocation.
  std::uint64_t sla_floor_activations() const { return sla_floor_activations_; }

 private:
  std::vector<double> grants_w_;
  std::vector<std::uint8_t> ever_granted_;
  std::vector<std::uint8_t> fenced_now_;
  double fenced_w_ = 0.0;
  std::uint64_t decisions_ = 0;
  std::uint64_t grants_fenced_ = 0;
  std::uint64_t sla_floor_activations_ = 0;
};

}  // namespace perq::hier
