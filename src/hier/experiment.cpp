#include "hier/experiment.hpp"

#include <string>
#include <utility>

#include "net/loopback.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace perq::hier {

core::RunResult run_hier_experiment(const core::EngineConfig& cfg,
                                    HierarchicalPerqPolicy& policy) {
  core::SimulationEngine engine(cfg);
  std::vector<double> caps;
  std::vector<double> targets;
  while (!engine.done()) {
    const core::TickView& view = engine.begin_tick();
    for (const sched::Job* started : view.started) {
      policy.on_job_started(*started);
    }

    caps.clear();
    targets.clear();
    if (!view.running.empty()) {
      const policy::PolicyContext ctx = engine.context();
      Stopwatch timer;
      caps = policy.allocate(ctx);
      engine.note_decision_time(timer.seconds());
      targets.reserve(view.running.size());
      for (const sched::Job* job : view.running) {
        targets.push_back(policy.target_ips(job->spec().id));
      }
      // Register the grants so apply_caps asserts both conservation
      // (sum of grants within the cluster row) and per-domain compliance
      // (each domain's committed caps within its grant) -- every tick, not
      // just in tests.
      std::vector<std::uint32_t> domain_of_job;
      domain_of_job.reserve(view.running.size());
      for (const sched::Job* job : view.running) {
        domain_of_job.push_back(policy.domain_of(job->spec().id));
      }
      engine.set_domain_grants(policy.last_grants_w(),
                               std::move(domain_of_job));
    }
    engine.apply_caps(std::move(caps), std::move(targets));
    engine.advance();
    for (const auto& finished : engine.last_finished()) {
      policy.on_job_finished(*finished.first);
    }
  }
  return engine.finish(policy.name());
}

HierDaemonResult run_hier_loopback_daemon_experiment(
    const core::EngineConfig& cfg, std::size_t domains,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies,
    daemon::ControllerConfig ccfg, ArbiterDaemonConfig acfg,
    std::size_t agents_per_domain) {
  PERQ_REQUIRE(domains >= 1, "need at least one domain");
  PERQ_REQUIRE(policies.size() == domains,
               "need exactly one policy per domain controller");
  PERQ_REQUIRE(agents_per_domain >= 1, "need at least one agent per domain");

  net::LoopbackTransport transport;
  const std::string arbiter_address = "perq-arbiter";
  ArbiterDaemon arbiter(transport.listen(arbiter_address), domains, acfg);

  // K domain controllers, each with its own listener and its own uplink to
  // the arbiter. Domain membership is placement-based on this path: agent
  // i dials controller i % K, and a controller's domain is exactly the
  // jobs its agents lead.
  std::vector<std::unique_ptr<daemon::PerqController>> controllers;
  std::vector<std::string> addresses;
  controllers.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    addresses.push_back("perqd-" + std::to_string(d));
    controllers.push_back(std::make_unique<daemon::PerqController>(
        transport.listen(addresses.back()), *policies[d], ccfg));
    controllers.back()->attach_arbiter(transport.connect(arbiter_address),
                                       static_cast<std::uint32_t>(d),
                                       static_cast<std::uint32_t>(domains));
  }

  daemon::PlantConfig pcfg;
  pcfg.agents = domains * agents_per_domain;
  daemon::DaemonPlant plant(cfg, transport, addresses, pcfg);
  for (auto& c : controllers) c->pump();

  // One deterministic single-threaded event loop: every wait iteration
  // services each controller (report out, decide when granted) and then
  // the arbiter (grants out once every domain reported the tick).
  const auto service = [&] {
    for (auto& c : controllers) c->service();
    arbiter.service();
  };
  while (!plant.done()) {
    plant.step(service);
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  for (auto& c : controllers) c->pump();
  arbiter.pump();

  HierDaemonResult res;
  res.run = plant.finish(domains == 1 ? "PERQ"
                                      : "PERQ-HIER" + std::to_string(domains));
  res.final_grants_w = arbiter.grants_w();
  res.aggregated_counters = arbiter.aggregated_counters();
  res.arbiter_decisions = arbiter.decisions();
  return res;
}

TreeDaemonResult run_tree_loopback_daemon_experiment(
    const core::EngineConfig& cfg, std::size_t domains, std::size_t mids,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies,
    daemon::ControllerConfig ccfg, ArbiterDaemonConfig acfg,
    std::size_t agents_per_domain,
    const std::vector<daemon::DomainAttachment>& leaf_tenants) {
  PERQ_REQUIRE(domains >= 1, "need at least one domain");
  PERQ_REQUIRE(policies.size() == domains,
               "need exactly one policy per domain controller");
  PERQ_REQUIRE(leaf_tenants.empty() || leaf_tenants.size() == domains,
               "leaf_tenants must be empty or one entry per domain");

  // Depth 1: the flat deployment *is* the tree degenerated to one level,
  // so delegate outright -- the bit-identity claim is then by construction.
  if (mids == 0) {
    HierDaemonResult flat = run_hier_loopback_daemon_experiment(
        cfg, domains, policies, ccfg, acfg, agents_per_domain);
    TreeDaemonResult res;
    res.run = std::move(flat.run);
    res.root_grants_w = std::move(flat.final_grants_w);
    res.aggregated_counters = flat.aggregated_counters;
    res.root_decisions = flat.arbiter_decisions;
    return res;
  }
  PERQ_REQUIRE(mids <= domains, "each mid arbiter needs at least one domain");

  net::LoopbackTransport transport;
  ArbiterDaemon root(transport.listen("perq-root"), mids, acfg);

  // Leaf d sits under mid d % mids as that mid's child d / mids, mirroring
  // the plant's agent -> controller placement so blocks stay balanced.
  std::vector<std::size_t> kids(mids, 0);
  for (std::size_t d = 0; d < domains; ++d) ++kids[d % mids];

  std::vector<std::unique_ptr<ArbiterDaemon>> mid_daemons;
  std::vector<std::string> mid_addresses;
  mid_daemons.reserve(mids);
  for (std::size_t m = 0; m < mids; ++m) {
    mid_addresses.push_back("perq-mid-" + std::to_string(m));
    mid_daemons.push_back(std::make_unique<ArbiterDaemon>(
        transport.listen(mid_addresses.back()), kids[m], acfg));
    daemon::DomainAttachment att;
    att.static_share = 1.0 / static_cast<double>(mids);
    att.tree_path = {0u, static_cast<std::uint32_t>(1 + m)};
    mid_daemons.back()->attach_parent(transport.connect("perq-root"),
                                      static_cast<std::uint32_t>(m),
                                      static_cast<std::uint32_t>(mids),
                                      std::move(att));
  }

  std::vector<std::unique_ptr<daemon::PerqController>> controllers;
  std::vector<std::string> addresses;
  controllers.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    addresses.push_back("perqd-" + std::to_string(d));
    controllers.push_back(std::make_unique<daemon::PerqController>(
        transport.listen(addresses.back()), *policies[d], ccfg));
    const std::size_t m = d % mids;
    daemon::DomainAttachment att;
    if (!leaf_tenants.empty()) att = leaf_tenants[d];
    // Composed cold-start share: this leaf's equal slice of its mid's
    // equal slice, so the whole frontier sums to the cluster budget.
    att.static_share =
        1.0 / static_cast<double>(mids * kids[m]);
    att.parent_path = {0u, static_cast<std::uint32_t>(1 + m)};
    att.tree_path = {0u, static_cast<std::uint32_t>(1 + m),
                     static_cast<std::uint32_t>(1 + mids + d)};
    controllers.back()->attach_arbiter(transport.connect(mid_addresses[m]),
                                       static_cast<std::uint32_t>(d / mids),
                                       static_cast<std::uint32_t>(kids[m]),
                                       std::move(att));
  }

  daemon::PlantConfig pcfg;
  pcfg.agents = domains * agents_per_domain;
  daemon::DaemonPlant plant(cfg, transport, addresses, pcfg);
  for (auto& c : controllers) c->pump();

  TreeDaemonResult res;
  // Leaf -> mid -> root per wait iteration: reports ripple up one level per
  // service pass, grants ride back on the next pass (the one-interval
  // propagation delay per level documented in ArbiterDaemon). The overdraw
  // probe runs only on rounds where a level actually decided, comparing
  // its grant sum + cold-start reserve against the scope it divided.
  const auto probe = [&](ArbiterDaemon& a, double scope) {
    double sum = 0.0;
    for (double g : a.grants_w()) sum += g;
    res.max_level_overdraw_w =
        std::max(res.max_level_overdraw_w, sum + a.reserved_w() - scope);
  };
  const auto service = [&] {
    for (auto& c : controllers) c->service();
    for (std::size_t m = 0; m < mids; ++m) {
      if (mid_daemons[m]->service()) {
        const double scope =
            mid_daemons[m]->any_parent_grant()
                ? mid_daemons[m]->parent_grant_w()
                : mid_daemons[m]->cluster_budget_w() /
                      static_cast<double>(mids);
        probe(*mid_daemons[m], scope);
      }
    }
    if (root.service()) probe(root, root.cluster_budget_w());
  };
  while (!plant.done()) {
    plant.step(service);
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  for (auto& c : controllers) c->pump();
  for (auto& m : mid_daemons) m->pump();
  root.pump();

  res.run = plant.finish("PERQ-TREE" + std::to_string(mids) + "x" +
                         std::to_string(domains));
  res.root_grants_w = root.grants_w();
  res.mid_grants_w.reserve(mids);
  res.mid_decisions.reserve(mids);
  for (auto& m : mid_daemons) {
    res.mid_grants_w.push_back(m->grants_w());
    res.mid_decisions.push_back(m->decisions());
  }
  res.aggregated_counters = root.aggregated_counters();
  res.root_decisions = root.decisions();
  return res;
}

}  // namespace perq::hier
