#include "hier/experiment.hpp"

#include <string>
#include <utility>

#include "net/loopback.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace perq::hier {

core::RunResult run_hier_experiment(const core::EngineConfig& cfg,
                                    HierarchicalPerqPolicy& policy) {
  core::SimulationEngine engine(cfg);
  std::vector<double> caps;
  std::vector<double> targets;
  while (!engine.done()) {
    const core::TickView& view = engine.begin_tick();
    for (const sched::Job* started : view.started) {
      policy.on_job_started(*started);
    }

    caps.clear();
    targets.clear();
    if (!view.running.empty()) {
      const policy::PolicyContext ctx = engine.context();
      Stopwatch timer;
      caps = policy.allocate(ctx);
      engine.note_decision_time(timer.seconds());
      targets.reserve(view.running.size());
      for (const sched::Job* job : view.running) {
        targets.push_back(policy.target_ips(job->spec().id));
      }
      // Register the grants so apply_caps asserts both conservation
      // (sum of grants within the cluster row) and per-domain compliance
      // (each domain's committed caps within its grant) -- every tick, not
      // just in tests.
      std::vector<std::uint32_t> domain_of_job;
      domain_of_job.reserve(view.running.size());
      for (const sched::Job* job : view.running) {
        domain_of_job.push_back(policy.domain_of(job->spec().id));
      }
      engine.set_domain_grants(policy.last_grants_w(),
                               std::move(domain_of_job));
    }
    engine.apply_caps(std::move(caps), std::move(targets));
    engine.advance();
    for (const auto& finished : engine.last_finished()) {
      policy.on_job_finished(*finished.first);
    }
  }
  return engine.finish(policy.name());
}

HierDaemonResult run_hier_loopback_daemon_experiment(
    const core::EngineConfig& cfg, std::size_t domains,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies,
    daemon::ControllerConfig ccfg, ArbiterDaemonConfig acfg,
    std::size_t agents_per_domain) {
  PERQ_REQUIRE(domains >= 1, "need at least one domain");
  PERQ_REQUIRE(policies.size() == domains,
               "need exactly one policy per domain controller");
  PERQ_REQUIRE(agents_per_domain >= 1, "need at least one agent per domain");

  net::LoopbackTransport transport;
  const std::string arbiter_address = "perq-arbiter";
  ArbiterDaemon arbiter(transport.listen(arbiter_address), domains, acfg);

  // K domain controllers, each with its own listener and its own uplink to
  // the arbiter. Domain membership is placement-based on this path: agent
  // i dials controller i % K, and a controller's domain is exactly the
  // jobs its agents lead.
  std::vector<std::unique_ptr<daemon::PerqController>> controllers;
  std::vector<std::string> addresses;
  controllers.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    addresses.push_back("perqd-" + std::to_string(d));
    controllers.push_back(std::make_unique<daemon::PerqController>(
        transport.listen(addresses.back()), *policies[d], ccfg));
    controllers.back()->attach_arbiter(transport.connect(arbiter_address),
                                       static_cast<std::uint32_t>(d),
                                       static_cast<std::uint32_t>(domains));
  }

  daemon::PlantConfig pcfg;
  pcfg.agents = domains * agents_per_domain;
  daemon::DaemonPlant plant(cfg, transport, addresses, pcfg);
  for (auto& c : controllers) c->pump();

  // One deterministic single-threaded event loop: every wait iteration
  // services each controller (report out, decide when granted) and then
  // the arbiter (grants out once every domain reported the tick).
  const auto service = [&] {
    for (auto& c : controllers) c->service();
    arbiter.service();
  };
  while (!plant.done()) {
    plant.step(service);
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  for (auto& c : controllers) c->pump();
  arbiter.pump();

  HierDaemonResult res;
  res.run = plant.finish(domains == 1 ? "PERQ"
                                      : "PERQ-HIER" + std::to_string(domains));
  res.final_grants_w = arbiter.grants_w();
  res.aggregated_counters = arbiter.aggregated_counters();
  res.arbiter_decisions = arbiter.decisions();
  return res;
}

}  // namespace perq::hier
