// Experiment drivers for the hierarchical (K domains + arbiter) stack.
//
// run_hier_experiment is the in-process variant: run_experiment's exact
// loop, plus per-tick registration of the domain grants with the engine so
// apply_caps checks each domain against its own allocation (not only the
// cluster row). With K = 1 it is bit-identical to core::run_experiment.
//
// run_hier_loopback_daemon_experiment is the service variant: one
// ArbiterDaemon plus K PerqControllers (each attached to the arbiter over
// a loopback connection) plus a DaemonPlant whose agents dial their
// domain's controller. Everything is single-threaded and pumped
// deterministically; with K = 1 the run is bit-identical to the
// monolithic in-process experiment (same claim PR 2 proved for the
// single-controller daemon).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "daemon/controller.hpp"
#include "daemon/experiment.hpp"
#include "hier/arbiter_daemon.hpp"
#include "hier/hier_policy.hpp"

namespace perq::hier {

/// In-process K-domain run. Exactly core::run_experiment plus
/// SimulationEngine::set_domain_grants each tick, so the engine asserts
/// grant conservation and per-domain budget compliance on every interval.
core::RunResult run_hier_experiment(const core::EngineConfig& cfg,
                                    HierarchicalPerqPolicy& policy);

struct HierDaemonResult {
  core::RunResult run;
  /// Grants after the final arbiter decision, indexed by domain.
  std::vector<double> final_grants_w;
  /// Robustness counters aggregated across every domain controller by the
  /// arbiter (the cross-process accounting satellite).
  core::RobustnessCounters aggregated_counters;
  std::uint64_t arbiter_decisions = 0;
};

/// Runs the full K+1-daemon deployment over loopback transports: K domain
/// controllers (job id mod K), one arbiter, `agents_per_domain` node
/// agents per domain controller. `policies` must hold exactly K
/// PerqPolicy instances (one per domain controller), built against the
/// same node model.
HierDaemonResult run_hier_loopback_daemon_experiment(
    const core::EngineConfig& cfg, std::size_t domains,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies,
    daemon::ControllerConfig ccfg = {}, ArbiterDaemonConfig acfg = {},
    std::size_t agents_per_domain = 1);

}  // namespace perq::hier
