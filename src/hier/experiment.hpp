// Experiment drivers for the hierarchical (K domains + arbiter) stack.
//
// run_hier_experiment is the in-process variant: run_experiment's exact
// loop, plus per-tick registration of the domain grants with the engine so
// apply_caps checks each domain against its own allocation (not only the
// cluster row). With K = 1 it is bit-identical to core::run_experiment.
//
// run_hier_loopback_daemon_experiment is the service variant: one
// ArbiterDaemon plus K PerqControllers (each attached to the arbiter over
// a loopback connection) plus a DaemonPlant whose agents dial their
// domain's controller. Everything is single-threaded and pumped
// deterministically; with K = 1 the run is bit-identical to the
// monolithic in-process experiment (same claim PR 2 proved for the
// single-controller daemon).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "daemon/controller.hpp"
#include "daemon/experiment.hpp"
#include "hier/arbiter_daemon.hpp"
#include "hier/hier_policy.hpp"

namespace perq::hier {

/// In-process K-domain run. Exactly core::run_experiment plus
/// SimulationEngine::set_domain_grants each tick, so the engine asserts
/// grant conservation and per-domain budget compliance on every interval.
core::RunResult run_hier_experiment(const core::EngineConfig& cfg,
                                    HierarchicalPerqPolicy& policy);

struct HierDaemonResult {
  core::RunResult run;
  /// Grants after the final arbiter decision, indexed by domain.
  std::vector<double> final_grants_w;
  /// Robustness counters aggregated across every domain controller by the
  /// arbiter (the cross-process accounting satellite).
  core::RobustnessCounters aggregated_counters;
  std::uint64_t arbiter_decisions = 0;
};

/// Runs the full K+1-daemon deployment over loopback transports: K domain
/// controllers (job id mod K), one arbiter, `agents_per_domain` node
/// agents per domain controller. `policies` must hold exactly K
/// PerqPolicy instances (one per domain controller), built against the
/// same node model.
HierDaemonResult run_hier_loopback_daemon_experiment(
    const core::EngineConfig& cfg, std::size_t domains,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies,
    daemon::ControllerConfig ccfg = {}, ArbiterDaemonConfig acfg = {},
    std::size_t agents_per_domain = 1);

struct TreeDaemonResult {
  core::RunResult run;
  /// Root grants after the final decision, indexed by mid arbiter (for the
  /// flat delegation, indexed by domain).
  std::vector<double> root_grants_w;
  /// Mid-level grants after each mid's final decision: mid_grants_w[m][c]
  /// is mid m's grant to its c-th child controller. Empty when mids == 0.
  std::vector<std::vector<double>> mid_grants_w;
  /// The root's cluster-wide accounting view (every level flattened in).
  core::RobustnessCounters aggregated_counters;
  std::uint64_t root_decisions = 0;
  std::vector<std::uint64_t> mid_decisions;
  /// Worst per-level overdraw observed across the whole run:
  /// max over every decision round of sum(grants) + reserved - scope,
  /// where scope is the deciding arbiter's parent grant (static share
  /// before the first one; the cluster budget at the root). Conservation
  /// holds iff this stays within FP tolerance of zero.
  double max_level_overdraw_w = 0.0;
};

/// Runs a depth-2 arbiter tree over loopback transports: one root
/// ArbiterDaemon over `mids` stacked mid-level ArbiterDaemons, each mid
/// parenting the domain controllers d with d % mids == m (local child id
/// d / mids). Tree node ids: root 0, mid m is 1+m, leaf d is 1+mids+d;
/// every attachment carries its root->self path so re-parent fencing is
/// exercised exactly as in production. `mids == 0` delegates to the flat
/// run_hier_loopback_daemon_experiment (depth-1), which is the bit-identity
/// baseline the tree must reproduce when it degenerates.
///
/// `leaf_tenants`, when non-empty, must hold one DomainAttachment per
/// domain; the driver takes sla_floor_w / priority_weight from it and
/// fills share and paths itself.
TreeDaemonResult run_tree_loopback_daemon_experiment(
    const core::EngineConfig& cfg, std::size_t domains, std::size_t mids,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies,
    daemon::ControllerConfig ccfg = {}, ArbiterDaemonConfig acfg = {},
    std::size_t agents_per_domain = 1,
    const std::vector<daemon::DomainAttachment>& leaf_tenants = {});

}  // namespace perq::hier
