// ArbiterDaemon: the BudgetArbiter as a long-running service.
//
// K domain controllers dial the arbiter, send one DomainReport per control
// interval, and receive one BudgetGrant back. The daemon is the thin
// session layer around hier::BudgetArbiter, the same split perqd uses for
// core::PerqPolicy: all allocation math lives in arbiter.cpp, and this
// class does bookkeeping -- which session speaks for which domain, which
// report is newest, when a decision tick is complete.
//
// Decision gating is tick-based and deterministic (no wall-clock grace):
// the arbiter allocates for tick T = the newest reported tick once every
// domain that has ever reported either reported T itself or has fallen
// `stale_after_ticks` behind it. A lagging-but-not-yet-stale domain
// therefore delays the grant round; the domain controllers ride that out
// on their held grants (their own decide_grace), which the arbiter keeps
// fenced -- both sides of the split hold the same number, so conservation
// survives the lag. A domain that never reported at all (cold-start
// partition) has the static budget/K split reserved for it, mirroring
// PerqController::budget_scope_w()'s pre-first-grant fallback.
//
// The arbiter also aggregates the robustness counters that ride along in
// every DomainReport: aggregated_counters() is the cluster-wide accounting
// view (sum over the newest report of every domain, plus the arbiter's own
// frame screening), so sharding the controller does not shard the books.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/robustness.hpp"
#include "hier/arbiter.hpp"
#include "net/frame_pool.hpp"
#include "net/reactor.hpp"
#include "net/sharded_reactor.hpp"
#include "net/transport.hpp"

namespace perq {
class ThreadPool;
}  // namespace perq

namespace perq::hier {

struct ArbiterDaemonConfig {
  /// Ticks a domain controller may lag the newest report before the
  /// arbiter stops waiting for it (its grant is then fenced).
  std::uint64_t stale_after_ticks = 3;
  /// Readiness backend for wait() (see ControllerConfig::reactor_backend).
  net::Reactor::Backend reactor_backend = net::Reactor::default_backend();
  /// Reactor shards for the session drain (sessions are assigned round
  /// robin at accept). 1 keeps the original serial pump; the grant math
  /// in try_decide() is serial regardless, so any S is bit-identical.
  std::size_t shards = 1;
  /// Worker pool for the per-shard drain (nullptr: process-wide shared
  /// pool). Only consulted when shards > 1.
  ThreadPool* pool = nullptr;
};

class ArbiterDaemon {
 public:
  ArbiterDaemon(std::unique_ptr<net::Listener> listener, std::size_t domains,
                ArbiterDaemonConfig cfg = {});

  /// Drains the network: accepts domain controllers, ingests every pending
  /// report, reaps dead connections.
  void pump();

  /// pump() + one allocation round when the newest tick is complete (see
  /// header note). Returns true when grants were issued this call.
  bool service();

  std::size_t domains() const { return arbiter_.domains(); }
  std::size_t session_count() const { return sessions_.size(); }

  /// Grants as of the last allocation, indexed by domain id (fenced
  /// domains keep their frozen grant; never-granted domains read zero).
  const std::vector<double>& grants_w() const { return arbiter_.grants_w(); }
  double fenced_w() const { return arbiter_.fenced_w(); }
  bool fenced(std::uint32_t domain) const { return arbiter_.fenced(domain); }
  std::uint64_t decisions() const { return arbiter_.decisions(); }

  /// Watts reserved for domains that never reported (static budget/K
  /// split, matching their controllers' cold-start fallback).
  double reserved_w() const { return reserved_w_; }

  /// Tick of the last allocation round (valid once decisions() > 0).
  std::uint64_t decided_tick() const { return decided_tick_; }

  /// Cluster busy budget the last allocation round carved up.
  double cluster_budget_w() const { return cluster_budget_w_; }

  /// Newest demand the arbiter holds for `domain` (zero-initialized until
  /// the domain's first report).
  DomainDemand demand(std::uint32_t domain) const;

  /// Cluster-wide robustness accounting: the sum of every domain's newest
  /// reported counters plus the arbiter's own frame screening (counted as
  /// frames_corrupt).
  core::RobustnessCounters aggregated_counters() const;

  /// Pollable descriptors (listener + sessions) for net::wait_readable.
  std::vector<int> fds() const;

  /// Blocks until a registered descriptor is readable, at most timeout_ms.
  /// Returns the ready count (0 on timeout); pacing sleep when nothing is
  /// registered (loopback).
  int wait(int timeout_ms) { return reactor_.wait(timeout_ms); }

 private:
  struct Session {
    std::unique_ptr<net::Connection> conn;
    bool bound = false;
    std::uint32_t domain_id = 0;
    int reg_fd = -1;          ///< fd registered with the reactor
    std::size_t shard = 0;    ///< reactor shard this session lives on
    /// Per-pump inbox, reused across ticks (capacity kept).
    std::vector<proto::Message> inbox;
  };

  /// Per-domain view assembled from the wire.
  struct DomainSlot {
    bool any_report = false;
    proto::DomainReport latest;       ///< newest report (by tick)
    std::size_t session = SIZE_MAX;   ///< session that sent it
    bool ever_sent_grant = false;
    /// Newest controller epoch seen for this domain. Reports from a lower
    /// epoch come from a deposed domain controller (its standby has taken
    /// over) and are fenced: counted, never applied.
    std::uint64_t max_epoch = 0;
  };

  void ingest(std::size_t session_index, const proto::Message& m);
  bool try_decide();
  /// Fills every open session's inbox: serial for shards == 1, otherwise
  /// one drain task per non-empty shard on the worker pool. Ingestion
  /// stays serial in session-index order either way, so the decision
  /// state never depends on drain scheduling.
  void drain_sessions();
  ThreadPool& pool();

  std::unique_ptr<net::Listener> listener_;
  ArbiterDaemonConfig cfg_;
  net::ShardedReactor reactor_;
  net::FramePool frame_pool_;  ///< serialize-once grant buffers
  BudgetArbiter arbiter_;
  std::vector<Session> sessions_;
  std::vector<DomainSlot> slots_;
  std::size_t next_shard_ = 0;  ///< round-robin accept assignment
  /// Per-shard session-index scratch for the parallel drain.
  std::vector<std::vector<std::size_t>> shard_order_;
  core::RobustnessCounters counters_;  ///< arbiter-side screening only
  bool any_decision_ = false;
  std::uint64_t decided_tick_ = 0;
  double cluster_budget_w_ = 0.0;
  double reserved_w_ = 0.0;
};

}  // namespace perq::hier
