// ArbiterDaemon: the BudgetArbiter as a long-running service.
//
// K domain controllers dial the arbiter, send one DomainReport per control
// interval, and receive one BudgetGrant back. The daemon is the thin
// session layer around hier::BudgetArbiter, the same split perqd uses for
// core::PerqPolicy: all allocation math lives in arbiter.cpp, and this
// class does bookkeeping -- which session speaks for which domain, which
// report is newest, when a decision tick is complete.
//
// Decision gating is tick-based and deterministic (no wall-clock grace):
// the arbiter allocates for tick T = the newest reported tick once every
// domain that has ever reported either reported T itself or has fallen
// `stale_after_ticks` behind it. A lagging-but-not-yet-stale domain
// therefore delays the grant round; the domain controllers ride that out
// on their held grants (their own decide_grace), which the arbiter keeps
// fenced -- both sides of the split hold the same number, so conservation
// survives the lag. A domain that never reported at all (cold-start
// partition) has the static budget/K split reserved for it, mirroring
// PerqController::budget_scope_w()'s pre-first-grant fallback.
//
// The arbiter also aggregates the robustness counters that ride along in
// every DomainReport: aggregated_counters() is the cluster-wide accounting
// view (sum over the newest report of every domain, plus the arbiter's own
// frame screening), so sharding the controller does not shard the books.
//
// Stacking (attach_parent): an arbiter can itself be a *child* of a higher
// arbiter, which is how a physical deployment realizes an N-level
// PowerTree. A stacked arbiter reports the aggregate of its children's
// demands upward after every decision (same aggregation as
// hier::PowerTree: summed floors/capacities, busy-weighted mean utility)
// and divides its *parent grant* -- not the heartbeat cluster budget --
// among its children on the next round; before the first parent grant it
// assumes its configured static share of the cluster budget, mirroring
// PerqController::budget_scope_w(). A child that announces kDomainLeaving
// (re-parented elsewhere) is released outright: its grant returns to the
// pool instead of being fenced, so the moved subtree never draws from old
// and new parents at once.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/robustness.hpp"
#include "daemon/controller.hpp"
#include "hier/arbiter.hpp"
#include "net/frame_pool.hpp"
#include "net/reactor.hpp"
#include "net/sharded_reactor.hpp"
#include "net/transport.hpp"

namespace perq {
class ThreadPool;
}  // namespace perq

namespace perq::hier {

struct ArbiterDaemonConfig {
  /// Ticks a domain controller may lag the newest report before the
  /// arbiter stops waiting for it (its grant is then fenced).
  std::uint64_t stale_after_ticks = 3;
  /// Readiness backend for wait() (see ControllerConfig::reactor_backend).
  net::Reactor::Backend reactor_backend = net::Reactor::default_backend();
  /// Reactor shards for the session drain (sessions are assigned round
  /// robin at accept). 1 keeps the original serial pump; the grant math
  /// in try_decide() is serial regardless, so any S is bit-identical.
  std::size_t shards = 1;
  /// Worker pool for the per-shard drain (nullptr: process-wide shared
  /// pool). Only consulted when shards > 1.
  ThreadPool* pool = nullptr;
};

class ArbiterDaemon {
 public:
  ArbiterDaemon(std::unique_ptr<net::Listener> listener, std::size_t domains,
                ArbiterDaemonConfig cfg = {});

  /// Stacks this arbiter under a higher one: it now behaves as domain
  /// `domain_id` of `domain_count` toward its parent -- reporting its
  /// children's aggregate demand upward and dividing the parent's grant
  /// (static share of the cluster budget before the first grant) among
  /// them. `att.tree_path` names this arbiter's root -> self path, which
  /// rides in every child grant so children can fence grants from a
  /// stale parent after re-parenting. Call before the first service().
  void attach_parent(std::unique_ptr<net::Connection> conn,
                     std::uint32_t domain_id, std::uint32_t domain_count,
                     daemon::DomainAttachment att = {});

  bool parent_attached() const { return parent_conn_ != nullptr; }
  bool any_parent_grant() const { return any_parent_grant_; }
  double parent_grant_w() const { return parent_grant_w_; }

  /// Drains the network: accepts domain controllers, ingests every pending
  /// report, reaps dead connections.
  void pump();

  /// pump() + one allocation round when the newest tick is complete (see
  /// header note). Returns true when grants were issued this call.
  bool service();

  std::size_t domains() const { return arbiter_.domains(); }
  std::size_t session_count() const { return sessions_.size(); }

  /// Grants as of the last allocation, indexed by domain id (fenced
  /// domains keep their frozen grant; never-granted domains read zero).
  const std::vector<double>& grants_w() const { return arbiter_.grants_w(); }
  double fenced_w() const { return arbiter_.fenced_w(); }
  bool fenced(std::uint32_t domain) const { return arbiter_.fenced(domain); }
  std::uint64_t decisions() const { return arbiter_.decisions(); }

  /// Watts reserved for domains that never reported (static budget/K
  /// split, matching their controllers' cold-start fallback).
  double reserved_w() const { return reserved_w_; }

  /// Tick of the last allocation round (valid once decisions() > 0).
  std::uint64_t decided_tick() const { return decided_tick_; }

  /// Cluster busy budget the last allocation round carved up.
  double cluster_budget_w() const { return cluster_budget_w_; }

  /// The scope this arbiter actually divides among its children: the
  /// cluster budget at the root, the newest parent grant (or the static
  /// share / equal split before it arrives) for a stacked arbiter.
  double scope_w() const { return budget_in_use(cluster_budget_w_); }

  /// Newest demand the arbiter holds for `domain` (zero-initialized until
  /// the domain's first report).
  DomainDemand demand(std::uint32_t domain) const;

  /// Cluster-wide robustness accounting: the sum of every domain's newest
  /// reported counters plus the arbiter's own frame screening (counted as
  /// frames_corrupt).
  core::RobustnessCounters aggregated_counters() const;

  /// Pollable descriptors (listener + sessions) for net::wait_readable.
  std::vector<int> fds() const;

  /// Blocks until a registered descriptor is readable, at most timeout_ms.
  /// Returns the ready count (0 on timeout); pacing sleep when nothing is
  /// registered (loopback).
  int wait(int timeout_ms) { return reactor_.wait(timeout_ms); }

 private:
  struct Session {
    std::unique_ptr<net::Connection> conn;
    bool bound = false;
    std::uint32_t domain_id = 0;
    int reg_fd = -1;          ///< fd registered with the reactor
    std::size_t shard = 0;    ///< reactor shard this session lives on
    /// Per-pump inbox, reused across ticks (capacity kept).
    std::vector<proto::Message> inbox;
  };

  /// Per-domain view assembled from the wire.
  struct DomainSlot {
    bool any_report = false;
    proto::DomainReport latest;       ///< newest report (by tick)
    std::size_t session = SIZE_MAX;   ///< session that sent it
    bool ever_sent_grant = false;
    /// Newest controller epoch seen for this domain. Reports from a lower
    /// epoch come from a deposed domain controller (its standby has taken
    /// over) and are fenced: counted, never applied.
    std::uint64_t max_epoch = 0;
  };

  void ingest(std::size_t session_index, const proto::Message& m);
  bool try_decide();
  /// Drains parent grants (stacked mode): newest-wins, path-fenced.
  void pump_parent();
  /// Reports the children's aggregate demand upward for tick `t`.
  void send_parent_report(std::uint64_t t, const std::vector<DomainDemand>& live,
                          double cluster_budget_w);
  /// Budget this arbiter divides this round, given the cluster figure the
  /// children reported: parent grant when stacked and granted, static
  /// share before that, the full cluster budget at the root.
  double budget_in_use(double cluster_budget_w) const;
  /// Fills every open session's inbox: serial for shards == 1, otherwise
  /// one drain task per non-empty shard on the worker pool. Ingestion
  /// stays serial in session-index order either way, so the decision
  /// state never depends on drain scheduling.
  void drain_sessions();
  ThreadPool& pool();

  std::unique_ptr<net::Listener> listener_;
  ArbiterDaemonConfig cfg_;
  net::ShardedReactor reactor_;
  net::FramePool frame_pool_;  ///< serialize-once grant buffers
  BudgetArbiter arbiter_;
  std::vector<Session> sessions_;
  std::vector<DomainSlot> slots_;
  std::size_t next_shard_ = 0;  ///< round-robin accept assignment
  /// Per-shard session-index scratch for the parallel drain.
  std::vector<std::vector<std::size_t>> shard_order_;
  core::RobustnessCounters counters_;  ///< arbiter-side screening only
  bool any_decision_ = false;
  std::uint64_t decided_tick_ = 0;
  double cluster_budget_w_ = 0.0;
  double reserved_w_ = 0.0;

  // Stacked-mode state (all inert while parent_conn_ is null).
  std::unique_ptr<net::Connection> parent_conn_;
  int parent_reg_fd_ = -1;
  std::vector<proto::Message> parent_inbox_;  ///< reused drain scratch
  std::uint32_t parent_domain_id_ = 0;
  std::uint32_t parent_domain_count_ = 1;
  daemon::DomainAttachment attachment_;
  bool any_parent_grant_ = false;
  double parent_grant_w_ = 0.0;
  std::uint64_t parent_grant_tick_ = 0;
};

}  // namespace perq::hier
