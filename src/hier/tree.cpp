#include "hier/tree.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace perq::hier {

namespace {

/// Sentinel in leaf_of_node_ for interior nodes.
constexpr std::uint32_t kNotALeaf = TreeSpec::kNoParent;

}  // namespace

TreeSpec TreeSpec::flat(std::size_t leaves) {
  PERQ_REQUIRE(leaves >= 1, "flat tree needs at least one leaf");
  TreeSpec spec;
  spec.nodes.resize(1 + leaves);
  for (std::size_t d = 0; d < leaves; ++d) {
    spec.nodes[1 + d].parent = 0;
  }
  return spec;
}

TreeSpec TreeSpec::uniform(std::size_t depth, std::size_t fanout) {
  PERQ_REQUIRE(fanout >= 1, "uniform tree needs fanout >= 1");
  TreeSpec spec;
  spec.nodes.resize(1);  // root
  // Breadth-first construction: level l's nodes are appended after level
  // l-1's, each fanning out `fanout` children, so ids grow level by level
  // and leaf slots line up with the bottom level left to right.
  std::vector<std::uint32_t> frontier{0};
  for (std::size_t level = 0; level < depth; ++level) {
    std::vector<std::uint32_t> next;
    next.reserve(frontier.size() * fanout);
    for (std::uint32_t parent : frontier) {
      for (std::size_t c = 0; c < fanout; ++c) {
        Node n;
        n.parent = parent;
        next.push_back(static_cast<std::uint32_t>(spec.nodes.size()));
        spec.nodes.push_back(n);
      }
    }
    frontier = std::move(next);
  }
  return spec;
}

PowerTree::PowerTree(TreeSpec spec) : spec_(std::move(spec)) {
  PERQ_REQUIRE(!spec_.nodes.empty(), "power tree needs at least a root");
  PERQ_REQUIRE(spec_.nodes[0].parent == TreeSpec::kNoParent,
               "node 0 must be the root");
  for (std::size_t i = 1; i < spec_.nodes.size(); ++i) {
    PERQ_REQUIRE(spec_.nodes[i].parent < spec_.nodes.size() &&
                     spec_.nodes[i].parent != i,
                 "tree node has an invalid parent");
  }
  rebuild_edges();

  // Leaves are fixed at construction: the childless nodes, slotted in
  // ascending node-id order so slot d of flat(K) is node 1+d.
  leaf_of_node_.assign(spec_.nodes.size(), kNotALeaf);
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
    if (children_[i].empty()) {
      leaf_of_node_[i] = static_cast<std::uint32_t>(node_of_leaf_.size());
      node_of_leaf_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  leaf_grants_w_.assign(leaves(), 0.0);
  node_grants_w_.assign(nodes(), 0.0);
}

void PowerTree::rebuild_edges() {
  const std::size_t n = spec_.nodes.size();
  children_.assign(n, {});
  for (std::size_t i = 1; i < n; ++i) {
    children_[spec_.nodes[i].parent].push_back(static_cast<std::uint32_t>(i));
  }
  // Iterating ids ascending above already leaves each child list sorted;
  // canonical child order is what keeps the recursion deterministic.

  // Topological order by BFS from the root; visiting all n nodes doubles
  // as the acyclicity/connectivity check.
  topo_.clear();
  topo_.reserve(n);
  topo_.push_back(0);
  for (std::size_t head = 0; head < topo_.size(); ++head) {
    for (std::uint32_t c : children_[topo_[head]]) topo_.push_back(c);
  }
  PERQ_REQUIRE(topo_.size() == n, "tree has a cycle or unreachable nodes");
}

std::size_t PowerTree::depth() const {
  std::vector<std::size_t> d(nodes(), 0);
  std::size_t max_d = 0;
  for (std::size_t k = 1; k < topo_.size(); ++k) {
    const std::uint32_t i = topo_[k];
    d[i] = d[spec_.nodes[i].parent] + 1;
    max_d = std::max(max_d, d[i]);
  }
  return max_d;
}

std::uint32_t PowerTree::leaf_node(std::size_t leaf) const {
  PERQ_REQUIRE(leaf < node_of_leaf_.size(), "leaf slot out of range");
  return node_of_leaf_[leaf];
}

std::vector<std::uint32_t> PowerTree::path_to(std::uint32_t node) const {
  PERQ_REQUIRE(node < nodes(), "path for unknown node");
  std::vector<std::uint32_t> path;
  for (std::uint32_t i = node; i != TreeSpec::kNoParent; i = spec_.nodes[i].parent) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

const TenantSpec& PowerTree::tenant(std::uint32_t node) const {
  PERQ_REQUIRE(node < nodes(), "tenant of unknown node");
  return spec_.nodes[node].tenant;
}

bool PowerTree::in_subtree(std::uint32_t node, std::uint32_t candidate) const {
  for (std::uint32_t i = candidate; i != TreeSpec::kNoParent;
       i = spec_.nodes[i].parent) {
    if (i == node) return true;
  }
  return false;
}

void PowerTree::reparent(std::uint32_t node, std::uint32_t new_parent) {
  PERQ_REQUIRE(node != 0 && node < nodes(), "cannot re-parent the root");
  PERQ_REQUIRE(new_parent < nodes(), "re-parent to unknown node");
  PERQ_REQUIRE(leaf_of_node_[new_parent] == kNotALeaf,
               "re-parent target must be an interior node");
  PERQ_REQUIRE(!in_subtree(node, new_parent),
               "re-parent would create a cycle");
  spec_.nodes[node].parent = new_parent;
  rebuild_edges();
  ++reparent_events_;
}

const std::vector<double>& PowerTree::allocate(
    double budget_w, const std::vector<DomainDemand>& leaf_demands) {
  const std::size_t n = nodes();
  std::vector<std::uint8_t> present(n, 0);
  std::vector<DomainDemand> eff(n);

  // Seed the leaves. A leaf's effective demand folds its tenant terms in:
  // the SLA floor is the max of wire-reported and tree-configured (both
  // default 0), the priority the product (both default 1.0 -- exact).
  for (const DomainDemand& d : leaf_demands) {
    PERQ_REQUIRE(d.domain_id < leaves(), "demand for unknown leaf slot");
    const std::uint32_t node = node_of_leaf_[d.domain_id];
    PERQ_REQUIRE(!present[node], "duplicate demand for a leaf slot");
    present[node] = 1;
    eff[node] = d;
    const TenantSpec& t = spec_.nodes[node].tenant;
    eff[node].sla_floor_w = std::max(d.sla_floor_w, t.sla_floor_w);
    eff[node].priority_weight = d.priority_weight * t.priority_weight;
  }

  // Bottom-up aggregation (reverse topo: children before parents). The
  // aggregate utility is the busy-node-weighted mean of the children's
  // duals so the parent's stage-1 weight (busy * utility) equals the sum
  // of the children's -- a subtree pulls exactly as hard as its parts.
  for (std::size_t k = topo_.size(); k-- > 0;) {
    const std::uint32_t i = topo_[k];
    if (children_[i].empty()) continue;
    DomainDemand agg;
    double util_mass = 0.0;
    for (std::uint32_t c : children_[i]) {
      if (!present[c]) continue;
      present[i] = 1;
      agg.jobs += eff[c].jobs;
      agg.busy_nodes += eff[c].busy_nodes;
      agg.floor_w += std::max(eff[c].floor_w, eff[c].sla_floor_w);
      agg.capacity_w += eff[c].capacity_w;
      agg.committed_w += eff[c].committed_w;
      agg.achieved_ips += eff[c].achieved_ips;
      agg.target_ips += eff[c].target_ips;
      util_mass += eff[c].busy_nodes * eff[c].utility_per_w;
    }
    if (!present[i]) continue;
    agg.utility_per_w = agg.busy_nodes > 0.0 ? util_mass / agg.busy_nodes : 0.0;
    const TenantSpec& t = spec_.nodes[i].tenant;
    agg.sla_floor_w = t.sla_floor_w;
    agg.priority_weight = t.priority_weight;
    eff[i] = agg;
  }

  // Top-down water-filling. The root is granted the budget bit-exactly
  // (water_fill's own clamp makes the max() a no-op for sane budgets), so
  // a flat tree reduces to exactly one water_fill over the leaf demands.
  std::fill(node_grants_w_.begin(), node_grants_w_.end(), 0.0);
  std::fill(leaf_grants_w_.begin(), leaf_grants_w_.end(), 0.0);
  if (present[0]) node_grants_w_[0] = std::max(budget_w, 0.0);
  for (std::uint32_t i : topo_) {
    if (!present[i] || children_[i].empty()) continue;
    std::vector<DomainDemand> child_demands;
    std::vector<std::uint32_t> child_ids;
    child_demands.reserve(children_[i].size());
    for (std::uint32_t c : children_[i]) {
      if (!present[c]) continue;
      child_demands.push_back(eff[c]);
      child_demands.back().domain_id =
          static_cast<std::uint32_t>(child_ids.size());
      child_ids.push_back(c);
    }
    WaterFillStats stats;
    const std::vector<double> grants =
        water_fill(node_grants_w_[i], child_demands, &stats);
    sla_floor_activations_ += stats.sla_floor_activations;
    for (std::size_t k = 0; k < child_ids.size(); ++k) {
      node_grants_w_[child_ids[k]] = grants[k];
    }
  }
  for (std::size_t leaf = 0; leaf < node_of_leaf_.size(); ++leaf) {
    leaf_grants_w_[leaf] = node_grants_w_[node_of_leaf_[leaf]];
  }
  ++decisions_;
  return leaf_grants_w_;
}

}  // namespace perq::hier
