#include "hier/arbiter_daemon.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace perq::hier {

namespace {
/// Same corrupted-integer screen the controller applies to heartbeats: a
/// report claiming a tick this far past everything seen is a bit flip.
constexpr std::uint64_t kMaxTickJump = 1024;
}  // namespace

ArbiterDaemon::ArbiterDaemon(std::unique_ptr<net::Listener> listener,
                             std::size_t domains, ArbiterDaemonConfig cfg)
    : listener_(std::move(listener)),
      cfg_(cfg),
      reactor_(std::max<std::size_t>(1, cfg.shards), cfg.reactor_backend),
      arbiter_(domains),
      slots_(domains) {
  PERQ_REQUIRE(listener_ != nullptr, "arbiter daemon needs a listener");
  PERQ_REQUIRE(cfg_.stale_after_ticks >= 1, "stale_after_ticks must be >= 1");
  cfg_.shards = std::max<std::size_t>(1, cfg_.shards);
  shard_order_.resize(cfg_.shards);
  reactor_.add(listener_->fd(), 0);
}

ThreadPool& ArbiterDaemon::pool() {
  return cfg_.pool != nullptr ? *cfg_.pool : ThreadPool::shared();
}

void ArbiterDaemon::attach_parent(std::unique_ptr<net::Connection> conn,
                                  std::uint32_t domain_id,
                                  std::uint32_t domain_count,
                                  daemon::DomainAttachment att) {
  PERQ_REQUIRE(conn != nullptr, "parent attachment needs a connection");
  PERQ_REQUIRE(domain_count >= 1 && domain_id < domain_count,
               "parent domain id out of range");
  parent_conn_ = std::move(conn);
  parent_domain_id_ = domain_id;
  parent_domain_count_ = domain_count;
  attachment_ = std::move(att);
  parent_reg_fd_ = parent_conn_->fd();
  reactor_.add(parent_reg_fd_, 0);
}

double ArbiterDaemon::budget_in_use(double cluster_budget_w) const {
  if (parent_conn_ == nullptr) return cluster_budget_w;  // root arbiter
  // Held parent grant while the parent is silent: the parent fences the
  // same value (this arbiter looks like any other silent domain to it).
  if (any_parent_grant_) return parent_grant_w_;
  // Before the first parent grant: the static share, same cold-start
  // contract as PerqController::budget_scope_w(). Shares compose down the
  // tree, so the leaves' equal-split assumptions and every intermediate
  // arbiter's sum to (at most) the cluster budget.
  if (attachment_.static_share > 0.0) {
    return cluster_budget_w * attachment_.static_share;
  }
  return cluster_budget_w / static_cast<double>(parent_domain_count_);
}

void ArbiterDaemon::pump_parent() {
  if (parent_conn_ == nullptr || !parent_conn_->open()) return;
  parent_inbox_.clear();
  parent_conn_->receive_into(parent_inbox_);
  for (const proto::Message& m : parent_inbox_) {
    const auto* g = std::get_if<proto::BudgetGrant>(&m);
    if (g == nullptr) {
      ++counters_.frames_corrupt;  // only grants flow down this link
      continue;
    }
    // Parent fence, mirroring PerqController::accept_grant: a grant whose
    // sender path is not the parent this arbiter sits under now was issued
    // by a stale parent (pre-re-parent frames still in flight).
    if (g->tree_path != attachment_.parent_path) {
      ++counters_.grants_fenced;
      continue;
    }
    const bool insane = !std::isfinite(g->grant_w) || g->grant_w < 0.0 ||
                        !std::isfinite(g->cluster_budget_w) ||
                        g->grant_w > g->cluster_budget_w * (1.0 + 1e-9) + 1e-6 ||
                        g->domain_id != parent_domain_id_;
    if (insane) {
      ++counters_.frames_corrupt;
      continue;
    }
    if (!any_parent_grant_ || g->tick >= parent_grant_tick_) {
      any_parent_grant_ = true;
      parent_grant_w_ = g->grant_w;
      parent_grant_tick_ = g->tick;
    }
  }
  if (!parent_conn_->open()) {
    if (parent_conn_->corrupt()) ++counters_.frames_corrupt;
    reactor_.remove(parent_reg_fd_, 0);
    parent_reg_fd_ = -1;
  }
}

void ArbiterDaemon::send_parent_report(std::uint64_t t,
                                       const std::vector<DomainDemand>& live,
                                       double cluster_budget_w) {
  if (parent_conn_ == nullptr || !parent_conn_->open()) return;
  proto::DomainReport r;
  r.domain_id = parent_domain_id_;
  r.domain_count = parent_domain_count_;
  r.tick = t;
  r.cluster_budget_w = cluster_budget_w;
  // Same aggregation as PowerTree: summed extensive quantities, busy-node
  // weighted mean utility (so the parent's stage-1 weight for this subtree
  // equals the sum of the children's).
  double util_mass = 0.0;
  for (const DomainDemand& d : live) {
    r.jobs += static_cast<std::uint32_t>(d.jobs);
    r.busy_nodes += d.busy_nodes;
    r.floor_w += std::max(d.floor_w, d.sla_floor_w);
    r.capacity_w += d.capacity_w;
    r.committed_w += d.committed_w;
    r.achieved_ips += d.achieved_ips;
    r.target_ips += d.target_ips;
    util_mass += d.busy_nodes * d.utility_per_w;
  }
  r.utility_per_w = r.busy_nodes > 0.0 ? util_mass / r.busy_nodes : 0.0;
  // Fenced watts are part of this subtree's floor: silent children keep
  // actuating their held grants, so the parent must keep funding them.
  r.floor_w += arbiter_.fenced_w();
  r.capacity_w = std::max(r.capacity_w, r.floor_w);
  const core::RobustnessCounters c = aggregated_counters();
  r.frames_dropped = c.frames_dropped;
  r.frames_corrupt = c.frames_corrupt;
  r.reconnect_attempts = c.reconnect_attempts;
  r.stale_transitions = c.stale_transitions;
  r.solver_fallbacks = c.solver_fallbacks;
  r.clamp_activations = c.clamp_activations;
  r.failsafe_activations = c.failsafe_activations;
  r.stale_epoch_frames = c.stale_epoch_frames;
  r.grants_fenced = c.grants_fenced;
  r.reparent_events = c.reparent_events;
  r.sla_floor_activations = c.sla_floor_activations;
  r.controller_epoch = 1;  // arbiters have no failover epochs (yet)
  r.tree_path = attachment_.tree_path;
  r.sla_floor_w = attachment_.sla_floor_w;
  r.priority_weight = attachment_.priority_weight;
  r.share_weight = attachment_.static_share;
  parent_conn_->send(r);
}

void ArbiterDaemon::drain_sessions() {
  if (cfg_.shards == 1) {
    for (Session& session : sessions_) {
      session.inbox.clear();
      if (session.conn->open()) session.conn->receive_into(session.inbox);
    }
    return;
  }
  for (auto& order : shard_order_) order.clear();
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    sessions_[i].inbox.clear();
    if (sessions_[i].conn->open()) shard_order_[sessions_[i].shard].push_back(i);
  }
  std::vector<std::future<void>> joins;
  for (const auto& order : shard_order_) {
    if (order.empty()) continue;
    joins.push_back(pool().submit([this, &order] {
      for (std::size_t i : order) {
        Session& session = sessions_[i];
        session.conn->receive_into(session.inbox);
      }
    }));
  }
  for (auto& j : joins) j.get();
}

void ArbiterDaemon::pump() {
  for (auto& conn : listener_->accept_new()) {
    Session s;
    s.conn = std::move(conn);
    s.reg_fd = s.conn->fd();
    s.shard = next_shard_;
    next_shard_ = (next_shard_ + 1) % cfg_.shards;
    reactor_.add(s.reg_fd, s.shard);
    sessions_.push_back(std::move(s));
  }
  // Drain (possibly in parallel across shards), then ingest serially in
  // session-index order: the newest-report-wins slot update is the same
  // whichever shard's bytes landed first.
  drain_sessions();
  // Messages drained from a connection that closed mid-receive still count
  // (the old serial pump ingested them too); sessions closed before the
  // drain have empty inboxes.
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    for (const proto::Message& m : sessions_[i].inbox) {
      ingest(i, m);
    }
  }
  for (const Session& s : sessions_) {
    if (!s.conn->open() && s.conn->corrupt()) ++counters_.frames_corrupt;
  }
  // Reap closed sessions, fixing up the slot -> session indices (a slot
  // pointing at a dead session just loses its delivery path until the
  // domain's controller reconnects and reports again).
  for (std::size_t i = sessions_.size(); i-- > 0;) {
    if (sessions_[i].conn->open()) continue;
    reactor_.remove(sessions_[i].reg_fd, sessions_[i].shard);
    for (DomainSlot& slot : slots_) {
      if (slot.session == i) {
        slot.session = SIZE_MAX;
      } else if (slot.session != SIZE_MAX && slot.session > i) {
        --slot.session;
      }
    }
    sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void ArbiterDaemon::ingest(std::size_t session_index, const proto::Message& m) {
  const auto* r = std::get_if<proto::DomainReport>(&m);
  if (r == nullptr) {
    // Only reports flow arbiter-ward on this link.
    ++counters_.frames_corrupt;
    return;
  }
  // Sanity screen before any state is touched: the report drives the watt
  // split for the whole cluster, so a bit-flipped one (NaN demand, a floor
  // above the ceiling, a domain id from nowhere) must not skew every
  // other domain's grant.
  std::uint64_t newest = 0;
  for (const DomainSlot& s : slots_) {
    if (s.any_report) newest = std::max(newest, s.latest.tick);
  }
  const bool insane =
      r->domain_id >= slots_.size() ||
      r->domain_count != static_cast<std::uint32_t>(slots_.size()) ||
      !std::isfinite(r->busy_nodes) || !std::isfinite(r->floor_w) ||
      !std::isfinite(r->capacity_w) || !std::isfinite(r->committed_w) ||
      !std::isfinite(r->utility_per_w) || !std::isfinite(r->achieved_ips) ||
      !std::isfinite(r->target_ips) || !std::isfinite(r->cluster_budget_w) ||
      r->busy_nodes < 0.0 || r->floor_w < 0.0 || r->utility_per_w < 0.0 ||
      r->capacity_w < r->floor_w - 1e-6 || r->cluster_budget_w < 0.0 ||
      r->tick > newest + kMaxTickJump;
  if (insane) {
    ++counters_.frames_corrupt;
    return;
  }

  DomainSlot& slot = slots_[r->domain_id];
  // Epoch fence (the failover analogue of silent-domain grant fencing): a
  // report claiming an epoch below the newest seen for this domain comes
  // from a deposed controller that resumed talking after its standby took
  // over. Its demand must not steal the domain's grant back -- drop it
  // before the session even binds.
  if (r->controller_epoch < slot.max_epoch) {
    ++counters_.stale_epoch_frames;
    return;
  }
  slot.max_epoch = std::max(slot.max_epoch, r->controller_epoch);

  // A leaving child (re-parented under another arbiter) is *released*, not
  // fenced: its watts are no longer actuated under this arbiter's grants,
  // so freezing them would strand budget while the new parent grants the
  // same subtree -- the double-draw this flag exists to prevent. The slot
  // reverts to never-reported (cold-start reserve) in case a future child
  // reuses the id; the epoch fence above survives the reset.
  if ((r->flags & proto::kDomainLeaving) != 0) {
    arbiter_.release(r->domain_id);
    const std::uint64_t epoch = slot.max_epoch;
    slot = DomainSlot{};
    slot.max_epoch = epoch;
    return;
  }

  Session& session = sessions_[session_index];
  session.bound = true;
  session.domain_id = r->domain_id;

  if (!slot.any_report || r->tick >= slot.latest.tick) {
    slot.any_report = true;
    slot.latest = *r;
    slot.session = session_index;
  }
}

bool ArbiterDaemon::try_decide() {
  // T = the newest reported tick; decide once every domain that has ever
  // reported either reached T or fell stale_after_ticks behind it.
  std::uint64_t t = 0;
  bool any = false;
  for (const DomainSlot& s : slots_) {
    if (!s.any_report) continue;
    any = true;
    t = std::max(t, s.latest.tick);
  }
  if (!any) return false;
  if (any_decision_ && t <= decided_tick_) return false;

  std::vector<DomainDemand> live;
  double budget_w = 0.0;
  std::size_t never_reported = 0;
  for (const DomainSlot& s : slots_) {
    if (!s.any_report) {
      ++never_reported;
      continue;
    }
    if (s.latest.tick == t) {
      DomainDemand d;
      d.domain_id = s.latest.domain_id;
      d.jobs = s.latest.jobs;
      d.busy_nodes = s.latest.busy_nodes;
      d.floor_w = s.latest.floor_w;
      d.capacity_w = s.latest.capacity_w;
      d.committed_w = s.latest.committed_w;
      d.utility_per_w = s.latest.utility_per_w;
      d.achieved_ips = s.latest.achieved_ips;
      d.target_ips = s.latest.target_ips;
      // Tenant terms from the wire (defaults are exact no-ops, so a v1
      // report allocates bit-identically).
      d.sla_floor_w = s.latest.sla_floor_w;
      d.priority_weight = s.latest.priority_weight;
      live.push_back(d);
      budget_w = std::max(budget_w, s.latest.cluster_budget_w);
    } else if (s.latest.tick + cfg_.stale_after_ticks >= t) {
      return false;  // lagging but not yet stale: wait for it
    }
    // Stale domains fall through: BudgetArbiter fences their held grant.
  }
  if (live.empty()) return false;

  // The budget this arbiter divides: the whole cluster figure at the root,
  // the parent grant (static share before it arrives) when stacked.
  const double scope_w = budget_in_use(budget_w);

  // Domains that never reported assume their static share of the cluster
  // budget on their side (PerqController's pre-first-grant fallback, or a
  // stacked arbiter's budget_in_use); reserve that out of this scope so
  // both halves of the cold-start partition agree on who owns what. At the
  // root with default shares this is exactly budget * never / K.
  reserved_w_ = scope_w * static_cast<double>(never_reported) /
                static_cast<double>(slots_.size());
  cluster_budget_w_ = budget_w;

  const std::vector<double>& grants =
      arbiter_.allocate(std::max(scope_w - reserved_w_, 0.0), live);

  for (const DomainDemand& d : live) {
    DomainSlot& slot = slots_[d.domain_id];
    slot.ever_sent_grant = true;
    if (slot.session == SIZE_MAX) continue;  // controller died after report
    proto::BudgetGrant g;
    g.domain_id = d.domain_id;
    g.tick = t;
    g.grant_w = grants[d.domain_id];
    g.cluster_budget_w = budget_w;
    // Sender identity for the children's parent fence. The root's empty
    // path keeps the frame a byte-identical v1 body.
    g.tree_path = attachment_.tree_path;
    // Grants differ per domain (no common frame to share), but encoding
    // into a pooled buffer keeps the steady-state grant round allocation
    // free: the pool recycles a slot as soon as the connection's outbound
    // queue releases it.
    auto buf = frame_pool_.acquire();
    proto::encode_into(proto::Message{g}, *buf);
    sessions_[slot.session].conn->send_frame(net::FramePool::freeze(buf));
  }

  decided_tick_ = t;
  any_decision_ = true;
  // Stacked mode: push the subtree's aggregate demand upward so the parent
  // can re-divide *its* budget next round. Reporting after deciding keeps
  // the levels pipelined -- each level runs on the grant its parent issued
  // from the previous tick's aggregate (one-interval propagation delay per
  // level, the price of a tree of independent daemons).
  send_parent_report(t, live, budget_w);
  return true;
}

bool ArbiterDaemon::service() {
  pump();
  pump_parent();
  return try_decide();
}

DomainDemand ArbiterDaemon::demand(std::uint32_t domain) const {
  PERQ_REQUIRE(domain < slots_.size(), "domain id out of range");
  const DomainSlot& s = slots_[domain];
  DomainDemand d;
  if (!s.any_report) return d;
  d.domain_id = s.latest.domain_id;
  d.jobs = s.latest.jobs;
  d.busy_nodes = s.latest.busy_nodes;
  d.floor_w = s.latest.floor_w;
  d.capacity_w = s.latest.capacity_w;
  d.committed_w = s.latest.committed_w;
  d.utility_per_w = s.latest.utility_per_w;
  d.achieved_ips = s.latest.achieved_ips;
  d.target_ips = s.latest.target_ips;
  d.sla_floor_w = s.latest.sla_floor_w;
  d.priority_weight = s.latest.priority_weight;
  return d;
}

core::RobustnessCounters ArbiterDaemon::aggregated_counters() const {
  core::RobustnessCounters sum = counters_;
  // This level's own allocation accounting: fencing transitions and SLA
  // floors that shaped a grant round here, as opposed to the per-child
  // figures summed below. Stacked arbiters flatten this aggregate into
  // their upward report, so the root's view covers every level.
  sum.grants_fenced += arbiter_.grants_fenced();
  sum.sla_floor_activations += arbiter_.sla_floor_activations();
  for (const DomainSlot& s : slots_) {
    if (!s.any_report) continue;
    sum.frames_dropped += s.latest.frames_dropped;
    sum.frames_corrupt += s.latest.frames_corrupt;
    sum.reconnect_attempts += s.latest.reconnect_attempts;
    sum.stale_transitions += s.latest.stale_transitions;
    sum.solver_fallbacks += s.latest.solver_fallbacks;
    sum.clamp_activations += s.latest.clamp_activations;
    sum.failsafe_activations += s.latest.failsafe_activations;
    sum.stale_epoch_frames += s.latest.stale_epoch_frames;
    sum.grants_fenced += s.latest.grants_fenced;
    sum.reparent_events += s.latest.reparent_events;
    sum.sla_floor_activations += s.latest.sla_floor_activations;
  }
  return sum;
}

std::vector<int> ArbiterDaemon::fds() const {
  std::vector<int> fds;
  fds.push_back(listener_->fd());
  for (const Session& s : sessions_) fds.push_back(s.conn->fd());
  if (parent_conn_ != nullptr && parent_conn_->open()) {
    fds.push_back(parent_conn_->fd());
  }
  return fds;
}

}  // namespace perq::hier
