// Node agent: the plant-side half of perqd.
//
// One agent speaks for a contiguous slice [node_begin, node_end) of the
// cluster -- the slurmd analogue. Each control interval it publishes one
// Telemetry frame per running job it *leads* (a job is led by the agent
// owning the job's first allocated node, so exactly one agent reports each
// job), followed by finals for jobs that retired last interval, followed by
// a Heartbeat. Telemetry-before-heartbeat matters: the transports deliver
// in order, so a heartbeat for tick t certifies that every tick-t telemetry
// frame already arrived at the controller.
//
// On the downlink the agent applies cap plans to the nodes of its slice
// only; the union of agents covers every node of every job. A hung agent
// (hang(), which keeps the socket open -- the failure mode heartbeat
// timeouts exist for, distinct from a closed connection) stops publishing
// and actuating, and its nodes simply keep their last RAPL caps.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"

namespace perq::daemon {

class NodeAgent {
 public:
  /// The cluster must outlive the agent. [node_begin, node_end) is this
  /// agent's node slice.
  NodeAgent(std::uint32_t id, std::unique_ptr<net::Connection> conn,
            sim::Cluster* cluster, std::size_t node_begin, std::size_t node_end);

  std::uint32_t id() const { return id_; }
  bool connected() const { return conn_ != nullptr && conn_->open(); }
  int fd() const { return conn_ != nullptr ? conn_->fd() : -1; }

  bool owns_node(std::size_t node_id) const {
    return node_id >= node_begin_ && node_id < node_end_;
  }
  /// True when this agent reports the job (it owns the job's lead node).
  bool leads(const sched::Job& job) const;

  /// Introduces the agent to the controller.
  void hello();

  /// Publishes one tick: telemetry for led running jobs (seq = position in
  /// the plant's running order), finals for led jobs retired last interval,
  /// then the heartbeat. No-op while hung or disconnected.
  void publish(const core::TickView& view);

  /// Drains the connection; returns the newest cap plan received, if any.
  /// CapPlanDelta frames are patched onto the plan of the previous
  /// broadcast (kept in canonical job-id order); a delta that does not
  /// apply -- stale base tick after a missed frame, unknown job id,
  /// mangled count -- is rejected whole and the agent holds its caps until
  /// the controller's next full plan resynchronizes it.
  std::optional<proto::CapPlan> poll_plan();

  /// Deltas rejected by the chain check so far (resync accounting).
  std::uint64_t deltas_rejected() const { return deltas_rejected_; }
  /// Deltas successfully applied so far.
  std::uint64_t deltas_applied() const { return deltas_applied_; }

  /// Frames rejected by epoch fencing: plans (or announces) from a
  /// controller whose epoch is below the newest this agent has ever seen.
  std::uint64_t stale_epoch_frames() const { return stale_epoch_frames_; }
  /// True when the current connection was dropped by the fence (the peer
  /// is a deposed primary); the plant reacts by dialing the next candidate
  /// controller address.
  bool fenced() const { return fenced_; }
  /// Newest controller epoch ever seen (0 before any PromoteAnnounce).
  std::uint64_t max_epoch() const { return max_epoch_; }

  /// Applies a plan to this agent's node slice: for every job published in
  /// the last tick whose plan entry exists, caps the job's nodes that fall
  /// inside [node_begin, node_end).
  void apply_plan(const proto::CapPlan& plan);

  /// Simulates a hung agent process: stops publishing, polling, and
  /// actuating, but leaves the connection open so the controller must catch
  /// it by heartbeat timeout rather than by EOF.
  void hang() { hung_ = true; }
  bool hung() const { return hung_; }

  /// Graceful leave: sends Bye and closes (no staleness alarm).
  void bye();

  /// Abandons the current connection without a Bye (the peer is presumed
  /// dead or deposed -- failover, not leave). reconnect() re-introduces.
  void drop() {
    if (conn_ != nullptr) conn_->close();
  }

  /// Rejoin after a crash or controller restart: swap in a fresh
  /// connection, clear the hang, and re-introduce. The next publish()
  /// resynchronizes the controller's shadow state.
  void reconnect(std::unique_ptr<net::Connection> conn);

 private:
  /// Drops the current connection because its peer is a deposed primary:
  /// counts the stale frame, Byes the peer, closes, and flags fenced().
  void fence_connection();
  std::uint32_t id_;
  std::unique_ptr<net::Connection> conn_;
  sim::Cluster* cluster_;
  std::size_t node_begin_;
  std::size_t node_end_;
  bool hung_ = false;
  /// Running jobs as of the last publish, engine order (plan application
  /// needs their node lists).
  std::vector<const sched::Job*> last_running_;
  std::vector<proto::Message> inbox_;  ///< reused poll_plan drain scratch
  /// Delta base: canonical image of the last broadcast plan received. It
  /// survives reconnect -- the Hello reports its tick, and the controller
  /// keeps the delta chain alive when the base still matches its own.
  proto::CapPlan base_plan_;
  proto::CapPlan patched_;  ///< reused apply_delta output scratch
  bool have_base_ = false;
  std::uint64_t deltas_rejected_ = 0;
  std::uint64_t deltas_applied_ = 0;
  /// Epoch fencing (see proto::PromoteAnnounce): the epoch announced on the
  /// current connection, the newest epoch ever seen across connections, and
  /// how many frames the fence has rejected. 0/0 keeps every check inert
  /// for deployments that never fail over.
  std::uint64_t conn_epoch_ = 0;
  std::uint64_t max_epoch_ = 0;
  std::uint64_t stale_epoch_frames_ = 0;
  bool fenced_ = false;
};

}  // namespace perq::daemon
