#include "daemon/snapshot.hpp"

#include <cstdio>
#include <fstream>

#include "acct/event_log.hpp"
#include "proto/wire.hpp"
#include "util/require.hpp"

namespace perq::daemon {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x50455251;  // "PERQ"
// Version 2 appends the robustness counters (policy solver_fallbacks after
// the MPC warm state, controller counters after the shadows). Version 3
// appends the hierarchical grant state (any_grant/granted_w/grant_tick) so
// a restarted domain controller resumes against its last grant. Version 4
// inserts a crc32 of everything after the header (a torn or bit-flipped
// file is detected up front, mirroring acct::EventLog) and appends the
// controller epoch plus the failsafe/stale-epoch counters. Older files
// still decode: the appended fields simply start from zero and the crc
// check only applies from version 4 on. Version 5 appends the power-tree
// counters (grants_fenced, reparent_events, sla_floor_activations) so a
// restarted node of the hierarchy keeps its topology-change accounting.
constexpr std::uint16_t kSnapshotVersion = 5;
// Header: u32 magic + u16 version + u32 crc (v4+). The crc covers every
// byte after itself.
constexpr std::size_t kCrcOffset = 6;

void write_estimator(proto::WireWriter& w, const control::EstimatorState& e) {
  w.u32(static_cast<std::uint32_t>(e.state.size()));
  for (double v : e.state) w.f64(v);
  w.f64(e.gain);
  w.f64(e.offset);
  w.f64(e.p00);
  w.f64(e.p01);
  w.f64(e.p11);
  w.f64(e.u_ema);
  w.f64(e.last_u);
  w.u64(e.updates);
}

bool read_estimator(proto::WireReader& r, control::EstimatorState* e) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || static_cast<std::size_t>(n) * 8 > r.remaining()) return false;
  e->state.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) e->state[i] = r.f64();
  e->gain = r.f64();
  e->offset = r.f64();
  e->p00 = r.f64();
  e->p01 = r.f64();
  e->p11 = r.f64();
  e->u_ema = r.f64();
  e->last_u = r.f64();
  e->updates = r.u64();
  return r.ok();
}

void write_shadow(proto::WireWriter& w, const ShadowRecord& s) {
  w.i32(s.spec.id);
  w.u64(s.spec.nodes);
  w.f64(s.spec.runtime_ref_s);
  w.u64(s.spec.app_index);
  w.f64(s.spec.phase_offset_s);
  w.f64(s.progress_s);
  w.f64(s.last_min_perf);
  w.f64(s.last_job_ips);
  w.f64(s.last_cap_w);
  w.u64(s.last_tick);
  w.u32(s.seq);
  w.u32(s.feeder);
  w.f64(s.planned_cap_w);
  w.f64(s.planned_target_ips);
}

bool read_shadow(proto::WireReader& r, ShadowRecord* s) {
  s->spec.id = r.i32();
  s->spec.nodes = static_cast<std::size_t>(r.u64());
  s->spec.runtime_ref_s = r.f64();
  s->spec.app_index = static_cast<std::size_t>(r.u64());
  s->spec.phase_offset_s = r.f64();
  s->progress_s = r.f64();
  s->last_min_perf = r.f64();
  s->last_job_ips = r.f64();
  s->last_cap_w = r.f64();
  s->last_tick = r.u64();
  s->seq = r.u32();
  s->feeder = r.u32();
  s->planned_cap_w = r.f64();
  s->planned_target_ips = r.f64();
  return r.ok();
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const ControllerState& s) {
  proto::WireWriter w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u32(0);  // crc placeholder, patched once the payload is complete
  w.u64(s.current_tick);
  w.u64(s.last_decided_tick);
  w.u8(s.any_tick_seen);
  w.u8(s.any_decision);

  w.u64(s.policy.tick);
  w.u32(static_cast<std::uint32_t>(s.policy.estimators.size()));
  for (const auto& [id, est] : s.policy.estimators) {
    w.i32(id);
    write_estimator(w, est);
  }
  w.u32(static_cast<std::uint32_t>(s.policy.last_targets.size()));
  for (const auto& [id, target] : s.policy.last_targets) {
    w.i32(id);
    w.f64(target);
  }
  w.u32(static_cast<std::uint32_t>(s.policy.mpc.warm.size()));
  for (double v : s.policy.mpc.warm) w.f64(v);
  w.u32(static_cast<std::uint32_t>(s.policy.mpc.warm_ids.size()));
  for (int id : s.policy.mpc.warm_ids) w.i32(id);
  w.u64(s.policy.solver_fallbacks);

  w.u32(static_cast<std::uint32_t>(s.shadows.size()));
  for (const ShadowRecord& shadow : s.shadows) write_shadow(w, shadow);

  w.u64(s.counters.frames_dropped);
  w.u64(s.counters.frames_corrupt);
  w.u64(s.counters.reconnect_attempts);
  w.u64(s.counters.stale_transitions);
  w.u64(s.counters.solver_fallbacks);
  w.u64(s.counters.clamp_activations);

  w.u8(s.any_grant);
  w.f64(s.granted_w);
  w.u64(s.grant_tick);

  w.u64(s.epoch);
  w.u64(s.counters.failsafe_activations);
  w.u64(s.counters.stale_epoch_frames);

  w.u64(s.counters.grants_fenced);
  w.u64(s.counters.reparent_events);
  w.u64(s.counters.sla_floor_activations);

  auto bytes = w.take();
  const std::uint32_t crc = acct::crc32(bytes.data() + kCrcOffset + 4,
                                        bytes.size() - kCrcOffset - 4);
  proto::WireWriter patcher(bytes);
  patcher.patch_u32(kCrcOffset, crc);
  return bytes;
}

std::optional<ControllerState> decode_snapshot(const std::uint8_t* data,
                                               std::size_t size,
                                               std::string* why) {
  const auto fail = [why](const char* reason) -> std::optional<ControllerState> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  proto::WireReader r(data, size);
  if (r.u32() != kSnapshotMagic) return fail("not a perq snapshot (bad magic)");
  const std::uint16_t version = r.u16();
  if (version < 1 || version > kSnapshotVersion) {
    return fail("unsupported snapshot version");
  }
  if (version >= 4) {
    const std::uint32_t crc = r.u32();
    if (!r.ok()) return fail("truncated snapshot header");
    if (acct::crc32(data + kCrcOffset + 4, size - kCrcOffset - 4) != crc) {
      return fail("snapshot crc mismatch (torn or corrupt file)");
    }
  }

  ControllerState s;
  s.current_tick = r.u64();
  s.last_decided_tick = r.u64();
  s.any_tick_seen = r.u8();
  s.any_decision = r.u8();

  s.policy.tick = r.u64();
  const std::uint32_t n_est = r.u32();
  if (!r.ok() || static_cast<std::size_t>(n_est) * 12 > r.remaining()) {
    return fail("truncated snapshot: estimator section");
  }
  for (std::uint32_t i = 0; i < n_est; ++i) {
    const int id = r.i32();
    control::EstimatorState est;
    if (!read_estimator(r, &est)) {
      return fail("truncated snapshot: estimator section");
    }
    s.policy.estimators.emplace_back(id, std::move(est));
  }
  const std::uint32_t n_targets = r.u32();
  if (!r.ok() || static_cast<std::size_t>(n_targets) * 12 > r.remaining()) {
    return fail("truncated snapshot: target section");
  }
  for (std::uint32_t i = 0; i < n_targets; ++i) {
    const int id = r.i32();
    const double target = r.f64();
    s.policy.last_targets.emplace_back(id, target);
  }
  const std::uint32_t n_warm = r.u32();
  if (!r.ok() || static_cast<std::size_t>(n_warm) * 8 > r.remaining()) {
    return fail("truncated snapshot: warm-start section");
  }
  s.policy.mpc.warm.resize(n_warm);
  for (std::uint32_t i = 0; i < n_warm; ++i) s.policy.mpc.warm[i] = r.f64();
  const std::uint32_t n_warm_ids = r.u32();
  if (!r.ok() || static_cast<std::size_t>(n_warm_ids) * 4 > r.remaining()) {
    return fail("truncated snapshot: warm-start section");
  }
  s.policy.mpc.warm_ids.resize(n_warm_ids);
  for (std::uint32_t i = 0; i < n_warm_ids; ++i) s.policy.mpc.warm_ids[i] = r.i32();
  if (version >= 2) s.policy.solver_fallbacks = r.u64();

  const std::uint32_t n_shadows = r.u32();
  if (!r.ok() || static_cast<std::size_t>(n_shadows) * 100 > r.remaining()) {
    return fail("truncated snapshot: shadow section");
  }
  s.shadows.resize(n_shadows);
  for (std::uint32_t i = 0; i < n_shadows; ++i) {
    if (!read_shadow(r, &s.shadows[i])) {
      return fail("truncated snapshot: shadow section");
    }
  }
  if (version >= 2) {
    s.counters.frames_dropped = r.u64();
    s.counters.frames_corrupt = r.u64();
    s.counters.reconnect_attempts = r.u64();
    s.counters.stale_transitions = r.u64();
    s.counters.solver_fallbacks = r.u64();
    s.counters.clamp_activations = r.u64();
  }
  if (version >= 3) {
    s.any_grant = r.u8();
    s.granted_w = r.f64();
    s.grant_tick = r.u64();
  }
  if (version >= 4) {
    s.epoch = r.u64();
    s.counters.failsafe_activations = r.u64();
    s.counters.stale_epoch_frames = r.u64();
  }
  if (version >= 5) {
    s.counters.grants_fenced = r.u64();
    s.counters.reparent_events = r.u64();
    s.counters.sla_floor_activations = r.u64();
  }
  if (!r.exhausted()) return fail("truncated or oversized snapshot tail");
  return s;
}

void save_snapshot(const std::string& path, const ControllerState& s) {
  const auto bytes = encode_snapshot(s);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PERQ_REQUIRE(out.is_open(), "cannot open snapshot file: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    PERQ_REQUIRE(out.good(), "snapshot write failed: " + tmp);
  }
  PERQ_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "snapshot rename failed: " + path);
}

ControllerState load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PERQ_REQUIRE(in.is_open(), "cannot open snapshot file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::string why;
  auto s = decode_snapshot(bytes.data(), bytes.size(), &why);
  PERQ_REQUIRE(s.has_value(), "corrupt snapshot file: " + path + " (" + why + ")");
  return std::move(*s);
}

}  // namespace perq::daemon
